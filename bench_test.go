package now_test

// The benchmark harness: one testing.B target per table and figure in
// the paper (plus the quantitative prose claims, the "E" experiments of
// DESIGN.md §3). Each bench regenerates its artifact end to end —
// workload generation, simulation, measurement — and reports the
// headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation. cmd/nowbench prints the same rows
// as formatted paper-vs-measured tables.

import (
	"fmt"
	"testing"

	"github.com/nowproject/now/internal/coopcache"
	"github.com/nowproject/now/internal/experiments"
)

func BenchmarkTable1MPPLag(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows := experiments.Table1()
		if len(rows) != 3 {
			b.Fatal("bad table")
		}
		if i == 0 {
			b.ReportMetric(rows[2].PerfFactor, "CM5-lag-cost-x")
		}
	}
}

func BenchmarkFigure1SystemPrice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows := experiments.Figure1()
		if i == 0 {
			best := rows[2].Total // 4-way SS-10
			b.ReportMetric(rows[5].Total/best, "MPP-vs-bestWS-x")
		}
	}
}

func BenchmarkTable2MissService(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[2].Measured.Microseconds(), "ATM-remote-mem-us")
			b.ReportMetric(rows[0].Measured.Microseconds(), "Eth-remote-mem-us")
		}
	}
}

func BenchmarkFigure2NetworkRAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Figure2([]int64{2, 4, 6, 8, 12, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.NetVsDRAM, "netram-vs-dram-x")
			b.ReportMetric(last.DiskVsNet, "disk-vs-netram-x")
		}
	}
}

func BenchmarkTable3CoopCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table3(experiments.DefaultTable3Config())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				switch r.Policy {
				case coopcache.ClientServer:
					b.ReportMetric(r.MissRate*100, "baseline-miss-pct")
					b.ReportMetric(r.ReadResponse.Milliseconds(), "baseline-read-ms")
				case coopcache.NChance:
					b.ReportMetric(r.MissRate*100, "nchance-miss-pct")
					b.ReportMetric(r.ReadResponse.Milliseconds(), "nchance-read-ms")
				}
			}
		}
	}
}

func BenchmarkTable4Gator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows := experiments.Table4()
		if i == 0 {
			b.ReportMetric(rows[5].Total.Seconds(), "best-NOW-total-s")
			b.ReportMetric(rows[0].Total.Seconds(), "C90-total-s")
		}
	}
}

func BenchmarkFigure3MixedWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Figure3(experiments.DefaultFigure3Config())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Workstations == 64 {
					b.ReportMetric(r.Slowdown, "slowdown-at-64ws-x")
				}
				if r.Workstations == 96 {
					b.ReportMetric(r.Slowdown, "slowdown-at-96ws-x")
				}
			}
		}
	}
}

func BenchmarkFigure4Coscheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Figure4(3, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Jobs == 3 {
					b.ReportMetric(r.Slowdown, r.Pattern.String()+"-3jobs-x")
				}
			}
		}
	}
}

func BenchmarkNFSMessageStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.NFSStudy()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Improvement*100, "improvement-pct")
			b.ReportMetric(res.SmallFraction*100, "small-msgs-pct")
		}
	}
}

func BenchmarkAMMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.AMMicro()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Name == "Active Messages (HPAM)" {
					b.ReportMetric(r.OneWay.Microseconds(), "AM-oneway-us")
					b.ReportMetric(float64(r.HalfPower), "AM-N12-bytes")
				}
			}
		}
	}
}

func BenchmarkMemoryRestore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.MemoryRestore()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Disks == 16 {
					b.ReportMetric(r.Elapsed.Seconds(), "restore-16disks-s")
				}
			}
		}
	}
}

func BenchmarkSFIOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.SFIOverhead()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Kernel == "matmul" && r.Mode.String() == "optimized" {
					b.ReportMetric(r.Overhead*100, "matmul-optimized-pct")
				}
			}
		}
	}
}

func BenchmarkAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res, err := experiments.Availability(53, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.FullyIdleDaytime*100, "fully-idle-daytime-pct")
		}
	}
}

func BenchmarkAblationRecruitmentPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.RecruitmentPolicyAblation(48, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Slowdown, r.Policy.String()+"-slowdown-x")
			}
		}
	}
}

func BenchmarkAblationNChance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.NChanceAblation(120_000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.MissRate*100, fmt.Sprintf("N%d-miss-pct", r.N))
			}
		}
	}
}

func BenchmarkAblationColumnBuffering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.ColumnBufferAblation(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].Slowdown, "starved-x")
			b.ReportMetric(rows[len(rows)-1].Slowdown, "buffered-x")
		}
	}
}

func BenchmarkAblationOverheadVsBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.OverheadVsBandwidthAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Label == "10× less overhead only" {
					b.ReportMetric(r.NFSImprove*100, "overhead-cut-pct")
				}
				if r.Label == "15× bandwidth only" {
					b.ReportMetric(r.NFSImprove*100, "bandwidth-raise-pct")
				}
			}
		}
	}
}

func BenchmarkSWRAID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.SWRAID()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Disks == 16 {
					b.ReportMetric(r.ReadMBps, "raid0-16disks-MBps")
					b.ReportMetric(r.DegradedMBps, "raid5-degraded-MBps")
				}
			}
		}
	}
}
