// Command benchjson turns `go test -bench` output into an entry in the
// repository's benchmark-trajectory file (BENCH_sim.json by default).
// Each invocation parses benchmark lines from stdin and appends one
// labelled run, so the file accumulates the perf history of the
// scheduler hot path across PRs:
//
//	go test -bench . -benchmem ./internal/sim/ | benchjson -label pr1-after
//
// scripts/bench.sh wires this up end to end.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"github.com/nowproject/now/internal/obs"
)

// Result is one benchmark line. Metrics holds every reported unit
// (ns/op, B/op, allocs/op, and any custom b.ReportMetric units).
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// Run is one labelled invocation of the benchmark suite.
type Run struct {
	Label   string   `json:"label"`
	Date    string   `json:"date"`
	Results []Result `json:"results"`
}

// File is the whole trajectory document.
type File struct {
	Description string `json:"description"`
	Runs        []Run  `json:"runs"`
}

const description = "Performance trajectory of the internal/sim scheduler hot path. " +
	"Appended to by scripts/bench.sh; one entry per labelled run."

// cpuSuffix strips the -GOMAXPROCS suffix go test appends to benchmark
// names, so trajectories compare across machines.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// shardsSub matches the /shards=N sub-benchmark convention used by the
// sharded-engine benchmarks; the worker count is surfaced as a metric
// so trend tooling can plot throughput against it.
var shardsSub = regexp.MustCompile(`/shards=(\d+)`)

func main() {
	if err := run(os.Stdin, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	label := fs.String("label", "dev", "name for this run in the trajectory")
	out := fs.String("out", "BENCH_sim.json", "trajectory file to append to")
	date := fs.String("date", time.Now().Format("2006-01-02"), "date recorded for this run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	doc := File{Description: description}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("existing %s is not valid: %w", *out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	doc.Description = description
	doc.Runs = append(doc.Runs, Run{Label: *label, Date: *date, Results: results})
	// Shared stable encoder (indent + trailing newline) so this file,
	// nowbench -json and the -metrics exports all share one JSON shape.
	if err := obs.WriteFileStable(*out, doc); err != nil {
		return err
	}
	fmt.Printf("benchjson: recorded %d benchmarks as run %q in %s\n", len(results), *label, *out)
	return nil
}

// parse extracts benchmark result lines from go test output. A line
// looks like:
//
//	BenchmarkEventThroughput-8   5740965   202.0 ns/op   48 B/op   1 allocs/op
func parse(in io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmarking..." prose, not a result line
		}
		r := Result{
			Name:    cpuSuffix.ReplaceAllString(strings.TrimPrefix(f[0], "Benchmark"), ""),
			Iters:   iters,
			Metrics: map[string]float64{},
		}
		if m := shardsSub.FindStringSubmatch(r.Name); m != nil {
			n, _ := strconv.ParseFloat(m[1], 64)
			r.Metrics["shards"] = n
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in %q", f[i], sc.Text())
			}
			r.Metrics[f[i+1]] = v
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
