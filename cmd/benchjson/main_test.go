package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/nowproject/now/internal/sim
BenchmarkEventThroughput-8    	12180637	       100.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkProcSwitch           	79517688	        16.04 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	github.com/nowproject/now/internal/sim	4.239s
`

func TestParseAndAppend(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	for _, label := range []string{"first", "second"} {
		err := run(strings.NewReader(sample), []string{"-label", label, "-out", out, "-date", "2026-08-05"})
		if err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc File
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 || doc.Runs[0].Label != "first" || doc.Runs[1].Label != "second" {
		t.Fatalf("runs = %+v", doc.Runs)
	}
	rs := doc.Runs[0].Results
	if len(rs) != 2 {
		t.Fatalf("results = %+v", rs)
	}
	if rs[0].Name != "EventThroughput" || rs[0].Metrics["ns/op"] != 100.5 || rs[0].Metrics["allocs/op"] != 0 {
		t.Fatalf("first result = %+v", rs[0])
	}
	if rs[1].Name != "ProcSwitch" || rs[1].Metrics["ns/op"] != 16.04 {
		t.Fatalf("second result = %+v", rs[1])
	}
}

func TestParseShardsSubBench(t *testing.T) {
	const shardSample = `BenchmarkShardedThroughput/shards=1-8   	     100	    350000 ns/op
BenchmarkShardedThroughput/shards=8-8   	     100	    120000 ns/op	  2850000 events/s
`
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run(strings.NewReader(shardSample), []string{"-out", out, "-date", "2026-08-07"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc File
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	rs := doc.Runs[0].Results
	if len(rs) != 2 {
		t.Fatalf("results = %+v", rs)
	}
	if rs[0].Name != "ShardedThroughput/shards=1" || rs[0].Metrics["shards"] != 1 {
		t.Fatalf("first result = %+v", rs[0])
	}
	if rs[1].Name != "ShardedThroughput/shards=8" || rs[1].Metrics["shards"] != 8 ||
		rs[1].Metrics["events/s"] != 2850000 {
		t.Fatalf("second result = %+v", rs[1])
	}
}

func TestEmptyInputErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run(strings.NewReader("no benches here\n"), []string{"-out", out}); err == nil {
		t.Fatal("expected error for input without benchmark lines")
	}
}
