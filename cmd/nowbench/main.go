// Command nowbench regenerates every table and figure of "A Case for
// NOW (Networks of Workstations)" and prints them as paper-vs-measured
// tables.
//
// Usage:
//
//	nowbench              # run everything (several minutes: F3 dominates)
//	nowbench -quick       # reduced scales, under a minute
//	nowbench -only T2,F4  # a comma-separated subset of experiment ids
//	nowbench -json        # machine-readable reports (scripts/bench.sh)
//
// Experiment ids follow DESIGN.md §3: T1 T2 T3 T4 F1 F2 F3 F4, the
// prose claims E5 E6 E7 E8 E9 E10, the fault-injection availability
// study AV1 (docs/FAULTS.md), the collective scale study SC1, the
// sharded-engine throughput study SC2 (DESIGN.md §10; -shards pins its
// worker count), the topology study SC3 (crossbar vs fat-tree vs torus,
// software tree vs in-network combining; DESIGN.md §13), the xFS
// sequential-scan pipelining study ST2, and the wide-area federation
// study WA1 (cross-cluster caching vs home re-fetch; DESIGN.md §14).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	now "github.com/nowproject/now"
	"github.com/nowproject/now/internal/experiments"
	"github.com/nowproject/now/internal/obs"
)

// jsonReport is the machine-readable form of one regenerated artifact,
// emitted by -json for tooling (scripts/bench.sh, trend dashboards).
type jsonReport struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   string     `json:"notes,omitempty"`
	// Shards is the largest worker count a sharded experiment (SC2) ran
	// with; omitted for single-threaded experiments.
	Shards int `json:"shards,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nowbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nowbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced experiment scales (finishes in well under a minute)")
	only := fs.String("only", "", "comma-separated experiment ids to run (default: all)")
	ablations := fs.Bool("ablations", false, "also run the design-choice ablations (A1-A4)")
	asJSON := fs.Bool("json", false, "emit reports as a JSON array instead of text tables")
	metricsPath := fs.String("metrics", "", "write the instrumented experiments' metrics registries to this JSON file")
	shards := fs.Int("shards", 0, "pin the SC2 worker sweep to this single worker count (0 = full 1/2/4/8 sweep)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	type exp struct {
		id  string
		run func() (experiments.Report, error)
	}
	exps := []exp{
		{"T1", func() (experiments.Report, error) { r, _ := experiments.Table1(); return r, nil }},
		{"F1", func() (experiments.Report, error) { r, _ := experiments.Figure1(); return r, nil }},
		{"T2", func() (experiments.Report, error) { r, _, err := experiments.Table2(); return r, err }},
		{"F2", func() (experiments.Report, error) {
			sizes := []int64{2, 4, 6, 8, 12, 16}
			if *quick {
				sizes = []int64{4, 8}
			}
			r, _, err := experiments.Figure2(sizes)
			return r, err
		}},
		{"T3", func() (experiments.Report, error) {
			cfg := experiments.DefaultTable3Config()
			if *quick {
				cfg.Accesses = 40_000
				cfg.Policies = []now.CachePolicy{now.ClientServer, now.NChance}
			}
			r, _, err := experiments.Table3(cfg)
			return r, err
		}},
		{"T4", func() (experiments.Report, error) { r, _ := experiments.Table4(); return r, nil }},
		{"F3", func() (experiments.Report, error) {
			cfg := experiments.DefaultFigure3Config()
			if *quick {
				cfg.Days = 1
				cfg.Sizes = []int{48, 96}
			}
			r, _, err := experiments.Figure3(cfg)
			return r, err
		}},
		{"F4", func() (experiments.Report, error) {
			jobs := 3
			if *quick {
				jobs = 2
			}
			r, _, err := experiments.Figure4(jobs, 1)
			return r, err
		}},
		{"E5", func() (experiments.Report, error) { r, _, err := experiments.NFSStudy(); return r, err }},
		{"E6", func() (experiments.Report, error) { r, _, err := experiments.AMMicro(); return r, err }},
		{"E7", func() (experiments.Report, error) { r, _, err := experiments.MemoryRestore(); return r, err }},
		{"E8", func() (experiments.Report, error) { r, _, err := experiments.SFIOverhead(); return r, err }},
		{"E9", func() (experiments.Report, error) {
			days := 10
			if *quick {
				days = 3
			}
			r, _, err := experiments.Availability(53, days, 1)
			return r, err
		}},
		{"E10", func() (experiments.Report, error) { r, _, err := experiments.SWRAID(); return r, err }},
		{"AV1", func() (experiments.Report, error) {
			cfg := experiments.DefaultFaultStudyConfig()
			if *quick {
				cfg.Workstations = 8
				cfg.ReadStreams = 2
			}
			r, _, err := experiments.FaultStudy(cfg)
			return r, err
		}},
		{"AV2", func() (experiments.Report, error) {
			cfg := experiments.DefaultRemediationStudyConfig()
			if *quick {
				cfg.Workstations = 8
				cfg.ReadStreams = 2
			}
			r, _, err := experiments.RemediationStudy(cfg)
			return r, err
		}},
		{"SC1", func() (experiments.Report, error) {
			cfg := experiments.DefaultScaleConfig()
			if *quick {
				cfg.Sizes = []int{32, 64, 128}
				cfg.Barriers = 2
			}
			r, _, err := experiments.ScaleCollectives(cfg)
			return r, err
		}},
		{"SC2", func() (experiments.Report, error) {
			cfg := experiments.DefaultShardScaleConfig()
			if *quick {
				cfg = experiments.QuickShardScaleConfig()
			}
			if *shards > 0 {
				cfg.Workers = []int{*shards}
			}
			r, _, err := experiments.ShardScale(cfg)
			return r, err
		}},
		{"SC3", func() (experiments.Report, error) {
			cfg := experiments.DefaultTopoStudyConfig()
			if *quick {
				cfg = experiments.QuickTopoStudyConfig()
			}
			r, _, err := experiments.TopologyStudy(cfg)
			return r, err
		}},
		{"ST2", func() (experiments.Report, error) {
			cfg := experiments.DefaultSeqScanConfig()
			if *quick {
				cfg.Sizes = []int{8, 32}
			}
			r, _, err := experiments.SeqScan(cfg)
			return r, err
		}},
		{"WA1", func() (experiments.Report, error) {
			cfg := experiments.DefaultWideAreaConfig()
			if *quick {
				cfg = experiments.QuickWideAreaConfig()
			}
			r, _, _, err := experiments.WideAreaStudy(cfg)
			return r, err
		}},
	}
	ablationSelected := *ablations
	for _, id := range []string{"A1", "A2", "A3", "A4"} {
		if want[id] {
			ablationSelected = true
		}
	}
	if ablationSelected {
		exps = append(exps,
			exp{"A1", func() (experiments.Report, error) {
				// 48 workstations: tight enough that users actually come
				// back to recruited machines, separating the policies.
				r, _, err := experiments.RecruitmentPolicyAblation(48, 1, 1)
				return r, err
			}},
			exp{"A2", func() (experiments.Report, error) {
				acc := 120_000
				if *quick {
					acc = 60_000
				}
				r, _, err := experiments.NChanceAblation(acc)
				return r, err
			}},
			exp{"A3", func() (experiments.Report, error) { r, _, err := experiments.ColumnBufferAblation(1); return r, err }},
			exp{"A4", func() (experiments.Report, error) {
				r, _, err := experiments.OverheadVsBandwidthAblation()
				return r, err
			}},
		)
	}

	// Instrumented experiments carry metrics registries on their
	// reports; -metrics snapshots each into one stable-ordered file.
	collected := map[string][]obs.Metric{}
	collect := func(rep experiments.Report) {
		if *metricsPath == "" {
			return
		}
		keys := make([]string, 0, len(rep.Obs))
		for k := range rep.Obs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			collected[rep.ID+"/"+k] = rep.Obs[k].Snapshot()
		}
	}
	writeMetrics := func() error {
		if *metricsPath == "" {
			return nil
		}
		doc := struct {
			Format      string                  `json:"format"`
			Experiments map[string][]obs.Metric `json:"experiments"`
		}{Format: "now-metrics-set/1", Experiments: collected}
		return obs.WriteFileStable(*metricsPath, doc)
	}

	if *asJSON {
		out := []jsonReport{} // non-nil so an empty selection encodes as [], not null
		for _, x := range exps {
			if !selected(x.id) {
				continue
			}
			rep, err := x.run()
			if err != nil {
				return fmt.Errorf("%s: %w", x.id, err)
			}
			collect(rep)
			out = append(out, jsonReport{
				ID:      rep.ID,
				Title:   rep.Title,
				Headers: rep.Table.Headers(),
				Rows:    rep.Table.Rows(),
				Notes:   rep.Notes,
				Shards:  rep.Shards,
			})
		}
		if err := writeMetrics(); err != nil {
			return err
		}
		// The same stable encoder the metrics exporters use, so tooling
		// sees one JSON shape discipline everywhere.
		return obs.WriteStable(os.Stdout, out)
	}
	fmt.Println("Regenerating the evaluation of 'A Case for NOW' (IEEE Micro, Feb 1995)")
	fmt.Println(strings.Repeat("=", 72))
	for _, x := range exps {
		if !selected(x.id) {
			continue
		}
		start := time.Now()
		rep, err := x.run()
		if err != nil {
			return fmt.Errorf("%s: %w", x.id, err)
		}
		collect(rep)
		fmt.Println()
		fmt.Print(rep.String())
		fmt.Printf("(%s regenerated in %v)\n", x.id, time.Since(start).Round(time.Millisecond))
	}
	return writeMetrics()
}
