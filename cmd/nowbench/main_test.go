package main

import (
	"encoding/json"
	"io"
	"os"
	"testing"
)

func TestRunJSONOutput(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-json", "-quick", "-only", "T1,E5"})
	w.Close()
	os.Stdout = old
	raw, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	var reports []jsonReport
	if err := json.Unmarshal(raw, &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, raw)
	}
	if len(reports) != 2 || reports[0].ID != "T1" || reports[1].ID != "E5" {
		t.Fatalf("reports = %+v", reports)
	}
	if len(reports[0].Rows) == 0 || len(reports[0].Headers) == 0 {
		t.Fatalf("T1 report empty: %+v", reports[0])
	}
}

func TestRunSubsetQuick(t *testing.T) {
	if err := run([]string{"-quick", "-only", "T1,T4,E5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblationSelection(t *testing.T) {
	if err := run([]string{"-quick", "-only", "A4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunUnknownIDIsNoop(t *testing.T) {
	// Selecting a nonexistent id runs nothing and errors nowhere.
	if err := run([]string{"-only", "ZZ"}); err != nil {
		t.Fatal(err)
	}
}
