package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunJSONOutput(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-json", "-quick", "-only", "T1,E5"})
	w.Close()
	os.Stdout = old
	raw, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatal(runErr)
	}
	var reports []jsonReport
	if err := json.Unmarshal(raw, &reports); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, raw)
	}
	if len(reports) != 2 || reports[0].ID != "T1" || reports[1].ID != "E5" {
		t.Fatalf("reports = %+v", reports)
	}
	if len(reports[0].Rows) == 0 || len(reports[0].Headers) == 0 {
		t.Fatalf("T1 report empty: %+v", reports[0])
	}
}

func TestRunSubsetQuick(t *testing.T) {
	if err := run([]string{"-quick", "-only", "T1,T4,E5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblationSelection(t *testing.T) {
	if err := run([]string{"-quick", "-only", "A4"}); err != nil {
		t.Fatal(err)
	}
}

// TestScaleStudyGoldenDeterminism is the SC1 golden: the collective
// scale study, run twice through the full CLI path with metrics
// export, must produce byte-identical report JSON and metrics files.
func TestScaleStudyGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		mpath := filepath.Join(dir, "sc"+n+".json")
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := run([]string{"-json", "-quick", "-only", "SC1", "-metrics", mpath})
		w.Close()
		os.Stdout = old
		raw, _ := io.ReadAll(r)
		if runErr != nil {
			t.Fatal(runErr)
		}
		mb, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		return raw, mb
	}
	r1, m1 := runOnce("1")
	r2, m2 := runOnce("2")
	if !bytes.Equal(r1, r2) {
		t.Fatal("SC1 report JSON is not byte-deterministic")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("SC1 metrics export is not byte-deterministic")
	}
	for _, want := range []string{`"collective.barriers"`, `"net.offered"`, `"net.delivered"`} {
		if !bytes.Contains(m1, []byte(want)) {
			t.Fatalf("SC1 metrics missing %s:\n%.300s", want, m1)
		}
	}
}

// TestSeqScanGoldenDeterminism is the ST2 golden: the sequential-scan
// pipelining study, run twice through the full CLI path with metrics
// export, must produce byte-identical report JSON and metrics files —
// concurrent prefetch procs and vectored fan-outs included.
func TestSeqScanGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		mpath := filepath.Join(dir, "st"+n+".json")
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := run([]string{"-json", "-quick", "-only", "ST2", "-metrics", mpath})
		w.Close()
		os.Stdout = old
		raw, _ := io.ReadAll(r)
		if runErr != nil {
			t.Fatal(runErr)
		}
		mb, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		return raw, mb
	}
	r1, m1 := runOnce("1")
	r2, m2 := runOnce("2")
	if !bytes.Equal(r1, r2) {
		t.Fatal("ST2 report JSON is not byte-deterministic")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("ST2 metrics export is not byte-deterministic")
	}
	for _, want := range []string{`"xfs.batch.tokens"`, `"xfs.prefetch.issued"`, `"xfs.batch.commits"`} {
		if !bytes.Contains(m1, []byte(want)) {
			t.Fatalf("ST2 metrics missing %s:\n%.300s", want, m1)
		}
	}
}

// TestRemediationGoldenDeterminism is the AV2 golden: the self-healing
// availability study, run twice through the full CLI path with metrics
// export, must produce byte-identical report JSON and metrics files —
// the remediator's sweep, cordons and spare rebuilds included.
func TestRemediationGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("AV2 runs minutes of virtual workload, twice")
	}
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		mpath := filepath.Join(dir, "av"+n+".json")
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := run([]string{"-json", "-quick", "-only", "AV2", "-metrics", mpath})
		w.Close()
		os.Stdout = old
		raw, _ := io.ReadAll(r)
		if runErr != nil {
			t.Fatal(runErr)
		}
		mb, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		return raw, mb
	}
	r1, m1 := runOnce("1")
	r2, m2 := runOnce("2")
	if !bytes.Equal(r1, r2) {
		t.Fatal("AV2 report JSON is not byte-deterministic")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("AV2 metrics export is not byte-deterministic")
	}
	for _, want := range []string{`"remediate.rebuilds"`, `"remediate.cordons"`, `"cp.commands"`, `"faults.injected"`} {
		if !bytes.Contains(m1, []byte(want)) {
			t.Fatalf("AV2 metrics missing %s:\n%.300s", want, m1)
		}
	}
}

// TestWideAreaGoldenDeterminism is the WA1 golden: the wide-area
// federation study — two clusters over a sharded engine, lease warmups,
// WAN RPC and all — run twice through the full CLI path with metrics
// export, must produce byte-identical report JSON and metrics files.
func TestWideAreaGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		mpath := filepath.Join(dir, "wa"+n+".json")
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := run([]string{"-json", "-quick", "-only", "WA1", "-metrics", mpath})
		w.Close()
		os.Stdout = old
		raw, _ := io.ReadAll(r)
		if runErr != nil {
			t.Fatal(runErr)
		}
		mb, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		return raw, mb
	}
	r1, m1 := runOnce("1")
	r2, m2 := runOnce("2")
	if !bytes.Equal(r1, r2) {
		t.Fatal("WA1 report JSON is not byte-deterministic")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("WA1 metrics export is not byte-deterministic")
	}
	for _, want := range []string{`"fed.lease.grants"`, `"fed.cache.hits"`, `"fed.fetch.remote"`, `"wan.sent"`, `"wan.bytes"`} {
		if !bytes.Contains(m1, []byte(want)) {
			t.Fatalf("WA1 metrics missing %s:\n%.300s", want, m1)
		}
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunUnknownIDIsNoop(t *testing.T) {
	// Selecting a nonexistent id runs nothing and errors nowhere.
	if err := run([]string{"-only", "ZZ"}); err != nil {
		t.Fatal(err)
	}
}

// TestTopologyStudyGoldenDeterminism is the SC3 golden: the topology
// study — six phases per (topology, size) cell, in-network combine
// events and topology-fabric metrics included — run twice through the
// full CLI path, must produce byte-identical report JSON and metrics
// files. SC3 is single-engine by construction (sharded fabrics reject
// topologies), so the -shards flag cannot perturb it.
func TestTopologyStudyGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		mpath := filepath.Join(dir, "sc3-"+n+".json")
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := run([]string{"-json", "-quick", "-only", "SC3", "-metrics", mpath})
		w.Close()
		os.Stdout = old
		raw, _ := io.ReadAll(r)
		if runErr != nil {
			t.Fatal(runErr)
		}
		mb, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		return raw, mb
	}
	r1, m1 := runOnce("1")
	r2, m2 := runOnce("2")
	if !bytes.Equal(r1, r2) {
		t.Fatal("SC3 report JSON is not byte-deterministic")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("SC3 metrics export is not byte-deterministic")
	}
	for _, want := range []string{`"collective.innet.ops"`, `"collective.innet.combines"`, `"net.topo.hops"`, `"net.topo.queue.ns"`} {
		if !bytes.Contains(m1, []byte(want)) {
			t.Fatalf("SC3 metrics missing %s:\n%.300s", want, m1)
		}
	}
}
