package main

import "testing"

func TestRunSubsetQuick(t *testing.T) {
	if err := run([]string{"-quick", "-only", "T1,T4,E5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblationSelection(t *testing.T) {
	if err := run([]string{"-quick", "-only", "A4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunUnknownIDIsNoop(t *testing.T) {
	// Selecting a nonexistent id runs nothing and errors nowhere.
	if err := run([]string{"-only", "ZZ"}); err != nil {
		t.Fatal(err)
	}
}
