// Command nowctl is the operator CLI for a served NOW (`nowsim serve`).
// It speaks the control plane's HTTP/JSON API (docs/CONTROLPLANE.md):
//
//	nowctl status                        cluster summary
//	nowctl nodes                         workstation census
//	nowctl node 5                        one workstation
//	nowctl cordon 5 | uncordon 5         (un)mark unschedulable
//	nowctl drain 5                       evacuate a workstation
//	nowctl storage                       xFS node census
//	nowctl drain-storage 3               remove an xFS node gracefully
//	nowctl fault "crash 5 for 30s"       inject a faults-plan line live
//	nowctl metrics                       stream the obs metrics (JSON)
//	nowctl spans [-after N]              spans started after span id N
//	nowctl remediate on|off              toggle self-healing
//
// The server address defaults to http://127.0.0.1:8080 and is set with
// -addr (flags come before the command).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/nowproject/now/internal/controlplane"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nowctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nowctl", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "control-plane server address")
	after := fs.Int("after", 0, "spans: only those started after this span id")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: nowctl [-addr URL] <status|nodes|node|cordon|uncordon|drain|storage|drain-storage|fault|metrics|spans|remediate> [args]")
	}
	c := &controlplane.Client{Base: *addr}
	cmd, rest := fs.Arg(0), fs.Args()[1:]

	argID := func() (int, error) {
		if len(rest) != 1 {
			return 0, fmt.Errorf("%s takes exactly one node id", cmd)
		}
		return strconv.Atoi(rest[0])
	}

	switch cmd {
	case "status":
		st, err := c.Status()
		if err != nil {
			return err
		}
		fmt.Printf("virtual time %s\n", sim.Time(st.VirtualNs))
		fmt.Printf("workstations: %d (%d up, %d cordoned, %d drained), queue %d\n",
			st.Workstations, st.Up, st.Cordoned, st.Drained, st.QueueLen)
		if st.XFSNodes > 0 {
			fmt.Printf("xfs: %d nodes, failed stores %v, %d spares left\n",
				st.XFSNodes, st.FailedStores, st.SparesLeft)
		}
		return nil
	case "nodes":
		ns, err := c.Nodes()
		if err != nil {
			return err
		}
		for _, n := range ns {
			printNode(n)
		}
		return nil
	case "node":
		id, err := argID()
		if err != nil {
			return err
		}
		n, err := c.Node(id)
		if err != nil {
			return err
		}
		printNode(n)
		return nil
	case "cordon":
		id, err := argID()
		if err != nil {
			return err
		}
		if err := c.Cordon(id); err != nil {
			return err
		}
		fmt.Printf("workstation %d cordoned\n", id)
		return nil
	case "uncordon":
		id, err := argID()
		if err != nil {
			return err
		}
		if err := c.Uncordon(id); err != nil {
			return err
		}
		fmt.Printf("workstation %d uncordoned\n", id)
		return nil
	case "drain":
		id, err := argID()
		if err != nil {
			return err
		}
		if err := c.Drain(id); err != nil {
			return err
		}
		fmt.Printf("workstation %d draining (poll `nowctl node %d`)\n", id, id)
		return nil
	case "storage":
		sts, err := c.Storage()
		if err != nil {
			return err
		}
		for _, s := range sts {
			state := "up"
			switch {
			case s.Down:
				state = "down"
			case s.Failed:
				state = "failed"
			}
			role := ""
			if s.Stripe {
				role += " stripe"
			}
			if s.Spare {
				role += " spare"
			}
			if len(s.Managers) > 0 {
				role += fmt.Sprintf(" managers=%v", s.Managers)
			}
			fmt.Printf("xfs %-3d %-6s%s\n", s.Node, state, role)
		}
		return nil
	case "drain-storage":
		id, err := argID()
		if err != nil {
			return err
		}
		if err := c.DrainStorage(id); err != nil {
			return err
		}
		fmt.Printf("xfs node %d draining (poll `nowctl storage`)\n", id)
		return nil
	case "fault":
		if len(rest) != 1 {
			return fmt.Errorf("fault takes one quoted plan line, e.g. nowctl fault \"crash 5 for 30s\"")
		}
		if err := c.InjectFault(rest[0]); err != nil {
			return err
		}
		fmt.Println("fault scheduled")
		return nil
	case "metrics":
		data, err := c.MetricsJSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(data) //nolint:errcheck
		return nil
	case "spans":
		spans, err := c.Spans(obs.SpanID(*after))
		if err != nil {
			return err
		}
		for _, sp := range spans {
			end := "open"
			if sp.End != 0 {
				end = sim.Duration(sp.End - sp.Start).String()
			}
			fmt.Printf("span %-5d %-24s node %-4d start %-12s %s\n",
				sp.ID, sp.Name, sp.Node, sim.Time(sp.Start), end)
		}
		return nil
	case "remediate":
		if len(rest) != 1 || (rest[0] != "on" && rest[0] != "off") {
			return fmt.Errorf("usage: nowctl remediate on|off")
		}
		if err := c.Remediate(rest[0] == "on"); err != nil {
			return err
		}
		fmt.Printf("remediation %s\n", rest[0])
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func printNode(n controlplane.NodeStatus) {
	state := "up"
	if !n.Up {
		state = "down"
	}
	flags := ""
	if n.Cordoned {
		flags += " cordoned"
	}
	if n.Drained {
		flags += " drained"
	}
	if n.UserBusy {
		flags += " user-busy"
	}
	job := "idle"
	if n.JobID >= 0 {
		job = fmt.Sprintf("job %d rank %d", n.JobID, n.Rank)
	}
	fmt.Printf("ws %-3d %-5s %-18s%s\n", n.ID, state, job, flags)
}
