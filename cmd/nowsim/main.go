// Command nowsim builds a NOW from flags and runs a mixed workload on
// it: interactive users (from the diurnal activity model) plus a
// parallel job log (from the LANL-style generator), under the GLUnix
// global layer. It reports job responses, migrations, evictions and
// user delays — a scriptable version of the paper's Figure 3 scenario.
//
// Usage:
//
//	nowsim -ws 64 -hours 12 -policy migrate
//	nowsim -ws 32 -hours 6 -policy restart -seed 7
//	nowsim -ws 64 -hours 12 -metrics run.json -trace spans.json
//	nowsim -ws 32 -hours 6 -faults seed:7 -metrics faulted.json
//	nowsim -ws 32 -hours 6 -faults plan.txt
//
// The -metrics, -metrics-csv and -trace flags attach the observability
// layer and export it after the run. All values are
// keyed to virtual time, so two runs with the same flags produce
// byte-identical files.
//
// The -faults flag injects a fault plan into the
// run: workstation crashes with later recovery and census rejoin,
// fabric partitions, degraded-link windows. A plan is a file (see
// docs/FAULTS.md for the grammar) or "seed:<n>[,key=val...]" for a
// generated plan; either way the plan is deterministic, so faulted
// runs replay exactly.
//
// The -shards flag switches to the sharded multicore engine (DESIGN.md
// §10) and runs the partitioned cluster workload with that many worker
// goroutines:
//
//	nowsim -ws 256 -shards 4 -seed 1 -metrics sharded.json
//
// The worker count bounds parallelism only — every output except the
// final wall-clock line (prefixed "workers:") is byte-identical for any
// -shards value at a given -ws and -seed.
//
// The run and check subcommands execute declarative scenario files
// (docs/SCENARIOS.md) instead of flag-built workloads:
//
//	nowsim run examples/scenarios/nfs-opmix-day.scn
//	nowsim run -metrics day.json story.scn
//	nowsim run -shards 4 sharded.scn
//	nowsim check examples/scenarios/*.scn
//
// run prints the scenario's deterministic report and exits 0 when every
// assertion passed, 2 when any failed or could not be evaluated, 1 on
// parse or run errors. check parses and validates without running.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	now "github.com/nowproject/now"
	"github.com/nowproject/now/internal/experiments"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/trace"
)

// errAssertFailed marks a completed scenario whose assertions did not
// all pass: exit 2, distinct from build/usage errors (exit 1), so CI
// can tell "the story broke" from "the tool broke".
var errAssertFailed = errors.New("scenario assertions failed")

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, errAssertFailed) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "nowsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "run":
			return runScenario(args[1:])
		case "check":
			return checkScenarios(args[1:])
		case "serve":
			return serveCluster(args[1:])
		}
	}
	fs := flag.NewFlagSet("nowsim", flag.ContinueOnError)
	ws := fs.Int("ws", 64, "workstations in the NOW")
	hours := fs.Int("hours", 12, "virtual hours to simulate")
	seed := fs.Int64("seed", 1, "random seed (runs are deterministic per seed)")
	policyName := fs.String("policy", "migrate", "user-return policy: migrate, restart, ignore")
	interarrival := fs.Duration("interarrival", 0, "mean parallel job interarrival (0 = trace default)")
	metricsPath := fs.String("metrics", "", "write metrics JSON (deterministic, byte-stable) to this file")
	metricsCSV := fs.String("metrics-csv", "", "write metrics CSV to this file")
	tracePath := fs.String("trace", "", "write span trace JSON to this file")
	faultSpec := fs.String("faults", "", "fault plan: a plan file path, or seed:<n>[,key=val...] (docs/FAULTS.md)")
	shards := fs.Int("shards", 0, "run the sharded-engine cluster workload with this many workers (0 = classic mixed-workload run)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards > 0 {
		return runSharded(*ws, *shards, *seed, *metricsPath, *metricsCSV, *tracePath)
	}
	var policy now.RecruitPolicy
	switch *policyName {
	case "migrate":
		policy = now.MigrateOnReturn
	case "restart":
		policy = now.RestartOnReturn
	case "ignore":
		policy = now.IgnoreUser
	default:
		return fmt.Errorf("unknown policy %q", *policyName)
	}

	length := now.Duration(*hours) * now.Hour
	days := (*hours + 23) / 24
	acfg := trace.DefaultActivityConfig(*ws, days)
	acfg.Seed = *seed
	activity := trace.GenerateActivity(acfg)

	jcfg := trace.DefaultJobTraceConfig(length)
	jcfg.Seed = *seed
	if *interarrival > 0 {
		jcfg.MeanInterarrival = now.Duration(interarrival.Nanoseconds())
	}
	jobs := trace.GenerateJobs(jcfg)
	for i := range jobs {
		if jobs[i].CommGrain < 5*now.Second {
			jobs[i].CommGrain = 5 * now.Second
		}
	}

	cfg := now.DefaultGLUnixConfig(*ws)
	cfg.Policy = policy
	cfg.HeartbeatInterval = 5 * now.Minute
	cfg.Seed = *seed

	var reg *obs.Registry
	if *metricsPath != "" || *metricsCSV != "" || *tracePath != "" {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}

	var plan now.FaultPlan
	if *faultSpec != "" {
		var err error
		plan, err = now.ParseFaultSpec(*faultSpec, *ws+1, length)
		if err != nil {
			return err
		}
	}

	fmt.Printf("NOW: %d workstations, %d virtual hours, policy %v, %d parallel jobs\n",
		*ws, *hours, policy, len(jobs))
	e := now.NewEngine(*seed)
	e.Observe(reg)
	var inj *now.FaultInjector
	var cluster *now.GLUnix
	wire := func(c *now.GLUnix) {
		cluster = c
		if *faultSpec == "" {
			return
		}
		inj = now.NewInjector(e, now.ClusterFaultTarget{C: c}, plan, reg)
		inj.Schedule()
		fmt.Printf("fault plan %q: %d faults scheduled\n", plan.Name, len(plan.Faults))
	}
	res, err := now.RunGLUnixMixed(e, cfg, activity, jobs, length+12*now.Hour, wire)
	e.Close()
	if err != nil && !errors.Is(err, now.ErrStopped) {
		return err
	}
	if err := exportObs(reg, *metricsPath, *metricsCSV, *tracePath); err != nil {
		return err
	}

	fmt.Printf("\njobs completed: %d/%d   mean response: %v\n",
		res.JobsCompleted, res.JobsTotal, res.MeanResponse)
	m := res.Master
	fmt.Printf("migrations: %d   evictions: %d   restarts: %d   image saves/restores: %d/%d\n",
		m.Migrations, m.Evictions, m.Restarts, m.ImageSaves, m.ImageRestores)
	if cluster != nil {
		fst := cluster.Fab.Stats()
		fmt.Printf("fabric: offered %d pkts / %d B   delivered %d pkts / %d B   drops %d (%d injected)\n",
			fst.Offered, fst.OfferedBytes, fst.Delivered, fst.DeliveredBytes, fst.Drops, fst.InjectedDrops)
	}
	if inj != nil {
		fmt.Printf("faults applied: %d/%d   nodes declared down: %d   rejoins: %d\n",
			inj.Applied(), len(plan.Faults), m.NodesDown, m.Rejoins)
	}
	if m.UserDelays.N() > 0 {
		fmt.Printf("user delay on return: median %.2fs, p95 %.2fs, max %.2fs (n=%d)\n",
			m.UserDelays.Median(), m.UserDelays.Percentile(95), m.UserDelays.Percentile(100),
			m.UserDelays.N())
	}

	// Per-job response distribution.
	ids := make([]int, 0, len(res.Responses))
	for id := range res.Responses {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fmt.Println("\nper-job responses:")
	for _, id := range ids {
		fmt.Printf("  job %-4d %v\n", id, res.Responses[id])
	}
	return nil
}

// runSharded executes the partitioned cluster workload on the sharded
// multicore engine. Everything printed before the "workers:" line — and
// every exported metrics/trace file — is deterministic in (ws, seed)
// alone; the worker count only bounds parallelism.
func runSharded(ws, workers int, seed int64, metricsPath, csvPath, tracePath string) error {
	cfg := experiments.DefaultShardedTrafficConfig(ws, workers, seed)
	res, reg, err := experiments.ShardedTraffic(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("NOW sharded: %d workstations in %d partitions, seed %d\n",
		res.Nodes, res.Parts, seed)
	fmt.Printf("barrier mean: %.1f µs   makespan: %.1f µs\n", res.BarrierUs, res.MakespanUs)
	fmt.Printf("events: %d   cross-partition pkts: %d   overflows: %d   drops: %d\n",
		res.Events, res.CrossSent, res.Overflows, res.Drops)
	// The one machine-dependent line; determinism gates strip it.
	fmt.Printf("workers: %d   events/sec: %.0f   wall: %v\n",
		res.Workers, res.EventsPerSec, res.Wall.Round(time.Millisecond))
	return exportObs(reg, metricsPath, csvPath, tracePath)
}

// runScenario executes one scenario file: parse, run, print the
// deterministic report, export metrics if asked. Assertion failures
// come back as errAssertFailed after the report and exports are out.
func runScenario(args []string) error {
	fs := flag.NewFlagSet("nowsim run", flag.ContinueOnError)
	shards := fs.Int("shards", 0, "sharded-fleet worker count (execution only, never observable; 0 = one per core)")
	metricsPath := fs.String("metrics", "", "write metrics JSON (deterministic, byte-stable) to this file")
	metricsCSV := fs.String("metrics-csv", "", "write metrics CSV to this file")
	tracePath := fs.String("trace", "", "write span trace JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: nowsim run [flags] <file.scn>")
	}
	s, err := now.ParseScenarioFile(fs.Arg(0))
	if err != nil {
		return err
	}
	res, err := now.RunScenario(s, now.ScenarioOptions{Workers: *shards})
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	if err := exportObs(res.Registry, *metricsPath, *metricsCSV, *tracePath); err != nil {
		return err
	}
	if !res.Ok() {
		return errAssertFailed
	}
	return nil
}

// checkScenarios parses and validates scenario files without running
// them — the cheap CI gate over examples/scenarios/. Every problem in
// every file is reported (with its source line) before the nonzero
// exit, so one check run surfaces everything wrong at once.
func checkScenarios(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("usage: nowsim check <file.scn...>")
	}
	bad := 0
	for _, path := range paths {
		s, probs := now.ParseScenarioFileAll(path)
		if len(probs) > 0 {
			bad++
			for _, p := range probs {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, p.Err)
			}
			continue
		}
		fmt.Printf("%s: ok (%s: %d events, %d expects)\n",
			path, s.Name, len(s.Events), len(s.Expects))
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d scenario file(s) have problems", bad, len(paths))
	}
	return nil
}

// exportObs writes the requested observability files. A nil registry
// (no export flags) writes nothing.
func exportObs(reg *obs.Registry, metricsPath, csvPath, tracePath string) error {
	if reg == nil {
		return nil
	}
	write := func(path string, fn func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(metricsPath, func(f *os.File) error { return reg.WriteMetricsJSON(f) }); err != nil {
		return err
	}
	if err := write(csvPath, func(f *os.File) error { return reg.WriteMetricsCSV(f) }); err != nil {
		return err
	}
	return write(tracePath, func(f *os.File) error { return reg.WriteTraceJSON(f) })
}
