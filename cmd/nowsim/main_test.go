package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTinyScenario(t *testing.T) {
	if err := run([]string{"-ws", "8", "-hours", "1", "-policy", "migrate"}); err != nil {
		t.Fatal(err)
	}
}

func TestRestartPolicy(t *testing.T) {
	if err := run([]string{"-ws", "6", "-hours", "1", "-policy", "restart", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadPolicy(t *testing.T) {
	if err := run([]string{"-policy", "nonsense"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestMetricsGoldenDeterminism is the observability layer's end-to-end
// determinism gate: the same seeded scenario, run twice through the
// full CLI path, must export byte-identical metrics and trace JSON.
func TestMetricsGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		m := filepath.Join(dir, "m"+n+".json")
		tr := filepath.Join(dir, "t"+n+".json")
		if err := run([]string{"-ws", "8", "-hours", "1", "-seed", "5",
			"-metrics", m, "-trace", tr}); err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return mb, tb
	}
	m1, t1 := runOnce("1")
	m2, t2 := runOnce("2")
	if !bytes.Equal(m1, m2) {
		t.Fatal("same seed produced different metrics JSON")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same seed produced different trace JSON")
	}
	if len(m1) == 0 || !bytes.Contains(m1, []byte(`"now-metrics/1"`)) {
		t.Fatalf("metrics file malformed:\n%.200s", m1)
	}
}

// TestFaultedRunGoldenDeterminism is the CLI half of the fault
// subsystem's determinism gate: the same generated fault plan, injected
// into the same seeded scenario twice, must export byte-identical
// metrics — including the faults.* counters and fault.* spans.
func TestFaultedRunGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		m := filepath.Join(dir, "fm"+n+".json")
		tr := filepath.Join(dir, "ft"+n+".json")
		if err := run([]string{"-ws", "8", "-hours", "1", "-seed", "5",
			"-faults", "seed:7", "-metrics", m, "-trace", tr}); err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return mb, tb
	}
	m1, t1 := runOnce("1")
	m2, t2 := runOnce("2")
	if !bytes.Equal(m1, m2) {
		t.Fatal("same fault plan produced different metrics JSON")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same fault plan produced different trace JSON")
	}
	if !bytes.Contains(m1, []byte(`"faults.injected"`)) {
		t.Fatalf("faulted run exported no faults.injected counter:\n%.300s", m1)
	}
}

// TestShardedRunGoldenDeterminism is the cross-shard determinism gate
// at the CLI boundary: the same -ws and -seed must export byte-identical
// metrics and trace files — and identical stdout once the single
// machine-dependent "workers:" line is stripped — at 1, 2, 4 and 8
// workers. This is the golden scripts/verify.sh replays.
func TestShardedRunGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(shards int) (metrics, trace []byte, stdout string) {
		m := filepath.Join(dir, fmt.Sprintf("sm%d.json", shards))
		tr := filepath.Join(dir, fmt.Sprintf("st%d.json", shards))
		old := os.Stdout
		rp, wp, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = wp
		runErr := run([]string{"-ws", "32", "-seed", "9",
			"-shards", fmt.Sprint(shards), "-metrics", m, "-trace", tr})
		wp.Close()
		os.Stdout = old
		out, readErr := io.ReadAll(rp)
		if runErr != nil {
			t.Fatalf("shards=%d: %v", shards, runErr)
		}
		if readErr != nil {
			t.Fatal(readErr)
		}
		var kept []string
		for _, line := range strings.Split(string(out), "\n") {
			if strings.HasPrefix(line, "workers:") {
				continue // the one wall-clock line
			}
			kept = append(kept, line)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return mb, tb, strings.Join(kept, "\n")
	}
	m1, t1, out1 := runOnce(1)
	if !bytes.Contains(m1, []byte(`"sim.shard.events{p0}"`)) {
		t.Fatalf("sharded metrics missing shard counters:\n%.300s", m1)
	}
	if !bytes.Contains(m1, []byte(`"net.cross.sent"`)) {
		t.Fatalf("sharded metrics missing cross-partition counters:\n%.300s", m1)
	}
	for _, shards := range []int{2, 4, 8} {
		m, tr, out := runOnce(shards)
		if !bytes.Equal(m, m1) {
			t.Errorf("-shards %d metrics differ from -shards 1", shards)
		}
		if !bytes.Equal(tr, t1) {
			t.Errorf("-shards %d trace differs from -shards 1", shards)
		}
		if out != out1 {
			t.Errorf("-shards %d stdout differs from -shards 1:\n%s\n----\n%s", shards, out, out1)
		}
	}
}

// TestFaultPlanFromFile exercises the file branch of -faults.
func TestFaultPlanFromFile(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "plan.txt")
	if err := os.WriteFile(plan, []byte("10m crash 3 for 5m\n30m partition 2,4 for 2m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-ws", "8", "-hours", "1", "-seed", "2", "-faults", plan}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFaultSpec(t *testing.T) {
	if err := run([]string{"-ws", "8", "-hours", "1", "-faults", "seed:zzz"}); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}
