package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestTinyScenario(t *testing.T) {
	if err := run([]string{"-ws", "8", "-hours", "1", "-policy", "migrate"}); err != nil {
		t.Fatal(err)
	}
}

func TestRestartPolicy(t *testing.T) {
	if err := run([]string{"-ws", "6", "-hours", "1", "-policy", "restart", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadPolicy(t *testing.T) {
	if err := run([]string{"-policy", "nonsense"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestMetricsGoldenDeterminism is the observability layer's end-to-end
// determinism gate: the same seeded scenario, run twice through the
// full CLI path, must export byte-identical metrics and trace JSON.
func TestMetricsGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		m := filepath.Join(dir, "m"+n+".json")
		tr := filepath.Join(dir, "t"+n+".json")
		if err := run([]string{"-ws", "8", "-hours", "1", "-seed", "5",
			"-metrics", m, "-trace", tr}); err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return mb, tb
	}
	m1, t1 := runOnce("1")
	m2, t2 := runOnce("2")
	if !bytes.Equal(m1, m2) {
		t.Fatal("same seed produced different metrics JSON")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same seed produced different trace JSON")
	}
	if len(m1) == 0 || !bytes.Contains(m1, []byte(`"now-metrics/1"`)) {
		t.Fatalf("metrics file malformed:\n%.200s", m1)
	}
}
