package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTinyScenario(t *testing.T) {
	if err := run([]string{"-ws", "8", "-hours", "1", "-policy", "migrate"}); err != nil {
		t.Fatal(err)
	}
}

func TestRestartPolicy(t *testing.T) {
	if err := run([]string{"-ws", "6", "-hours", "1", "-policy", "restart", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadPolicy(t *testing.T) {
	if err := run([]string{"-policy", "nonsense"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestMetricsGoldenDeterminism is the observability layer's end-to-end
// determinism gate: the same seeded scenario, run twice through the
// full CLI path, must export byte-identical metrics and trace JSON.
func TestMetricsGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		m := filepath.Join(dir, "m"+n+".json")
		tr := filepath.Join(dir, "t"+n+".json")
		if err := run([]string{"-ws", "8", "-hours", "1", "-seed", "5",
			"-metrics", m, "-trace", tr}); err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return mb, tb
	}
	m1, t1 := runOnce("1")
	m2, t2 := runOnce("2")
	if !bytes.Equal(m1, m2) {
		t.Fatal("same seed produced different metrics JSON")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same seed produced different trace JSON")
	}
	if len(m1) == 0 || !bytes.Contains(m1, []byte(`"now-metrics/1"`)) {
		t.Fatalf("metrics file malformed:\n%.200s", m1)
	}
}

// TestFaultedRunGoldenDeterminism is the CLI half of the fault
// subsystem's determinism gate: the same generated fault plan, injected
// into the same seeded scenario twice, must export byte-identical
// metrics — including the faults.* counters and fault.* spans.
func TestFaultedRunGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		m := filepath.Join(dir, "fm"+n+".json")
		tr := filepath.Join(dir, "ft"+n+".json")
		if err := run([]string{"-ws", "8", "-hours", "1", "-seed", "5",
			"-faults", "seed:7", "-metrics", m, "-trace", tr}); err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return mb, tb
	}
	m1, t1 := runOnce("1")
	m2, t2 := runOnce("2")
	if !bytes.Equal(m1, m2) {
		t.Fatal("same fault plan produced different metrics JSON")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same fault plan produced different trace JSON")
	}
	if !bytes.Contains(m1, []byte(`"faults.injected"`)) {
		t.Fatalf("faulted run exported no faults.injected counter:\n%.300s", m1)
	}
}

// TestShardedRunGoldenDeterminism is the cross-shard determinism gate
// at the CLI boundary: the same -ws and -seed must export byte-identical
// metrics and trace files — and identical stdout once the single
// machine-dependent "workers:" line is stripped — at 1, 2, 4 and 8
// workers. This is the golden scripts/verify.sh replays.
func TestShardedRunGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(shards int) (metrics, trace []byte, stdout string) {
		m := filepath.Join(dir, fmt.Sprintf("sm%d.json", shards))
		tr := filepath.Join(dir, fmt.Sprintf("st%d.json", shards))
		old := os.Stdout
		rp, wp, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = wp
		runErr := run([]string{"-ws", "32", "-seed", "9",
			"-shards", fmt.Sprint(shards), "-metrics", m, "-trace", tr})
		wp.Close()
		os.Stdout = old
		out, readErr := io.ReadAll(rp)
		if runErr != nil {
			t.Fatalf("shards=%d: %v", shards, runErr)
		}
		if readErr != nil {
			t.Fatal(readErr)
		}
		var kept []string
		for _, line := range strings.Split(string(out), "\n") {
			if strings.HasPrefix(line, "workers:") {
				continue // the one wall-clock line
			}
			kept = append(kept, line)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return mb, tb, strings.Join(kept, "\n")
	}
	m1, t1, out1 := runOnce(1)
	if !bytes.Contains(m1, []byte(`"sim.shard.events{p0}"`)) {
		t.Fatalf("sharded metrics missing shard counters:\n%.300s", m1)
	}
	if !bytes.Contains(m1, []byte(`"net.cross.sent"`)) {
		t.Fatalf("sharded metrics missing cross-partition counters:\n%.300s", m1)
	}
	for _, shards := range []int{2, 4, 8} {
		m, tr, out := runOnce(shards)
		if !bytes.Equal(m, m1) {
			t.Errorf("-shards %d metrics differ from -shards 1", shards)
		}
		if !bytes.Equal(tr, t1) {
			t.Errorf("-shards %d trace differs from -shards 1", shards)
		}
		if out != out1 {
			t.Errorf("-shards %d stdout differs from -shards 1:\n%s\n----\n%s", shards, out, out1)
		}
	}
}

// captureRun runs the CLI with stdout captured, returning the output
// and the run error.
func captureRun(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wp
	runErr := run(args)
	wp.Close()
	os.Stdout = old
	out, readErr := io.ReadAll(rp)
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(out), runErr
}

// TestScenarioRunGoldenDeterminism is the scenario engine's CLI
// determinism gate: the same .scn file, run twice, must print a
// byte-identical report and export byte-identical metrics JSON. This is
// the golden scripts/verify.sh replays against the shipped examples.
func TestScenarioRunGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	scn := filepath.Join(dir, "drill.scn")
	script := `scenario cli-drill
seed 7
horizon 1200s
fleet ws 8
at 60s jobs 3 nodes=2 work=120s every=60s grain=10s
at 300s crash 2 for 120s
expect faults.injected == 1 at end
expect glunix.rejoins >= 1 at end
expect glunix.jobs.completed == 3 at end
`
	if err := os.WriteFile(scn, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	runOnce := func(n string) (string, []byte) {
		m := filepath.Join(dir, "scn"+n+".json")
		out, err := captureRun(t, []string{"run", "-metrics", m, scn})
		if err != nil {
			t.Fatalf("run %s: %v\n%s", n, err, out)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		return out, mb
	}
	out1, m1 := runOnce("1")
	out2, m2 := runOnce("2")
	if out1 != out2 {
		t.Errorf("same scenario produced different reports:\n%s\n----\n%s", out1, out2)
	}
	if !bytes.Equal(m1, m2) {
		t.Error("same scenario produced different metrics JSON")
	}
	for _, want := range []string{"result: PASS", "faults: 1/1 applied", "scenario.asserts"} {
		if !strings.Contains(out1+string(m1), want) {
			t.Errorf("report+metrics missing %q:\n%s", want, out1)
		}
	}
}

// TestScenarioShardedWorkerInvariance pins the scenario half of the
// DESIGN.md §10 contract at the CLI boundary: a sharded-fleet scenario
// report is byte-identical for any -shards worker count.
func TestScenarioShardedWorkerInvariance(t *testing.T) {
	dir := t.TempDir()
	scn := filepath.Join(dir, "sharded.scn")
	script := `scenario cli-sharded
seed 9
fleet ws 32
fleet shards 8 rounds=2 barriers=2
expect net.drops == 0 at end
expect net.cross.sent > 0 at end
`
	if err := os.WriteFile(scn, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	runOnce := func(workers int) string {
		out, err := captureRun(t, []string{"run", "-shards", fmt.Sprint(workers), scn})
		if err != nil {
			t.Fatalf("workers=%d: %v\n%s", workers, err, out)
		}
		return out
	}
	out1 := runOnce(1)
	if !strings.Contains(out1, "result: PASS") {
		t.Fatalf("sharded scenario did not pass:\n%s", out1)
	}
	for _, workers := range []int{2, 4, 8} {
		if out := runOnce(workers); out != out1 {
			t.Errorf("-shards %d report differs from -shards 1:\n%s\n----\n%s", workers, out, out1)
		}
	}
}

// TestOperatorScenarioShardsInvariance pins that a scenario driven by
// operator verbs (cordon/drain/remediate — the shipped self-healing
// drill) produces a byte-identical report at every -shards worker
// count. Operator scenarios run on the classic single engine, which
// ignores the worker count entirely, so the report must not merely be
// equivalent — it must not change at all.
func TestOperatorScenarioShardsInvariance(t *testing.T) {
	scn := filepath.Join("..", "..", "examples", "scenarios", "self-healing.scn")
	runOnce := func(workers int) string {
		out, err := captureRun(t, []string{"run", "-shards", fmt.Sprint(workers), scn})
		if err != nil {
			t.Fatalf("workers=%d: %v\n%s", workers, err, out)
		}
		return out
	}
	out1 := runOnce(1)
	if !strings.Contains(out1, "result: PASS") {
		t.Fatalf("operator scenario did not pass:\n%s", out1)
	}
	for _, verb := range []string{"cp.cordons", "cp.drains", "remediate.rebuilds"} {
		if !strings.Contains(out1, verb) {
			t.Fatalf("report does not exercise operator verb metric %q:\n%s", verb, out1)
		}
	}
	for _, workers := range []int{2, 4} {
		if out := runOnce(workers); out != out1 {
			t.Errorf("-shards %d report differs from -shards 1:\n%s\n----\n%s", workers, out, out1)
		}
	}
}

// TestScenarioAssertFailureExit pins the exit-code contract: a failed
// assertion still prints the full report, then surfaces errAssertFailed
// (exit 2), distinct from parse errors (exit 1).
func TestScenarioAssertFailureExit(t *testing.T) {
	dir := t.TempDir()
	scn := filepath.Join(dir, "fail.scn")
	script := `scenario cli-fail
seed 1
horizon 600s
fleet ws 4
expect glunix.rejoins >= 100 at end
expect no.such.metric == 0 at end
`
	if err := os.WriteFile(scn, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureRun(t, []string{"run", scn})
	if !errors.Is(err, errAssertFailed) {
		t.Fatalf("want errAssertFailed, got %v", err)
	}
	for _, want := range []string{"result: FAIL", "FAIL", "UNKNOWN", "no such metric"} {
		if !strings.Contains(out, want) {
			t.Errorf("failure report missing %q:\n%s", want, out)
		}
	}

	// Parse errors are ordinary errors, not errAssertFailed.
	bad := filepath.Join(dir, "bad.scn")
	if err := os.WriteFile(bad, []byte("scenario x\nbogus line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := captureRun(t, []string{"run", bad}); err == nil || errors.Is(err, errAssertFailed) {
		t.Fatalf("parse error misclassified: %v", err)
	}
}

// TestCheckShippedScenarios parses every scenario shipped under
// examples/scenarios/ through the check subcommand.
func TestCheckShippedScenarios(t *testing.T) {
	files, err := filepath.Glob("../../examples/scenarios/*.scn")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("expected at least 2 shipped scenarios, found %v", files)
	}
	out, err := captureRun(t, append([]string{"check"}, files...))
	if err != nil {
		t.Fatalf("check: %v\n%s", err, out)
	}
	for _, f := range files {
		if !strings.Contains(out, f+": ok") {
			t.Errorf("check output missing %s:\n%s", f, out)
		}
	}
}

// TestFaultPlanFromFile exercises the file branch of -faults.
func TestFaultPlanFromFile(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "plan.txt")
	if err := os.WriteFile(plan, []byte("10m crash 3 for 5m\n30m partition 2,4 for 2m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-ws", "8", "-hours", "1", "-seed", "2", "-faults", plan}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFaultSpec(t *testing.T) {
	if err := run([]string{"-ws", "8", "-hours", "1", "-faults", "seed:zzz"}); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}
