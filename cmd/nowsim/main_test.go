package main

import "testing"

func TestTinyScenario(t *testing.T) {
	if err := run([]string{"-ws", "8", "-hours", "1", "-policy", "migrate"}); err != nil {
		t.Fatal(err)
	}
}

func TestRestartPolicy(t *testing.T) {
	if err := run([]string{"-ws", "6", "-hours", "1", "-policy", "restart", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadPolicy(t *testing.T) {
	if err := run([]string{"-policy", "nonsense"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}
