package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestTinyScenario(t *testing.T) {
	if err := run([]string{"-ws", "8", "-hours", "1", "-policy", "migrate"}); err != nil {
		t.Fatal(err)
	}
}

func TestRestartPolicy(t *testing.T) {
	if err := run([]string{"-ws", "6", "-hours", "1", "-policy", "restart", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadPolicy(t *testing.T) {
	if err := run([]string{"-policy", "nonsense"}); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestMetricsGoldenDeterminism is the observability layer's end-to-end
// determinism gate: the same seeded scenario, run twice through the
// full CLI path, must export byte-identical metrics and trace JSON.
func TestMetricsGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		m := filepath.Join(dir, "m"+n+".json")
		tr := filepath.Join(dir, "t"+n+".json")
		if err := run([]string{"-ws", "8", "-hours", "1", "-seed", "5",
			"-metrics", m, "-trace", tr}); err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return mb, tb
	}
	m1, t1 := runOnce("1")
	m2, t2 := runOnce("2")
	if !bytes.Equal(m1, m2) {
		t.Fatal("same seed produced different metrics JSON")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same seed produced different trace JSON")
	}
	if len(m1) == 0 || !bytes.Contains(m1, []byte(`"now-metrics/1"`)) {
		t.Fatalf("metrics file malformed:\n%.200s", m1)
	}
}

// TestFaultedRunGoldenDeterminism is the CLI half of the fault
// subsystem's determinism gate: the same generated fault plan, injected
// into the same seeded scenario twice, must export byte-identical
// metrics — including the faults.* counters and fault.* spans.
func TestFaultedRunGoldenDeterminism(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(n string) ([]byte, []byte) {
		m := filepath.Join(dir, "fm"+n+".json")
		tr := filepath.Join(dir, "ft"+n+".json")
		if err := run([]string{"-ws", "8", "-hours", "1", "-seed", "5",
			"-faults", "seed:7", "-metrics", m, "-trace", tr}); err != nil {
			t.Fatal(err)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		return mb, tb
	}
	m1, t1 := runOnce("1")
	m2, t2 := runOnce("2")
	if !bytes.Equal(m1, m2) {
		t.Fatal("same fault plan produced different metrics JSON")
	}
	if !bytes.Equal(t1, t2) {
		t.Fatal("same fault plan produced different trace JSON")
	}
	if !bytes.Contains(m1, []byte(`"faults.injected"`)) {
		t.Fatalf("faulted run exported no faults.injected counter:\n%.300s", m1)
	}
}

// TestFaultPlanFromFile exercises the file branch of -faults.
func TestFaultPlanFromFile(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "plan.txt")
	if err := os.WriteFile(plan, []byte("10m crash 3 for 5m\n30m partition 2,4 for 2m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-ws", "8", "-hours", "1", "-seed", "2", "-faults", plan}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFaultSpec(t *testing.T) {
	if err := run([]string{"-ws", "8", "-hours", "1", "-faults", "seed:zzz"}); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}
