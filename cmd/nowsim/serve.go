package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	now "github.com/nowproject/now"
)

// serveCluster runs the long-lived server mode: build a NOW, map its
// virtual clock onto the wall clock, and expose the operator API over
// HTTP until interrupted. See docs/CONTROLPLANE.md.
//
//	nowsim serve -ws 32 -xfs 10 -spares 2 -addr :8080 -rate 10
//	nowsim serve -ws 16 -rate 0          # free-running, max speed
//	nowsim serve -ws 32 -remediate      # self-healing armed from t=0
func serveCluster(args []string) error {
	fs := flag.NewFlagSet("nowsim serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
	ws := fs.Int("ws", 32, "workstations in the NOW")
	xfsNodes := fs.Int("xfs", 10, "xFS storage nodes (0 = no storage fleet)")
	spares := fs.Int("spares", 2, "xFS hot spares")
	managers := fs.Int("managers", 2, "xFS metadata managers")
	seed := fs.Int64("seed", 1, "random seed")
	rate := fs.Float64("rate", 10, "virtual-to-wall speedup (0 = free-running)")
	jobEvery := fs.Duration("job-every", 45*1e9, "background job interarrival (0 = idle cluster)")
	remediate := fs.Bool("remediate", false, "arm self-healing remediation from the start")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stack, err := now.NewControlPlaneStack(now.ControlPlaneStackConfig{
		Seed:         *seed,
		Workstations: *ws,
		XFSNodes:     *xfsNodes,
		Spares:       *spares,
		Managers:     *managers,
		JobEvery:     now.Duration(jobEvery.Nanoseconds()),
		RemediateOn:  *remediate,
	})
	if err != nil {
		return err
	}
	defer stack.Engine.Close()

	srv := now.NewControlPlaneServer(stack.CP, stack.Remediator,
		now.ControlPlaneServerConfig{Rate: *rate})
	srv.Start()
	defer srv.Stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // reported via the blocked signal wait

	fmt.Printf("NOW serving: %d workstations", *ws)
	if *xfsNodes > 0 {
		fmt.Printf(", xfs %d nodes (%d spares, %d managers)", *xfsNodes, *spares, *managers)
	}
	if *rate > 0 {
		fmt.Printf(", %gx wall clock", *rate)
	} else {
		fmt.Printf(", free-running")
	}
	fmt.Printf("\noperator API at http://%s/v1/ — try: nowctl -addr http://%s status\n",
		ln.Addr(), ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down")
	hs.Close()
	return srv.Err()
}
