// Command nowtrace generates and summarises the synthetic traces that
// stand in for the paper's measurement data, and optionally writes them
// as CSV for external analysis.
//
// Usage:
//
//	nowtrace -kind activity -ws 53 -days 2
//	nowtrace -kind jobs -hours 48 -csv jobs.csv
//	nowtrace -kind files -accesses 50000
//	nowtrace -kind nfs
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	now "github.com/nowproject/now"
	"github.com/nowproject/now/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nowtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("nowtrace", flag.ContinueOnError)
	kind := fs.String("kind", "activity", "trace kind: activity, jobs, files, nfs")
	ws := fs.Int("ws", 53, "workstations (activity)")
	days := fs.Int("days", 2, "days (activity)")
	hours := fs.Int("hours", 48, "hours (jobs)")
	accesses := fs.Int("accesses", 50_000, "block accesses (files)")
	seed := fs.Int64("seed", 1, "random seed")
	csvPath := fs.String("csv", "", "write the raw trace to this CSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var out *csv.Writer
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = csv.NewWriter(f)
		defer out.Flush()
	}

	switch *kind {
	case "activity":
		cfg := trace.DefaultActivityConfig(*ws, *days)
		cfg.Seed = *seed
		tr := trace.GenerateActivity(cfg)
		fmt.Printf("activity trace: %d workstations, %d days, %d events\n",
			tr.Workstations, *days, len(tr.Events))
		for day := 0; day < *days; day++ {
			from, to := trace.Daytime(day)
			fmt.Printf("  day %d: %.0f%% of machines fully idle 9am-5pm\n",
				day, tr.FractionFullyIdle(from, to)*100)
		}
		if out != nil {
			_ = out.Write([]string{"t_ns", "workstation", "active"})
			for _, ev := range tr.Events {
				_ = out.Write([]string{
					strconv.FormatInt(int64(ev.T), 10),
					strconv.Itoa(ev.WS),
					strconv.FormatBool(ev.Active),
				})
			}
		}
	case "jobs":
		cfg := trace.DefaultJobTraceConfig(now.Duration(*hours) * now.Hour)
		cfg.Seed = *seed
		jobs := trace.GenerateJobs(cfg)
		fmt.Printf("parallel job log: %d jobs over %d hours, total work %v\n",
			len(jobs), *hours, trace.TotalWork(jobs))
		hist := map[int]int{}
		for _, j := range jobs {
			hist[j.Nodes]++
		}
		for _, n := range []int{1, 2, 4, 8, 16, 32} {
			if hist[n] > 0 {
				fmt.Printf("  %2d-node jobs: %d\n", n, hist[n])
			}
		}
		if out != nil {
			_ = out.Write([]string{"id", "arrive_ns", "nodes", "work_ns", "grain_ns"})
			for _, j := range jobs {
				_ = out.Write([]string{
					strconv.Itoa(j.ID),
					strconv.FormatInt(int64(j.Arrive), 10),
					strconv.Itoa(j.Nodes),
					strconv.FormatInt(int64(j.Work), 10),
					strconv.FormatInt(int64(j.CommGrain), 10),
				})
			}
		}
	case "files":
		cfg := trace.DefaultFileTraceConfig()
		cfg.Accesses = *accesses
		cfg.Seed = *seed
		accs := trace.GenerateFileTrace(cfg)
		writes := 0
		sharedN := 0
		for _, a := range accs {
			if a.Write {
				writes++
			}
			if int(a.File) < cfg.SharedFiles {
				sharedN++
			}
		}
		fmt.Printf("file trace: %d accesses, %d clients; %.0f%% shared, %.0f%% writes\n",
			len(accs), cfg.Clients,
			float64(sharedN)/float64(len(accs))*100, float64(writes)/float64(len(accs))*100)
		if out != nil {
			_ = out.Write([]string{"t_ns", "client", "file", "block", "write"})
			for _, a := range accs {
				_ = out.Write([]string{
					strconv.FormatInt(int64(a.T), 10),
					strconv.Itoa(a.Client),
					strconv.FormatUint(uint64(a.File), 10),
					strconv.FormatUint(uint64(a.Block), 10),
					strconv.FormatBool(a.Write),
				})
			}
		}
	case "nfs":
		ops := trace.GenerateNFS(trace.DefaultNFSTraceConfig())
		small, total := 0, 0
		for _, op := range ops {
			total += 2
			if op.RequestBytes < 200 {
				small++
			}
			if op.ReplyBytes < 200 {
				small++
			}
		}
		fmt.Printf("NFS trace: %d operations; %.1f%% of messages under 200 bytes\n",
			len(ops), float64(small)/float64(total)*100)
		if out != nil {
			_ = out.Write([]string{"request_bytes", "reply_bytes", "metadata"})
			for _, op := range ops {
				_ = out.Write([]string{
					strconv.Itoa(op.RequestBytes),
					strconv.Itoa(op.ReplyBytes),
					strconv.FormatBool(op.Metadata),
				})
			}
		}
	default:
		return fmt.Errorf("unknown trace kind %q", *kind)
	}
	return nil
}
