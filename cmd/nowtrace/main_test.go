package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllKinds(t *testing.T) {
	for _, kind := range []string{"activity", "jobs", "files", "nfs"} {
		if err := run([]string{"-kind", kind, "-days", "1", "-hours", "2", "-accesses", "2000"}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestCSVExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.csv")
	if err := run([]string{"-kind", "jobs", "-hours", "4", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "id,arrive_ns") {
		t.Fatalf("bad CSV: %d lines, header %q", len(lines), lines[0])
	}
}

func TestUnknownKind(t *testing.T) {
	if err := run([]string{"-kind", "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
