package now_test

import (
	"errors"
	"fmt"

	now "github.com/nowproject/now"
)

// Example assembles a small NOW entirely through the front door: four
// workstations on an ATM fabric exchange an Active Message, then a
// six-node serverless file system stores a file through the pipelined
// data path (write-behind group commit) and scans it back with one
// vectored read.
func Example() {
	// A fabric of four workstations speaking Active Messages.
	e := now.NewEngine(1)
	fab, err := now.NewFabric(e, now.ATM155(4))
	if err != nil {
		panic(err)
	}
	eps := make([]*now.AMEndpoint, 4)
	for i := range eps {
		n := now.NewNode(e, now.DefaultNodeConfig(now.NodeID(i)))
		eps[i] = now.NewAMEndpoint(e, n, fab, now.DefaultAMConfig())
	}
	const hPing now.HandlerID = 0x70
	eps[1].Register(hPing, func(p *now.Proc, m now.AMsg) (any, int) {
		return "pong", 8
	})
	e.Spawn("ping", func(p *now.Proc) {
		reply, err := eps[0].Call(p, now.NodeID(1), hPing, "ping", 8)
		if err != nil {
			panic(err)
		}
		fmt.Println("am reply:", reply)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, now.ErrStopped) {
		panic(err)
	}
	e.Close()

	// A serverless file system with the pipelined data path on.
	e2 := now.NewEngine(1)
	cfg := now.PipelinedXFSConfig(6)
	cfg.BlockBytes = 1024
	fsys, err := now.NewXFS(e2, cfg)
	if err != nil {
		panic(err)
	}
	e2.Spawn("scan", func(p *now.Proc) {
		data := make([]byte, 8*1024)
		for i := range data {
			data[i] = byte(i)
		}
		w := fsys.Client(0)
		if err := w.WriteAt(p, now.FileID(1), 0, data); err != nil {
			panic(err)
		}
		if err := w.Sync(p); err != nil { // one group commit flushes all 8 blocks
			panic(err)
		}
		got, err := fsys.Client(3).ReadAt(p, now.FileID(1), 0, 8)
		if err != nil {
			panic(err)
		}
		st := fsys.Stats()
		// Two range round trips: one fetches the scan's misses, one is
		// the read-ahead already running past the scanned window.
		fmt.Printf("scanned %d bytes in %d range round trips, %d group commit(s)\n",
			len(got), st.RangeReads, st.GroupCommits)
		e2.Stop()
	})
	if err := e2.Run(); !errors.Is(err, now.ErrStopped) {
		panic(err)
	}
	e2.Close()

	// Output:
	// am reply: pong
	// scanned 8192 bytes in 2 range round trips, 1 group commit(s)
}
