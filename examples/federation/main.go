// NOW of NOWs: two buildings federated over a campus WAN through the
// public facade. The "library" cluster owns the files; "annex" has no
// storage of its own, takes a whole-file lease on first touch, then
// reads from its cross-cluster cache. A burst of jobs submitted to the
// annex spills over the WAN when the cost model says shipping the
// memory image beats waiting in the local queue.
package main

import (
	"fmt"
	"log"

	now "github.com/nowproject/now"
)

func main() {
	fed, err := now.NewFederation(now.FederationConfig{
		Clusters: []now.FederationCluster{
			{Name: "library", Workstations: 8, XFSNodes: 6},
			{Name: "annex", Workstations: 4},
		},
		WAN:   now.WANConfig{Latency: 20 * now.Millisecond, BandwidthMbps: 100},
		FedFS: now.FederatedXFSConfig{FileBlocks: 16},
		Spill: now.SpillConfig{Policy: now.SpillCostAware, StartEnabled: true},
		Seed:  1995,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fed.Close()
	library := fed.ClusterByName("library")
	annex := fed.ClusterByName("annex")

	// The library seeds a file; the annex reads it twice — the first
	// pass takes the lease warmup over the WAN, the second is local.
	library.Engine().Spawn("seed", func(p *now.Proc) {
		block := make([]byte, 8192)
		copy(block, "card catalog, volume 1")
		if err := library.FS.Client(0).Write(p, now.FileID(1), 0, block); err != nil {
			log.Fatal(err)
		}
		if err := library.FS.Client(0).Sync(p); err != nil {
			log.Fatal(err)
		}
	})
	annex.Engine().Spawn("reader", func(p *now.Proc) {
		p.Sleep(2 * now.Second) // let the seed land
		t0 := p.Now()
		if _, err := annex.FedFS().Read(p, now.FileID(1), 0); err != nil {
			log.Fatal(err)
		}
		cold := p.Now() - t0
		t0 = p.Now()
		got, err := annex.FedFS().Read(p, now.FileID(1), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("annex read %q: cold %v (lease warmup over the WAN), warm %v (local cache)\n",
			got[:22], now.Duration(cold), now.Duration(p.Now()-t0))
	})

	// Overload the annex: a trickle of gang jobs as wide as the whole
	// cluster. The first occupies every workstation, the next queues
	// (an empty queue is cheaper than any WAN transfer), and once the
	// modelled queue wait exceeds the cost of shipping four 32 MiB
	// memory images, the spiller sends the rest to the library.
	for i := 0; i < 4; i++ {
		spec := now.FedJobSpec{ID: 10 + i, NProcs: 4, Work: 20 * now.Second, Grain: now.Second}
		annex.Engine().At(now.Time(3*now.Second)+now.Time(i)*now.Time(now.Second),
			func() { fed.Submit(annex.ID(), spec) })
	}

	if err := fed.Run(now.Time(3 * now.Minute)); err != nil {
		log.Fatal(err)
	}
	for _, c := range []*now.FederationMember{library, annex} {
		st := c.GL.Master.Stats()
		fmt.Printf("%-7s ran %d jobs\n", c.Name(), st.JobsCompleted)
	}
}
