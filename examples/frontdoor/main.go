// Frontdoor: the parts of the facade the other examples don't touch —
// collective operations, deterministic fault injection, and one-call
// metrics instrumentation — composed into a single observable run, all
// through the public now API.
package main

import (
	"errors"
	"fmt"
	"log"

	now "github.com/nowproject/now"
)

func main() {
	const nodes = 16
	e := now.NewEngine(1)

	// Wire a fabric of workstations speaking Active Messages.
	fab, err := now.NewFabric(e, now.Myrinet(nodes))
	if err != nil {
		log.Fatal(err)
	}
	eps := make([]*now.AMEndpoint, nodes)
	for i := range eps {
		n := now.NewNode(e, now.DefaultNodeConfig(now.NodeID(i)))
		eps[i] = now.NewAMEndpoint(e, n, fab, now.DefaultAMConfig())
	}

	// Collectives over the endpoints: every rank barriers, then runs a
	// personalized all-to-all exchange.
	comm, err := now.NewComm(e, eps, now.CollectiveConfig{Arity: 4})
	if err != nil {
		log.Fatal(err)
	}

	// A serverless file system on its own engine, with the pipelined
	// data path, plus a scripted fault: its first storage node dies
	// mid-run and reads go degraded through RAID parity.
	e2 := now.NewEngine(1)
	fsys, err := now.NewXFS(e2, now.PipelinedXFSConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	plan := now.ScriptedFaultPlan("lose-a-disk",
		now.Fault{At: now.Time(200 * now.Millisecond), Kind: now.FaultDiskFail, Node: 7})
	inj := now.NewInjector(e2, now.NewXFSFaultTarget(fsys), plan, nil)
	inj.Schedule()

	// One registry per engine; InstrumentAll wires every subsystem.
	reg := now.NewRegistry()
	now.InstrumentAll(reg, e, fab, comm)
	reg2 := now.NewRegistry()
	now.InstrumentAll(reg2, e2, fsys)

	// Drive the collectives: all ranks in lockstep.
	wg := now.NewWaitGroup(e, "ranks")
	wg.Add(nodes)
	for r := 0; r < nodes; r++ {
		r := r
		e.Spawn("rank", func(p *now.Proc) {
			defer wg.Done()
			if err := now.Barrier(p, comm, r); err != nil {
				log.Fatal(err)
			}
			if err := now.AllToAll(p, comm, r, 1024); err != nil {
				log.Fatal(err)
			}
		})
	}
	e.Spawn("monitor", func(p *now.Proc) {
		wg.Wait(p)
		fmt.Printf("collectives: %d ranks barriered and exchanged %d-byte blocks by t=%v\n",
			comm.Size(), 1024, now.Duration(p.Now()))
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, now.ErrStopped) {
		log.Fatal(err)
	}
	e.Close()

	// Drive the file system across the injected disk failure.
	e2.Spawn("writer", func(p *now.Proc) {
		data := make([]byte, 16*8192)
		for i := range data {
			data[i] = byte(i)
		}
		w := fsys.Client(0)
		if err := w.WriteAt(p, now.FileID(1), 0, data); err != nil {
			log.Fatal(err)
		}
		if err := w.Sync(p); err != nil {
			log.Fatal(err)
		}
		p.Sleep(300 * now.Millisecond) // the scripted disk failure lands here
		got, err := fsys.Client(3).ReadAt(p, now.FileID(1), 0, 16)
		if err != nil {
			log.Fatal(err)
		}
		st := fsys.Stats()
		fmt.Printf("xfs: scanned %d KB after a disk failure (%d faults applied), %d range round trips\n",
			len(got)>>10, inj.Applied(), st.RangeReads)
		e2.Stop()
	})
	if err := e2.Run(); !errors.Is(err, now.ErrStopped) {
		log.Fatal(err)
	}
	e2.Close()

	// Everything above was observed; snapshot both registries and show
	// a few of the collected metrics.
	reg.Snapshot()
	reg2.Snapshot()
	fmt.Println("metrics:")
	for _, pick := range []struct {
		r    *now.MetricsRegistry
		name string
	}{
		{reg, "collective.barriers"},
		{reg, "net.delivered"},
		{reg2, "xfs.batch.tokens"},
		{reg2, "xfs.batch.commits"},
	} {
		if v, ok := pick.r.CounterValue(pick.name); ok {
			fmt.Printf("  %-22s %d\n", pick.name, v)
		} else if v, ok := pick.r.GaugeValue(pick.name); ok {
			fmt.Printf("  %-22s %d\n", pick.name, v)
		}
	}
	// The full registries export as stable JSON for tooling:
	// reg2.WriteMetricsJSON(os.Stdout) — see docs/OBSERVABILITY.md.
}
