// Gator: the paper's Table 4 story. First the Demmel–Smith analytic
// model prices the same atmospheric-chemistry run on a Cray C-90, an
// Intel Paragon, and four progressively upgraded NOWs; then a scaled-
// down tracer actually executes on the simulated cluster so the phases
// can be watched rather than believed.
package main

import (
	"fmt"
	"log"

	"github.com/nowproject/now/internal/gator"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/sim"
)

func main() {
	fmt.Println("Table 4 — Gator atmospheric model (36 Gflop, 3.9 GB input):")
	for _, row := range gator.Table4() {
		fmt.Println("  " + row.String())
	}

	fmt.Println("\nMini tracer actually running on the simulated NOW (8 nodes):")
	for _, c := range []struct {
		name   string
		fabric func(int) netsim.Config
		pfs    bool
	}{
		{"Ethernet + sequential FS", netsim.Ethernet10, false},
		{"ATM + sequential FS", netsim.ATM155, false},
		{"ATM + parallel FS", netsim.ATM155, true},
	} {
		e := sim.NewEngine(1)
		cfg := gator.DefaultMiniConfig(8)
		cfg.Fabric = c.fabric
		cfg.ParallelFS = c.pfs
		res, err := gator.RunMini(e, cfg)
		e.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s input %-10v compute %-10v total %v\n",
			c.name, res.Input, res.Compute, res.Total)
	}
	fmt.Println("\nEach upgrade attacks the bottleneck the model predicts — the")
	fmt.Println("same order-of-magnitude staircase as the paper's Table 4.")
}
