// Gator: the paper's Table 4 story. First the Demmel–Smith analytic
// model prices the same atmospheric-chemistry run on a Cray C-90, an
// Intel Paragon, and four progressively upgraded NOWs; then a scaled-
// down tracer actually executes on the simulated cluster so the phases
// can be watched rather than believed.
package main

import (
	"fmt"
	"log"

	now "github.com/nowproject/now"
)

func main() {
	fmt.Println("Table 4 — Gator atmospheric model (36 Gflop, 3.9 GB input):")
	for _, row := range now.GatorTable4() {
		fmt.Println("  " + row.String())
	}

	fmt.Println("\nMini tracer actually running on the simulated NOW (8 nodes):")
	for _, c := range []struct {
		name   string
		fabric func(int) now.FabricConfig
		pfs    bool
	}{
		{"Ethernet + sequential FS", now.Ethernet10, false},
		{"ATM + sequential FS", now.ATM155, false},
		{"ATM + parallel FS", now.ATM155, true},
	} {
		e := now.NewEngine(1)
		cfg := now.DefaultGatorMiniConfig(8)
		cfg.Fabric = c.fabric
		cfg.ParallelFS = c.pfs
		res, err := now.RunGatorMini(e, cfg)
		e.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s input %-10v compute %-10v total %v\n",
			c.name, res.Input, res.Compute, res.Total)
	}
	fmt.Println("\nEach upgrade attacks the bottleneck the model predicts — the")
	fmt.Println("same order-of-magnitude staircase as the paper's Table 4.")
}
