// Migration: the GLUnix sociology story. A parallel job recruits idle
// workstations (saving their users' memory images first); when a user
// returns mid-run, the guest process is migrated away with its memory
// and the user's image is restored — "the machine is returned to the
// exact state it was in before it went idle."
package main

import (
	"errors"
	"fmt"
	"log"

	now "github.com/nowproject/now"
)

func main() {
	e := now.NewEngine(1)
	cfg := now.DefaultGLUnixConfig(6)
	cfg.Policy = now.MigrateOnReturn
	g, err := now.NewGLUnix(e, cfg)
	if err != nil {
		log.Fatal(err)
	}

	job := now.NewJob(1, 3, 2*now.Minute, now.Second)
	e.At(0, func() {
		fmt.Println("t=0      submit a 3-rank gang; it recruits workstations 1-3")
		g.Master.Submit(job)
	})
	e.At(30*now.Second, func() {
		fmt.Println("t=30s    the user of workstation 1 sits down and types")
		g.Daemons[1].SetUserActive(true)
	})
	if err := e.RunUntil(10 * now.Minute); err != nil && !errors.Is(err, now.ErrStopped) {
		log.Fatal(err)
	}
	e.Close()

	st := g.Master.Stats()
	fmt.Printf("\njob done: %v (response %v for 2min of work)\n", job.Done(), job.Response())
	fmt.Printf("evictions: %d, migrations: %d — the gang moved, it did not die\n",
		st.Evictions, st.Migrations)
	fmt.Printf("memory images: %d saved at recruitment, %d restored on return\n",
		st.ImageSaves, st.ImageRestores)
	if st.UserDelays.N() > 0 {
		fmt.Printf("the returning user waited %.2fs for their exact memory state back (paper bound: 4s)\n",
			st.UserDelays.Percentile(100))
	}
}
