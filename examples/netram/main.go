// Netram: the Figure 2 story. An out-of-core multigrid solver pages
// against three memory systems: local disk (thrashing), enough DRAM
// (the ideal), and network RAM — idle memory on other workstations
// reached over a switched LAN. The paper's claim: network RAM runs
// 10–30% slower than all-in-DRAM and 5–10× faster than disk.
package main

import (
	"errors"
	"fmt"
	"log"

	now "github.com/nowproject/now"
)

const mb = 1 << 20

func run(localMem int64, servers int, problem int64) now.MultigridResult {
	e := now.NewEngine(1)
	defer e.Close()
	fab, err := now.NewFabric(e, now.ATM155(servers+1))
	if err != nil {
		log.Fatal(err)
	}
	mk := func(id int, mem int64) *now.AMEndpoint {
		cfg := now.DefaultNodeConfig(now.NodeID(id))
		cfg.MemoryBytes = mem
		return now.NewAMEndpoint(e, now.NewNode(e, cfg), fab, now.DefaultAMConfig())
	}
	reg := now.NewNetRAMRegistry()
	pager := now.NewNetRAMPager(mk(0, localMem), reg)
	for i := 0; i < servers; i++ {
		reg.Offer(now.NewNetRAMServer(mk(i+1, 256*mb), 16384))
	}
	var res now.MultigridResult
	e.Spawn("solver", func(p *now.Proc) {
		res = now.RunMultigrid(p, pager, now.DefaultMultigridConfig(problem))
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, now.ErrStopped) {
		log.Fatal(err)
	}
	return res
}

func main() {
	const problem = 12 * mb // 3× the 4 MB of "local" DRAM
	fmt.Printf("multigrid, %d MB problem, 4 MB local DRAM:\n\n", problem/mb)

	disk := run(4*mb, 0, problem)
	dram := run(32*mb, 0, problem)
	nr := run(4*mb, 3, problem)

	fmt.Printf("  paging to local disk:   %10v  (%d disk reads)\n", disk.Elapsed, disk.Pager.DiskReads)
	fmt.Printf("  all in DRAM:            %10v\n", dram.Elapsed)
	fmt.Printf("  network RAM (3 hosts):  %10v  (%d remote hits, %d disk reads)\n",
		nr.Elapsed, nr.Pager.RemoteHits, nr.Pager.DiskReads)
	fmt.Printf("\n  network RAM vs DRAM: %.2fx slower   (paper: 1.1–1.3x)\n",
		float64(nr.Elapsed)/float64(dram.Elapsed))
	fmt.Printf("  disk vs network RAM: %.1fx slower   (paper: 5–10x)\n",
		float64(disk.Elapsed)/float64(nr.Elapsed))
}
