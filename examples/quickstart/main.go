// Quickstart: assemble an 8-workstation NOW through the public facade,
// run a gang-scheduled parallel job under GLUnix, and use xFS for
// serverless file storage — the paper's pitch in forty lines of API.
package main

import (
	"errors"
	"fmt"
	"log"

	now "github.com/nowproject/now"
)

func main() {
	// A parallel job on the global layer.
	e := now.NewEngine(1)
	g, err := now.NewGLUnix(e, now.DefaultGLUnixConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	job := now.NewJob(1, 8, 30*now.Second, now.Second)
	e.At(0, func() { g.Master.Submit(job) })
	if err := e.RunUntil(5 * now.Minute); err != nil && !errors.Is(err, now.ErrStopped) {
		log.Fatal(err)
	}
	e.Close()
	fmt.Printf("8-rank gang finished in %v (work 30s/rank + recruitment)\n", job.Response())
	fmt.Printf("global layer: %d memory images saved before recruiting idle machines\n",
		g.Master.Stats().ImageSaves)

	// The serverless file system.
	e2 := now.NewEngine(1)
	fsys, err := now.NewXFS(e2, now.DefaultXFSConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	e2.Spawn("client", func(p *now.Proc) {
		block := make([]byte, 8192)
		copy(block, "hello from a serverless file system")
		if err := fsys.Client(2).Write(p, now.FileID(7), 0, block); err != nil {
			log.Fatal(err)
		}
		got, err := fsys.Client(5).Read(p, now.FileID(7), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("xFS: client 5 read client 2's write: %q\n", got[:35])
		e2.Stop()
	})
	if err := e2.Run(); !errors.Is(err, now.ErrStopped) {
		log.Fatal(err)
	}
	st := fsys.Stats()
	fmt.Printf("xFS: %d cache-to-cache transfers, %d storage reads — no server anywhere\n",
		st.CacheTransfers, st.StorageReads)
}
