// xfsbench: the serverless-availability story. A file is striped with
// parity across every workstation's disk; a storage node is crashed
// mid-run and reads continue through reconstruction; then the node
// hosting a metadata manager is crashed and its hot standby takes over.
// No server, no single point of failure.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	now "github.com/nowproject/now"
)

func main() {
	e := now.NewEngine(1)
	cfg := now.DefaultXFSConfig(8)
	fsys, err := now.NewXFS(e, cfg)
	if err != nil {
		log.Fatal(err)
	}
	const blocks = 32
	pattern := func(i uint32) []byte {
		b := make([]byte, cfg.BlockBytes)
		for j := range b {
			b[j] = byte(int(i)*31 + j)
		}
		return b
	}
	e.Spawn("bench", func(p *now.Proc) {
		w := fsys.Client(2)
		start := p.Now()
		for i := uint32(0); i < blocks; i++ {
			if err := w.Write(p, now.FileID(4), i, pattern(i)); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Sync(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote+synced %d×8KB blocks across 8 workstation disks (RAID-5) in %v\n",
			blocks, p.Now()-start)

		// Crash a pure storage node.
		fmt.Println("crashing workstation 7 (storage only)...")
		fsys.CrashStorage(7)
		start = p.Now()
		for i := uint32(0); i < blocks; i++ {
			got, err := fsys.Client(5).Read(p, now.FileID(4), i)
			if err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, pattern(i)) {
				log.Fatal("data corrupted through degraded read")
			}
		}
		fmt.Printf("all %d blocks re-read correctly through XOR parity in %v\n",
			blocks, p.Now()-start)

		// Crash the node hosting manager 0; the standby adopts the
		// replicated metadata.
		fmt.Println("crashing the node hosting metadata manager 0...")
		fsys.FailManager(p, 0)
		got, err := fsys.Client(6).Read(p, now.FileID(4), 0)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, pattern(0)) {
			log.Fatal("failover returned wrong data")
		}
		fmt.Println("metadata failover complete: reads and writes continue")
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, now.ErrStopped) {
		log.Fatal(err)
	}
	st := fsys.Stats()
	fmt.Printf("\nstats: %d reads, %d writes, %d cache transfers, %d storage reads, %d failovers\n",
		st.Reads, st.Writes, st.CacheTransfers, st.StorageReads, st.Failovers)
}
