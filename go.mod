module github.com/nowproject/now

go 1.22
