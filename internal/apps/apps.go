// Package apps implements the parallel application kernels and the
// scheduling study of the paper's Figure 4: the slowdown of local
// scheduling relative to coscheduling as the number of competing
// parallel jobs grows.
//
// The model captures the mechanism the paper describes, at the
// granularity where it lives — the operating system schedules
// *processes* for full quanta, and a CM-5-style parallel process
// spin-polls the network rather than blocking:
//
//   - each node runs a round-robin scheduler with a ~100 ms quantum over
//     one process per competing job;
//   - a process makes progress (computation, message handling, polling)
//     only while scheduled; a process waiting for a message spins away
//     its quantum;
//   - incoming messages land in a bounded per-process buffer and are
//     consumed only when the destination process is scheduled and polls;
//     a full buffer rejects the message and the sender must retry.
//
// Under coscheduling every node runs the same job simultaneously, so
// partners poll each other within microseconds. Under local scheduling
// the partner is usually descheduled, and each interaction costs a
// quantum — which is why Connect (request/reply bound) collapses, Em3d
// (synchronisation every round) suffers, Column (bursts into one
// destination's buffer) is slowed by overflow despite communicating
// rarely, and the random-small-message kernels survive as long as
// buffering absorbs their traffic. That is Figure 4.
package apps

import (
	"fmt"

	"github.com/nowproject/now/internal/sim"
)

// Pattern selects a communication kernel.
type Pattern int

const (
	// RandA sends 4 small one-way messages per round to random peers.
	RandA Pattern = iota + 1
	// RandB sends 16 small one-way messages per round to random peers.
	RandB
	// Column sends a large burst to one fixed destination every few
	// rounds and otherwise computes.
	Column
	// Em3d exchanges ghost zones with both neighbours and waits for
	// theirs every round.
	Em3d
	// Connect performs blocking request/reply to random peers.
	Connect
)

// String names the pattern as the paper does.
func (pt Pattern) String() string {
	switch pt {
	case RandA:
		return "RandA"
	case RandB:
		return "RandB"
	case Column:
		return "Column"
	case Em3d:
		return "Em3d"
	case Connect:
		return "Connect"
	default:
		return fmt.Sprintf("pattern(%d)", int(pt))
	}
}

// Spec describes one parallel job in the study.
type Spec struct {
	Pattern Pattern
	// Ranks is the gang size (one process per node).
	Ranks int
	// Rounds of the main loop.
	Rounds int
	// Compute per round per rank.
	Compute sim.Duration
	// BurstLen is Column's burst size in messages.
	BurstLen int
	// BurstEvery makes Column communicate only every k-th round.
	BurstEvery int
}

// DefaultSpec returns the study's default job shape for a pattern.
func DefaultSpec(pt Pattern, ranks int) Spec {
	return Spec{
		Pattern:    pt,
		Ranks:      ranks,
		Rounds:     30,
		Compute:    25 * sim.Millisecond,
		BurstLen:   192,
		BurstEvery: 6,
	}
}

// msgKind distinguishes traffic classes in the process model.
type msgKind uint8

const (
	msgData msgKind = iota + 1
	msgReq
	msgReply
)

// message is one in-flight communication.
type message struct {
	kind  msgKind
	from  int // sender's node
	seq   uint64
	round int
}

// costs of the communication layer within a process's scheduled time;
// lean user-level Active Messages numbers.
const (
	sendOverhead = 5 * sim.Microsecond
	recvOverhead = 5 * sim.Microsecond
	wireDelay    = 10 * sim.Microsecond // latency + small-message serialization
	pollTick     = 500 * sim.Microsecond
)
