package apps

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
)

func TestPatternString(t *testing.T) {
	for pt, want := range map[Pattern]string{
		RandA: "RandA", RandB: "RandB", Column: "Column", Em3d: "Em3d", Connect: "Connect",
	} {
		if pt.String() != want {
			t.Fatalf("%d.String() = %q", pt, pt.String())
		}
	}
	if Pattern(42).String() == "" {
		t.Fatal("unknown pattern should render")
	}
}

func runMix(t *testing.T, pt Pattern, jobs int, cosched bool) ContentionResult {
	t.Helper()
	e := sim.NewEngine(1)
	defer e.Close()
	res, err := RunContention(e, DefaultContentionConfig(pt, jobs, cosched))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDedicatedRunCloseToIdeal(t *testing.T) {
	res := runMix(t, Connect, 1, false)
	spec := DefaultSpec(Connect, 4)
	ideal := sim.Duration(spec.Rounds) * spec.Compute
	got := res.MaxElapsed()
	if got < ideal {
		t.Fatalf("elapsed %v below pure-compute bound %v", got, ideal)
	}
	if got > 2*ideal {
		t.Fatalf("dedicated Connect %v ≫ ideal %v", got, ideal)
	}
}

func TestAllPatternsCompleteBothDisciplines(t *testing.T) {
	for _, pt := range []Pattern{RandA, RandB, Column, Em3d, Connect} {
		for _, cosched := range []bool{false, true} {
			res := runMix(t, pt, 2, cosched)
			for j, d := range res.Elapsed {
				if d <= 0 {
					t.Fatalf("%v cosched=%v: job %d elapsed %v", pt, cosched, j, d)
				}
			}
		}
	}
}

func TestCoschedulingSharesFairly(t *testing.T) {
	one := runMix(t, Connect, 1, false).MaxElapsed()
	two := runMix(t, Connect, 2, true).MaxElapsed()
	ratio := float64(two) / float64(one)
	if ratio < 1.5 || ratio > 3.5 {
		t.Fatalf("2-job coscheduled / dedicated = %.2f, want ≈2", ratio)
	}
}

func TestConnectCollapsesUnderLocalScheduling(t *testing.T) {
	connect, err := Slowdown(Connect, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	randA, err := Slowdown(RandA, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if connect < 2 {
		t.Fatalf("Connect slowdown %.2f, expected severe", connect)
	}
	if randA > 1.8 {
		t.Fatalf("RandA slowdown %.2f, expected mild", randA)
	}
	if connect < 2*randA {
		t.Fatalf("ordering violated: Connect %.2f vs RandA %.2f", connect, randA)
	}
}

func TestEm3dSuffersFromSynchronisation(t *testing.T) {
	em3d, err := Slowdown(Em3d, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if em3d < 1.3 {
		t.Fatalf("Em3d slowdown %.2f, expected a synchronisation penalty", em3d)
	}
}

func TestColumnOverflowsAndSlows(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultContentionConfig(Column, 2, false)
	cfg.BufferSlots = 16
	local, err := RunContention(e, cfg)
	e.Close()
	if err != nil {
		t.Fatal(err)
	}
	if local.Overflows == 0 {
		t.Fatal("Column under local scheduling should overflow destination buffers")
	}
	e2 := sim.NewEngine(1)
	cfg2 := DefaultContentionConfig(Column, 2, true)
	cfg2.BufferSlots = 16
	gang, err := RunContention(e2, cfg2)
	e2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if gang.Overflows >= local.Overflows {
		t.Fatalf("coscheduling did not reduce overflows: %d vs %d", gang.Overflows, local.Overflows)
	}
	if local.MaxElapsed() <= gang.MaxElapsed() {
		t.Fatalf("Column local %v not slower than coscheduled %v",
			local.MaxElapsed(), gang.MaxElapsed())
	}
}

func TestColumnBufferingRescuesSender(t *testing.T) {
	// The paper: "as long as enough buffering exists on the destination
	// processor, the sending processor is not significantly slowed."
	run := func(slots int) sim.Duration {
		e := sim.NewEngine(1)
		defer e.Close()
		cfg := DefaultContentionConfig(Column, 2, false)
		cfg.BufferSlots = slots
		res, err := RunContention(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxElapsed()
	}
	starved := run(8)
	buffered := run(1024)
	if buffered >= starved {
		t.Fatalf("more buffering did not help Column: %v vs %v", buffered, starved)
	}
}

func TestSlowdownGrowsWithCompetingJobs(t *testing.T) {
	two, err := Slowdown(Connect, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	three, err := Slowdown(Connect, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if three < two*0.9 {
		t.Fatalf("slowdown shrank with more jobs: 2→%.2f, 3→%.2f", two, three)
	}
}

func TestRunContentionValidation(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	if _, err := RunContention(e, ContentionConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runMix(t, Em3d, 2, false).MaxElapsed()
	b := runMix(t, Em3d, 2, false).MaxElapsed()
	if a != b {
		t.Fatalf("same-seed runs diverged: %v vs %v", a, b)
	}
}

func TestRankRNGDeterministicAndDistinct(t *testing.T) {
	a := newRankRNG(1, 0)
	b := newRankRNG(1, 0)
	c := newRankRNG(1, 1)
	if a.next() != b.next() {
		t.Fatal("same seed/rank diverged")
	}
	if a.next() == c.next() {
		t.Fatal("different ranks identical (suspicious)")
	}
}
