package apps

import (
	"fmt"

	"github.com/nowproject/now/internal/sim"
)

// system is one Figure 4 experiment: Jobs copies of a Spec sharing
// Ranks nodes under one scheduling discipline.
type system struct {
	eng     *sim.Engine
	spec    Spec
	jobs    int
	cosched bool
	quantum sim.Duration
	slots   int // inbox capacity per process
	seed    int64

	procs      [][]*aproc // [job][rank]
	schedulers []*nodeSched
	scriptsRun int // procs whose script has finished
	total      int

	overflows int64
	retries   int64
}

// nodeSched is one workstation's process scheduler.
type nodeSched struct {
	sys   *system
	node  int
	local []*aproc // one per job, RR order
	next  int
}

// aproc is one parallel process: it advances (compute, poll, spin) only
// while the node scheduler grants it CPU, in quanta.
type aproc struct {
	sys       *system
	job, rank int

	inbox   []message
	dataIn  int // data messages consumed
	replyIn int // replies arrived (wire-level; observed when polling)

	budget  sim.Duration
	grant   *sim.Signal
	yielded *sim.Signal
	self    *sim.Proc

	scriptDone bool
	finishedAt sim.Time
	rng        *rankRNG
}

// sendStatus tracks one injected message until the destination buffer
// accepts it.
type sendStatus struct {
	accepted bool
	rejected bool
}

func newSystem(e *sim.Engine, spec Spec, jobs int, cosched bool, quantum sim.Duration, slots int, seed int64) *system {
	sys := &system{
		eng:     e,
		spec:    spec,
		jobs:    jobs,
		cosched: cosched,
		quantum: quantum,
		slots:   slots,
		seed:    seed,
		total:   jobs * spec.Ranks,
	}
	sys.procs = make([][]*aproc, jobs)
	for j := 0; j < jobs; j++ {
		sys.procs[j] = make([]*aproc, spec.Ranks)
		for r := 0; r < spec.Ranks; r++ {
			p := &aproc{
				sys:     sys,
				job:     j,
				rank:    r,
				grant:   sim.NewSignal(e, fmt.Sprintf("app%d/r%d/grant", j, r)),
				yielded: sim.NewSignal(e, fmt.Sprintf("app%d/r%d/yield", j, r)),
				rng:     newRankRNG(seed+int64(j)*1009, r),
			}
			sys.procs[j][r] = p
		}
	}
	sys.schedulers = make([]*nodeSched, spec.Ranks)
	for n := 0; n < spec.Ranks; n++ {
		ns := &nodeSched{sys: sys, node: n}
		for j := 0; j < jobs; j++ {
			ns.local = append(ns.local, sys.procs[j][n])
		}
		sys.schedulers[n] = ns
	}
	return sys
}

// start spawns every process and scheduler.
func (sys *system) start() {
	for j := range sys.procs {
		for r, p := range sys.procs[j] {
			p := p
			sys.eng.Spawn(fmt.Sprintf("app%d/rank%d", j, r), p.run)
		}
	}
	for _, ns := range sys.schedulers {
		ns := ns
		sys.eng.Spawn(fmt.Sprintf("appsched%d", ns.node), ns.run)
	}
}

// finished reports whether every script completed (drain phase over).
func (sys *system) finished() bool { return sys.scriptsRun == sys.total }

// ---- node scheduler ----

// run grants CPU in quanta until every script in the system is done.
// Under coscheduling, global slot ownership is derived from the clock
// (the matrix algorithm assumes aligned rotations). Under local
// scheduling each node's rotation is independent: a random initial
// phase and a little per-quantum jitter reproduce the drift of
// uncoordinated Unix schedulers — without it, identical quanta started
// at t=0 would accidentally gang-schedule the whole cluster.
func (ns *nodeSched) run(p *sim.Proc) {
	rng := ns.sys.eng.Rand()
	if !ns.sys.cosched {
		ns.next = rng.Intn(len(ns.local))
		// Random phase: the first slice is a partial quantum.
		first := ns.local[ns.next%len(ns.local)]
		ns.next++
		first.budget = sim.Duration(1 + rng.Int63n(int64(ns.sys.quantum)))
		first.grant.Broadcast()
		first.yielded.Wait(p)
	}
	for !ns.sys.finished() {
		var target *aproc
		var budget sim.Duration
		if ns.sys.cosched {
			now := p.Now()
			slot := int(now/ns.sys.quantum) % ns.sys.jobs
			boundary := (now/ns.sys.quantum + 1) * ns.sys.quantum
			// The slot's owner runs to the boundary; when it has
			// finished its script the slot still lets it drain (the
			// known idle waste of strict gang scheduling).
			target = ns.local[slot]
			budget = boundary - now
		} else {
			target = ns.local[ns.next%len(ns.local)]
			ns.next++
			// ±10% quantum jitter: context switch timing noise.
			jitter := ns.sys.quantum / 10
			budget = ns.sys.quantum - jitter + sim.Duration(rng.Int63n(int64(2*jitter)))
		}
		target.budget = budget
		target.grant.Broadcast()
		target.yielded.Wait(p)
	}
}

// ---- process execution ----

// run is the process body: execute the kernel script, then keep
// draining the inbox until the whole system is done (a finished process
// still absorbs messages, like a process blocked in exit-barrier).
func (p *aproc) run(sp *sim.Proc) {
	p.self = sp
	p.grant.Wait(sp) // wait for the first slice
	p.script()
	p.scriptDone = true
	p.finishedAt = sp.Now()
	p.sys.scriptsRun++
	for !p.sys.finished() {
		p.poll()
		p.use(pollTick)
	}
	p.yielded.Broadcast()
}

// use consumes d of scheduled CPU time, yielding to the scheduler at
// quantum boundaries.
func (p *aproc) use(d sim.Duration) {
	for d > 0 {
		if p.sys.finished() {
			return
		}
		if p.budget <= 0 {
			p.yielded.Broadcast()
			p.grant.Wait(p.self)
			continue
		}
		step := d
		if p.budget < step {
			step = p.budget
		}
		p.self.Sleep(step)
		p.budget -= step
		d -= step
	}
}

// poll drains the inbox, charging receive overhead per message from the
// process's scheduled time — CM-5-style polling: handlers run only when
// the process runs.
func (p *aproc) poll() {
	for len(p.inbox) > 0 {
		m := p.inbox[0]
		p.inbox = p.inbox[1:]
		p.use(recvOverhead)
		switch m.kind {
		case msgData:
			p.dataIn++
		case msgReq:
			// Serve the request: reply to the requester's process.
			p.use(sendOverhead)
			requester := p.sys.procs[p.job][m.from]
			p.sys.eng.After(wireDelay, func() { requester.replyIn++ })
		}
	}
}

// spinUntil polls and burns scheduled time until cond holds. The
// process stays runnable the whole while — it spins, it does not block.
func (p *aproc) spinUntil(cond func() bool) {
	for {
		p.poll()
		if cond() {
			return
		}
		p.use(pollTick)
	}
}

// sendData injects one data message to the peer process of the same job
// on node dst, spinning until the destination buffer accepts it.
func (p *aproc) sendData(dst int) {
	for {
		p.use(sendOverhead)
		st := &sendStatus{}
		dest := p.sys.procs[p.job][dst]
		from := p.rank
		p.sys.eng.After(wireDelay, func() {
			if len(dest.inbox) >= p.sys.slots {
				p.sys.overflows++
				st.rejected = true
				return
			}
			dest.inbox = append(dest.inbox, message{kind: msgData, from: from})
			st.accepted = true
		})
		p.spinUntil(func() bool { return st.accepted || st.rejected })
		if st.accepted {
			return
		}
		// Destination buffer full: back off one tick and retry.
		p.sys.retries++
		p.use(pollTick)
	}
}

// request sends a request to the peer on node dst and spins until the
// reply arrives.
func (p *aproc) request(dst int) {
	want := p.replyIn + 1
	for {
		p.use(sendOverhead)
		st := &sendStatus{}
		dest := p.sys.procs[p.job][dst]
		from := p.rank
		p.sys.eng.After(wireDelay, func() {
			if len(dest.inbox) >= p.sys.slots {
				p.sys.overflows++
				st.rejected = true
				return
			}
			dest.inbox = append(dest.inbox, message{kind: msgReq, from: from})
			st.accepted = true
		})
		p.spinUntil(func() bool { return st.accepted || st.rejected })
		if st.accepted {
			break
		}
		p.sys.retries++
		p.use(pollTick)
	}
	p.spinUntil(func() bool { return p.replyIn >= want })
}

// compute burns d of work, polling between chunks so incoming traffic
// is absorbed while the process is scheduled.
func (p *aproc) compute(d sim.Duration) {
	const chunk = sim.Millisecond
	for d > 0 {
		p.poll()
		step := d
		if step > chunk {
			step = chunk
		}
		p.use(step)
		d -= step
	}
}

// script runs the kernel for this process's pattern.
func (p *aproc) script() {
	spec := p.sys.spec
	for round := 0; round < spec.Rounds; round++ {
		switch spec.Pattern {
		case RandA, RandB:
			n := 4
			if spec.Pattern == RandB {
				n = 16
			}
			for i := 0; i < n; i++ {
				p.sendData(p.peer())
			}
		case Column:
			if round%spec.BurstEvery == 0 {
				dst := (p.rank + 1) % spec.Ranks
				for i := 0; i < spec.BurstLen; i++ {
					p.sendData(dst)
				}
			}
		case Em3d:
			p.sendData((p.rank + spec.Ranks - 1) % spec.Ranks)
			p.sendData((p.rank + 1) % spec.Ranks)
			want := 2 * (round + 1)
			p.spinUntil(func() bool { return p.dataIn >= want })
		case Connect:
			p.request(p.peer())
			p.request(p.peer())
		}
		p.compute(spec.Compute)
	}
}

// peer picks a random other rank.
func (p *aproc) peer() int {
	other := int(p.rng.next() % uint64(p.sys.spec.Ranks-1))
	if other >= p.rank {
		other++
	}
	return other
}

// rankRNG is a tiny deterministic per-rank generator (splitmix64),
// avoiding shared-engine RNG draws that would couple job schedules.
type rankRNG struct{ state uint64 }

func newRankRNG(seed int64, rank int) *rankRNG {
	return &rankRNG{state: uint64(seed)*0x9e3779b97f4a7c15 + uint64(rank+1)*0xbf58476d1ce4e5b9}
}

func (r *rankRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
