package apps

import (
	"fmt"

	"github.com/nowproject/now/internal/sim"
)

// ContentionConfig shapes a Figure 4 run: Jobs identical parallel
// programs share Spec.Ranks workstations, under local scheduling or
// coscheduling.
type ContentionConfig struct {
	// Spec is the job shape; all competing jobs are copies of it (the
	// study measures each application against copies of itself).
	Spec Spec
	// Jobs is the number of competing parallel jobs (1 = dedicated).
	Jobs int
	// Cosched selects gang scheduling; false is Unix local scheduling.
	Cosched bool
	// Quantum is the scheduling timeslice.
	Quantum sim.Duration
	// BufferSlots is each process's receive buffer in messages (the
	// knob the paper calls out for Column).
	BufferSlots int
	// Seed drives the kernels' random destinations.
	Seed int64
}

// DefaultContentionConfig returns the study's shape for one pattern.
func DefaultContentionConfig(pt Pattern, jobs int, cosched bool) ContentionConfig {
	return ContentionConfig{
		Spec:        DefaultSpec(pt, 4),
		Jobs:        jobs,
		Cosched:     cosched,
		Quantum:     100 * sim.Millisecond,
		BufferSlots: 32,
		Seed:        1,
	}
}

// ContentionResult reports a run.
type ContentionResult struct {
	// Elapsed is each job's completion time (slowest rank).
	Elapsed []sim.Duration
	// Overflows counts messages rejected by full destination buffers.
	Overflows int64
	// Retries counts re-injections after rejection.
	Retries int64
}

// MaxElapsed returns the completion time of the whole mix.
func (r ContentionResult) MaxElapsed() sim.Duration {
	var max sim.Duration
	for _, d := range r.Elapsed {
		if d > max {
			max = d
		}
	}
	return max
}

// RunContention executes the mix on e and reports per-job times.
func RunContention(e *sim.Engine, cfg ContentionConfig) (ContentionResult, error) {
	if cfg.Jobs <= 0 || cfg.Spec.Ranks <= 1 || cfg.Spec.Rounds <= 0 {
		return ContentionResult{}, fmt.Errorf("apps: bad config %+v", cfg)
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 100 * sim.Millisecond
	}
	if cfg.BufferSlots <= 0 {
		cfg.BufferSlots = 32
	}
	sys := newSystem(e, cfg.Spec, cfg.Jobs, cfg.Cosched, cfg.Quantum, cfg.BufferSlots, cfg.Seed)
	sys.start()
	if err := e.RunUntil(24 * sim.Hour); err != nil {
		return ContentionResult{}, fmt.Errorf("apps: contention run: %w", err)
	}
	if !sys.finished() {
		return ContentionResult{}, fmt.Errorf("apps: mix did not finish within the horizon")
	}
	res := ContentionResult{
		Elapsed:   make([]sim.Duration, cfg.Jobs),
		Overflows: sys.overflows,
		Retries:   sys.retries,
	}
	for j := range sys.procs {
		for _, p := range sys.procs[j] {
			if d := sim.Duration(p.finishedAt); d > res.Elapsed[j] {
				res.Elapsed[j] = d
			}
		}
	}
	return res, nil
}

// Slowdown runs the same mix under local scheduling and coscheduling and
// returns T_local / T_cosched — Figure 4's y-axis.
func Slowdown(pt Pattern, jobs int, seed int64) (float64, error) {
	run := func(cosched bool) (sim.Duration, error) {
		e := sim.NewEngine(seed)
		defer e.Close()
		cfg := DefaultContentionConfig(pt, jobs, cosched)
		cfg.Seed = seed
		res, err := RunContention(e, cfg)
		if err != nil {
			return 0, err
		}
		return res.MaxElapsed(), nil
	}
	local, err := run(false)
	if err != nil {
		return 0, err
	}
	gang, err := run(true)
	if err != nil {
		return 0, err
	}
	if gang == 0 {
		return 0, fmt.Errorf("apps: zero coscheduled time")
	}
	return float64(local) / float64(gang), nil
}
