package controlplane

import (
	"io"
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// BenchmarkSnapshotStream measures the observation overhead an operator
// poll imposes on a live stack: one `nowctl status` + metrics export +
// incremental span fetch cycle against a cluster that has been running
// long enough to populate its registry. This is the cost the serve
// loop's Do() closure pays on the drive goroutine per poll — it bounds
// how hard a dashboard can poll before it starts stealing simulation
// throughput.
func BenchmarkSnapshotStream(b *testing.B) {
	st, err := NewStack(StackConfig{
		Seed:         1,
		Workstations: 16,
		XFSNodes:     8,
		Spares:       2,
		Managers:     2,
		JobEvery:     30 * sim.Second,
		JobNodes:     3,
		JobWork:      40 * sim.Second,
	})
	if err != nil {
		b.Fatalf("NewStack: %v", err)
	}
	defer st.Engine.Close()
	if err := st.Engine.RunUntil(sim.Time(10 * sim.Minute)); err != nil {
		b.Fatalf("RunUntil: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.CP.Status()
		_ = st.CP.Snapshot()
		_ = st.CP.SpansSince(0)
		if err := st.Registry.WriteMetricsJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
