package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/nowproject/now/internal/obs"
)

// Client is the typed HTTP client for the operator API — what nowctl
// speaks, and what the end-to-end tests drive.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) hc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// call performs one request and decodes the JSON response into out
// (skipped when out is nil). Non-2xx responses decode the server's
// {"error": ...} envelope into the returned error.
func (c *Client) call(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, strings.TrimRight(c.Base, "/")+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Status fetches the cluster summary.
func (c *Client) Status() (ClusterStatus, error) {
	var st ClusterStatus
	err := c.call("GET", "/v1/status", nil, &st)
	return st, err
}

// Nodes fetches the workstation census.
func (c *Client) Nodes() ([]NodeStatus, error) {
	var ns []NodeStatus
	err := c.call("GET", "/v1/nodes", nil, &ns)
	return ns, err
}

// Node fetches one workstation.
func (c *Client) Node(id int) (NodeStatus, error) {
	var st NodeStatus
	err := c.call("GET", fmt.Sprintf("/v1/nodes/%d", id), nil, &st)
	return st, err
}

// Cordon marks workstation id unschedulable.
func (c *Client) Cordon(id int) error {
	return c.call("POST", fmt.Sprintf("/v1/nodes/%d/cordon", id), nil, nil)
}

// Uncordon clears a cordon or completed drain on workstation id.
func (c *Client) Uncordon(id int) error {
	return c.call("POST", fmt.Sprintf("/v1/nodes/%d/uncordon", id), nil, nil)
}

// Drain starts evacuating workstation id; poll Node(id).Drained.
func (c *Client) Drain(id int) error {
	return c.call("POST", fmt.Sprintf("/v1/nodes/%d/drain", id), nil, nil)
}

// Storage fetches the xFS node census.
func (c *Client) Storage() ([]StoreStatus, error) {
	var st []StoreStatus
	err := c.call("GET", "/v1/storage", nil, &st)
	return st, err
}

// DrainStorage starts removing xFS node id; poll Storage.
func (c *Client) DrainStorage(id int) error {
	return c.call("POST", fmt.Sprintf("/v1/storage/%d/drain", id), nil, nil)
}

// InjectFault schedules one faults-plan line live ("crash 5 for 30s").
func (c *Client) InjectFault(line string) error {
	return c.call("POST", "/v1/faults", map[string]string{"line": line}, nil)
}

// MetricsJSON fetches the raw stable-JSON metrics document.
func (c *Client) MetricsJSON() ([]byte, error) {
	req, err := http.NewRequest("GET", strings.TrimRight(c.Base, "/")+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("GET /v1/metrics: HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// Spans fetches spans started after span id `after` (0 = all).
func (c *Client) Spans(after obs.SpanID) ([]obs.Span, error) {
	var spans []obs.Span
	err := c.call("GET", fmt.Sprintf("/v1/spans?after=%d", after), nil, &spans)
	return spans, err
}

// Remediate toggles the self-healing loop.
func (c *Client) Remediate(on bool) error {
	return c.call("POST", "/v1/remediate", map[string]bool{"enabled": on}, nil)
}
