// Package controlplane turns the simulated NOW from a batch experiment
// into an operated cluster: one object wraps the live glunix cluster,
// the xFS installation, the fault injector and the obs registry, and
// exposes the day-2 operator surface — census, cordon/uncordon, drain,
// live fault injection, metric/span streaming — plus a self-healing
// remediation loop (remediate.go) and a wall-clock server mode with an
// HTTP/JSON endpoint (server.go).
//
// Everything here runs *inside* the simulation: operator actions are
// ordinary engine events, so an operated run is exactly as
// deterministic as an unoperated one. The only concurrency is in the
// Server, which serializes all access onto its drive goroutine.
package controlplane

import (
	"errors"
	"fmt"
	"strings"

	"github.com/nowproject/now/internal/faults"
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/xfs"
)

// Config wires a ControlPlane to a running stack. Engine and Cluster
// are required; everything else is optional — a nil XFS disables the
// storage surface, a nil Registry disables metrics and spans.
//
// XFSTarget and Injector exist so the control plane can share state
// with a pre-built fault pipeline: an obs registry panics on duplicate
// metric names, so a run that already made a faults.Injector must pass
// it here rather than let New build a second one; likewise a shared
// XFSTarget keeps live rebuilds and plan rebuilds drawing hot spares
// from one pool. When nil, New builds its own from Engine/XFS/Registry.
type Config struct {
	Engine    *sim.Engine
	Cluster   *glunix.Cluster
	XFS       *xfs.System
	XFSTarget *faults.XFSTarget
	Injector  *faults.Injector
	Registry  *obs.Registry
}

// NodeStatus describes one workstation to the operator.
type NodeStatus = glunix.WSStatus

// StoreStatus describes one xFS node to the operator.
type StoreStatus struct {
	Node     int   `json:"node"`
	Down     bool  `json:"down"`
	Stripe   bool  `json:"stripe"`   // active stripe member
	Failed   bool  `json:"failed"`   // marked failed, awaiting rebuild
	Spare    bool  `json:"spare"`    // in the unconsumed hot-spare pool
	Managers []int `json:"managers"` // manager indexes hosted here
}

// ClusterStatus is the one-line summary ("nowctl status").
type ClusterStatus struct {
	VirtualNs    sim.Time `json:"virtualNs"`
	Workstations int      `json:"workstations"`
	Up           int      `json:"up"`
	Cordoned     int      `json:"cordoned"`
	Drained      int      `json:"drained"`
	QueueLen     int      `json:"queueLen"`
	XFSNodes     int      `json:"xfsNodes"`
	FailedStores []int    `json:"failedStores,omitempty"`
	SparesLeft   int      `json:"sparesLeft"`
}

// ControlPlane is the in-process operator API. All methods must run on
// the engine's goroutine (directly in tests and scenarios, via the
// Server's drive loop when serving) — the stack underneath is
// single-threaded by design.
type ControlPlane struct {
	cfg Config
	tgt *faults.XFSTarget
	inj *faults.Injector

	commands  *obs.Counter
	cordons   *obs.Counter
	uncordons *obs.Counter
	drains    *obs.Counter
	sdrains   *obs.Counter
	live      *obs.Counter
	snapshots *obs.Counter
	cordoned  *obs.Gauge

	draining map[int]bool // ws drains in flight (DrainAsync)
}

// New builds a control plane over cfg. See Config for the sharing
// contract on XFSTarget/Injector.
func New(cfg Config) (*ControlPlane, error) {
	if cfg.Engine == nil || cfg.Cluster == nil {
		return nil, errors.New("controlplane: Engine and Cluster are required")
	}
	cp := &ControlPlane{
		cfg:      cfg,
		tgt:      cfg.XFSTarget,
		inj:      cfg.Injector,
		draining: make(map[int]bool),
	}
	r := cfg.Registry
	cp.commands = r.Counter("cp.commands")
	cp.cordons = r.Counter("cp.cordons")
	cp.uncordons = r.Counter("cp.uncordons")
	cp.drains = r.Counter("cp.drains")
	cp.sdrains = r.Counter("cp.drains.storage")
	cp.live = r.Counter("cp.faults.live")
	cp.snapshots = r.Counter("cp.snapshots")
	cp.cordoned = r.Gauge("cp.cordoned")
	if cp.tgt == nil && cfg.XFS != nil {
		cp.tgt = faults.NewXFSTarget(cfg.XFS)
	}
	if cp.inj == nil {
		var tgt faults.Target = faults.ClusterTarget{C: cfg.Cluster}
		if cp.tgt != nil {
			tgt = faults.Combine(faults.ClusterTarget{C: cfg.Cluster}, cp.tgt)
		}
		cp.inj = faults.NewInjector(cfg.Engine, tgt, faults.Plan{}, r)
	}
	return cp, nil
}

// Engine returns the engine the control plane operates on.
func (cp *ControlPlane) Engine() *sim.Engine { return cp.cfg.Engine }

// Registry returns the obs registry (may be nil).
func (cp *ControlPlane) Registry() *obs.Registry { return cp.cfg.Registry }

// Now returns the current virtual time.
func (cp *ControlPlane) Now() sim.Time { return cp.cfg.Engine.Now() }

// Nodes lists every workstation's status (the glunix census).
func (cp *ControlPlane) Nodes() []NodeStatus {
	cp.commands.Inc()
	return cp.cfg.Cluster.Master.Census()
}

// Node describes one workstation.
func (cp *ControlPlane) Node(ws int) (NodeStatus, error) {
	cp.commands.Inc()
	st, ok := cp.cfg.Cluster.Master.WSInfo(ws)
	if !ok {
		return NodeStatus{}, fmt.Errorf("controlplane: workstation %d out of range", ws)
	}
	return st, nil
}

// Storage lists every xFS node's status; nil without an installation.
func (cp *ControlPlane) Storage() []StoreStatus {
	cp.commands.Inc()
	sys := cp.cfg.XFS
	if sys == nil {
		return nil
	}
	stripe := make(map[int]bool)
	for _, n := range sys.StripeMembers() {
		stripe[n] = true
	}
	failed := make(map[int]bool)
	for _, n := range sys.FailedStores() {
		failed[n] = true
	}
	spare := make(map[int]bool)
	if cp.tgt != nil {
		for _, n := range cp.tgt.Spares() {
			spare[n] = true
		}
	}
	out := make([]StoreStatus, sys.Nodes())
	for n := range out {
		out[n] = StoreStatus{
			Node:     n,
			Down:     sys.NodeDown(n),
			Stripe:   stripe[n],
			Failed:   failed[n],
			Spare:    spare[n],
			Managers: sys.ManagersOn(n),
		}
	}
	return out
}

// Status summarizes the whole cluster.
func (cp *ControlPlane) Status() ClusterStatus {
	cp.commands.Inc()
	m := cp.cfg.Cluster.Master
	st := ClusterStatus{
		VirtualNs: cp.cfg.Engine.Now(),
		QueueLen:  m.QueueLen(),
	}
	for _, ws := range m.Census() {
		st.Workstations++
		if ws.Up {
			st.Up++
		}
		if ws.Cordoned {
			st.Cordoned++
		}
		if ws.Drained {
			st.Drained++
		}
	}
	if sys := cp.cfg.XFS; sys != nil {
		st.XFSNodes = sys.Nodes()
		st.FailedStores = sys.FailedStores()
		if cp.tgt != nil {
			st.SparesLeft = len(cp.tgt.Spares())
		}
	}
	return st
}

// Cordon marks a workstation unschedulable without disturbing what is
// already running on it.
func (cp *ControlPlane) Cordon(ws int) error {
	cp.commands.Inc()
	if !cp.cfg.Cluster.Master.Cordon(ws) {
		if cp.cfg.Cluster.Master.Cordoned(ws) {
			return fmt.Errorf("controlplane: workstation %d already cordoned", ws)
		}
		return fmt.Errorf("controlplane: workstation %d out of range", ws)
	}
	cp.cordons.Inc()
	cp.cordoned.Add(1)
	return nil
}

// Uncordon clears a cordon (and a completed drain), making the
// workstation schedulable again — the master is woken so queued jobs
// can re-coschedule onto it immediately.
func (cp *ControlPlane) Uncordon(ws int) error {
	cp.commands.Inc()
	wasCordoned := cp.cfg.Cluster.Master.Cordoned(ws)
	if !cp.cfg.Cluster.Master.Uncordon(ws) {
		return fmt.Errorf("controlplane: workstation %d not cordoned or drained", ws)
	}
	cp.uncordons.Inc()
	if wasCordoned {
		cp.cordoned.Add(-1)
	}
	return nil
}

// Drain evacuates a workstation: cordon first (no new placement), then
// migrate the resident guest away via glunix. Blocks p until the guest
// has landed elsewhere (or immediately if the node is idle). Draining
// an already-drained or already-draining node is a no-op — the second
// operator's command must not re-pause a migrated job.
func (cp *ControlPlane) Drain(p *sim.Proc, ws int) error {
	cp.commands.Inc()
	m := cp.cfg.Cluster.Master
	if _, ok := m.WSInfo(ws); !ok {
		return fmt.Errorf("controlplane: workstation %d out of range", ws)
	}
	if m.Drained(ws) || cp.draining[ws] {
		return nil
	}
	sp := cp.cfg.Registry.StartSpan("cp.drain", ws)
	cp.draining[ws] = true
	if !m.Cordoned(ws) {
		m.Cordon(ws)
		cp.cordoned.Add(1)
	}
	m.Drain(p, ws)
	delete(cp.draining, ws)
	cp.drains.Inc()
	cp.cfg.Registry.EndSpan(sp)
	return nil
}

// DrainAsync starts a drain on its own proc and returns immediately —
// the form the HTTP surface uses (poll Node(ws).Drained for landing).
func (cp *ControlPlane) DrainAsync(ws int) error {
	m := cp.cfg.Cluster.Master
	if _, ok := m.WSInfo(ws); !ok {
		cp.commands.Inc()
		return fmt.Errorf("controlplane: workstation %d out of range", ws)
	}
	cp.cfg.Engine.Spawn(fmt.Sprintf("cp/drain-ws%d", ws), func(p *sim.Proc) {
		cp.Drain(p, ws) //nolint:errcheck // range checked above
	})
	return nil
}

// DrainStorage removes an xFS node gracefully: manager roles hand off
// to their standbys (metadata travels, nothing crashes), the node
// detaches, and — if it was an active stripe member — its data is
// reconstructed onto the next hot spare before returning. Blocks p for
// the rebuild.
func (cp *ControlPlane) DrainStorage(p *sim.Proc, node int) error {
	cp.commands.Inc()
	sys := cp.cfg.XFS
	if sys == nil {
		return errors.New("controlplane: no xFS installation")
	}
	if node < 0 || node >= sys.Nodes() {
		return fmt.Errorf("controlplane: xfs node %d out of range", node)
	}
	if sys.NodeDown(node) {
		return fmt.Errorf("controlplane: xfs node %d already removed", node)
	}
	sp := cp.cfg.Registry.StartSpan("cp.drain.storage", node)
	defer cp.cfg.Registry.EndSpan(sp)
	inStripe := false
	for _, m := range sys.StripeMembers() {
		if m == node {
			inStripe = true
			break
		}
	}
	if moved := sys.HandoffManagers(node); moved > 0 {
		cp.cfg.Registry.Annotate(sp, fmt.Sprintf("%d manager(s) handed off", moved))
	}
	sys.CrashStorage(node)
	if inStripe {
		if cp.tgt == nil {
			return fmt.Errorf("controlplane: stripe member %d removed but no spare pool to rebuild from", node)
		}
		if _, err := cp.tgt.RebuildDisk(p, node, -1); err != nil {
			return fmt.Errorf("controlplane: drain of xfs node %d: %w", node, err)
		}
		cp.cfg.Registry.Annotate(sp, "stripe data rebuilt onto spare")
	}
	cp.sdrains.Inc()
	return nil
}

// DrainStorageAsync starts a storage drain on its own proc and returns
// immediately — the HTTP form (poll Storage() for the node going down
// and the stripe healing).
func (cp *ControlPlane) DrainStorageAsync(node int) error {
	sys := cp.cfg.XFS
	if sys == nil {
		cp.commands.Inc()
		return errors.New("controlplane: no xFS installation")
	}
	if node < 0 || node >= sys.Nodes() {
		cp.commands.Inc()
		return fmt.Errorf("controlplane: xfs node %d out of range", node)
	}
	cp.cfg.Engine.Spawn(fmt.Sprintf("cp/drain-xfs%d", node), func(p *sim.Proc) {
		cp.DrainStorage(p, node) //nolint:errcheck // range checked above
	})
	return nil
}

// InjectLine schedules one fault from a faults-plan line, live. The
// line uses the exact plan grammar (`<at> <kind> args... [for <dur>]`)
// with At interpreted relative to *now*; the leading time may be
// omitted for "immediately" (`crash 5 for 30s`).
func (cp *ControlPlane) InjectLine(line string) error {
	cp.commands.Inc()
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return errors.New("controlplane: empty fault line")
	}
	f, err := faults.ParseFaultLine(fields)
	if err != nil {
		// The leading <at> is optional live: retry as "0s <line>".
		f2, err2 := faults.ParseFaultLine(append([]string{"0s"}, fields...))
		if err2 != nil {
			return fmt.Errorf("controlplane: %w", err)
		}
		f = f2
	}
	f.At += cp.cfg.Engine.Now()
	cp.inj.Inject(f)
	cp.live.Inc()
	return nil
}

// Snapshot returns the current metrics (nil registry → nil).
func (cp *ControlPlane) Snapshot() []obs.Metric {
	cp.snapshots.Inc()
	return cp.cfg.Registry.Snapshot()
}

// SpansSince returns spans started after id `after` (0 = all); the
// incremental form a streaming consumer polls with the last id seen.
func (cp *ControlPlane) SpansSince(after obs.SpanID) []obs.Span {
	return cp.cfg.Registry.SpansSince(after)
}
