package controlplane

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// buildStack is the shared test fixture: a small NOW with storage and
// a background job trickle, remediation armed per test.
func buildStack(t *testing.T, remediate bool) *Stack {
	t.Helper()
	st, err := NewStack(StackConfig{
		Seed:         1,
		Workstations: 12,
		XFSNodes:     8,
		Spares:       2,
		Managers:     2,
		JobEvery:     30 * sim.Second,
		JobNodes:     3,
		JobWork:      40 * sim.Second,
		RemediateOn:  remediate,
	})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	t.Cleanup(st.Engine.Close)
	return st
}

func runTo(t *testing.T, st *Stack, at sim.Time) {
	t.Helper()
	if err := st.Engine.RunUntil(at); err != nil {
		t.Fatalf("RunUntil(%s): %v", at, err)
	}
}

// counter reads one metric's value from the registry snapshot.
func counter(t *testing.T, st *Stack, name string) int64 {
	t.Helper()
	for _, m := range st.Registry.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %s not registered", name)
	return 0
}

// TestDrainOrdering: a drain cordons first, then migrates — the node
// is never schedulable mid-evacuation, and ends drained with no guest.
func TestDrainOrdering(t *testing.T) {
	st := buildStack(t, false)
	// Let jobs land.
	runTo(t, st, 2*sim.Minute)

	// Pick a workstation hosting a job rank so the drain has work.
	target := -1
	for _, ws := range st.Cluster.Master.Census() {
		if ws.JobID >= 0 {
			target = ws.ID
			break
		}
	}
	if target < 0 {
		t.Fatal("no workstation hosting a job rank at 2m")
	}

	st.Engine.Spawn("test/drain", func(p *sim.Proc) {
		if err := st.CP.Drain(p, target); err != nil {
			t.Errorf("Drain(%d): %v", target, err)
		}
		// Ordering: by the time Drain returns the node must already be
		// cordoned (it was cordoned before the migration started).
		if !st.Cluster.Master.Cordoned(target) {
			t.Errorf("ws %d not cordoned after drain", target)
		}
	})
	runTo(t, st, 10*sim.Minute)

	ws, _ := st.Cluster.Master.WSInfo(target)
	if !ws.Drained {
		t.Fatalf("ws %d not drained", target)
	}
	if ws.JobID >= 0 {
		t.Fatalf("ws %d still hosts job %d rank %d after drain", target, ws.JobID, ws.Rank)
	}
	if got := counter(t, st, "cp.drains"); got != 1 {
		t.Fatalf("cp.drains = %d, want 1", got)
	}
}

// TestNoDoubleDrain: draining an already-cordoned node works once;
// draining again — or draining a drained node — is a no-op that never
// re-migrates or double-counts.
func TestNoDoubleDrain(t *testing.T) {
	st := buildStack(t, false)
	runTo(t, st, 2*sim.Minute)

	const target = 3
	if err := st.CP.Cordon(target); err != nil {
		t.Fatalf("Cordon: %v", err)
	}
	st.Engine.Spawn("test/drains", func(p *sim.Proc) {
		if err := st.CP.Drain(p, target); err != nil {
			t.Errorf("first Drain: %v", err)
		}
		if err := st.CP.Drain(p, target); err != nil {
			t.Errorf("second Drain: %v", err)
		}
	})
	runTo(t, st, 6*sim.Minute)

	if got := counter(t, st, "cp.drains"); got != 1 {
		t.Fatalf("cp.drains = %d, want 1 (second drain must be a no-op)", got)
	}
	if got := counter(t, st, "cp.cordons"); got != 1 {
		t.Fatalf("cp.cordons = %d, want 1 (drain must not re-cordon)", got)
	}
	// A second cordon of the same node is an error, not a re-cordon.
	if err := st.CP.Cordon(target); err == nil {
		t.Fatal("Cordon of an already-cordoned node did not error")
	}
	if got := counter(t, st, "cp.cordons"); got != 1 {
		t.Fatalf("cp.cordons = %d after rejected cordon, want 1", got)
	}
}

// TestRemediatorCordonUncordon: the AV1-style crash window. A crashed
// workstation is cordoned after the down grace and uncordoned only
// after it has rejoined and stayed stable.
func TestRemediatorCordonUncordon(t *testing.T) {
	st := buildStack(t, true)

	// AV1's crash line, relocated: crash ws 5 at 2m for 5m.
	if err := st.CP.InjectLine("2m crash 5 for 5m"); err != nil {
		t.Fatalf("InjectLine: %v", err)
	}

	// Heartbeat census (5s × 3) plus 30s grace plus a 15s sweep: well
	// cordoned by 4m, still down.
	runTo(t, st, 4*sim.Minute)
	if !st.Cluster.Master.Cordoned(5) {
		t.Fatal("crashed ws 5 not cordoned by remediator")
	}
	if got := counter(t, st, "remediate.cordons"); got != 1 {
		t.Fatalf("remediate.cordons = %d, want 1", got)
	}

	// Recovery at 7m, rejoin on heartbeat, 60s stability, sweep: clear
	// by 10m.
	runTo(t, st, 10*sim.Minute)
	if st.Cluster.Master.Cordoned(5) {
		t.Fatal("recovered ws 5 still cordoned after stability window")
	}
	if got := counter(t, st, "remediate.uncordons"); got != 1 {
		t.Fatalf("remediate.uncordons = %d, want 1", got)
	}
}

// TestRemediatorRespectsOperatorCordon: the remediator never lifts a
// cordon it did not place.
func TestRemediatorRespectsOperatorCordon(t *testing.T) {
	st := buildStack(t, true)
	runTo(t, st, 1*sim.Minute)
	if err := st.CP.Cordon(7); err != nil {
		t.Fatalf("Cordon: %v", err)
	}
	// ws 7 is up and stable for far longer than StableFor.
	runTo(t, st, 10*sim.Minute)
	if !st.Cluster.Master.Cordoned(7) {
		t.Fatal("remediator lifted an operator cordon")
	}
}

// TestRemediatorRebuildBeforeRejoin: a failed stripe member triggers an
// automatic rebuild onto a spare — manager roles move off the dead node
// first, and the stripe is whole again (the rebuilt spare has joined)
// before anything else happens to the layout.
func TestRemediatorRebuildBeforeRejoin(t *testing.T) {
	st := buildStack(t, true)

	// AV1's disk failure: node 1 is both a stripe member and a manager
	// host, so remediation must order handoff before rebuild.
	if err := st.CP.InjectLine("2m diskfail 1"); err != nil {
		t.Fatalf("InjectLine: %v", err)
	}
	// The 2m sweep coincides with the fault; the rebuild may complete
	// within the same instant on a young stripe, so assert final state.
	runTo(t, st, 20*sim.Minute)
	if got := st.XFS.FailedStores(); len(got) != 0 {
		t.Fatalf("stripe still degraded after remediation: failed %v", got)
	}
	if got := counter(t, st, "remediate.rebuilds"); got != 1 {
		t.Fatalf("remediate.rebuilds = %d, want 1", got)
	}
	if mgrs := st.XFS.ManagersOn(1); len(mgrs) != 0 {
		t.Fatalf("managers %v still on dead node 1", mgrs)
	}
	if st.XFS.Stats().Handoffs == 0 {
		t.Fatal("no graceful manager handoff recorded (crash failover instead?)")
	}
	// The spare adopted the dead member's slot: node 1 is out of the
	// stripe, a former spare is in.
	inStripe := false
	for _, m := range st.XFS.StripeMembers() {
		if m == 1 {
			inStripe = true
		}
	}
	if inStripe {
		t.Fatal("dead node 1 still named in the stripe layout")
	}
	if got := len(st.CP.tgt.Spares()); got != 1 {
		t.Fatalf("spare pool = %d, want 1 (one consumed by the rebuild)", got)
	}
}

// TestRemediatorDisabledTakesNoAction: the same fault timeline with
// remediation off leaves the cordon and the degraded stripe alone.
func TestRemediatorDisabledTakesNoAction(t *testing.T) {
	st := buildStack(t, false)
	if err := st.CP.InjectLine("2m crash 5 for 5m"); err != nil {
		t.Fatalf("InjectLine: %v", err)
	}
	if err := st.CP.InjectLine("2m diskfail 1"); err != nil {
		t.Fatalf("InjectLine: %v", err)
	}
	runTo(t, st, 20*sim.Minute)
	if st.Cluster.Master.Cordoned(5) {
		t.Fatal("disabled remediator cordoned a node")
	}
	if got := st.XFS.FailedStores(); len(got) != 1 {
		t.Fatalf("disabled remediator changed the stripe: failed %v", got)
	}
	if got := counter(t, st, "remediate.actions"); got != 0 {
		t.Fatalf("remediate.actions = %d with remediation off", got)
	}
}

// TestStorageDrain: the operator form — hand off, remove, rebuild.
func TestStorageDrain(t *testing.T) {
	st := buildStack(t, false)
	runTo(t, st, 1*sim.Minute)

	before := st.XFS.Stats().Handoffs
	st.Engine.Spawn("test/drain-storage", func(p *sim.Proc) {
		if err := st.CP.DrainStorage(p, 0); err != nil {
			t.Errorf("DrainStorage(0): %v", err)
		}
	})
	runTo(t, st, 30*sim.Minute)

	if !st.XFS.NodeDown(0) {
		t.Fatal("xfs node 0 still up after storage drain")
	}
	if got := st.XFS.FailedStores(); len(got) != 0 {
		t.Fatalf("stripe degraded after storage drain: failed %v", got)
	}
	if mgrs := st.XFS.ManagersOn(0); len(mgrs) != 0 {
		t.Fatalf("managers %v still on drained node 0", mgrs)
	}
	if st.XFS.Stats().Handoffs == before {
		t.Fatal("storage drain did not hand off the manager")
	}
	if st.XFS.Stats().Failovers != 0 {
		t.Fatalf("storage drain caused %d crash failovers, want 0", st.XFS.Stats().Failovers)
	}
	if got := counter(t, st, "cp.drains.storage"); got != 1 {
		t.Fatalf("cp.drains.storage = %d, want 1", got)
	}
}

// TestInjectLineGrammar: the live seam accepts both the full plan
// grammar and the at-less immediate form, and rejects garbage.
func TestInjectLineGrammar(t *testing.T) {
	st := buildStack(t, false)
	runTo(t, st, 30*sim.Second)

	if err := st.CP.InjectLine("crash 5 for 30s"); err != nil {
		t.Fatalf("at-less line: %v", err)
	}
	if err := st.CP.InjectLine("10s crash 6 for 30s"); err != nil {
		t.Fatalf("timed line: %v", err)
	}
	if err := st.CP.InjectLine("frobnicate 5"); err == nil {
		t.Fatal("nonsense line accepted")
	}
	if err := st.CP.InjectLine(""); err == nil {
		t.Fatal("empty line accepted")
	}

	runTo(t, st, 45*sim.Second)
	if st.Cluster.Up(5) {
		t.Fatal("immediate crash 5 did not land")
	}
	if st.Cluster.Up(6) == false && st.Engine.Now() < 40*sim.Second {
		t.Fatal("timed crash 6 landed early")
	}
	if got := counter(t, st, "cp.faults.live"); got != 2 {
		t.Fatalf("cp.faults.live = %d, want 2", got)
	}
}
