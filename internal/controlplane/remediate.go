package controlplane

import (
	"fmt"

	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

// Self-healing: a periodic health sweep over the obs-visible state of
// the stack that closes the loop the operator would otherwise close by
// hand. Two remediations are implemented, matching the drain story:
//
//   - a workstation that has been down past a grace period is cordoned
//     so the master stops trying to place work there; once it has been
//     back up and stable it is uncordoned, and the wake-up that
//     uncordon broadcasts re-coschedules queued jobs onto it.
//   - a degraded xFS stripe (a member marked failed) triggers an
//     automatic repair: manager roles are handed off the dead node,
//     then its data is reconstructed onto the next hot spare — the
//     rebuild-before-rejoin ordering the tests pin down.
//
// The sweep runs as an ordinary engine proc, so remediation is part of
// the deterministic event order like everything else.

// RemediationPolicy tunes the self-healing loop.
type RemediationPolicy struct {
	// Interval is the health-sweep period.
	Interval sim.Duration
	// DownGrace is how long a workstation must be down before it is
	// cordoned (transient reboots heal themselves; don't flap).
	DownGrace sim.Duration
	// StableFor is how long a recovered workstation must stay up
	// before a remediation cordon is lifted.
	StableFor sim.Duration
	// AutoCordon enables the workstation cordon/uncordon remediation.
	AutoCordon bool
	// AutoRebuild enables the degraded-stripe rebuild remediation.
	AutoRebuild bool
}

// DefaultRemediationPolicy matches the AV2 study: sweep every 15s,
// cordon after 30s down, uncordon after 60s stable, both remediations
// on.
func DefaultRemediationPolicy() RemediationPolicy {
	return RemediationPolicy{
		Interval:    15 * sim.Second,
		DownGrace:   30 * sim.Second,
		StableFor:   60 * sim.Second,
		AutoCordon:  true,
		AutoRebuild: true,
	}
}

// Remediator runs the self-healing sweep. Build with NewRemediator,
// arm with Start (once), and gate with SetEnabled — a disabled
// remediator keeps sweeping time but takes no action, so enabling it
// mid-run (the `remediate on` scenario verb) needs no new proc.
type Remediator struct {
	cp      *ControlPlane
	pol     RemediationPolicy
	enabled bool
	started bool

	downSince  map[int]sim.Time // ws → when first seen down
	upSince    map[int]sim.Time // ws → when first seen back up
	cordonedBy map[int]bool     // cordons we placed (never lift an operator's)
	rebuilding bool             // one stripe rebuild in flight at a time

	enabledG  *obs.Gauge
	checks    *obs.Counter
	actions   *obs.Counter
	cordons   *obs.Counter
	uncordons *obs.Counter
	rebuilds  *obs.Counter
	rberrors  *obs.Counter
}

// NewRemediator builds a (disabled) remediator over cp. A zero policy
// means DefaultRemediationPolicy; a partially-filled one is taken as
// given (so a policy with only AutoRebuild set really does skip the
// cordon remediation) with only the sweep interval defaulted.
func NewRemediator(cp *ControlPlane, pol RemediationPolicy) *Remediator {
	if pol == (RemediationPolicy{}) {
		pol = DefaultRemediationPolicy()
	}
	if pol.Interval <= 0 {
		pol.Interval = DefaultRemediationPolicy().Interval
	}
	r := cp.cfg.Registry
	return &Remediator{
		cp:         cp,
		pol:        pol,
		downSince:  make(map[int]sim.Time),
		upSince:    make(map[int]sim.Time),
		cordonedBy: make(map[int]bool),
		enabledG:   r.Gauge("remediate.enabled"),
		checks:     r.Counter("remediate.checks"),
		actions:    r.Counter("remediate.actions"),
		cordons:    r.Counter("remediate.cordons"),
		uncordons:  r.Counter("remediate.uncordons"),
		rebuilds:   r.Counter("remediate.rebuilds"),
		rberrors:   r.Counter("remediate.rebuild.errors"),
	}
}

// SetEnabled turns remediation on or off; the sweep proc keeps running
// either way so toggling is cheap and deterministic.
func (r *Remediator) SetEnabled(on bool) {
	r.enabled = on
	if on {
		r.enabledG.Set(1)
	} else {
		r.enabledG.Set(0)
	}
}

// Enabled reports whether remediation actions are live.
func (r *Remediator) Enabled() bool { return r.enabled }

// Start spawns the sweep proc. Call once, before or during the run.
func (r *Remediator) Start() {
	if r.started {
		return
	}
	r.started = true
	r.cp.cfg.Engine.Spawn("controlplane/remediator", func(p *sim.Proc) {
		for {
			p.Sleep(r.pol.Interval)
			if !r.enabled {
				continue
			}
			r.checks.Inc()
			r.sweepCluster()
			r.sweepStorage()
		}
	})
}

// sweepCluster tracks workstation up/down transitions and applies the
// cordon-after-grace / uncordon-after-stable policy.
func (r *Remediator) sweepCluster() {
	if !r.pol.AutoCordon {
		return
	}
	now := r.cp.cfg.Engine.Now()
	m := r.cp.cfg.Cluster.Master
	for _, ws := range m.Census() {
		id := ws.ID
		if !ws.Up {
			delete(r.upSince, id)
			if _, seen := r.downSince[id]; !seen {
				r.downSince[id] = now
			}
			if !ws.Cordoned && now-r.downSince[id] >= r.pol.DownGrace {
				if r.cp.Cordon(id) == nil {
					r.cordonedBy[id] = true
					r.cordons.Inc()
					r.actions.Inc()
				}
			}
			continue
		}
		delete(r.downSince, id)
		if _, seen := r.upSince[id]; !seen {
			r.upSince[id] = now
		}
		if ws.Cordoned && r.cordonedBy[id] && now-r.upSince[id] >= r.pol.StableFor {
			if r.cp.Uncordon(id) == nil {
				delete(r.cordonedBy, id)
				r.uncordons.Inc()
				r.actions.Inc()
			}
		}
	}
}

// sweepStorage repairs a degraded xFS stripe: one rebuild in flight at
// a time, oldest failed member first, manager handoff before the
// rebuild so metadata service never waits on the dead node.
func (r *Remediator) sweepStorage() {
	if !r.pol.AutoRebuild || r.rebuilding {
		return
	}
	sys := r.cp.cfg.XFS
	if sys == nil || r.cp.tgt == nil {
		return
	}
	failed := sys.FailedStores()
	if len(failed) == 0 || len(r.cp.tgt.Spares()) == 0 {
		return
	}
	node := failed[0]
	r.rebuilding = true
	r.actions.Inc()
	// The rebuild streams reconstruction I/O, so it gets its own proc
	// rather than stalling the sweep.
	r.cp.cfg.Engine.Spawn(fmt.Sprintf("controlplane/remediate-rebuild-%d", node), func(p *sim.Proc) {
		defer func() { r.rebuilding = false }()
		sp := r.cp.cfg.Registry.StartSpan("remediate.rebuild", node)
		defer r.cp.cfg.Registry.EndSpan(sp)
		if moved := sys.HandoffManagers(node); moved > 0 {
			r.cp.cfg.Registry.Annotate(sp, fmt.Sprintf("%d manager(s) handed off first", moved))
		}
		if _, err := r.cp.tgt.RebuildDisk(p, node, -1); err != nil {
			r.rberrors.Inc()
			r.cp.cfg.Registry.Annotate(sp, "error: "+err.Error())
			return
		}
		r.rebuilds.Inc()
		r.cp.cfg.Registry.Annotate(sp, "stripe whole again")
	})
}
