package controlplane

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

// Server maps the simulation's virtual clock onto the wall clock and
// serializes operator commands into it. One goroutine (the drive loop)
// owns the engine: it alternates short RunUntil slices with draining a
// command channel, so an HTTP handler never touches the single-threaded
// stack directly — it posts a closure and waits. With Rate > 0 each
// virtual quantum is throttled to quantum/Rate of wall time ("run the
// day at 60×"); with Rate == 0 the simulation free-runs as fast as the
// host executes events, still draining commands between slices.
type Server struct {
	cp  *ControlPlane
	rem *Remediator
	cfg ServerConfig

	cmds    chan func()
	stopc   chan struct{}
	stopped chan struct{} // closed when the drive loop has exited
	err     error
}

// ServerConfig tunes the drive loop.
type ServerConfig struct {
	// Rate is the virtual-to-wall speedup (2 = twice real time). Zero
	// free-runs: no throttle, maximum simulation speed.
	Rate float64
	// Quantum is the virtual time advanced per drive slice. Commands
	// are only served between slices, so this bounds operator latency
	// in virtual time. Default 100ms.
	Quantum sim.Duration
}

// ErrServerStopped is returned by Do after Stop (or a drive failure).
var ErrServerStopped = errors.New("controlplane: server stopped")

// NewServer wraps cp. rem may be nil (no remediation endpoint).
func NewServer(cp *ControlPlane, rem *Remediator, cfg ServerConfig) *Server {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 100 * sim.Millisecond
	}
	return &Server{
		cp:      cp,
		rem:     rem,
		cfg:     cfg,
		cmds:    make(chan func()),
		stopc:   make(chan struct{}),
		stopped: make(chan struct{}),
	}
}

// Start launches the drive goroutine.
func (s *Server) Start() { go s.drive() }

// Stop halts the drive loop and waits for it to exit. Idempotent.
func (s *Server) Stop() {
	select {
	case <-s.stopc:
	default:
		close(s.stopc)
	}
	<-s.stopped
}

// Err reports a drive-loop failure (nil on clean stop).
func (s *Server) Err() error { return s.err }

// Do runs fn on the drive goroutine, between engine slices, and waits
// for it. This is the only safe way to touch the ControlPlane (or
// anything beneath it) while the server is running.
func (s *Server) Do(fn func()) error {
	done := make(chan struct{})
	wrapped := func() { fn(); close(done) }
	select {
	case s.cmds <- wrapped:
	case <-s.stopped:
		return ErrServerStopped
	}
	select {
	case <-done:
		return nil
	case <-s.stopped:
		return ErrServerStopped
	}
}

// drive owns the engine: slices of RunUntil, commands in between, and
// an optional wall-clock throttle.
func (s *Server) drive() {
	defer close(s.stopped)
	eng := s.cp.cfg.Engine
	for {
		// Commands and stop take priority over advancing time.
		select {
		case <-s.stopc:
			return
		case fn := <-s.cmds:
			fn()
			continue
		default:
		}
		start := time.Now()
		target := eng.Now() + sim.Time(s.cfg.Quantum)
		// A tick pinned at the target makes the clock reach it even
		// when the event queue drains early — RunUntil alone leaves
		// the clock at the last event, which would stall wall-time
		// mapping on an idle cluster.
		eng.At(target, func() {})
		if err := eng.RunUntil(target); err != nil && !errors.Is(err, sim.ErrStopped) {
			s.err = err
			return
		}
		if s.cfg.Rate > 0 {
			wall := time.Duration(float64(s.cfg.Quantum) / s.cfg.Rate)
			deadline := time.NewTimer(wall - time.Since(start))
			throttled := true
			for throttled {
				select {
				case <-s.stopc:
					deadline.Stop()
					return
				case fn := <-s.cmds:
					fn()
				case <-deadline.C:
					throttled = false
				}
			}
		}
	}
}

// --- HTTP surface -----------------------------------------------------

// Handler returns the HTTP/JSON operator API:
//
//	GET  /v1/status                 cluster summary
//	GET  /v1/nodes                  workstation census
//	GET  /v1/nodes/{id}             one workstation
//	POST /v1/nodes/{id}/cordon      mark unschedulable
//	POST /v1/nodes/{id}/uncordon    clear cordon/drain, wake scheduler
//	POST /v1/nodes/{id}/drain       evacuate (async; poll drained flag)
//	GET  /v1/storage                xFS node census
//	POST /v1/storage/{id}/drain     hand off roles, remove, rebuild (async)
//	POST /v1/faults                 {"line":"crash 5 for 30s"} live inject
//	GET  /v1/metrics                obs metrics (stable JSON)
//	GET  /v1/spans?after=N          spans started after span id N
//	POST /v1/remediate              {"enabled":true|false}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, _ *http.Request) {
		var st ClusterStatus
		s.reply(w, func() { st = s.cp.Status() }, func() any { return st })
	})
	mux.HandleFunc("GET /v1/nodes", func(w http.ResponseWriter, _ *http.Request) {
		var ns []NodeStatus
		s.reply(w, func() { ns = s.cp.Nodes() }, func() any { return ns })
	})
	mux.HandleFunc("GET /v1/nodes/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := pathID(w, r)
		if !ok {
			return
		}
		var (
			st  NodeStatus
			err error
		)
		s.replyErr(w, func() { st, err = s.cp.Node(id) }, &err, func() any { return st })
	})
	mux.HandleFunc("POST /v1/nodes/{id}/cordon", func(w http.ResponseWriter, r *http.Request) {
		s.nodeAction(w, r, s.cp.Cordon, "cordoned")
	})
	mux.HandleFunc("POST /v1/nodes/{id}/uncordon", func(w http.ResponseWriter, r *http.Request) {
		s.nodeAction(w, r, s.cp.Uncordon, "uncordoned")
	})
	mux.HandleFunc("POST /v1/nodes/{id}/drain", func(w http.ResponseWriter, r *http.Request) {
		s.nodeAction(w, r, s.cp.DrainAsync, "draining")
	})
	mux.HandleFunc("GET /v1/storage", func(w http.ResponseWriter, _ *http.Request) {
		var st []StoreStatus
		s.reply(w, func() { st = s.cp.Storage() }, func() any { return st })
	})
	mux.HandleFunc("POST /v1/storage/{id}/drain", func(w http.ResponseWriter, r *http.Request) {
		s.nodeAction(w, r, s.cp.DrainStorageAsync, "draining")
	})
	mux.HandleFunc("POST /v1/faults", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Line string `json:"line"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var err error
		s.replyErr(w, func() { err = s.cp.InjectLine(body.Line) }, &err,
			func() any { return map[string]string{"status": "scheduled"} })
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		var err error
		if doErr := s.Do(func() {
			s.cp.snapshots.Inc()
			err = s.cp.cfg.Registry.WriteMetricsJSON(&buf)
		}); doErr != nil {
			httpError(w, http.StatusServiceUnavailable, doErr)
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes()) //nolint:errcheck
	})
	mux.HandleFunc("GET /v1/spans", func(w http.ResponseWriter, r *http.Request) {
		after := 0
		if v := r.URL.Query().Get("after"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			after = n
		}
		var spans []obs.Span
		s.reply(w, func() { spans = s.cp.SpansSince(obs.SpanID(after)) },
			func() any {
				if spans == nil {
					return []obs.Span{}
				}
				return spans
			})
	})
	mux.HandleFunc("POST /v1/remediate", func(w http.ResponseWriter, r *http.Request) {
		if s.rem == nil {
			httpError(w, http.StatusNotFound, errors.New("no remediator attached"))
			return
		}
		var body struct {
			Enabled bool `json:"enabled"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		s.reply(w, func() { s.rem.SetEnabled(body.Enabled) },
			func() any { return map[string]bool{"enabled": body.Enabled} })
	})
	return mux
}

// nodeAction runs one id-taking command and answers {"status": okWord}.
func (s *Server) nodeAction(w http.ResponseWriter, r *http.Request, fn func(int) error, okWord string) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var err error
	s.replyErr(w, func() { err = fn(id) }, &err,
		func() any { return map[string]string{"status": okWord} })
}

// reply serializes fn through Do and writes render() as JSON.
func (s *Server) reply(w http.ResponseWriter, fn func(), render func() any) {
	if err := s.Do(fn); err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, render())
}

// replyErr is reply for commands that can fail domain-side.
func (s *Server) replyErr(w http.ResponseWriter, fn func(), errp *error, render func() any) {
	if err := s.Do(fn); err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	if *errp != nil {
		httpError(w, http.StatusBadRequest, *errp)
		return
	}
	writeJSON(w, render())
}

func pathID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}
