package controlplane

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

// startServed boots a full stack behind a free-running Server and an
// httptest HTTP front end — the `nowsim serve` + `nowctl` pipeline in
// one process. Run with -race: every engine touch must funnel through
// the drive goroutine.
func startServed(t *testing.T) (*Client, *Stack) {
	t.Helper()
	st, err := NewStack(StackConfig{
		Seed:         1,
		Workstations: 10,
		XFSNodes:     8,
		Spares:       2,
		Managers:     2,
		JobEvery:     30 * sim.Second,
		JobNodes:     3,
		JobWork:      40 * sim.Second,
	})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	srv := NewServer(st.CP, st.Remediator, ServerConfig{Rate: 0, Quantum: 500 * sim.Millisecond})
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Stop()
		st.Engine.Close()
		if err := srv.Err(); err != nil {
			t.Errorf("server drive error: %v", err)
		}
	})
	return &Client{Base: hs.URL, HTTP: hs.Client()}, st
}

// waitFor polls cond through the client until it holds or the wall
// deadline passes. The simulation free-runs underneath, so virtual
// time races ahead of these polls.
func waitFor(t *testing.T, what string, cond func() (bool, error)) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ok, err := cond()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServeRoundTrip is the end-to-end drill from the acceptance
// criteria: status → cordon → uncordon → drain → live fault inject →
// metrics/spans, all over HTTP against a live drive loop.
func TestServeRoundTrip(t *testing.T) {
	c, _ := startServed(t)

	st, err := c.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Workstations != 10 || st.XFSNodes != 8 {
		t.Fatalf("status = %+v, want 10 workstations / 8 xfs nodes", st)
	}

	// Cordon ws 4 and see it in the census; double-cordon is a 400.
	if err := c.Cordon(4); err != nil {
		t.Fatalf("Cordon: %v", err)
	}
	n, err := c.Node(4)
	if err != nil {
		t.Fatalf("Node: %v", err)
	}
	if !n.Cordoned {
		t.Fatal("ws 4 not cordoned after POST")
	}
	if err := c.Cordon(4); err == nil {
		t.Fatal("double cordon did not error")
	}
	if err := c.Uncordon(4); err != nil {
		t.Fatalf("Uncordon: %v", err)
	}

	// Drain ws 3 and poll until the evacuation lands.
	if err := c.Drain(3); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitFor(t, "ws 3 drained", func() (bool, error) {
		n, err := c.Node(3)
		return err == nil && n.Drained && n.JobID < 0, err
	})

	// Live fault: crash ws 5 and watch the census notice. The crash is
	// windowless on purpose: the simulation free-runs between polls, so
	// a recovery window (however wide) can pass entirely between two
	// wall-clock observations; a persistent down state cannot be missed.
	if err := c.InjectFault("crash 5"); err != nil {
		t.Fatalf("InjectFault: %v", err)
	}
	waitFor(t, "ws 5 down in census", func() (bool, error) {
		n, err := c.Node(5)
		return err == nil && !n.Up, err
	})
	if err := c.InjectFault("frobnicate 1"); err == nil {
		t.Fatal("nonsense fault line accepted")
	}

	// Storage drain: xfs node 0 hosts manager 0 and stripe data.
	if err := c.DrainStorage(0); err != nil {
		t.Fatalf("DrainStorage: %v", err)
	}
	waitFor(t, "xfs node 0 removed and stripe whole", func() (bool, error) {
		sts, err := c.Storage()
		if err != nil {
			return false, err
		}
		whole := true
		for _, s := range sts {
			if s.Failed {
				whole = false
			}
		}
		return sts[0].Down && whole, nil
	})

	// Metrics stream: stable JSON containing the cp.* instruments.
	data, err := c.MetricsJSON()
	if err != nil {
		t.Fatalf("MetricsJSON: %v", err)
	}
	for _, want := range []string{"cp.cordons", "cp.drains", "cp.faults.live", "faults.injected"} {
		if !bytes.Contains(data, []byte(`"`+want+`"`)) {
			t.Fatalf("metrics JSON missing %q", want)
		}
	}

	// Span stream: the drain span must be there; incremental fetch
	// starts after what we have seen.
	spans, err := c.Spans(0)
	if err != nil {
		t.Fatalf("Spans: %v", err)
	}
	found := false
	last := 0
	for _, sp := range spans {
		if sp.Name == "cp.drain" && sp.Node == 3 {
			found = true
		}
		last = int(sp.ID)
	}
	if !found {
		t.Fatal("cp.drain span for ws 3 not streamed")
	}
	if _, err := c.Spans(obs.SpanID(last)); err != nil {
		t.Fatalf("incremental Spans: %v", err)
	}

	// Remediation toggle round-trips.
	if err := c.Remediate(true); err != nil {
		t.Fatalf("Remediate(on): %v", err)
	}
	if err := c.Remediate(false); err != nil {
		t.Fatalf("Remediate(off): %v", err)
	}

	// Virtual time advanced the whole while.
	st2, err := c.Status()
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st2.VirtualNs <= st.VirtualNs {
		t.Fatalf("virtual clock did not advance: %d → %d", st.VirtualNs, st2.VirtualNs)
	}
}

// TestServeThrottled drives a rate-limited server: a 2000× throttle
// still advances virtual time far faster than the wall clock but the
// drive loop takes the throttle path, commands interleaving with
// sleeps.
func TestServeThrottled(t *testing.T) {
	st, err := NewStack(StackConfig{Seed: 1, Workstations: 6})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	srv := NewServer(st.CP, st.Remediator, ServerConfig{Rate: 2000, Quantum: 200 * sim.Millisecond})
	srv.Start()
	defer func() {
		srv.Stop()
		st.Engine.Close()
	}()

	var t0, t1 sim.Time
	if err := srv.Do(func() { t0 = st.CP.Now() }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := srv.Do(func() { t1 = st.CP.Now() }); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if t1 <= t0 {
		t.Fatal("throttled drive loop did not advance virtual time")
	}
	// 300ms of wall at 2000× is ~600s of virtual time; the throttle
	// must keep it within an order of magnitude (generous slack for a
	// loaded CI host — but free-running would blow far past this).
	if got := t1 - t0; got > sim.Time(2*sim.Hour) {
		t.Fatalf("throttle too loose: %s virtual in ~300ms wall", sim.Duration(got))
	}

	srv.Stop()
	if err := srv.Do(func() {}); err == nil {
		t.Fatal("Do after Stop did not error")
	}
}

// TestServerStopIdempotent: Stop twice, and Stop racing Do, are safe.
func TestServerStopIdempotent(t *testing.T) {
	st, err := NewStack(StackConfig{Seed: 1, Workstations: 4})
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}
	defer st.Engine.Close()
	srv := NewServer(st.CP, nil, ServerConfig{})
	srv.Start()
	srv.Stop()
	srv.Stop()
	if err := srv.Err(); err != nil {
		t.Fatalf("Err after clean stop: %v", err)
	}
}
