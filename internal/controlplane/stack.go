package controlplane

import (
	"fmt"

	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/xfs"
)

// StackConfig shapes a servable NOW: a glunix workstation cluster, an
// optional xFS installation, the control plane over both, and a
// (disabled-until-told) remediator. `nowsim serve` builds one of these;
// so do the end-to-end tests.
type StackConfig struct {
	Seed         int64
	Workstations int
	// XFSNodes > 0 adds a storage fleet with Spares hot spares and
	// Managers metadata managers.
	XFSNodes int
	Spares   int
	Managers int
	// JobEvery > 0 trickles background parallel jobs into the cluster
	// (JobNodes wide, JobWork each) so a served simulation has pulse.
	JobEvery sim.Duration
	JobNodes int
	JobWork  sim.Duration
	// Policy tunes the remediator; zero value = defaults.
	Policy RemediationPolicy
	// RemediateOn arms self-healing from t=0.
	RemediateOn bool
}

// Stack is one built, ready-to-drive NOW with its operator surface.
// Close the Engine when done.
type Stack struct {
	Engine     *sim.Engine
	Registry   *obs.Registry
	Cluster    *glunix.Cluster
	XFS        *xfs.System
	CP         *ControlPlane
	Remediator *Remediator
}

// NewStack builds the full stack on a fresh engine. Nothing has run
// yet: drive with Engine.RunUntil directly (tests) or wrap in a Server
// (`nowsim serve`).
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.Workstations < 2 {
		return nil, fmt.Errorf("controlplane: need ≥2 workstations, have %d", cfg.Workstations)
	}
	e := sim.NewEngine(cfg.Seed)
	reg := obs.NewRegistry()
	e.Observe(reg)

	var sys *xfs.System
	if cfg.XFSNodes > 0 {
		xcfg := xfs.DefaultConfig(cfg.XFSNodes)
		xcfg.SpareNodes = cfg.Spares
		if cfg.Managers > 0 {
			xcfg.Managers = cfg.Managers
		}
		var err error
		sys, err = xfs.New(e, xcfg)
		if err != nil {
			e.Close()
			return nil, err
		}
		sys.Instrument(reg)
	}

	gcfg := glunix.DefaultConfig(cfg.Workstations)
	gcfg.Seed = cfg.Seed
	gcfg.Obs = reg
	c, err := glunix.New(e, gcfg)
	if err != nil {
		e.Close()
		return nil, err
	}

	cp, err := New(Config{
		Engine:   e,
		Cluster:  c,
		XFS:      sys,
		Registry: reg,
	})
	if err != nil {
		e.Close()
		return nil, err
	}
	rem := NewRemediator(cp, cfg.Policy)
	rem.Start()
	rem.SetEnabled(cfg.RemediateOn)

	if cfg.JobEvery > 0 {
		nodes, work := cfg.JobNodes, cfg.JobWork
		if nodes <= 0 {
			nodes = 2
		}
		if work <= 0 {
			work = 20 * sim.Second
		}
		e.Spawn("controlplane/job-trickle", func(p *sim.Proc) {
			for id := 0; ; id++ {
				c.Master.Submit(glunix.NewJob(id, nodes, work, 0))
				p.Sleep(cfg.JobEvery)
			}
		})
	}

	return &Stack{Engine: e, Registry: reg, Cluster: c, XFS: sys, CP: cp, Remediator: rem}, nil
}
