// Package coopcache implements cooperative file caching (Dahlin et al.,
// OSDI '94, as summarised in the NOW paper): the file caches of every
// client workstation are managed as one building-wide cache. On a local
// miss the server's directory forwards the request to another client
// holding the block — a remote memory copy an order of magnitude faster
// than the server's disk — and the N-chance policy gives the last cached
// copy of a block ("singlet") N extra lives by recirculating it to a
// random peer instead of discarding it.
//
// Three policies are provided so Table 3 and its ablation can be
// regenerated: the traditional client/server baseline, greedy
// forwarding, and N-chance forwarding.
package coopcache

import (
	"fmt"

	"github.com/nowproject/now/internal/lru"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// Policy selects the cache-coordination algorithm.
type Policy int

const (
	// ClientServer is the traditional baseline: misses go to the server
	// (its cache, then its disk); client memories are private.
	ClientServer Policy = iota + 1
	// Greedy forwards misses to another client caching the block, but
	// discards evicted blocks even when they are the last copy.
	Greedy
	// NChance is Greedy plus singlet recirculation: the last cached copy
	// of a block is forwarded to a random peer up to N times instead of
	// being dropped.
	NChance
)

// String names the policy for reports.
func (p Policy) String() string {
	switch p {
	case ClientServer:
		return "client-server"
	case Greedy:
		return "greedy-forwarding"
	case NChance:
		return "n-chance"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// BlockID names one file block.
type BlockID struct {
	File  uint32
	Block uint32
}

// AM handlers (coopcache owns 0x40–0x4F).
const (
	hRead am.HandlerID = 0x40 + iota
	hFetch
	hEvict
	hWrite
	hRecirc
	hInval
)

// Config sets the system shape; zero fields take Table 3's values.
type Config struct {
	// Clients is the number of client workstations (42 in the study).
	Clients int
	// ClientCacheBlocks is each client's cache size in blocks
	// (16 MB / 8 KB = 2048).
	ClientCacheBlocks int
	// ServerCacheBlocks is the server cache size (128 MB / 8 KB = 16384).
	ServerCacheBlocks int
	// BlockBytes is the transfer unit (8 KB).
	BlockBytes int
	// Policy selects the algorithm.
	Policy Policy
	// NChance is the recirculation count for the NChance policy.
	NChance int
	// LocalCopy is the memory-copy cost of delivering a cached block to
	// the application (the paper's 250 µs for 8 KB).
	LocalCopy sim.Duration
	// Proto configures the communication layer; the study assumed
	// standard network drivers (≈200 µs per side), not lean AM.
	Proto am.Config
	// Fabric configures the network; the study assumed 155 Mb/s ATM.
	Fabric func(nodes int) netsim.Config
	// Seed drives victim selection for recirculation.
	Seed int64
}

// DefaultConfig returns Table 3's configuration.
func DefaultConfig(policy Policy) Config {
	return Config{
		Clients:           42,
		ClientCacheBlocks: 2048,
		ServerCacheBlocks: 16384,
		BlockBytes:        8192,
		Policy:            policy,
		NChance:           2,
		LocalCopy:         250 * sim.Microsecond,
		Proto: am.Config{
			SendOverhead: 200 * sim.Microsecond,
			RecvOverhead: 200 * sim.Microsecond,
			HeaderBytes:  64,
			BufferSlots:  512,
			Window:       32,
		},
		Fabric: netsim.ATM155,
		Seed:   1,
	}
}

// Stats aggregates a run.
type Stats struct {
	Reads           int64
	Writes          int64
	LocalHits       int64
	RemoteHits      int64 // served from another client's cache
	ServerMemHits   int64
	DiskReads       int64
	Recirculations  int64
	EvictionNotices int64
}

// MissRate is the fraction of reads that went all the way to disk — the
// "cache miss rate" column of Table 3.
func (s Stats) MissRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.DiskReads) / float64(s.Reads)
}

// cachedBlock is a client-cache entry.
type cachedBlock struct {
	recirc int // times this copy has been recirculated
	// maybeSinglet is the N-chance hint: this copy is likely the last
	// one cached by any client (set when the block came from the server
	// or via recirculation; cleared when fetched from a peer, which by
	// definition also holds it). Hints avoid a synchronous server round
	// trip on every eviction — Dahlin's design.
	maybeSinglet bool
}

// System is a server plus a set of cooperating clients on one fabric.
type System struct {
	cfg     Config
	eng     *sim.Engine
	server  *server
	clients []*client
	st      Stats
	resp    []sim.Duration // per-read response times
	m       *systemMetrics // nil unless Instrument attached a registry
}

type server struct {
	sys   *System
	ep    *am.Endpoint
	cache *lru.Cache[BlockID, struct{}]
	// dir tracks which clients cache each block.
	dir map[BlockID]map[int]struct{}
}

type client struct {
	sys   *System
	idx   int
	ep    *am.Endpoint
	cache *lru.Cache[BlockID, *cachedBlock]
}

// readReply is the server's answer to a read request.
type readReply struct {
	forwardTo int // client index holding the block, or -1
	fromDisk  bool
	// singletHint tells the requester no other client caches the block —
	// the seed of the N-chance recirculation heuristic.
	singletHint bool
}

// New builds the system on a fresh engine.
func New(e *sim.Engine, cfg Config) (*System, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("coopcache: %d clients", cfg.Clients)
	}
	if cfg.Fabric == nil {
		cfg.Fabric = netsim.ATM155
	}
	fab, err := netsim.New(e, cfg.Fabric(cfg.Clients+1))
	if err != nil {
		return nil, fmt.Errorf("coopcache: %w", err)
	}
	sys := &System{cfg: cfg, eng: e}
	mkEP := func(id int) *am.Endpoint {
		ncfg := node.DefaultConfig(netsim.NodeID(id))
		return am.NewEndpoint(e, node.New(e, ncfg), fab, cfg.Proto)
	}
	sys.server = &server{
		sys:   sys,
		ep:    mkEP(0),
		cache: lru.New[BlockID, struct{}](cfg.ServerCacheBlocks),
		dir:   make(map[BlockID]map[int]struct{}),
	}
	sys.server.register()
	sys.clients = make([]*client, cfg.Clients)
	for i := range sys.clients {
		c := &client{
			sys:   sys,
			idx:   i,
			ep:    mkEP(i + 1),
			cache: lru.New[BlockID, *cachedBlock](cfg.ClientCacheBlocks),
		}
		c.register()
		sys.clients[i] = c
	}
	return sys, nil
}

// Client returns client i's interface.
func (sys *System) Client(i int) *client { return sys.clients[i] }

// ResponseTimes returns the recorded per-read service times.
func (sys *System) ResponseTimes() []sim.Duration { return sys.resp }

// Stats returns the accumulated counters.
func (sys *System) Stats() Stats { return sys.st }

// ResetStats clears counters and response samples while leaving cache
// contents intact — the warm-up boundary of trace-driven studies.
func (sys *System) ResetStats() {
	sys.st = Stats{}
	sys.resp = nil
}

// MeanReadResponse returns the average read service time.
func (sys *System) MeanReadResponse() sim.Duration {
	if len(sys.resp) == 0 {
		return 0
	}
	var total sim.Duration
	for _, d := range sys.resp {
		total += d
	}
	return total / sim.Duration(len(sys.resp))
}
