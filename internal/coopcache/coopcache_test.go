package coopcache

import (
	"errors"
	"testing"

	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/trace"
)

// smallConfig returns a shrunken system for unit tests: 4 clients with
// 8-block caches, a 16-block server cache.
func smallConfig(policy Policy) Config {
	cfg := DefaultConfig(policy)
	cfg.Clients = 4
	cfg.ClientCacheBlocks = 8
	cfg.ServerCacheBlocks = 16
	return cfg
}

func build(t *testing.T, cfg Config) (*sim.Engine, *System) {
	t.Helper()
	e := sim.NewEngine(cfg.Seed)
	sys, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, sys
}

func drive(t *testing.T, e *sim.Engine, body func(p *sim.Proc)) {
	t.Helper()
	e.Spawn("driver", func(p *sim.Proc) {
		body(p)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
}

func blk(f, b uint32) BlockID { return BlockID{File: f, Block: b} }

func TestFirstReadGoesToDisk(t *testing.T) {
	e, sys := build(t, smallConfig(ClientServer))
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).Read(p, blk(1, 0))
	})
	st := sys.Stats()
	if st.DiskReads != 1 || st.LocalHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSecondReadIsLocalHit(t *testing.T) {
	e, sys := build(t, smallConfig(ClientServer))
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).Read(p, blk(1, 0))
		sys.Client(0).Read(p, blk(1, 0))
	})
	st := sys.Stats()
	if st.LocalHits != 1 || st.DiskReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerCacheServesSecondClient(t *testing.T) {
	e, sys := build(t, smallConfig(ClientServer))
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).Read(p, blk(1, 0))
		sys.Client(1).Read(p, blk(1, 0))
	})
	st := sys.Stats()
	if st.DiskReads != 1 || st.ServerMemHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestForwardingServesFromPeerCache(t *testing.T) {
	// Under Greedy, when the server cache has lost the block but a peer
	// still caches it, the read is forwarded.
	cfg := smallConfig(Greedy)
	cfg.ServerCacheBlocks = 1 // server cache forgets immediately
	e, sys := build(t, cfg)
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).Read(p, blk(1, 0))
		sys.Client(0).Read(p, blk(2, 0)) // pushes (1,0) out of server cache
		sys.Client(1).Read(p, blk(1, 0)) // must come from client 0
	})
	st := sys.Stats()
	if st.RemoteHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DiskReads != 2 {
		t.Fatalf("disk reads = %d, want 2 (cold blocks only)", st.DiskReads)
	}
}

func TestClientServerNeverForwards(t *testing.T) {
	cfg := smallConfig(ClientServer)
	cfg.ServerCacheBlocks = 1
	e, sys := build(t, cfg)
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).Read(p, blk(1, 0))
		sys.Client(0).Read(p, blk(2, 0))
		sys.Client(1).Read(p, blk(1, 0)) // server cache lost it: disk again
	})
	st := sys.Stats()
	if st.RemoteHits != 0 {
		t.Fatalf("client-server forwarded: %+v", st)
	}
	if st.DiskReads != 3 {
		t.Fatalf("disk reads = %d, want 3", st.DiskReads)
	}
}

func TestRemoteHitFasterThanDisk(t *testing.T) {
	cfg := smallConfig(Greedy)
	cfg.ServerCacheBlocks = 1
	e, sys := build(t, cfg)
	var remoteTime, diskTime sim.Duration
	drive(t, e, func(p *sim.Proc) {
		start := p.Now()
		sys.Client(0).Read(p, blk(1, 0))
		diskTime = p.Now() - start
		sys.Client(0).Read(p, blk(2, 0))
		start = p.Now()
		sys.Client(1).Read(p, blk(1, 0))
		remoteTime = p.Now() - start
	})
	if remoteTime >= diskTime {
		t.Fatalf("remote hit %v not faster than disk %v", remoteTime, diskTime)
	}
	// Table 2 magnitudes: remote ≈1–2 ms, disk ≈15–17 ms.
	if remoteTime > 3*sim.Millisecond {
		t.Fatalf("remote hit = %v, want ≈1.5ms", remoteTime)
	}
	if diskTime < 14*sim.Millisecond {
		t.Fatalf("disk read = %v, want ≈16ms", diskTime)
	}
}

func TestNChanceRecirculatesSinglets(t *testing.T) {
	cfg := smallConfig(NChance)
	cfg.ClientCacheBlocks = 4
	e, sys := build(t, cfg)
	drive(t, e, func(p *sim.Proc) {
		// Fill client 0 beyond capacity with distinct singlets.
		for i := uint32(0); i < 8; i++ {
			sys.Client(0).Read(p, blk(1, i))
		}
	})
	st := sys.Stats()
	if st.Recirculations == 0 {
		t.Fatalf("no recirculations: %+v", st)
	}
	// Recirculated blocks must live in some other client's cache.
	found := 0
	for i := 1; i < 4; i++ {
		found += sys.Client(i).cache.Len()
	}
	if found == 0 {
		t.Fatal("recirculated blocks not present in peer caches")
	}
}

func TestGreedyDoesNotRecirculate(t *testing.T) {
	cfg := smallConfig(Greedy)
	cfg.ClientCacheBlocks = 4
	e, sys := build(t, cfg)
	drive(t, e, func(p *sim.Proc) {
		for i := uint32(0); i < 8; i++ {
			sys.Client(0).Read(p, blk(1, i))
		}
	})
	if sys.Stats().Recirculations != 0 {
		t.Fatalf("greedy recirculated: %+v", sys.Stats())
	}
}

func TestRecirculationBoundedByN(t *testing.T) {
	cfg := smallConfig(NChance)
	cfg.Clients = 2
	cfg.ClientCacheBlocks = 2
	cfg.NChance = 2
	e, sys := build(t, cfg)
	drive(t, e, func(p *sim.Proc) {
		// Ping-pong a stream of singlets between two tiny caches; the
		// recirculation count must prevent an infinite loop.
		for i := uint32(0); i < 32; i++ {
			sys.Client(0).Read(p, blk(1, i))
		}
	})
	st := sys.Stats()
	if st.Recirculations == 0 {
		t.Fatal("expected some recirculation")
	}
	// Each block can recirculate at most NChance times.
	if st.Recirculations > 32*int64(cfg.NChance) {
		t.Fatalf("recirculations = %d, exceeds bound %d", st.Recirculations, 32*cfg.NChance)
	}
}

func TestWriteInvalidatesOtherCopies(t *testing.T) {
	e, sys := build(t, smallConfig(Greedy))
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).Read(p, blk(1, 0))
		sys.Client(1).Read(p, blk(1, 0))
		// Both cache it now; client 0 writes.
		sys.Client(0).Write(p, blk(1, 0))
		p.Sleep(10 * sim.Millisecond) // let invalidations land
		if sys.Client(1).cache.Contains(blk(1, 0)) {
			t.Error("client 1 still caches invalidated block")
		}
		if !sys.Client(0).cache.Contains(blk(1, 0)) {
			t.Error("writer lost its own copy")
		}
	})
}

func TestEvictionNoticesKeepDirectoryAccurate(t *testing.T) {
	cfg := smallConfig(Greedy)
	cfg.ClientCacheBlocks = 2
	e, sys := build(t, cfg)
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).Read(p, blk(1, 0))
		sys.Client(0).Read(p, blk(1, 1))
		sys.Client(0).Read(p, blk(1, 2)) // evicts (1,0)
		p.Sleep(10 * sim.Millisecond)
		if hs := sys.server.dir[blk(1, 0)]; len(hs) != 0 {
			t.Errorf("directory still lists holders for evicted block: %v", hs)
		}
	})
	if sys.Stats().EvictionNotices == 0 {
		t.Fatal("no eviction notices sent")
	}
}

func TestMissRateStat(t *testing.T) {
	s := Stats{Reads: 100, DiskReads: 16}
	if s.MissRate() != 0.16 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty miss rate should be 0")
	}
}

func TestRunTraceEndToEnd(t *testing.T) {
	tcfg := trace.DefaultFileTraceConfig()
	tcfg.Clients = 4
	tcfg.Accesses = 2000
	tcfg.SharedFiles = 20
	tcfg.PrivateFilesPerClient = 8
	accesses := trace.GenerateFileTrace(tcfg)
	cfg := smallConfig(NChance)
	cfg.ClientCacheBlocks = 64
	cfg.ServerCacheBlocks = 128
	e, sys := build(t, cfg)
	if err := RunTrace(e, sys, accesses); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Reads+st.Writes != 2000 {
		t.Fatalf("processed %d ops, want 2000", st.Reads+st.Writes)
	}
	if st.LocalHits == 0 || st.DiskReads == 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
	if sys.MeanReadResponse() <= 0 {
		t.Fatal("no mean response time")
	}
	if len(sys.ResponseTimes()) != int(st.Reads) {
		t.Fatalf("recorded %d responses for %d reads", len(sys.ResponseTimes()), st.Reads)
	}
}

func TestCooperationBeatsClientServerOnSharedTrace(t *testing.T) {
	// The Table 3 effect at reduced scale: with a shared working set
	// larger than the server cache, cooperation must cut disk reads.
	tcfg := trace.DefaultFileTraceConfig()
	tcfg.Clients = 8
	tcfg.Accesses = 8000
	tcfg.SharedFiles = 64
	tcfg.SharedFileBlocks = 32
	tcfg.PrivateFilesPerClient = 16
	tcfg.PrivateFileBlocks = 16
	accesses := trace.GenerateFileTrace(tcfg)
	run := func(policy Policy) Stats {
		cfg := DefaultConfig(policy)
		cfg.Clients = 8
		cfg.ClientCacheBlocks = 256
		cfg.ServerCacheBlocks = 256
		e, sys := build(t, cfg)
		if err := RunTrace(e, sys, accesses); err != nil {
			t.Fatal(err)
		}
		return sys.Stats()
	}
	base := run(ClientServer)
	coop := run(NChance)
	if coop.DiskReads >= base.DiskReads {
		t.Fatalf("cooperation did not reduce disk reads: base=%d coop=%d",
			base.DiskReads, coop.DiskReads)
	}
	ratio := float64(base.DiskReads) / float64(coop.DiskReads)
	if ratio < 1.2 {
		t.Fatalf("disk-read reduction only %.2f×", ratio)
	}
}

func TestPolicyString(t *testing.T) {
	if ClientServer.String() != "client-server" || NChance.String() != "n-chance" {
		t.Fatal("policy names wrong")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	if _, err := New(e, Config{}); err == nil {
		t.Fatal("zero clients accepted")
	}
}

func TestSingletHintClearedByPeerFetch(t *testing.T) {
	// A block fetched from a peer is by definition not a singlet: when
	// later evicted it must NOT recirculate.
	cfg := smallConfig(NChance)
	cfg.ClientCacheBlocks = 4
	cfg.ServerCacheBlocks = 1 // server cache forgets immediately
	e, sys := build(t, cfg)
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).Read(p, blk(1, 0)) // client 0: from disk (singlet hint set)
		sys.Client(0).Read(p, blk(9, 9)) // push (1,0) out of the server cache
		sys.Client(1).Read(p, blk(1, 0)) // client 1: fetched from client 0 → hint clear
		before := sys.Stats().Recirculations
		// Evict (1,0) from client 1 by filling its cache.
		for i := uint32(1); i <= 4; i++ {
			sys.Client(1).Read(p, blk(2, i))
		}
		p.Sleep(10 * sim.Millisecond)
		// Client 1's copy was not the last (client 0 still holds one):
		// its eviction must not have recirculated.
		if got := sys.Stats().Recirculations; got != before {
			t.Fatalf("non-singlet copy recirculated (%d→%d)", before, got)
		}
	})
}

func TestRecirculatedCopyKeepsHint(t *testing.T) {
	// A recirculated singlet is still (likely) a singlet: it may be
	// recirculated again, up to NChance times.
	cfg := smallConfig(NChance)
	cfg.Clients = 3
	cfg.ClientCacheBlocks = 2
	cfg.NChance = 2
	e, sys := build(t, cfg)
	drive(t, e, func(p *sim.Proc) {
		for i := uint32(0); i < 12; i++ {
			sys.Client(0).Read(p, blk(1, i))
		}
		p.Sleep(50 * sim.Millisecond)
	})
	st := sys.Stats()
	if st.Recirculations == 0 {
		t.Fatal("no recirculation at all")
	}
}

func TestWriteThroughDurability(t *testing.T) {
	// After a write, even if every cache drops the block, the server's
	// disk has it: a later read succeeds (from server, not error).
	cfg := smallConfig(Greedy)
	cfg.ClientCacheBlocks = 1
	cfg.ServerCacheBlocks = 1
	e, sys := build(t, cfg)
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).Write(p, blk(1, 0))
		sys.Client(0).Read(p, blk(7, 7)) // evict it everywhere
		sys.Client(1).Read(p, blk(8, 8))
		before := sys.Stats().DiskReads
		sys.Client(2).Read(p, blk(1, 0))
		if sys.Stats().DiskReads != before+1 {
			t.Fatalf("durable block not read from disk: %+v", sys.Stats())
		}
	})
}

func TestReadRangeMatchesSerialStats(t *testing.T) {
	const n = 6
	// Two identically-seeded systems: one scans serially, one vectored.
	serial := func() Stats {
		e, sys := build(t, smallConfig(NChance))
		drive(t, e, func(p *sim.Proc) {
			for i := uint32(0); i < n; i++ {
				sys.Client(0).Read(p, blk(1, i))
			}
		})
		e.Close()
		return sys.Stats()
	}()
	e, sys := build(t, smallConfig(NChance))
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).ReadRange(p, blk(1, 0), n)
	})
	e.Close()
	got := sys.Stats()
	if got.Reads != serial.Reads || got.DiskReads != serial.DiskReads {
		t.Fatalf("vectored stats diverge: serial %+v, range %+v", serial, got)
	}
}

func TestReadRangeFasterThanSerial(t *testing.T) {
	const n = 8
	elapsed := func(vectored bool) sim.Duration {
		e, sys := build(t, smallConfig(Greedy))
		var d sim.Duration
		drive(t, e, func(p *sim.Proc) {
			t0 := p.Now()
			if vectored {
				sys.Client(1).ReadRange(p, blk(2, 0), n)
			} else {
				for i := uint32(0); i < n; i++ {
					sys.Client(1).Read(p, blk(2, i))
				}
			}
			d = sim.Duration(p.Now() - t0)
		})
		e.Close()
		return d
	}
	serial, ranged := elapsed(false), elapsed(true)
	if ranged >= serial {
		t.Fatalf("ReadRange not faster: serial %v, range %v", serial, ranged)
	}
}

func TestReadRangeZeroCountIsNoOp(t *testing.T) {
	e, sys := build(t, smallConfig(Greedy))
	drive(t, e, func(p *sim.Proc) {
		sys.Client(0).ReadRange(p, blk(1, 0), 0)
	})
	if sys.Stats().Reads != 0 {
		t.Fatalf("zero-count range read counted reads: %+v", sys.Stats())
	}
}
