package coopcache

import "github.com/nowproject/now/internal/obs"

// Instrument attaches metrics to the system. Call once per registry,
// after New. A nil registry is a no-op. The Stats counters are mirrored
// into gauges at snapshot time (ResetStats at a warm-up boundary resets
// what the mirror reads, matching the reported tables); each read's
// service time is additionally recorded into a latency histogram.
//
// System metrics (names per docs/OBSERVABILITY.md):
//
//	coop.reads                application reads (sampled)
//	coop.writes               application writes (sampled)
//	coop.hits.local           reads hit in the local cache (sampled)
//	coop.hits.remote          reads served from a peer's cache (sampled)
//	coop.hits.server          reads served from server memory (sampled)
//	coop.reads.disk           reads that went to disk (sampled)
//	coop.recirculations       N-chance singlet recirculations (sampled)
//	coop.evictions.noticed    eviction notices sent to the server (sampled)
//	coop.read.latency.ns      per-read service time histogram
func (sys *System) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	sys.m = &systemMetrics{
		readNs: r.Histogram("coop.read.latency.ns", obs.DurationBuckets),
	}
	mirror := []struct {
		name string
		get  func(*Stats) int64
	}{
		{"coop.reads", func(s *Stats) int64 { return s.Reads }},
		{"coop.writes", func(s *Stats) int64 { return s.Writes }},
		{"coop.hits.local", func(s *Stats) int64 { return s.LocalHits }},
		{"coop.hits.remote", func(s *Stats) int64 { return s.RemoteHits }},
		{"coop.hits.server", func(s *Stats) int64 { return s.ServerMemHits }},
		{"coop.reads.disk", func(s *Stats) int64 { return s.DiskReads }},
		{"coop.recirculations", func(s *Stats) int64 { return s.Recirculations }},
		{"coop.evictions.noticed", func(s *Stats) int64 { return s.EvictionNotices }},
	}
	gs := make([]*obs.Gauge, len(mirror))
	for i, m := range mirror {
		gs[i] = r.Gauge(m.name)
	}
	r.OnSample(func() {
		for i, m := range mirror {
			gs[i].Set(m.get(&sys.st))
		}
	})
}

// systemMetrics holds the system's histogram handles; nil on an
// uninstrumented system.
type systemMetrics struct {
	readNs *obs.Histogram // coop.read.latency.ns
}
