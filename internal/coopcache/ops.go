package coopcache

import (
	"errors"
	"sort"

	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/trace"
)

// ---- server side ----

func (s *server) register() {
	s.ep.Register(hRead, s.onRead)
	s.ep.Register(hEvict, s.onEvict)
	s.ep.Register(hWrite, s.onWrite)
}

// onRead decides how a client miss is served: forward to a caching
// client, serve from server memory, or read the disk. The requesting
// client is added to the directory optimistically — it will cache the
// block as soon as it gets it.
func (s *server) onRead(p *sim.Proc, m am.Msg) (any, int) {
	blk := m.Arg.(BlockID)
	requester := int(m.Src) - 1
	otherHolders := 0
	for h := range s.dir[blk] {
		if h != requester {
			otherHolders++
		}
	}
	if s.sys.cfg.Policy != ClientServer && otherHolders > 0 {
		// Deterministic choice: lowest-index holder.
		best := -1
		for h := range s.dir[blk] {
			if h != requester && (best < 0 || h < best) {
				best = h
			}
		}
		s.addHolder(blk, requester)
		return readReply{forwardTo: best}, 16
	}
	if _, ok := s.cache.Get(blk); ok {
		s.addHolder(blk, requester)
		return readReply{forwardTo: -1, singletHint: otherHolders == 0}, s.sys.cfg.BlockBytes
	}
	// Disk read; the block enters the server cache.
	s.ep.Node().Disk.Read(p, diskOffset(blk, s.sys.cfg.BlockBytes), s.sys.cfg.BlockBytes)
	s.cache.Put(blk, struct{}{})
	s.addHolder(blk, requester)
	return readReply{forwardTo: -1, fromDisk: true, singletHint: otherHolders == 0}, s.sys.cfg.BlockBytes
}

// onEvict handles a client's asynchronous eviction notice: drop the
// evictor from the directory and, if the copy was recirculated onward,
// record its new home.
func (s *server) onEvict(p *sim.Proc, m am.Msg) (any, int) {
	n := m.Arg.(evictNotice)
	s.removeHolder(n.blk, int(m.Src)-1)
	if n.movedTo >= 0 && n.movedTo < s.sys.cfg.Clients {
		s.addHolder(n.blk, n.movedTo)
	}
	return nil, 0
}

// onWrite applies a write-through: store to disk, refresh the server
// cache, and invalidate every other cached copy.
func (s *server) onWrite(p *sim.Proc, m am.Msg) (any, int) {
	blk := m.Arg.(BlockID)
	writer := int(m.Src) - 1
	s.ep.Node().Disk.Write(p, diskOffset(blk, s.sys.cfg.BlockBytes), s.sys.cfg.BlockBytes)
	s.cache.Put(blk, struct{}{})
	holders := make([]int, 0, len(s.dir[blk]))
	for h := range s.dir[blk] {
		if h != writer {
			holders = append(holders, h)
		}
	}
	sort.Ints(holders) // deterministic invalidation order
	for _, h := range holders {
		_ = s.ep.Send(p, s.sys.clients[h].ep.ID(), hInval, blk, 16)
		delete(s.dir[blk], h)
	}
	s.addHolder(blk, writer)
	return nil, 0
}

func (s *server) addHolder(blk BlockID, c int) {
	hs := s.dir[blk]
	if hs == nil {
		hs = make(map[int]struct{})
		s.dir[blk] = hs
	}
	hs[c] = struct{}{}
}

func (s *server) removeHolder(blk BlockID, c int) {
	if hs, ok := s.dir[blk]; ok {
		delete(hs, c)
		if len(hs) == 0 {
			delete(s.dir, blk)
		}
	}
}

// ---- client side ----

type evictNotice struct {
	blk    BlockID
	recirc int
	// movedTo names the peer the evictor recirculated the block to
	// (N-chance), or -1 when the copy simply died.
	movedTo int
}

type recircArgs struct {
	blk    BlockID
	recirc int
}

func (c *client) register() {
	c.ep.Register(hFetch, c.onFetch)
	c.ep.Register(hRecirc, c.onRecirc)
	c.ep.Register(hInval, c.onInval)
}

// onFetch serves a peer's forwarded read from this client's cache.
func (c *client) onFetch(p *sim.Proc, m am.Msg) (any, int) {
	blk := m.Arg.(BlockID)
	if _, ok := c.cache.Get(blk); !ok {
		return false, 8 // raced an eviction; requester falls back
	}
	// Memory copy out of the cache.
	c.ep.Node().CPU.Compute(p, c.sys.cfg.LocalCopy)
	return true, c.sys.cfg.BlockBytes
}

// onRecirc accepts a recirculated singlet into this client's cache.
func (c *client) onRecirc(p *sim.Proc, m am.Msg) (any, int) {
	args := m.Arg.(recircArgs)
	c.insert(p, args.blk, args.recirc, true)
	return nil, 0
}

// onInval drops an invalidated copy.
func (c *client) onInval(p *sim.Proc, m am.Msg) (any, int) {
	c.cache.Remove(m.Arg.(BlockID))
	return nil, 0
}

// insert caches blk, handling the eviction it may cause. Coordination
// is asynchronous and off the read's critical path — the overhead the
// study accounts for is the traffic, not a blocking round trip:
//
//   - client/server: evictions are silent (the baseline maintains no
//     directory; stale entries only cause harmless extra invalidations);
//   - greedy: a one-way eviction notice keeps the directory accurate;
//   - n-chance: a victim whose hint says it is the last cached copy is
//     forwarded directly to a random peer (up to NChance times), and
//     the notice tells the server where it went.
func (c *client) insert(p *sim.Proc, blk BlockID, recirc int, maybeSinglet bool) {
	vKey, vVal, evicted := c.cache.Put(blk, &cachedBlock{recirc: recirc, maybeSinglet: maybeSinglet})
	if !evicted {
		return
	}
	if c.sys.cfg.Policy == ClientServer {
		return
	}
	movedTo := -1
	if c.sys.cfg.Policy == NChance && vVal.maybeSinglet &&
		vVal.recirc < c.sys.cfg.NChance && c.sys.cfg.Clients > 1 {
		t := c.sys.eng.Rand().Intn(c.sys.cfg.Clients - 1)
		if t >= c.idx {
			t++
		}
		movedTo = t
		c.sys.st.Recirculations++
		c.ep.SendAsync(p, c.sys.clients[t].ep.ID(), hRecirc,
			recircArgs{blk: vKey, recirc: vVal.recirc + 1}, c.sys.cfg.BlockBytes)
	}
	c.sys.st.EvictionNotices++
	c.ep.SendAsync(p, c.sys.server.ep.ID(), hEvict,
		evictNotice{blk: vKey, recirc: vVal.recirc, movedTo: movedTo}, 24)
}

// Read performs one application read of blk at this client, blocking p
// for the full service time. It returns where the block was found.
func (c *client) Read(p *sim.Proc, blk BlockID) {
	start := p.Now()
	c.sys.st.Reads++
	defer func() {
		c.sys.resp = append(c.sys.resp, p.Now()-start)
		if m := c.sys.m; m != nil {
			m.readNs.Observe(int64(p.Now() - start))
		}
	}()
	if _, ok := c.cache.Get(blk); ok {
		c.sys.st.LocalHits++
		c.ep.Node().CPU.Compute(p, c.sys.cfg.LocalCopy)
		return
	}
	reply, err := c.ep.Call(p, c.sys.server.ep.ID(), hRead, blk, 32)
	if err != nil {
		return
	}
	rr := reply.(readReply)
	if rr.forwardTo >= 0 {
		peer := c.sys.clients[rr.forwardTo]
		got, err := c.ep.Call(p, peer.ep.ID(), hFetch, blk, 32)
		if err == nil && got == true {
			c.sys.st.RemoteHits++
			c.insert(p, blk, 0, false) // the peer also holds a copy
			return
		}
		// Raced eviction: retry at the server, which now reads disk or
		// serves from its own cache.
		reply, err = c.ep.Call(p, c.sys.server.ep.ID(), hRead, blk, 32)
		if err != nil {
			return
		}
		rr = reply.(readReply)
		if rr.forwardTo >= 0 {
			// Directory healed meanwhile; treat as a remote hit without
			// a third hop to bound worst-case latency.
			c.sys.st.RemoteHits++
			c.insert(p, blk, 0, false)
			return
		}
	}
	if rr.fromDisk {
		c.sys.st.DiskReads++
	} else {
		c.sys.st.ServerMemHits++
	}
	c.insert(p, blk, 0, rr.singletHint)
}

// ReadRange reads the contiguous run [blk, blk+count) pipelined: each
// block's lookup-and-forward chain runs as its own proc, so server
// round trips, peer fetches, and disk reads overlap instead of queueing
// behind one another. The stats are those of count serial Reads — only
// the virtual time differs.
func (c *client) ReadRange(p *sim.Proc, blk BlockID, count int) {
	if count <= 0 {
		return
	}
	wg := sim.NewWaitGroup(c.sys.eng, "coopcache/readrange")
	wg.Add(count)
	for i := 0; i < count; i++ {
		b := BlockID{File: blk.File, Block: blk.Block + uint32(i)}
		c.sys.eng.Spawn("coopcache/rangeblk", func(wp *sim.Proc) {
			defer wg.Done()
			c.Read(wp, b)
		})
	}
	wg.Wait(p)
}

// Write performs one application write: write-through to the server.
func (c *client) Write(p *sim.Proc, blk BlockID) {
	c.sys.st.Writes++
	_, _ = c.ep.Call(p, c.sys.server.ep.ID(), hWrite, blk, c.sys.cfg.BlockBytes)
	c.insert(p, blk, 0, true) // write-through invalidated everyone else
}

func diskOffset(blk BlockID, blockBytes int) int64 {
	return (int64(blk.File)<<20 | int64(blk.Block)) * int64(blockBytes)
}

// RunTrace drives the whole system with a file-access trace. The trace
// is applied in order; each access runs to completion before the next
// starts (the study's trace-driven methodology). The engine is left
// reusable, so callers can warm caches with one trace segment and
// measure another.
func RunTrace(e *sim.Engine, sys *System, accesses []trace.FileAccess) error {
	done := false
	e.Spawn("trace-driver", func(p *sim.Proc) {
		for _, a := range accesses {
			c := sys.clients[a.Client]
			blk := BlockID{File: a.File, Block: a.Block}
			if a.Write {
				c.Write(p, blk)
			} else {
				c.Read(p, blk)
			}
		}
		done = true
	})
	if err := e.RunUntil(sim.MaxTime); err != nil {
		return err
	}
	if !done {
		return errors.New("coopcache: trace driver stalled")
	}
	return nil
}
