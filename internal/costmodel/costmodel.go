// Package costmodel reproduces the paper's economic arguments: Bell's
// volume rule, the DRAM price gap between PCs and supercomputers, the
// engineering lag of MPPs (Table 1), and the price of assembling 128
// SuperSparc processors as workstations, SMP servers, or an MPP
// (Figure 1).
package costmodel

import (
	"fmt"
	"math"
)

// BellCostRatio applies Gordon Bell's rule of thumb — doubling
// manufacturing volume reduces unit cost to 90% — returning the unit
// cost of the higher-volume product relative to the lower-volume one.
// The paper's example: 30,000× the volume predicts roughly a fivefold
// cost advantage.
func BellCostRatio(volumeRatio float64) float64 {
	if volumeRatio <= 0 {
		return 1
	}
	return math.Pow(0.9, math.Log2(volumeRatio))
}

// DRAMPricePerMB (January 1994, $): the paper's observation that the
// same bits cost 15× more in a Cray M90 than in a personal computer.
var DRAMPricePerMB = map[string]float64{
	"personal computer": 40,
	"Cray M90":          600,
}

// PerformanceGrowth is the annual microprocessor performance
// improvement the paper assumes when costing engineering lag.
const PerformanceGrowth = 0.50

// MPPLag is one Table 1 row: an MPP and the year a workstation shipped
// with the same microprocessor.
type MPPLag struct {
	MPP        string
	Processor  string
	MPPYear    float64 // midpoint of the shipping window
	EquivYear  float64 // when workstations had the equivalent processor
	LagYears   float64
	PerfFactor float64 // performance given up to the lag at 50%/yr
}

// Table1 returns the paper's MPP-lag comparison, with the derived cost
// of that lag at 50% performance growth per year.
func Table1() []MPPLag {
	rows := []MPPLag{
		{MPP: "T3D", Processor: "150-MHz Alpha", MPPYear: 1993.5, EquivYear: 1992.5},
		{MPP: "Paragon", Processor: "50-MHz i860", MPPYear: 1992.5, EquivYear: 1991},
		{MPP: "CM-5", Processor: "32-MHz SS-2", MPPYear: 1991.5, EquivYear: 1989.5},
	}
	for i := range rows {
		rows[i].LagYears = rows[i].MPPYear - rows[i].EquivYear
		rows[i].PerfFactor = math.Pow(1+PerformanceGrowth, rows[i].LagYears)
	}
	return rows
}

// SystemConfig prices one way of packaging 128 40-MHz SuperSparc
// processors with 128×32 MB of memory, 128 GB of disk and 128 screens —
// Figure 1's comparison. Prices are representative 1994 university list
// prices; the *shape* (servers and MPPs ≈ 2× the most cost-effective
// workstation) is the reproduction target, per the paper.
type SystemConfig struct {
	Name        string
	CPUsPerBox  int
	BoxBase     float64 // enclosure + first CPU + workstation screen if integrated
	ExtraCPU    float64 // each additional processor in the box
	HasScreen   bool    // workstations include their screen
	Engineering float64 // low-volume engineering markup multiplier
}

// Figure1Configs returns the six systems of Figure 1.
func Figure1Configs() []SystemConfig {
	return []SystemConfig{
		{Name: "SparcStation-10 (1-way)", CPUsPerBox: 1, BoxBase: 16_000, ExtraCPU: 7_000, HasScreen: true, Engineering: 1.0},
		{Name: "SparcStation-10 (2-way)", CPUsPerBox: 2, BoxBase: 16_000, ExtraCPU: 7_000, HasScreen: true, Engineering: 1.0},
		{Name: "SparcStation-10 (4-way)", CPUsPerBox: 4, BoxBase: 16_000, ExtraCPU: 7_000, HasScreen: true, Engineering: 1.0},
		{Name: "SparcCenter-1000 (8-way)", CPUsPerBox: 8, BoxBase: 55_000, ExtraCPU: 9_000, Engineering: 1.35},
		{Name: "SparcCenter-2000 (20-way)", CPUsPerBox: 20, BoxBase: 110_000, ExtraCPU: 10_000, Engineering: 1.45},
		{Name: "CM-5/CS-2 (128-node MPP)", CPUsPerBox: 128, BoxBase: 250_000, ExtraCPU: 14_000, Engineering: 1.5},
	}
}

// SystemPrice is one Figure 1 bar.
type SystemPrice struct {
	Name  string
	Boxes int
	Total float64 // dollars for the full 128-CPU configuration
}

// Component prices shared by every configuration.
const (
	totalCPUs      = 128
	memPerCPUMB    = 32
	dramPerMB      = 40.0   // $/MB at workstation volume
	diskPerGB      = 700.0  // $/GB, commodity SCSI
	diskTotalGB    = 128.0  //
	xTerminal      = 1500.0 // screen for configurations without one per user
	netPerNode     = 600.0  // switched LAN adapter + port per box
	mppInterconnet = 0.0    // MPP interconnect is folded into its node price
)

// PriceSystem computes one configuration's total price. Boxes that do
// not divide 128 evenly (the 20-way SparcCenter-2000) need a final
// partially populated box.
func PriceSystem(cfg SystemConfig) SystemPrice {
	boxes := (totalCPUs + cfg.CPUsPerBox - 1) / cfg.CPUsPerBox
	fullBoxes := totalCPUs / cfg.CPUsPerBox
	perBox := cfg.BoxBase + float64(cfg.CPUsPerBox-1)*cfg.ExtraCPU
	total := float64(fullBoxes) * perBox
	if rem := totalCPUs - fullBoxes*cfg.CPUsPerBox; rem > 0 {
		total += cfg.BoxBase + float64(rem-1)*cfg.ExtraCPU
	}
	// Memory and disk are the same raw quantities everywhere, but
	// low-volume packaging taxes them too (the paper's DRAM example).
	total += totalCPUs * memPerCPUMB * dramPerMB * cfg.Engineering
	total += diskTotalGB * diskPerGB * cfg.Engineering
	if !cfg.HasScreen {
		total += totalCPUs * xTerminal
	}
	// Interconnect: a LAN port per box for clustered systems.
	if cfg.CPUsPerBox < totalCPUs {
		total += float64(boxes) * netPerNode
	}
	total *= cfg.Engineering
	return SystemPrice{Name: cfg.Name, Boxes: boxes, Total: total}
}

// Figure1 prices all configurations.
func Figure1() []SystemPrice {
	cfgs := Figure1Configs()
	out := make([]SystemPrice, len(cfgs))
	for i, c := range cfgs {
		out[i] = PriceSystem(c)
	}
	return out
}

// CheapestWorkstation returns the lowest-priced workstation
// configuration in Figure 1.
func CheapestWorkstation() SystemPrice {
	best := SystemPrice{Total: math.Inf(1)}
	for i, p := range Figure1() {
		if Figure1Configs()[i].HasScreen && p.Total < best.Total {
			best = p
		}
	}
	return best
}

// String renders a price line.
func (p SystemPrice) String() string {
	return fmt.Sprintf("%-28s %3d boxes  $%.2fM", p.Name, p.Boxes, p.Total/1e6)
}
