package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBellRuleFivefoldAt30000(t *testing.T) {
	// Paper: 30,000:1 volume → about a fivefold cost advantage.
	advantage := 1 / BellCostRatio(30000)
	if advantage < 4 || advantage > 6 {
		t.Fatalf("advantage = %.2f, want ≈5", advantage)
	}
}

func TestBellRuleDoubling(t *testing.T) {
	if r := BellCostRatio(2); math.Abs(r-0.9) > 1e-9 {
		t.Fatalf("doubling → %.4f, want 0.90", r)
	}
	if BellCostRatio(1) != 1 {
		t.Fatal("equal volume should be 1")
	}
	if BellCostRatio(0) != 1 {
		t.Fatal("degenerate volume should be 1")
	}
}

func TestBellRuleMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		va, vb := float64(a)+1, float64(b)+1
		if va > vb {
			va, vb = vb, va
		}
		return BellCostRatio(vb) <= BellCostRatio(va)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDRAMGapIs15x(t *testing.T) {
	gap := DRAMPricePerMB["Cray M90"] / DRAMPricePerMB["personal computer"]
	if gap != 15 {
		t.Fatalf("DRAM gap = %.1f, paper says 15×", gap)
	}
}

func TestTable1LagCosts(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]MPPLag{}
	for _, r := range rows {
		byName[r.MPP] = r
		if r.LagYears <= 0 {
			t.Errorf("%s has non-positive lag %v", r.MPP, r.LagYears)
		}
	}
	// CM-5 lags the most (two years → more than a factor of two, the
	// paper's headline arithmetic).
	if byName["CM-5"].LagYears != 2 {
		t.Fatalf("CM-5 lag = %v years", byName["CM-5"].LagYears)
	}
	if f := byName["CM-5"].PerfFactor; f < 2 {
		t.Fatalf("two-year lag cost %.2f×, paper: more than a factor of two", f)
	}
	if byName["T3D"].LagYears >= byName["CM-5"].LagYears {
		t.Fatal("T3D (newest) should lag less than CM-5")
	}
}

func TestFigure1WorkstationsCheapest(t *testing.T) {
	prices := Figure1()
	cfgs := Figure1Configs()
	best := CheapestWorkstation()
	if best.Total <= 0 || math.IsInf(best.Total, 1) {
		t.Fatal("no cheapest workstation")
	}
	for i, p := range prices {
		if cfgs[i].HasScreen {
			continue
		}
		ratio := p.Total / best.Total
		// Paper: "the price is twice as high for either the large
		// multiprocessor servers or MPPs compared to the most
		// cost-effective workstation."
		if ratio < 1.5 || ratio > 3.0 {
			t.Errorf("%s = %.1f× the best workstation, want ≈2×", p.Name, ratio)
		}
	}
}

func TestFigure1BoxCounts(t *testing.T) {
	cfgs := Figure1Configs()
	for i, p := range Figure1() {
		if p.Boxes*cfgs[i].CPUsPerBox < 128 {
			t.Errorf("%s: %d boxes of %d CPUs cannot hold 128", p.Name, p.Boxes, cfgs[i].CPUsPerBox)
		}
	}
}

func TestFigure1FourWayIsMostCostEffective(t *testing.T) {
	best := CheapestWorkstation()
	if best.Name != "SparcStation-10 (4-way)" {
		t.Fatalf("cheapest = %s; repackaging CPUs into desktop boxes should win", best.Name)
	}
}

func TestPriceStringRenders(t *testing.T) {
	s := Figure1()[0].String()
	if s == "" {
		t.Fatal("empty render")
	}
}
