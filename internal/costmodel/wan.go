// Wide-area closed forms: the analytic side of the federation's two
// decisions — when does shipping a job across the WAN beat the local
// queue, and when does lease-warmed caching beat per-read re-fetch from
// the home cluster. The WA1 study measures the simulated system against
// FedCrossoverLatencyNs; the spill-over placer evaluates
// SpillRemoteCostNs against SpillLocalWaitNs on every submit.
//
// All times are nanoseconds as float64, matching the package's unitless
// closed-form style; callers convert to sim durations at the boundary.
package costmodel

// WANTransferNs is the serialization time of n bytes on a WAN pipe of
// the given bit rate.
func WANTransferNs(bytes int64, mbps float64) float64 {
	if mbps <= 0 || bytes <= 0 {
		return 0
	}
	return float64(bytes) * 8e3 / mbps // bytes*8 / (mbps*1e6) s → ns
}

// SpillRemoteCostNs prices migrating a gang of nprocs processes with
// the given memory image each over the WAN, plus the federated-cache
// warmup the job pays before its working set is local again.
func SpillRemoteCostNs(imageBytes int64, nprocs int, mbps, latencyNs, warmupNs float64) float64 {
	if nprocs < 1 {
		nprocs = 1
	}
	return WANTransferNs(imageBytes*int64(nprocs), mbps) + 2*latencyNs + warmupNs
}

// SpillLocalWaitNs estimates the local queue delay of a job behind
// queued jobs of roughly workNs each — the deliberately crude FCFS
// estimate the placer compares the WAN cost against (the master runs
// one job per idle set at a time, so a queue of q means waiting out
// about q service times).
func SpillLocalWaitNs(queueLen int, workNs float64) float64 {
	if queueLen < 0 {
		queueLen = 0
	}
	return float64(queueLen) * workNs
}

// FedRefetchNs is the cost of `reads` remote block reads without the
// cache tier: every read pays the round trip plus one block
// serialization plus the per-call overhead.
func FedRefetchNs(reads int, rttNs, blockSerNs, overheadNs float64) float64 {
	return float64(reads) * (rttNs + blockSerNs + overheadNs)
}

// FedCachedNs is the cost of the same reads through the lease tier: one
// grant round trip that ships warmBlocks blocks (bandwidth-bound,
// latency-independent), then every read served at local-copy cost.
func FedCachedNs(reads, warmBlocks int, rttNs, blockSerNs, overheadNs, localCopyNs float64) float64 {
	return rttNs + float64(warmBlocks)*blockSerNs + overheadNs + float64(reads)*localCopyNs
}

// FedCrossoverLatencyNs solves FedCachedNs = FedRefetchNs for the
// one-way WAN latency (rtt = 2·lat): the latency above which warming
// the whole file beats re-fetching every read from home. reads is the
// total number of block reads the workload issues against the file
// (reuse included); warmBlocks is what the grant ships. Returns 0 when
// caching wins at any latency, +Inf when it never does (reads ≤ 1).
func FedCrossoverLatencyNs(reads, warmBlocks int, blockSerNs, overheadNs, localCopyNs float64) float64 {
	if reads <= 1 {
		return inf()
	}
	num := float64(warmBlocks)*blockSerNs + overheadNs + float64(reads)*localCopyNs -
		float64(reads)*(blockSerNs+overheadNs)
	lat := num / (2 * float64(reads-1))
	if lat < 0 {
		return 0
	}
	return lat
}

func inf() float64 { return 1e300 }
