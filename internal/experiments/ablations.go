package experiments

import (
	"fmt"

	"github.com/nowproject/now/internal/apps"
	"github.com/nowproject/now/internal/coopcache"
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/trace"
)

// The ablations DESIGN.md §4 calls out: each isolates one design choice
// the paper argues for and measures what happens without it.

// PolicyRow is one recruitment-policy outcome.
type PolicyRow struct {
	Policy       glunix.RecruitPolicy
	Slowdown     float64
	UserP95Delay float64 // seconds a returning user waits, 95th percentile
	Disturbed    int64
	Restarts     int64
}

// RecruitmentPolicyAblation reruns the Figure 3 scenario (one size)
// under the three user-return policies: the paper's migrate-on-return,
// kill-and-restart, and ignore-the-user. It shows why the paper insists
// on migration: restart burns the job's progress, ignoring the user
// burns the social contract.
func RecruitmentPolicyAblation(ws, days int, seed int64) (Report, []PolicyRow, error) {
	if ws <= 0 {
		ws, days = 64, 1
	}
	length := sim.Duration(days) * 24 * sim.Hour
	horizon := length + 12*sim.Hour
	jcfg := trace.DefaultJobTraceConfig(length)
	jcfg.Seed = seed
	jcfg.MeanInterarrival = 65 * sim.Minute
	jcfg.DevFraction = 0.5
	jobs := trace.GenerateJobs(jcfg)
	for i := range jobs {
		if jobs[i].CommGrain < 5*sim.Second {
			jobs[i].CommGrain = 5 * sim.Second
		}
	}
	ideal := make(map[int]sim.Duration, len(jobs))
	for _, tj := range jobs {
		ideal[tj.ID] = tj.Work
	}
	acfg := trace.DefaultActivityConfig(ws, days)
	acfg.Seed = seed
	// A busier building than the Berkeley default: users come and go at
	// most desks, so guests are evicted often — the regime where the
	// user-return policy actually matters.
	acfg.UnusedProb = 0.30
	acfg.MeanSessions = 14
	activity := trace.GenerateActivity(acfg)

	var rows []PolicyRow
	tbl := stats.NewTable(fmt.Sprintf("Ablation — user-return policy (%d workstations)", ws),
		"Policy", "Job slowdown", "User p95 delay (s)", "Users disturbed", "Job restarts")
	for _, policy := range []glunix.RecruitPolicy{
		glunix.MigrateOnReturn, glunix.RestartOnReturn, glunix.IgnoreUser,
	} {
		cfg := glunix.DefaultConfig(ws)
		cfg.Policy = policy
		cfg.HeartbeatInterval = 5 * sim.Minute
		cfg.CheckpointInterval = 30 * sim.Minute
		e := sim.NewEngine(seed)
		res, err := glunix.RunMixed(e, cfg, activity, jobs, horizon)
		e.Close()
		if err != nil {
			return Report{}, nil, fmt.Errorf("policy ablation %v: %w", policy, err)
		}
		var sl stats.Summary
		for id, resp := range res.Responses {
			if base := ideal[id]; base > 0 {
				sl.Add(float64(resp) / float64(base))
			}
		}
		row := PolicyRow{
			Policy:       policy,
			Slowdown:     sl.Mean(),
			UserP95Delay: res.Master.UserDelays.Percentile(95),
			Disturbed:    res.Master.UserDisturbed,
			Restarts:     res.Master.Restarts,
		}
		rows = append(rows, row)
		tbl.AddRow(policy.String(), fmt.Sprintf("%.2f", row.Slowdown),
			fmt.Sprintf("%.2f", row.UserP95Delay),
			fmt.Sprintf("%d", row.Disturbed), fmt.Sprintf("%d", row.Restarts))
	}
	return Report{
		ID:    "A1",
		Title: "Ablation: migrate-on-return vs restart vs ignore-the-user",
		Table: tbl,
		Notes: "the paper's policy (migrate) keeps both job progress and the interactive guarantee",
	}, rows, nil
}

// NChanceRow is one recirculation-count outcome.
type NChanceRow struct {
	N        int
	MissRate float64
	Response sim.Duration
}

// NChanceAblation sweeps the recirculation count of cooperative
// caching: 0 is greedy forwarding, 2 is the paper's algorithm, higher
// buys little — the diminishing-returns curve from Dahlin's study.
func NChanceAblation(accesses int) (Report, []NChanceRow, error) {
	if accesses <= 0 {
		accesses = 120_000
	}
	tcfg := trace.DefaultFileTraceConfig()
	tcfg.Accesses = accesses
	all := trace.GenerateFileTrace(tcfg)
	warm := len(all) * 2 / 5

	var rows []NChanceRow
	tbl := stats.NewTable("Ablation — N-chance recirculation count",
		"N", "Miss rate", "Read response (ms)")
	for _, n := range []int{0, 1, 2, 4} {
		ccfg := coopcache.DefaultConfig(coopcache.NChance)
		if n == 0 {
			ccfg.Policy = coopcache.Greedy
		}
		ccfg.NChance = n
		ccfg.ClientCacheBlocks = 512
		ccfg.ServerCacheBlocks = 4096
		e := sim.NewEngine(1)
		sys, err := coopcache.New(e, ccfg)
		if err != nil {
			e.Close()
			return Report{}, nil, err
		}
		if err := coopcache.RunTrace(e, sys, all[:warm]); err != nil {
			e.Close()
			return Report{}, nil, err
		}
		sys.ResetStats()
		if err := coopcache.RunTrace(e, sys, all[warm:]); err != nil {
			e.Close()
			return Report{}, nil, err
		}
		e.Close()
		rows = append(rows, NChanceRow{N: n, MissRate: sys.Stats().MissRate(),
			Response: sys.MeanReadResponse()})
		tbl.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f%%", sys.Stats().MissRate()*100),
			stats.FormatFloat(sys.MeanReadResponse().Milliseconds()))
	}
	return Report{
		ID:    "A2",
		Title: "Ablation: singlet recirculation count (0 = greedy forwarding)",
		Table: tbl,
		Notes: "the paper's N=2 captures most of the benefit; more lives add traffic, not hits",
	}, rows, nil
}

// BufferRow is one buffer-size outcome for Column.
type BufferRow struct {
	Slots    int
	Slowdown float64
}

// ColumnBufferAblation sweeps destination buffering for the Column
// benchmark under local scheduling — the paper's aside that "as long as
// enough buffering exists on the destination processor, the sending
// processor is not significantly slowed."
func ColumnBufferAblation(seed int64) (Report, []BufferRow, error) {
	run := func(slots int, cosched bool) (sim.Duration, error) {
		e := sim.NewEngine(seed)
		defer e.Close()
		cfg := apps.DefaultContentionConfig(apps.Column, 2, cosched)
		cfg.BufferSlots = slots
		res, err := apps.RunContention(e, cfg)
		if err != nil {
			return 0, err
		}
		return res.MaxElapsed(), nil
	}
	var rows []BufferRow
	tbl := stats.NewTable("Ablation — Column vs destination buffering (2 jobs, local scheduling)",
		"Buffer slots", "Slowdown vs coscheduled")
	for _, slots := range []int{8, 16, 32, 128, 1024} {
		local, err := run(slots, false)
		if err != nil {
			return Report{}, nil, err
		}
		gang, err := run(slots, true)
		if err != nil {
			return Report{}, nil, err
		}
		s := float64(local) / float64(gang)
		rows = append(rows, BufferRow{Slots: slots, Slowdown: s})
		tbl.AddRow(fmt.Sprintf("%d", slots), fmt.Sprintf("%.2fx", s))
	}
	return Report{
		ID:    "A3",
		Title: "Ablation: buffering rescues Column (the paper's aside)",
		Table: tbl,
		Notes: "with deep buffers the burst is absorbed and drained next quantum; starved buffers stall the sender",
	}, rows, nil
}

// OverheadRow is one point of the overhead-vs-bandwidth sweep.
type OverheadRow struct {
	Label      string
	OneWay     sim.Duration
	NFSImprove float64
}

// OverheadVsBandwidthAblation isolates the paper's core networking
// claim by sweeping per-message overhead and bandwidth independently on
// the NFS workload: cutting overhead 10× helps ~4× more than raising
// bandwidth 15×.
func OverheadVsBandwidthAblation() (Report, []OverheadRow, error) {
	ops := trace.GenerateNFS(trace.DefaultNFSTraceConfig())
	total := func(bwMbps float64, perSide sim.Duration) sim.Duration {
		var t sim.Duration
		for _, op := range ops {
			for _, payload := range []int{op.RequestBytes, op.ReplyBytes} {
				wire := sim.PerByte(int64(payload+58), sim.Bandwidth(bwMbps))
				t += 2*perSide + wire + 50*sim.Microsecond
			}
		}
		return t
	}
	base := total(10, 180*sim.Microsecond)
	cases := []struct {
		label string
		bw    float64
		o     sim.Duration
	}{
		{"baseline: 10 Mb/s, 180µs/side", 10, 180 * sim.Microsecond},
		{"15× bandwidth only", 155, 180 * sim.Microsecond},
		{"10× less overhead only", 10, 18 * sim.Microsecond},
		{"both", 155, 18 * sim.Microsecond},
	}
	var rows []OverheadRow
	tbl := stats.NewTable("Ablation — overhead vs bandwidth on the NFS workload",
		"Upgrade", "Total-time improvement")
	for _, c := range cases {
		t := total(c.bw, c.o)
		imp := 1 - float64(t)/float64(base)
		rows = append(rows, OverheadRow{Label: c.label, NFSImprove: imp})
		tbl.AddRow(c.label, fmt.Sprintf("%.0f%%", imp*100))
	}
	return Report{
		ID:    "A4",
		Title: "Ablation: for small-message workloads, overhead is the lever",
		Table: tbl,
		Notes: "the paper: 'emerging high-bandwidth network technologies will provide a major advance only if they are accompanied by corresponding reductions in latency and processor overhead'",
	}, rows, nil
}
