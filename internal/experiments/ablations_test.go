package experiments

import (
	"testing"

	"github.com/nowproject/now/internal/glunix"
)

func TestRecruitmentPolicyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, rows, err := RecruitmentPolicyAblation(48, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[glunix.RecruitPolicy]PolicyRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	mig := byPolicy[glunix.MigrateOnReturn]
	res := byPolicy[glunix.RestartOnReturn]
	ign := byPolicy[glunix.IgnoreUser]
	// Restart burns progress: it must not beat migration on job slowdown
	// when evictions actually happened.
	if res.Restarts > 0 && res.Slowdown < mig.Slowdown*0.9 {
		t.Errorf("restart (%.2f) beat migration (%.2f) despite %d restarts",
			res.Slowdown, mig.Slowdown, res.Restarts)
	}
	// Ignoring the user disturbs them; migration never does.
	if mig.Disturbed != 0 {
		t.Errorf("migration disturbed %d users", mig.Disturbed)
	}
	if ign.Disturbed == 0 && ign.Restarts == 0 && mig.Restarts == 0 &&
		byPolicy[glunix.MigrateOnReturn].UserP95Delay == 0 {
		t.Skip("no evictions occurred in this trace draw; ablation vacuous")
	}
}

func TestNChanceAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, rows, err := NChanceAblation(60_000)
	if err != nil {
		t.Fatal(err)
	}
	byN := map[int]NChanceRow{}
	for _, r := range rows {
		byN[r.N] = r
	}
	// Recirculation (N=2) must beat plain greedy forwarding (N=0).
	if byN[2].MissRate >= byN[0].MissRate {
		t.Errorf("N=2 miss %.3f not below greedy %.3f", byN[2].MissRate, byN[0].MissRate)
	}
	// Diminishing returns: N=4 buys little over N=2.
	if byN[4].MissRate < byN[2].MissRate*0.5 {
		t.Errorf("N=4 (%.3f) halved N=2 (%.3f): recirculation should saturate",
			byN[4].MissRate, byN[2].MissRate)
	}
}

func TestColumnBufferAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, rows, err := ColumnBufferAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.Slots >= last.Slots {
		t.Fatal("rows not in increasing buffer order")
	}
	if last.Slowdown >= first.Slowdown {
		t.Errorf("deep buffers (%.2f) did not beat starved buffers (%.2f)",
			last.Slowdown, first.Slowdown)
	}
	if last.Slowdown > 1.5 {
		t.Errorf("with 1024 slots Column still %.2f× slow; buffering should rescue it", last.Slowdown)
	}
}

func TestOverheadVsBandwidthAblation(t *testing.T) {
	_, rows, err := OverheadVsBandwidthAblation()
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for _, r := range rows {
		byLabel[r.Label] = r.NFSImprove
	}
	bw := byLabel["15× bandwidth only"]
	oh := byLabel["10× less overhead only"]
	if oh <= bw {
		t.Errorf("overhead cut (%.0f%%) should beat bandwidth raise (%.0f%%) on small messages",
			oh*100, bw*100)
	}
	if both := byLabel["both"]; both <= oh {
		t.Errorf("both upgrades (%.0f%%) should beat overhead alone (%.0f%%)", both*100, oh*100)
	}
}
