package experiments

import (
	"fmt"

	"github.com/nowproject/now/internal/coopcache"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/trace"
)

// Table3Row is one policy's outcome.
type Table3Row struct {
	Policy       coopcache.Policy
	MissRate     float64
	ReadResponse sim.Duration
	Stats        coopcache.Stats
}

// Table3Config controls the study's scale; the default reproduces the
// paper's 42-workstation, two-day setting at a reduced access count
// (the cache *ratios* — 16 MB clients, 128 MB server, working set
// beyond the server cache — are what drive the result).
type Table3Config struct {
	Accesses int
	Policies []coopcache.Policy
}

// DefaultTable3Config runs all three policies.
func DefaultTable3Config() Table3Config {
	return Table3Config{
		Accesses: 120_000,
		Policies: []coopcache.Policy{coopcache.ClientServer, coopcache.Greedy, coopcache.NChance},
	}
}

// Table3 reproduces the cooperative caching study: client/server
// baseline vs N-chance forwarding (plus greedy forwarding as the
// ablation), on the synthetic two-day file trace.
func Table3(cfg Table3Config) (Report, []Table3Row, error) {
	if cfg.Accesses <= 0 {
		cfg = DefaultTable3Config()
	}
	tcfg := trace.DefaultFileTraceConfig()
	tcfg.Accesses = cfg.Accesses
	accesses := trace.GenerateFileTrace(tcfg)
	// The study reports steady-state behaviour: the first 40% of the
	// trace warms the caches, then counters reset for the measured part.
	warm := len(accesses) * 2 / 5

	rows := make([]Table3Row, 0, len(cfg.Policies))
	regs := make(map[string]*obs.Registry, len(cfg.Policies))
	for _, policy := range cfg.Policies {
		e := sim.NewEngine(1)
		// Quarter-scale caches (4 MB clients, 32 MB server): the same
		// client:server:working-set ratios as the paper's 16 MB/128 MB
		// study, reachable in steady state within a simulatable trace
		// length. See EXPERIMENTS.md for the scaling note.
		ccfg := coopcache.DefaultConfig(policy)
		ccfg.ClientCacheBlocks = 512
		ccfg.ServerCacheBlocks = 4096
		sys, err := coopcache.New(e, ccfg)
		if err != nil {
			e.Close()
			return Report{}, nil, fmt.Errorf("table3: %w", err)
		}
		if err := coopcache.RunTrace(e, sys, accesses[:warm]); err != nil {
			e.Close()
			return Report{}, nil, fmt.Errorf("table3 warmup %v: %w", policy, err)
		}
		sys.ResetStats()
		// Instrument the measured phase only, so the registry sees the
		// same steady-state window the table reports.
		reg := obs.NewRegistry()
		e.Observe(reg)
		sys.Instrument(reg)
		regs[policy.String()] = reg
		if err := coopcache.RunTrace(e, sys, accesses[warm:]); err != nil {
			e.Close()
			return Report{}, nil, fmt.Errorf("table3 %v: %w", policy, err)
		}
		e.Close()
		// The table's measured values come from the registry — the same
		// snapshot -metrics exports — not from a parallel counter path.
		reg.Snapshot() // runs the samplers that mirror Stats into gauges
		reads, _ := reg.GaugeValue("coop.reads")
		diskReads, _ := reg.GaugeValue("coop.reads.disk")
		missRate := 0.0
		if reads > 0 {
			missRate = float64(diskReads) / float64(reads)
		}
		var readResp sim.Duration
		if n, sum, ok := reg.HistogramStats("coop.read.latency.ns"); ok && n > 0 {
			readResp = sim.Duration(sum / n)
		}
		rows = append(rows, Table3Row{
			Policy:       policy,
			MissRate:     missRate,
			ReadResponse: readResp,
			Stats:        sys.Stats(),
		})
	}

	tbl := stats.NewTable("Table 3 — cooperative caching (42 clients × 16 MB, 128 MB server)",
		"Policy", "Miss rate", "Paper", "Read response (ms)", "Paper (ms)")
	for _, r := range rows {
		paperMiss, paperResp := "-", "-"
		switch r.Policy {
		case coopcache.ClientServer:
			paperMiss, paperResp = "16%", "2.8"
		case coopcache.NChance:
			paperMiss, paperResp = "8%", "1.6"
		}
		tbl.AddRow(r.Policy.String(),
			fmt.Sprintf("%.1f%%", r.MissRate*100), paperMiss,
			stats.FormatFloat(r.ReadResponse.Milliseconds()), paperResp)
	}
	return Report{
		ID:    "T3",
		Title: "Cooperative caching halves disk reads and speeds reads ~80%",
		Table: tbl,
		Notes: "synthetic two-day trace calibrated to the baseline's 16% disk-read rate; the delta is earned by the algorithm",
		Obs:   regs,
	}, rows, nil
}
