package experiments

import (
	"strings"
	"testing"

	"github.com/nowproject/now/internal/coopcache"
	"github.com/nowproject/now/internal/sim"
)

func TestTable2WithinTolerance(t *testing.T) {
	rep, rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		ratio := float64(r.Measured) / float64(r.Paper)
		if ratio < 0.75 || ratio > 1.3 {
			t.Errorf("%s: measured %v vs paper %v (ratio %.2f)", r.Config, r.Measured, r.Paper, ratio)
		}
	}
	// The headline: ATM remote memory is an order of magnitude faster
	// than disk service.
	if f := float64(rows[3].Measured) / float64(rows[2].Measured); f < 8 {
		t.Errorf("ATM disk/mem = %.1f, want ≳10", f)
	}
	if !strings.Contains(rep.String(), "Table 2") {
		t.Error("report missing title")
	}
}

func TestAMMicroOrderings(t *testing.T) {
	_, rows, err := AMMicro()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AMRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	am := byName["Active Messages (HPAM)"]
	tcp := byName["TCP"]
	sock := byName["sockets over AM"]
	if am.OneWay >= sock.OneWay || sock.OneWay >= tcp.OneWay {
		t.Fatalf("one-way ordering violated: AM %v, sockets %v, TCP %v",
			am.OneWay, sock.OneWay, tcp.OneWay)
	}
	if !(am.HalfPower < byName["single-copy TCP"].HalfPower &&
		byName["single-copy TCP"].HalfPower < tcp.HalfPower) {
		t.Fatalf("half-power ordering violated")
	}
	if r := float64(tcp.OneWay) / float64(sock.OneWay); r < 6 {
		t.Fatalf("TCP/sockets-over-AM = %.1f, want ≈10", r)
	}
}

func TestNFSStudy(t *testing.T) {
	_, res, err := NFSStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.SmallFraction < 0.92 || res.SmallFraction > 0.99 {
		t.Fatalf("small fraction = %.3f", res.SmallFraction)
	}
	// Paper: "the overall improvement is just 20 percent."
	if res.Improvement < 0.10 || res.Improvement > 0.35 {
		t.Fatalf("improvement = %.1f%%, want ≈20%%", res.Improvement*100)
	}
}

func TestStaticReports(t *testing.T) {
	if rep, rows := Table1(); len(rows) != 3 || rep.Table == nil {
		t.Fatal("Table1 degenerate")
	}
	if rep, rows := Figure1(); len(rows) != 6 || rep.Table == nil {
		t.Fatal("Figure1 degenerate")
	}
	if rep, rows := Table4(); len(rows) != 6 || rep.Table == nil {
		t.Fatal("Table4 degenerate")
	}
}

func TestSFIOverheadReport(t *testing.T) {
	_, rows, err := SFIOverhead()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 kernels × 2 modes
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Overhead < 0 {
			t.Fatalf("%s/%v negative overhead", r.Kernel, r.Mode)
		}
		// The representative numeric kernel lands in the paper's band.
		if r.Kernel == "stencil" && r.Mode.String() == "optimized" {
			if r.Overhead < 0.03 || r.Overhead > 0.07 {
				t.Errorf("stencil optimized overhead = %.1f%%, want 3-7%%", r.Overhead*100)
			}
		}
	}
}

func TestFigure2SmallSweep(t *testing.T) {
	_, rows, err := Figure2([]int64{8})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.NetVsDRAM < 1.0 || r.NetVsDRAM > 1.5 {
		t.Fatalf("netRAM/DRAM = %.2f", r.NetVsDRAM)
	}
	if r.DiskVsNet < 4 || r.DiskVsNet > 15 {
		t.Fatalf("disk/netRAM = %.2f", r.DiskVsNet)
	}
	if r.RemoteFaultsServed == 0 {
		t.Fatal("no remote faults served")
	}
}

func TestMemoryRestoreBound(t *testing.T) {
	_, rows, err := MemoryRestore()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Method == "parallel FS over ATM" && r.Disks >= 16 {
			if r.Elapsed > 4*sim.Second {
				t.Errorf("%d disks: restore %v exceeds the 4s bound", r.Disks, r.Elapsed)
			}
		}
		if r.Method == "buddy RAM over ATM" && r.Elapsed > 4*sim.Second {
			t.Errorf("buddy restore %v exceeds the 4s bound", r.Elapsed)
		}
	}
	// Striping must actually scale.
	var one, eight sim.Duration
	for _, r := range rows {
		if r.Method == "parallel FS over ATM" {
			if r.Disks == 1 {
				one = r.Elapsed
			}
			if r.Disks == 8 {
				eight = r.Elapsed
			}
		}
	}
	if speedup := float64(one) / float64(eight); speedup < 4 {
		t.Errorf("8-disk speedup = %.1f", speedup)
	}
}

func TestTable3Reduced(t *testing.T) {
	rep, rows, err := Table3(Table3Config{
		Accesses: 40_000,
		Policies: []coopcache.Policy{coopcache.ClientServer, coopcache.NChance},
	})
	if err != nil {
		t.Fatal(err)
	}
	base, coop := rows[0], rows[1]
	if coop.MissRate >= base.MissRate {
		t.Fatalf("cooperation did not reduce misses: %.3f vs %.3f", coop.MissRate, base.MissRate)
	}
	if coop.ReadResponse >= base.ReadResponse {
		t.Fatalf("cooperation did not speed reads: %v vs %v", coop.ReadResponse, base.ReadResponse)
	}
	if rep.Table == nil {
		t.Fatal("missing table")
	}
}

func TestFigure4Reduced(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, rows, err := Figure4(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		if r.Jobs == 2 {
			byKey[r.Pattern.String()] = r.Slowdown
		}
	}
	if byKey["Connect"] < byKey["RandA"] {
		t.Fatalf("Connect %.2f not worse than RandA %.2f", byKey["Connect"], byKey["RandA"])
	}
	if byKey["Connect"] < 1.5 {
		t.Fatalf("Connect slowdown %.2f too small", byKey["Connect"])
	}
}

func TestFigure3Point(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, rows, err := Figure3(Figure3Config{Days: 1, Sizes: []int{96}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Slowdown < 1.0 || rows[0].Slowdown > 2.0 {
		t.Fatalf("96-workstation slowdown = %.2f, want ≈1.1", rows[0].Slowdown)
	}
	if rows[0].JobsCompleted == 0 {
		t.Fatal("no jobs completed")
	}
}

func TestAvailabilityReport(t *testing.T) {
	_, res, err := Availability(53, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullyIdleDaytime < 0.60 {
		t.Fatalf("fully idle daytime = %.2f, want > 0.60", res.FullyIdleDaytime)
	}
	if res.MeanAvailableAt2 <= res.FullyIdleDaytime {
		t.Fatal("instantaneous availability should exceed whole-day availability")
	}
}

func TestSWRAIDScaling(t *testing.T) {
	_, rows, err := SWRAID()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ReadMBps <= 0 || r.DegradedMBps <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	// 8 disks should read several times faster than 1.
	for _, r := range rows {
		if r.Disks == 8 && r.ReadMBps < 4*r.OneDiskMBps {
			t.Fatalf("8-disk read %.1f MB/s < 4× one disk %.1f", r.ReadMBps, r.OneDiskMBps)
		}
	}
}

func TestSeqScanSpeedup(t *testing.T) {
	cfg := DefaultSeqScanConfig()
	cfg.Sizes = []int{32}
	rep, rows, err := SeqScan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "ST2" || len(rows) != 1 {
		t.Fatalf("report %q rows %d", rep.ID, len(rows))
	}
	r := rows[0]
	if r.Speedup < 2 {
		t.Fatalf("pipelined scan not ≥2x at %d nodes: %+v", r.Nodes, r)
	}
	if r.RangeReads == 0 || r.BatchedTokens == 0 || r.PrefetchHits == 0 {
		t.Fatalf("pipelined machinery unused: %+v", r)
	}
	if len(rep.Obs) != 2 {
		t.Fatalf("want serial+pipelined registries, got %d", len(rep.Obs))
	}
}
