package experiments

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/faults"
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/trace"
	"github.com/nowproject/now/internal/xfs"
)

// FaultStudyConfig shapes the AV1 availability study.
type FaultStudyConfig struct {
	// Workstations in the GLUnix cluster (the mixed workload side).
	Workstations int
	// XFSNodes and XFSSpares shape the storage side: XFSNodes total,
	// of which the last XFSSpares are hot spares outside the stripe.
	XFSNodes  int
	XFSSpares int
	// Horizon is the faulted portion of the run; the simulation gets
	// extra slack after it so restarted jobs can finish.
	Horizon sim.Duration
	// ReadStreams is how many parallel clients keep the stores busy.
	// It must be enough to make the array throughput-bound, or the
	// degraded window shows no penalty (see faultStudyRun). Zero means 4.
	ReadStreams int
	// Seed drives the engine, the traces and the fault plan.
	Seed int64
}

// DefaultFaultStudyConfig returns the AV1 scale: a small NOW where a
// single crash is a visible fraction of capacity.
func DefaultFaultStudyConfig() FaultStudyConfig {
	return FaultStudyConfig{
		Workstations: 16,
		XFSNodes:     10,
		XFSSpares:    2,
		Horizon:      sim.Hour,
		ReadStreams:  4,
		Seed:         1,
	}
}

// FaultStudyRow is one AV1 scenario measurement.
type FaultStudyRow struct {
	Scenario      string
	JobsCompleted int
	JobsTotal     int
	MeanResponse  sim.Duration
	UserDelayP95  float64 // seconds
	HealthyMBps   float64 // xFS read bandwidth, all stores up
	DegradedMBps  float64 // between disk failure and rebuild
	RebuiltMBps   float64 // after rebuild onto the spare
	FaultsApplied int
	Rejoins       int64
	Failovers     int64
	DegradedReads int64
}

// faultStudyPlan is the scripted AV1 fault schedule, exercising every
// class the injector knows: a partition window, a workstation crash
// with recovery and census rejoin, a storage-node failure with a later
// rebuild onto a hot spare, and an xFS manager kill forcing failover.
// Workstation ids address the GLUnix fabric; storage and manager ids
// address the xFS installation (see docs/FAULTS.md on routing).
func faultStudyPlan() faults.Plan {
	return faults.Scripted("av1",
		faults.Fault{At: 600 * sim.Second, Kind: faults.Partition, Set: []int{3, 4}, For: 120 * sim.Second},
		faults.Fault{At: 1200 * sim.Second, Kind: faults.Crash, Node: 5, For: 300 * sim.Second},
		faults.Fault{At: 1500 * sim.Second, Kind: faults.DiskFail, Node: 2},
		faults.Fault{At: 2100 * sim.Second, Kind: faults.Rebuild, Node: 2, Peer: -1},
		faults.Fault{At: 2700 * sim.Second, Kind: faults.MgrKill, Node: 0},
	)
}

// FaultStudy runs the availability study: the same mixed workload
// (interactive users + parallel jobs under GLUnix, an xFS read stream
// on the side) with and without the fault plan, and reports what the
// faults cost — jobs still complete (restarting from checkpoints),
// reads continue degraded through parity, and the interactive users'
// delays stay modest. This is the paper's availability argument run
// end-to-end: "if one workstation in the NOW crashes, any other can
// take its place".
func FaultStudy(cfg FaultStudyConfig) (Report, []FaultStudyRow, error) {
	rows := make([]FaultStudyRow, 0, 2)
	reg := map[string]*obs.Registry{}
	for _, sc := range []struct {
		name string
		plan *faults.Plan
	}{
		{"baseline", nil},
		{"faulted", planPtr(faultStudyPlan())},
	} {
		row, regs, err := faultStudyRun(cfg, sc.name, sc.plan)
		if err != nil {
			return Report{}, nil, fmt.Errorf("fault study %s: %w", sc.name, err)
		}
		rows = append(rows, row)
		for k, r := range regs {
			reg[sc.name+"/"+k] = r
		}
	}

	tbl := stats.NewTable("AV1 — availability under an injected fault plan",
		"Scenario", "Jobs done", "Mean response", "User p95 (s)",
		"xFS healthy (MB/s)", "degraded (MB/s)", "rebuilt (MB/s)", "Faults")
	for _, r := range rows {
		tbl.AddRow(r.Scenario,
			fmt.Sprintf("%d/%d", r.JobsCompleted, r.JobsTotal),
			r.MeanResponse.String(),
			fmt.Sprintf("%.2f", r.UserDelayP95),
			stats.FormatFloat(r.HealthyMBps),
			stats.FormatFloat(r.DegradedMBps),
			stats.FormatFloat(r.RebuiltMBps),
			fmt.Sprintf("%d", r.FaultsApplied))
	}
	return Report{
		ID:    "AV1",
		Title: "Jobs, storage and users ride through injected faults",
		Table: tbl,
		Notes: "scripted plan: partition 120s, ws crash+rejoin, disk fail → spare rebuild, xFS manager kill",
		Obs:   reg,
	}, rows, nil
}

func planPtr(p faults.Plan) *faults.Plan { return &p }

// faultStudyRun executes one scenario on a single engine: the GLUnix
// mixed workload and the xFS read stream share virtual time, and one
// injector drives both through a combined target.
func faultStudyRun(cfg FaultStudyConfig, name string, plan *faults.Plan) (FaultStudyRow, map[string]*obs.Registry, error) {
	row := FaultStudyRow{Scenario: name}

	e := sim.NewEngine(cfg.Seed)
	defer e.Close()
	regCluster := obs.NewRegistry()
	e.Observe(regCluster)
	regXFS := obs.NewRegistry()
	regXFS.SetClock(func() obs.Time { return int64(e.Now()) })

	// Storage side: an xFS installation with hot spares on its own
	// fabric (storage ids in the plan address this system).
	xcfg := xfs.DefaultConfig(cfg.XFSNodes)
	xcfg.SpareNodes = cfg.XFSSpares
	xcfg.Managers = 2
	xcfg.ClientCacheBlocks = 16 // small cache: reads exercise the RAID
	sys, err := xfs.New(e, xcfg)
	if err != nil {
		return row, nil, err
	}
	sys.Instrument(regXFS)

	// The read load: four clients each cycle through their own file,
	// larger than the client cache so steady-state reads hit storage.
	// Four parallel streams keep the stores throughput-bound — a single
	// latency-bound stream would actually speed up degraded (parallel
	// reconstruct overlaps the survivors), hiding the cost the study is
	// after. Completions are bucketed by minute for the phase numbers.
	const fileBlocks = 128
	readStreams := cfg.ReadStreams
	if readStreams <= 0 {
		readStreams = 4
	}
	const bucket = 60 * sim.Second
	buckets := make([]int64, int(cfg.Horizon/bucket)+1)
	var firstClient *xfs.Client
	for r := 0; r < readStreams; r++ {
		client := sys.Client(3 + r)
		file := xfs.FileID(1 + r)
		if firstClient == nil {
			firstClient = client
		}
		e.Spawn(fmt.Sprintf("faultstudy/xfsload%d", r), func(p *sim.Proc) {
			buf := make([]byte, xcfg.BlockBytes)
			for blk := uint32(0); blk < fileBlocks; blk++ {
				if err := client.Write(p, file, blk, buf); err != nil {
					p.Fail(err)
				}
			}
			if err := client.Sync(p); err != nil {
				p.Fail(err)
			}
			for blk := uint32(0); ; blk = (blk + 1) % fileBlocks {
				if p.Now() >= sim.Time(cfg.Horizon) {
					return
				}
				data, err := client.Read(p, file, blk)
				if err != nil {
					// Reads during the degraded window may race the crash
					// itself; skip rather than abort the stream.
					continue
				}
				if b := int(p.Now() / bucket); b < len(buckets) {
					buckets[b] += int64(len(data))
				}
			}
		})
	}

	// Cluster side: interactive users plus the parallel job log.
	gcfg := glunix.DefaultConfig(cfg.Workstations)
	gcfg.Seed = cfg.Seed
	gcfg.Obs = regCluster
	acfg := trace.DefaultActivityConfig(cfg.Workstations, 1)
	acfg.Seed = cfg.Seed
	activity := trace.GenerateActivity(acfg)
	jcfg := trace.DefaultJobTraceConfig(cfg.Horizon)
	jcfg.Seed = cfg.Seed
	jcfg.MachineNodes = cfg.Workstations / 2 // every job fits the NOW
	jcfg.MeanInterarrival = 10 * sim.Minute
	jcfg.MeanDevWork = 3 * sim.Minute
	jcfg.MeanProdWork = 10 * sim.Minute
	jobs := trace.GenerateJobs(jcfg)
	for i := range jobs {
		if jobs[i].CommGrain < 5*sim.Second {
			jobs[i].CommGrain = 5 * sim.Second
		}
	}

	var inj *faults.Injector
	wire := func(c *glunix.Cluster) {
		if plan == nil {
			return
		}
		inj = faults.NewInjector(e,
			faults.Combine(faults.ClusterTarget{C: c}, faults.NewXFSTarget(sys)),
			*plan, regCluster)
		inj.Schedule()
	}
	// Slack after the horizon lets restarted jobs finish.
	res, err := glunix.RunMixedWith(e, gcfg, activity, jobs, cfg.Horizon+2*sim.Hour, wire)
	if err != nil && !errors.Is(err, sim.ErrStopped) {
		return row, nil, err
	}

	row.JobsCompleted = res.JobsCompleted
	row.JobsTotal = res.JobsTotal
	row.MeanResponse = res.MeanResponse
	if res.Master.UserDelays.N() > 0 {
		row.UserDelayP95 = res.Master.UserDelays.Percentile(95)
	}
	row.Rejoins = res.Master.Rejoins
	row.Failovers = sys.Stats().Failovers
	_, _, row.DegradedReads = firstClient.Array().Stats()
	if inj != nil {
		row.FaultsApplied = inj.Applied()
	}

	// Phase bandwidths from the minute buckets, avoiding the buckets
	// that contain a transition. Phases follow faultStudyPlan times;
	// the baseline reports the same windows for comparability.
	window := func(from, to sim.Time) float64 {
		lo, hi := int(from/bucket)+1, int(to/bucket)
		if hi > len(buckets) {
			hi = len(buckets)
		}
		var sum int64
		n := 0
		for i := lo; i < hi; i++ {
			sum += buckets[i]
			n++
		}
		if n == 0 {
			return 0
		}
		return float64(sum) / float64(sim.Duration(n)*bucket/sim.Second) / 1e6
	}
	row.HealthyMBps = window(0, 1500*sim.Second)
	row.DegradedMBps = window(1500*sim.Second, 2100*sim.Second)
	// The rebuilt window ends before the manager kill at 2700s, so it
	// shows the pure post-rebuild recovery.
	row.RebuiltMBps = window(2400*sim.Second, 2700*sim.Second)

	return row, map[string]*obs.Registry{"cluster": regCluster, "xfs": regXFS}, nil
}
