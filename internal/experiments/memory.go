package experiments

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/netram"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/swraid"
)

// Figure2Row is one problem size across the three systems.
type Figure2Row struct {
	ProblemMB          int64
	DiskPaging         sim.Duration
	BigDRAM            sim.Duration
	NetworkRAM         sim.Duration
	NetVsDRAM          float64
	DiskVsNet          float64
	RemoteFaultsServed int64
}

// Figure2 reproduces the multigrid network-RAM study at 1/8 scale:
// 4 MB of local DRAM standing in for the paper's 32 MB (identical
// ratios, ~8× faster to simulate). The expectations are the paper's:
// network RAM runs 10–30% slower than all-in-DRAM and 5–10× faster
// than thrashing to disk once the problem exceeds local memory.
func Figure2(sizesMB []int64) (Report, []Figure2Row, error) {
	if len(sizesMB) == 0 {
		sizesMB = []int64{2, 4, 6, 8, 12, 16}
	}
	const mb = 1 << 20
	const localMem = 4 * mb

	run := func(memBytes int64, servers int, problem int64, reg *obs.Registry) (netram.MultigridResult, error) {
		e := sim.NewEngine(1)
		defer e.Close()
		e.Observe(reg)
		fab, err := netsim.New(e, netsim.ATM155(servers+1))
		if err != nil {
			return netram.MultigridResult{}, err
		}
		fab.Instrument(reg)
		mk := func(id int, mem int64) *am.Endpoint {
			cfg := node.DefaultConfig(netsim.NodeID(id))
			cfg.MemoryBytes = mem
			return am.NewEndpoint(e, node.New(e, cfg), fab, am.DefaultConfig())
		}
		dir := netram.NewRegistry()
		client := mk(0, memBytes)
		pager := netram.NewPager(client, dir)
		pager.Instrument(reg)
		for i := 0; i < servers; i++ {
			dir.Offer(netram.NewServer(mk(i+1, 256*mb), 16384))
		}
		var res netram.MultigridResult
		e.Spawn("app", func(p *sim.Proc) {
			cfg := netram.DefaultMultigridConfig(problem)
			cfg.Cycles = 2
			res = netram.RunMultigrid(p, pager, cfg)
			e.Stop()
		})
		if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
			return res, err
		}
		return res, nil
	}

	rows := make([]Figure2Row, 0, len(sizesMB))
	regs := make(map[string]*obs.Registry, len(sizesMB))
	tbl := stats.NewTable("Figure 2 — multigrid runtime vs problem size (1/8 scale: 4 MB local DRAM)",
		"Problem (MB)", "32MB-class+disk (s)", "128MB-class DRAM (s)", "32MB-class+netRAM (s)",
		"netRAM/DRAM", "disk/netRAM")
	for _, szMB := range sizesMB {
		problem := szMB * mb
		disk, err := run(localMem, 0, problem, nil)
		if err != nil {
			return Report{}, nil, fmt.Errorf("figure2 disk: %w", err)
		}
		dram, err := run(64*mb, 0, problem, nil)
		if err != nil {
			return Report{}, nil, fmt.Errorf("figure2 dram: %w", err)
		}
		// The network-RAM variant — the one the figure is about — runs
		// instrumented; its remote-hit column is read back from the
		// registry rather than a parallel counter path.
		reg := obs.NewRegistry()
		regs[fmt.Sprintf("netram-%dMB", szMB)] = reg
		nr, err := run(localMem, 3, problem, reg)
		if err != nil {
			return Report{}, nil, fmt.Errorf("figure2 netram: %w", err)
		}
		reg.Snapshot() // run the samplers that mirror pager stats
		remoteHits, _ := reg.GaugeValue("netram.hits.remote")
		row := Figure2Row{
			ProblemMB:          szMB,
			DiskPaging:         disk.Elapsed,
			BigDRAM:            dram.Elapsed,
			NetworkRAM:         nr.Elapsed,
			NetVsDRAM:          ratio(float64(nr.Elapsed), float64(dram.Elapsed)),
			DiskVsNet:          ratio(float64(disk.Elapsed), float64(nr.Elapsed)),
			RemoteFaultsServed: remoteHits,
		}
		rows = append(rows, row)
		tbl.AddRowf(szMB, disk.Elapsed.Seconds(), dram.Elapsed.Seconds(), nr.Elapsed.Seconds(),
			row.NetVsDRAM, row.DiskVsNet)
	}
	return Report{
		ID:    "F2",
		Title: "Network RAM: 10–30% slower than DRAM, 5–10× faster than disk",
		Table: tbl,
		Notes: "paper's claim holds where the problem exceeds local memory; in-memory sizes show ratio ≈1",
		Obs:   regs,
	}, rows, nil
}

// RestoreRow is one E7 measurement.
type RestoreRow struct {
	Method  string
	Disks   int
	Elapsed sim.Duration
}

// MemoryRestore reproduces the "64 MB restored in under 4 seconds with
// ATM bandwidth and a parallel file system" claim: reading a 64 MB
// memory image striped across workstation disks over ATM, swept by
// stripe width, plus the buddy-RAM path GLUnix uses.
func MemoryRestore() (Report, []RestoreRow, error) {
	const image = 64 << 20
	const chunk = 64 << 10

	stripeRestore := func(disks int) (sim.Duration, error) {
		e := sim.NewEngine(1)
		defer e.Close()
		fab, err := netsim.New(e, netsim.ATM155(disks+1))
		if err != nil {
			return 0, err
		}
		eps := make([]*am.Endpoint, disks+1)
		ids := make([]netsim.NodeID, 0, disks)
		for i := 0; i <= disks; i++ {
			eps[i] = am.NewEndpoint(e, node.New(e, node.DefaultConfig(netsim.NodeID(i))), fab, am.DefaultConfig())
			if i > 0 {
				swraid.NewStore(eps[i])
				ids = append(ids, eps[i].ID())
			}
		}
		level := swraid.RAID0
		arr, err := swraid.NewArray(eps[0], swraid.Config{Level: level, ChunkBytes: chunk, Stores: ids})
		if err != nil {
			return 0, err
		}
		var elapsed sim.Duration
		e.Spawn("restore", func(p *sim.Proc) {
			// Write the image out first (so reads hit real chunks), then
			// time the restore read.
			data := make([]byte, chunk)
			for i := int64(0); i < image/chunk; i++ {
				if err := arr.WriteChunks(p, i, data); err != nil {
					p.Fail(err)
				}
			}
			start := p.Now()
			if _, err := arr.ReadChunks(p, 0, image/chunk); err != nil {
				p.Fail(err)
			}
			elapsed = p.Now() - start
			e.Stop()
		})
		if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
			return 0, err
		}
		return elapsed, nil
	}

	var rows []RestoreRow
	tbl := stats.NewTable("E7 — restoring a 64 MB user memory image",
		"Method", "Disks", "Time (s)", "Paper bound")
	for _, disks := range []int{1, 2, 4, 8, 16} {
		d, err := stripeRestore(disks)
		if err != nil {
			return Report{}, nil, fmt.Errorf("restore %d disks: %w", disks, err)
		}
		rows = append(rows, RestoreRow{Method: "parallel FS over ATM", Disks: disks, Elapsed: d})
		// Below 16 disks the 2.9 MB/s workstation spindles, not the ATM
		// link, are the bottleneck; the paper's bound assumes enough
		// disks that the network limits.
		bound := "-"
		if disks >= 16 {
			bound = "< 4 s"
		}
		tbl.AddRow("parallel FS over ATM", fmt.Sprintf("%d", disks),
			stats.FormatFloat(d.Seconds()), bound)
	}
	// Buddy-RAM path: stream from a peer's memory at ATM link speed.
	e := sim.NewEngine(1)
	fab, err := netsim.New(e, netsim.ATM155(2))
	if err != nil {
		return Report{}, nil, err
	}
	a := am.NewEndpoint(e, node.New(e, node.DefaultConfig(0)), fab, am.DefaultConfig())
	am.NewEndpoint(e, node.New(e, node.DefaultConfig(1)), fab, am.DefaultConfig())
	var ramElapsed sim.Duration
	e.Spawn("ramrestore", func(p *sim.Proc) {
		start := p.Now()
		for sent := 0; sent < image; sent += chunk {
			a.SendAsync(p, 1, hBench, nil, chunk)
		}
		a.Flush(p)
		ramElapsed = p.Now() - start
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		e.Close()
		return Report{}, nil, err
	}
	e.Close()
	rows = append(rows, RestoreRow{Method: "buddy RAM over ATM", Disks: 0, Elapsed: ramElapsed})
	tbl.AddRow("buddy RAM over ATM", "-", stats.FormatFloat(ramElapsed.Seconds()), "< 4 s")
	return Report{
		ID:    "E7",
		Title: "Memory save/restore meets the paper's 4-second bound",
		Table: tbl,
		Notes: "paper: 'with ATM bandwidth and a parallel file system, 64 Mbytes of DRAM can be restored in under 4 seconds'",
	}, rows, nil
}
