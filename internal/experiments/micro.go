package experiments

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/proto/kstack"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/trace"
)

const hBench am.HandlerID = 0x20

// twoNodeRig builds two nodes with endpoints on a fabric for
// microbenchmarks.
func twoNodeRig(fcfg netsim.Config, acfg am.Config) (*sim.Engine, *am.Endpoint, *am.Endpoint, error) {
	e := sim.NewEngine(1)
	fab, err := netsim.New(e, fcfg)
	if err != nil {
		return nil, nil, nil, err
	}
	a := am.NewEndpoint(e, node.New(e, node.DefaultConfig(0)), fab, acfg)
	b := am.NewEndpoint(e, node.New(e, node.DefaultConfig(1)), fab, acfg)
	return e, a, b, nil
}

// oneWayTime measures post-to-handler latency for one payload size.
func oneWayTime(fcfg netsim.Config, acfg am.Config, bytes int) (sim.Duration, error) {
	e, a, b, err := twoNodeRig(fcfg, acfg)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	var got sim.Duration
	b.Register(hBench, func(p *sim.Proc, m am.Msg) (any, int) {
		got = p.Now() - m.Arg.(sim.Time)
		return nil, 0
	})
	e.Spawn("tx", func(p *sim.Proc) {
		_ = a.Send(p, 1, hBench, p.Now(), bytes)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		return 0, err
	}
	return got, nil
}

// roundTripTime measures a full Call for one payload size (small reply).
func roundTripTime(fcfg netsim.Config, acfg am.Config, bytes int) (sim.Duration, error) {
	e, a, b, err := twoNodeRig(fcfg, acfg)
	if err != nil {
		return 0, err
	}
	defer e.Close()
	b.Register(hBench, func(p *sim.Proc, m am.Msg) (any, int) { return nil, 8 })
	var rtt sim.Duration
	e.Spawn("tx", func(p *sim.Proc) {
		start := p.Now()
		_, _ = a.Call(p, 1, hBench, nil, bytes)
		rtt = p.Now() - start
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		return 0, err
	}
	return rtt, nil
}

// transferMBps measures single-transfer bandwidth for n bytes.
func transferMBps(fcfg netsim.Config, acfg am.Config, n int) (float64, error) {
	d, err := oneWayTime(fcfg, acfg, n)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("experiments: zero transfer time")
	}
	return float64(n) / d.Seconds() / 1e6, nil
}

// halfPower finds the message size reaching half of peak bandwidth.
func halfPower(fcfg netsim.Config, acfg am.Config) (int, error) {
	peak, err := transferMBps(fcfg, acfg, 1<<20)
	if err != nil {
		return 0, err
	}
	lo, hi := 1, 1<<20
	for lo < hi {
		mid := (lo + hi) / 2
		bw, err := transferMBps(fcfg, acfg, mid)
		if err != nil {
			return 0, err
		}
		if bw < peak/2 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Table2Row is one cell pair of Table 2.
type Table2Row struct {
	Config   string
	Measured sim.Duration
	Paper    sim.Duration
}

// Table2 reproduces "time to service a file system cache miss from
// remote memory or disk" on Ethernet and 155 Mb/s ATM, by simulating an
// 8 KB fetch through a standard-driver protocol stack.
func Table2() (Report, []Table2Row, error) {
	// The study assumed standard network drivers: 400 µs of net
	// overhead per miss plus a 250 µs memory copy. The 400 µs covers the
	// whole request/response (four kernel crossings of ≈100 µs each).
	proto := am.Config{
		SendOverhead: 100 * sim.Microsecond,
		RecvOverhead: 100 * sim.Microsecond,
		HeaderBytes:  64,
		BufferSlots:  64,
		Window:       8,
	}
	const block = 8192
	copyCost := 250 * sim.Microsecond

	measure := func(fcfg netsim.Config, fromDisk bool) (sim.Duration, error) {
		e, a, b, err := twoNodeRig(fcfg, proto)
		if err != nil {
			return 0, err
		}
		defer e.Close()
		b.Register(hBench, func(p *sim.Proc, m am.Msg) (any, int) {
			if fromDisk {
				b.Node().Disk.Read(p, 0, block)
			}
			b.Node().CPU.ComputeSystem(p, copyCost) // copy out of cache
			return nil, block
		})
		var total sim.Duration
		e.Spawn("client", func(p *sim.Proc) {
			start := p.Now()
			_, _ = a.Call(p, 1, hBench, nil, 64)
			total = p.Now() - start
			e.Stop()
		})
		if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
			return 0, err
		}
		return total, nil
	}

	cases := []struct {
		name  string
		fab   netsim.Config
		disk  bool
		paper sim.Duration
	}{
		{"Ethernet, remote memory", netsim.Ethernet10(2), false, 6900 * sim.Microsecond},
		{"Ethernet, remote disk", netsim.Ethernet10(2), true, 21700 * sim.Microsecond},
		{"155Mb/s ATM, remote memory", netsim.ATM155(2), false, 1050 * sim.Microsecond},
		{"155Mb/s ATM, remote disk", netsim.ATM155(2), true, 15850 * sim.Microsecond},
	}
	rows := make([]Table2Row, 0, len(cases))
	tbl := stats.NewTable("Table 2 — 8 KB cache-miss service time",
		"Configuration", "Paper (µs)", "Measured (µs)", "Ratio")
	for _, c := range cases {
		got, err := measure(c.fab, c.disk)
		if err != nil {
			return Report{}, nil, fmt.Errorf("table2 %s: %w", c.name, err)
		}
		rows = append(rows, Table2Row{Config: c.name, Measured: got, Paper: c.paper})
		tbl.AddRowf(c.name, c.paper.Microseconds(), got.Microseconds(),
			ratio(got.Microseconds(), c.paper.Microseconds()))
	}
	return Report{
		ID:    "T2",
		Title: "Remote memory vs remote disk miss service (Ethernet vs ATM)",
		Table: tbl,
		Notes: "standard-driver stack (400µs net overhead), 250µs memory copy, Table 2's stated components",
	}, rows, nil
}

// AMRow is one microbenchmark line of the low-overhead-communication
// study (E6). RoundTrip matters because, as the paper observes for NFS,
// metadata queries "must complete before file data can be transferred,
// so performance is directly coupled to the round-trip message time".
type AMRow struct {
	Name      string
	OneWay    sim.Duration
	RoundTrip sim.Duration
	PaperOne  sim.Duration
	HalfPower int
	PaperN12  int
}

// AMMicro reproduces the HP Medusa measurements: AM one-way time,
// sockets-over-AM vs TCP, and the half-power message sizes.
func AMMicro() (Report, []AMRow, error) {
	fddi := netsim.FDDI100(2)
	cases := []struct {
		name     string
		cfg      am.Config
		paperOne sim.Duration
		paperN12 int
	}{
		{"Active Messages (HPAM)", am.HPAMConfig(), 16 * sim.Microsecond, 175},
		{"sockets over AM", kstack.SocketsOverAM(am.HPAMConfig()), 25 * sim.Microsecond, 0},
		{"single-copy TCP", kstack.SingleCopyTCPFDDI(), 0, 760},
		{"TCP", kstack.TCPFDDI(), 240 * sim.Microsecond, 1350},
	}
	rows := make([]AMRow, 0, len(cases))
	tbl := stats.NewTable("E6 — communication layers on HP-735/FDDI hardware",
		"Layer", "One-way (µs)", "Paper (µs)", "RTT (µs)", "N1/2 (bytes)", "Paper N1/2")
	for _, c := range cases {
		one, err := oneWayTime(fddi, c.cfg, 32)
		if err != nil {
			return Report{}, nil, err
		}
		rtt, err := roundTripTime(fddi, c.cfg, 32)
		if err != nil {
			return Report{}, nil, err
		}
		n12, err := halfPower(fddi, c.cfg)
		if err != nil {
			return Report{}, nil, err
		}
		rows = append(rows, AMRow{Name: c.name, OneWay: one, RoundTrip: rtt,
			PaperOne: c.paperOne, HalfPower: n12, PaperN12: c.paperN12})
		paperOne := "-"
		if c.paperOne > 0 {
			paperOne = stats.FormatFloat(c.paperOne.Microseconds())
		}
		paperN := "-"
		if c.paperN12 > 0 {
			paperN = fmt.Sprintf("%d", c.paperN12)
		}
		tbl.AddRow(c.name, stats.FormatFloat(one.Microseconds()), paperOne,
			stats.FormatFloat(rtt.Microseconds()),
			fmt.Sprintf("%d", n12), paperN)
	}
	// The NOW 10µs target on the demonstration fabric.
	one, err := oneWayTime(netsim.Myrinet(2), am.DefaultConfig(), 16)
	if err != nil {
		return Report{}, nil, err
	}
	tbl.AddRow("NOW target (Myrinet-class)", stats.FormatFloat(one.Microseconds()), "10", "-", "-", "-")
	return Report{
		ID:    "E6",
		Title: "Active Messages microbenchmarks and half-power points",
		Table: tbl,
		Notes: "paper one-way figures: 8µs/side AM overhead + 8µs latency; sockets ≈25µs; TCP ≈10× worse",
	}, rows, nil
}

// NFSResult is the E5 study outcome.
type NFSResult struct {
	SmallFraction   float64 // messages under 200 bytes
	EthernetTotal   sim.Duration
	ATMTotal        sim.Duration
	Improvement     float64 // 1 - ATM/Ethernet
	BandwidthFactor float64
}

// NFSStudy reproduces the one-week NFS trace analysis: 95% of messages
// are small metadata, so an 8× bandwidth upgrade (Ethernet→ATM with TCP)
// improves total transfer time only ≈20%.
func NFSStudy() (Report, NFSResult, error) {
	ops := trace.GenerateNFS(trace.DefaultNFSTraceConfig())
	var sizes stats.Sample
	for _, op := range ops {
		sizes.Add(float64(op.RequestBytes))
		sizes.Add(float64(op.ReplyBytes))
	}

	// Per-message time under a stack: overhead + copies + wire + latency.
	perMsg := func(fcfg netsim.Config, scfg am.Config, payload int) sim.Duration {
		wire := sim.PerByte(int64(payload+scfg.HeaderBytes), sim.Bandwidth(fcfg.BandwidthMbps)) +
			fcfg.PerPacketWire
		return scfg.SendOverhead + scfg.RecvOverhead +
			sim.Duration(payload)*(scfg.SendPerByte+scfg.RecvPerByte) +
			wire + fcfg.Latency
	}
	total := func(fcfg netsim.Config, scfg am.Config) sim.Duration {
		var t sim.Duration
		for _, op := range ops {
			t += perMsg(fcfg, scfg, op.RequestBytes) + perMsg(fcfg, scfg, op.ReplyBytes)
		}
		return t
	}
	eth := total(netsim.Ethernet10(2), kstack.TCPEthernet())
	atm := total(netsim.ATM155(2), kstack.TCPATM())
	res := NFSResult{
		SmallFraction:   sizes.FractionBelow(200),
		EthernetTotal:   eth,
		ATMTotal:        atm,
		Improvement:     1 - float64(atm)/float64(eth),
		BandwidthFactor: 78.0 / 9.0,
	}
	tbl := stats.NewTable("E5 — departmental NFS traffic under a bandwidth upgrade",
		"Metric", "Paper", "Measured")
	tbl.AddRow("messages under 200 B", "95%", fmt.Sprintf("%.1f%%", res.SmallFraction*100))
	tbl.AddRow("bandwidth factor (TCP peak)", "8.7x", fmt.Sprintf("%.1fx", res.BandwidthFactor))
	tbl.AddRow("total-time improvement", "≈20%", fmt.Sprintf("%.1f%%", res.Improvement*100))
	return Report{
		ID:    "E5",
		Title: "NFS message sizes: bandwidth alone buys little",
		Table: tbl,
		Notes: "per-message coefficients from the measured SS-10 TCP stacks (456µs Ethernet, 626µs ATM)",
	}, res, nil
}
