package experiments

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/controlplane"
	"github.com/nowproject/now/internal/faults"
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/trace"
	"github.com/nowproject/now/internal/xfs"
)

// AV2 — availability with the loop closed. AV1 shows the stack riding
// through a scripted fault plan when an operator scripts the repair
// (the plan itself contains the rebuild line). AV2 asks the production
// question instead: the same faults with NO scripted repair, measured
// twice — once with the control plane's self-healing remediation off
// (the cluster stays degraded) and once with it on (health checks
// drive cordon → manager handoff → spare rebuild → uncordoned rejoin
// automatically). The gap between the two availability numbers is what
// the remediation loop buys. Pure virtual time, so both runs are
// byte-deterministic and golden-gated.

// RemediationStudyConfig shapes the AV2 study.
type RemediationStudyConfig struct {
	// Workstations in the GLUnix cluster.
	Workstations int
	// XFSNodes and XFSSpares shape the storage side.
	XFSNodes  int
	XFSSpares int
	// Horizon is the faulted portion of the run.
	Horizon sim.Duration
	// ReadStreams is the parallel client count keeping storage busy.
	ReadStreams int
	// Seed drives everything.
	Seed int64
}

// DefaultRemediationStudyConfig mirrors the AV1 scale.
func DefaultRemediationStudyConfig() RemediationStudyConfig {
	return RemediationStudyConfig{
		Workstations: 16,
		XFSNodes:     10,
		XFSSpares:    2,
		Horizon:      sim.Hour,
		ReadStreams:  4,
		Seed:         1,
	}
}

// RemediationRow is one AV2 measurement.
type RemediationRow struct {
	Scenario         string
	AvailabilityPct  float64 // minute buckets at ≥90% of healthy bandwidth
	DegradedMinutes  int     // minute buckets below the availability bar
	JobsCompleted    int
	JobsTotal        int
	MeanResponse     sim.Duration
	Rebuilds         int64 // remediate.rebuilds
	RemediateActions int64 // remediate.actions
	FaultsApplied    int
}

// av2Plan is the AV1 schedule with the scripted repair removed: the
// partition, the workstation crash window, the disk failure and the
// manager kill all still land, but nobody scripts the rebuild — either
// the remediator notices, or the stripe stays degraded to the end.
func av2Plan() faults.Plan {
	return faults.Scripted("av2",
		faults.Fault{At: 600 * sim.Second, Kind: faults.Partition, Set: []int{3, 4}, For: 120 * sim.Second},
		faults.Fault{At: 1200 * sim.Second, Kind: faults.Crash, Node: 5, For: 300 * sim.Second},
		faults.Fault{At: 1500 * sim.Second, Kind: faults.DiskFail, Node: 2},
		faults.Fault{At: 2700 * sim.Second, Kind: faults.MgrKill, Node: 0},
	)
}

// RemediationStudy runs AV2: the unrepaired fault plan with the
// self-healing loop off, then on, and reports the availability each
// side achieves. Availability is the fraction of whole minutes in
// which the xFS read stream delivered at least 90% of its healthy-phase
// bandwidth — a throughput-SLO framing of "the cluster is usable".
func RemediationStudy(cfg RemediationStudyConfig) (Report, []RemediationRow, error) {
	rows := make([]RemediationRow, 0, 2)
	reg := map[string]*obs.Registry{}
	for _, sc := range []struct {
		name      string
		remediate bool
	}{
		{"remediate off", false},
		{"remediate on", true},
	} {
		row, regs, err := remediationRun(cfg, sc.name, sc.remediate)
		if err != nil {
			return Report{}, nil, fmt.Errorf("remediation study %s: %w", sc.name, err)
		}
		rows = append(rows, row)
		for k, r := range regs {
			reg[sc.name+"/"+k] = r
		}
	}

	tbl := stats.NewTable("AV2 — availability with self-healing remediation off vs on",
		"Scenario", "Availability", "Degraded min", "Jobs done",
		"Mean response", "Rebuilds", "Actions", "Faults")
	for _, r := range rows {
		tbl.AddRow(r.Scenario,
			fmt.Sprintf("%.1f%%", r.AvailabilityPct),
			fmt.Sprintf("%d", r.DegradedMinutes),
			fmt.Sprintf("%d/%d", r.JobsCompleted, r.JobsTotal),
			r.MeanResponse.String(),
			fmt.Sprintf("%d", r.Rebuilds),
			fmt.Sprintf("%d", r.RemediateActions),
			fmt.Sprintf("%d", r.FaultsApplied))
	}
	return Report{
		ID:    "AV2",
		Title: "Self-healing remediation closes the availability gap",
		Table: tbl,
		Notes: "AV1's fault plan minus the scripted rebuild; availability = minutes at ≥90% of healthy xFS bandwidth",
		Obs:   reg,
	}, rows, nil
}

// remediationRun executes one AV2 arm: the AV1 workload shape, a
// control plane over the live stack, and a remediator that is armed or
// not. The injector and the spare pool are shared between the plan and
// the control plane through one XFSTarget.
func remediationRun(cfg RemediationStudyConfig, name string, remediate bool) (RemediationRow, map[string]*obs.Registry, error) {
	row := RemediationRow{Scenario: name}

	e := sim.NewEngine(cfg.Seed)
	defer e.Close()
	regCluster := obs.NewRegistry()
	e.Observe(regCluster)
	regXFS := obs.NewRegistry()
	regXFS.SetClock(func() obs.Time { return int64(e.Now()) })

	xcfg := xfs.DefaultConfig(cfg.XFSNodes)
	xcfg.SpareNodes = cfg.XFSSpares
	xcfg.Managers = 2
	xcfg.ClientCacheBlocks = 16
	sys, err := xfs.New(e, xcfg)
	if err != nil {
		return row, nil, err
	}
	sys.Instrument(regXFS)

	// The same throughput-bound read load as AV1, bucketed by minute.
	const fileBlocks = 128
	readStreams := cfg.ReadStreams
	if readStreams <= 0 {
		readStreams = 4
	}
	const bucket = 60 * sim.Second
	buckets := make([]int64, int(cfg.Horizon/bucket)+1)
	for r := 0; r < readStreams; r++ {
		client := sys.Client(3 + r)
		file := xfs.FileID(1 + r)
		e.Spawn(fmt.Sprintf("av2/xfsload%d", r), func(p *sim.Proc) {
			buf := make([]byte, xcfg.BlockBytes)
			for blk := uint32(0); blk < fileBlocks; blk++ {
				if err := client.Write(p, file, blk, buf); err != nil {
					p.Fail(err)
				}
			}
			if err := client.Sync(p); err != nil {
				p.Fail(err)
			}
			for blk := uint32(0); ; blk = (blk + 1) % fileBlocks {
				if p.Now() >= sim.Time(cfg.Horizon) {
					return
				}
				data, err := client.Read(p, file, blk)
				if err != nil {
					continue
				}
				if b := int(p.Now() / bucket); b < len(buckets) {
					buckets[b] += int64(len(data))
				}
			}
		})
	}

	gcfg := glunix.DefaultConfig(cfg.Workstations)
	gcfg.Seed = cfg.Seed
	gcfg.Obs = regCluster
	acfg := trace.DefaultActivityConfig(cfg.Workstations, 1)
	acfg.Seed = cfg.Seed
	activity := trace.GenerateActivity(acfg)
	jcfg := trace.DefaultJobTraceConfig(cfg.Horizon)
	jcfg.Seed = cfg.Seed
	jcfg.MachineNodes = cfg.Workstations / 2
	jcfg.MeanInterarrival = 10 * sim.Minute
	jcfg.MeanDevWork = 3 * sim.Minute
	jcfg.MeanProdWork = 10 * sim.Minute
	jobs := trace.GenerateJobs(jcfg)
	for i := range jobs {
		if jobs[i].CommGrain < 5*sim.Second {
			jobs[i].CommGrain = 5 * sim.Second
		}
	}

	plan := av2Plan()
	var inj *faults.Injector
	wire := func(c *glunix.Cluster) {
		// One XFSTarget shared by the plan injector and the control
		// plane: live rebuilds and plan rebuilds draw the same spares.
		tgt := faults.NewXFSTarget(sys)
		inj = faults.NewInjector(e,
			faults.Combine(faults.ClusterTarget{C: c}, tgt), plan, regCluster)
		inj.Schedule()
		cp, cperr := controlplane.New(controlplane.Config{
			Engine:    e,
			Cluster:   c,
			XFS:       sys,
			XFSTarget: tgt,
			Injector:  inj,
			Registry:  regCluster,
		})
		if cperr != nil {
			e.Fail(cperr)
			return
		}
		rem := controlplane.NewRemediator(cp, controlplane.DefaultRemediationPolicy())
		rem.Start()
		rem.SetEnabled(remediate)
	}
	res, err := glunix.RunMixedWith(e, gcfg, activity, jobs, cfg.Horizon+2*sim.Hour, wire)
	if err != nil && !errors.Is(err, sim.ErrStopped) {
		return row, nil, err
	}

	row.JobsCompleted = res.JobsCompleted
	row.JobsTotal = res.JobsTotal
	row.MeanResponse = res.MeanResponse
	row.FaultsApplied = inj.Applied()
	for _, m := range regCluster.Snapshot() {
		switch m.Name {
		case "remediate.rebuilds":
			row.Rebuilds = m.Value
		case "remediate.actions":
			row.RemediateActions = m.Value
		}
	}

	// Availability: whole minutes at ≥90% of the healthy-phase mean.
	// Healthy = minutes 1..24 (warm, before the 1500s disk failure);
	// the measured span is every complete minute after warmup.
	healthyEnd := int(1500 * sim.Second / bucket)
	var healthySum int64
	for i := 1; i < healthyEnd; i++ {
		healthySum += buckets[i]
	}
	healthyMean := float64(healthySum) / float64(healthyEnd-1)
	bar := 0.9 * healthyMean
	okMin, total := 0, 0
	for i := 1; i < len(buckets)-1; i++ {
		total++
		if float64(buckets[i]) >= bar {
			okMin++
		} else {
			row.DegradedMinutes++
		}
	}
	if total > 0 {
		row.AvailabilityPct = 100 * float64(okMin) / float64(total)
	}

	return row, map[string]*obs.Registry{"cluster": regCluster, "xfs": regXFS}, nil
}
