package experiments

import (
	"strings"
	"testing"
)

// quickRemediationConfig mirrors nowbench -quick: small enough for CI,
// large enough that one failed store is a visible capacity fraction.
func quickRemediationConfig() RemediationStudyConfig {
	cfg := DefaultRemediationStudyConfig()
	cfg.Workstations = 8
	cfg.ReadStreams = 2
	return cfg
}

// TestRemediationStudyImproves is the AV2 acceptance assertion: under
// the same unrepaired fault plan, arming the self-healing loop must
// yield measurably higher availability — and it must get there by
// actually remediating (rebuilds happened), not by luck.
func TestRemediationStudyImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("AV2 study runs minutes of virtual workload")
	}
	rep, rows, err := RemediationStudy(quickRemediationConfig())
	if err != nil {
		t.Fatalf("RemediationStudy: %v", err)
	}
	if rep.ID != "AV2" || len(rows) != 2 {
		t.Fatalf("report %q with %d rows, want AV2 with 2", rep.ID, len(rows))
	}
	off, on := rows[0], rows[1]
	if !strings.Contains(off.Scenario, "off") || !strings.Contains(on.Scenario, "on") {
		t.Fatalf("row order %q, %q — want off then on", off.Scenario, on.Scenario)
	}
	if on.AvailabilityPct <= off.AvailabilityPct {
		t.Fatalf("remediation did not help: off %.1f%% vs on %.1f%%",
			off.AvailabilityPct, on.AvailabilityPct)
	}
	if on.AvailabilityPct-off.AvailabilityPct < 5 {
		t.Fatalf("improvement not measurable: off %.1f%% vs on %.1f%%",
			off.AvailabilityPct, on.AvailabilityPct)
	}
	if on.Rebuilds == 0 {
		t.Fatal("remediation-on arm recorded no rebuilds — improvement is not the loop's doing")
	}
	if off.Rebuilds != 0 || off.RemediateActions != 0 {
		t.Fatalf("remediation-off arm acted: %d rebuilds, %d actions",
			off.Rebuilds, off.RemediateActions)
	}
	// Same plan must land in both arms.
	if off.FaultsApplied != on.FaultsApplied {
		t.Fatalf("fault counts diverge: off %d, on %d", off.FaultsApplied, on.FaultsApplied)
	}
}
