// Package experiments regenerates every table and figure in the paper's
// evaluation, plus the quantitative claims made in prose ("E" rows). One
// function per artifact returns typed rows and a rendered paper-vs-
// measured table; cmd/nowbench prints them all, and the repository's
// benchmark suite wraps each in a testing.B target.
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
// recorded outcomes.
package experiments

import (
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/stats"
)

// Report is one regenerated artifact.
type Report struct {
	// ID is the experiment id from DESIGN.md (T1, F2, E5, ...).
	ID string
	// Title names the paper artifact.
	Title string
	// Table is the rendered rows (paper value next to measured value
	// where the paper states one).
	Table *stats.Table
	// Notes records calibration or substitution remarks.
	Notes string
	// Obs holds the observability registries of the instrumented runs
	// behind this report, keyed by sub-run name (e.g. a policy or a
	// problem size). Experiments that instrument their runs pull the
	// table's measured values from these registries; cmd/nowbench
	// -metrics exports them. Nil for uninstrumented experiments.
	Obs map[string]*obs.Registry
	// Shards is the largest worker count a sharded experiment ran with
	// (0 for single-threaded experiments); nowbench -json emits it
	// alongside the rows.
	Shards int
}

// String renders the report.
func (r Report) String() string {
	s := "== " + r.ID + ": " + r.Title + " ==\n" + r.Table.String()
	if r.Notes != "" {
		s += "note: " + r.Notes + "\n"
	}
	return s
}

// ratio formats a measured/paper comparison safely.
func ratio(measured, paper float64) float64 {
	if paper == 0 {
		return 0
	}
	return measured / paper
}
