package experiments

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/proto/collective"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
)

// ScaleConfig parameterises the SC1 collective scale study.
type ScaleConfig struct {
	// Sizes are the cluster sizes to sweep.
	Sizes []int
	// Arity is the collective tree fan-out.
	Arity int
	// Barriers is how many back-to-back barriers each size runs; the
	// reported latency is the makespan divided by this count.
	Barriers int
	// BlockBytes is the all-to-all per-pair block size.
	BlockBytes int
	// A2AMaxNodes caps the all-to-all sweep: the exchange is quadratic
	// in messages (1,024 nodes would be ~1M), and the scaling shape is
	// established well before that.
	A2AMaxNodes int
}

// DefaultScaleConfig sweeps 32→1,024 nodes, the paper's ~100-node
// building block pushed an order of magnitude past it.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{
		Sizes:       []int{32, 64, 128, 256, 512, 1024},
		Arity:       4,
		Barriers:    4,
		BlockBytes:  1024,
		A2AMaxNodes: 128,
	}
}

// ScaleRow is one cluster size of the SC1 study.
type ScaleRow struct {
	Nodes          int
	BarrierUs      float64 // measured barrier latency
	BarrierPredUs  float64 // LogP-style prediction
	AllToAllUs     float64 // measured exchange latency (0 above the cap)
	AllToAllPredUs float64
	MaxLinkUtil    float64 // peak per-link tx utilization over the run
	MeanLinkUtil   float64
	Overflows      int64 // AM receive-buffer overflows (must stay 0)
}

// ScaleCollectives is experiment SC1: barrier and all-to-all latency
// as the cluster grows from 32 to 1,024 nodes on a Myrinet-class
// switched fabric, next to closed-form LogP-style predictions. The
// paper argues a NOW scales past an MPP's building block; the
// interesting output is the *shape* — barrier tracking tree depth
// (log_k n) and all-to-all tracking n — and per-link utilization
// staying bounded, which is what a switched fabric buys over a shared
// medium.
func ScaleCollectives(cfg ScaleConfig) (Report, []ScaleRow, error) {
	if cfg.Arity <= 0 {
		cfg.Arity = 4
	}
	if cfg.Barriers <= 0 {
		cfg.Barriers = 4
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 1024
	}
	acfg := am.DefaultConfig()
	rows := make([]ScaleRow, 0, len(cfg.Sizes))
	regs := make(map[string]*obs.Registry, len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		row, reg, err := scaleOne(n, cfg, acfg)
		if err != nil {
			return Report{}, nil, fmt.Errorf("sc1 n=%d: %w", n, err)
		}
		rows = append(rows, row)
		regs[fmt.Sprintf("n%04d", n)] = reg
	}
	table := stats.NewTable("SC1: collectives at scale (Myrinet-class fabric)",
		"nodes", "barrier µs", "LogP µs", "ratio", "all-to-all µs", "LogP µs", "max link util %", "overflows")
	for _, r := range rows {
		a2a, a2aPred := "-", "-"
		if r.AllToAllUs > 0 {
			a2a = fmt.Sprintf("%.1f", r.AllToAllUs)
			a2aPred = fmt.Sprintf("%.1f", r.AllToAllPredUs)
		}
		table.AddRow(
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%.1f", r.BarrierUs),
			fmt.Sprintf("%.1f", r.BarrierPredUs),
			fmt.Sprintf("%.2f", ratio(r.BarrierUs, r.BarrierPredUs)),
			a2a, a2aPred,
			fmt.Sprintf("%.2f", r.MaxLinkUtil*100),
			fmt.Sprintf("%d", r.Overflows),
		)
	}
	return Report{
		ID:    "SC1",
		Title: "Collective operations 32→1,024 nodes vs LogP-style prediction",
		Table: table,
		Notes: fmt.Sprintf("%d-ary trees, %d-byte all-to-all blocks (capped at %d nodes), barrier latency averaged over %d back-to-back barriers",
			cfg.Arity, cfg.BlockBytes, cfg.A2AMaxNodes, cfg.Barriers),
		Obs: regs,
	}, rows, nil
}

// scaleOne runs one cluster size and returns its row and registry.
func scaleOne(n int, cfg ScaleConfig, acfg am.Config) (ScaleRow, *obs.Registry, error) {
	e := sim.NewEngine(1)
	defer e.Close()
	reg := obs.NewRegistry()
	e.Observe(reg)
	fcfg := netsim.Myrinet(n)
	fab, err := netsim.New(e, fcfg)
	if err != nil {
		return ScaleRow{}, nil, err
	}
	fab.Instrument(reg)
	eps := make([]*am.Endpoint, n)
	for i := 0; i < n; i++ {
		eps[i] = am.NewEndpoint(e, node.New(e, node.DefaultConfig(netsim.NodeID(i))), fab, acfg)
	}
	comm, err := collective.New(e, eps, collective.Config{Arity: cfg.Arity})
	if err != nil {
		return ScaleRow{}, nil, err
	}
	comm.Instrument(reg)

	doA2A := n <= cfg.A2AMaxNodes
	var procErr error
	var barrierEnd, a2aStart, a2aEnd sim.Time
	a2aStart = sim.MaxTime
	wg := sim.NewWaitGroup(e, "sc1")
	wg.Add(n)
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			defer wg.Done()
			for i := 0; i < cfg.Barriers; i++ {
				if err := comm.Barrier(p, r); err != nil {
					procErr = err
					return
				}
			}
			if p.Now() > barrierEnd {
				barrierEnd = p.Now()
			}
			if !doA2A {
				return
			}
			if p.Now() < a2aStart {
				a2aStart = p.Now()
			}
			if err := comm.AllToAll(p, r, cfg.BlockBytes); err != nil {
				procErr = err
				return
			}
			if p.Now() > a2aEnd {
				a2aEnd = p.Now()
			}
		})
	}
	row := ScaleRow{Nodes: n}
	// The monitor snapshots utilization at the moment the workload
	// finishes and stops the run there: letting the engine drain the
	// cancelled protocol timers would advance the clock past the work
	// and dilute every time-averaged figure.
	e.Spawn("monitor", func(p *sim.Proc) {
		wg.Wait(p)
		var sum, max float64
		for i := 0; i < n; i++ {
			u := fab.TxLinkUtilization(netsim.NodeID(i))
			sum += u
			if u > max {
				max = u
			}
		}
		row.MaxLinkUtil = max
		row.MeanLinkUtil = sum / float64(n)
		for _, ep := range eps {
			row.Overflows += ep.Stats().Overflows
		}
		e.Stop()
	})
	if err := e.Run(); err != nil && !errors.Is(err, sim.ErrStopped) {
		return ScaleRow{}, nil, err
	}
	if procErr != nil {
		return ScaleRow{}, nil, procErr
	}
	row.BarrierUs = float64(barrierEnd) / float64(cfg.Barriers) / 1e3
	row.BarrierPredUs = float64(collective.PredictBarrier(acfg, fcfg, n, cfg.Arity)) / 1e3
	if doA2A {
		row.AllToAllUs = float64(a2aEnd-a2aStart) / 1e3
		row.AllToAllPredUs = float64(collective.PredictAllToAll(acfg, fcfg, n, cfg.BlockBytes)) / 1e3
	}
	return row, reg, nil
}
