package experiments

import (
	"fmt"

	"github.com/nowproject/now/internal/apps"
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/trace"
)

// Figure3Row is one cluster size's outcome.
type Figure3Row struct {
	Workstations  int
	Slowdown      float64
	JobsCompleted int
	Migrations    int64
	Evictions     int64
}

// Figure3Config controls the mixed-workload study's scale.
type Figure3Config struct {
	// Days of trace to simulate.
	Days int
	// Sizes are the NOW sizes to sweep.
	Sizes []int
	// Seed for both traces.
	Seed int64
}

// DefaultFigure3Config covers the paper's sweep.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{
		Days:  2,
		Sizes: []int{32, 48, 64, 96, 128},
		Seed:  1,
	}
}

// Figure3 overlays a 32-node MPP job log on a NOW running interactive
// users, sweeping the number of workstations. Slowdown is each job's
// response time relative to running immediately on dedicated hardware
// (the MPP user's reference point: their partition, right now) — so it
// charges the NOW for every recruitment delay, migration stall and
// eviction, and cannot be rescued by the NOW's extra capacity absorbing
// queueing. The paper's claim: ≈1.1× at 64 workstations.
func Figure3(cfg Figure3Config) (Report, []Figure3Row, error) {
	if cfg.Days <= 0 {
		cfg = DefaultFigure3Config()
	}
	length := sim.Duration(cfg.Days) * 24 * sim.Hour
	horizon := length + 12*sim.Hour // let straggler jobs finish

	jcfg := trace.DefaultJobTraceConfig(length)
	jcfg.Seed = cfg.Seed
	// The LANL machine ran at modest utilisation: the dedicated
	// baseline rarely queues, so the NOW's extra machines cannot win by
	// absorbing queueing — any slowdown is pure recruitment friction,
	// which is what the paper's figure isolates.
	jcfg.MeanInterarrival = 65 * sim.Minute
	// Production runs dominated the LANL machine: full-partition jobs
	// are what make small NOWs struggle.
	jcfg.DevFraction = 0.5
	jobs := trace.GenerateJobs(jcfg)
	// Gang barriers every few seconds of compute: coupling at the
	// granularity that matters for migration stalls, at simulatable
	// event counts.
	for i := range jobs {
		if jobs[i].CommGrain < 5*sim.Second {
			jobs[i].CommGrain = 5 * sim.Second
		}
	}

	gcfg := func(ws int) glunix.Config {
		c := glunix.DefaultConfig(ws)
		c.HeartbeatInterval = 5 * sim.Minute
		c.CheckpointInterval = 30 * sim.Minute
		return c
	}

	// Ideal per-job baseline: immediate start on dedicated nodes.
	ideal := make(map[int]sim.Duration, len(jobs))
	for _, tj := range jobs {
		ideal[tj.ID] = tj.Work
	}

	rows := make([]Figure3Row, 0, len(cfg.Sizes))
	tbl := stats.NewTable("Figure 3 — 32-node MPP workload on a NOW with interactive users",
		"Workstations", "Slowdown vs dedicated", "Paper", "Jobs done", "Migrations", "Evictions")
	for _, ws := range cfg.Sizes {
		acfg := trace.DefaultActivityConfig(ws, cfg.Days)
		acfg.Seed = cfg.Seed
		activity := trace.GenerateActivity(acfg)
		e := sim.NewEngine(cfg.Seed)
		mixed, err := glunix.RunMixed(e, gcfg(ws), activity, jobs, horizon)
		e.Close()
		if err != nil {
			return Report{}, nil, fmt.Errorf("figure3 ws=%d: %w", ws, err)
		}
		var sl stats.Summary
		for id, resp := range mixed.Responses {
			if base := ideal[id]; base > 0 {
				sl.Add(float64(resp) / float64(base))
			}
		}
		row := Figure3Row{
			Workstations:  ws,
			Slowdown:      sl.Mean(),
			JobsCompleted: mixed.JobsCompleted,
			Migrations:    mixed.Master.Migrations,
			Evictions:     mixed.Master.Evictions,
		}
		rows = append(rows, row)
		paper := "-"
		if ws == 64 {
			paper = "≈1.1"
		}
		tbl.AddRow(fmt.Sprintf("%d", ws), fmt.Sprintf("%.2f", row.Slowdown), paper,
			fmt.Sprintf("%d/%d", row.JobsCompleted, mixed.JobsTotal),
			fmt.Sprintf("%d", row.Migrations), fmt.Sprintf("%d", row.Evictions))
	}
	return Report{
		ID:    "F3",
		Title: "A 64-workstation NOW runs the MPP workload ≈10% slower — a CM-5 for free",
		Table: tbl,
		Notes: "synthetic LANL-style job log + diurnal activity traces; migrate-on-return with memory save/restore",
	}, rows, nil
}

// Figure4Row is one (pattern, jobs) slowdown.
type Figure4Row struct {
	Pattern  apps.Pattern
	Jobs     int
	Slowdown float64
}

// Figure4 measures local-scheduling slowdown relative to coscheduling
// for the paper's application set as competing jobs increase.
func Figure4(maxJobs int, seed int64) (Report, []Figure4Row, error) {
	if maxJobs <= 0 {
		maxJobs = 3
	}
	patterns := []apps.Pattern{apps.RandA, apps.RandB, apps.Column, apps.Em3d, apps.Connect}
	var rows []Figure4Row
	tbl := stats.NewTable("Figure 4 — slowdown of local scheduling vs coscheduling",
		"Application", "1 job", "2 jobs", "3 jobs", "Paper's ordering")
	for _, pt := range patterns {
		cells := []string{pt.String()}
		for jobs := 1; jobs <= maxJobs; jobs++ {
			s, err := apps.Slowdown(pt, jobs, seed)
			if err != nil {
				return Report{}, nil, fmt.Errorf("figure4 %v/%d: %w", pt, jobs, err)
			}
			rows = append(rows, Figure4Row{Pattern: pt, Jobs: jobs, Slowdown: s})
			cells = append(cells, fmt.Sprintf("%.2fx", s))
		}
		expect := map[apps.Pattern]string{
			apps.RandA:   "not significantly slowed",
			apps.RandB:   "not significantly slowed",
			apps.Column:  "slow (buffer overflow)",
			apps.Em3d:    "suffers (synchronisation)",
			apps.Connect: "performs very poorly",
		}[pt]
		cells = append(cells, expect)
		tbl.AddRow(cells...)
	}
	return Report{
		ID:    "F4",
		Title: "Local scheduling destroys tightly coupled parallel programs",
		Table: tbl,
		Notes: "process-granularity model: spin-polling processes, 100ms quanta, bounded receive buffers",
	}, rows, nil
}

// AvailabilityResult is E9's outcome.
type AvailabilityResult struct {
	FullyIdleDaytime float64
	MeanAvailableAt2 float64 // fraction available at 2pm
}

// Availability reproduces the idle-workstation measurement: even during
// daytime hours, more than 60% of machines are available 100% of the
// time.
func Availability(workstations, days int, seed int64) (Report, AvailabilityResult, error) {
	if workstations <= 0 {
		workstations, days = 53, 10
	}
	acfg := trace.DefaultActivityConfig(workstations, days)
	acfg.Seed = seed
	tr := trace.GenerateActivity(acfg)
	totalIdle := 0.0
	totalAt2 := 0.0
	for day := 0; day < days; day++ {
		from, to := trace.Daytime(day)
		totalIdle += tr.FractionFullyIdle(from, to)
		at2 := sim.Time(day)*24*sim.Hour + 14*sim.Hour
		totalAt2 += float64(tr.AvailableAt(at2)) / float64(workstations)
	}
	res := AvailabilityResult{
		FullyIdleDaytime: totalIdle / float64(days),
		MeanAvailableAt2: totalAt2 / float64(days),
	}
	tbl := stats.NewTable(fmt.Sprintf("E9 — workstation availability (%d machines, %d days)", workstations, days),
		"Metric", "Paper", "Measured")
	tbl.AddRow("available 100% of daytime", "> 60%", fmt.Sprintf("%.0f%%", res.FullyIdleDaytime*100))
	tbl.AddRow("available at 2pm (instant)", "-", fmt.Sprintf("%.0f%%", res.MeanAvailableAt2*100))
	return Report{
		ID:    "E9",
		Title: "Idle machines are plentiful even at the busiest times",
		Table: tbl,
		Notes: "1-minute idleness rule, diurnal synthetic traces calibrated to the Berkeley measurement",
	}, res, nil
}
