package experiments

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/xfs"
)

// SeqScanConfig parameterises the ST2 sequential-scan study.
type SeqScanConfig struct {
	// Sizes are the cluster sizes to sweep.
	Sizes []int
	// Blocks is the file length of the scanned file, in blocks.
	Blocks int
	// BlockBytes is the xFS block (and RAID chunk) size.
	BlockBytes int
	// Window is the ReadAt span used by the pipelined scan.
	Window int
	// CacheBlocks bounds the reader's cache well below the file size,
	// so the scan stays cold and measures the data path, not the cache.
	CacheBlocks int
}

// DefaultSeqScanConfig sweeps the paper's building-block sizes.
func DefaultSeqScanConfig() SeqScanConfig {
	return SeqScanConfig{
		Sizes:       []int{8, 32, 128},
		Blocks:      64,
		BlockBytes:  4096,
		Window:      16,
		CacheBlocks: 40,
	}
}

// SeqScanRow is one cluster size of the ST2 study.
type SeqScanRow struct {
	Nodes         int
	SerialMBps    float64 // block-at-a-time Read on the serial protocol
	PipelinedMBps float64 // ReadAt windows + range tokens + read-ahead
	Speedup       float64
	RangeReads    int64 // manager round trips saved to this many
	BatchedTokens int64 // block tokens granted through them
	PrefetchHits  int64
}

// SeqScan is experiment ST2: cold sequential-read bandwidth through
// xFS before and after pipelining the data path. The serial protocol
// pays one manager round trip and one fetch per block, so a scan runs
// at request latency regardless of how much aggregate disk and network
// bandwidth the building has — exactly the gap the paper's "opportunity
// of the network as backplane" argument says a NOW should close. The
// pipelined path batches the round trips into range tokens, overlaps
// peer and stripe fetches, and read-ahead keeps the array busy while
// the application consumes; the speedup column is what that buys at
// each cluster size.
func SeqScan(cfg SeqScanConfig) (Report, []SeqScanRow, error) {
	if cfg.Blocks <= 0 {
		cfg.Blocks = 64
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 4096
	}
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.CacheBlocks <= 0 {
		cfg.CacheBlocks = 32
	}
	rows := make([]SeqScanRow, 0, len(cfg.Sizes))
	regs := make(map[string]*obs.Registry, 2*len(cfg.Sizes))
	for _, n := range cfg.Sizes {
		serial, sReg, _, err := seqScanOne(n, cfg, false)
		if err != nil {
			return Report{}, nil, fmt.Errorf("st2 n=%d serial: %w", n, err)
		}
		pipelined, pReg, st, err := seqScanOne(n, cfg, true)
		if err != nil {
			return Report{}, nil, fmt.Errorf("st2 n=%d pipelined: %w", n, err)
		}
		rows = append(rows, SeqScanRow{
			Nodes:         n,
			SerialMBps:    serial,
			PipelinedMBps: pipelined,
			Speedup:       ratio(pipelined, serial),
			RangeReads:    st.RangeReads,
			BatchedTokens: st.BatchedTokens,
			PrefetchHits:  st.PrefetchHits,
		})
		regs[fmt.Sprintf("n%04d-serial", n)] = sReg
		regs[fmt.Sprintf("n%04d-pipelined", n)] = pReg
	}
	table := stats.NewTable("ST2: xFS sequential scan, serial vs pipelined data path",
		"nodes", "serial MB/s", "pipelined MB/s", "speedup", "range RPCs", "tokens/RPC", "prefetch hits")
	for _, r := range rows {
		perRPC := "-"
		if r.RangeReads > 0 {
			perRPC = fmt.Sprintf("%.1f", float64(r.BatchedTokens)/float64(r.RangeReads))
		}
		table.AddRow(
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%.2f", r.SerialMBps),
			fmt.Sprintf("%.2f", r.PipelinedMBps),
			fmt.Sprintf("%.2f", r.Speedup),
			fmt.Sprintf("%d", r.RangeReads),
			perRPC,
			fmt.Sprintf("%d", r.PrefetchHits),
		)
	}
	return Report{
		ID:    "ST2",
		Title: "xFS cold sequential-read bandwidth, serial vs pipelined",
		Table: table,
		Notes: fmt.Sprintf("%d×%d-byte blocks per scan, %d-block ReadAt windows, %d-block reader cache; pipelined = range tokens + vectored stripe reads + 8-block read-ahead + write-behind",
			cfg.Blocks, cfg.BlockBytes, cfg.Window, cfg.CacheBlocks),
		Obs: regs,
	}, rows, nil
}

// seqScanOne measures one cold scan at one cluster size and returns
// the virtual-time bandwidth, the run's registry, and the xFS stats.
func seqScanOne(n int, cfg SeqScanConfig, pipelined bool) (float64, *obs.Registry, xfs.Stats, error) {
	e := sim.NewEngine(1)
	defer e.Close()
	reg := obs.NewRegistry()
	e.Observe(reg)
	xcfg := xfs.DefaultConfig(n)
	if pipelined {
		xcfg = xfs.PipelinedConfig(n)
	}
	xcfg.BlockBytes = cfg.BlockBytes
	xcfg.ClientCacheBlocks = cfg.CacheBlocks
	sys, err := xfs.New(e, xcfg)
	if err != nil {
		return 0, nil, xfs.Stats{}, err
	}
	sys.Instrument(reg)
	var mbps float64
	var procErr error
	e.Spawn("st2", func(p *sim.Proc) {
		defer e.Stop()
		w := sys.Client(0)
		data := make([]byte, cfg.BlockBytes)
		for i := range data {
			data[i] = byte(i)
		}
		for blk := 0; blk < cfg.Blocks; blk++ {
			if err := w.Write(p, 1, uint32(blk), data); err != nil {
				procErr = err
				return
			}
		}
		if err := w.Sync(p); err != nil {
			procErr = err
			return
		}
		// The reader is far from both the writer and the managers; its
		// cache holds half the file at most, so the scan stays cold.
		r := sys.Client(n / 2)
		t0 := p.Now()
		if pipelined {
			for blk := 0; blk < cfg.Blocks; blk += cfg.Window {
				span := cfg.Window
				if rem := cfg.Blocks - blk; rem < span {
					span = rem
				}
				if _, err := r.ReadAt(p, 1, uint32(blk), span); err != nil {
					procErr = err
					return
				}
			}
		} else {
			for blk := 0; blk < cfg.Blocks; blk++ {
				if _, err := r.Read(p, 1, uint32(blk)); err != nil {
					procErr = err
					return
				}
			}
		}
		elapsed := p.Now() - t0
		mbps = float64(cfg.Blocks*cfg.BlockBytes) / elapsed.Seconds() / 1e6
	})
	if err := e.Run(); err != nil && !errors.Is(err, sim.ErrStopped) {
		return 0, nil, xfs.Stats{}, err
	}
	if procErr != nil {
		return 0, nil, xfs.Stats{}, procErr
	}
	return mbps, reg, sys.Stats(), nil
}
