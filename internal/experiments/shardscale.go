package experiments

import (
	"fmt"
	"time"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/proto/collective"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
)

// ShardedTrafficConfig parameterises one sharded cluster run: a NOW of
// Nodes workstations on a Myrinet-class switched fabric, cut into Parts
// partitions, executed by Workers goroutines. Every rank first joins
// Barriers cluster-wide barriers (the SC1 workload pushed past 1,024
// ranks), then exchanges Rounds rounds of request/reply AM traffic with
// alternating near (mostly intra-partition) and far (mostly
// cross-partition) destinations.
//
// Parts and Seed are part of the workload's identity; Workers is not —
// every output except wall-clock timing is byte-identical at any worker
// count.
type ShardedTrafficConfig struct {
	Nodes    int
	Parts    int
	Workers  int
	Seed     int64
	Rounds   int
	Barriers int
	// BlockBytes is the request payload size.
	BlockBytes int
}

// DefaultShardedTrafficConfig returns the nowsim -shards workload shape.
func DefaultShardedTrafficConfig(nodes, workers int, seed int64) ShardedTrafficConfig {
	parts := 8
	if parts > nodes/2 {
		parts = nodes / 2
	}
	if parts < 1 {
		parts = 1
	}
	return ShardedTrafficConfig{
		Nodes:      nodes,
		Parts:      parts,
		Workers:    workers,
		Seed:       seed,
		Rounds:     4,
		Barriers:   4,
		BlockBytes: 1024,
	}
}

// ShardedTrafficResult is one run's outcome. Every field except Wall and
// EventsPerSec is deterministic (a pure function of the config minus
// Workers).
type ShardedTrafficResult struct {
	Nodes, Parts, Workers int
	MakespanUs            float64 // virtual time when the last rank finished
	BarrierUs             float64 // mean cluster-wide barrier latency
	Events                int64   // events scheduled across all partition engines
	CrossSent             int64   // packets handed across partition boundaries
	Overflows             int64   // AM receive-buffer overflows (must stay 0)
	Drops                 int64   // fabric drops (must stay 0 on a healthy fabric)
	Wall                  time.Duration
	EventsPerSec          float64
}

// ShardedTraffic runs one sharded cluster workload and returns the
// result plus the merged observability registry (per-partition
// registries plus the shard driver's, combined with obs.Merged — also
// byte-stable across worker counts).
func ShardedTraffic(cfg ShardedTrafficConfig) (ShardedTrafficResult, *obs.Registry, error) {
	if cfg.Nodes < 2 {
		return ShardedTrafficResult{}, nil, fmt.Errorf("sharded traffic: %d nodes", cfg.Nodes)
	}
	if cfg.Parts <= 0 {
		cfg.Parts = 1
	}
	if cfg.Rounds < 0 || cfg.Barriers < 0 {
		return ShardedTrafficResult{}, nil, fmt.Errorf("sharded traffic: negative workload")
	}
	if cfg.BlockBytes <= 0 {
		cfg.BlockBytes = 1024
	}
	fcfg := netsim.Myrinet(cfg.Nodes)
	se := sim.NewShardedEngine(sim.ShardedConfig{
		Parts:   cfg.Parts,
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
		Window:  fcfg.Latency,
	})
	defer se.Close()
	pm := netsim.SplitEven(cfg.Nodes, cfg.Parts)
	sf, err := netsim.NewSharded(se, fcfg, pm)
	if err != nil {
		return ShardedTrafficResult{}, nil, err
	}

	// One registry per partition (single-writer, like the engine that
	// feeds it) plus one for the shard driver's own tallies.
	regs := make([]*obs.Registry, cfg.Parts+1)
	for p := 0; p < cfg.Parts; p++ {
		regs[p] = obs.NewRegistry()
		se.Engine(p).Observe(regs[p])
		sf.Part(p).Instrument(regs[p])
	}
	regs[cfg.Parts] = obs.NewRegistry()
	se.Observe(regs[cfg.Parts])

	acfg := am.DefaultConfig()
	eps := make([]*am.Endpoint, cfg.Nodes)
	nodeOf := make([]netsim.NodeID, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		nodeOf[i] = netsim.NodeID(i)
		p := pm.Part(netsim.NodeID(i))
		e := se.Engine(p)
		eps[i] = am.NewEndpoint(e, node.New(e, node.DefaultConfig(netsim.NodeID(i))), sf.Part(p), acfg)
		eps[i].Register(0x10, func(p *sim.Proc, m am.Msg) (any, int) {
			return m.Arg, 16
		})
	}
	// One communicator fragment per partition, sharing the rank→node map.
	comms := make([]*collective.Comm, cfg.Parts)
	if cfg.Barriers > 0 {
		for p := 0; p < cfg.Parts; p++ {
			part := make([]*am.Endpoint, cfg.Nodes)
			for i, ep := range eps {
				if pm.Local(netsim.NodeID(i), p) {
					part[i] = ep
				}
			}
			comms[p], err = collective.NewPart(se.Engine(p), part, nodeOf, collective.DefaultConfig())
			if err != nil {
				return ShardedTrafficResult{}, nil, err
			}
		}
		comms[0].Instrument(regs[pm.Part(0)])
	}

	doneAt := make([]sim.Time, cfg.Nodes)    // written by rank i only
	barrierAt := make([]sim.Time, cfg.Nodes) // written by rank i only
	failures := make([]error, cfg.Nodes)     // written by rank i only
	for i := 0; i < cfg.Nodes; i++ {
		i := i
		p := pm.Part(netsim.NodeID(i))
		e := se.Engine(p)
		comm := comms[p]
		e.Spawn(fmt.Sprintf("rank-%d", i), func(pr *sim.Proc) {
			for b := 0; b < cfg.Barriers; b++ {
				if err := comm.Barrier(pr, i); err != nil {
					failures[i] = fmt.Errorf("rank %d barrier %d: %w", i, b, err)
					return
				}
			}
			barrierAt[i] = pr.Now()
			for r := 0; r < cfg.Rounds; r++ {
				var dst int
				if r%2 == 0 {
					dst = (i + 1) % cfg.Nodes
				} else {
					dst = (i + cfg.Nodes/2 + r) % cfg.Nodes
				}
				if dst == i {
					dst = (i + 1) % cfg.Nodes
				}
				pr.Sleep(sim.Duration(e.Rand().Intn(5)) * sim.Microsecond)
				if _, err := eps[i].Call(pr, netsim.NodeID(dst), 0x10, r, cfg.BlockBytes); err != nil {
					failures[i] = fmt.Errorf("rank %d round %d: %w", i, r, err)
					return
				}
			}
			doneAt[i] = pr.Now()
		})
	}

	start := time.Now()
	if err := se.Run(sim.MaxTime); err != nil {
		return ShardedTrafficResult{}, nil, err
	}
	wall := time.Since(start)
	for _, err := range failures {
		if err != nil {
			return ShardedTrafficResult{}, nil, err
		}
	}

	res := ShardedTrafficResult{
		Nodes: cfg.Nodes, Parts: cfg.Parts, Workers: se.Workers(), Wall: wall,
	}
	var makespan, barrierEnd sim.Time
	for i := 0; i < cfg.Nodes; i++ {
		if doneAt[i] > makespan {
			makespan = doneAt[i]
		}
		if barrierAt[i] > barrierEnd {
			barrierEnd = barrierAt[i]
		}
		res.Overflows += eps[i].Stats().Overflows
	}
	res.MakespanUs = makespan.Microseconds()
	if cfg.Barriers > 0 {
		res.BarrierUs = barrierEnd.Microseconds() / float64(cfg.Barriers)
	}
	st := se.Stats()
	for _, pp := range st.PerPart {
		res.Events += int64(pp.Events)
	}
	fs := sf.Stats()
	res.CrossSent = fs.CrossSent
	res.Drops = fs.Drops
	if wall > 0 {
		res.EventsPerSec = float64(res.Events) / wall.Seconds()
	}
	return res, obs.Merged(regs...), nil
}

// ShardScaleConfig parameterises the SC2 shard-scaling study.
type ShardScaleConfig struct {
	// Sizes are the cluster sizes to sweep.
	Sizes []int
	// Workers are the worker counts to sweep at each size.
	Workers []int
	// Seed feeds every run (the schedule must not depend on Workers).
	Seed int64
	// Rounds and Barriers shape the per-rank workload (see
	// ShardedTrafficConfig).
	Rounds, Barriers int
}

// DefaultShardScaleConfig sweeps 256→4,096 nodes — four times past
// SC1's 1,024-rank ceiling — at 1 to 8 workers.
func DefaultShardScaleConfig() ShardScaleConfig {
	return ShardScaleConfig{
		Sizes:    []int{256, 1024, 4096},
		Workers:  []int{1, 2, 4, 8},
		Seed:     1,
		Rounds:   4,
		Barriers: 4,
	}
}

// QuickShardScaleConfig is the -quick variant.
func QuickShardScaleConfig() ShardScaleConfig {
	return ShardScaleConfig{
		Sizes:    []int{64, 256},
		Workers:  []int{1, 4},
		Seed:     1,
		Rounds:   2,
		Barriers: 2,
	}
}

// ShardScaleRow is one (size, workers) cell of the SC2 study.
type ShardScaleRow struct {
	ShardedTrafficResult
	Speedup float64 // events/sec relative to workers=1 at the same size
}

// ShardScale is experiment SC2: simulation throughput (real events/sec)
// as the sharded engine sweeps cluster size × worker count. The
// deterministic columns (makespan, events, cross-partition packets,
// barrier latency, overflows) must be IDENTICAL down each size's block
// — that is the determinism claim made visible — while events/sec and
// speedup report how much the multicore event loop actually buys, which
// depends on the machine running the study. Barrier latency at the
// largest size is the SC1 workload at 4× its old 1,024-rank ceiling.
func ShardScale(cfg ShardScaleConfig) (Report, []ShardScaleRow, error) {
	if len(cfg.Sizes) == 0 {
		cfg = DefaultShardScaleConfig()
	}
	rows := make([]ShardScaleRow, 0, len(cfg.Sizes)*len(cfg.Workers))
	regs := make(map[string]*obs.Registry)
	maxWorkers := 0
	table := stats.NewTable("SC2: sharded engine throughput (shards × nodes)",
		"nodes", "parts", "workers", "barrier µs", "makespan µs", "events", "cross pkts", "overflows", "events/s", "speedup")
	for _, n := range cfg.Sizes {
		var base float64
		for _, w := range cfg.Workers {
			tc := DefaultShardedTrafficConfig(n, w, cfg.Seed)
			if cfg.Rounds > 0 {
				tc.Rounds = cfg.Rounds
			}
			tc.Barriers = cfg.Barriers
			res, reg, err := ShardedTraffic(tc)
			if err != nil {
				return Report{}, nil, fmt.Errorf("sc2 n=%d w=%d: %w", n, w, err)
			}
			row := ShardScaleRow{ShardedTrafficResult: res}
			if base == 0 {
				base = res.EventsPerSec
			}
			if base > 0 {
				row.Speedup = res.EventsPerSec / base
			}
			rows = append(rows, row)
			if res.Workers > maxWorkers {
				maxWorkers = res.Workers
			}
			regs[fmt.Sprintf("n%05dw%d", n, w)] = reg
			table.AddRow(
				fmt.Sprintf("%d", res.Nodes),
				fmt.Sprintf("%d", res.Parts),
				fmt.Sprintf("%d", res.Workers),
				fmt.Sprintf("%.1f", res.BarrierUs),
				fmt.Sprintf("%.1f", res.MakespanUs),
				fmt.Sprintf("%d", res.Events),
				fmt.Sprintf("%d", res.CrossSent),
				fmt.Sprintf("%d", res.Overflows),
				fmt.Sprintf("%.0f", res.EventsPerSec),
				fmt.Sprintf("%.2f", row.Speedup),
			)
		}
	}
	return Report{
		ID:    "SC2",
		Title: "Sharded event loop: deterministic parallel simulation to 4,096 ranks",
		Table: table,
		Notes: "deterministic columns (barrier, makespan, events, cross pkts, overflows) are identical down each size block by construction; " +
			"events/s and speedup are wall-clock and machine-dependent (bounded by available cores)",
		Obs:    regs,
		Shards: maxWorkers,
	}, rows, nil
}
