package experiments

import (
	"encoding/json"
	"testing"

	"github.com/nowproject/now/internal/obs"
)

// snapshotJSON renders a registry snapshot to bytes for exact
// comparison.
func snapshotJSON(t *testing.T, r *obs.Registry) string {
	t.Helper()
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardedTrafficDeterministicAcrossWorkers is the library-level form
// of the PR's acceptance criterion: the full sharded stack (engine,
// fabric, AM, collectives, merged metrics) must produce identical
// deterministic results and a byte-identical merged registry at 1, 2, 4
// and 8 workers.
func TestShardedTrafficDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (ShardedTrafficResult, string) {
		cfg := DefaultShardedTrafficConfig(64, workers, 7)
		cfg.Rounds, cfg.Barriers = 3, 2
		res, reg, err := ShardedTraffic(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Blank the wall-clock fields; everything else must match.
		res.Wall, res.EventsPerSec, res.Workers = 0, 0, 0
		return res, snapshotJSON(t, reg)
	}
	baseRes, baseSnap := run(1)
	if baseRes.CrossSent == 0 {
		t.Fatal("no cross-partition traffic; study exercises nothing")
	}
	if baseRes.Overflows != 0 || baseRes.Drops != 0 {
		t.Fatalf("lossless run saw overflows=%d drops=%d", baseRes.Overflows, baseRes.Drops)
	}
	for _, w := range []int{2, 4, 8} {
		res, snap := run(w)
		if res != baseRes {
			t.Errorf("workers=%d: results diverge:\n  %+v\n  %+v", w, res, baseRes)
		}
		if snap != baseSnap {
			t.Errorf("workers=%d: merged registry snapshot diverges", w)
		}
	}
}

// TestShardScaleQuick smoke-tests the SC2 sweep end to end.
func TestShardScaleQuick(t *testing.T) {
	rep, rows, err := ShardScale(QuickShardScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "SC2" || len(rows) != 4 {
		t.Fatalf("got %s with %d rows", rep.ID, len(rows))
	}
	// Each size block's deterministic columns must agree across workers.
	byNodes := map[int]ShardScaleRow{}
	for _, r := range rows {
		if r.Overflows != 0 {
			t.Errorf("n=%d w=%d: %d overflows", r.Nodes, r.Workers, r.Overflows)
		}
		prev, ok := byNodes[r.Nodes]
		if !ok {
			byNodes[r.Nodes] = r
			continue
		}
		if r.MakespanUs != prev.MakespanUs || r.Events != prev.Events ||
			r.CrossSent != prev.CrossSent || r.BarrierUs != prev.BarrierUs {
			t.Errorf("n=%d: deterministic columns differ between w=%d and w=%d",
				r.Nodes, prev.Workers, r.Workers)
		}
	}
}
