package experiments

import (
	"fmt"

	"github.com/nowproject/now/internal/costmodel"
	"github.com/nowproject/now/internal/gator"
	"github.com/nowproject/now/internal/sfi"
	"github.com/nowproject/now/internal/stats"
)

// Table1 regenerates the MPP engineering-lag comparison.
func Table1() (Report, []costmodel.MPPLag) {
	rows := costmodel.Table1()
	tbl := stats.NewTable("Table 1 — MPP processor lag vs workstations",
		"MPP", "Node processor", "MPP year", "Equivalent WS year", "Lag (yr)", "Perf cost")
	for _, r := range rows {
		tbl.AddRow(r.MPP, r.Processor,
			fmt.Sprintf("%.1f", r.MPPYear), fmt.Sprintf("%.1f", r.EquivYear),
			fmt.Sprintf("%.1f", r.LagYears), fmt.Sprintf("%.2fx", r.PerfFactor))
	}
	return Report{
		ID:    "T1",
		Title: "MPPs lag 1–2 years behind workstations with the same micro",
		Table: tbl,
		Notes: "at 50%/yr growth, a two-year lag costs more than a factor of two (paper's arithmetic)",
	}, rows
}

// Figure1 regenerates the 128-processor system pricing.
func Figure1() (Report, []costmodel.SystemPrice) {
	prices := costmodel.Figure1()
	best := costmodel.CheapestWorkstation()
	tbl := stats.NewTable("Figure 1 — price of 128 SuperSparc CPUs + 4 GB DRAM + 128 GB disk",
		"System", "Boxes", "Price ($M)", "vs best WS")
	for _, p := range prices {
		tbl.AddRow(p.Name, fmt.Sprintf("%d", p.Boxes),
			fmt.Sprintf("%.2f", p.Total/1e6),
			fmt.Sprintf("%.2fx", p.Total/best.Total))
	}
	return Report{
		ID:    "F1",
		Title: "Servers and MPPs cost ≈2× the most cost-effective workstation",
		Table: tbl,
		Notes: "representative 1994 university list prices; the paper's claim is the 2× shape",
	}, prices
}

// Table4 regenerates the Gator model.
func Table4() (Report, []gator.PhaseTimes) {
	rows := gator.Table4()
	paper := [][4]float64{
		{7, 4, 16, 27},
		{12, 24, 10, 46},
		{4, 23340, 4030, 27374},
		{4, 192, 2015, 2211},
		{4, 192, 10, 205},
		{4, 8, 10, 21},
	}
	tbl := stats.NewTable("Table 4 — Gator atmospheric model (seconds)",
		"Machine", "ODE", "Transport", "Input", "Total", "Paper total", "Cost ($M)")
	for i, r := range rows {
		tbl.AddRow(r.Machine,
			stats.FormatFloat(r.ODE.Seconds()),
			stats.FormatFloat(r.Transport.Seconds()),
			stats.FormatFloat(r.Input.Seconds()),
			stats.FormatFloat(r.Total.Seconds()),
			stats.FormatFloat(paper[i][3]),
			fmt.Sprintf("%.0f", r.CostM))
	}
	return Report{
		ID:    "T4",
		Title: "Gator: each NOW upgrade buys roughly an order of magnitude",
		Table: tbl,
		Notes: "Demmel–Smith analytic model; 36 Gflop, 3.9 GB input, 51 MB output",
	}, rows
}

// SFIRow is one E8 measurement.
type SFIRow struct {
	Kernel    string
	Mode      sfi.Mode
	Overhead  float64
	StoreFrac float64
}

// SFIOverhead measures sandboxing overhead for every kernel and both
// rewriters by executing the rewritten programs.
func SFIOverhead() (Report, []SFIRow, error) {
	seg := sfi.Segment{Base: 4096, Size: 4096}
	const memSize = 3 * 4096
	var rows []SFIRow
	tbl := stats.NewTable("E8 — software fault isolation overhead (dynamic instructions)",
		"Kernel", "Store density", "Optimized", "Naive", "Paper")
	for _, k := range sfi.Kernels() {
		var per [2]float64
		var storeFrac float64
		for i, mode := range []sfi.Mode{sfi.Optimized, sfi.Naive} {
			ov, raw, _, err := sfi.Overhead(k.Gen(4096), memSize, seg, mode, 1e7)
			if err != nil {
				return Report{}, nil, fmt.Errorf("sfi %s: %w", k.Name, err)
			}
			per[i] = ov
			storeFrac = float64(raw.Stores) / float64(raw.Executed)
			rows = append(rows, SFIRow{Kernel: k.Name, Mode: mode, Overhead: ov, StoreFrac: storeFrac})
		}
		paper := "-"
		if k.Name == "stencil" {
			paper = "3-7%"
		}
		tbl.AddRow(k.Name,
			fmt.Sprintf("%.1f%%", storeFrac*100),
			fmt.Sprintf("%.1f%%", per[0]*100),
			fmt.Sprintf("%.1f%%", per[1]*100),
			paper)
	}
	return Report{
		ID:    "E8",
		Title: "SFI: checks before every store and indirect branch",
		Table: tbl,
		Notes: "paper: 3–7% with aggressive optimization on ordinary code; memcopy is the store-dense worst case",
	}, rows, nil
}
