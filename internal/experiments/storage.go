package experiments

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/swraid"
)

// RAIDRow is one E10 measurement.
type RAIDRow struct {
	Disks          int
	Level          swraid.Level
	ReadMBps       float64
	DegradedMBps   float64
	OneDiskMBps    float64
	ScalingPercent float64
}

// SWRAID measures striped read bandwidth against the number of
// workstation disks, and the degraded-mode penalty after a crash —
// the paper's "disk bandwidth limited only by the network link" and
// "any other workstation can take its place" claims.
func SWRAID() (Report, []RAIDRow, error) {
	const chunk = 64 << 10
	const chunks = 64 // 4 MB per measurement

	measure := func(disks int, level swraid.Level, kill bool) (float64, error) {
		e := sim.NewEngine(1)
		defer e.Close()
		fab, err := netsim.New(e, netsim.ATM155(disks+1))
		if err != nil {
			return 0, err
		}
		ids := make([]netsim.NodeID, 0, disks)
		eps := make([]*am.Endpoint, 0, disks+1)
		for i := 0; i <= disks; i++ {
			ep := am.NewEndpoint(e, node.New(e, node.DefaultConfig(netsim.NodeID(i))), fab, am.DefaultConfig())
			eps = append(eps, ep)
			if i > 0 {
				swraid.NewStore(ep)
				ids = append(ids, ep.ID())
			}
		}
		arr, err := swraid.NewArray(eps[0], swraid.Config{Level: level, ChunkBytes: chunk, Stores: ids})
		if err != nil {
			return 0, err
		}
		var mbps float64
		e.Spawn("bench", func(p *sim.Proc) {
			data := make([]byte, chunk)
			for i := int64(0); i < chunks; i++ {
				if err := arr.WriteChunks(p, i, data); err != nil {
					p.Fail(err)
				}
			}
			if kill {
				eps[1].Detach()
				arr.MarkFailed(eps[1].ID())
			}
			start := p.Now()
			if _, err := arr.ReadChunks(p, 0, chunks); err != nil {
				p.Fail(err)
			}
			elapsed := p.Now() - start
			mbps = float64(chunks*chunk) / elapsed.Seconds() / 1e6
			e.Stop()
		})
		if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
			return 0, err
		}
		return mbps, nil
	}

	one, err := measure(1, swraid.RAID0, false)
	if err != nil {
		return Report{}, nil, fmt.Errorf("swraid 1 disk: %w", err)
	}
	var rows []RAIDRow
	tbl := stats.NewTable("E10 — software RAID across workstation disks (ATM fabric)",
		"Disks", "RAID-0 read (MB/s)", "Speedup vs 1 disk", "RAID-5 read (MB/s)", "RAID-5 degraded (MB/s)")
	for _, disks := range []int{2, 4, 8, 16} {
		r0, err := measure(disks, swraid.RAID0, false)
		if err != nil {
			return Report{}, nil, err
		}
		r5, err := measure(disks+1, swraid.RAID5, false) // same data disks
		if err != nil {
			return Report{}, nil, err
		}
		r5deg, err := measure(disks+1, swraid.RAID5, true)
		if err != nil {
			return Report{}, nil, err
		}
		rows = append(rows, RAIDRow{
			Disks: disks, Level: swraid.RAID0,
			ReadMBps: r0, DegradedMBps: r5deg, OneDiskMBps: one,
			ScalingPercent: r0 / (one * float64(disks)) * 100,
		})
		tbl.AddRow(fmt.Sprintf("%d", disks),
			stats.FormatFloat(r0), fmt.Sprintf("%.1fx", r0/one),
			stats.FormatFloat(r5), stats.FormatFloat(r5deg))
	}
	return Report{
		ID:    "E10",
		Title: "Striped workstation disks scale; parity survives a crash",
		Table: tbl,
		Notes: "paper: striping makes disk bandwidth network-limited; no central RAID host to fail",
	}, rows, nil
}
