package experiments

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/proto/collective"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
)

// TopoStudyConfig parameterises the SC3 topology study.
type TopoStudyConfig struct {
	// Sizes are the cluster sizes to sweep.
	Sizes []int
	// Topologies are the fabric topology names (netsim.TopoByName).
	Topologies []string
	// Arity is the software collective tree fan-out.
	Arity int
	// FatTreeArity is k for the fat-tree fabric (hosts per leaf switch).
	FatTreeArity int
	// Oversub is the fat-tree over-subscription ratio.
	Oversub int
	// Iters is how many back-to-back operations each phase runs; the
	// reported latency is the phase makespan divided by this count.
	Iters int
	// BcastBytes is the broadcast payload size.
	BcastBytes int
}

// DefaultTopoStudyConfig sweeps 32→1,024 nodes over all three
// topologies, software tree against in-network combining.
func DefaultTopoStudyConfig() TopoStudyConfig {
	return TopoStudyConfig{
		Sizes:        []int{32, 64, 128, 256, 512, 1024},
		Topologies:   []string{"crossbar", "fattree", "torus"},
		Arity:        4,
		FatTreeArity: 8,
		Oversub:      1,
		Iters:        4,
		BcastBytes:   512,
	}
}

// QuickTopoStudyConfig is the -quick reduction: small sizes, fewer
// iterations, same three topologies so the comparison shape survives.
func QuickTopoStudyConfig() TopoStudyConfig {
	cfg := DefaultTopoStudyConfig()
	cfg.Sizes = []int{32, 64, 128}
	cfg.Iters = 2
	return cfg
}

// TopoRow is one (topology, cluster size) cell of the SC3 study.
type TopoRow struct {
	Nodes int
	Topo  string

	BarrierTreeUs    float64 // software k-ary tree over AM
	BarrierPredUs    float64 // LogP-style software-tree prediction
	BarrierInNetUs   float64 // switch-combined
	BarrierInNetPred float64 // in-network prediction (physical depth)
	BcastTreeUs      float64
	BcastInNetUs     float64
	ReduceTreeUs     float64
	ReduceInNetUs    float64
}

// TopologyStudy is experiment SC3: barrier, broadcast and reduce
// latency from 32 to 1,024 ranks across the flat crossbar, an 8-ary
// fat-tree and a 2D torus, running the software tree and the
// in-network combining plane over the SAME fabric in the same seeded
// run. The paper's scaling argument (SC1) assumed one ideal switch;
// SC3 asks what structured interconnects cost — extra switch hops,
// contended up-links — and what switch-resident combining buys back:
// at 1,024 ranks the in-network barrier must beat the software tree,
// because it pays host overhead once instead of per tree level.
func TopologyStudy(cfg TopoStudyConfig) (Report, []TopoRow, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{32, 64, 128, 256, 512, 1024}
	}
	if len(cfg.Topologies) == 0 {
		cfg.Topologies = []string{"crossbar", "fattree", "torus"}
	}
	if cfg.Arity <= 0 {
		cfg.Arity = 4
	}
	if cfg.FatTreeArity <= 0 {
		cfg.FatTreeArity = 8
	}
	if cfg.Oversub <= 0 {
		cfg.Oversub = 1
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 4
	}
	if cfg.BcastBytes <= 0 {
		cfg.BcastBytes = 512
	}
	acfg := am.DefaultConfig()
	rows := make([]TopoRow, 0, len(cfg.Topologies)*len(cfg.Sizes))
	regs := make(map[string]*obs.Registry)
	for _, topoName := range cfg.Topologies {
		for _, n := range cfg.Sizes {
			row, reg, err := topoOne(topoName, n, cfg, acfg)
			if err != nil {
				return Report{}, nil, fmt.Errorf("sc3 %s n=%d: %w", topoName, n, err)
			}
			rows = append(rows, row)
			regs[fmt.Sprintf("%s-n%04d", topoName, n)] = reg
		}
	}
	table := stats.NewTable("SC3: collectives across fabric topologies, software tree vs in-network combining",
		"nodes", "topology", "barrier µs", "LogP µs", "in-net µs", "in-net pred µs", "bcast µs", "in-net µs", "reduce µs", "in-net µs")
	for _, r := range rows {
		table.AddRow(
			fmt.Sprintf("%d", r.Nodes),
			r.Topo,
			fmt.Sprintf("%.1f", r.BarrierTreeUs),
			fmt.Sprintf("%.1f", r.BarrierPredUs),
			fmt.Sprintf("%.1f", r.BarrierInNetUs),
			fmt.Sprintf("%.1f", r.BarrierInNetPred),
			fmt.Sprintf("%.1f", r.BcastTreeUs),
			fmt.Sprintf("%.1f", r.BcastInNetUs),
			fmt.Sprintf("%.1f", r.ReduceTreeUs),
			fmt.Sprintf("%.1f", r.ReduceInNetUs),
		)
	}
	return Report{
		ID:    "SC3",
		Title: "Topology-aware collectives 32→1,024 ranks: crossbar vs fat-tree vs torus, software tree vs in-network",
		Table: table,
		Notes: fmt.Sprintf("%d-ary software trees; %d-ary fat-tree at %d:1 over-subscription; %d-byte broadcasts; each figure is a %d-op phase makespan divided by %d",
			cfg.Arity, cfg.FatTreeArity, cfg.Oversub, cfg.BcastBytes, cfg.Iters, cfg.Iters),
		Obs: regs,
	}, rows, nil
}

// topoOne runs one (topology, size) cell: six back-to-back phases —
// tree barrier, in-network barrier, tree broadcast, in-network
// broadcast, tree reduce, in-network reduce — on one fabric in one
// seeded engine. Phase boundaries are the last rank's completion, so
// each phase's makespan charges the stragglers the previous phase
// created (barrier-shaped phases re-align the ranks anyway).
func topoOne(topoName string, n int, cfg TopoStudyConfig, acfg am.Config) (TopoRow, *obs.Registry, error) {
	e := sim.NewEngine(1)
	defer e.Close()
	reg := obs.NewRegistry()
	e.Observe(reg)
	fcfg := netsim.Myrinet(n)
	var err error
	switch topoName {
	case "", "crossbar":
	case "fattree":
		fcfg.Topo, err = netsim.NewFatTree(n, cfg.FatTreeArity, cfg.Oversub)
	case "torus":
		fcfg.Topo, err = netsim.NewTorus(n)
	default:
		fcfg.Topo, err = netsim.TopoByName(topoName, n)
	}
	if err != nil {
		return TopoRow{}, nil, err
	}
	fab, err := netsim.New(e, fcfg)
	if err != nil {
		return TopoRow{}, nil, err
	}
	fab.Instrument(reg)
	eps := make([]*am.Endpoint, n)
	for i := 0; i < n; i++ {
		eps[i] = am.NewEndpoint(e, node.New(e, node.DefaultConfig(netsim.NodeID(i))), fab, acfg)
	}
	comm, err := collective.New(e, eps, collective.Config{Arity: cfg.Arity})
	if err != nil {
		return TopoRow{}, nil, err
	}
	comm.Instrument(reg)
	innet, err := collective.NewInNet(comm, collective.InNetConfig{})
	if err != nil {
		return TopoRow{}, nil, err
	}
	innet.Instrument(reg)

	const phases = 6
	var phaseEnd [phases]sim.Time
	var procErr error
	wg := sim.NewWaitGroup(e, "sc3")
	wg.Add(n)
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			defer wg.Done()
			mark := func(ph int) {
				if p.Now() > phaseEnd[ph] {
					phaseEnd[ph] = p.Now()
				}
			}
			for i := 0; i < cfg.Iters; i++ {
				if err := comm.Barrier(p, r); err != nil {
					procErr = err
					return
				}
			}
			mark(0)
			for i := 0; i < cfg.Iters; i++ {
				if err := innet.Barrier(p, r); err != nil {
					procErr = err
					return
				}
			}
			mark(1)
			for i := 0; i < cfg.Iters; i++ {
				if _, err := comm.Broadcast(p, r, i, cfg.BcastBytes); err != nil {
					procErr = err
					return
				}
			}
			mark(2)
			for i := 0; i < cfg.Iters; i++ {
				if _, err := innet.Broadcast(p, r, i, cfg.BcastBytes); err != nil {
					procErr = err
					return
				}
			}
			mark(3)
			for i := 0; i < cfg.Iters; i++ {
				if _, _, err := comm.Reduce(p, r, int64(r)); err != nil {
					procErr = err
					return
				}
			}
			mark(4)
			for i := 0; i < cfg.Iters; i++ {
				if _, err := innet.AllReduce(p, r, int64(r)); err != nil {
					procErr = err
					return
				}
			}
			mark(5)
		})
	}
	e.Spawn("monitor", func(p *sim.Proc) {
		wg.Wait(p)
		// Stop at workload completion; draining cancelled AM timers
		// would advance the clock past the work (same as SC1).
		e.Stop()
	})
	if err := e.Run(); err != nil && !errors.Is(err, sim.ErrStopped) {
		return TopoRow{}, nil, err
	}
	if procErr != nil {
		return TopoRow{}, nil, procErr
	}
	per := func(ph int) float64 {
		start := sim.Time(0)
		if ph > 0 {
			start = phaseEnd[ph-1]
		}
		return float64(phaseEnd[ph]-start) / float64(cfg.Iters) / 1e3
	}
	depth := netsim.CombineTreeOf(fcfg.Topo, n).Depth()
	row := TopoRow{
		Nodes: n,
		Topo:  topoLabel(topoName, fcfg.Topo),

		BarrierTreeUs:    per(0),
		BarrierPredUs:    float64(collective.PredictBarrier(acfg, fcfg, n, cfg.Arity)) / 1e3,
		BarrierInNetUs:   per(1),
		BarrierInNetPred: float64(collective.PredictInNetBarrier(acfg, fcfg, depth, 0)) / 1e3,
		BcastTreeUs:      per(2),
		BcastInNetUs:     per(3),
		ReduceTreeUs:     per(4),
		ReduceInNetUs:    per(5),
	}
	return row, reg, nil
}

// topoLabel names a cell's topology: the instance's own Name (which
// carries its parameters) for structured fabrics, "crossbar" for the
// flat default.
func topoLabel(name string, topo netsim.Topology) string {
	if topo == nil {
		return "crossbar"
	}
	return topo.Name()
}
