package experiments

import (
	"testing"
)

// TestTopologyStudyShape runs the quick SC3 sweep and checks the grid:
// one row per (topology, size), every phase measured, predictions
// present.
func TestTopologyStudyShape(t *testing.T) {
	cfg := QuickTopoStudyConfig()
	rep, rows, err := TopologyStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(cfg.Topologies) * len(cfg.Sizes); len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.BarrierTreeUs <= 0 || r.BarrierInNetUs <= 0 || r.BcastTreeUs <= 0 ||
			r.BcastInNetUs <= 0 || r.ReduceTreeUs <= 0 || r.ReduceInNetUs <= 0 {
			t.Fatalf("%s n=%d: unmeasured phase in %+v", r.Topo, r.Nodes, r)
		}
		if r.BarrierPredUs <= 0 || r.BarrierInNetPred <= 0 {
			t.Fatalf("%s n=%d: missing prediction in %+v", r.Topo, r.Nodes, r)
		}
	}
	if len(rep.Obs) != len(rows) {
		t.Fatalf("%d registries for %d rows", len(rep.Obs), len(rows))
	}
}

// TestInNetBarrierBeatsSoftwareTreeAt1024 is the SC3 acceptance gate:
// at 1,024 ranks the switch-combined barrier must finish faster than
// the software k-ary tree on every topology — the in-network plane
// pays host overhead once per rank instead of once per tree level.
func TestInNetBarrierBeatsSoftwareTreeAt1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1,024-rank sweep")
	}
	cfg := DefaultTopoStudyConfig()
	cfg.Sizes = []int{1024}
	cfg.Iters = 2
	_, rows, err := TopologyStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BarrierInNetUs >= r.BarrierTreeUs {
			t.Errorf("%s n=%d: in-network barrier %.1fµs not faster than software tree %.1fµs",
				r.Topo, r.Nodes, r.BarrierInNetUs, r.BarrierTreeUs)
		}
	}
}
