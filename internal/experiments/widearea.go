// WA1 — the federation's headline study: where does cross-cluster
// caching beat re-fetching from home as WAN latency sweeps 1–100 ms?
//
// Two buildings: the HOME cluster runs xFS and owns every file; the
// READER cluster has no storage at all. The reader touches a working
// set of blocks repeatedly, two ways over the same seeded federation:
//
//   - no-cache: every read is a single-block WAN fetch from home —
//     each pays the round trip, so total cost scales with latency × reads.
//   - cached: the first read takes a whole-file lease warmup (the grant
//     ships FileBlocks blocks — bandwidth-bound, latency-independent),
//     then every read is a local copy.
//
// The warmup ships more blocks than the workload uses, so at low
// latency re-fetching wins and at high latency caching wins; the
// crossover is pinned against costmodel.FedCrossoverLatencyNs.
package experiments

import (
	"fmt"

	"github.com/nowproject/now/internal/costmodel"
	"github.com/nowproject/now/internal/federation"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/xfs"
)

// WideAreaConfig parameterises the WA1 study.
type WideAreaConfig struct {
	// Latencies to sweep (one-way WAN propagation).
	Latencies []sim.Duration
	// BandwidthMbps of the (symmetric) WAN pipes. Low on purpose: the
	// warmup's serialization term is the whole trade.
	BandwidthMbps float64
	// Files in the working set; FileBlocks blocks are written (and
	// warmed) per file.
	Files      int
	FileBlocks int
	// UsedBlocks per file actually read, Reuse times each — the warmup
	// over-fetches FileBlocks-UsedBlocks blocks per file.
	UsedBlocks int
	Reuse      int
	// XFSNodes in the home cluster.
	XFSNodes int
	Seed     int64
}

// DefaultWideAreaConfig sweeps 1–100 ms on a 10 Mb/s pipe with a 64-
// block warmup of which an eighth is read twice: the closed form puts
// the crossover near 10 ms, mid-sweep.
func DefaultWideAreaConfig() WideAreaConfig {
	return WideAreaConfig{
		Latencies: []sim.Duration{
			1 * sim.Millisecond, 2 * sim.Millisecond, 5 * sim.Millisecond,
			10 * sim.Millisecond, 20 * sim.Millisecond,
			50 * sim.Millisecond, 100 * sim.Millisecond,
		},
		BandwidthMbps: 10,
		Files:         3,
		FileBlocks:    64,
		UsedBlocks:    8,
		Reuse:         2,
		XFSNodes:      6,
		Seed:          1995,
	}
}

// QuickWideAreaConfig trims the sweep and the working set; the
// crossover stays bracketed.
func QuickWideAreaConfig() WideAreaConfig {
	cfg := DefaultWideAreaConfig()
	cfg.Latencies = []sim.Duration{
		2 * sim.Millisecond, 5 * sim.Millisecond, 20 * sim.Millisecond, 50 * sim.Millisecond,
	}
	cfg.Files = 2
	return cfg
}

// WARow is one latency cell: both modes measured over the same seeded
// federation, plus the closed-form prediction for each.
type WARow struct {
	Latency      sim.Duration
	RefetchMs    float64 // no-cache reader makespan
	CachedMs     float64 // lease-warmup reader makespan
	PredRefetch  float64
	PredCached   float64
	CachingWins  bool
	PredictedWin bool
}

// waStart is the experiment-level WAN cast that releases the reader
// once the home cluster has seeded its files (gateway ids 0x30+ are
// reserved for embedders).
const waStart uint8 = 0x30

// WideAreaStudy is experiment WA1. It returns the report, the sweep
// rows, and the predicted crossover latency (ns).
func WideAreaStudy(cfg WideAreaConfig) (Report, []WARow, float64, error) {
	regs := map[string]*obs.Registry{}
	var rows []WARow

	blockBytes := xfs.DefaultConfig(cfg.XFSNodes).BlockBytes
	serNs := costmodel.WANTransferNs(int64(blockBytes), cfg.BandwidthMbps)
	// Per-call overhead beyond propagation and the block itself: the
	// request and reply framing on the thin pipe. The home-side xFS
	// read time appears identically in both modes' measurements, so the
	// closed form carries only the wire terms.
	hdrNs := 2 * costmodel.WANTransferNs(96, cfg.BandwidthMbps)
	localNs := float64(30 * sim.Microsecond)
	reads := cfg.UsedBlocks * cfg.Reuse
	crossNs := costmodel.FedCrossoverLatencyNs(reads, cfg.FileBlocks, serNs, hdrNs, localNs)

	for _, lat := range cfg.Latencies {
		var cell [2]float64
		for mode := 0; mode < 2; mode++ { // 0 = no-cache, 1 = cached
			ms, reg, err := waOne(cfg, lat, mode == 1)
			if err != nil {
				return Report{}, nil, 0, fmt.Errorf("wa1 lat=%v mode=%d: %w", lat, mode, err)
			}
			cell[mode] = ms
			regs[fmt.Sprintf("lat%03dms-%s", int(lat/sim.Millisecond), []string{"refetch", "cached"}[mode])] = reg
		}
		rttNs := float64(2 * lat)
		pr := costmodel.FedRefetchNs(reads*cfg.Files, rttNs, serNs, hdrNs) / 1e6
		pc := float64(cfg.Files) * costmodel.FedCachedNs(reads, cfg.FileBlocks, rttNs, serNs, hdrNs, localNs) / 1e6
		rows = append(rows, WARow{
			Latency:      lat,
			RefetchMs:    cell[0],
			CachedMs:     cell[1],
			PredRefetch:  pr,
			PredCached:   pc,
			CachingWins:  cell[1] < cell[0],
			PredictedWin: pc < pr,
		})
	}

	table := stats.NewTable("WA1: cross-cluster caching vs re-fetch from home, WAN latency sweep",
		"latency", "refetch ms", "cached ms", "pred refetch", "pred cached", "winner", "predicted")
	for _, r := range rows {
		table.AddRow(
			fmt.Sprintf("%dms", int(r.Latency/sim.Millisecond)),
			fmt.Sprintf("%.2f", r.RefetchMs),
			fmt.Sprintf("%.2f", r.CachedMs),
			fmt.Sprintf("%.2f", r.PredRefetch),
			fmt.Sprintf("%.2f", r.PredCached),
			winner(r.CachingWins),
			winner(r.PredictedWin),
		)
	}
	return Report{
		ID:    "WA1",
		Title: "NOW of NOWs: lease-warmed cross-cluster caching vs per-read home fetch, 1–100 ms WAN",
		Table: table,
		Notes: fmt.Sprintf("%d files × %d-block warmup, %d blocks read ×%d on a %.0f Mb/s WAN; closed-form crossover at %.1f ms one-way",
			cfg.Files, cfg.FileBlocks, cfg.UsedBlocks, cfg.Reuse, cfg.BandwidthMbps, crossNs/1e6),
		Obs: regs,
	}, rows, crossNs, nil
}

func winner(caching bool) string {
	if caching {
		return "cached"
	}
	return "refetch"
}

// waOne runs one (latency, mode) cell: seed the home files, release the
// reader over the WAN, measure the reader's makespan.
func waOne(cfg WideAreaConfig, lat sim.Duration, cached bool) (float64, *obs.Registry, error) {
	f, err := federation.New(federation.Config{
		Clusters: []federation.ClusterConfig{
			{Name: "home", XFSNodes: cfg.XFSNodes},
			{Name: "reader"},
		},
		WAN: federation.WANConfig{Latency: lat, BandwidthMbps: cfg.BandwidthMbps},
		FedFS: federation.FSConfig{
			FileBlocks:  cfg.FileBlocks,
			CacheBlocks: cfg.Files*cfg.FileBlocks + 16,
			NoCache:     !cached,
		},
		Seed: cfg.Seed,
	})
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	home, reader := f.Cluster(0), f.Cluster(1)

	start := sim.NewSignal(reader.Engine(), "wa1.start")
	reader.Gateway().HandleCast(waStart, func(int, any) { start.Broadcast() })

	home.Engine().Spawn("wa1.seed", func(p *sim.Proc) {
		w := home.FS.Client(0)
		data := make([]byte, xfs.DefaultConfig(cfg.XFSNodes).BlockBytes)
		for i := range data {
			data[i] = byte(i)
		}
		for file := 0; file < cfg.Files; file++ {
			for blk := 0; blk < cfg.FileBlocks; blk++ {
				if err := w.Write(p, xfs.FileID(file+1), uint32(blk), data); err != nil {
					home.Engine().Fail(fmt.Errorf("seed %d/%d: %w", file, blk, err))
					return
				}
			}
		}
		if err := w.Sync(p); err != nil {
			home.Engine().Fail(err)
			return
		}
		home.Gateway().Cast(reader.ID(), waStart, nil, 16)
	})

	var elapsed sim.Duration
	reader.Engine().Spawn("wa1.reader", func(p *sim.Proc) {
		start.Wait(p)
		stride := cfg.FileBlocks / cfg.UsedBlocks
		t0 := p.Now()
		for file := 0; file < cfg.Files; file++ {
			for r := 0; r < cfg.Reuse; r++ {
				for u := 0; u < cfg.UsedBlocks; u++ {
					if _, err := reader.FedFS().Read(p, xfs.FileID(file+1), uint32(u*stride)); err != nil {
						reader.Engine().Fail(fmt.Errorf("read %d/%d: %w", file, u*stride, err))
						return
					}
				}
			}
		}
		elapsed = sim.Duration(p.Now() - t0)
	})

	if err := f.Run(sim.Time(10 * sim.Minute)); err != nil {
		return 0, nil, err
	}
	return elapsed.Milliseconds(), f.Merged(), nil
}
