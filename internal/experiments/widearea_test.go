package experiments

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// TestWideAreaCrossover pins WA1's headline claim: somewhere inside the
// 1–100 ms sweep, lease-warmed cross-cluster caching overtakes per-read
// re-fetch from home — and the measured crossover brackets the closed-
// form prediction.
func TestWideAreaCrossover(t *testing.T) {
	cfg := QuickWideAreaConfig()
	_, rows, crossNs, err := WideAreaStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("sweep too small: %d rows", len(rows))
	}
	// The transition must exist and be monotone: refetch wins the low-
	// latency prefix, caching wins the high-latency suffix.
	if rows[0].CachingWins {
		t.Errorf("caching already wins at %v; warmup over-fetch not priced", rows[0].Latency)
	}
	last := rows[len(rows)-1]
	if !last.CachingWins {
		t.Errorf("caching still loses at %v; crossover escaped the sweep", last.Latency)
	}
	var lo, hi sim.Duration // measured bracket around the crossover
	flipped := false
	for i, r := range rows {
		if r.CachingWins != (r.CachedMs < r.RefetchMs) {
			t.Fatalf("row %v: winner flag inconsistent", r.Latency)
		}
		if r.CachingWins && !flipped {
			flipped = true
			hi = r.Latency
			if i > 0 {
				lo = rows[i-1].Latency
			}
		}
		if flipped && !r.CachingWins {
			t.Errorf("non-monotone winner at %v: caching lost again past the crossover", r.Latency)
		}
		if r.CachingWins != r.PredictedWin {
			t.Errorf("at %v measured winner and closed-form prediction disagree", r.Latency)
		}
	}
	if !flipped {
		t.Fatal("no crossover inside the sweep")
	}
	cross := sim.Duration(crossNs)
	if cross <= lo || cross > hi {
		t.Errorf("closed-form crossover %v outside the measured bracket (%v, %v]", cross, lo, hi)
	}
}

// TestWideAreaDeterminism: the quick sweep twice must agree cell for
// cell — the whole study is one deterministic federation per cell.
func TestWideAreaDeterminism(t *testing.T) {
	cfg := QuickWideAreaConfig()
	cfg.Latencies = cfg.Latencies[:2]
	_, r1, _, err := WideAreaStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, _, err := WideAreaStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("row %d diverged:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}
}
