// Package faults is a deterministic fault-injection subsystem for the
// NOW stack. The paper's availability argument — "if one workstation in
// the NOW crashes, any other can take its place" — is only credible if
// the stack is exercised under faults, so this package turns fault
// scenarios into first-class, replayable inputs.
//
// A Plan is a virtual-time schedule of faults, either scripted
// explicitly (Scripted, ParseFile) or generated from a seeded RNG with
// per-fault-class rates (Generate) — MTTF/MTTR style. An Injector
// executes the plan against a live stack through the Target interface,
// which adapters wire to each subsystem: workstation crash and
// recovery/rejoin (glunix), network partitions and lossy/slow link
// windows (netsim), disk failure, rebuild and spare adoption
// (swraid via xfs), and xFS manager kill forcing failover.
//
// Determinism: a plan is fully determined by its source (script bytes,
// or seed + rates), and the injector schedules faults as ordinary
// engine events, so two runs of the same seeded scenario produce
// byte-identical metrics exports (see docs/FAULTS.md).
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/nowproject/now/internal/sim"
)

// Kind classifies a fault.
type Kind int

const (
	// Crash fail-stops a workstation (glunix census notices via missed
	// heartbeats; guests die and their jobs restart from checkpoint).
	Crash Kind = iota + 1
	// Recover reboots a crashed workstation; it rejoins the census on
	// its first heartbeat (subject to glunix.RecoverPolicy).
	Recover
	// Partition splits the fabric: nodes in Set are cut off from the
	// rest (packets across the cut are dropped).
	Partition
	// Heal removes the partition.
	Heal
	// Link degrades one link: packet loss probability Loss and added
	// one-way delay Delay between Node and Peer.
	Link
	// LinkClear restores the link between Node and Peer.
	LinkClear
	// DiskFail fail-stops storage node Node: its endpoint detaches and
	// every RAID view marks its store failed (reads go degraded).
	DiskFail
	// Rebuild reconstructs the failed store Node onto replacement Peer
	// (Peer < 0 picks the next unused hot spare).
	Rebuild
	// MgrKill crashes the node hosting xFS manager index Node, forcing
	// failover to the hot standby.
	MgrKill
)

var kindNames = [...]string{
	Crash:     "crash",
	Recover:   "recover",
	Partition: "partition",
	Heal:      "heal",
	Link:      "link",
	LinkClear: "linkclear",
	DiskFail:  "diskfail",
	Rebuild:   "rebuild",
	MgrKill:   "mgrkill",
}

// NumKinds is the number of fault kinds (CounterVec width).
const NumKinds = int(MgrKill)

// String names the kind (the plan-file keyword).
func (k Kind) String() string {
	if k >= 1 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled fault. Which fields matter depends on Kind.
type Fault struct {
	// At is the injection time.
	At sim.Time
	// Kind selects the fault class.
	Kind Kind
	// Node is the primary subject: workstation id (Crash/Recover),
	// link endpoint (Link/LinkClear), storage node (DiskFail/Rebuild),
	// or manager index (MgrKill).
	Node int
	// Peer is the other link endpoint (Link/LinkClear) or the rebuild
	// replacement node (Rebuild; -1 = auto-pick a hot spare).
	Peer int
	// Set is one side of a Partition (the rest of the fabric is the
	// other side).
	Set []int
	// For, when > 0, makes the fault a window: the injector schedules
	// the inverse fault (Recover, Heal, LinkClear) at At+For.
	For sim.Duration
	// Loss is the injected packet-loss probability (Link).
	Loss float64
	// Delay is the injected extra one-way latency (Link).
	Delay sim.Duration
}

// String renders the fault in plan-file syntax.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", sim.Duration(f.At), f.Kind)
	switch f.Kind {
	case Crash, Recover, DiskFail, MgrKill:
		fmt.Fprintf(&b, " %d", f.Node)
	case Partition:
		parts := make([]string, len(f.Set))
		for i, n := range f.Set {
			parts[i] = strconv.Itoa(n)
		}
		fmt.Fprintf(&b, " %s", strings.Join(parts, ","))
	case Link:
		fmt.Fprintf(&b, " %d %d loss=%g delay=%s", f.Node, f.Peer, f.Loss, f.Delay)
	case LinkClear:
		fmt.Fprintf(&b, " %d %d", f.Node, f.Peer)
	case Rebuild:
		fmt.Fprintf(&b, " %d", f.Node)
		if f.Peer >= 0 {
			fmt.Fprintf(&b, " %d", f.Peer)
		}
	}
	if f.For > 0 {
		fmt.Fprintf(&b, " for %s", f.For)
	}
	return b.String()
}

// Plan is a schedule of faults. Faults are injected in At order; ties
// keep plan order (stable sort), so a plan is a deterministic input.
type Plan struct {
	// Name labels the plan in reports and spans.
	Name string
	// Seed is the generator seed (0 for scripted plans).
	Seed int64
	// Faults is the schedule.
	Faults []Fault
}

// Scripted builds a plan from explicit faults, sorting by time.
func Scripted(name string, faults ...Fault) Plan {
	p := Plan{Name: name, Faults: faults}
	p.normalize()
	return p
}

// normalize stable-sorts by injection time.
func (p *Plan) normalize() {
	sort.SliceStable(p.Faults, func(i, j int) bool {
		return p.Faults[i].At < p.Faults[j].At
	})
}

// String renders the plan in plan-file syntax, one fault per line.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# plan %q seed=%d faults=%d\n", p.Name, p.Seed, len(p.Faults))
	for _, f := range p.Faults {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}
