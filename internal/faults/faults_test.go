package faults

import (
	"reflect"
	"strings"
	"testing"

	"github.com/nowproject/now/internal/sim"
)

func TestScriptedSortsByTime(t *testing.T) {
	p := Scripted("x",
		Fault{At: 30 * sim.Second, Kind: Heal},
		Fault{At: 10 * sim.Second, Kind: Crash, Node: 3},
		Fault{At: 20 * sim.Second, Kind: DiskFail, Node: 1},
	)
	for i := 1; i < len(p.Faults); i++ {
		if p.Faults[i].At < p.Faults[i-1].At {
			t.Fatalf("plan not sorted: %v", p.Faults)
		}
	}
	if p.Faults[0].Kind != Crash || p.Faults[2].Kind != Heal {
		t.Fatalf("sort order wrong: %v", p.Faults)
	}
}

func TestParseEveryKind(t *testing.T) {
	const text = `
# availability drill
10s crash 5 for 2m
3m  recover 5
90s partition 3,4,7 for 30s
4m  heal
2m  link 1 2 loss=0.25 delay=3ms for 45s
5m  linkclear 1 2
6m  diskfail 2
7m  rebuild 2
7m30s rebuild 2 9
8m  mgrkill 0   # second column comment
`
	p, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 10 {
		t.Fatalf("parsed %d faults, want 10:\n%s", len(p.Faults), p)
	}
	byKind := map[Kind]Fault{}
	for _, f := range p.Faults {
		byKind[f.Kind] = f
	}
	if f := byKind[Crash]; f.Node != 5 || f.For != 2*sim.Minute || f.At != 10*sim.Second {
		t.Fatalf("crash parsed as %+v", f)
	}
	if f := byKind[Partition]; !reflect.DeepEqual(f.Set, []int{3, 4, 7}) || f.For != 30*sim.Second {
		t.Fatalf("partition parsed as %+v", f)
	}
	if f := byKind[Link]; f.Node != 1 || f.Peer != 2 || f.Loss != 0.25 ||
		f.Delay != 3*sim.Millisecond || f.For != 45*sim.Second {
		t.Fatalf("link parsed as %+v", f)
	}
	if f := byKind[MgrKill]; f.Node != 0 || f.At != 8*sim.Minute {
		t.Fatalf("mgrkill parsed as %+v", f)
	}
}

// TestPlanRoundTrips renders a parsed plan with String and parses the
// result: the grammar and the printer must agree exactly.
func TestPlanRoundTrips(t *testing.T) {
	const text = `
5s crash 3 for 1m
20s partition 2,6 for 10s
40s link 0 4 loss=0.1 delay=500µs for 5s
1m  diskfail 2
2m  rebuild 2
3m  rebuild 4 9
4m  mgrkill 1
`
	p1, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(strings.NewReader(p1.String()))
	if err != nil {
		t.Fatalf("re-parsing rendered plan: %v\n%s", err, p1)
	}
	if !reflect.DeepEqual(p1.Faults, p2.Faults) {
		t.Fatalf("round trip changed the plan:\n%v\nvs\n%v", p1.Faults, p2.Faults)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"10s explode 3",          // unknown kind
		"abc crash 3",            // bad time
		"10s crash three",        // bad node
		"10s crash",              // missing node
		"10s heal 4",             // heal takes no args
		"10s partition",          // missing set
		"10s link 1",             // missing peer
		"10s link 1 2 loss=x",    // bad loss
		"10s rebuild",            // missing store
		"10s crash 3 for soon",   // bad window
		"10s link 1 2 jitter=3s", // unknown link option
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseSpecGeneratedDeterministic(t *testing.T) {
	const spec = "seed:7,nodemttf=15m,linkloss=0.2"
	p1, err := ParseSpec(spec, 16, sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseSpec(spec, 16, sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same spec generated different plans")
	}
	p3, err := ParseSpec("seed:8,nodemttf=15m,linkloss=0.2", 16, sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1.Faults, p3.Faults) {
		t.Fatal("different seeds generated identical plans")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"seed:x",
		"seed:1,mttf",          // not key=value
		"seed:1,warp=10s",      // unknown key
		"seed:1,nodemttf=fast", // bad duration
		"seed:1,linkloss=lots", // bad probability
	} {
		if _, err := ParseSpec(bad, 8, sim.Hour); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestGenerateInvariants(t *testing.T) {
	const horizon = 2 * sim.Hour
	p, err := Generate(3, DefaultRates(16, horizon))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) == 0 {
		t.Fatal("default rates generated an empty plan")
	}
	for i, f := range p.Faults {
		if f.At <= 0 || f.At >= sim.Time(horizon) {
			t.Fatalf("fault %d at %v outside (0, %v)", i, f.At, horizon)
		}
		if f.For > 0 && f.At+sim.Time(f.For) >= sim.Time(horizon) {
			t.Fatalf("fault %d window [%v, %v] overruns the horizon", i, f.At, f.At+sim.Time(f.For))
		}
		if i > 0 && f.At < p.Faults[i-1].At {
			t.Fatalf("plan not time-sorted at %d", i)
		}
		switch f.Kind {
		case Crash, DiskFail:
			if f.Node < 1 || f.Node >= 16 {
				t.Fatalf("fault %d targets node %d (master or out of range)", i, f.Node)
			}
		case Partition:
			for _, n := range f.Set {
				if n < 1 || n >= 16 {
					t.Fatalf("partition cuts node %d", n)
				}
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(1, Rates{Nodes: 1, Horizon: sim.Hour}); err == nil {
		t.Fatal("accepted a 1-node fabric")
	}
	if _, err := Generate(1, Rates{Nodes: 4}); err == nil {
		t.Fatal("accepted a zero horizon")
	}
}

func TestKindString(t *testing.T) {
	if Crash.String() != "crash" || MgrKill.String() != "mgrkill" {
		t.Fatal("kind names wrong")
	}
	if got := Kind(42).String(); got != "kind(42)" {
		t.Fatalf("out-of-range kind = %q", got)
	}
}
