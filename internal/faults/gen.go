package faults

import (
	"fmt"
	"math/rand"

	"github.com/nowproject/now/internal/sim"
)

// Rates parameterizes a generated plan: per-fault-class MTTF-style
// inter-arrival means and MTTR-style repair delays. A zero mean
// disables that class. Generation uses its own seeded RNG (not the
// engine's), so the plan is fixed before the simulation starts and the
// same seed+rates always yield the same plan.
type Rates struct {
	// Nodes is the fabric size (node 0 is never faulted: it hosts the
	// glunix master).
	Nodes int
	// Horizon bounds injection times: all faults land in (0, Horizon),
	// and windowed faults are clipped so their undo lands before it.
	Horizon sim.Duration

	// NodeMTTF is the mean time between workstation crashes; NodeMTTR
	// the mean outage before the reboot/rejoin.
	NodeMTTF sim.Duration
	NodeMTTR sim.Duration

	// PartitionMTTF is the mean time between fabric partitions;
	// PartitionFor the mean window before the heal.
	PartitionMTTF sim.Duration
	PartitionFor  sim.Duration

	// LinkMTTF is the mean time between degraded-link windows; LinkFor
	// the mean window length; LinkLoss and LinkDelay the injected loss
	// probability and extra one-way latency while the window is open.
	LinkMTTF  sim.Duration
	LinkFor   sim.Duration
	LinkLoss  float64
	LinkDelay sim.Duration

	// DiskMTTF is the mean time between storage-node failures;
	// DiskRebuildAfter the mean delay before the rebuild onto a spare.
	DiskMTTF         sim.Duration
	DiskRebuildAfter sim.Duration

	// MgrMTTF is the mean time between xFS manager kills.
	MgrMTTF sim.Duration
}

// DefaultRates returns a plan shape that exercises every fault class a
// few times over the horizon on an n-node stack.
func DefaultRates(n int, horizon sim.Duration) Rates {
	return Rates{
		Nodes:            n,
		Horizon:          horizon,
		NodeMTTF:         horizon / 3,
		NodeMTTR:         horizon / 20,
		PartitionMTTF:    horizon / 2,
		PartitionFor:     horizon / 30,
		LinkMTTF:         horizon / 2,
		LinkFor:          horizon / 20,
		LinkLoss:         0.05,
		LinkDelay:        2 * sim.Millisecond,
		DiskMTTF:         horizon / 2,
		DiskRebuildAfter: horizon / 30,
		MgrMTTF:          horizon,
	}
}

// Generate draws a plan from seed and r. The RNG is private to the
// generator: the engine's randomness is untouched, so adding a fault
// class never perturbs scheduling decisions elsewhere.
func Generate(seed int64, r Rates) (Plan, error) {
	if r.Nodes < 2 {
		return Plan{}, fmt.Errorf("faults: generate needs ≥2 nodes, have %d", r.Nodes)
	}
	if r.Horizon <= 0 {
		return Plan{}, fmt.Errorf("faults: generate needs a positive horizon")
	}
	rng := rand.New(rand.NewSource(seed))
	p := Plan{Name: fmt.Sprintf("seed:%d", seed), Seed: seed}

	// exp draws an exponential interval with the given mean, floored at
	// 1ns so schedules always advance.
	exp := func(mean sim.Duration) sim.Duration {
		d := sim.Duration(rng.ExpFloat64() * float64(mean))
		if d < 1 {
			d = 1
		}
		return d
	}
	// ws picks a non-master workstation.
	ws := func() int { return 1 + rng.Intn(r.Nodes-1) }

	if r.NodeMTTF > 0 {
		for t := exp(r.NodeMTTF); t < r.Horizon; t += exp(r.NodeMTTF) {
			outage := exp(r.NodeMTTR)
			if sim.Time(t)+outage >= sim.Time(r.Horizon) {
				outage = r.Horizon - t - 1
			}
			if outage <= 0 {
				continue
			}
			p.Faults = append(p.Faults, Fault{At: sim.Time(t), Kind: Crash, Node: ws(), For: outage})
		}
	}
	if r.PartitionMTTF > 0 {
		for t := exp(r.PartitionMTTF); t < r.Horizon; t += exp(r.PartitionMTTF) {
			window := exp(r.PartitionFor)
			if sim.Time(t)+window >= sim.Time(r.Horizon) {
				window = r.Horizon - t - 1
			}
			if window <= 0 {
				continue
			}
			// Cut off a random minority of non-master nodes.
			k := 1 + rng.Intn(max(1, (r.Nodes-1)/2))
			seen := make(map[int]bool, k)
			set := make([]int, 0, k)
			for len(set) < k {
				n := ws()
				if !seen[n] {
					seen[n] = true
					set = append(set, n)
				}
			}
			p.Faults = append(p.Faults, Fault{At: sim.Time(t), Kind: Partition, Set: set, For: window})
		}
	}
	if r.LinkMTTF > 0 {
		for t := exp(r.LinkMTTF); t < r.Horizon; t += exp(r.LinkMTTF) {
			window := exp(r.LinkFor)
			if sim.Time(t)+window >= sim.Time(r.Horizon) {
				window = r.Horizon - t - 1
			}
			if window <= 0 {
				continue
			}
			a := rng.Intn(r.Nodes)
			b := rng.Intn(r.Nodes)
			if a == b {
				b = (b + 1) % r.Nodes
			}
			p.Faults = append(p.Faults, Fault{At: sim.Time(t), Kind: Link,
				Node: a, Peer: b, Loss: r.LinkLoss, Delay: r.LinkDelay, For: window})
		}
	}
	if r.DiskMTTF > 0 {
		for t := exp(r.DiskMTTF); t < r.Horizon; t += exp(r.DiskMTTF) {
			store := ws()
			p.Faults = append(p.Faults, Fault{At: sim.Time(t), Kind: DiskFail, Node: store})
			rb := sim.Time(t) + exp(r.DiskRebuildAfter)
			if rb < sim.Time(r.Horizon) {
				p.Faults = append(p.Faults, Fault{At: rb, Kind: Rebuild, Node: store, Peer: -1})
			}
		}
	}
	if r.MgrMTTF > 0 {
		for t := exp(r.MgrMTTF); t < r.Horizon; t += exp(r.MgrMTTF) {
			p.Faults = append(p.Faults, Fault{At: sim.Time(t), Kind: MgrKill, Node: 0})
		}
	}
	p.normalize()
	return p, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
