package faults

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

// errNoSpare is surfaced by XFSTarget when a rebuild asks for an
// auto-picked spare and the pool is exhausted.
var errNoSpare = errors.New("faults: no unused hot spare left")

// Injector executes a Plan against a Target by scheduling each fault
// as an ordinary engine event — injection is part of the simulation's
// deterministic event order, not an outside actor. Every injected
// fault opens an obs span ("fault.<kind>", node = the faulted node)
// and bumps the faults.* counters:
//
//	faults.injected       faults applied to the target
//	faults.injected.kind  same, as a vector by Kind
//	faults.skipped        faults no target handled (bad node id, ...)
//	faults.errors         handled faults that returned an error
//	faults.active         currently-open fault windows
//
// Windowed faults (Fault.For > 0) schedule their own undo — Recover,
// Heal or LinkClear — at At+For, and their span stays open for the
// whole window.
type Injector struct {
	eng  *sim.Engine
	tgt  Target
	plan Plan
	r    *obs.Registry

	injected *obs.Counter
	byKind   *obs.CounterVec
	skipped  *obs.Counter
	faulted  *obs.Counter
	active   *obs.Gauge

	applied int // faults handled by the target (not skipped)
}

// NewInjector builds an injector for plan against tgt. The registry
// may be nil (no metrics or spans; injection still happens).
func NewInjector(e *sim.Engine, tgt Target, plan Plan, r *obs.Registry) *Injector {
	labels := make([]string, NumKinds+1)
	for k := Kind(1); int(k) <= NumKinds; k++ {
		labels[k] = k.String()
	}
	labels[0] = "none"
	return &Injector{
		eng:      e,
		tgt:      tgt,
		plan:     plan,
		r:        r,
		injected: r.Counter("faults.injected"),
		byKind:   r.CounterVec("faults.injected.kind", labels),
		skipped:  r.Counter("faults.skipped"),
		faulted:  r.Counter("faults.errors"),
		active:   r.Gauge("faults.active"),
	}
}

// Plan returns the plan being injected.
func (in *Injector) Plan() Plan { return in.plan }

// Applied reports how many faults the target has handled so far.
func (in *Injector) Applied() int { return in.applied }

// Schedule registers every fault of the plan with the engine. Call it
// once, before the run starts.
func (in *Injector) Schedule() {
	for _, f := range in.plan.Faults {
		f := f
		in.eng.At(f.At, func() { in.apply(f) })
	}
}

// Inject schedules one additional fault outside the plan — the live
// seam a control plane uses. A fault stamped in the past (or with a
// zero At, the natural value for "now") is applied at the current
// virtual time; one in the future is scheduled like a plan line.
func (in *Injector) Inject(f Fault) {
	if now := in.eng.Now(); f.At < now {
		f.At = now
	}
	in.eng.At(f.At, func() { in.apply(f) })
}

// account records the outcome of one injection attempt and manages the
// span: handled instantaneous faults close their span immediately,
// windowed ones keep it open for the undo to close. The bool result —
// not the span id, which is always 0 on a nil registry — tells apply
// whether to schedule the window's undo.
func (in *Injector) account(f Fault, handled bool) (bool, obs.SpanID) {
	if !handled {
		in.skipped.Inc()
		return false, 0
	}
	in.applied++
	in.injected.Inc()
	in.byKind.At(int(f.Kind)).Inc()
	sp := in.r.StartSpan("fault."+f.Kind.String(), f.Node)
	if f.For > 0 && windowable(f.Kind) {
		in.active.Add(1)
		return true, sp
	}
	in.r.EndSpan(sp)
	return true, 0
}

// windowable reports whether a kind has an automatic undo (so "for"
// windows mean something). Other kinds ignore a stray For.
func windowable(k Kind) bool {
	return k == Crash || k == Partition || k == Link
}

// closeWindow ends a windowed fault's span when its undo fires.
func (in *Injector) closeWindow(sp obs.SpanID) {
	in.active.Add(-1)
	in.r.EndSpan(sp)
}

func (in *Injector) apply(f Fault) {
	switch f.Kind {
	case Crash:
		if ok, sp := in.account(f, in.tgt.CrashNode(f.Node)); ok && f.For > 0 {
			in.eng.After(f.For, func() {
				in.tgt.RecoverNode(f.Node)
				in.closeWindow(sp)
			})
		}
	case Recover:
		in.account(f, in.tgt.RecoverNode(f.Node))
	case Partition:
		if ok, sp := in.account(f, in.tgt.PartitionNodes(f.Set)); ok && f.For > 0 {
			in.eng.After(f.For, func() {
				in.tgt.Heal()
				in.closeWindow(sp)
			})
		}
	case Heal:
		in.account(f, in.tgt.Heal())
	case Link:
		if ok, sp := in.account(f, in.tgt.LinkFault(f.Node, f.Peer, f.Loss, f.Delay)); ok && f.For > 0 {
			in.eng.After(f.For, func() {
				in.tgt.LinkClear(f.Node, f.Peer)
				in.closeWindow(sp)
			})
		}
	case LinkClear:
		in.account(f, in.tgt.LinkClear(f.Node, f.Peer))
	case DiskFail:
		in.account(f, in.tgt.FailDisk(f.Node))
	case Rebuild:
		// Rebuild streams reconstruction I/O, so it runs on a transient
		// proc; the span covers the whole reconstruction.
		in.eng.Spawn(fmt.Sprintf("faults/rebuild@%s", f.At), func(p *sim.Proc) {
			sp := in.r.StartSpan("fault.rebuild", f.Node)
			handled, err := in.tgt.RebuildDisk(p, f.Node, f.Peer)
			if !handled {
				in.skipped.Inc()
				in.r.Annotate(sp, "skipped: no target")
				in.r.EndSpan(sp)
				return
			}
			in.applied++
			in.injected.Inc()
			in.byKind.At(int(f.Kind)).Inc()
			if err != nil {
				in.faulted.Inc()
				in.r.Annotate(sp, "error: "+err.Error())
			}
			in.r.EndSpan(sp)
		})
	case MgrKill:
		in.eng.Spawn(fmt.Sprintf("faults/mgrkill@%s", f.At), func(p *sim.Proc) {
			in.account(f, in.tgt.KillManager(p, f.Node))
		})
	default:
		in.skipped.Inc()
	}
}
