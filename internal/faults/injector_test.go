package faults

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

// recTarget records every handled call with its virtual timestamp.
type recTarget struct {
	e     *sim.Engine
	calls []string
	fail  error // returned by RebuildDisk when set
}

func (r *recTarget) log(format string, args ...any) bool {
	r.calls = append(r.calls, fmt.Sprintf("%v ", r.e.Now())+fmt.Sprintf(format, args...))
	return true
}

func (r *recTarget) CrashNode(n int) bool   { return r.log("crash %d", n) }
func (r *recTarget) RecoverNode(n int) bool { return r.log("recover %d", n) }
func (r *recTarget) PartitionNodes(set []int) bool {
	return r.log("partition %v", set)
}
func (r *recTarget) Heal() bool { return r.log("heal") }
func (r *recTarget) LinkFault(a, b int, loss float64, delay sim.Duration) bool {
	return r.log("link %d %d loss=%g delay=%v", a, b, loss, delay)
}
func (r *recTarget) LinkClear(a, b int) bool { return r.log("linkclear %d %d", a, b) }
func (r *recTarget) FailDisk(n int) bool     { return r.log("diskfail %d", n) }
func (r *recTarget) RebuildDisk(p *sim.Proc, failed, repl int) (bool, error) {
	r.log("rebuild %d %d", failed, repl)
	return true, r.fail
}
func (r *recTarget) KillManager(p *sim.Proc, idx int) bool { return r.log("mgrkill %d", idx) }

func runPlan(t *testing.T, plan Plan, tgt func(e *sim.Engine) Target, reg *obs.Registry) {
	t.Helper()
	e := sim.NewEngine(1)
	defer e.Close()
	e.Observe(reg)
	in := NewInjector(e, tgt(e), plan, reg)
	in.Schedule()
	if err := e.RunUntil(sim.Hour); err != nil && !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
}

// TestWindowedFaultsUndoWithoutRegistry is the regression test for the
// injector's undo path: windowed faults must schedule their inverse
// even with no registry attached (the span id is 0 then, and must not
// be used as the "handled" signal).
func TestWindowedFaultsUndoWithoutRegistry(t *testing.T) {
	var rec *recTarget
	plan := Scripted("w",
		Fault{At: 10 * sim.Second, Kind: Crash, Node: 3, For: 20 * sim.Second},
		Fault{At: 15 * sim.Second, Kind: Partition, Set: []int{2}, For: 5 * sim.Second},
		Fault{At: 40 * sim.Second, Kind: Link, Node: 1, Peer: 2, Loss: 0.5, For: 10 * sim.Second},
	)
	runPlan(t, plan, func(e *sim.Engine) Target { rec = &recTarget{e: e}; return rec }, nil)
	want := []string{
		"10s crash 3",
		"15s partition [2]",
		"20s heal",
		"30s recover 3",
		"40s link 1 2 loss=0.5 delay=0s",
		"50s linkclear 1 2",
	}
	if !reflect.DeepEqual(rec.calls, want) {
		t.Fatalf("calls:\n%v\nwant:\n%v", rec.calls, want)
	}
}

func TestInstantFaultsApplyInOrder(t *testing.T) {
	var rec *recTarget
	plan := Scripted("i",
		Fault{At: 1 * sim.Second, Kind: DiskFail, Node: 2},
		Fault{At: 2 * sim.Second, Kind: Rebuild, Node: 2, Peer: 7},
		Fault{At: 3 * sim.Second, Kind: MgrKill, Node: 0},
		Fault{At: 4 * sim.Second, Kind: Recover, Node: 9},
	)
	runPlan(t, plan, func(e *sim.Engine) Target { rec = &recTarget{e: e}; return rec }, nil)
	want := []string{"1s diskfail 2", "2s rebuild 2 7", "3s mgrkill 0", "4s recover 9"}
	if !reflect.DeepEqual(rec.calls, want) {
		t.Fatalf("calls:\n%v\nwant:\n%v", rec.calls, want)
	}
}

func TestInjectorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	plan := Scripted("m",
		Fault{At: 1 * sim.Second, Kind: Crash, Node: 3, For: 10 * sim.Second},
		Fault{At: 2 * sim.Second, Kind: DiskFail, Node: 2},
		Fault{At: 3 * sim.Second, Kind: Rebuild, Node: 2, Peer: -1},
	)
	runPlan(t, plan, func(e *sim.Engine) Target { return &recTarget{e: e} }, reg)
	if v, _ := reg.CounterValue("faults.injected"); v != 3 {
		t.Fatalf("faults.injected = %d, want 3", v)
	}
	if v, _ := reg.CounterValue("faults.skipped"); v != 0 {
		t.Fatalf("faults.skipped = %d, want 0", v)
	}
	if v, _ := reg.GaugeValue("faults.active"); v != 0 {
		t.Fatalf("faults.active = %d after all windows closed", v)
	}
	// One span per fault, all closed, named fault.<kind>.
	spans := reg.Spans()
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"fault.crash", "fault.diskfail", "fault.rebuild"} {
		if !names[want] {
			t.Fatalf("missing span %q in %v", want, names)
		}
	}
}

func TestUnhandledFaultsCountAsSkipped(t *testing.T) {
	reg := obs.NewRegistry()
	plan := Scripted("s",
		Fault{At: 1 * sim.Second, Kind: Crash, Node: 3, For: 10 * sim.Second},
		Fault{At: 2 * sim.Second, Kind: DiskFail, Node: 2},
		Fault{At: 3 * sim.Second, Kind: Rebuild, Node: 2, Peer: -1},
		Fault{At: 4 * sim.Second, Kind: MgrKill, Node: 0},
	)
	e := sim.NewEngine(1)
	defer e.Close()
	e.Observe(reg)
	in := NewInjector(e, BaseTarget{}, plan, reg)
	in.Schedule()
	if err := e.RunUntil(sim.Minute); err != nil && !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	if in.Applied() != 0 {
		t.Fatalf("BaseTarget applied %d faults", in.Applied())
	}
	if v, _ := reg.CounterValue("faults.skipped"); v != 4 {
		t.Fatalf("faults.skipped = %d, want 4", v)
	}
	if v, _ := reg.GaugeValue("faults.active"); v != 0 {
		t.Fatalf("faults.active = %d for unhandled windows", v)
	}
}

func TestRebuildErrorCounted(t *testing.T) {
	reg := obs.NewRegistry()
	plan := Scripted("e", Fault{At: sim.Second, Kind: Rebuild, Node: 2, Peer: -1})
	runPlan(t, plan, func(e *sim.Engine) Target {
		return &recTarget{e: e, fail: errors.New("no spare")}
	}, reg)
	if v, _ := reg.CounterValue("faults.errors"); v != 1 {
		t.Fatalf("faults.errors = %d, want 1", v)
	}
	// The fault still counts as injected: the target handled it.
	if v, _ := reg.CounterValue("faults.injected"); v != 1 {
		t.Fatalf("faults.injected = %d, want 1", v)
	}
}

// TestCombineFirstHandlerWins routes each fault to the first target
// that claims it, mirroring how cluster and storage targets share a
// plan's id space.
func TestCombineFirstHandlerWins(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	crashOnly := &crashOnlyTarget{e: e}
	second := &recTarget{e: e}
	tgt := Combine(crashOnly, second)
	in := NewInjector(e, tgt, Scripted("c",
		Fault{At: sim.Second, Kind: Crash, Node: 3},
		Fault{At: 2 * sim.Second, Kind: DiskFail, Node: 2},
	), nil)
	in.Schedule()
	if err := e.RunUntil(sim.Minute); err != nil && !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(crashOnly.calls, []string{"1s crash 3"}) {
		t.Fatalf("first target saw %v", crashOnly.calls)
	}
	if !reflect.DeepEqual(second.calls, []string{"2s diskfail 2"}) {
		t.Fatalf("second target saw %v", second.calls)
	}
}

type crashOnlyTarget struct {
	BaseTarget
	e     *sim.Engine
	calls []string
}

func (c *crashOnlyTarget) CrashNode(n int) bool {
	c.calls = append(c.calls, fmt.Sprintf("%v crash %d", c.e.Now(), n))
	return true
}

// TestInjectorDeterministicExport runs the same plan twice on fresh
// engines and requires byte-identical metrics and trace exports — the
// engine-level half of the determinism gate (the CLI half lives in
// cmd/nowsim).
func TestInjectorDeterministicExport(t *testing.T) {
	run := func() (string, string) {
		reg := obs.NewRegistry()
		plan, err := Generate(11, DefaultRates(8, 10*sim.Minute))
		if err != nil {
			t.Fatal(err)
		}
		runPlan(t, plan, func(e *sim.Engine) Target { return &recTarget{e: e} }, reg)
		var m, tr bytes.Buffer
		if err := reg.WriteMetricsJSON(&m); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteTraceJSON(&tr); err != nil {
			t.Fatal(err)
		}
		return m.String(), tr.String()
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 {
		t.Fatal("same plan produced different metrics exports")
	}
	if t1 != t2 {
		t.Fatal("same plan produced different trace exports")
	}
}
