package faults

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/nowproject/now/internal/sim"
)

// Plan-file grammar (one fault per line; '#' starts a comment):
//
//	<at> crash <ws> [for <dur>]
//	<at> recover <ws>
//	<at> partition <a,b,c> [for <dur>]
//	<at> heal
//	<at> link <a> <b> [loss=<p>] [delay=<dur>] [for <dur>]
//	<at> linkclear <a> <b>
//	<at> diskfail <store>
//	<at> rebuild <failed> [<replacement>]
//	<at> mgrkill <idx>
//
// <at> and <dur> use Go duration syntax ("90s", "2.5ms"); <at> is
// virtual time from the start of the run. Fault.String emits this
// grammar, so plans round-trip.

// ParseFile reads a plan file (see the grammar above).
func ParseFile(path string) (Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return Plan{}, fmt.Errorf("faults: %w", err)
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return Plan{}, err
	}
	p.Name = path
	return p, nil
}

// ParseFaultLine reads one fault from its whitespace-split fields —
// exactly one plan-file line: [<at>, <kind>, args...]. It is the seam
// the scenario DSL (internal/scenario, docs/SCENARIOS.md) uses to embed
// fault lines in event scripts without duplicating the grammar.
func ParseFaultLine(fields []string) (Fault, error) {
	if len(fields) == 0 {
		return Fault{}, fmt.Errorf("empty fault line")
	}
	return parseFault(fields)
}

// Parse reads a plan from r in plan-file syntax.
func Parse(r io.Reader) (Plan, error) {
	var p Plan
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		f, err := parseFault(fields)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: line %d: %w", lineNo, err)
		}
		p.Faults = append(p.Faults, f)
	}
	if err := sc.Err(); err != nil {
		return Plan{}, fmt.Errorf("faults: %w", err)
	}
	p.normalize()
	return p, nil
}

func parseFault(fields []string) (Fault, error) {
	at, err := parseDur(fields[0])
	if err != nil {
		return Fault{}, fmt.Errorf("bad time %q: %w", fields[0], err)
	}
	if len(fields) < 2 {
		return Fault{}, fmt.Errorf("missing fault kind after %q", fields[0])
	}
	f := Fault{At: sim.Time(at), Peer: -1}
	kind := fields[1]
	args := fields[2:]

	// Peel a trailing "for <dur>" window off any fault line.
	if n := len(args); n >= 2 && args[n-2] == "for" {
		w, err := parseDur(args[n-1])
		if err != nil {
			return Fault{}, fmt.Errorf("bad window %q: %w", args[n-1], err)
		}
		f.For = w
		args = args[:n-2]
	}

	needInts := func(n int) ([]int, error) {
		if len(args) != n {
			return nil, fmt.Errorf("%s wants %d argument(s), got %d", kind, n, len(args))
		}
		out := make([]int, n)
		for i, a := range args {
			v, err := strconv.Atoi(a)
			if err != nil {
				return nil, fmt.Errorf("%s: bad node %q", kind, a)
			}
			out[i] = v
		}
		return out, nil
	}

	switch kind {
	case "crash", "recover", "diskfail", "mgrkill":
		ids, err := needInts(1)
		if err != nil {
			return Fault{}, err
		}
		f.Node = ids[0]
		switch kind {
		case "crash":
			f.Kind = Crash
		case "recover":
			f.Kind = Recover
		case "diskfail":
			f.Kind = DiskFail
		case "mgrkill":
			f.Kind = MgrKill
		}
	case "partition":
		if len(args) != 1 {
			return Fault{}, fmt.Errorf("partition wants one comma-joined node set")
		}
		for _, s := range strings.Split(args[0], ",") {
			v, err := strconv.Atoi(s)
			if err != nil {
				return Fault{}, fmt.Errorf("partition: bad node %q", s)
			}
			f.Set = append(f.Set, v)
		}
		f.Kind = Partition
	case "heal":
		if len(args) != 0 {
			return Fault{}, fmt.Errorf("heal takes no arguments")
		}
		f.Kind = Heal
	case "link", "linkclear":
		// link takes optional loss=/delay= after the two endpoints.
		rest := args
		if kind == "link" {
			for len(rest) > 2 {
				kv := rest[len(rest)-1]
				switch {
				case strings.HasPrefix(kv, "loss="):
					v, err := strconv.ParseFloat(kv[len("loss="):], 64)
					if err != nil {
						return Fault{}, fmt.Errorf("link: bad %q", kv)
					}
					f.Loss = v
				case strings.HasPrefix(kv, "delay="):
					d, err := parseDur(kv[len("delay="):])
					if err != nil {
						return Fault{}, fmt.Errorf("link: bad %q", kv)
					}
					f.Delay = d
				default:
					return Fault{}, fmt.Errorf("link: unknown option %q", kv)
				}
				rest = rest[:len(rest)-1]
			}
		}
		if len(rest) != 2 {
			return Fault{}, fmt.Errorf("%s wants two endpoints", kind)
		}
		a, err1 := strconv.Atoi(rest[0])
		b, err2 := strconv.Atoi(rest[1])
		if err1 != nil || err2 != nil {
			return Fault{}, fmt.Errorf("%s: bad endpoints %q %q", kind, rest[0], rest[1])
		}
		f.Node, f.Peer = a, b
		if kind == "link" {
			f.Kind = Link
		} else {
			f.Kind = LinkClear
		}
	case "rebuild":
		switch len(args) {
		case 1:
			v, err := strconv.Atoi(args[0])
			if err != nil {
				return Fault{}, fmt.Errorf("rebuild: bad node %q", args[0])
			}
			f.Node, f.Peer = v, -1
		case 2:
			ids, err := needInts(2)
			if err != nil {
				return Fault{}, err
			}
			f.Node, f.Peer = ids[0], ids[1]
		default:
			return Fault{}, fmt.Errorf("rebuild wants <failed> [<replacement>]")
		}
		f.Kind = Rebuild
	default:
		return Fault{}, fmt.Errorf("unknown fault kind %q", kind)
	}
	return f, nil
}

// ParseSpec resolves a CLI fault spec: either "seed:<n>[,key=val...]"
// (a generated plan; keys override DefaultRates fields) or a plan-file
// path. nodes and horizon shape generated plans.
//
// Rate keys: nodemttf, nodemttr, partmttf, partfor, linkmttf, linkfor,
// linkloss, linkdelay, diskmttf, rebuildafter, mgrmttf. Duration values
// use Go syntax; linkloss is a probability.
func ParseSpec(spec string, nodes int, horizon sim.Duration) (Plan, error) {
	if !strings.HasPrefix(spec, "seed:") {
		return ParseFile(spec)
	}
	parts := strings.Split(spec[len("seed:"):], ",")
	seed, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return Plan{}, fmt.Errorf("faults: bad seed %q: %w", parts[0], err)
	}
	r := DefaultRates(nodes, horizon)
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: bad rate %q (want key=value)", kv)
		}
		if k == "linkloss" {
			r.LinkLoss, err = strconv.ParseFloat(v, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: bad %q: %w", kv, err)
			}
			continue
		}
		d, err := parseDur(v)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: bad %q: %w", kv, err)
		}
		switch k {
		case "nodemttf":
			r.NodeMTTF = d
		case "nodemttr":
			r.NodeMTTR = d
		case "partmttf":
			r.PartitionMTTF = d
		case "partfor":
			r.PartitionFor = d
		case "linkmttf":
			r.LinkMTTF = d
		case "linkfor":
			r.LinkFor = d
		case "linkdelay":
			r.LinkDelay = d
		case "diskmttf":
			r.DiskMTTF = d
		case "rebuildafter":
			r.DiskRebuildAfter = d
		case "mgrmttf":
			r.MgrMTTF = d
		default:
			return Plan{}, fmt.Errorf("faults: unknown rate key %q", k)
		}
	}
	return Generate(seed, r)
}

// parseDur reads a Go-syntax duration into virtual time.
func parseDur(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return sim.Duration(d.Nanoseconds()), nil
}
