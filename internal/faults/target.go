package faults

import (
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/xfs"
)

// Target is the seam between the injector and the live stack. Each
// method applies one fault class and reports whether this target
// handled it (false lets a Combine sibling try, and counts as skipped
// if nobody does). Methods must be cheap and non-blocking except where
// a *sim.Proc is passed — those may block the transient proc the
// injector spawned for them.
type Target interface {
	// CrashNode fail-stops workstation n.
	CrashNode(n int) bool
	// RecoverNode reboots workstation n.
	RecoverNode(n int) bool
	// PartitionNodes cuts set off from the rest of the fabric.
	PartitionNodes(set []int) bool
	// Heal removes the partition.
	Heal() bool
	// LinkFault degrades the a↔b link.
	LinkFault(a, b int, loss float64, delay sim.Duration) bool
	// LinkClear restores the a↔b link.
	LinkClear(a, b int) bool
	// FailDisk fail-stops storage node n.
	FailDisk(n int) bool
	// RebuildDisk reconstructs failed onto replacement (-1 = pick a
	// spare). The error (when handled) surfaces rebuild refusals such
	// as swraid.ErrNotDegraded.
	RebuildDisk(p *sim.Proc, failed, replacement int) (bool, error)
	// KillManager crashes the host of manager idx, forcing failover.
	KillManager(p *sim.Proc, idx int) bool
}

// BaseTarget implements Target entirely as "not handled". Embed it in
// adapters that cover a subset of fault classes.
type BaseTarget struct{}

func (BaseTarget) CrashNode(int) bool                             { return false }
func (BaseTarget) RecoverNode(int) bool                           { return false }
func (BaseTarget) PartitionNodes([]int) bool                      { return false }
func (BaseTarget) Heal() bool                                     { return false }
func (BaseTarget) LinkFault(int, int, float64, sim.Duration) bool { return false }
func (BaseTarget) LinkClear(int, int) bool                        { return false }
func (BaseTarget) FailDisk(int) bool                              { return false }
func (BaseTarget) RebuildDisk(*sim.Proc, int, int) (bool, error)  { return false, nil }
func (BaseTarget) KillManager(*sim.Proc, int) bool                { return false }

// ClusterTarget wires node and network faults to a GLUnix cluster and
// its fabric. Node ids are fabric NodeIDs; node 0 hosts the master and
// is refused (crashing the resource manager is outside the paper's
// fail-over story — and outside this PR).
type ClusterTarget struct {
	BaseTarget
	C *glunix.Cluster
}

func (t ClusterTarget) nodes() int { return len(t.C.EPs) }

func (t ClusterTarget) CrashNode(n int) bool {
	if n <= 0 || n >= t.nodes() {
		return false
	}
	t.C.Crash(n)
	return true
}

func (t ClusterTarget) RecoverNode(n int) bool {
	if n <= 0 || n >= t.nodes() {
		return false
	}
	t.C.Recover(n)
	return true
}

func (t ClusterTarget) PartitionNodes(set []int) bool {
	ids := make([]netsim.NodeID, 0, len(set))
	for _, n := range set {
		if n < 0 || n >= t.nodes() {
			return false
		}
		ids = append(ids, netsim.NodeID(n))
	}
	if len(ids) == 0 {
		return false
	}
	t.C.Fab.Partition(ids)
	return true
}

func (t ClusterTarget) Heal() bool {
	t.C.Fab.Heal()
	return true
}

func (t ClusterTarget) LinkFault(a, b int, loss float64, delay sim.Duration) bool {
	if a < 0 || a >= t.nodes() || b < 0 || b >= t.nodes() || a == b {
		return false
	}
	t.C.Fab.SetLinkFault(netsim.NodeID(a), netsim.NodeID(b), loss, delay)
	return true
}

func (t ClusterTarget) LinkClear(a, b int) bool {
	if a < 0 || a >= t.nodes() || b < 0 || b >= t.nodes() || a == b {
		return false
	}
	t.C.Fab.ClearLinkFault(netsim.NodeID(a), netsim.NodeID(b))
	return true
}

// XFSTarget wires storage faults to an xFS installation: disk
// fail-stop, rebuild onto hot spares, manager kill/failover. It tracks
// which spares have been consumed so Rebuild with replacement -1 walks
// the spare pool deterministically.
type XFSTarget struct {
	BaseTarget
	S *xfs.System

	spares []int // unconsumed hot spares, in node order
}

// NewXFSTarget builds the adapter with the full spare pool.
func NewXFSTarget(s *xfs.System) *XFSTarget {
	return &XFSTarget{S: s, spares: s.SpareNodeIDs()}
}

// Spares returns the unconsumed hot-spare pool in consumption order.
// A control plane shares this target with its injector so that live
// rebuilds and plan rebuilds draw from one pool.
func (t *XFSTarget) Spares() []int { return t.spares }

func (t *XFSTarget) FailDisk(n int) bool {
	if n < 0 || n >= t.S.Nodes() {
		return false
	}
	t.S.CrashStorage(n)
	return true
}

func (t *XFSTarget) RebuildDisk(p *sim.Proc, failed, replacement int) (bool, error) {
	if failed < 0 || failed >= t.S.Nodes() {
		return false, nil
	}
	if replacement < 0 {
		if len(t.spares) == 0 {
			return true, errNoSpare
		}
		replacement = t.spares[0]
		t.spares = t.spares[1:]
	}
	return true, t.S.RecoverStorage(p, failed, replacement)
}

func (t *XFSTarget) KillManager(p *sim.Proc, idx int) bool {
	if idx < 0 || idx >= t.S.Managers() {
		return false
	}
	t.S.FailManager(p, idx)
	return true
}

// Combine layers targets: each fault goes to the first target that
// handles it, so a cluster adapter and a storage adapter compose into
// one stack-wide target.
func Combine(targets ...Target) Target { return combined(targets) }

type combined []Target

func (c combined) CrashNode(n int) bool {
	for _, t := range c {
		if t.CrashNode(n) {
			return true
		}
	}
	return false
}

func (c combined) RecoverNode(n int) bool {
	for _, t := range c {
		if t.RecoverNode(n) {
			return true
		}
	}
	return false
}

func (c combined) PartitionNodes(set []int) bool {
	for _, t := range c {
		if t.PartitionNodes(set) {
			return true
		}
	}
	return false
}

func (c combined) Heal() bool {
	for _, t := range c {
		if t.Heal() {
			return true
		}
	}
	return false
}

func (c combined) LinkFault(a, b int, loss float64, delay sim.Duration) bool {
	for _, t := range c {
		if t.LinkFault(a, b, loss, delay) {
			return true
		}
	}
	return false
}

func (c combined) LinkClear(a, b int) bool {
	for _, t := range c {
		if t.LinkClear(a, b) {
			return true
		}
	}
	return false
}

func (c combined) FailDisk(n int) bool {
	for _, t := range c {
		if t.FailDisk(n) {
			return true
		}
	}
	return false
}

func (c combined) RebuildDisk(p *sim.Proc, failed, replacement int) (bool, error) {
	for _, t := range c {
		if ok, err := t.RebuildDisk(p, failed, replacement); ok {
			return true, err
		}
	}
	return false, nil
}

func (c combined) KillManager(p *sim.Proc, idx int) bool {
	for _, t := range c {
		if t.KillManager(p, idx) {
			return true
		}
	}
	return false
}
