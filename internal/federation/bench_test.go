package federation

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/xfs"
)

// BenchmarkWANLeaseRecall measures one full conflicting-write cycle:
// remote write (lease grant with warmup) → home write (recall, dirty
// write-back through the barrier). Reports virtual µs per recall cycle
// alongside the wall-clock figure.
func BenchmarkWANLeaseRecall(b *testing.B) {
	const cycles = 16
	run := func() sim.Duration {
		f, err := New(Config{
			Clusters: []ClusterConfig{
				{Name: "home", XFSNodes: 6},
				{Name: "away", XFSNodes: 6},
			},
			WAN:   WANConfig{Latency: 2 * sim.Millisecond, BandwidthMbps: 45},
			FedFS: FSConfig{FileBlocks: 4, CacheBlocks: 64},
			Seed:  1,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		home, away := f.Cluster(0), f.Cluster(1)
		const file = xfs.FileID(2) // homed at cluster 0
		blk := make([]byte, 8192)
		var elapsed sim.Duration
		away.Engine().Spawn("away", func(p *sim.Proc) {
			for r := 0; r < cycles; r++ {
				p.Sleep(10 * sim.Millisecond)
				if err := away.FedFS().Write(p, file, 0, blk); err != nil {
					b.Error(err)
					return
				}
			}
		})
		home.Engine().Spawn("home", func(p *sim.Proc) {
			t0 := p.Now()
			for r := 0; r < cycles; r++ {
				p.Sleep(10 * sim.Millisecond)
				if err := home.FedFS().Write(p, file, 0, blk); err != nil {
					b.Error(err)
					return
				}
			}
			elapsed = sim.Duration(p.Now() - t0)
		})
		if err := f.Run(sim.Time(30 * sim.Second)); err != nil {
			b.Fatal(err)
		}
		return elapsed
	}
	var virt sim.Duration
	for i := 0; i < b.N; i++ {
		virt = run()
	}
	b.ReportMetric(virt.Microseconds()/cycles, "virtual-µs/recall-cycle")
}

// BenchmarkSpillPlacement measures the placement decision itself — the
// gossip-table scan plus the cost-model comparison — at federation
// scale (8 peers), the event-callback cost every Submit pays.
func BenchmarkSpillPlacement(b *testing.B) {
	clusters := make([]ClusterConfig, 8)
	for i := range clusters {
		clusters[i] = ClusterConfig{Workstations: 4}
	}
	f, err := New(Config{
		Clusters: clusters,
		WAN:      WANConfig{Latency: 5 * sim.Millisecond, BandwidthMbps: 45},
		Spill:    SpillConfig{Policy: SpillCostAware, StartEnabled: true},
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	sp := f.Cluster(0).sp
	for i := 1; i < len(clusters); i++ {
		sp.peers[i] = peerState{idle: 4 + i%3, queue: i % 4}
	}
	// A deep local queue: the cost-aware branch must actually compare.
	for i := 0; i < 6; i++ {
		f.Cluster(0).GL.Master.Submit(mkJob(100+i, 4, sim.Hour))
	}
	spec := JobSpec{ID: 1, NProcs: 6, Work: sim.Hour}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sp.pick(spec); !ok {
			b.Fatal("no candidate")
		}
	}
}
