// Package federation composes N independent cluster stacks — each its
// own GLUnix census, xFS installation and intra-building fabric — over a
// WAN-class fabric into one deterministic "NOW of NOWs".
//
// The engine layout is the whole design: the federation ALWAYS runs on a
// sim.ShardedEngine with Parts = number of clusters. Partitions are
// workload identity, workers are execution-only, so a federated run is
// byte-identical at every worker count for free — clusters are the
// natural partitions, and nothing inside a cluster ever touches another
// cluster's engine. The only cross-cluster channel is the WANFabric
// (wan.go), whose per-link latency floors the engine's conservative
// lookahead window.
//
// On top of the substrate live two wide-area services:
//
//   - hierarchical xFS (fedxfs.go): home-cluster managers stay
//     authoritative; remote clusters cache through write-back leases.
//   - GLUnix spill-over (spill.go): jobs a cluster cannot place locally
//     migrate to gossip-advertised idle peers when the cost model says
//     the WAN transfer is cheaper than the local queue.
//
// See docs/FEDERATION.md and DESIGN.md §14.
package federation

import (
	"fmt"

	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/xfs"
)

// ClusterConfig describes one member building.
type ClusterConfig struct {
	Name string
	// Workstations > 0 installs a GLUnix cluster (its own fabric,
	// master, daemons) on the cluster's engine.
	Workstations int
	// XFSNodes > 0 installs an xFS system (≥ 3 nodes).
	XFSNodes int
	// GLUnix, when non-nil, overrides the glunix template derived from
	// Workstations. XFS likewise for the file system.
	GLUnix *glunix.Config
	XFS    *xfs.Config
}

// Config shapes a federation.
type Config struct {
	Clusters []ClusterConfig
	WAN      WANConfig
	FedFS    FSConfig
	Spill    SpillConfig
	Seed     int64
	// Workers bounds the worker goroutines driving the partition
	// engines. Execution-only: results are byte-identical at any value.
	Workers int
}

// Cluster is one member's runtime state.
type Cluster struct {
	fed  *Federation
	id   int
	name string
	eng  *sim.Engine
	reg  *obs.Registry

	gw    *Gateway
	GL    *glunix.Cluster // nil without workstations
	FS    *xfs.System     // nil without xfs nodes
	fedfs *FedFS          // nil without any xfs in the federation
	sp    *spiller        // nil when spill is off
}

// Name returns the configured cluster name.
func (c *Cluster) Name() string { return c.name }

// ID returns the cluster's partition index.
func (c *Cluster) ID() int { return c.id }

// Engine returns the cluster's partition engine. Pre-Run setup and
// post-Run inspection only, plus code already running on it.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Registry returns the cluster's metrics registry.
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// Gateway returns the cluster's WAN endpoint.
func (c *Cluster) Gateway() *Gateway { return c.gw }

// FedFS returns the cluster's federated file-system tier (nil when no
// cluster in the federation runs xfs).
func (c *Cluster) FedFS() *FedFS { return c.fedfs }

// Federation is N clusters over one WAN.
type Federation struct {
	cfg      Config
	se       *sim.ShardedEngine
	fabric   *WANFabric
	clusters []*Cluster
	homes    []int // cluster ids running xfs, in index order
	blkBytes []int // per-cluster xfs block size (0 without xfs)
}

// New builds the federation: the sharded engine (Parts = clusters,
// Window = minimum WAN link latency), the WAN fabric, and every member
// stack. A WAN link with non-positive latency has no conservative
// lookahead to give the engine, so it cannot shard — that rejection
// wraps netsim.ErrUnsupportedSharding, same as the fabric-side cases.
func New(cfg Config) (*Federation, error) {
	n := len(cfg.Clusters)
	if n < 2 {
		return nil, fmt.Errorf("federation: need at least 2 clusters, got %d", n)
	}
	if cfg.WAN.BandwidthMbps <= 0 && cfg.WAN.Latency <= 0 && cfg.WAN.Links == nil {
		cfg.WAN = DefaultWANConfig()
	}
	window := sim.MaxTime
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			l := cfg.WAN.link(s, d)
			if l.Latency <= 0 {
				return nil, fmt.Errorf("federation: WAN link %d->%d latency %v gives the engine no lookahead: %w",
					s, d, l.Latency, netsim.ErrUnsupportedSharding)
			}
			if l.BandwidthMbps <= 0 {
				return nil, fmt.Errorf("federation: WAN link %d->%d bandwidth %v Mb/s", s, d, l.BandwidthMbps)
			}
			if sim.Duration(window) > l.Latency {
				window = sim.Time(l.Latency)
			}
		}
	}
	cfg.FedFS = cfg.FedFS.withDefaults()
	cfg.Spill = cfg.Spill.withDefaults()

	se := sim.NewShardedEngine(sim.ShardedConfig{
		Parts:   n,
		Window:  sim.Duration(window),
		Workers: cfg.Workers,
		Seed:    cfg.Seed,
	})
	f := &Federation{cfg: cfg, se: se, clusters: make([]*Cluster, n), blkBytes: make([]int, n)}
	f.fabric = newWANFabric(se, cfg.WAN, n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				se.SetLookahead(s, d, f.fabric.links[s][d].Latency)
			}
		}
	}

	for i, cc := range cfg.Clusters {
		c := &Cluster{fed: f, id: i, name: cc.Name, eng: se.Engine(i), reg: obs.NewRegistry()}
		if c.name == "" {
			c.name = fmt.Sprintf("cluster%d", i)
		}
		c.eng.Observe(c.reg)
		c.gw = newGateway(f, i, c.eng, c.reg)
		if cc.Workstations > 0 || cc.GLUnix != nil {
			gcfg := glunix.DefaultConfig(cc.Workstations)
			if cc.GLUnix != nil {
				gcfg = *cc.GLUnix
			}
			if gcfg.Seed == 0 {
				gcfg.Seed = cfg.Seed + int64(i)*7919
			}
			gcfg.Obs = c.reg
			gl, err := glunix.New(c.eng, gcfg)
			if err != nil {
				return nil, fmt.Errorf("federation: cluster %s: %w", c.name, err)
			}
			c.GL = gl
		}
		if cc.XFSNodes > 0 || cc.XFS != nil {
			xcfg := xfs.DefaultConfig(cc.XFSNodes)
			if cc.XFS != nil {
				xcfg = *cc.XFS
			}
			sys, err := xfs.New(c.eng, xcfg)
			if err != nil {
				return nil, fmt.Errorf("federation: cluster %s: %w", c.name, err)
			}
			sys.Instrument(c.reg)
			// The cluster fabric claims the net.* names when GLUnix is
			// present (same convention as the scenario runner).
			if c.GL == nil {
				sys.Fabric().Instrument(c.reg)
			}
			c.FS = sys
			f.homes = append(f.homes, i)
			f.blkBytes[i] = xcfg.BlockBytes
		}
		f.clusters[i] = c
	}
	if len(f.homes) > 0 {
		for _, c := range f.clusters {
			c.fedfs = newFedFS(c)
		}
	}
	if cfg.Spill.Policy != SpillOff {
		for _, c := range f.clusters {
			c.sp = newSpiller(c)
		}
	}
	// One OnDeliver per partition: the WAN is the only cross-partition
	// channel, so the gateway owns the hook outright.
	for _, c := range f.clusters {
		c := c
		se.OnDeliver(c.id, func(m sim.ShardMsg) {
			wm := m.Data.(*wanMsg)
			c.eng.AtArg(m.At, func(a any) { c.gw.deliver(a.(*wanMsg)) }, wm)
		})
	}
	return f, nil
}

// Clusters returns the number of member clusters.
func (f *Federation) Clusters() int { return len(f.clusters) }

// Cluster returns member i.
func (f *Federation) Cluster(i int) *Cluster { return f.clusters[i] }

// ClusterByName returns the member with the given name, or nil.
func (f *Federation) ClusterByName(name string) *Cluster {
	for _, c := range f.clusters {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Sharded returns the underlying engine, for wiring extra workload
// before Run.
func (f *Federation) Sharded() *sim.ShardedEngine { return f.se }

// WAN returns the wide-area fabric.
func (f *Federation) WAN() *WANFabric { return f.fabric }

// Run drives the federation to the horizon (or natural quiescence,
// whichever is first).
func (f *Federation) Run(horizon sim.Time) error { return f.se.Run(horizon) }

// Close tears the partition engines down deterministically.
func (f *Federation) Close() { f.se.Close() }

// Registry returns cluster i's metrics registry.
func (f *Federation) Registry(i int) *obs.Registry { return f.clusters[i].reg }

// Merged returns the whole-federation registry view (counters summed,
// spans interleaved deterministically).
func (f *Federation) Merged() *obs.Registry {
	regs := make([]*obs.Registry, len(f.clusters))
	for i, c := range f.clusters {
		regs[i] = c.reg
	}
	return obs.Merged(regs...)
}
