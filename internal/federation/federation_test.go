package federation

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/xfs"
)

// testConfig is a three-building federation: two with storage, one
// compute-only, lossy asymmetric WAN available on demand.
func testConfig(workers int, loss float64) Config {
	return Config{
		Clusters: []ClusterConfig{
			{Name: "soda", Workstations: 6, XFSNodes: 6},
			{Name: "cory", Workstations: 6, XFSNodes: 6},
			{Name: "evans", Workstations: 6},
		},
		WAN: WANConfig{
			Latency:       2 * sim.Millisecond,
			BandwidthMbps: 20,
			LossProb:      loss,
			Links: map[[2]int]Link{
				{0, 1}: {Latency: 3 * sim.Millisecond, BandwidthMbps: 10},
			},
		},
		FedFS: FSConfig{FileBlocks: 8, CacheBlocks: 128},
		Spill: SpillConfig{Policy: SpillCostAware, StartEnabled: true, GossipInterval: 200 * sim.Millisecond},
		Seed:  42,
	}
}

// wireWorkload puts cross-cluster traffic on every service: soda writes
// files homed at cory (write leases), cory reads files homed at soda
// (read leases + warm blocks), soda reads back cory's writes (recalls),
// and soda submits a gang too wide for itself (spill-over).
func wireWorkload(f *Federation) {
	soda, cory := f.Cluster(0), f.Cluster(1)
	blk := make([]byte, 8192) // xfs default block size
	for i := range blk {
		blk[i] = byte(i)
	}
	soda.Engine().Spawn("w.soda", func(p *sim.Proc) {
		p.Sleep(10 * sim.Millisecond)
		for file := xfs.FileID(1); file <= 3; file += 2 { // odd files home at cory
			for b := uint32(0); b < 6; b++ {
				if err := soda.FedFS().Write(p, file, b, blk); err != nil {
					soda.Engine().Fail(fmt.Errorf("soda write: %w", err))
				}
			}
		}
		if err := soda.FedFS().Sync(p); err != nil {
			soda.Engine().Fail(fmt.Errorf("soda sync: %w", err))
		}
	})
	cory.Engine().Spawn("w.cory", func(p *sim.Proc) {
		p.Sleep(20 * sim.Millisecond)
		for file := xfs.FileID(2); file <= 4; file += 2 { // even files home at soda
			for b := uint32(0); b < 6; b++ {
				if err := cory.FedFS().Write(p, file, b, blk); err != nil {
					cory.Engine().Fail(fmt.Errorf("cory seed write: %w", err))
				}
			}
		}
		p.Sleep(400 * sim.Millisecond)
		// Read back what soda wrote to cory-homed files: forces recalls
		// of soda's write leases through cory's reads.
		for file := xfs.FileID(1); file <= 3; file += 2 {
			for r := 0; r < 2; r++ {
				for b := uint32(0); b < 6; b++ {
					if _, err := cory.FedFS().Read(p, file, b); err != nil {
						cory.Engine().Fail(fmt.Errorf("cory read: %w", err))
					}
				}
			}
		}
	})
	// Spill: soda can place at most 6; a 6-wide gang arriving while one
	// is running must queue or spill.
	for i := 0; i < 3; i++ {
		i := i
		soda.Engine().At(sim.Time(600*sim.Millisecond)+sim.Time(i)*sim.Time(50*sim.Millisecond), func() {
			f.Submit(0, JobSpec{ID: 100 + i, NProcs: 6, Work: 2 * sim.Second, Grain: 100 * sim.Millisecond})
		})
	}
}

// runFingerprint runs the workload federation and returns a stable byte
// fingerprint: the merged metrics export plus per-cluster job stats.
func runFingerprint(t *testing.T, workers int, loss float64) []byte {
	t.Helper()
	f, err := New(testConfig(workers, loss))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wireWorkload(f)
	if err := f.Run(sim.Time(8 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteStable(&buf, f.Merged().Snapshot()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.Clusters(); i++ {
		c := f.Cluster(i)
		if c.GL != nil {
			fmt.Fprintf(&buf, "%s %+v\n", c.Name(), c.GL.Master.Stats())
		}
	}
	return buf.Bytes()
}

// TestFederatedDeterminismAcrossWorkers: clusters are the partitions —
// workers are execution-only, so every worker count and every repeat
// must produce byte-identical results.
func TestFederatedDeterminismAcrossWorkers(t *testing.T) {
	base := runFingerprint(t, 1, 0)
	if len(base) == 0 {
		t.Fatal("empty fingerprint")
	}
	for _, w := range []int{1, 2, 4} {
		got := runFingerprint(t, w, 0)
		if !bytes.Equal(base, got) {
			t.Fatalf("workers=%d diverged from workers=1:\n%s\n---\n%s", w, base, got)
		}
	}
}

// TestFederatedDeterminismUnderLoss: same property with WAN loss and
// the retry machinery active.
func TestFederatedDeterminismUnderLoss(t *testing.T) {
	base := runFingerprint(t, 1, 0.05)
	for _, w := range []int{2, 4} {
		if got := runFingerprint(t, w, 0.05); !bytes.Equal(base, got) {
			t.Fatalf("workers=%d diverged under loss", w)
		}
	}
}

// TestLeaseRecallUnderRetryChurn: two clusters ping-pong writes on one
// file over a lossy WAN. Every write must land (recall-before-
// conflicting-write), recalls and retries must both fire, and the home
// copy must end at the last writer's data.
func TestLeaseRecallUnderRetryChurn(t *testing.T) {
	cfg := Config{
		Clusters: []ClusterConfig{
			{Name: "home", XFSNodes: 6},
			{Name: "away", XFSNodes: 6},
		},
		WAN:   WANConfig{Latency: sim.Millisecond, BandwidthMbps: 45, LossProb: 0.15},
		FedFS: FSConfig{FileBlocks: 4, CacheBlocks: 64},
		Seed:  7,
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	home, away := f.Cluster(0), f.Cluster(1)
	const file = xfs.FileID(2) // homes at cluster 0
	mk := func(tag byte, round int) []byte {
		b := make([]byte, 8192)
		for i := range b {
			b[i] = tag ^ byte(round)
		}
		return b
	}
	const rounds = 6
	// Interleave by time: away writes at odd 10ms ticks, home at even.
	away.Engine().Spawn("away", func(p *sim.Proc) {
		for r := 0; r < rounds; r++ {
			p.Sleep(20 * sim.Millisecond)
			if err := away.FedFS().Write(p, file, 0, mk('A', r)); err != nil {
				t.Errorf("away write %d: %v", r, err)
			}
		}
		if err := away.FedFS().Sync(p); err != nil {
			t.Errorf("away sync: %v", err)
		}
	})
	home.Engine().Spawn("home", func(p *sim.Proc) {
		for r := 0; r < rounds; r++ {
			p.Sleep(23 * sim.Millisecond)
			if err := home.FedFS().Write(p, file, 0, mk('H', r)); err != nil {
				t.Errorf("home write %d: %v", r, err)
			}
		}
		// Home's own last write (at 23ms ticks) lands after away's (at
		// 20ms ticks), and every home write recalls away's lease first
		// — so after the churn settles the authoritative copy is home's
		// final round, with away's rounds forced through the write-back
		// barrier in between.
		p.Sleep(2 * sim.Second)
		got, err := home.FedFS().Read(p, file, 0)
		if err != nil {
			t.Errorf("final read: %v", err)
			return
		}
		want := mk('H', rounds-1)
		if !bytes.Equal(got, want) {
			t.Errorf("home copy = %x..., want %x...", got[:4], want[:4])
		}
	})
	if err := f.Run(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	snap := f.Merged()
	recalls, _ := snap.CounterValue("fed.lease.recalls")
	if recalls == 0 {
		t.Error("no lease recalls despite conflicting writers")
	}
	retries, _ := snap.CounterValue("wan.call.retries")
	drops, _ := snap.CounterValue("wan.drops")
	if drops == 0 || retries == 0 {
		t.Errorf("churn not exercised: drops=%d retries=%d", drops, retries)
	}
	wbs, _ := snap.CounterValue("fed.lease.writeback.blocks")
	if wbs == 0 {
		t.Error("no write-back blocks crossed the WAN")
	}
}

// TestSpillPlacementDecisions drives the placer's decision table
// directly: policy, peer idleness and the cost model each gate a spill.
func TestSpillPlacementDecisions(t *testing.T) {
	build := func(policy SpillPolicy) (*Federation, *spiller) {
		cfg := testConfig(1, 0)
		cfg.Spill = SpillConfig{Policy: policy, StartEnabled: true}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(f.Close)
		return f, f.Cluster(0).sp
	}

	t.Run("local-when-idle-capacity", func(t *testing.T) {
		_, sp := build(SpillCostAware)
		sp.peers[1] = peerState{idle: 6}
		sp.place(JobSpec{ID: 1, NProcs: 2, Work: sim.Second})
		if got := sp.m.shipped.Value(); got != 0 {
			t.Fatalf("shipped %d jobs with local capacity free", got)
		}
		if sp.m.kept.Value() != 1 {
			t.Fatal("job not kept locally")
		}
	})

	t.Run("no-peer-wide-enough", func(t *testing.T) {
		_, sp := build(SpillWhenIdle)
		sp.peers[1] = peerState{idle: 2}
		sp.peers[2] = peerState{idle: 3}
		sp.place(JobSpec{ID: 2, NProcs: 30, Work: sim.Second})
		if sp.m.shipped.Value() != 0 {
			t.Fatal("shipped a gang no peer can hold")
		}
	})

	t.Run("when-idle-ships-regardless-of-cost", func(t *testing.T) {
		_, sp := build(SpillWhenIdle)
		sp.peers[1] = peerState{idle: 6}
		// NProcs beyond every peer's capacity: stays local even when idle.
		sp.place(JobSpec{ID: 3, NProcs: 30, Work: sim.Nanosecond})
		if sp.m.shipped.Value() != 0 {
			t.Fatal("shipped past peer capacity")
		}
		// The 30-wide gang is now stuck in the local queue; a 6-wide
		// arrival sees the backlog and ships even though 6 machines are
		// instantaneously idle (placement is FCFS — it would wait).
		sp.place(JobSpec{ID: 4, NProcs: 6, Work: sim.Nanosecond})
		if sp.m.shipped.Value() != 1 {
			t.Fatalf("when-idle shipped %d behind a stuck queue, want 1", sp.m.shipped.Value())
		}
		sp.peers[1] = peerState{idle: 40}
		sp.place(JobSpec{ID: 5, NProcs: 12, Work: sim.Nanosecond})
		if sp.m.shipped.Value() != 2 {
			t.Fatalf("when-idle shipped %d, want 2", sp.m.shipped.Value())
		}
	})

	t.Run("cost-aware-keeps-cheap-queue", func(t *testing.T) {
		_, sp := build(SpillCostAware)
		sp.peers[1] = peerState{idle: 40}
		// Local queue empty → local wait 0 → remote can never undercut.
		sp.place(JobSpec{ID: 6, NProcs: 12, Work: sim.Second})
		if sp.m.shipped.Value() != 0 {
			t.Fatal("cost-aware shipped against a free local queue")
		}
	})

	t.Run("cost-aware-ships-past-long-queue", func(t *testing.T) {
		f, sp := build(SpillCostAware)
		sp.peers[1] = peerState{idle: 40}
		// Stuff the local queue so the modelled wait dwarfs the WAN
		// transfer (image 32 MiB ×12 at 20 Mb/s ≈ 161 s... too big —
		// long jobs make the local wait still longer).
		for i := 0; i < 8; i++ {
			f.Cluster(0).GL.Master.Submit(mkJob(1000+i, 6, sim.Hour))
		}
		sp.place(JobSpec{ID: 7, NProcs: 12, Work: sim.Hour})
		if sp.m.shipped.Value() != 1 {
			t.Fatalf("cost-aware kept a job behind an 8-hour queue (shipped=%d)", sp.m.shipped.Value())
		}
	})

	t.Run("deterministic-tie-break-lowest-id", func(t *testing.T) {
		f, sp := build(SpillWhenIdle)
		sp.peers[2] = peerState{idle: 40}
		sp.peers[1] = peerState{idle: 40}
		for i := 0; i < 4; i++ {
			f.Cluster(0).GL.Master.Submit(mkJob(2000+i, 6, sim.Hour))
		}
		sp.place(JobSpec{ID: 8, NProcs: 12, Work: sim.Hour})
		if sp.m.shipped.Value() != 1 {
			t.Fatal("no spill")
		}
		// Symmetric default links: cluster 1 and 2 cost the same from
		// cluster 0? Link 0→1 is overridden slower in testConfig, so
		// the cheaper cluster 2 must win.
		if got := sp.peers[1]; got.idle != 40 {
			t.Fatal("peer table mutated")
		}
	})
}

func mkJob(id, nprocs int, work sim.Duration) *glunix.Job {
	return glunix.NewJob(id, nprocs, work, 100*sim.Millisecond)
}

// TestErrUnsupportedShardingFederation: a zero-latency WAN link gives
// the engine no lookahead window; New must reject it with the typed
// sentinel shared with netsim.
func TestErrUnsupportedShardingFederation(t *testing.T) {
	cfg := testConfig(1, 0)
	cfg.WAN.Links = map[[2]int]Link{}
	cfg.WAN.Latency = 0
	cfg.WAN.BandwidthMbps = 45
	_, err := New(cfg)
	if err == nil {
		t.Fatal("zero-latency WAN accepted")
	}
	if !errors.Is(err, netsim.ErrUnsupportedSharding) {
		t.Fatalf("error %v does not wrap netsim.ErrUnsupportedSharding", err)
	}
}

// TestWANAsymmetricLinks: per-direction overrides must price each
// direction independently.
func TestWANAsymmetricLinks(t *testing.T) {
	f, err := New(testConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := f.WAN()
	if w.links[0][1].Latency != 3*sim.Millisecond || w.links[1][0].Latency != 2*sim.Millisecond {
		t.Fatalf("override leaked across directions: %v / %v", w.links[0][1].Latency, w.links[1][0].Latency)
	}
	if s01, s10 := w.Ser(0, 1, 1<<20), w.Ser(1, 0, 1<<20); s01 <= s10 {
		t.Fatalf("10 Mb/s direction not slower than 20 Mb/s: %v vs %v", s01, s10)
	}
}
