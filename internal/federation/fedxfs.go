// Hierarchical xFS: the cross-cluster cooperative-cache tier.
//
// Every file has one home cluster (HomeOf: FileID mod the xfs-bearing
// members) whose xFS managers stay authoritative — all storage lives
// there, and every cross-cluster byte eventually lands there. Remote
// clusters cache through WRITE-BACK LEASES:
//
//   - A read lease is granted with a whole-file warmup: the grant reply
//     carries up to FileBlocks blocks, so the warmup cost is
//     bandwidth-bound and latency-independent — the term that makes
//     caching beat per-read re-fetch once WAN latency grows (the WA1
//     study sweeps exactly this trade).
//   - A write lease makes the holder's writes local: dirty blocks
//     accumulate at the holder and flow home on Sync or recall.
//   - RECALL-BEFORE-CONFLICTING-WRITE: before the home grants a write
//     lease (or serves a home-local write), it recalls every other
//     holder's lease; recall replies carry the holder's dirty blocks,
//     which the home writes through its own xFS client before the new
//     grant proceeds. The home never exposes data that bypasses a
//     live remote writer.
//
// Locking: the home serializes conflicting grant/recall/fetch sequences
// per file with a cooperative busy-lock. Holders never block in the
// recall handler (invalidate + hand over dirty state synchronously), so
// the home→holder call graph is acyclic and deadlock-free even when the
// holder is itself blocked on a lease request.
package federation

import (
	"fmt"
	"sort"

	"github.com/nowproject/now/internal/lru"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/xfs"
)

// FSConfig shapes the federated cache tier.
type FSConfig struct {
	// FileBlocks is the whole-file warmup size: a lease grant ships this
	// many blocks (fewer if the file is shorter).
	FileBlocks int
	// CacheBlocks bounds each cluster's federated block cache.
	CacheBlocks int
	// LocalCopy is the cost of serving one block from the federated
	// cache (a local memory copy).
	LocalCopy sim.Duration
	// NoCache disables the lease tier entirely: every remote read is a
	// single-block WAN fetch from home. The WA1 baseline.
	NoCache bool
}

func (c FSConfig) withDefaults() FSConfig {
	if c.FileBlocks <= 0 {
		c.FileBlocks = 64
	}
	if c.CacheBlocks <= 0 {
		c.CacheBlocks = 4096
	}
	if c.LocalCopy <= 0 {
		c.LocalCopy = 30 * sim.Microsecond
	}
	return c
}

// WAN handler ids of the federated file system (gateway namespace).
const (
	hLeaseRead uint8 = 0x10 + iota
	hLeaseWrite
	hFetchBlk
	hRecall
	hWriteBack
)

const (
	leaseRead = iota + 1
	leaseWrite
)

// ctlBytes is the wire size of a control-only request or reply.
const ctlBytes = 32

type blockKey struct {
	f   xfs.FileID
	blk uint32
}

type leaseReq struct{ F xfs.FileID }

type fetchReq struct {
	F   xfs.FileID
	Blk uint32
}

type wbBlock struct {
	Blk  uint32
	Data []byte
}

type leaseGrant struct {
	Mode   int
	Blocks []wbBlock // whole-file warmup, block-id ascending
}

type writeBack struct {
	F      xfs.FileID
	Blocks []wbBlock
}

type clientLease struct {
	mode  int
	valid bool
}

// dirEntry is the home-side lease directory record for one file.
type dirEntry struct {
	readers map[int]bool
	writer  int // -1 when none
	busy    bool
	sig     *sim.Signal
}

func (ent *dirEntry) lock(p *sim.Proc) {
	for ent.busy {
		ent.sig.Wait(p)
	}
	ent.busy = true
}

func (ent *dirEntry) unlock() {
	ent.busy = false
	ent.sig.Broadcast()
}

type fedfsMetrics struct {
	grants, recalls, wbBlocks    *obs.Counter
	hits, misses, fetches, syncs *obs.Counter
}

// FedFS is one cluster's view of the federated file system: the client
// tier (lease cache) plus, for files homed here, the authoritative
// lease directory.
type FedFS struct {
	c   *Cluster
	cfg FSConfig
	m   fedfsMetrics

	// client side
	leases map[xfs.FileID]*clientLease
	cache  *lru.Cache[blockKey, []byte]
	dirty  map[xfs.FileID]map[uint32][]byte

	// home side
	dir map[xfs.FileID]*dirEntry
}

func newFedFS(c *Cluster) *FedFS {
	cfg := c.fed.cfg.FedFS
	fs := &FedFS{
		c:      c,
		cfg:    cfg,
		leases: map[xfs.FileID]*clientLease{},
		cache:  lru.New[blockKey, []byte](cfg.CacheBlocks),
		dirty:  map[xfs.FileID]map[uint32][]byte{},
		dir:    map[xfs.FileID]*dirEntry{},
	}
	fs.m = fedfsMetrics{
		grants:   c.reg.Counter("fed.lease.grants"),
		recalls:  c.reg.Counter("fed.lease.recalls"),
		wbBlocks: c.reg.Counter("fed.lease.writeback.blocks"),
		hits:     c.reg.Counter("fed.cache.hits"),
		misses:   c.reg.Counter("fed.cache.misses"),
		fetches:  c.reg.Counter("fed.fetch.remote"),
		syncs:    c.reg.Counter("fed.sync.calls"),
	}
	c.gw.HandleCall(hLeaseRead, fs.onLease(leaseRead))
	c.gw.HandleCall(hLeaseWrite, fs.onLease(leaseWrite))
	c.gw.HandleCall(hFetchBlk, fs.onFetch)
	c.gw.HandleCall(hRecall, fs.onRecall)
	c.gw.HandleCall(hWriteBack, fs.onWriteBack)
	return fs
}

// HomeOf maps a file to its authoritative cluster.
func (fs *FedFS) HomeOf(f xfs.FileID) int {
	homes := fs.c.fed.homes
	return homes[int(uint32(f))%len(homes)]
}

func (fs *FedFS) local() *xfs.Client { return fs.c.FS.Client(0) }

// grantBytes is the reply-size budget of a lease grant from home h: the
// whole-file warmup plus framing.
func (fs *FedFS) grantBytes(h int) int {
	return fs.cfg.FileBlocks*fs.c.fed.blkBytes[h] + ctlBytes
}

// Read returns one block of f, wherever it lives: the home cluster's
// xFS directly when f is homed here, the federated cache (lease + warm
// blocks) otherwise.
func (fs *FedFS) Read(p *sim.Proc, f xfs.FileID, blk uint32) ([]byte, error) {
	home := fs.HomeOf(f)
	if home == fs.c.id {
		fs.recallForLocal(p, f, false)
		return fs.local().Read(p, f, blk)
	}
	if fs.cfg.NoCache {
		fs.m.fetches.Inc()
		rep, err := fs.c.gw.Call(p, home, hFetchBlk, fetchReq{F: f, Blk: blk}, ctlBytes,
			fs.c.fed.blkBytes[home]+ctlBytes)
		if err != nil {
			return nil, err
		}
		return fs.asBlock(rep)
	}
	key := blockKey{f, blk}
	for try := 0; ; try++ {
		if lz := fs.leases[f]; lz != nil && lz.valid {
			if data, ok := fs.cache.Get(key); ok {
				fs.m.hits.Inc()
				p.Sleep(fs.cfg.LocalCopy)
				return append([]byte(nil), data...), nil
			}
			// Valid lease, block cold (beyond the warmup or evicted):
			// single-block fetch under the standing lease.
			fs.m.misses.Inc()
			fs.m.fetches.Inc()
			rep, err := fs.c.gw.Call(p, home, hFetchBlk, fetchReq{F: f, Blk: blk}, ctlBytes,
				fs.c.fed.blkBytes[home]+ctlBytes)
			if err != nil {
				return nil, err
			}
			data, err := fs.asBlock(rep)
			if err != nil {
				return nil, err
			}
			fs.cache.Put(key, append([]byte(nil), data...))
			return data, nil
		}
		if try >= 3 {
			return nil, fmt.Errorf("federation: read %d/%d: lease churn, giving up", f, blk)
		}
		fs.m.misses.Inc()
		if err := fs.acquire(p, f, leaseRead); err != nil {
			return nil, err
		}
	}
}

// Write stores one block of f. Remote writers need a write lease — the
// home recalls every conflicting holder before granting it — after
// which writes are local and dirty until Sync or recall.
func (fs *FedFS) Write(p *sim.Proc, f xfs.FileID, blk uint32, data []byte) error {
	home := fs.HomeOf(f)
	if home == fs.c.id {
		fs.recallForLocal(p, f, true)
		return fs.local().Write(p, f, blk, data)
	}
	for try := 0; ; try++ {
		if lz := fs.leases[f]; lz != nil && lz.valid && lz.mode == leaseWrite {
			p.Sleep(fs.cfg.LocalCopy)
			cp := append([]byte(nil), data...)
			fs.cache.Put(blockKey{f, blk}, cp)
			d := fs.dirty[f]
			if d == nil {
				d = map[uint32][]byte{}
				fs.dirty[f] = d
			}
			d[blk] = cp
			return nil
		}
		if try >= 3 {
			return fmt.Errorf("federation: write %d/%d: lease churn, giving up", f, blk)
		}
		if err := fs.acquire(p, f, leaseWrite); err != nil {
			return err
		}
	}
}

// Sync writes every dirty block back to its home cluster.
func (fs *FedFS) Sync(p *sim.Proc) error {
	files := make([]xfs.FileID, 0, len(fs.dirty))
	for f := range fs.dirty {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
	for _, f := range files {
		wb := writeBack{F: f, Blocks: fs.takeDirty(f)}
		if len(wb.Blocks) == 0 {
			continue
		}
		fs.m.syncs.Inc()
		n := 0
		for _, b := range wb.Blocks {
			n += len(b.Data)
		}
		if _, err := fs.c.gw.Call(p, fs.HomeOf(f), hWriteBack, wb, n+ctlBytes, ctlBytes); err != nil {
			return err
		}
	}
	return nil
}

// acquire asks f's home for a lease; the grant's warm blocks land in
// the federated cache.
func (fs *FedFS) acquire(p *sim.Proc, f xfs.FileID, mode int) error {
	h := hLeaseRead
	if mode == leaseWrite {
		h = hLeaseWrite
	}
	home := fs.HomeOf(f)
	rep, err := fs.c.gw.Call(p, home, h, leaseReq{F: f}, ctlBytes, fs.grantBytes(home))
	if err != nil {
		return err
	}
	g, ok := rep.(leaseGrant)
	if !ok {
		return fmt.Errorf("federation: bad lease grant %T", rep)
	}
	for _, b := range g.Blocks {
		fs.cache.Put(blockKey{f, b.Blk}, b.Data)
	}
	fs.leases[f] = &clientLease{mode: g.Mode, valid: true}
	return nil
}

func (fs *FedFS) asBlock(rep any) ([]byte, error) {
	data, ok := rep.([]byte)
	if !ok {
		return nil, fmt.Errorf("federation: remote read failed: %v", rep)
	}
	return data, nil
}

// takeDirty removes and returns f's dirty blocks, block-id ascending.
func (fs *FedFS) takeDirty(f xfs.FileID) []wbBlock {
	d := fs.dirty[f]
	if len(d) == 0 {
		delete(fs.dirty, f)
		return nil
	}
	blks := make([]uint32, 0, len(d))
	for b := range d {
		blks = append(blks, b)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	out := make([]wbBlock, len(blks))
	for i, b := range blks {
		out[i] = wbBlock{Blk: b, Data: d[b]}
	}
	delete(fs.dirty, f)
	return out
}

// ---- home side ----

func (fs *FedFS) entry(f xfs.FileID) *dirEntry {
	ent := fs.dir[f]
	if ent == nil {
		ent = &dirEntry{readers: map[int]bool{}, writer: -1, sig: sim.NewSignal(fs.c.eng, "fed.dir")}
		fs.dir[f] = ent
	}
	return ent
}

// onLease serves a grant request: recall whatever conflicts, warm the
// file from the local xFS, record the holder.
func (fs *FedFS) onLease(mode int) CallHandler {
	return func(p *sim.Proc, from int, arg any) (any, int) {
		f := arg.(leaseReq).F
		ent := fs.entry(f)
		ent.lock(p)
		defer ent.unlock()
		span := fs.c.reg.StartSpan("fed.lease.grant", from)
		defer fs.c.reg.EndSpan(span)
		if mode == leaseWrite {
			fs.recallConflicting(p, f, ent, from, true)
			ent.writer = from
			ent.readers = map[int]bool{}
		} else {
			fs.recallConflicting(p, f, ent, from, false)
			ent.readers[from] = true
		}
		warm, bytes := fs.warm(p, f)
		fs.m.grants.Inc()
		fs.c.reg.Annotate(span, fmt.Sprintf("file=%d mode=%d warm=%d", f, mode, len(warm)))
		return leaseGrant{Mode: mode, Blocks: warm}, bytes + ctlBytes
	}
}

// recallConflicting recalls, in cluster-id order, every holder whose
// lease conflicts with the new request: the writer always, and for a
// write grant every reader too. The requester itself is exempt (lease
// upgrade), which keeps the call graph acyclic.
func (fs *FedFS) recallConflicting(p *sim.Proc, f xfs.FileID, ent *dirEntry, from int, write bool) {
	var targets []int
	if ent.writer >= 0 && ent.writer != from {
		targets = append(targets, ent.writer)
	}
	if write {
		for r := range ent.readers {
			if r != from && r != ent.writer {
				targets = append(targets, r)
			}
		}
	}
	sort.Ints(targets)
	for _, t := range targets {
		fs.recallFrom(p, f, t)
		if ent.writer == t {
			ent.writer = -1
		}
		delete(ent.readers, t)
	}
}

// recallFrom pulls cluster t's lease on f and writes its dirty blocks
// through the home xFS before returning — the recall-before-
// conflicting-write barrier.
func (fs *FedFS) recallFrom(p *sim.Proc, f xfs.FileID, t int) {
	span := fs.c.reg.StartSpan("fed.lease.recall", t)
	defer fs.c.reg.EndSpan(span)
	fs.m.recalls.Inc()
	// The recall reply can carry every dirty block of the file.
	rep, err := fs.c.gw.Call(p, t, hRecall, leaseReq{F: f}, ctlBytes, fs.grantBytes(fs.c.id))
	if err != nil {
		// The holder is unreachable past every retry: the lease is
		// fenced (holder side invalidates on recall receipt; a holder
		// that never heard us keeps only stale reads). Proceed.
		fs.c.reg.Annotate(span, "recall lost: "+err.Error())
		return
	}
	wb, _ := rep.(writeBack)
	for _, b := range wb.Blocks {
		if err := fs.local().Write(p, f, b.Blk, b.Data); err != nil {
			fs.c.eng.Fail(fmt.Errorf("federation: write-back %d/%d: %w", f, b.Blk, err))
			return
		}
		fs.m.wbBlocks.Inc()
	}
	if len(wb.Blocks) > 0 {
		if err := fs.local().Sync(p); err != nil {
			fs.c.eng.Fail(fmt.Errorf("federation: write-back sync %d: %w", f, err))
		}
	}
}

// recallForLocal fences remote holders before a home-local access: the
// writer for reads, everyone for writes.
func (fs *FedFS) recallForLocal(p *sim.Proc, f xfs.FileID, write bool) {
	ent := fs.dir[f]
	if ent == nil {
		return
	}
	if !write && ent.writer < 0 {
		return
	}
	ent.lock(p)
	defer ent.unlock()
	fs.recallConflicting(p, f, ent, fs.c.id, write)
}

// warm reads up to FileBlocks blocks of f from the home xFS — the
// whole-file warmup a grant ships.
func (fs *FedFS) warm(p *sim.Proc, f xfs.FileID) ([]wbBlock, int) {
	var out []wbBlock
	bytes := 0
	for blk := uint32(0); int(blk) < fs.cfg.FileBlocks; blk++ {
		data, err := fs.local().Read(p, f, blk)
		if err != nil {
			break // past the end of the file
		}
		out = append(out, wbBlock{Blk: blk, Data: data})
		bytes += len(data)
	}
	return out, bytes
}

// onFetch serves a single-block remote read.
func (fs *FedFS) onFetch(p *sim.Proc, from int, arg any) (any, int) {
	req := arg.(fetchReq)
	ent := fs.entry(req.F)
	ent.lock(p)
	defer ent.unlock()
	data, err := fs.local().Read(p, req.F, req.Blk)
	if err != nil {
		return fmt.Sprintf("fetch %d/%d: %v", req.F, req.Blk, err), ctlBytes
	}
	return data, len(data) + ctlBytes
}

// onRecall is the holder side of a recall. It must not block: it
// invalidates the lease and surrenders the dirty state synchronously,
// so a holder that is itself waiting on the home can still be recalled.
func (fs *FedFS) onRecall(p *sim.Proc, from int, arg any) (any, int) {
	f := arg.(leaseReq).F
	delete(fs.leases, f)
	wb := writeBack{F: f, Blocks: fs.takeDirty(f)}
	n := 0
	for _, b := range wb.Blocks {
		n += len(b.Data)
	}
	return wb, n + ctlBytes
}

// onWriteBack applies a holder's Sync at the home.
func (fs *FedFS) onWriteBack(p *sim.Proc, from int, arg any) (any, int) {
	wb := arg.(writeBack)
	ent := fs.entry(wb.F)
	ent.lock(p)
	defer ent.unlock()
	for _, b := range wb.Blocks {
		if err := fs.local().Write(p, wb.F, b.Blk, b.Data); err != nil {
			return err.Error(), ctlBytes
		}
		fs.m.wbBlocks.Inc()
	}
	if err := fs.local().Sync(p); err != nil {
		return err.Error(), ctlBytes
	}
	return leaseGrant{}, ctlBytes
}
