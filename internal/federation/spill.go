// GLUnix job spill-over: when a cluster cannot place a gang locally,
// the federation ships it to a remote idle cluster — if the cost model
// says the WAN transfer beats the local queue.
//
// Peer state travels by GOSSIP, not probes: each spill-enabled cluster
// periodically one-way-broadcasts its idle count and queue length, and
// placers read only their own cluster's (possibly stale) view. Nothing
// ever reads another partition's live state, so the decision is a pure
// function of the local event stream — deterministic at any worker
// count, and Submit stays callable from any event callback (a one-way
// WAN send is horizon arithmetic, no blocking).
package federation

import (
	"fmt"
	"sort"

	"github.com/nowproject/now/internal/costmodel"
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

// SpillPolicy selects how jobs may cross the WAN.
type SpillPolicy int

const (
	// SpillOff never ships jobs; Submit always queues locally.
	SpillOff SpillPolicy = iota
	// SpillWhenIdle ships whenever the local cluster cannot start the
	// job now and some peer advertises enough idle workstations.
	SpillWhenIdle
	// SpillCostAware ships only when the modelled WAN cost (image
	// transfer + round trip + cache warmup) undercuts the modelled
	// local queue delay. Reuses internal/costmodel.
	SpillCostAware
)

func (p SpillPolicy) String() string {
	switch p {
	case SpillWhenIdle:
		return "when-idle"
	case SpillCostAware:
		return "cost-aware"
	default:
		return "off"
	}
}

// SpillConfig shapes the spill-over service.
type SpillConfig struct {
	Policy SpillPolicy
	// GossipInterval between peer-state broadcasts.
	GossipInterval sim.Duration
	// LeaseWarmup is the fixed federated-cache warmup charge in the
	// remote-cost model.
	LeaseWarmup sim.Duration
	// StartEnabled arms spilling from t=0; otherwise a scenario (or the
	// embedder) flips it with Federation.SetSpill.
	StartEnabled bool
}

func (c SpillConfig) withDefaults() SpillConfig {
	if c.GossipInterval <= 0 {
		c.GossipInterval = 500 * sim.Millisecond
	}
	if c.LeaseWarmup <= 0 {
		c.LeaseWarmup = 5 * sim.Millisecond
	}
	return c
}

// JobSpec is the migratable description of a gang job. It crosses the
// WAN by value; the receiver constructs the glunix.Job.
type JobSpec struct {
	ID     int
	NProcs int
	Work   sim.Duration
	Grain  sim.Duration
}

// WAN handler ids of the spill service.
const (
	hGossip uint8 = 0x20 + iota
	hSpill
)

type gossipMsg struct {
	Idle  int
	Queue int
}

type peerState struct {
	idle  int
	queue int
	seen  sim.Time
}

type spillMetrics struct {
	shipped, received, kept *obs.Counter
	gossips                 *obs.Counter
}

// spiller is one cluster's spill service.
type spiller struct {
	c       *Cluster
	cfg     SpillConfig
	enabled bool
	peers   map[int]peerState
	m       spillMetrics
}

func newSpiller(c *Cluster) *spiller {
	sp := &spiller{
		c:       c,
		cfg:     c.fed.cfg.Spill,
		enabled: c.fed.cfg.Spill.StartEnabled,
		peers:   map[int]peerState{},
	}
	sp.m = spillMetrics{
		shipped:  c.reg.Counter("fed.spill.jobs"),
		received: c.reg.Counter("fed.spill.received"),
		kept:     c.reg.Counter("fed.spill.kept"),
		gossips:  c.reg.Counter("fed.gossip.sent"),
	}
	c.gw.HandleCast(hGossip, sp.onGossip)
	c.gw.HandleCast(hSpill, sp.onSpill)
	if c.GL != nil {
		c.eng.Spawn(fmt.Sprintf("fed.gossip.%s", c.name), sp.gossipLoop)
	}
	return sp
}

func (sp *spiller) gossipLoop(p *sim.Proc) {
	for {
		p.Sleep(sp.cfg.GossipInterval)
		sp.m.gossips.Inc()
		msg := gossipMsg{Idle: sp.c.GL.Master.AvailableCount(), Queue: sp.c.GL.Master.QueueLen()}
		for _, peer := range sp.c.fed.clusters {
			if peer.id != sp.c.id && peer.GL != nil {
				sp.c.gw.Cast(peer.id, hGossip, msg, ctlBytes)
			}
		}
	}
}

func (sp *spiller) onGossip(from int, arg any) {
	g := arg.(gossipMsg)
	sp.peers[from] = peerState{idle: g.Idle, queue: g.Queue, seen: sp.c.eng.Now()}
}

func (sp *spiller) onSpill(from int, arg any) {
	spec := arg.(JobSpec)
	sp.m.received.Inc()
	sp.c.GL.Master.Submit(glunix.NewJob(spec.ID, spec.NProcs, spec.Work, spec.Grain))
}

// place decides where spec runs and ships it if remote. Runs as an
// event on the cluster's engine. Local capacity means idle machines AND
// an empty queue: placement is FCFS, so a queued backlog makes the
// instantaneous idle count a lie for newly arriving work.
func (sp *spiller) place(spec JobSpec) {
	m := sp.c.GL.Master
	if !sp.enabled || sp.cfg.Policy == SpillOff ||
		(m.QueueLen() == 0 && m.AvailableCount() >= spec.NProcs) {
		sp.m.kept.Inc()
		m.Submit(glunix.NewJob(spec.ID, spec.NProcs, spec.Work, spec.Grain))
		return
	}
	target, ok := sp.pick(spec)
	if !ok {
		sp.m.kept.Inc()
		m.Submit(glunix.NewJob(spec.ID, spec.NProcs, spec.Work, spec.Grain))
		return
	}
	span := sp.c.reg.StartSpan("fed.spill", target)
	sp.c.reg.Annotate(span, fmt.Sprintf("job=%d nprocs=%d", spec.ID, spec.NProcs))
	sp.m.shipped.Inc()
	bytes := int(sp.imageBytes()) * spec.NProcs
	sp.c.gw.Cast(target, hSpill, spec, bytes)
	sp.c.reg.EndSpan(span)
}

// pick returns the cheapest eligible peer, scanning in cluster-id order
// so ties break deterministically.
func (sp *spiller) pick(spec JobSpec) (int, bool) {
	ids := make([]int, 0, len(sp.peers))
	for id := range sp.peers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	localWait := costmodel.SpillLocalWaitNs(sp.c.GL.Master.QueueLen(), float64(spec.Work))
	best, bestCost := -1, 0.0
	for _, id := range ids {
		ps := sp.peers[id]
		if ps.idle < spec.NProcs {
			continue
		}
		lk := sp.c.fed.fabric.links[sp.c.id][id]
		cost := costmodel.SpillRemoteCostNs(sp.imageBytes(), spec.NProcs,
			lk.BandwidthMbps, float64(lk.Latency), float64(sp.cfg.LeaseWarmup))
		if sp.cfg.Policy == SpillCostAware && cost >= localWait {
			continue
		}
		if best < 0 || cost < bestCost {
			best, bestCost = id, cost
		}
	}
	return best, best >= 0
}

func (sp *spiller) imageBytes() int64 {
	if sp.c.GL != nil {
		return sp.c.GL.Cfg.ImageBytes
	}
	return 32 << 20
}

// Submit routes a job through cluster c's spill placer (local submit
// when spilling is off). Callable from any event or process on c's
// engine — scenario event callbacks included.
func (f *Federation) Submit(c int, spec JobSpec) {
	cl := f.clusters[c]
	if cl.GL == nil {
		return
	}
	if cl.sp == nil {
		cl.GL.Master.Submit(glunix.NewJob(spec.ID, spec.NProcs, spec.Work, spec.Grain))
		return
	}
	cl.sp.place(spec)
}

// SetSpill arms or disarms cluster c's spill placer. Must run on c's
// engine (schedule it there when toggling mid-run).
func (f *Federation) SetSpill(c int, on bool) {
	if sp := f.clusters[c].sp; sp != nil {
		sp.enabled = on
	}
}
