// The wide-area fabric between clusters, and the WAN "active message"
// endpoint each cluster's gateway speaks over it.
//
// A WANFabric is not a netsim.Fabric: there are no per-node links, no
// switch, no shared medium — just one directed pipe per cluster pair
// with ms-class latency, low bandwidth and (optionally) asymmetric
// numbers per direction. Determinism splits at the pipe exactly like
// netsim's sharded handoff: the SOURCE partition owns the pipe's
// transmit horizon and every RNG draw (loss), so all mutation happens
// in the source engine's event stream; the destination receives a
// fully-priced arrival time through sim.ShardedEngine.Send, which is
// legal because every link's latency is at least the engine's
// conservative window (New picks the window as the minimum latency).
//
// On top of the pipes, Gateway gives each cluster two primitives:
//
//   - Cast: one-way datagram (gossip, spilled jobs). Pure horizon
//     arithmetic plus a cross-shard send — callable from any event or
//     process on the cluster's engine, no blocking.
//   - Call: blocking RPC with per-attempt timeout, doubling backoff and
//     at-most-once execution (dest-side dedup cache replays the cached
//     reply instead of re-running the handler). Handlers run in a
//     spawned process on the destination engine, so they may themselves
//     block on local xfs reads or further WAN calls.
package federation

import (
	"fmt"

	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

// Link prices one direction of a cluster pair.
type Link struct {
	Latency       sim.Duration // one-way propagation
	BandwidthMbps float64      // directed pipe bit rate
	LossProb      float64      // per-message drop probability
}

// WANConfig shapes the wide-area fabric. Every directed pair gets the
// default numbers unless Links overrides it; [2]int{src, dst} keys the
// override for the src→dst direction only, which is how asymmetric
// (e.g. fat-down/thin-up) pairs are expressed.
type WANConfig struct {
	Latency       sim.Duration
	BandwidthMbps float64
	LossProb      float64
	// CallTimeout is the base per-attempt RPC timeout. Zero derives
	// 2×RTT + both directions' serialization + 1ms grace per link;
	// each retry doubles it.
	CallTimeout sim.Duration
	// CallRetries caps RPC attempts (default 4).
	CallRetries int
	Links       map[[2]int]Link
}

// DefaultWANConfig is a building-to-building metro link: 5 ms one way,
// 45 Mb/s (a T3), lossless.
func DefaultWANConfig() WANConfig {
	return WANConfig{Latency: 5 * sim.Millisecond, BandwidthMbps: 45}
}

func (w WANConfig) link(src, dst int) Link {
	l := Link{Latency: w.Latency, BandwidthMbps: w.BandwidthMbps, LossProb: w.LossProb}
	if o, ok := w.Links[[2]int{src, dst}]; ok {
		if o.Latency > 0 {
			l.Latency = o.Latency
		}
		if o.BandwidthMbps > 0 {
			l.BandwidthMbps = o.BandwidthMbps
		}
		if o.LossProb > 0 {
			l.LossProb = o.LossProb
		}
	}
	return l
}

// wanLink is the runtime state of one directed pipe. txFree is owned by
// the source partition's engine and never read elsewhere.
type wanLink struct {
	Link
	txFree sim.Time
}

// WANFabric connects the federation's clusters pairwise.
type WANFabric struct {
	se    *sim.ShardedEngine
	links [][]*wanLink // [src][dst], nil on the diagonal
}

func newWANFabric(se *sim.ShardedEngine, cfg WANConfig, n int) *WANFabric {
	f := &WANFabric{se: se, links: make([][]*wanLink, n)}
	for s := 0; s < n; s++ {
		f.links[s] = make([]*wanLink, n)
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			f.links[s][d] = &wanLink{Link: cfg.link(s, d)}
		}
	}
	return f
}

// Ser returns the serialization time of n bytes on the src→dst pipe.
func (f *WANFabric) Ser(src, dst int, n int) sim.Duration {
	return sim.Duration(sim.PerByte(int64(n), sim.Bandwidth(f.links[src][dst].BandwidthMbps)))
}

// RTT returns the propagation round trip of the src↔dst pair.
func (f *WANFabric) RTT(src, dst int) sim.Duration {
	return f.links[src][dst].Latency + f.links[dst][src].Latency
}

// wanMsg crosses partitions by value through ShardMsg.Data. Ownership of
// the payload transfers with the send: the source never touches it
// again.
type wanMsg struct {
	kind    uint8 // mCast | mCall | mReply
	handler uint8
	src     int
	seq     uint64
	bytes   int
	payload any
}

const (
	mCast = iota
	mCall
	mReply
)

// send prices one message on the src→dst pipe and hands it across. It
// runs on src's engine: the bandwidth horizon and the loss draw are
// src-side state. Dropped messages still occupy the pipe (the bits were
// transmitted; nobody heard them).
func (f *WANFabric) send(src, dst int, eng *sim.Engine, reg wanMetrics, m *wanMsg) {
	lk := f.links[src][dst]
	now := eng.Now()
	start := now
	if lk.txFree > start {
		start = lk.txFree
	}
	ser := f.Ser(src, dst, m.bytes)
	lk.txFree = start + sim.Time(ser)
	reg.sent.Inc()
	reg.bytes.Add(int64(m.bytes))
	if lk.LossProb > 0 && eng.Rand().Float64() < lk.LossProb {
		reg.drops.Inc()
		return
	}
	arrive := start + sim.Time(ser+lk.Latency)
	f.se.Send(src, dst, arrive, m)
}

// wanMetrics are the per-cluster pipe counters (on the cluster's own
// registry; obs.Merged folds them for whole-federation views).
type wanMetrics struct {
	sent, bytes, drops, recv       *obs.Counter
	calls, retries, timeouts, fail *obs.Counter
}

func newWANMetrics(r *obs.Registry) wanMetrics {
	return wanMetrics{
		sent:     r.Counter("wan.sent"),
		bytes:    r.Counter("wan.bytes"),
		drops:    r.Counter("wan.drops"),
		recv:     r.Counter("wan.recv"),
		calls:    r.Counter("wan.calls"),
		retries:  r.Counter("wan.call.retries"),
		timeouts: r.Counter("wan.call.timeouts"),
		fail:     r.Counter("wan.call.fail"),
	}
}

// CastHandler receives a one-way datagram. It runs as a plain event on
// the receiving cluster's engine — no blocking.
type CastHandler func(from int, arg any)

// CallHandler serves an RPC in a spawned process on the receiving
// cluster's engine. It returns the reply payload and its wire size.
type CallHandler func(p *sim.Proc, from int, arg any) (any, int)

type pendingCall struct {
	sig      *sim.Signal
	reply    any
	done     bool
	timedOut bool
}

type dedupKey struct {
	src int
	seq uint64
}

type dedupEntry struct {
	done  bool
	reply any
	bytes int
}

// wanHdrBytes is the fixed framing charged on every WAN message.
const wanHdrBytes = 64

// maxDedup bounds the at-most-once replay window per gateway.
const maxDedup = 4096

// Gateway is cluster c's endpoint on the WAN fabric.
type Gateway struct {
	fed     *Federation
	cluster int
	eng     *sim.Engine
	m       wanMetrics

	casts  map[uint8]CastHandler
	calls  map[uint8]CallHandler
	seq    uint64
	pend   map[uint64]*pendingCall
	dedup  map[dedupKey]*dedupEntry
	dedupQ []dedupKey // FIFO eviction order
}

func newGateway(fed *Federation, cluster int, eng *sim.Engine, reg *obs.Registry) *Gateway {
	return &Gateway{
		fed:     fed,
		cluster: cluster,
		eng:     eng,
		m:       newWANMetrics(reg),
		casts:   map[uint8]CastHandler{},
		calls:   map[uint8]CallHandler{},
		pend:    map[uint64]*pendingCall{},
		dedup:   map[dedupKey]*dedupEntry{},
	}
}

// HandleCast registers the one-way handler for id. Call before Run.
func (g *Gateway) HandleCast(id uint8, fn CastHandler) { g.casts[id] = fn }

// HandleCall registers the RPC handler for id. Call before Run.
func (g *Gateway) HandleCall(id uint8, fn CallHandler) { g.calls[id] = fn }

// Cast sends a one-way datagram of the given wire size to cluster dst.
// Callable from any event or process on this cluster's engine.
func (g *Gateway) Cast(dst int, id uint8, arg any, bytes int) {
	g.fed.fabric.send(g.cluster, dst, g.eng, g.m, &wanMsg{
		kind: mCast, handler: id, src: g.cluster, bytes: bytes + wanHdrBytes, payload: arg,
	})
}

// Call runs the RPC id(arg) on cluster dst and blocks p until the reply
// arrives or every retry is exhausted. repBytes is the caller's budget
// for the reply's wire size: the per-attempt timeout must cover the
// reply's serialization on a low-bandwidth pipe, or a bulky-but-healthy
// reply (a whole-file lease warmup) would be retried into a queueing
// collapse. At-most-once: retries re-send the same sequence number and
// the destination replays its cached reply rather than re-executing the
// handler.
func (g *Gateway) Call(p *sim.Proc, dst int, id uint8, arg any, bytes, repBytes int) (any, error) {
	g.m.calls.Inc()
	g.seq++
	seq := g.seq
	pc := &pendingCall{sig: sim.NewSignal(g.eng, "wan.call")}
	g.pend[seq] = pc
	defer delete(g.pend, seq)

	timeout := g.fed.cfg.WAN.CallTimeout
	if timeout <= 0 {
		timeout = 2*g.fed.fabric.RTT(g.cluster, dst) +
			g.fed.fabric.Ser(g.cluster, dst, bytes+wanHdrBytes) +
			g.fed.fabric.Ser(dst, g.cluster, repBytes+wanHdrBytes) +
			sim.Millisecond
	}
	retries := g.fed.cfg.WAN.CallRetries
	if retries <= 0 {
		retries = 4
	}
	for try := 0; try < retries; try++ {
		if try > 0 {
			g.m.retries.Inc()
		}
		g.fed.fabric.send(g.cluster, dst, g.eng, g.m, &wanMsg{
			kind: mCall, handler: id, src: g.cluster, seq: seq, bytes: bytes + wanHdrBytes, payload: arg,
		})
		pc.timedOut = false
		tm := g.eng.At(g.eng.Now()+sim.Time(timeout), func() {
			if !pc.done {
				pc.timedOut = true
				pc.sig.Broadcast()
			}
		})
		for !pc.done && !pc.timedOut {
			pc.sig.Wait(p)
		}
		tm.Stop()
		if pc.done {
			return pc.reply, nil
		}
		g.m.timeouts.Inc()
		timeout *= 2
	}
	g.m.fail.Inc()
	return nil, fmt.Errorf("federation: WAN call %d to cluster %d: no reply after %d attempts", id, dst, retries)
}

// deliver injects one arrived message. It runs as an event on this
// cluster's engine (scheduled by the sharded OnDeliver hook).
func (g *Gateway) deliver(m *wanMsg) {
	g.m.recv.Inc()
	switch m.kind {
	case mCast:
		if fn := g.casts[m.handler]; fn != nil {
			fn(m.src, m.payload)
		}
	case mCall:
		g.serve(m)
	case mReply:
		pc := g.pend[m.seq]
		if pc == nil || pc.done {
			return // duplicate or abandoned reply
		}
		pc.reply = m.payload
		pc.done = true
		pc.sig.Broadcast()
	}
}

func (g *Gateway) serve(m *wanMsg) {
	key := dedupKey{src: m.src, seq: m.seq}
	if ent, ok := g.dedup[key]; ok {
		if ent.done {
			// Lost reply: replay the cached one, charge the wire again.
			g.reply(m.src, m.seq, ent.reply, ent.bytes)
		}
		return // in progress: the running handler will reply
	}
	ent := &dedupEntry{}
	g.remember(key, ent)
	fn := g.calls[m.handler]
	if fn == nil {
		ent.done = true
		g.reply(m.src, m.seq, nil, 0)
		return
	}
	g.eng.Spawn(fmt.Sprintf("wan.h%02x", m.handler), func(p *sim.Proc) {
		res, bytes := fn(p, m.src, m.payload)
		ent.reply, ent.bytes, ent.done = res, bytes, true
		g.reply(m.src, m.seq, res, bytes)
	})
}

func (g *Gateway) reply(dst int, seq uint64, payload any, bytes int) {
	g.fed.fabric.send(g.cluster, dst, g.eng, g.m, &wanMsg{
		kind: mReply, src: g.cluster, seq: seq, bytes: bytes + wanHdrBytes, payload: payload,
	})
}

func (g *Gateway) remember(key dedupKey, ent *dedupEntry) {
	if len(g.dedupQ) >= maxDedup {
		drop := g.dedupQ[0]
		g.dedupQ = g.dedupQ[1:]
		delete(g.dedup, drop)
	}
	g.dedup[key] = ent
	g.dedupQ = append(g.dedupQ, key)
}
