// Package gator reproduces Table 4: the Demmel–Smith execution-time
// model of the NASA Ames/UCLA "Gator" atmospheric chemical tracer
// applied to a Cray C-90, an Intel Paragon, and a series of
// progressively upgraded 256-node RS/6000 NOWs. The model's structure —
// a perfectly parallel ODE phase, a communication-bound transport phase,
// and a file-input phase — comes from the paper; the machine parameters
// are the paper's own (300 vs 12 vs 40 Mflops per node, 10 vs 2 MB/s
// disks, PVM vs low-overhead messaging).
//
// The paper validated the original model to within 30% of measured wall
// clock on real machines; we aim the same tolerance at the paper's own
// Table 4 rows.
package gator

import (
	"fmt"

	"github.com/nowproject/now/internal/sim"
)

// Workload is the problem instance: the paper's production run.
type Workload struct {
	// FLOP is total floating-point work in the ODE phase.
	FLOP float64
	// InputBytes read at startup; OutputBytes written at the end.
	InputBytes  float64
	OutputBytes float64
	// TransportVolume is total bytes exchanged by the transport phase.
	TransportVolume float64
	// MsgsPerNode is the number of (small) messages each node sends
	// during transport — boundary exchanges over many timesteps.
	MsgsPerNode float64
}

// PaperWorkload returns the Table 4 instance: 36 Gflop, 3.9 GB in,
// 51 MB out. Communication volume and message counts are calibrated so
// the published RS/6000 rows are reproduced (see EXPERIMENTS.md).
func PaperWorkload() Workload {
	return Workload{
		FLOP:            36e9,
		InputBytes:      3.9e9,
		OutputBytes:     51e6,
		TransportVolume: 26e9,
		MsgsPerNode:     310e3,
	}
}

// Machine parameterises one Table 4 row.
type Machine struct {
	Name  string
	Nodes int
	// MFLOPS is sustained per-node floating-point rate.
	MFLOPS float64
	// DiskMBps is per-node (or per-CPU) disk bandwidth.
	DiskMBps float64
	// ParallelFS: input is striped across all disks at this efficiency
	// (0 disables: a sequential file system uses one disk).
	ParallelFSEff float64
	// SharedMemory: transport runs through the memory system at
	// MemBWGBps instead of a network.
	SharedMemory bool
	MemBWGBps    float64
	// MsgOverhead is send+receive processor overhead per message.
	MsgOverhead sim.Duration
	// LinkMBps is per-node network bandwidth (switched fabrics).
	LinkMBps float64
	// SharedMediumMBps caps *total* communication (10 Mb/s Ethernet);
	// zero means the fabric is switched.
	SharedMediumMBps float64
	// DistributeInput: input read by one node must also be scattered
	// over the network (NOW without an integrated parallel FS).
	DistributeInput bool
	// CostM$ is the system price in millions (paper's last column).
	CostM float64
}

// PhaseTimes is one Table 4 row's output.
type PhaseTimes struct {
	Machine   string
	ODE       sim.Duration
	Transport sim.Duration
	Input     sim.Duration
	Total     sim.Duration
	CostM     float64
}

// Machines returns the paper's six configurations in Table 4 order.
func Machines() []Machine {
	c90 := Machine{
		Name: "C-90 (16)", Nodes: 16, MFLOPS: 300, DiskMBps: 15,
		ParallelFSEff: 1.0, SharedMemory: true, MemBWGBps: 6.5, CostM: 30,
	}
	paragon := Machine{
		Name: "Paragon (256)", Nodes: 256, MFLOPS: 12, DiskMBps: 2,
		ParallelFSEff: 0.76, MsgOverhead: 70 * sim.Microsecond,
		LinkMBps: 175, CostM: 10,
	}
	nowBase := Machine{
		Name: "RS-6000 (256)", Nodes: 256, MFLOPS: 40, DiskMBps: 2,
		MsgOverhead: 600 * sim.Microsecond, // PVM through sockets
		// Bulk streaming gets closer to the 10 Mb/s wire than PVM's
		// small transport messages do.
		LinkMBps: 1.9, SharedMediumMBps: 1.125, DistributeInput: true,
		CostM: 4,
	}
	nowATM := nowBase
	nowATM.Name = "RS-6000 + ATM"
	nowATM.SharedMediumMBps = 0
	nowATM.LinkMBps = 17
	nowATM.CostM = 5
	nowPFS := nowATM
	nowPFS.Name = "RS-6000 + parallel file system"
	nowPFS.ParallelFSEff = 0.8
	nowPFS.DistributeInput = false
	nowAM := nowPFS
	nowAM.Name = "RS-6000 + low-overhead msgs"
	nowAM.MsgOverhead = 6 * sim.Microsecond // Active Messages both sides
	return []Machine{c90, paragon, nowBase, nowATM, nowPFS, nowAM}
}

// Model evaluates the analytic execution-time model for one machine.
func Model(m Machine, w Workload) PhaseTimes {
	secs := func(s float64) sim.Duration { return sim.Duration(s * float64(sim.Second)) }

	// ODE: perfectly parallel floating-point work.
	ode := secs(w.FLOP / (float64(m.Nodes) * m.MFLOPS * 1e6))

	// Transport: overhead + bandwidth terms, or the memory system.
	var transport sim.Duration
	if m.SharedMemory {
		transport = secs(w.TransportVolume / (m.MemBWGBps * 1e9))
	} else {
		overhead := sim.Duration(w.MsgsPerNode) * m.MsgOverhead
		perNode := w.TransportVolume / float64(m.Nodes)
		wire := perNode / (m.LinkMBps * 1e6)
		if m.SharedMediumMBps > 0 {
			// A shared medium serialises everyone's traffic.
			shared := w.TransportVolume / (m.SharedMediumMBps * 1e6)
			if secs(shared) > secs(wire) {
				wire = shared
			}
		}
		transport = overhead + secs(wire)
	}

	// Input: disk then (for a NOW without a parallel FS) scatter.
	diskBW := m.DiskMBps * 1e6
	if m.ParallelFSEff > 0 {
		diskBW *= float64(m.Nodes) * m.ParallelFSEff
	}
	input := secs((w.InputBytes + w.OutputBytes) / diskBW)
	if m.DistributeInput {
		distribute := secs(w.InputBytes / (m.LinkMBps * 1e6))
		if m.SharedMediumMBps > 0 {
			// Shared medium: the reading node's disk DMA and the scatter
			// share one path — the phases serialise.
			input += distribute
		} else if distribute > input {
			// Switched fabric: scatter overlaps the disk read.
			input = distribute
		}
	}

	return PhaseTimes{
		Machine:   m.Name,
		ODE:       ode,
		Transport: transport,
		Input:     input,
		Total:     ode + transport + input,
		CostM:     m.CostM,
	}
}

// Table4 evaluates all six machines on the paper workload.
func Table4() []PhaseTimes {
	w := PaperWorkload()
	ms := Machines()
	out := make([]PhaseTimes, len(ms))
	for i, m := range ms {
		out[i] = Model(m, w)
	}
	return out
}

// String renders a row.
func (pt PhaseTimes) String() string {
	return fmt.Sprintf("%-32s ODE=%v Transport=%v Input=%v Total=%v $%.0fM",
		pt.Machine, pt.ODE, pt.Transport, pt.Input, pt.Total, pt.CostM)
}
