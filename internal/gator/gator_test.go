package gator

import (
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/sim"
)

// within reports |got-want|/want <= tol.
func within(got, want sim.Duration, tol float64) bool {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d <= tol*float64(want)
}

func TestTable4MatchesPaperWithinTolerance(t *testing.T) {
	// Paper's Table 4, in seconds. The original model was validated to
	// within 30% of real machines; we hold our reproduction to 25% of
	// the paper's own numbers per phase (and 15% on totals).
	want := []struct {
		ode, transport, input, total float64
	}{
		{7, 4, 16, 27},
		{12, 24, 10, 46},
		{4, 23340, 4030, 27374},
		{4, 192, 2015, 2211},
		{4, 192, 10, 205},
		{4, 8, 10, 21},
	}
	rows := Table4()
	if len(rows) != len(want) {
		t.Fatalf("%d rows", len(rows))
	}
	secs := func(s float64) sim.Duration { return sim.Duration(s * float64(sim.Second)) }
	for i, row := range rows {
		w := want[i]
		if !within(row.ODE, secs(w.ode), 0.25) {
			t.Errorf("%s ODE = %v, paper %vs", row.Machine, row.ODE, w.ode)
		}
		if !within(row.Transport, secs(w.transport), 0.25) {
			t.Errorf("%s Transport = %v, paper %vs", row.Machine, row.Transport, w.transport)
		}
		if !within(row.Input, secs(w.input), 0.25) {
			t.Errorf("%s Input = %v, paper %vs", row.Machine, row.Input, w.input)
		}
		if !within(row.Total, secs(w.total), 0.15) {
			t.Errorf("%s Total = %v, paper %vs", row.Machine, row.Total, w.total)
		}
	}
}

func TestTable4OrderOfMagnitudeSteps(t *testing.T) {
	// The paper's narrative: each upgrade buys roughly an order of
	// magnitude, and the final NOW beats the Paragon and competes with
	// the C-90 at a fraction of the cost.
	rows := Table4()
	base, atm, pfs, lowo := rows[2], rows[3], rows[4], rows[5]
	if r := float64(base.Total) / float64(atm.Total); r < 5 {
		t.Errorf("ATM upgrade factor = %.1f, want ≈12×", r)
	}
	if r := float64(atm.Total) / float64(pfs.Total); r < 5 {
		t.Errorf("parallel FS upgrade factor = %.1f, want ≈10×", r)
	}
	if r := float64(pfs.Total) / float64(lowo.Total); r < 5 {
		t.Errorf("low-overhead upgrade factor = %.1f, want ≈10×", r)
	}
	c90, paragon := rows[0], rows[1]
	if lowo.Total > 2*c90.Total {
		t.Errorf("final NOW %v does not compete with C-90 %v", lowo.Total, c90.Total)
	}
	if lowo.Total > paragon.Total {
		t.Errorf("final NOW %v slower than Paragon %v", lowo.Total, paragon.Total)
	}
	if lowo.CostM >= c90.CostM/3 {
		t.Errorf("NOW cost %.0fM not a fraction of C-90 %.0fM", lowo.CostM, c90.CostM)
	}
}

func TestModelScalesWithNodes(t *testing.T) {
	w := PaperWorkload()
	m := Machines()[5] // best NOW
	half := m
	half.Nodes = 128
	full := Model(m, w)
	halved := Model(half, w)
	if halved.ODE <= full.ODE {
		t.Fatal("halving nodes should slow the ODE phase")
	}
}

func TestMiniRunPhases(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultMiniConfig(8)
	res, err := RunMini(e, cfg)
	e.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Input <= 0 || res.Compute <= 0 || res.Total != res.Input+res.Compute {
		t.Fatalf("phases: %+v", res)
	}
	if res.Exchanges != int64(2*cfg.Nodes*cfg.Timesteps) {
		t.Fatalf("exchanges = %d", res.Exchanges)
	}
}

func TestMiniParallelFSBeatsSequential(t *testing.T) {
	run := func(pfs bool) MiniResult {
		e := sim.NewEngine(1)
		defer e.Close()
		cfg := DefaultMiniConfig(8)
		cfg.ParallelFS = pfs
		res, err := RunMini(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(false)
	par := run(true)
	if ratio := float64(seq.Input) / float64(par.Input); ratio < 4 {
		t.Fatalf("parallel FS input speedup = %.1f on 8 disks, want ≳6", ratio)
	}
}

func TestMiniFasterNetworkHelpsCompute(t *testing.T) {
	run := func(fabric func(int) netsim.Config) MiniResult {
		e := sim.NewEngine(1)
		defer e.Close()
		cfg := DefaultMiniConfig(8)
		cfg.Fabric = fabric
		res, err := RunMini(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	eth := run(netsim.Ethernet10)
	atm := run(netsim.ATM155)
	if eth.Compute <= atm.Compute {
		t.Fatalf("Ethernet compute %v not slower than ATM %v", eth.Compute, atm.Compute)
	}
}

func TestMiniValidation(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	if _, err := RunMini(e, MiniConfig{Nodes: 1}); err == nil {
		t.Fatal("1-node config accepted")
	}
}
