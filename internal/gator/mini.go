package gator

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// AM handlers (gator owns 0x80–0x8F).
const (
	hBoundary am.HandlerID = 0x80 + iota
	hInputChunk
)

// MiniConfig is a scaled-down Gator that actually executes on the
// simulated NOW — real endpoints, real disks — rather than the analytic
// model. It exists so the example and the integration tests can watch
// the same three phases the model predicts.
type MiniConfig struct {
	Nodes      int
	Timesteps  int
	FLOP       float64 // total ODE work
	InputBytes int64
	// BoundaryBytes exchanged with each neighbour per timestep.
	BoundaryBytes int
	// ParallelFS streams input from every node's disk instead of one.
	ParallelFS bool
	// Fabric and Proto choose the communication substrate.
	Fabric func(nodes int) netsim.Config
	Proto  am.Config
}

// DefaultMiniConfig is a laptop-scale instance (× ≈1000 smaller than
// the paper run).
func DefaultMiniConfig(nodes int) MiniConfig {
	return MiniConfig{
		Nodes:         nodes,
		Timesteps:     20,
		FLOP:          36e6 * float64(nodes),
		InputBytes:    int64(nodes) * 4 << 20,
		BoundaryBytes: 16 << 10,
		ParallelFS:    true,
		Fabric:        netsim.ATM155,
		Proto:         am.DefaultConfig(),
	}
}

// MiniResult reports the measured phases.
type MiniResult struct {
	Input     sim.Duration
	Compute   sim.Duration // ODE + transport interleaved per timestep
	Total     sim.Duration
	Exchanges int64
}

// RunMini executes the mini tracer and measures its phases.
func RunMini(e *sim.Engine, cfg MiniConfig) (MiniResult, error) {
	if cfg.Nodes < 2 {
		return MiniResult{}, fmt.Errorf("gator: need ≥2 nodes, have %d", cfg.Nodes)
	}
	if cfg.Fabric == nil {
		cfg.Fabric = netsim.ATM155
	}
	fab, err := netsim.New(e, cfg.Fabric(cfg.Nodes))
	if err != nil {
		return MiniResult{}, fmt.Errorf("gator: %w", err)
	}
	eps := make([]*am.Endpoint, cfg.Nodes)
	recvd := make([]int, cfg.Nodes)
	arrived := make([]*sim.Signal, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		nd := node.New(e, node.DefaultConfig(netsim.NodeID(i)))
		eps[i] = am.NewEndpoint(e, nd, fab, cfg.Proto)
		rank := i
		arrived[i] = sim.NewSignal(e, fmt.Sprintf("gator/arr%d", i))
		eps[i].Register(hBoundary, func(p *sim.Proc, m am.Msg) (any, int) {
			recvd[rank]++
			arrived[rank].Broadcast()
			return nil, 0
		})
		eps[i].Register(hInputChunk, func(p *sim.Proc, m am.Msg) (any, int) { return nil, 0 })
	}

	var res MiniResult
	wg := sim.NewWaitGroup(e, "gator/ranks")
	wg.Add(cfg.Nodes)
	var inputDone sim.Time

	// Input phase: sequential FS reads everything on node 0 and scatters;
	// parallel FS reads a slice on every node's own disk.
	inputBarrier := sim.NewWaitGroup(e, "gator/input")
	inputBarrier.Add(cfg.Nodes)
	perNode := cfg.InputBytes / int64(cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		rank := i
		e.Spawn(fmt.Sprintf("gator/rank%d", rank), func(p *sim.Proc) {
			defer wg.Done()
			nd := eps[rank].Node()
			if cfg.ParallelFS {
				nd.Disk.ReadSeq(p, 0, int(perNode))
			} else if rank == 0 {
				// One node reads everything and scatters slices.
				const chunk = 256 << 10
				for dst := 0; dst < cfg.Nodes; dst++ {
					for off := int64(0); off < perNode; off += chunk {
						sz := int64(chunk)
						if perNode-off < sz {
							sz = perNode - off
						}
						nd.Disk.ReadSeq(p, int64(dst)*perNode+off, int(sz))
						if dst != 0 {
							eps[0].SendAsync(p, netsim.NodeID(dst), hInputChunk, nil, int(sz))
						}
					}
				}
				eps[0].Flush(p)
			}
			inputBarrier.Done()
			inputBarrier.Wait(p)
			if rank == 0 {
				inputDone = p.Now()
			}

			// Timestep loop: boundary exchange, then ODE relaxation.
			flopPerStep := cfg.FLOP / float64(cfg.Nodes) / float64(cfg.Timesteps)
			for step := 0; step < cfg.Timesteps; step++ {
				left := netsim.NodeID((rank + cfg.Nodes - 1) % cfg.Nodes)
				right := netsim.NodeID((rank + 1) % cfg.Nodes)
				eps[rank].SendAsync(p, left, hBoundary, nil, cfg.BoundaryBytes)
				eps[rank].SendAsync(p, right, hBoundary, nil, cfg.BoundaryBytes)
				res.Exchanges += 2
				want := 2 * (step + 1)
				for recvd[rank] < want {
					arrived[rank].Wait(p)
				}
				nd.CPU.Compute(p, nd.FlopTime(flopPerStep))
			}
			eps[rank].Flush(p)
		})
	}
	done := false
	e.Spawn("gator/join", func(p *sim.Proc) {
		wg.Wait(p)
		done = true
		e.Stop()
	})
	if err := e.RunUntil(100 * sim.Hour); err != nil && !errors.Is(err, sim.ErrStopped) {
		return res, fmt.Errorf("gator: mini run: %w", err)
	}
	if !done {
		return res, errors.New("gator: mini run did not finish")
	}
	res.Total = sim.Duration(e.Now())
	res.Input = sim.Duration(inputDone)
	res.Compute = res.Total - res.Input
	return res, nil
}
