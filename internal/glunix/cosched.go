package glunix

import (
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

// Coscheduler implements gang scheduling in the style of Ousterhout's
// matrix method: global time is sliced into slots, each slot is assigned
// to one parallel job, and during its slot that job's processes run
// simultaneously on every node. It steers each workstation's local
// scheduler through a class filter; the system class (protocol daemons)
// is always eligible.
//
// Figure 4's "local scheduling" baseline is simply not starting a
// Coscheduler: each node's Unix scheduler then timeslices the competing
// jobs independently, and tightly coupled programs fall apart.
type Coscheduler struct {
	eng     *sim.Engine
	cpus    []*node.CPU
	quantum sim.Duration
	jobs    []string
	slot    int
	running bool
	stopped bool
	obs     *obs.Registry // nil unless Instrument attached a registry
	slots   *obs.Counter  // glunix.cosched.slots
}

// NewCoscheduler creates a gang scheduler over the given CPUs with the
// given slot length (100 ms when zero, a typical Unix quantum).
func NewCoscheduler(e *sim.Engine, cpus []*node.CPU, quantum sim.Duration) *Coscheduler {
	if quantum <= 0 {
		quantum = 100 * sim.Millisecond
	}
	return &Coscheduler{eng: e, cpus: cpus, quantum: quantum}
}

// SetJobs replaces the rotation with the given job classes. An empty set
// opens all CPUs (no filter).
func (cs *Coscheduler) SetJobs(classes []string) {
	cs.jobs = append([]string(nil), classes...)
	if cs.slot >= len(cs.jobs) {
		cs.slot = 0
	}
	cs.apply()
}

// Instrument attaches observability: a glunix.cosched.slots counter and
// one glunix.cosched.slot span per occupied rotation slot (annotated
// with the owning job class). Call before Start; a nil registry is a
// no-op. Slot spans are per-quantum, so a long coscheduled run records
// many of them — traces are opt-in for exactly this reason.
func (cs *Coscheduler) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	cs.obs = r
	cs.slots = r.Counter("glunix.cosched.slots")
}

// Start begins slot rotation.
func (cs *Coscheduler) Start() {
	if cs.running {
		return
	}
	cs.running = true
	cs.eng.Spawn("glunix/cosched", func(p *sim.Proc) {
		for !cs.stopped {
			cs.apply()
			var sp obs.SpanID
			if cs.obs != nil && len(cs.jobs) > 0 {
				cs.slots.Inc()
				sp = cs.obs.StartSpan("glunix.cosched.slot", -1)
				cs.obs.Annotate(sp, cs.jobs[cs.slot])
			}
			p.Sleep(cs.quantum)
			cs.obs.EndSpan(sp)
			if len(cs.jobs) > 0 {
				cs.slot = (cs.slot + 1) % len(cs.jobs)
			}
		}
	})
}

// Stop ends rotation and opens all CPUs.
func (cs *Coscheduler) Stop() {
	cs.stopped = true
	cs.jobs = nil
	cs.apply()
}

// CurrentJob returns the class owning the current slot ("" when idle).
func (cs *Coscheduler) CurrentJob() string {
	if len(cs.jobs) == 0 {
		return ""
	}
	return cs.jobs[cs.slot]
}

func (cs *Coscheduler) apply() {
	if len(cs.jobs) == 0 {
		for _, c := range cs.cpus {
			c.SetFilter(nil)
		}
		return
	}
	current := cs.jobs[cs.slot]
	for _, c := range cs.cpus {
		c.SetFilter(func(class string) bool { return class == current })
	}
}
