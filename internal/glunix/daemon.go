package glunix

import (
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// Daemon is the per-workstation GLUnix agent: it heartbeats to the
// master, watches the console for user activity, applies the one-minute
// idleness rule, and performs the memory save step of recruitment.
type Daemon struct {
	c  *Cluster
	ws int
	ep *am.Endpoint

	userActive bool
	crashed    bool
	imageSaved bool
	idleTimer  sim.Timer
	seq        int64 // user-transition sequence, cancels stale idle reports
}

func newDaemon(c *Cluster, ws int) *Daemon {
	d := &Daemon{c: c, ws: ws, ep: c.EPs[ws]}
	d.ep.Register(hExec, d.onExec)
	c.Eng.Spawn(fmt.Sprintf("glunix/daemon%d", ws), d.heartbeatLoop)
	return d
}

func (d *Daemon) heartbeatLoop(p *sim.Proc) {
	for !d.crashed {
		d.ep.SendAsync(p, netsim.NodeID(0), hHeartbeat, d.ws, 16)
		p.Sleep(d.c.Cfg.HeartbeatInterval)
	}
}

// SetUserActive feeds console activity into the daemon (driven by the
// workstation activity trace). Transitions to active are reported to the
// master immediately; transitions to idle only after IdleThreshold of
// continuous quiet — the paper's definition of an available machine.
func (d *Daemon) SetUserActive(active bool) {
	if d.crashed || active == d.userActive {
		return
	}
	d.userActive = active
	d.seq++
	seq := d.seq
	d.idleTimer.Stop()
	if active {
		d.notify(true)
		return
	}
	d.idleTimer = d.c.Eng.After(d.c.Cfg.IdleThreshold, func() {
		if d.seq == seq && !d.userActive && !d.crashed {
			d.notify(false)
		}
	})
}

// notify reports a user-state transition to the master from a transient
// process (the daemon must keep heartbeating meanwhile).
func (d *Daemon) notify(busy bool) {
	d.c.Eng.Spawn(fmt.Sprintf("glunix/daemon%d/notify", d.ws), func(p *sim.Proc) {
		_, _ = d.ep.Call(p, netsim.NodeID(0), hUserState, userStateArgs{ws: d.ws, busy: busy}, 24)
	})
}

// onExec handles recruitment: before any guest arrives, park the user's
// memory image on the designated buddy so the machine can be returned
// exactly as it was left.
func (d *Daemon) onExec(p *sim.Proc, m am.Msg) (any, int) {
	args, ok := m.Arg.(execArgs)
	if !ok {
		return false, 1
	}
	if d.c.Cfg.SaveRestore && !d.imageSaved {
		if err := d.c.transferBulk(p, d.ws, args.buddy, d.c.Cfg.UserImageBytes); err != nil {
			return false, 1
		}
		d.imageSaved = true
		d.c.Master.ws[d.ws].imageSaved = true
		d.c.Master.st.ImageSaves++
	}
	return true, 1
}

// UserActive reports the daemon's current view of its console.
func (d *Daemon) UserActive() bool { return d.userActive }
