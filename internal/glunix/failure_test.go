package glunix

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
)

func TestCrashDuringMigrationRestartsJob(t *testing.T) {
	cfg := testConfig(5)
	cfg.ImageBytes = 32 << 20 // big image: migration takes ≈1.7s
	cfg.CheckpointInterval = 5 * sim.Second
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 2, 40*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	// User returns to node 1 at t=15s → migration to node 3 begins; the
	// SOURCE node crashes mid-transfer.
	e.At(15*sim.Second, func() { c.Daemons[1].SetUserActive(true) })
	e.At(15*sim.Second+500*sim.Millisecond, func() { c.Crash(1) })
	runFor(t, e, 20*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job never recovered; %s", c.Master.debugString())
	}
	if j.Restarts == 0 && c.Master.Stats().Migrations == 0 {
		t.Fatal("neither migration completed nor restart occurred")
	}
}

func TestCrashOfBuddyHoldingUserImage(t *testing.T) {
	// Node 1's user image is saved on its buddy (node 2, ring order).
	// The buddy crashes while the guest runs; when the user returns the
	// restore fails but the system must keep working (the guest still
	// migrates, the job still completes).
	cfg := testConfig(5)
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 1, 30*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	e.At(5*sim.Second, func() { c.Crash(2) })
	e.At(10*sim.Second, func() { c.Daemons[1].SetUserActive(true) })
	runFor(t, e, 10*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job not done; %s", c.Master.debugString())
	}
	st := c.Master.Stats()
	if st.ImageRestores != 0 {
		t.Fatalf("restore claimed success with a dead buddy: %+v", st)
	}
	if st.Evictions != 1 {
		t.Fatalf("eviction not handled: %+v", st)
	}
}

func TestSimultaneousCrashes(t *testing.T) {
	cfg := testConfig(8)
	cfg.CheckpointInterval = 5 * sim.Second
	e, c := buildCluster(t, cfg)
	j1 := NewJob(1, 2, 30*sim.Second, sim.Second)
	j2 := NewJob(2, 2, 30*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j1); c.Master.Submit(j2) })
	// Both jobs lose a node at once.
	e.At(12*sim.Second, func() { c.Crash(1); c.Crash(3) })
	runFor(t, e, 20*sim.Minute)
	defer e.Close()
	if !j1.Done() || !j2.Done() {
		t.Fatalf("jobs not recovered: j1=%v j2=%v; %s", j1.Done(), j2.Done(), c.Master.debugString())
	}
	if c.Master.Stats().NodesDown != 2 {
		t.Fatalf("nodes down = %d", c.Master.Stats().NodesDown)
	}
	if j1.Restarts == 0 || j2.Restarts == 0 {
		t.Fatalf("restarts: j1=%d j2=%d", j1.Restarts, j2.Restarts)
	}
}

func TestCrashedNodeNeverRecruitedAgain(t *testing.T) {
	cfg := testConfig(4)
	e, c := buildCluster(t, cfg)
	e.At(0, func() { c.Crash(2) })
	j := NewJob(1, 3, 10*sim.Second, sim.Second)
	e.At(30*sim.Second, func() { c.Master.Submit(j) })
	runFor(t, e, 5*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job not done on survivors; %s", c.Master.debugString())
	}
	for _, g := range j.procs {
		if g.WS() == 2 {
			t.Fatal("gang member placed on the dead node")
		}
	}
}

func TestClusterSurvivesMajorityCrash(t *testing.T) {
	// 6 of 8 workstations die; a 2-rank job still completes on the rest.
	cfg := testConfig(8)
	cfg.CheckpointInterval = 5 * sim.Second
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 2, 20*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	e.At(8*sim.Second, func() {
		for ws := 1; ws <= 6; ws++ {
			c.Crash(ws)
		}
	})
	runFor(t, e, 30*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job did not finish on the two survivors; %s", c.Master.debugString())
	}
	if c.Master.Stats().NodesDown != 6 {
		t.Fatalf("nodes down = %d", c.Master.Stats().NodesDown)
	}
}

func TestCheckpointBoundsLostWork(t *testing.T) {
	cfg := testConfig(4)
	cfg.CheckpointInterval = 4 * sim.Second
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 1, 60*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	e.At(30*sim.Second, func() { c.Crash(1) })
	runFor(t, e, 20*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job not done; %s", c.Master.debugString())
	}
	// With checkpoints every 4s, the restart resumed from ≥20s of
	// progress: total response well under crash-time + full-rerun.
	if j.ckptDone < 20*sim.Second {
		t.Fatalf("checkpointed only %v before a crash at 30s", j.ckptDone)
	}
	if r := j.Response(); r > 2*sim.Minute {
		t.Fatalf("response %v suggests restart from zero", r)
	}
}

func TestEvictionLimitProtectsUser(t *testing.T) {
	cfg := testConfig(3)
	cfg.MaxEvictionsPerUserDay = 1
	e, c := buildCluster(t, cfg)
	// Job 1 recruits node 1; the user returns (eviction #1), leaves,
	// returns again. With the limit at 1 the machine must not be
	// recruited a second time that day.
	j1 := NewJob(1, 1, 20*sim.Second, sim.Second)
	j2 := NewJob(2, 1, 20*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j1) })
	e.At(5*sim.Second, func() { c.Daemons[1].SetUserActive(true) })
	e.At(30*sim.Second, func() { c.Daemons[1].SetUserActive(false) })
	// Occupy nodes 2 and 3 with another job, then submit one more: the
	// only candidate is node 1, which is over its delay budget.
	e.At(60*sim.Second, func() { c.Master.Submit(NewJob(3, 2, 10*sim.Minute, sim.Second)) })
	e.At(90*sim.Second, func() { c.Master.Submit(j2) })
	runFor(t, e, 10*sim.Minute)
	defer e.Close()
	if c.Master.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Master.Stats().Evictions)
	}
	if j2.Started != 0 {
		t.Fatalf("job 2 recruited node 1 despite the eviction limit (started %v)", j2.Started)
	}
}

func TestHotSwapDrainAndReattach(t *testing.T) {
	cfg := testConfig(4)
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 2, 40*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	// Drain node 1 mid-run (software upgrade): its guest migrates to an
	// idle machine and the job keeps going.
	e.At(10*sim.Second, func() {
		e.Spawn("op", func(p *sim.Proc) { c.Master.Drain(p, 1) })
	})
	runFor(t, e, 5*sim.Minute)
	if !j.Done() {
		t.Fatalf("job did not survive the drain; %s", c.Master.debugString())
	}
	if c.Master.Stats().Migrations != 1 {
		t.Fatalf("migrations = %d", c.Master.Stats().Migrations)
	}
	// While drained, the node must not be recruited.
	j2 := NewJob(2, 4, 5*sim.Second, sim.Second) // needs all 4 nodes
	e.At(e.Now()+sim.Second, func() { c.Master.Submit(j2) })
	runFor(t, e, e.Now()+2*sim.Minute)
	if j2.Started != 0 {
		t.Fatal("4-node job started while one node was drained")
	}
	// Reattach completes the upgrade; the job can now run.
	c.Master.Reattach(1)
	runFor(t, e, e.Now()+5*sim.Minute)
	defer e.Close()
	if !j2.Done() {
		t.Fatalf("job 2 did not run after reattach; %s", c.Master.debugString())
	}
}
