// Package glunix implements GLUnix, the paper's "global layer Unix": a
// user-level layer glued over the unmodified operating systems of a
// building's workstations that provides global process control, idle
// resource detection, transparent process migration, and failure
// isolation.
//
// The central promises of the paper that this package keeps:
//
//   - every interactive user is guaranteed at least the performance of a
//     dedicated workstation: an idle machine's memory image is saved
//     before the machine is recruited, guest processes are migrated away
//     the moment the user returns, and the image is restored;
//   - demanding parallel jobs receive gangs of idle machines, with the
//     gang's processes scheduled together (see Coscheduler);
//   - an individual node crash affects only the jobs with a process on
//     that node, and those restart from their last checkpoint elsewhere.
//
// The layer is built from a Master (the global resource manager) and one
// Daemon per workstation, communicating over Active Messages.
//
// Setting Config.Obs (or calling Cluster.Instrument) attaches an
// internal/obs registry: workstation-state and job-progress gauges,
// migration and user-delay latency histograms, and virtual-time spans
// for placements, migrations and checkpoints (docs/OBSERVABILITY.md).
package glunix

import (
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// AM handlers (glunix owns 0x60–0x6F).
const (
	hHeartbeat am.HandlerID = 0x60 + iota
	hExec
	hUserState
	hProcDone
	hBulk
)

// RecruitPolicy is what happens to a guest process when the
// workstation's user returns.
type RecruitPolicy int

const (
	// MigrateOnReturn moves the guest (with its memory state) to another
	// idle machine — the paper's design.
	MigrateOnReturn RecruitPolicy = iota + 1
	// RestartOnReturn kills the guest; the job restarts that process
	// from its last checkpoint elsewhere (ablation).
	RestartOnReturn
	// IgnoreUser leaves the guest running, stealing the user's machine
	// (ablation: what the paper says makes users hate you).
	IgnoreUser
)

// RecoverPolicy is whether a workstation that crashed and came back can
// rejoin the census and become recruitable again.
type RecoverPolicy int

const (
	// RejoinOnHeartbeat re-admits a recovered workstation as soon as its
	// daemon's first heartbeat reaches the master — the paper's design:
	// "if one workstation in the NOW crashes, any other can take its
	// place", and the crashed one returns after reboot.
	RejoinOnHeartbeat RecoverPolicy = iota + 1
	// NeverRejoin keeps a crashed workstation out of the census forever
	// (the pre-recovery behaviour, kept testable as an ablation).
	NeverRejoin
)

// String names the policy.
func (p RecoverPolicy) String() string {
	switch p {
	case RejoinOnHeartbeat:
		return "rejoin-on-heartbeat"
	case NeverRejoin:
		return "never-rejoin"
	default:
		return fmt.Sprintf("recover-policy(%d)", int(p))
	}
}

// String names the policy.
func (p RecruitPolicy) String() string {
	switch p {
	case MigrateOnReturn:
		return "migrate-on-return"
	case RestartOnReturn:
		return "restart-on-return"
	case IgnoreUser:
		return "ignore-user"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config shapes a GLUnix cluster.
type Config struct {
	// Workstations on the network (node 0 is the master and is not
	// recruited for jobs; workstations are nodes 1..Workstations).
	Workstations int
	// Fabric builds the network configuration for n nodes.
	Fabric func(nodes int) netsim.Config
	// Proto is the system communication configuration.
	Proto am.Config
	// NodeTemplate builds each workstation's hardware config.
	NodeTemplate func(id netsim.NodeID) node.Config
	// HeartbeatInterval between daemon heartbeats; a node is declared
	// down after HeartbeatMiss missed intervals.
	HeartbeatInterval sim.Duration
	HeartbeatMiss     int
	// IdleThreshold is the paper's availability rule: a machine is
	// available when there has been no user activity for one minute.
	IdleThreshold sim.Duration
	// ImageBytes is a guest process's memory image, transferred whole on
	// migration and checkpoint.
	ImageBytes int64
	// UserImageBytes is the interactive user's memory state, saved to a
	// buddy node before recruitment and restored on return.
	UserImageBytes int64
	// SaveRestore enables the memory save/restore guarantee.
	SaveRestore bool
	// Policy is the user-return policy.
	Policy RecruitPolicy
	// Recover is the census re-admission policy for workstations that
	// crash and later recover (see Cluster.Recover). Zero means
	// RejoinOnHeartbeat.
	Recover RecoverPolicy
	// CheckpointInterval is how often each guest process checkpoints its
	// image (enabling restart after a crash).
	CheckpointInterval sim.Duration
	// MaxEvictionsPerUserDay caps how many times per day any single
	// user may be delayed by a returning guest — the paper: "we
	// explicitly limit the number of times per day external processes
	// can delay any interactive user." A machine over its limit is not
	// recruited again until the day rolls over. Zero means unlimited.
	MaxEvictionsPerUserDay int
	// BarrierOverhead is CPU charged per gang-barrier crossing.
	BarrierOverhead sim.Duration
	// ChunkBytes is the unit of bulk image transfers.
	ChunkBytes int
	// Seed drives placement tie-breaking randomness.
	Seed int64
	// Obs, when non-nil, attaches observability collectors to the
	// cluster and its fabric at construction (see Cluster.Instrument and
	// netsim.Fabric.Instrument). The caller typically also passes the
	// same registry to Engine.Observe.
	Obs *obs.Registry
}

// DefaultConfig returns a building-scale GLUnix configuration on a
// switched fabric with lean communication.
func DefaultConfig(workstations int) Config {
	return Config{
		Workstations:           workstations,
		Fabric:                 netsim.ATM155,
		Proto:                  am.DefaultConfig(),
		NodeTemplate:           node.DefaultConfig,
		HeartbeatInterval:      5 * sim.Second,
		HeartbeatMiss:          3,
		IdleThreshold:          1 * sim.Minute,
		ImageBytes:             32 << 20,
		UserImageBytes:         64 << 20,
		SaveRestore:            true,
		Policy:                 MigrateOnReturn,
		Recover:                RejoinOnHeartbeat,
		MaxEvictionsPerUserDay: 4,
		CheckpointInterval:     10 * sim.Minute,
		BarrierOverhead:        50 * sim.Microsecond,
		ChunkBytes:             64 << 10,
		Seed:                   1,
	}
}

// Cluster is a GLUnix installation: master plus daemons on a fabric.
type Cluster struct {
	Cfg     Config
	Eng     *sim.Engine
	Fab     *netsim.Fabric
	Nodes   []*node.Node   // index = node id; 0 is the master host
	EPs     []*am.Endpoint // system endpoints (port 0, system class)
	Master  *Master
	Daemons []*Daemon // index 1..Workstations (index 0 nil)

	obs *obs.Registry   // nil unless Instrument attached a registry
	cm  *clusterMetrics // histogram handles, nil with obs
}

// New builds the cluster on e.
func New(e *sim.Engine, cfg Config) (*Cluster, error) {
	if cfg.Workstations <= 0 {
		return nil, fmt.Errorf("glunix: %d workstations", cfg.Workstations)
	}
	if cfg.Fabric == nil {
		cfg.Fabric = netsim.ATM155
	}
	if cfg.NodeTemplate == nil {
		cfg.NodeTemplate = node.DefaultConfig
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 5 * sim.Second
	}
	if cfg.HeartbeatMiss <= 0 {
		cfg.HeartbeatMiss = 3
	}
	if cfg.IdleThreshold <= 0 {
		cfg.IdleThreshold = sim.Minute
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 64 << 10
	}
	if cfg.Policy == 0 {
		cfg.Policy = MigrateOnReturn
	}
	if cfg.Recover == 0 {
		cfg.Recover = RejoinOnHeartbeat
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 10 * sim.Minute
	}
	total := cfg.Workstations + 1
	fab, err := netsim.New(e, cfg.Fabric(total))
	if err != nil {
		return nil, fmt.Errorf("glunix: %w", err)
	}
	c := &Cluster{Cfg: cfg, Eng: e, Fab: fab}
	c.Nodes = make([]*node.Node, total)
	c.EPs = make([]*am.Endpoint, total)
	for i := 0; i < total; i++ {
		c.Nodes[i] = node.New(e, cfg.NodeTemplate(netsim.NodeID(i)))
		c.EPs[i] = am.NewEndpoint(e, c.Nodes[i], fab, cfg.Proto)
		// Bulk transfer sink on every node.
		c.EPs[i].Register(hBulk, func(p *sim.Proc, m am.Msg) (any, int) { return nil, 0 })
	}
	c.Master = newMaster(c)
	c.Daemons = make([]*Daemon, total)
	for i := 1; i < total; i++ {
		c.Daemons[i] = newDaemon(c, i)
	}
	if cfg.Obs != nil {
		fab.Instrument(cfg.Obs)
		c.Instrument(cfg.Obs)
	}
	return c, nil
}

// Crash simulates a fail-stop crash of workstation ws: its endpoint
// detaches, its daemon stops heartbeating, and every guest process on it
// dies. The master notices through missed heartbeats.
func (c *Cluster) Crash(ws int) {
	if ws <= 0 || ws >= len(c.EPs) {
		return
	}
	c.Daemons[ws].crashed = true
	c.EPs[ws].Detach()
	c.Master.killProcsOn(ws)
}

// Recover reboots a crashed workstation ws: its endpoint reattaches to
// the fabric and its daemon restarts with fresh console state (no user
// activity, no saved image — a reboot loses local state; anything the
// node held for others lives on, because it was parked elsewhere). The
// master re-admits the machine to the census when the restarted
// daemon's first heartbeat arrives, unless Cfg.Recover is NeverRejoin.
// Recovering a workstation that never crashed is a no-op.
func (c *Cluster) Recover(ws int) {
	if ws <= 0 || ws >= len(c.EPs) {
		return
	}
	d := c.Daemons[ws]
	if d == nil || !d.crashed {
		return
	}
	// If the master had not yet noticed the crash (recovery inside the
	// heartbeat deadline), its census still shows the dead guest; the
	// guest's processes died with the node, so the job must restart from
	// checkpoint now — heartbeats resuming would otherwise mask the
	// crash and strand the job forever.
	if g := c.Master.ws[ws].guest; g != nil && g.killed {
		c.Master.ws[ws].guest = nil
		c.Master.restartJob(g.job)
	}
	d.crashed = false
	d.userActive = false
	d.imageSaved = false
	d.seq++
	d.idleTimer.Stop()
	c.EPs[ws].Reattach()
	c.Eng.Spawn(fmt.Sprintf("glunix/daemon%d", ws), d.heartbeatLoop)
}

// Up reports whether the master's census currently lists workstation
// ws as up (it may lag a crash by the heartbeat deadline).
func (c *Cluster) Up(ws int) bool {
	if ws <= 0 || ws >= len(c.Master.ws) {
		return false
	}
	return c.Master.ws[ws].up
}

// transferBulk streams n bytes from the system endpoint of src to dst in
// ChunkBytes units, blocking p until the destination has acknowledged
// everything — the primitive under image save, restore, migration and
// checkpoint.
func (c *Cluster) transferBulk(p *sim.Proc, src, dst int, n int64) error {
	ep := c.EPs[src]
	preFailures := ep.Stats().Failures
	chunk := int64(c.Cfg.ChunkBytes)
	for sent := int64(0); sent < n; sent += chunk {
		sz := chunk
		if n-sent < sz {
			sz = n - sent
		}
		ep.SendAsync(p, netsim.NodeID(dst), hBulk, nil, int(sz))
	}
	ep.Flush(p)
	if ep.Stats().Failures > preFailures {
		return fmt.Errorf("glunix: bulk transfer %d→%d lost data", src, dst)
	}
	return nil
}
