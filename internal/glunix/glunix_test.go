package glunix

import (
	"errors"
	"testing"

	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/trace"
)

// testConfig shrinks timings so unit tests run fast.
func testConfig(ws int) Config {
	cfg := DefaultConfig(ws)
	cfg.HeartbeatInterval = 1 * sim.Second
	cfg.IdleThreshold = 10 * sim.Second
	cfg.ImageBytes = 1 << 20     // 1 MB guest images
	cfg.UserImageBytes = 2 << 20 // 2 MB user images
	cfg.CheckpointInterval = 30 * sim.Second
	return cfg
}

func buildCluster(t *testing.T, cfg Config) (*sim.Engine, *Cluster) {
	t.Helper()
	e := sim.NewEngine(cfg.Seed)
	c, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, c
}

func runFor(t *testing.T, e *sim.Engine, d sim.Duration) {
	t.Helper()
	if err := e.RunUntil(d); err != nil && !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
}

func TestJobRunsToCompletionOnIdleCluster(t *testing.T) {
	e, c := buildCluster(t, testConfig(4))
	j := NewJob(1, 4, 10*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	runFor(t, e, 2*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job not done; master: %s", c.Master.debugString())
	}
	// 10s of work per proc plus save-image and barrier costs: close to 10s.
	if r := j.Response(); r < 10*sim.Second || r > 20*sim.Second {
		t.Fatalf("response = %v, want ≈10s", r)
	}
	if c.Master.Stats().JobsCompleted != 1 {
		t.Fatalf("master stats: %+v", c.Master.Stats())
	}
}

func TestJobQueuesWhenClusterTooBusy(t *testing.T) {
	e, c := buildCluster(t, testConfig(4))
	j1 := NewJob(1, 4, 20*sim.Second, sim.Second)
	j2 := NewJob(2, 4, 10*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j1) })
	e.At(sim.Second, func() { c.Master.Submit(j2) })
	runFor(t, e, 5*sim.Minute)
	defer e.Close()
	if !j1.Done() || !j2.Done() {
		t.Fatalf("jobs not done: j1=%v j2=%v; %s", j1.Done(), j2.Done(), c.Master.debugString())
	}
	if j2.Started < j1.Finished {
		t.Fatalf("j2 started at %v before j1 finished at %v (no free nodes existed)",
			j2.Started, j1.Finished)
	}
}

func TestSmallJobsSharePartitions(t *testing.T) {
	e, c := buildCluster(t, testConfig(4))
	j1 := NewJob(1, 2, 20*sim.Second, sim.Second)
	j2 := NewJob(2, 2, 20*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j1); c.Master.Submit(j2) })
	runFor(t, e, 2*sim.Minute)
	defer e.Close()
	if !j1.Done() || !j2.Done() {
		t.Fatal("jobs not done")
	}
	// Both gangs of 2 fit on 4 nodes: they overlap rather than serialise.
	if j2.Started >= j1.Finished {
		t.Fatalf("2-node jobs serialised: j2 start %v, j1 finish %v", j2.Started, j1.Finished)
	}
}

func TestUserActivityBlocksRecruitment(t *testing.T) {
	cfg := testConfig(3)
	e, c := buildCluster(t, cfg)
	// Users active on nodes 2 and 3 from the start.
	e.At(0, func() {
		c.Daemons[2].SetUserActive(true)
		c.Daemons[3].SetUserActive(true)
	})
	j := NewJob(1, 2, 5*sim.Second, sim.Second)
	e.At(sim.Second, func() { c.Master.Submit(j) })
	runFor(t, e, sim.Minute)
	if j.Done() {
		t.Fatal("gang of 2 ran with only 1 idle machine")
	}
	// Users leave; after the idle threshold the machines are recruited.
	e.At(sim.Minute, func() {
		c.Daemons[2].SetUserActive(false)
		c.Daemons[3].SetUserActive(false)
	})
	runFor(t, e, 3*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job never ran after machines went idle; %s", c.Master.debugString())
	}
	if j.Started < sim.Minute+cfg.IdleThreshold {
		t.Fatalf("recruited at %v, before the idle threshold elapsed", j.Started)
	}
}

func TestUserReturnMigratesGuest(t *testing.T) {
	cfg := testConfig(4)
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 2, 30*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	// The job lands on nodes 1 and 2 (lowest idle). At t=10s the user of
	// node 1 returns; the guest must migrate to node 3 or 4.
	e.At(10*sim.Second, func() { c.Daemons[1].SetUserActive(true) })
	runFor(t, e, 5*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job not done; %s", c.Master.debugString())
	}
	st := c.Master.Stats()
	if st.Evictions != 1 || st.Migrations != 1 {
		t.Fatalf("evictions=%d migrations=%d, want 1/1", st.Evictions, st.Migrations)
	}
	for _, g := range j.procs {
		if g.WS() == 1 {
			t.Fatal("a guest still sits on the user's machine")
		}
	}
}

func TestMemorySaveAndRestore(t *testing.T) {
	cfg := testConfig(3)
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 1, 20*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	e.At(5*sim.Second, func() { c.Daemons[1].SetUserActive(true) })
	runFor(t, e, 2*sim.Minute)
	defer e.Close()
	st := c.Master.Stats()
	if st.ImageSaves == 0 {
		t.Fatal("no memory image saved at recruitment")
	}
	if st.ImageRestores == 0 {
		t.Fatal("user's memory image not restored on return")
	}
	if st.UserDelays.N() == 0 {
		t.Fatal("no user-delay measurement")
	}
	// The paper's bound: restore of the image in under 4 seconds. With a
	// 2 MB image on ATM this is far under; just require sub-second here
	// and check the 64 MB figure in the experiment harness.
	if max := st.UserDelays.Percentile(100); max > 4 {
		t.Fatalf("user waited %.2fs for their machine", max)
	}
}

func TestSaveRestoreDisabled(t *testing.T) {
	cfg := testConfig(3)
	cfg.SaveRestore = false
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 1, 5*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	runFor(t, e, sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatal("job not done")
	}
	if c.Master.Stats().ImageSaves != 0 {
		t.Fatal("image saved despite SaveRestore=false")
	}
}

func TestRestartOnReturnPolicy(t *testing.T) {
	cfg := testConfig(4)
	cfg.Policy = RestartOnReturn
	cfg.CheckpointInterval = 5 * sim.Second
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 2, 30*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	e.At(15*sim.Second, func() { c.Daemons[1].SetUserActive(true) })
	runFor(t, e, 10*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job not done; %s", c.Master.debugString())
	}
	st := c.Master.Stats()
	if st.Restarts == 0 {
		t.Fatal("restart policy did not restart the job")
	}
	if st.Migrations != 0 {
		t.Fatal("restart policy should not migrate")
	}
}

func TestIgnoreUserPolicyDisturbs(t *testing.T) {
	cfg := testConfig(3)
	cfg.Policy = IgnoreUser
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 1, 20*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	e.At(5*sim.Second, func() { c.Daemons[1].SetUserActive(true) })
	runFor(t, e, 2*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatal("job not done")
	}
	st := c.Master.Stats()
	if st.UserDisturbed != 1 || st.Migrations != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNodeCrashRestartsJobFromCheckpoint(t *testing.T) {
	cfg := testConfig(6)
	cfg.CheckpointInterval = 5 * sim.Second
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 2, 40*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	e.At(20*sim.Second, func() { c.Crash(1) })
	runFor(t, e, 15*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job not recovered after crash; %s", c.Master.debugString())
	}
	st := c.Master.Stats()
	if st.NodesDown != 1 {
		t.Fatalf("nodes down = %d", st.NodesDown)
	}
	if j.Restarts == 0 {
		t.Fatal("job did not restart")
	}
	if j.ckptDone == 0 {
		t.Fatal("no checkpoint was taken before the crash")
	}
	// Restart resumed from checkpoint: total elapsed far less than
	// running the whole job twice plus detection time would imply if it
	// restarted from zero... primarily we check it finished and made
	// progress from a checkpoint.
	for _, g := range j.procs {
		if g.WS() == 1 {
			t.Fatal("restarted proc placed on the dead node")
		}
	}
}

func TestCrashOfUnrelatedNodeDoesNotAffectJob(t *testing.T) {
	cfg := testConfig(5)
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 2, 20*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	e.At(5*sim.Second, func() { c.Crash(5) }) // job is on 1,2
	runFor(t, e, 3*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatal("job not done")
	}
	if j.Restarts != 0 {
		t.Fatal("unrelated crash restarted the job")
	}
}

func TestHeartbeatDetectionLatency(t *testing.T) {
	cfg := testConfig(3)
	e, c := buildCluster(t, cfg)
	e.At(10*sim.Second, func() { c.Crash(2) })
	runFor(t, e, sim.Minute)
	defer e.Close()
	if c.Master.Stats().NodesDown != 1 {
		t.Fatal("crash not detected")
	}
	if c.Master.ws[2].up {
		t.Fatal("dead node still marked up")
	}
	if c.Master.ws[1].up != true || c.Master.ws[3].up != true {
		t.Fatal("live nodes marked down")
	}
}

func TestStalledEvictionResumesWhenNodeFrees(t *testing.T) {
	cfg := testConfig(2)
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 2, 30*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	// User returns to node 1 while node 2 is also busy with the gang:
	// no idle target exists, the guest stalls.
	e.At(5*sim.Second, func() { c.Daemons[1].SetUserActive(true) })
	// Later the user leaves again; after the threshold the machine is
	// idle and the stalled guest resumes there.
	e.At(20*sim.Second, func() { c.Daemons[1].SetUserActive(false) })
	runFor(t, e, 10*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatalf("job never finished; %s", c.Master.debugString())
	}
	if c.Master.Stats().StalledEvicts == 0 {
		t.Fatal("expected a stalled eviction")
	}
}

func TestGangBarrierCouplesProgress(t *testing.T) {
	// With one gang member paused, the others must stall at the barrier.
	cfg := testConfig(4)
	e, c := buildCluster(t, cfg)
	j := NewJob(1, 2, 30*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	var p0, p1 sim.Duration
	e.At(10*sim.Second, func() {
		j.procs[0].paused = true
	})
	e.At(14*sim.Second, func() {
		p0, p1 = j.procs[0].Progress(), j.procs[1].Progress()
		j.procs[0].unpause()
	})
	runFor(t, e, 5*sim.Minute)
	defer e.Close()
	if !j.Done() {
		t.Fatal("job not done")
	}
	// While rank 0 was paused, rank 1 can be at most one grain ahead.
	if p1 > p0+j.Grain {
		t.Fatalf("gang decoupled: p0=%v p1=%v", p0, p1)
	}
}

func TestRunMixedSmall(t *testing.T) {
	acfg := trace.DefaultActivityConfig(8, 1)
	activity := trace.GenerateActivity(acfg)
	jobs := []trace.ParallelJob{
		{ID: 0, Arrive: 10 * sim.Hour, Nodes: 4, Work: 2 * sim.Minute, CommGrain: 2 * sim.Second},
		{ID: 1, Arrive: 11 * sim.Hour, Nodes: 2, Work: 1 * sim.Minute, CommGrain: 2 * sim.Second},
	}
	cfg := testConfig(8)
	cfg.HeartbeatInterval = 30 * sim.Second
	e := sim.NewEngine(1)
	res, err := RunMixed(e, cfg, activity, jobs, 24*sim.Hour)
	e.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted != 2 {
		t.Fatalf("completed %d/2 jobs; master %+v", res.JobsCompleted, res.Master)
	}
	if res.MeanResponse <= 0 {
		t.Fatal("no mean response")
	}
}

func TestSlowdownComputation(t *testing.T) {
	now := MixedResult{Responses: map[int]sim.Duration{1: 110, 2: 220}}
	ded := MixedResult{Responses: map[int]sim.Duration{1: 100, 2: 200}}
	if s := Slowdown(now, ded); s < 1.09 || s > 1.11 {
		t.Fatalf("slowdown = %v, want 1.1", s)
	}
}

func TestCoschedulerGivesEachJobExclusiveSlots(t *testing.T) {
	e, c := buildCluster(t, testConfig(2))
	cpus := []*node.CPU{c.Nodes[1].CPU, c.Nodes[2].CPU}
	cs := NewCoscheduler(e, cpus, 100*sim.Millisecond)
	cs.SetJobs([]string{"job-a", "job-b"})
	cs.Start()
	var aDone, bDone sim.Time
	e.Spawn("a", func(p *sim.Proc) {
		c.Nodes[1].CPU.ComputeAs(p, "job-a", 300*sim.Millisecond)
		aDone = p.Now()
	})
	e.Spawn("b", func(p *sim.Proc) {
		c.Nodes[1].CPU.ComputeAs(p, "job-b", 300*sim.Millisecond)
		bDone = p.Now()
	})
	runFor(t, e, 5*sim.Second)
	defer e.Close()
	if aDone == 0 || bDone == 0 {
		t.Fatal("tasks did not finish under rotation")
	}
	// Each job gets half the slots: both need ≈600 ms wall time.
	if aDone < 400*sim.Millisecond || bDone < 400*sim.Millisecond {
		t.Fatalf("slots not enforced: a=%v b=%v", aDone, bDone)
	}
	cs.Stop()
}

func TestCoschedulerStopOpensCPUs(t *testing.T) {
	e, c := buildCluster(t, testConfig(1))
	cs := NewCoscheduler(e, []*node.CPU{c.Nodes[1].CPU}, 50*sim.Millisecond)
	cs.SetJobs([]string{"job-x"})
	cs.Start()
	cs.Stop()
	var done sim.Time
	e.Spawn("other", func(p *sim.Proc) {
		c.Nodes[1].CPU.ComputeAs(p, "job-y", 100*sim.Millisecond)
		done = p.Now()
	})
	runFor(t, e, sim.Second)
	defer e.Close()
	if done == 0 || done > 300*sim.Millisecond {
		t.Fatalf("CPU still filtered after Stop: done=%v", done)
	}
}

func TestPolicyAndConfigValidation(t *testing.T) {
	if MigrateOnReturn.String() != "migrate-on-return" || RecruitPolicy(9).String() == "" {
		t.Fatal("policy names wrong")
	}
	e := sim.NewEngine(1)
	defer e.Close()
	if _, err := New(e, Config{}); err == nil {
		t.Fatal("zero workstations accepted")
	}
}
