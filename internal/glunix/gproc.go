package glunix

import (
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/sim"
)

// Job is one parallel program: a gang of NProcs processes, each needing
// Work of CPU time, synchronising at a barrier every Grain of progress.
// Many parallel programs "run as slowly as their slowest process" (the
// paper) — the barrier is what makes migration and eviction delays
// visible to the whole gang.
type Job struct {
	ID     int
	NProcs int
	Work   sim.Duration // per-process CPU demand
	Grain  sim.Duration // compute between barriers

	Submitted, Started, Finished sim.Time
	Restarts                     int

	cluster     *Cluster
	incarnation int
	aborted     bool
	done        bool
	ckptDone    sim.Duration // work completed as of the last checkpoint
	doneProcs   int
	procs       []*GProc
	barrier     *gangBarrier
}

// NewJob creates a job; Grain defaults to 100 ms when zero.
func NewJob(id, nprocs int, work, grain sim.Duration) *Job {
	if grain <= 0 {
		grain = 100 * sim.Millisecond
	}
	if nprocs <= 0 {
		nprocs = 1
	}
	return &Job{ID: id, NProcs: nprocs, Work: work, Grain: grain}
}

// Done reports completion.
func (j *Job) Done() bool { return j.done }

// Response is the job's queueing + execution time (0 until finished).
func (j *Job) Response() sim.Duration {
	if !j.done {
		return 0
	}
	return j.Finished - j.Submitted
}

// class is the CPU scheduling class of the job's processes.
func (j *Job) class() string { return fmt.Sprintf("job-%d", j.ID) }

// noteCkpt records rank's checkpointed progress; the job's restart point
// is the minimum across the gang.
func (j *Job) noteCkpt() {
	min := j.Work
	for _, g := range j.procs {
		if g == nil {
			return
		}
		if g.ckpt < min {
			min = g.ckpt
		}
	}
	if min > j.ckptDone {
		j.ckptDone = min
	}
}

// gangBarrier synchronises one incarnation of a gang.
type gangBarrier struct {
	job   *Job
	n     int
	count int
	round int
	sig   *sim.Signal
}

func newGangBarrier(e *sim.Engine, j *Job) *gangBarrier {
	return &gangBarrier{job: j, n: j.NProcs, sig: sim.NewSignal(e, fmt.Sprintf("job%d/barrier", j.ID))}
}

// arrive blocks until the whole gang has arrived; it reports false when
// the incarnation was aborted while waiting.
func (b *gangBarrier) arrive(p *sim.Proc) bool {
	if b.job.aborted {
		return false
	}
	b.count++
	if b.count == b.n {
		b.count = 0
		b.round++
		b.sig.Broadcast()
		return true
	}
	r := b.round
	for b.round == r && !b.job.aborted {
		b.sig.Wait(p)
	}
	return !b.job.aborted
}

// abort releases all waiters with failure.
func (b *gangBarrier) abort() { b.sig.Broadcast() }

// GProc is one member of a gang, currently placed on workstation ws.
type GProc struct {
	c    *Cluster
	job  *Job
	rank int
	inc  int
	ws   int

	paused    bool
	parked    bool
	resume    *sim.Signal
	pauseAck  *sim.Signal
	killed    bool
	progress  sim.Duration // absolute work completed
	ckpt      sim.Duration // progress as of this proc's last checkpoint
	lastCkpt  sim.Time
	migrating bool
}

func newGProc(c *Cluster, j *Job, rank, ws int) *GProc {
	return &GProc{
		c:        c,
		job:      j,
		rank:     rank,
		inc:      j.incarnation,
		ws:       ws,
		resume:   sim.NewSignal(c.Eng, fmt.Sprintf("job%d/r%d/resume", j.ID, rank)),
		pauseAck: sim.NewSignal(c.Eng, fmt.Sprintf("job%d/r%d/ack", j.ID, rank)),
		progress: j.ckptDone,
		ckpt:     j.ckptDone,
	}
}

// start launches the process body.
func (g *GProc) start() {
	g.lastCkpt = g.c.Eng.Now()
	g.c.Eng.Spawn(fmt.Sprintf("job%d/rank%d", g.job.ID, g.rank), g.run)
}

// pause asks the process to stop at its next grain boundary and blocks
// the caller until it has parked (its memory is then stable to copy).
func (g *GProc) pause(p *sim.Proc) {
	g.paused = true
	for !g.parked && !g.killed && !g.job.aborted {
		g.pauseAck.Wait(p)
	}
}

// unpause resumes a parked process.
func (g *GProc) unpause() {
	g.paused = false
	g.resume.Broadcast()
}

func (g *GProc) dead() bool {
	return g.killed || g.job.aborted || g.job.incarnation != g.inc
}

func (g *GProc) run(p *sim.Proc) {
	cfg := g.c.Cfg
	barrier := g.job.barrier
	for g.progress < g.job.Work {
		if g.dead() {
			return
		}
		for g.paused && !g.dead() {
			g.parked = true
			g.pauseAck.Broadcast()
			g.resume.Wait(p)
		}
		g.parked = false
		if g.dead() {
			return
		}
		grain := g.job.Grain
		if rem := g.job.Work - g.progress; rem < grain {
			grain = rem
		}
		g.c.Nodes[g.ws].CPU.ComputeAs(p, g.job.class(), grain)
		g.progress += grain
		if cfg.BarrierOverhead > 0 {
			g.c.Nodes[g.ws].CPU.ComputeAs(p, g.job.class(), cfg.BarrierOverhead)
		}
		if !barrier.arrive(p) {
			return
		}
		if cfg.CheckpointInterval > 0 && p.Now()-g.lastCkpt >= cfg.CheckpointInterval {
			g.checkpoint(p)
		}
	}
	// Report completion to the master over the network.
	_, _ = g.c.EPs[g.ws].Call(p, netsim.NodeID(0), hProcDone,
		procDoneArgs{jobID: g.job.ID, rank: g.rank, incarnation: g.inc}, 32)
}

// checkpoint streams the process image to the buddy node and records the
// restart point.
func (g *GProc) checkpoint(p *sim.Proc) {
	sp := g.c.obs.StartSpan("glunix.checkpoint", g.ws)
	if sp != 0 {
		g.c.obs.Annotate(sp, fmt.Sprintf("job %d rank %d", g.job.ID, g.rank))
	}
	defer g.c.obs.EndSpan(sp)
	buddy := g.c.Master.pickBuddy(g.ws)
	if err := g.c.transferBulk(p, g.ws, buddy, g.c.Cfg.ImageBytes); err != nil {
		return
	}
	g.ckpt = g.progress
	g.lastCkpt = p.Now()
	g.job.noteCkpt()
	g.c.Master.st.CheckpointOps++
}

// Progress reports absolute work completed (testing/diagnostics).
func (g *GProc) Progress() sim.Duration { return g.progress }

// WS reports the process's current workstation.
func (g *GProc) WS() int { return g.ws }
