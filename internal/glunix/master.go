package glunix

import (
	"fmt"
	"sort"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
)

// wsState is the master's view of one workstation.
type wsState struct {
	up         bool
	lastHB     sim.Time
	userBusy   bool // user active right now (daemon-reported, thresholded)
	guest      *GProc
	buddy      int  // node holding this workstation's saved user image
	imageSaved bool // user image currently parked on the buddy
	// drained marks a machine removed from service for a hot-swap
	// upgrade: never recruited, existing guest migrated away.
	drained bool
	// cordoned marks a machine unschedulable by operator request: no
	// new guest is placed on it, but an existing guest stays (the
	// non-disruptive half of a drain).
	cordoned bool
	// evictions records when this machine's user was delayed by a
	// departing guest, for the per-day delay limit.
	evictions []sim.Time
}

// MasterStats aggregates global-layer activity.
type MasterStats struct {
	JobsSubmitted int64
	JobsCompleted int64
	Migrations    int64
	Evictions     int64 // user returned to a recruited machine
	Restarts      int64 // job restarts from checkpoint (crash or policy)
	NodesDown     int64
	Rejoins       int64        // recovered workstations re-admitted to the census
	UserDelays    stats.Sample // seconds each returning user waited for their machine
	StalledEvicts int64        // evictions that had to wait for an idle target
	UserDisturbed int64        // IgnoreUser policy: user shared with a guest
	ImageSaves    int64
	ImageRestores int64
	CheckpointOps int64
}

// Master is the GLUnix global resource manager, hosted on node 0.
type Master struct {
	c     *Cluster
	ep    *am.Endpoint
	ws    []wsState // index by node id; 0 unused
	queue []*Job
	jobs  []*Job
	work  *sim.Signal
	st    MasterStats

	pendingEvict []*GProc // paused guests waiting for an idle target
}

type userStateArgs struct {
	ws   int
	busy bool
}

type execArgs struct {
	ws    int
	buddy int
}

type procDoneArgs struct {
	jobID, rank, incarnation int
}

func newMaster(c *Cluster) *Master {
	m := &Master{
		c:    c,
		ep:   c.EPs[0],
		ws:   make([]wsState, c.Cfg.Workstations+1),
		work: sim.NewSignal(c.Eng, "glunix/master"),
	}
	now := c.Eng.Now()
	for i := 1; i < len(m.ws); i++ {
		m.ws[i] = wsState{up: true, lastHB: now}
	}
	m.ep.Register(hHeartbeat, m.onHeartbeat)
	m.ep.Register(hUserState, m.onUserState)
	m.ep.Register(hProcDone, m.onProcDone)
	c.Eng.Spawn("glunix/placer", m.placeLoop)
	c.Eng.Spawn("glunix/hbmon", m.hbMonitor)
	return m
}

// Stats returns a snapshot of master counters.
func (m *Master) Stats() MasterStats { return m.st }

// Jobs returns every job ever submitted (for reporting).
func (m *Master) Jobs() []*Job { return m.jobs }

// Submit enqueues a parallel job for placement. It is callable from any
// simulated process or event callback.
func (m *Master) Submit(j *Job) {
	j.Submitted = m.c.Eng.Now()
	j.cluster = m.c
	m.st.JobsSubmitted++
	m.jobs = append(m.jobs, j)
	m.queue = append(m.queue, j)
	m.work.Broadcast()
}

// available lists idle, up, unrecruited workstations in id order,
// excluding drained machines and machines whose user has already been
// delayed the maximum number of times today.
func (m *Master) available() []int {
	var out []int
	now := m.c.Eng.Now()
	for i := 1; i < len(m.ws); i++ {
		s := &m.ws[i]
		if !s.up || s.userBusy || s.guest != nil || s.drained || s.cordoned {
			continue
		}
		if limit := m.c.Cfg.MaxEvictionsPerUserDay; limit > 0 {
			recent := 0
			for _, t := range s.evictions {
				if now-t < 24*sim.Hour {
					recent++
				}
			}
			if recent >= limit {
				continue
			}
		}
		out = append(out, i)
	}
	return out
}

// AvailableCount reports how many workstations are recruitable now.
func (m *Master) AvailableCount() int { return len(m.available()) }

// placeLoop runs forever: retry stalled evictions first (a returning
// user outranks a queued job), then place queued jobs FCFS.
func (m *Master) placeLoop(p *sim.Proc) {
	for {
		progress := false
		// Finish stalled evictions as machines free up.
		for len(m.pendingEvict) > 0 {
			g := m.pendingEvict[0]
			idle := m.available()
			if len(idle) == 0 {
				break
			}
			m.pendingEvict = m.pendingEvict[1:]
			if g.killed || g.job.aborted {
				continue
			}
			m.migrate(p, g, idle[0])
			progress = true
		}
		for len(m.queue) > 0 {
			j := m.queue[0]
			idle := m.available()
			if len(idle) < j.NProcs {
				break
			}
			m.queue = m.queue[1:]
			m.startJob(p, j, idle[:j.NProcs])
			progress = true
		}
		if !progress {
			m.work.Wait(p)
		}
	}
}

// startJob recruits the given workstations and launches the gang.
func (m *Master) startJob(p *sim.Proc, j *Job, nodes []int) {
	sp := m.c.obs.StartSpan("glunix.schedule", -1)
	if sp != 0 {
		m.c.obs.Annotate(sp, fmt.Sprintf("job %d × %d procs", j.ID, j.NProcs))
	}
	defer m.c.obs.EndSpan(sp)
	if j.Started == 0 {
		j.Started = m.c.Eng.Now()
	}
	j.incarnation++
	j.aborted = false
	j.barrier = newGangBarrier(m.c.Eng, j)
	j.doneProcs = 0
	j.procs = make([]*GProc, j.NProcs)
	for rank, ws := range nodes {
		// Recruit: the daemon saves the user's memory image first.
		buddy := m.pickBuddy(ws)
		ok, err := m.ep.Call(p, netsim.NodeID(ws), hExec, execArgs{ws: ws, buddy: buddy}, 48)
		if err != nil || ok != true {
			// Node died (or could not save its image) between the
			// availability check and exec; the heartbeat monitor will
			// handle it. Restart placement.
			m.queue = append([]*Job{j}, m.queue...)
			m.work.Broadcast()
			return
		}
		m.ws[ws].buddy = buddy
		g := newGProc(m.c, j, rank, ws)
		j.procs[rank] = g
		m.ws[ws].guest = g
	}
	for _, g := range j.procs {
		g.start()
	}
}

// pickBuddy selects a node to park a workstation's memory image on: the
// next up node after ws in ring order, so simultaneous recruitment of
// many machines spreads its bulk transfers pairwise around the ring
// instead of incasting one victim.
func (m *Master) pickBuddy(ws int) int {
	n := len(m.ws) - 1 // workstations are 1..n
	for off := 1; off < n; off++ {
		cand := (ws-1+off)%n + 1
		if cand != ws && m.ws[cand].up {
			return cand
		}
	}
	return 0 // fall back to the master host
}

func (m *Master) onHeartbeat(p *sim.Proc, msg am.Msg) (any, int) {
	ws, ok := msg.Arg.(int)
	if !ok || ws <= 0 || ws >= len(m.ws) {
		return nil, 0
	}
	s := &m.ws[ws]
	if !s.up {
		// A heartbeat from a machine we declared down means it rebooted
		// (Cluster.Recover). Re-admit it per policy: fresh console state,
		// no guest, no saved image — recruitable again.
		if m.c.Cfg.Recover == NeverRejoin {
			return nil, 0
		}
		s.up = true
		s.userBusy = false
		s.guest = nil
		s.imageSaved = false
		m.st.Rejoins++
		m.work.Broadcast()
	}
	s.lastHB = m.c.Eng.Now()
	return nil, 0
}

// hbMonitor declares nodes down after HeartbeatMiss silent intervals.
func (m *Master) hbMonitor(p *sim.Proc) {
	interval := m.c.Cfg.HeartbeatInterval
	deadline := interval * sim.Duration(m.c.Cfg.HeartbeatMiss)
	for {
		p.Sleep(interval)
		now := m.c.Eng.Now()
		for i := 1; i < len(m.ws); i++ {
			s := &m.ws[i]
			if s.up && now-s.lastHB > deadline {
				m.markDown(p, i)
			}
		}
	}
}

// markDown handles a crashed workstation: its guest's job restarts from
// checkpoint on other machines.
func (m *Master) markDown(p *sim.Proc, ws int) {
	s := &m.ws[ws]
	s.up = false
	m.st.NodesDown++
	if g := s.guest; g != nil {
		s.guest = nil
		m.restartJob(g.job)
	}
	m.work.Broadcast()
}

// killProcsOn marks every guest proc on ws dead (called by
// Cluster.Crash; discovery still flows through heartbeats).
func (m *Master) killProcsOn(ws int) {
	if g := m.ws[ws].guest; g != nil {
		g.killed = true
		g.resume.Broadcast()
	}
}

// restartJob aborts the current incarnation and requeues the remainder
// of the job, which resumes from its last checkpoint.
func (m *Master) restartJob(j *Job) {
	if j.done || j.aborted {
		return
	}
	j.aborted = true
	m.st.Restarts++
	j.Restarts++
	if j.barrier != nil {
		j.barrier.abort()
	}
	for _, g := range j.procs {
		if g == nil {
			continue
		}
		g.killed = true
		g.resume.Broadcast()
		if g.ws > 0 && g.ws < len(m.ws) && m.ws[g.ws].guest == g {
			m.ws[g.ws].guest = nil
		}
	}
	m.queue = append(m.queue, j)
	m.work.Broadcast()
}

// onUserState reacts to daemon reports of user activity transitions.
func (m *Master) onUserState(p *sim.Proc, msg am.Msg) (any, int) {
	args, ok := msg.Arg.(userStateArgs)
	if !ok || args.ws <= 0 || args.ws >= len(m.ws) {
		return nil, 0
	}
	s := &m.ws[args.ws]
	if !args.busy {
		s.userBusy = false
		m.work.Broadcast()
		return nil, 0
	}
	returnedAt := m.c.Eng.Now()
	s.userBusy = true
	migrated := sim.NewWaitGroup(m.c.Eng, "glunix/evict")
	if g := s.guest; g != nil {
		m.st.Evictions++
		s.evictions = append(s.evictions, returnedAt)
		switch m.c.Cfg.Policy {
		case IgnoreUser:
			m.st.UserDisturbed++
			// Guest stays; user shares the machine.
		case RestartOnReturn:
			s.guest = nil
			m.restartJob(g.job)
		default: // MigrateOnReturn
			s.guest = nil
			g.pause(p)
			// Migrate concurrently with the user's memory restore: the
			// guest image leaves on the workstation's transmit link
			// while the user image arrives on its receive link — full
			// duplex on a switched fabric. The user's wait is governed
			// by the restore, which is what the paper bounds at 4 s.
			migrated.Add(1)
			m.c.Eng.Spawn("glunix/migrate", func(mp *sim.Proc) {
				defer migrated.Done()
				idle := m.available()
				if len(idle) > 0 {
					m.migrate(mp, g, idle[0])
				} else {
					m.st.StalledEvicts++
					m.pendingEvict = append(m.pendingEvict, g)
				}
			})
		}
	}
	// Restore the user's memory image so the machine is exactly as they
	// left it — the paper's guarantee.
	if m.c.Cfg.SaveRestore && s.imageSaved {
		d := m.c.Daemons[args.ws]
		if err := m.c.transferBulk(p, s.buddy, args.ws, m.c.Cfg.UserImageBytes); err == nil {
			s.imageSaved = false
			if d != nil {
				d.imageSaved = false
			}
			m.st.ImageRestores++
		}
	}
	m.st.UserDelays.Add((m.c.Eng.Now() - returnedAt).Seconds())
	if cm := m.c.cm; cm != nil {
		cm.userDelayNs.Observe(int64(m.c.Eng.Now() - returnedAt))
	}
	migrated.Wait(p)
	return nil, 0
}

// migrate moves a paused guest to target and resumes it.
func (m *Master) migrate(p *sim.Proc, g *GProc, target int) {
	began := m.c.Eng.Now()
	sp := m.c.obs.StartSpan("glunix.migrate", g.ws)
	if sp != 0 {
		m.c.obs.Annotate(sp, fmt.Sprintf("job %d rank %d → ws %d", g.job.ID, g.rank, target))
	}
	defer m.c.obs.EndSpan(sp)
	// Recruit the target first (saves its user image if needed).
	buddy := m.pickBuddy(target)
	if _, err := m.ep.Call(p, netsim.NodeID(target), hExec, execArgs{ws: target, buddy: buddy}, 48); err != nil {
		m.c.obs.Annotate(sp, "target exec failed; requeued")
		m.pendingEvict = append(m.pendingEvict, g)
		return
	}
	m.ws[target].buddy = buddy
	if err := m.c.transferBulk(p, g.ws, target, m.c.Cfg.ImageBytes); err != nil {
		// Source died mid-migration: restart from checkpoint.
		m.c.obs.Annotate(sp, "source lost mid-transfer; restarting job")
		m.restartJob(g.job)
		return
	}
	m.st.Migrations++
	if cm := m.c.cm; cm != nil {
		cm.migrateNs.Observe(int64(m.c.Eng.Now() - began))
	}
	g.ws = target
	m.ws[target].guest = g
	g.unpause()
}

// onProcDone marks one gang member finished; the last one completes the
// job and frees its machines.
func (m *Master) onProcDone(p *sim.Proc, msg am.Msg) (any, int) {
	args, ok := msg.Arg.(procDoneArgs)
	if !ok {
		return nil, 0
	}
	var j *Job
	for _, cand := range m.jobs {
		if cand.ID == args.jobID {
			j = cand
			break
		}
	}
	if j == nil || j.done || j.incarnation != args.incarnation {
		return nil, 0
	}
	j.doneProcs++
	if g := j.procs[args.rank]; g != nil && g.ws > 0 && g.ws < len(m.ws) && m.ws[g.ws].guest == g {
		m.ws[g.ws].guest = nil
	}
	if j.doneProcs == j.NProcs {
		j.done = true
		j.Finished = m.c.Eng.Now()
		m.st.JobsCompleted++
	}
	m.work.Broadcast()
	return nil, 0
}

// Drain removes a workstation from service for a hot-swap hardware or
// software upgrade: it is never recruited while drained, and any guest
// process is migrated away first (blocking p until the guest has left
// or been queued for a target). The rest of the cluster is unaffected —
// the paper's contrast with multiprocessors that must be taken down
// whole.
func (m *Master) Drain(p *sim.Proc, ws int) {
	if ws <= 0 || ws >= len(m.ws) {
		return
	}
	s := &m.ws[ws]
	if s.drained {
		// Already drained: the guest (if any) left or is queued for a
		// target. Draining again must not re-pause or re-migrate.
		return
	}
	s.drained = true
	if g := s.guest; g != nil {
		s.guest = nil
		g.pause(p)
		idle := m.available()
		if len(idle) > 0 {
			m.migrate(p, g, idle[0])
		} else {
			m.st.StalledEvicts++
			m.pendingEvict = append(m.pendingEvict, g)
		}
	}
	m.work.Broadcast()
}

// Reattach returns an upgraded workstation to service.
func (m *Master) Reattach(ws int) {
	if ws <= 0 || ws >= len(m.ws) {
		return
	}
	m.ws[ws].drained = false
	m.ws[ws].lastHB = m.c.Eng.Now()
	m.work.Broadcast()
}

// Cordon marks a workstation unschedulable without disturbing its
// current guest: the gentle half of a drain, and the guard an operator
// places before maintenance. Reports whether the state changed.
func (m *Master) Cordon(ws int) bool {
	if ws <= 0 || ws >= len(m.ws) || m.ws[ws].cordoned {
		return false
	}
	m.ws[ws].cordoned = true
	return true
}

// Uncordon returns a cordoned or drained workstation to the schedulable
// pool and kicks placement, so queued jobs can claim it immediately.
// Reports whether the state changed.
func (m *Master) Uncordon(ws int) bool {
	if ws <= 0 || ws >= len(m.ws) {
		return false
	}
	s := &m.ws[ws]
	if !s.cordoned && !s.drained {
		return false
	}
	s.cordoned, s.drained = false, false
	m.work.Broadcast()
	return true
}

// Cordoned reports whether ws is cordoned.
func (m *Master) Cordoned(ws int) bool {
	return ws > 0 && ws < len(m.ws) && m.ws[ws].cordoned
}

// Drained reports whether ws is drained.
func (m *Master) Drained(ws int) bool {
	return ws > 0 && ws < len(m.ws) && m.ws[ws].drained
}

// QueueLen reports how many jobs are waiting for placement.
func (m *Master) QueueLen() int { return len(m.queue) }

// WSStatus is the master's public view of one workstation — the census
// row the control plane lists and describes.
type WSStatus struct {
	ID       int  `json:"id"`
	Up       bool `json:"up"`
	UserBusy bool `json:"userBusy"`
	Cordoned bool `json:"cordoned"`
	Drained  bool `json:"drained"`
	// JobID and Rank identify the guest process (-1/-1 when idle).
	JobID int `json:"jobId"`
	Rank  int `json:"rank"`
	// LastHeartbeat is the virtual time of the last heartbeat received.
	LastHeartbeat sim.Time `json:"lastHeartbeatNs"`
}

// Census snapshots the master's view of every workstation, in id order.
func (m *Master) Census() []WSStatus {
	out := make([]WSStatus, 0, len(m.ws)-1)
	for i := 1; i < len(m.ws); i++ {
		out = append(out, m.wsStatus(i))
	}
	return out
}

// WSInfo returns the census row for one workstation (ok=false when the
// id is out of range).
func (m *Master) WSInfo(ws int) (WSStatus, bool) {
	if ws <= 0 || ws >= len(m.ws) {
		return WSStatus{}, false
	}
	return m.wsStatus(ws), true
}

func (m *Master) wsStatus(ws int) WSStatus {
	s := &m.ws[ws]
	st := WSStatus{
		ID: ws, Up: s.up, UserBusy: s.userBusy,
		Cordoned: s.cordoned, Drained: s.drained,
		JobID: -1, Rank: -1, LastHeartbeat: s.lastHB,
	}
	if g := s.guest; g != nil {
		st.JobID, st.Rank = g.job.ID, g.rank
	}
	return st
}

// debugString summarises master state for failed-test diagnostics.
func (m *Master) debugString() string {
	idle := m.available()
	sort.Ints(idle)
	return fmt.Sprintf("queue=%d pendingEvict=%d idle=%v", len(m.queue), len(m.pendingEvict), idle)
}
