package glunix

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/stats"
	"github.com/nowproject/now/internal/trace"
)

// MixedResult reports a mixed-workload run (Figure 3): a parallel job
// log overlaid on workstations serving interactive users.
type MixedResult struct {
	Workstations  int
	JobsCompleted int
	JobsTotal     int
	// MeanResponse across completed jobs.
	MeanResponse sim.Duration
	// Responses per completed job id.
	Responses map[int]sim.Duration
	Master    MasterStats
}

// RunMixed overlays the parallel job log on a GLUnix cluster whose
// workstations receive the interactive activity trace, simulating until
// horizon (which must cover the trace). Jobs larger than the cluster are
// skipped (counted in JobsTotal but never completed).
func RunMixed(e *sim.Engine, cfg Config, activity *trace.ActivityTrace,
	jobs []trace.ParallelJob, horizon sim.Time) (MixedResult, error) {
	return RunMixedWith(e, cfg, activity, jobs, horizon, nil)
}

// RunMixedWith is RunMixed with a wiring hook: wire (when non-nil) runs
// after the cluster is built but before the simulation starts, so a
// caller can attach extra machinery — a fault injector, additional
// workloads on the same engine — to the live cluster.
func RunMixedWith(e *sim.Engine, cfg Config, activity *trace.ActivityTrace,
	jobs []trace.ParallelJob, horizon sim.Time, wire func(*Cluster)) (MixedResult, error) {

	c, err := New(e, cfg)
	if err != nil {
		return MixedResult{}, err
	}
	if wire != nil {
		wire(c)
	}
	// Feed user activity into the daemons.
	if activity != nil {
		for _, ev := range activity.Events {
			ev := ev
			if ev.WS+1 >= len(c.Daemons) {
				continue // trace wider than cluster
			}
			e.At(ev.T, func() { c.Daemons[ev.WS+1].SetUserActive(ev.Active) })
		}
	}
	// Submit the job log.
	submitted := make([]*Job, 0, len(jobs))
	for _, tj := range jobs {
		if tj.Nodes > cfg.Workstations {
			continue
		}
		j := NewJob(tj.ID, tj.Nodes, tj.Work, tj.CommGrain)
		submitted = append(submitted, j)
		e.At(tj.Arrive, func() { c.Master.Submit(j) })
	}
	if err := e.RunUntil(horizon); err != nil && !errors.Is(err, sim.ErrStopped) {
		return MixedResult{}, fmt.Errorf("glunix: mixed run: %w", err)
	}
	res := MixedResult{
		Workstations: cfg.Workstations,
		JobsTotal:    len(submitted),
		Responses:    make(map[int]sim.Duration),
		Master:       c.Master.Stats(),
	}
	var sum stats.Summary
	for _, j := range submitted {
		if j.Done() {
			res.JobsCompleted++
			res.Responses[j.ID] = j.Response()
			sum.Add(j.Response().Seconds())
		}
	}
	if res.JobsCompleted > 0 {
		res.MeanResponse = sim.Duration(sum.Mean() * float64(sim.Second))
	}
	return res, nil
}

// Slowdown compares a NOW run against a dedicated-machine baseline: the
// mean, over jobs completed in both runs, of response(now)/response
// (dedicated) — Figure 3's y-axis.
func Slowdown(now, dedicated MixedResult) float64 {
	var s stats.Summary
	for id, rNow := range now.Responses {
		if rDed, ok := dedicated.Responses[id]; ok && rDed > 0 {
			s.Add(float64(rNow) / float64(rDed))
		}
	}
	return s.Mean()
}
