package glunix

import "github.com/nowproject/now/internal/obs"

// clusterMetrics holds the global layer's histogram handles; nil on an
// uninstrumented cluster.
type clusterMetrics struct {
	migrateNs   *obs.Histogram // glunix.migrate.latency.ns
	userDelayNs *obs.Histogram // glunix.user.delay.ns
}

// Instrument attaches metrics and span tracing to the cluster. Call it
// once, after New, on the registry the engine observes. A nil registry
// is a no-op. Master counters are mirrored into gauges at snapshot time
// (they already exist in MasterStats; sampling avoids double-counting
// at every increment site), while migration and user-delay latencies
// are recorded as histograms at the point they complete.
//
// Cluster metrics (names per docs/OBSERVABILITY.md):
//
//	glunix.jobs.submitted        jobs handed to the master (sampled)
//	glunix.jobs.completed        jobs finished (sampled)
//	glunix.migrations            guest migrations completed (sampled)
//	glunix.evictions             user returns to recruited machines (sampled)
//	glunix.evictions.stalled     evictions that waited for an idle target (sampled)
//	glunix.restarts              job restarts from checkpoint (sampled)
//	glunix.nodes.down            workstations declared down (sampled)
//	glunix.rejoins               recovered workstations re-admitted (sampled)
//	glunix.user.disturbed        IgnoreUser policy: user shared machine (sampled)
//	glunix.image.saves           user images parked on buddies (sampled)
//	glunix.image.restores        user images restored on return (sampled)
//	glunix.checkpoints           guest checkpoint transfers (sampled)
//	glunix.ws.idle               recruitable workstations now (sampled)
//	glunix.ws.recruited          workstations hosting a guest (sampled)
//	glunix.ws.userbusy           workstations with an active user (sampled)
//	glunix.ws.down               workstations currently down (sampled)
//	glunix.migrate.latency.ns    wall time of each completed migration
//	glunix.user.delay.ns         time each returning user waited
//
// Spans: glunix.schedule (one per gang placement, node -1),
// glunix.migrate (per migration, node = source workstation),
// glunix.checkpoint (per guest checkpoint, node = workstation).
func (c *Cluster) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	c.obs = r
	c.cm = &clusterMetrics{
		migrateNs:   r.Histogram("glunix.migrate.latency.ns", obs.DurationBuckets),
		userDelayNs: r.Histogram("glunix.user.delay.ns", obs.DurationBuckets),
	}
	mirror := []struct {
		name string
		get  func(*MasterStats) int64
	}{
		{"glunix.jobs.submitted", func(s *MasterStats) int64 { return s.JobsSubmitted }},
		{"glunix.jobs.completed", func(s *MasterStats) int64 { return s.JobsCompleted }},
		{"glunix.migrations", func(s *MasterStats) int64 { return s.Migrations }},
		{"glunix.evictions", func(s *MasterStats) int64 { return s.Evictions }},
		{"glunix.evictions.stalled", func(s *MasterStats) int64 { return s.StalledEvicts }},
		{"glunix.restarts", func(s *MasterStats) int64 { return s.Restarts }},
		{"glunix.nodes.down", func(s *MasterStats) int64 { return s.NodesDown }},
		{"glunix.rejoins", func(s *MasterStats) int64 { return s.Rejoins }},
		{"glunix.user.disturbed", func(s *MasterStats) int64 { return s.UserDisturbed }},
		{"glunix.image.saves", func(s *MasterStats) int64 { return s.ImageSaves }},
		{"glunix.image.restores", func(s *MasterStats) int64 { return s.ImageRestores }},
		{"glunix.checkpoints", func(s *MasterStats) int64 { return s.CheckpointOps }},
	}
	gs := make([]*obs.Gauge, len(mirror))
	for i, m := range mirror {
		gs[i] = r.Gauge(m.name)
	}
	idle := r.Gauge("glunix.ws.idle")
	recruited := r.Gauge("glunix.ws.recruited")
	userBusy := r.Gauge("glunix.ws.userbusy")
	down := r.Gauge("glunix.ws.down")
	r.OnSample(func() {
		st := c.Master.Stats()
		for i, m := range mirror {
			gs[i].Set(m.get(&st))
		}
		var nRec, nBusy, nDown int64
		for i := 1; i < len(c.Master.ws); i++ {
			s := &c.Master.ws[i]
			if s.guest != nil {
				nRec++
			}
			if s.userBusy {
				nBusy++
			}
			if !s.up {
				nDown++
			}
		}
		idle.Set(int64(c.Master.AvailableCount()))
		recruited.Set(nRec)
		userBusy.Set(nBusy)
		down.Set(nDown)
	})
}
