package glunix

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// TestCrashedNodeRejoinsAfterRecover is the census half of the paper's
// availability claim: a crashed workstation that reboots is re-admitted
// on its first heartbeat.
func TestCrashedNodeRejoinsAfterRecover(t *testing.T) {
	cfg := testConfig(4)
	e, c := buildCluster(t, cfg)
	defer e.Close()
	e.At(10*sim.Second, func() { c.Crash(2) })
	runFor(t, e, 30*sim.Second)
	if c.Up(2) {
		t.Fatal("master still lists the crashed node as up")
	}
	if c.Master.Stats().NodesDown != 1 {
		t.Fatalf("NodesDown = %d, want 1", c.Master.Stats().NodesDown)
	}
	e.At(60*sim.Second, func() { c.Recover(2) })
	runFor(t, e, 90*sim.Second)
	if !c.Up(2) {
		t.Fatal("recovered node did not rejoin the census")
	}
	if c.Master.Stats().Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1", c.Master.Stats().Rejoins)
	}
}

// TestRecoveredNodeRecruitedAgain goes one step further: a gang that
// needs every workstation can only run if the rejoined node is
// recruitable again.
func TestRecoveredNodeRecruitedAgain(t *testing.T) {
	cfg := testConfig(3)
	e, c := buildCluster(t, cfg)
	defer e.Close()
	e.At(5*sim.Second, func() { c.Crash(2) })
	e.At(40*sim.Second, func() { c.Recover(2) })
	j := NewJob(1, 3, 10*sim.Second, sim.Second)
	e.At(60*sim.Second, func() { c.Master.Submit(j) })
	runFor(t, e, 10*sim.Minute)
	if !j.Done() {
		t.Fatalf("3-wide gang never ran on a 3-ws cluster after rejoin; %s",
			c.Master.debugString())
	}
}

// TestNeverRejoinPolicyKeepsNodeOut is the pre-recovery behaviour as an
// ablation: with RecoverPolicy NeverRejoin, a rebooted node's
// heartbeats are ignored and the census never re-admits it.
func TestNeverRejoinPolicyKeepsNodeOut(t *testing.T) {
	cfg := testConfig(4)
	cfg.Recover = NeverRejoin
	e, c := buildCluster(t, cfg)
	defer e.Close()
	e.At(10*sim.Second, func() { c.Crash(2) })
	e.At(60*sim.Second, func() { c.Recover(2) })
	runFor(t, e, 3*sim.Minute)
	if c.Up(2) {
		t.Fatal("NeverRejoin re-admitted a recovered node")
	}
	if c.Master.Stats().Rejoins != 0 {
		t.Fatalf("Rejoins = %d under NeverRejoin", c.Master.Stats().Rejoins)
	}
}

// TestFastRecoveryStillRestartsJob covers recovery inside the heartbeat
// deadline: the master never saw the node down, but the guest died with
// the crash, so its job must restart rather than hang.
func TestFastRecoveryStillRestartsJob(t *testing.T) {
	cfg := testConfig(4)
	e, c := buildCluster(t, cfg)
	defer e.Close()
	j := NewJob(1, 2, 40*sim.Second, sim.Second)
	e.At(0, func() { c.Master.Submit(j) })
	var crashed int
	e.At(10*sim.Second, func() {
		if len(j.procs) == 0 {
			t.Fatal("job not placed by 10s")
		}
		crashed = j.procs[0].WS()
		c.Crash(crashed)
		// Recover well inside the 3s detection deadline.
		e.After(sim.Second, func() { c.Recover(crashed) })
	})
	runFor(t, e, 10*sim.Minute)
	if !j.Done() {
		t.Fatalf("job hung after fast crash/recover of ws %d; %s",
			crashed, c.Master.debugString())
	}
	if c.Master.Stats().Restarts == 0 {
		t.Fatal("fast recovery masked the crash: no restart recorded")
	}
}

// TestRecoverIsNoopOnHealthyNode guards the API edge cases.
func TestRecoverIsNoopOnHealthyNode(t *testing.T) {
	cfg := testConfig(4)
	e, c := buildCluster(t, cfg)
	defer e.Close()
	e.At(10*sim.Second, func() {
		c.Recover(2)  // never crashed
		c.Recover(0)  // master
		c.Recover(99) // out of range
	})
	runFor(t, e, 30*sim.Second)
	if c.Master.Stats().Rejoins != 0 || c.Master.Stats().NodesDown != 0 {
		t.Fatalf("no-op recover changed census: rejoins=%d down=%d",
			c.Master.Stats().Rejoins, c.Master.Stats().NodesDown)
	}
	if !c.Up(2) {
		t.Fatal("healthy node dropped from census by no-op recover")
	}
}

// TestRecoverPolicyString pins the policy names used in reports.
func TestRecoverPolicyString(t *testing.T) {
	if RejoinOnHeartbeat.String() != "rejoin-on-heartbeat" ||
		NeverRejoin.String() != "never-rejoin" {
		t.Fatal("recover policy names wrong")
	}
	if RecoverPolicy(9).String() != "recover-policy(9)" {
		t.Fatal("unknown policy rendering wrong")
	}
}
