// Package lru implements the least-recently-used replacement policy
// shared by every cache in the system: workstation DRAM page frames,
// file-block caches (client, server, and cooperative), and the network
// RAM pager. It is a plain map + intrusive doubly-linked list, O(1) per
// operation, with an explicit capacity in entries.
package lru

// Cache is an LRU cache mapping keys to values with a fixed capacity.
// The zero value is not usable; create caches with New.
type Cache[K comparable, V any] struct {
	capacity int
	entries  map[K]*entry[K, V]
	// Sentinel-based circular list: head.next is most recent,
	// head.prev is least recent.
	head entry[K, V]
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// New creates an LRU cache holding at most capacity entries
// (capacity must be positive).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		capacity = 1
	}
	c := &Cache[K, V]{
		capacity: capacity,
		entries:  make(map[K]*entry[K, V], capacity),
	}
	c.head.prev = &c.head
	c.head.next = &c.head
	return c
}

// Len returns the number of resident entries.
func (c *Cache[K, V]) Len() int { return len(c.entries) }

// Capacity returns the maximum number of entries.
func (c *Cache[K, V]) Capacity() int { return c.capacity }

// Contains reports residency without touching recency.
func (c *Cache[K, V]) Contains(k K) bool {
	_, ok := c.entries[k]
	return ok
}

// Get returns the value for k and marks it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	e, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Peek returns the value for k without touching recency.
func (c *Cache[K, V]) Peek(k K) (V, bool) {
	e, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	return e.val, true
}

// Put inserts or updates k, marking it most recently used. If the
// insertion evicts the LRU entry, Put returns it with evicted=true.
func (c *Cache[K, V]) Put(k K, v V) (evictedKey K, evictedVal V, evicted bool) {
	if e, ok := c.entries[k]; ok {
		e.val = v
		c.moveToFront(e)
		return evictedKey, evictedVal, false
	}
	if len(c.entries) >= c.capacity {
		lru := c.head.prev
		c.unlink(lru)
		delete(c.entries, lru.key)
		evictedKey, evictedVal, evicted = lru.key, lru.val, true
	}
	e := &entry[K, V]{key: k, val: v}
	c.entries[k] = e
	c.linkFront(e)
	return evictedKey, evictedVal, evicted
}

// Remove deletes k, reporting whether it was resident.
func (c *Cache[K, V]) Remove(k K) (V, bool) {
	e, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.unlink(e)
	delete(c.entries, k)
	return e.val, true
}

// Victim returns the least-recently-used key without evicting it.
func (c *Cache[K, V]) Victim() (K, bool) {
	if len(c.entries) == 0 {
		var zero K
		return zero, false
	}
	return c.head.prev.key, true
}

// Keys returns all resident keys from most to least recently used.
func (c *Cache[K, V]) Keys() []K {
	out := make([]K, 0, len(c.entries))
	for e := c.head.next; e != &c.head; e = e.next {
		out = append(out, e.key)
	}
	return out
}

// Resize changes the capacity, evicting LRU entries as needed, and
// returns the evicted keys (oldest first). Used when an idle
// workstation's memory is reclaimed for its returning user.
func (c *Cache[K, V]) Resize(capacity int) []K {
	if capacity <= 0 {
		capacity = 1
	}
	c.capacity = capacity
	var evicted []K
	for len(c.entries) > c.capacity {
		lru := c.head.prev
		c.unlink(lru)
		delete(c.entries, lru.key)
		evicted = append(evicted, lru.key)
	}
	return evicted
}

func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	c.unlink(e)
	c.linkFront(e)
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache[K, V]) linkFront(e *entry[K, V]) {
	e.next = c.head.next
	e.prev = &c.head
	c.head.next.prev = e
	c.head.next = e
}
