package lru

import (
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	c := New[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEvictsLeastRecent(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Get(1) // 2 is now LRU
	k, v, ev := c.Put(3, 30)
	if !ev || k != 2 || v != 20 {
		t.Fatalf("evicted (%d,%d,%v), want (2,20,true)", k, v, ev)
	}
	if c.Contains(2) {
		t.Fatal("evicted key still resident")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("wrong residents")
	}
}

func TestPutExistingUpdatesWithoutEviction(t *testing.T) {
	c := New[int, int](1)
	c.Put(1, 10)
	_, _, ev := c.Put(1, 11)
	if ev {
		t.Fatal("update evicted")
	}
	if v, _ := c.Get(1); v != 11 {
		t.Fatalf("v = %d", v)
	}
}

func TestPeekDoesNotTouchRecency(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Peek(1) // must NOT protect 1
	k, _, ev := c.Put(3, 30)
	if !ev || k != 1 {
		t.Fatalf("evicted %d, want 1", k)
	}
}

func TestRemove(t *testing.T) {
	c := New[string, int](4)
	c.Put("x", 1)
	if v, ok := c.Remove("x"); !ok || v != 1 {
		t.Fatalf("Remove = %d,%v", v, ok)
	}
	if _, ok := c.Remove("x"); ok {
		t.Fatal("double remove succeeded")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestVictim(t *testing.T) {
	c := New[int, int](3)
	if _, ok := c.Victim(); ok {
		t.Fatal("empty cache has a victim")
	}
	c.Put(1, 0)
	c.Put(2, 0)
	c.Get(1)
	if k, ok := c.Victim(); !ok || k != 2 {
		t.Fatalf("victim = %d,%v", k, ok)
	}
}

func TestKeysMRUOrder(t *testing.T) {
	c := New[int, int](3)
	c.Put(1, 0)
	c.Put(2, 0)
	c.Put(3, 0)
	c.Get(1)
	keys := c.Keys()
	want := []int{1, 3, 2}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v", keys)
		}
	}
}

func TestResizeEvictsOldestFirst(t *testing.T) {
	c := New[int, int](4)
	for i := 1; i <= 4; i++ {
		c.Put(i, i)
	}
	ev := c.Resize(2)
	if len(ev) != 2 || ev[0] != 1 || ev[1] != 2 {
		t.Fatalf("evicted = %v", ev)
	}
	if c.Capacity() != 2 || c.Len() != 2 {
		t.Fatalf("cap=%d len=%d", c.Capacity(), c.Len())
	}
	// Growing evicts nothing.
	if ev := c.Resize(10); len(ev) != 0 {
		t.Fatalf("grow evicted %v", ev)
	}
}

func TestCapacityClampedPositive(t *testing.T) {
	c := New[int, int](0)
	if c.Capacity() != 1 {
		t.Fatalf("cap = %d", c.Capacity())
	}
}

// Property: Len never exceeds capacity, and the most recently Put key is
// always resident.
func TestLRUInvariantsProperty(t *testing.T) {
	f := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw)%16 + 1
		c := New[uint8, int](capacity)
		for i, k := range ops {
			c.Put(k, i)
			if c.Len() > capacity {
				return false
			}
			if !c.Contains(k) {
				return false
			}
		}
		return len(c.Keys()) == c.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with capacity >= distinct keys, nothing is ever evicted.
func TestNoEvictionWhenFitsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := New[uint8, int](256)
		for i, k := range ops {
			if _, _, ev := c.Put(k, i); ev {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
