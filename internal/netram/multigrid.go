package netram

import (
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/sim"
)

// MultigridConfig describes the Figure 2 workload: V-cycles of a
// multigrid solver whose fine grid may exceed local DRAM. Each level
// halves the grid in each dimension, so level l holds ProblemBytes>>(2l)
// (a 2-D problem); the solver sweeps down and back up the hierarchy.
type MultigridConfig struct {
	// ProblemBytes is the fine-grid footprint.
	ProblemBytes int64
	// Levels in the V-cycle.
	Levels int
	// Cycles to run (sweeps of the whole hierarchy).
	Cycles int
	// ComputePerPage is the CPU time per page touched — the relaxation
	// arithmetic on the points in that page.
	ComputePerPage sim.Duration
}

// DefaultMultigridConfig sizes the computation so that the relaxation
// on one 4 KB page of grid points costs ≈2 ms on a 50 MFLOPS
// workstation (≈512 points × ≈200 flop per sweep).
func DefaultMultigridConfig(problemBytes int64) MultigridConfig {
	return MultigridConfig{
		ProblemBytes:   problemBytes,
		Levels:         4,
		Cycles:         3,
		ComputePerPage: 2 * sim.Millisecond,
	}
}

// MultigridResult reports a run.
type MultigridResult struct {
	Elapsed sim.Duration
	Pager   Stats
}

// RunMultigrid executes the workload as process p on the node paged by
// pg, and returns the elapsed virtual time.
func RunMultigrid(p *sim.Proc, pg *Pager, cfg MultigridConfig) MultigridResult {
	start := p.Now()
	pageSize := int64(pg.mem.PageSize())
	levelPages := make([]uint32, cfg.Levels)
	for l := 0; l < cfg.Levels; l++ {
		pages := cfg.ProblemBytes >> (2 * l) / pageSize
		if pages < 1 {
			pages = 1
		}
		levelPages[l] = uint32(pages)
	}
	sweep := func(level int) {
		n := levelPages[level]
		for i := uint32(0); i < n; i++ {
			pg.Touch(p, node.PageID{Space: uint32(level + 1), Index: i}, true)
		}
		p.Sleep(cfg.ComputePerPage * sim.Duration(n))
	}
	for c := 0; c < cfg.Cycles; c++ {
		for l := 0; l < cfg.Levels; l++ { // restrict down
			sweep(l)
		}
		for l := cfg.Levels - 2; l >= 0; l-- { // prolongate up
			sweep(l)
		}
	}
	return MultigridResult{Elapsed: p.Now() - start, Pager: pg.Stats()}
}
