// Package netram implements network RAM: paging to the idle DRAM of
// other workstations instead of the local disk, "fulfilling the original
// promise of virtual memory" (the paper's words). A Pager intercepts a
// process's page faults; evicted pages are pushed to Servers — idle
// machines offering frames through a Registry — and faulted back over
// Active Messages an order of magnitude faster than a disk access.
//
// When no idle memory is available (or a server fills up) the pager
// falls back to its local disk, so behaviour degrades to classic paging
// rather than failing. When an idle machine's user returns, its server
// reclaims: stored pages are returned to their owners, who write the
// dirty ones to disk.
package netram

import (
	"fmt"
	"sort"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// Handler IDs used by the network RAM protocol (one AM namespace is
// shared across subsystems; netram owns 0x30–0x3F).
const (
	hPut am.HandlerID = 0x30 + iota
	hGet
	hReturn
)

// Registry is the idle-memory directory: which nodes currently offer
// frames and how many remain. It models the GLUnix global resource
// directory; lookups are free (the real system caches the directory at
// each node), while every page *transfer* pays full communication costs.
type Registry struct {
	servers map[netsim.NodeID]*Server
	// ids keeps the offered servers in ascending id order. Every walk
	// of the directory goes through it — iterating the map directly
	// would make selection depend on Go's randomized map order.
	ids []netsim.NodeID
}

// NewRegistry creates an empty directory.
func NewRegistry() *Registry {
	return &Registry{servers: make(map[netsim.NodeID]*Server)}
}

// Offer registers a server's free frames. Re-offering an id replaces
// its entry.
func (r *Registry) Offer(s *Server) {
	id := s.ep.ID()
	if _, ok := r.servers[id]; !ok {
		i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
		r.ids = append(r.ids, 0)
		copy(r.ids[i+1:], r.ids[i:])
		r.ids[i] = id
	}
	r.servers[id] = s
}

// Withdraw removes a server from the directory (its pages stay stored
// until Reclaim).
func (r *Registry) Withdraw(id netsim.NodeID) {
	if _, ok := r.servers[id]; !ok {
		return
	}
	delete(r.servers, id)
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= id })
	r.ids = append(r.ids[:i], r.ids[i+1:]...)
}

// Pick returns a server with free frames, excluding self; ok=false when
// the network has no spare memory. Selection is lowest-id-first for
// determinism.
func (r *Registry) Pick(self netsim.NodeID) (*Server, bool) {
	for _, id := range r.ids {
		if id == self {
			continue
		}
		if s := r.servers[id]; s.free > 0 {
			return s, true
		}
	}
	return nil, false
}

// TotalFree sums free frames across offered servers.
func (r *Registry) TotalFree() int {
	n := 0
	for _, id := range r.ids {
		n += r.servers[id].free
	}
	return n
}

// pageRef names a page owned by a particular node.
type pageRef struct {
	owner netsim.NodeID
	page  node.PageID
}

// Server donates a fixed number of page frames on an idle workstation.
type Server struct {
	ep     *am.Endpoint
	frames int
	free   int
	store  map[pageRef]bool // value: dirty

	stored, returned int64
}

// NewServer creates a server donating frames page frames on ep's node
// and registers its protocol handlers.
func NewServer(ep *am.Endpoint, frames int) *Server {
	s := &Server{ep: ep, frames: frames, free: frames, store: make(map[pageRef]bool)}
	ep.Register(hPut, s.onPut)
	ep.Register(hGet, s.onGet)
	return s
}

// Free returns the number of unoccupied donated frames.
func (s *Server) Free() int { return s.free }

// Stored returns the number of pages currently held.
func (s *Server) Stored() int { return len(s.store) }

type putArgs struct {
	page  node.PageID
	dirty bool
}

func (s *Server) onPut(p *sim.Proc, m am.Msg) (any, int) {
	args, ok := m.Arg.(putArgs)
	if !ok {
		return false, 1
	}
	ref := pageRef{owner: m.Src, page: args.page}
	if _, dup := s.store[ref]; !dup && s.free <= 0 {
		return false, 1 // rejected: full
	}
	if _, dup := s.store[ref]; !dup {
		s.free--
	}
	s.store[ref] = args.dirty
	s.stored++
	return true, 1
}

func (s *Server) onGet(p *sim.Proc, m am.Msg) (any, int) {
	page, ok := m.Arg.(node.PageID)
	if !ok {
		return nil, 0
	}
	ref := pageRef{owner: m.Src, page: page}
	dirty, have := s.store[ref]
	if !have {
		return nil, 0
	}
	delete(s.store, ref)
	s.free++
	return putArgs{page: page, dirty: dirty}, s.ep.Node().Mem.PageSize()
}

// Reclaim pushes every stored page back to its owner (who writes dirty
// ones to disk) and empties the server — the user came back. It blocks
// p until all pages are returned.
func (s *Server) Reclaim(p *sim.Proc) error {
	refs := make([]pageRef, 0, len(s.store))
	for ref := range s.store {
		refs = append(refs, ref)
	}
	// Deterministic return order (map iteration is randomised).
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.owner != b.owner {
			return a.owner < b.owner
		}
		if a.page.Space != b.page.Space {
			return a.page.Space < b.page.Space
		}
		return a.page.Index < b.page.Index
	})
	var firstErr error
	for _, ref := range refs {
		dirty := s.store[ref]
		err := s.ep.Send(p, ref.owner, hReturn, putArgs{page: ref.page, dirty: dirty},
			s.ep.Node().Mem.PageSize())
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("netram: reclaim to node %d: %w", ref.owner, err)
		}
		delete(s.store, ref)
		s.free++
		s.returned++
	}
	return firstErr
}

// Stats counts pager activity.
type Stats struct {
	Faults       int64 // page faults taken
	ZeroFills    int64 // faults on never-stored pages (demand zero, free)
	RemoteHits   int64 // faults served from network RAM
	DiskReads    int64 // faults served from local disk
	RemoteStores int64 // evictions pushed to network RAM
	DiskWrites   int64 // evictions written to local disk
	Returned     int64 // pages pushed back by reclaiming servers
	LostPages    int64 // remote pages lost to a crashed server (the
	// owning process must restart from a checkpoint — the paper's
	// failure model; the pager substitutes zeros and counts the loss)
}

// Pager manages one node's paging: local frames first, then network
// RAM, then disk.
type Pager struct {
	ep   *am.Endpoint
	mem  *node.Memory
	reg  *Registry
	loc  map[node.PageID]netsim.NodeID // where evicted pages live remotely
	onDi map[node.PageID]bool          // pages whose latest copy is on disk
	st   Stats
	m    *pagerMetrics // nil unless Instrument attached a registry
}

// NewPager creates a pager for ep's node using the registry and installs
// the page-return handler.
func NewPager(ep *am.Endpoint, reg *Registry) *Pager {
	pg := &Pager{
		ep:   ep,
		mem:  ep.Node().Mem,
		reg:  reg,
		loc:  make(map[node.PageID]netsim.NodeID),
		onDi: make(map[node.PageID]bool),
	}
	ep.Register(hReturn, pg.onReturn)
	return pg
}

// onReturn accepts a page pushed back by a reclaiming server: its new
// home is the local disk.
func (pg *Pager) onReturn(p *sim.Proc, m am.Msg) (any, int) {
	args, ok := m.Arg.(putArgs)
	if !ok {
		return nil, 0
	}
	delete(pg.loc, args.page)
	pg.onDi[args.page] = true
	pg.st.Returned++
	if args.dirty {
		pg.ep.Node().Disk.Write(p, pageOffset(args.page, pg.mem.PageSize()), pg.mem.PageSize())
	}
	return nil, 0
}

// Touch references a page, servicing a fault from network RAM or disk
// and handling the eviction it causes. It blocks p for the full service
// time and reports whether the reference faulted.
func (pg *Pager) Touch(p *sim.Proc, page node.PageID, write bool) bool {
	fault, victim, victimDirty, evicted := pg.mem.Touch(page, write)
	if !fault {
		return false
	}
	pg.st.Faults++
	began := p.Now()
	if evicted {
		pg.evict(p, victim, victimDirty)
	}
	pg.fetch(p, page)
	if m := pg.m; m != nil {
		m.faultNs.Observe(int64(p.Now() - began))
	}
	return true
}

// fetch brings a faulted page in from wherever it lives. Pages never
// stored anywhere are demand-zero: anonymous memory materialises for
// free, which keeps cold-start out of the Figure 2 comparison exactly
// as the paper's model does.
func (pg *Pager) fetch(p *sim.Proc, page node.PageID) {
	if host, ok := pg.loc[page]; ok {
		reply, err := pg.ep.Call(p, host, hGet, page, 64)
		if err == nil && reply != nil {
			delete(pg.loc, page)
			pg.st.RemoteHits++
			return
		}
		delete(pg.loc, page)
		if err != nil && !pg.onDi[page] {
			// The server crashed with the only copy: data loss, visible
			// in the stats so the global layer can restart the victim.
			pg.st.LostPages++
			return
		}
		// Server already returned the page (race with Reclaim); the disk
		// path below picks it up.
	}
	if !pg.onDi[page] {
		pg.st.ZeroFills++
		return
	}
	// Disk-resident pages pay a disk read; the disk copy stays valid, so
	// a later clean eviction of this page is free.
	pg.ep.Node().Disk.Read(p, pageOffset(page, pg.mem.PageSize()), pg.mem.PageSize())
	pg.st.DiskReads++
}

// evict pushes a victim page out: to network RAM when an idle server
// accepts it, else to disk. Clean pages are dropped free of charge: the
// backing copy (disk, or the zero page for never-written memory) is
// still valid.
func (pg *Pager) evict(p *sim.Proc, victim node.PageID, dirty bool) {
	if !dirty {
		return
	}
	if s, ok := pg.reg.Pick(pg.ep.ID()); ok {
		accepted, err := pg.ep.Call(p, s.ep.ID(), hPut,
			putArgs{page: victim, dirty: dirty}, pg.mem.PageSize())
		if err == nil && accepted == true {
			pg.loc[victim] = s.ep.ID()
			pg.st.RemoteStores++
			return
		}
	}
	pg.ep.Node().Disk.Write(p, pageOffset(victim, pg.mem.PageSize()), pg.mem.PageSize())
	pg.onDi[victim] = true
	pg.st.DiskWrites++
}

// Stats returns a snapshot of pager counters.
func (pg *Pager) Stats() Stats { return pg.st }

func pageOffset(page node.PageID, pageSize int) int64 {
	return int64(page.Index) * int64(pageSize)
}
