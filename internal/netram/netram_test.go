package netram

import (
	"errors"
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// rig builds one paging client (with memBytes of DRAM) and nServers
// idle-memory servers each donating donateFrames.
type rig struct {
	e       *sim.Engine
	reg     *Registry
	pager   *Pager
	client  *am.Endpoint
	servers []*Server
}

func newRig(t *testing.T, memBytes int64, nServers, donateFrames int) *rig {
	t.Helper()
	e := sim.NewEngine(1)
	fab, err := netsim.New(e, netsim.ATM155(nServers+1))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id int, mem int64) *am.Endpoint {
		cfg := node.DefaultConfig(netsim.NodeID(id))
		cfg.MemoryBytes = mem
		return am.NewEndpoint(e, node.New(e, cfg), fab, am.DefaultConfig())
	}
	r := &rig{e: e, reg: NewRegistry()}
	r.client = mk(0, memBytes)
	r.pager = NewPager(r.client, r.reg)
	for i := 0; i < nServers; i++ {
		ep := mk(i+1, 256<<20)
		s := NewServer(ep, donateFrames)
		r.servers = append(r.servers, s)
		r.reg.Offer(s)
	}
	return r
}

func (r *rig) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	r.e.Spawn("test", func(p *sim.Proc) {
		body(p)
		r.e.Stop()
	})
	if err := r.e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
}

func pid(i uint32) node.PageID { return node.PageID{Space: 1, Index: i} }

func TestTouchHitIsFree(t *testing.T) {
	r := newRig(t, 1<<20, 1, 1024)
	r.run(t, func(p *sim.Proc) {
		r.pager.Touch(p, pid(0), true) // cold fault
		start := p.Now()
		if r.pager.Touch(p, pid(0), false) {
			t.Error("hit reported as fault")
		}
		if p.Now() != start {
			t.Errorf("hit consumed %v", p.Now()-start)
		}
	})
}

func TestColdFaultIsDemandZero(t *testing.T) {
	r := newRig(t, 1<<20, 1, 1024)
	r.run(t, func(p *sim.Proc) {
		start := p.Now()
		if !r.pager.Touch(p, pid(0), false) {
			t.Fatal("cold touch did not fault")
		}
		if p.Now() != start {
			t.Errorf("demand-zero fault took %v, want free", p.Now()-start)
		}
	})
	st := r.pager.Stats()
	if st.ZeroFills != 1 || st.DiskReads != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDiskResidentFaultReadsDisk(t *testing.T) {
	// One frame, no netram: write page 0 (dirty), evict it to disk by
	// touching page 1, then fault page 0 back: that is a disk read.
	r := newRig(t, 4096, 0, 0)
	r.run(t, func(p *sim.Proc) {
		r.pager.Touch(p, pid(0), true)
		r.pager.Touch(p, pid(1), true)
		start := p.Now()
		r.pager.Touch(p, pid(0), false)
		if p.Now()-start < 10*sim.Millisecond {
			t.Errorf("disk-resident fault took %v, want a disk access", p.Now()-start)
		}
	})
	// Two dirty evictions happen (page 0 pushed out by page 1, then
	// page 1 pushed out by page 0's return) and one disk read.
	st := r.pager.Stats()
	if st.DiskWrites != 2 || st.DiskReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionGoesToNetworkRAM(t *testing.T) {
	// 1 MB of DRAM = 256 frames; touch 300 distinct dirty pages.
	r := newRig(t, 1<<20, 1, 4096)
	r.run(t, func(p *sim.Proc) {
		for i := uint32(0); i < 300; i++ {
			r.pager.Touch(p, pid(i), true)
		}
	})
	st := r.pager.Stats()
	if st.RemoteStores == 0 {
		t.Fatalf("no remote stores: %+v", st)
	}
	if st.DiskWrites != 0 {
		t.Fatalf("dirty evictions hit disk despite idle memory: %+v", st)
	}
	if r.servers[0].Stored() != int(st.RemoteStores) {
		t.Fatalf("server stored %d, pager pushed %d", r.servers[0].Stored(), st.RemoteStores)
	}
}

func TestRemoteFaultMuchFasterThanDisk(t *testing.T) {
	// Table 2's claim: remote memory is an order of magnitude faster
	// than disk for a miss.
	r := newRig(t, 1<<20, 1, 4096)
	var remote, disk sim.Duration
	r.run(t, func(p *sim.Proc) {
		// Fill memory + spill page 0 to the server.
		for i := uint32(0); i < 257; i++ {
			r.pager.Touch(p, pid(i), true)
		}
		// Page 1 is now... find a page known to be remote: page 0 was
		// evicted first (LRU) and is remote.
		start := p.Now()
		r.pager.Touch(p, pid(0), false)
		remote = p.Now() - start
		// A cold page beyond everything: disk fault (plus eviction cost;
		// measure a fresh cold read after filling from remote is messy,
		// so compare against the disk's raw access time).
		disk = r.client.Node().Disk.AccessTime(4096)
	})
	if r.pager.Stats().RemoteHits == 0 {
		t.Fatalf("no remote hits: %+v", r.pager.Stats())
	}
	// The remote fault includes an eviction push + the fetch; it must
	// still beat one raw disk access by a wide margin.
	if float64(disk)/float64(remote) < 5 {
		t.Fatalf("remote fault %v vs disk %v: ratio %.1f, want ≥5×",
			remote, disk, float64(disk)/float64(remote))
	}
}

func TestServerFullFallsBackToDisk(t *testing.T) {
	r := newRig(t, 1<<20, 1, 10) // tiny donation
	r.run(t, func(p *sim.Proc) {
		for i := uint32(0); i < 300; i++ {
			r.pager.Touch(p, pid(i), true)
		}
	})
	st := r.pager.Stats()
	if st.RemoteStores == 0 || st.DiskWrites == 0 {
		t.Fatalf("expected both remote and disk spills: %+v", st)
	}
	if r.servers[0].Free() != 0 {
		t.Fatalf("server free = %d, want 0", r.servers[0].Free())
	}
}

func TestSpillSpreadsAcrossServers(t *testing.T) {
	r := newRig(t, 1<<20, 3, 20)
	r.run(t, func(p *sim.Proc) {
		for i := uint32(0); i < 310; i++ {
			r.pager.Touch(p, pid(i), true)
		}
	})
	used := 0
	for _, s := range r.servers {
		if s.Stored() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d servers used", used)
	}
}

func TestReclaimReturnsPagesToOwner(t *testing.T) {
	r := newRig(t, 1<<20, 1, 4096)
	r.run(t, func(p *sim.Proc) {
		for i := uint32(0); i < 300; i++ {
			r.pager.Touch(p, pid(i), true)
		}
		stored := r.servers[0].Stored()
		if stored == 0 {
			t.Fatal("nothing stored before reclaim")
		}
		r.reg.Withdraw(1)
		if err := r.servers[0].Reclaim(p); err != nil {
			t.Fatal(err)
		}
		if r.servers[0].Stored() != 0 {
			t.Fatal("server not empty after reclaim")
		}
		if int(r.pager.Stats().Returned) != stored {
			t.Fatalf("returned %d, want %d", r.pager.Stats().Returned, stored)
		}
		// Returned pages now live on disk: faulting one must be a disk
		// read, not a remote call.
		before := r.pager.Stats().DiskReads
		r.pager.Touch(p, pid(0), false)
		if r.pager.Stats().DiskReads != before+1 {
			t.Fatal("post-reclaim fault did not go to disk")
		}
	})
}

func TestCleanEvictionIsFree(t *testing.T) {
	r := newRig(t, 4096, 0, 0) // 1 frame, no netram
	r.run(t, func(p *sim.Proc) {
		r.pager.Touch(p, pid(0), false) // zero fill, clean
		start := p.Now()
		r.pager.Touch(p, pid(1), false) // evicts clean page 0
		if p.Now() != start {
			t.Fatalf("clean eviction cost %v", p.Now()-start)
		}
		st := r.pager.Stats()
		if st.DiskWrites != 0 {
			t.Fatalf("clean eviction wrote to disk: %+v", st)
		}
	})
}

func TestRegistryPickExcludesSelfAndFull(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	fab, err := netsim.New(e, netsim.ATM155(3))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	mk := func(id int) *Server {
		ep := am.NewEndpoint(e, node.New(e, node.DefaultConfig(netsim.NodeID(id))), fab, am.DefaultConfig())
		return NewServer(ep, 1)
	}
	s0, s1 := mk(0), mk(1)
	reg.Offer(s0)
	reg.Offer(s1)
	if s, ok := reg.Pick(0); !ok || s != s1 {
		t.Fatal("Pick(0) should return server 1")
	}
	s1.free = 0
	if _, ok := reg.Pick(0); ok {
		t.Fatal("Pick should fail when the only other server is full")
	}
	if reg.TotalFree() != 1 {
		t.Fatalf("TotalFree = %d", reg.TotalFree())
	}
}

func TestMultigridNetramBeatsDiskAndApproachesDRAM(t *testing.T) {
	// Figure 2 in miniature: a problem 2× local memory.
	const mb = 1 << 20
	run := func(mem int64, servers int) MultigridResult {
		t.Helper()
		r := newRig(t, mem, servers, 8192)
		var res MultigridResult
		r.run(t, func(p *sim.Proc) {
			cfg := DefaultMultigridConfig(8 * mb)
			cfg.Cycles = 2
			res = RunMultigrid(p, r.pager, cfg)
		})
		return res
	}
	disk := run(4*mb, 0)
	netram := run(4*mb, 2)
	dram := run(32*mb, 0)
	slowVsDRAM := float64(netram.Elapsed) / float64(dram.Elapsed)
	speedVsDisk := float64(disk.Elapsed) / float64(netram.Elapsed)
	if slowVsDRAM < 1.02 || slowVsDRAM > 1.5 {
		t.Fatalf("netram/DRAM = %.2f, want ≈1.1–1.3", slowVsDRAM)
	}
	if speedVsDisk < 4 || speedVsDisk > 15 {
		t.Fatalf("disk/netram = %.2f, want ≈5–10", speedVsDisk)
	}
	if netram.Pager.RemoteHits == 0 {
		t.Fatal("netram run had no remote hits")
	}
}

func TestMultigridInMemoryHasOnlyColdFaults(t *testing.T) {
	const mb = 1 << 20
	r := newRig(t, 64*mb, 0, 0)
	var res MultigridResult
	r.run(t, func(p *sim.Proc) {
		res = RunMultigrid(p, r.pager, DefaultMultigridConfig(8*mb))
	})
	// Cold faults only: total distinct pages across levels, all
	// demand-zero.
	pages := int64(0)
	for l := 0; l < 4; l++ {
		lv := int64(8*mb) >> (2 * l) / 4096
		if lv < 1 {
			lv = 1
		}
		pages += lv
	}
	if res.Pager.Faults != pages || res.Pager.ZeroFills != pages {
		t.Fatalf("faults = %+v, want %d cold zero-fills", res.Pager, pages)
	}
}

func TestServerCrashLosesPagesVisibly(t *testing.T) {
	r := newRig(t, 1<<20, 1, 4096)
	r.run(t, func(p *sim.Proc) {
		// Spill pages to the server, then crash it.
		for i := uint32(0); i < 300; i++ {
			r.pager.Touch(p, pid(i), true)
		}
		if r.pager.Stats().RemoteStores == 0 {
			t.Fatal("nothing spilled")
		}
		r.servers[0].ep.Detach()
		r.reg.Withdraw(1)
		// Fault a remotely-stored page: the data is gone; the pager must
		// report the loss rather than silently fabricating zeros.
		r.pager.Touch(p, pid(0), false)
	})
	st := r.pager.Stats()
	if st.LostPages == 0 {
		t.Fatalf("lost page not counted: %+v", st)
	}
}

// TestPickDeterministicAcrossRuns is a regression test for the
// directory's selection order: Pick must walk servers in ascending id
// order regardless of the (randomised) order they were offered in or
// how Go happens to lay out the backing map. It drains a multi-server
// registry — withdrawing and re-offering along the way — and requires
// the exact same selection sequence on every run.
func TestPickDeterministicAcrossRuns(t *testing.T) {
	sequence := func(offerOrder []int) []netsim.NodeID {
		r := newRig(t, 1<<20, 5, 2)
		// Re-offer in the caller's order; Offer replaces entries, so the
		// directory contents are identical either way.
		for _, i := range offerOrder {
			r.reg.Offer(r.servers[i])
		}
		var got []netsim.NodeID
		for {
			s, ok := r.reg.Pick(r.client.ID())
			if !ok {
				break
			}
			got = append(got, s.ep.ID())
			s.free--
			if len(got) == 3 {
				// Mid-drain churn: the lowest-id server leaves and comes
				// back. Its remaining frames must be picked again, still
				// in id order.
				r.reg.Withdraw(r.servers[0].ep.ID())
				r.reg.Offer(r.servers[0])
			}
		}
		if r.reg.TotalFree() != 0 {
			t.Fatalf("drain left %d free frames", r.reg.TotalFree())
		}
		return got
	}

	want := sequence([]int{0, 1, 2, 3, 4})
	if len(want) != 10 {
		t.Fatalf("drained %d picks, want 10", len(want))
	}
	for i := 1; i < len(want); i++ {
		if want[i] < want[i-1] {
			t.Fatalf("selection not in id order: %v", want)
		}
	}
	for run := 0; run < 20; run++ {
		got := sequence([]int{4, 2, 0, 3, 1})
		if len(got) != len(want) {
			t.Fatalf("run %d: drained %d picks, want %d", run, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("run %d: pick %d chose node %d, want %d", run, i, got[i], want[i])
			}
		}
	}
}
