package netram

import "github.com/nowproject/now/internal/obs"

// pagerMetrics holds the pager's histogram handle; nil on an
// uninstrumented pager.
type pagerMetrics struct {
	faultNs *obs.Histogram // netram.fault.latency.ns
}

// Instrument attaches metrics to the pager. Call once per registry
// (metric names are fixed; instrument the pager under study, not every
// node's). A nil registry is a no-op. The Stats counters are mirrored
// into gauges at snapshot time; fault service latency is recorded as a
// histogram in Touch.
//
// Pager metrics (names per docs/OBSERVABILITY.md):
//
//	netram.faults             page faults taken (sampled)
//	netram.fills.zero         demand-zero fills (sampled)
//	netram.hits.remote        faults served from network RAM (sampled)
//	netram.reads.disk         faults served from local disk (sampled)
//	netram.stores.remote      evictions pushed to network RAM (sampled)
//	netram.writes.disk        evictions written to local disk (sampled)
//	netram.pages.returned     pages pushed back by reclaiming servers (sampled)
//	netram.pages.lost         remote pages lost to server crashes (sampled)
//	netram.frames.free        free donated frames network-wide (sampled)
//	netram.fault.latency.ns   fault service time histogram
func (pg *Pager) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	pg.m = &pagerMetrics{
		faultNs: r.Histogram("netram.fault.latency.ns", obs.DurationBuckets),
	}
	mirror := []struct {
		name string
		get  func(*Stats) int64
	}{
		{"netram.faults", func(s *Stats) int64 { return s.Faults }},
		{"netram.fills.zero", func(s *Stats) int64 { return s.ZeroFills }},
		{"netram.hits.remote", func(s *Stats) int64 { return s.RemoteHits }},
		{"netram.reads.disk", func(s *Stats) int64 { return s.DiskReads }},
		{"netram.stores.remote", func(s *Stats) int64 { return s.RemoteStores }},
		{"netram.writes.disk", func(s *Stats) int64 { return s.DiskWrites }},
		{"netram.pages.returned", func(s *Stats) int64 { return s.Returned }},
		{"netram.pages.lost", func(s *Stats) int64 { return s.LostPages }},
	}
	gs := make([]*obs.Gauge, len(mirror))
	for i, m := range mirror {
		gs[i] = r.Gauge(m.name)
	}
	free := r.Gauge("netram.frames.free")
	r.OnSample(func() {
		for i, m := range mirror {
			gs[i].Set(m.get(&pg.st))
		}
		free.Set(int64(pg.reg.TotalFree()))
	})
}
