package netsim

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// BenchmarkFabricDelivery measures the switched-fabric send/deliver hot
// path with pooled packets: port dispatch and fault lookups are
// slice-indexed and the packet is recycled, so steady state runs at
// zero allocations per delivery.
func BenchmarkFabricDelivery(b *testing.B) {
	e := sim.NewEngine(1)
	defer e.Close()
	f, err := New(e, Myrinet(4))
	if err != nil {
		b.Fatal(err)
	}
	f.SetDelivery(1, func(pkt *Packet) { f.FreePacket(pkt) })
	n := b.N
	e.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			pkt := f.NewPacket()
			pkt.Src = 0
			pkt.Dst = 1
			pkt.Bytes = 256
			f.Send(p, pkt)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	if got := int(f.Stats().Delivered); got != n {
		b.Fatalf("delivered %d, want %d", got, n)
	}
}
