package netsim

import (
	"testing"

	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

// TestPartitionDropsAndAccounts checks that packets crossing a
// partition boundary disappear and are counted as injected drops in
// both Stats and the obs counters, and that Heal restores delivery.
func TestPartitionDropsAndAccounts(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	reg := obs.NewRegistry()
	e.Observe(reg)
	f := newTestFabric(t, e, ATM155(4))
	f.Instrument(reg)
	delivered := 0
	f.SetDelivery(1, func(pkt *Packet) { delivered++ })
	f.SetDelivery(3, func(pkt *Packet) { delivered++ })

	f.Partition([]NodeID{2, 3})
	if !f.Partitioned(0, 3) || f.Partitioned(2, 3) || f.Partitioned(0, 1) {
		t.Fatal("partition membership wrong")
	}
	e.Spawn("tx", func(p *sim.Proc) {
		f.Send(p, &Packet{Src: 0, Dst: 3, Bytes: 100}) // crosses the cut
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 100}) // same side
		f.Send(p, &Packet{Src: 2, Dst: 3, Bytes: 100}) // same side
		p.Sleep(sim.Second)
		f.Heal()
		f.Send(p, &Packet{Src: 0, Dst: 3, Bytes: 100}) // healed
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 3 {
		t.Fatalf("delivered %d packets, want 3", delivered)
	}
	st := f.Stats()
	if st.Drops != 1 || st.InjectedDrops != 1 {
		t.Fatalf("stats = %+v, want 1 injected drop", st)
	}
	// Offered counts the dropped packet, Delivered does not: 4 packets
	// finished transmission, 3 reached a handler.
	if st.Offered != 4 || st.Delivered != 3 {
		t.Fatalf("stats = %+v, want offered 4 / delivered 3", st)
	}
	if st.Offered-st.Delivered != st.Drops {
		t.Fatalf("offered - delivered != drops: %+v", st)
	}
	if v, _ := reg.CounterValue("net.drops"); v != 1 {
		t.Fatalf("net.drops = %d, want 1", v)
	}
	if v, _ := reg.CounterValue("net.drops.injected"); v != 1 {
		t.Fatalf("net.drops.injected = %d, want 1", v)
	}
	if v, _ := reg.CounterValue("net.offered"); v != 4 {
		t.Fatalf("net.offered = %d, want 4", v)
	}
	if v, _ := reg.CounterValue("net.delivered"); v != 3 {
		t.Fatalf("net.delivered = %d, want 3", v)
	}
}

// TestPartitionFloodDoesNotDelayHealthyTraffic is the regression test
// for the output-link reservation bug: packets the partition swallows
// must never reserve the destination's receive link, so a flood aimed
// across the boundary leaves a healthy sender's latency to the same
// destination exactly at the uncontended figure.
func TestPartitionFloodDoesNotDelayHealthyTraffic(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	cfg := ATM155(8)
	f := newTestFabric(t, e, cfg)
	var arrived, sentAt sim.Time
	f.SetDelivery(7, func(pkt *Packet) {
		if pkt.Src == 5 {
			arrived = e.Now()
		}
	})

	f.Partition([]NodeID{4, 5, 6, 7}) // 0-3 in group 0, 4-7 in group 1
	// Flood: three cut-crossing senders each stream large packets at
	// node 7. Every one of them is dropped by the partition.
	for src := 0; src < 3; src++ {
		src := NodeID(src)
		e.Spawn("flood", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				f.Send(p, &Packet{Src: src, Dst: 7, Bytes: 8192})
			}
		})
	}
	// Healthy: node 5 sends one packet to node 7 (same side) while the
	// flood is in full flight.
	e.Spawn("healthy", func(p *sim.Proc) {
		p.Sleep(200 * sim.Microsecond)
		sentAt = p.Now()
		f.Send(p, &Packet{Src: 5, Dst: 7, Bytes: 1000})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arrived == 0 {
		t.Fatal("healthy packet never arrived")
	}
	want := sentAt + f.SerializationTime(1000) + cfg.Latency
	if arrived != want {
		t.Fatalf("healthy latency disturbed by partition flood: arrived %v, want %v", arrived, want)
	}
	if st := f.Stats(); st.InjectedDrops != 60 || st.Delivered != 1 {
		t.Fatalf("stats = %+v, want 60 injected drops and 1 delivery", st)
	}
}

// TestLinkFaultFIFOUnderChurn is the property test for the injected-
// delay occupancy bug: with a link's delay fault set, cleared and
// re-set while traffic streams across it, deliveries on the (src, dst)
// pair must stay in send order — the injected delay is part of the
// output-link schedule, not a post-hoc add-on a later packet can
// undercut.
func TestLinkFaultFIFOUnderChurn(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		e := sim.NewEngine(seed)
		f := newTestFabric(t, e, ATM155(3))
		var order []int
		var times []sim.Time
		f.SetDelivery(1, func(pkt *Packet) {
			order = append(order, pkt.Payload.(int))
			times = append(times, e.Now())
		})
		const packets = 200
		e.Spawn("churn", func(p *sim.Proc) {
			for i := 0; i < 60; i++ {
				p.Sleep(sim.Duration(e.Rand().Intn(300)) * sim.Microsecond)
				if e.Rand().Intn(3) == 0 {
					f.ClearLinkFault(0, 1)
				} else {
					f.SetLinkFault(0, 1, 0, sim.Duration(e.Rand().Intn(2000))*sim.Microsecond)
				}
			}
		})
		e.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < packets; i++ {
				f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 64 + e.Rand().Intn(4096), Payload: i})
				if e.Rand().Intn(4) == 0 {
					p.Sleep(sim.Duration(e.Rand().Intn(500)) * sim.Microsecond)
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if len(order) != packets {
			t.Fatalf("seed %d: delivered %d/%d (loss-free link)", seed, len(order), packets)
		}
		for i := 1; i < len(order); i++ {
			if order[i] != order[i-1]+1 {
				t.Fatalf("seed %d: FIFO violated: packet %d delivered after %d", seed, order[i], order[i-1])
			}
			if times[i] < times[i-1] {
				t.Fatalf("seed %d: delivery times regressed: %v after %v", seed, times[i], times[i-1])
			}
		}
	}
}

// TestLinkFaultLossAccounting injects a fully lossy link: every packet
// on it is an injected drop, other links are untouched, and
// ClearLinkFault restores the link.
func TestLinkFaultLossAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	f := newTestFabric(t, e, ATM155(3))
	delivered := map[NodeID]int{}
	f.SetDelivery(1, func(pkt *Packet) { delivered[1]++ })
	f.SetDelivery(2, func(pkt *Packet) { delivered[2]++ })

	f.SetLinkFault(0, 1, 1.0, 0) // loss=1: deterministic drop
	e.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 64})
			f.Send(p, &Packet{Src: 0, Dst: 2, Bytes: 64})
		}
		p.Sleep(sim.Second)
		f.ClearLinkFault(0, 1)
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 64})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered[2] != 5 {
		t.Fatalf("healthy link delivered %d/5", delivered[2])
	}
	if delivered[1] != 1 {
		t.Fatalf("faulted link delivered %d, want only the post-clear packet", delivered[1])
	}
	if st := f.Stats(); st.InjectedDrops != 5 {
		t.Fatalf("InjectedDrops = %d, want 5", st.InjectedDrops)
	}
}

// TestLinkFaultDelayIsAdded checks the delay half of a link fault: the
// packet arrives exactly the injected delay later, and the fault is
// undirected.
func TestLinkFaultDelayIsAdded(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	f := newTestFabric(t, e, ATM155(2))
	var arrivals []sim.Time
	var sentAt sim.Time
	f.SetDelivery(1, func(pkt *Packet) { arrivals = append(arrivals, e.Now()) })
	e.Spawn("tx", func(p *sim.Proc) {
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 1000}) // healthy baseline
		p.Sleep(sim.Second)
		f.SetLinkFault(1, 0, 0, 5*sim.Millisecond) // set via (1,0): undirected
		sentAt = p.Now()
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 1000})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(arrivals))
	}
	// Same packet on the same idle link: delivery cost matches the
	// healthy baseline plus exactly the injected delay.
	want := sentAt + arrivals[0] + 5*sim.Millisecond
	if arrivals[1] != want {
		t.Fatalf("slowed packet at %v, want %v", arrivals[1], want)
	}
}
