package netsim

import (
	"testing"

	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
)

// TestPartitionDropsAndAccounts checks that packets crossing a
// partition boundary disappear and are counted as injected drops in
// both Stats and the obs counters, and that Heal restores delivery.
func TestPartitionDropsAndAccounts(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	reg := obs.NewRegistry()
	e.Observe(reg)
	f := newTestFabric(t, e, ATM155(4))
	f.Instrument(reg)
	delivered := 0
	f.SetDelivery(1, func(pkt *Packet) { delivered++ })
	f.SetDelivery(3, func(pkt *Packet) { delivered++ })

	f.Partition([]NodeID{2, 3})
	if !f.Partitioned(0, 3) || f.Partitioned(2, 3) || f.Partitioned(0, 1) {
		t.Fatal("partition membership wrong")
	}
	e.Spawn("tx", func(p *sim.Proc) {
		f.Send(p, &Packet{Src: 0, Dst: 3, Bytes: 100}) // crosses the cut
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 100}) // same side
		f.Send(p, &Packet{Src: 2, Dst: 3, Bytes: 100}) // same side
		p.Sleep(sim.Second)
		f.Heal()
		f.Send(p, &Packet{Src: 0, Dst: 3, Bytes: 100}) // healed
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 3 {
		t.Fatalf("delivered %d packets, want 3", delivered)
	}
	st := f.Stats()
	if st.Drops != 1 || st.InjectedDrops != 1 {
		t.Fatalf("stats = %+v, want 1 injected drop", st)
	}
	if v, _ := reg.CounterValue("net.drops"); v != 1 {
		t.Fatalf("net.drops = %d, want 1", v)
	}
	if v, _ := reg.CounterValue("net.drops.injected"); v != 1 {
		t.Fatalf("net.drops.injected = %d, want 1", v)
	}
}

// TestLinkFaultLossAccounting injects a fully lossy link: every packet
// on it is an injected drop, other links are untouched, and
// ClearLinkFault restores the link.
func TestLinkFaultLossAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	f := newTestFabric(t, e, ATM155(3))
	delivered := map[NodeID]int{}
	f.SetDelivery(1, func(pkt *Packet) { delivered[1]++ })
	f.SetDelivery(2, func(pkt *Packet) { delivered[2]++ })

	f.SetLinkFault(0, 1, 1.0, 0) // loss=1: deterministic drop
	e.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 64})
			f.Send(p, &Packet{Src: 0, Dst: 2, Bytes: 64})
		}
		p.Sleep(sim.Second)
		f.ClearLinkFault(0, 1)
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 64})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered[2] != 5 {
		t.Fatalf("healthy link delivered %d/5", delivered[2])
	}
	if delivered[1] != 1 {
		t.Fatalf("faulted link delivered %d, want only the post-clear packet", delivered[1])
	}
	if st := f.Stats(); st.InjectedDrops != 5 {
		t.Fatalf("InjectedDrops = %d, want 5", st.InjectedDrops)
	}
}

// TestLinkFaultDelayIsAdded checks the delay half of a link fault: the
// packet arrives exactly the injected delay later, and the fault is
// undirected.
func TestLinkFaultDelayIsAdded(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	f := newTestFabric(t, e, ATM155(2))
	var arrivals []sim.Time
	var sentAt sim.Time
	f.SetDelivery(1, func(pkt *Packet) { arrivals = append(arrivals, e.Now()) })
	e.Spawn("tx", func(p *sim.Proc) {
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 1000}) // healthy baseline
		p.Sleep(sim.Second)
		f.SetLinkFault(1, 0, 0, 5*sim.Millisecond) // set via (1,0): undirected
		sentAt = p.Now()
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 1000})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(arrivals))
	}
	// Same packet on the same idle link: delivery cost matches the
	// healthy baseline plus exactly the injected delay.
	want := sentAt + arrivals[0] + 5*sim.Millisecond
	if arrivals[1] != want {
		t.Fatalf("slowed packet at %v, want %v", arrivals[1], want)
	}
}
