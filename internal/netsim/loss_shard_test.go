package netsim_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// TestShardedLossInvariant is the regression for the issue's concern
// that the offered − delivered = drops conservation law could leak at
// sharded partition edges — e.g. a cross-partition packet counted as
// offered on the source partition but dropped (or delivered) on the
// destination one, splitting one packet's fate across two ledgers.
//
// Audit conclusion, pinned here under seeded background loss: the
// fabric decides every packet's fate in accept() at the SOURCE
// partition, before any cross-shard handoff, so each per-partition
// ledger balances on its own — not just the cluster-wide sum — and the
// handoff itself is conservative (CrossSent == CrossRecv). The
// exported metrics mirror the same counters.
func TestShardedLossInvariant(t *testing.T) {
	const (
		nodes  = 16
		parts  = 4
		rounds = 3
	)
	fcfg := netsim.Myrinet(nodes)
	fcfg.LossProb = 0.10
	se := sim.NewShardedEngine(sim.ShardedConfig{
		Parts: parts, Workers: parts, Seed: 23, Window: fcfg.Latency,
	})
	defer se.Close()
	pm := netsim.SplitEven(nodes, parts)
	sf, err := netsim.NewSharded(se, fcfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]*obs.Registry, parts)
	for p := 0; p < parts; p++ {
		regs[p] = obs.NewRegistry()
		sf.Part(p).Instrument(regs[p])
	}
	eps := make([]*am.Endpoint, nodes)
	for i := 0; i < nodes; i++ {
		p := pm.Part(netsim.NodeID(i))
		e := se.Engine(p)
		eps[i] = am.NewEndpoint(e, node.New(e, node.DefaultConfig(netsim.NodeID(i))), sf.Part(p), am.Config{HeaderBytes: 8, Window: 4})
		eps[i].Register(0x21, func(p *sim.Proc, m am.Msg) (any, int) {
			return m.Arg, 32
		})
	}
	for i := 0; i < nodes; i++ {
		i := i
		e := se.Engine(pm.Part(netsim.NodeID(i)))
		e.Spawn(fmt.Sprintf("rank-%d", i), func(pr *sim.Proc) {
			for r := 0; r < rounds; r++ {
				// Mostly cross-partition destinations: the handoff edge
				// is the path under test.
				dst := (i + nodes/2 + r*3) % nodes
				pr.Sleep(sim.Duration(e.Rand().Intn(5)) * sim.Microsecond)
				if _, err := eps[i].Call(pr, netsim.NodeID(dst), 0x21, r, 512); err != nil {
					pr.Fail(fmt.Errorf("rank %d round %d: %w", i, r, err))
				}
			}
		})
	}
	errc := make(chan error, 1)
	go func() { errc <- se.Run(sim.MaxTime) }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("lossy sharded run deadlocked")
	}

	// Per-partition ledgers must each balance on their own.
	var total netsim.Stats
	for p := 0; p < parts; p++ {
		s := sf.Part(p).Stats()
		if s.Offered-s.Delivered != s.Drops {
			t.Errorf("partition %d: offered %d − delivered %d != drops %d",
				p, s.Offered, s.Delivered, s.Drops)
		}
		if s.InjectedDrops != 0 {
			t.Errorf("partition %d: %d injected drops with no faults armed", p, s.InjectedDrops)
		}
		total.Offered += s.Offered
		total.Delivered += s.Delivered
		total.Drops += s.Drops
		total.CrossSent += s.CrossSent
		total.CrossRecv += s.CrossRecv
	}
	agg := sf.Stats()
	if agg.Offered != total.Offered || agg.Delivered != total.Delivered || agg.Drops != total.Drops {
		t.Errorf("aggregate stats %+v disagree with per-partition sum %+v", agg, total)
	}
	if agg.Offered-agg.Delivered != agg.Drops {
		t.Errorf("cluster-wide: offered %d − delivered %d != drops %d", agg.Offered, agg.Delivered, agg.Drops)
	}
	if total.Drops == 0 {
		t.Fatal("no drops observed — LossProb churn this regression depends on did not happen")
	}
	if total.CrossSent == 0 {
		t.Fatal("no cross-partition traffic — the partition edge was not exercised")
	}
	if total.CrossSent != total.CrossRecv {
		t.Errorf("cross-partition handoff leaked packets: sent=%d recv=%d", total.CrossSent, total.CrossRecv)
	}

	// The exported metrics are the same ledger; the merged registry view
	// must agree with the summed Stats.
	merged := obs.Merged(regs...)
	counter := func(name string) int64 {
		for _, m := range merged.Snapshot() {
			if m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("metric %q not exported", name)
		return 0
	}
	if got := counter("net.offered"); got != agg.Offered {
		t.Errorf("net.offered metric %d != stats %d", got, agg.Offered)
	}
	if got := counter("net.delivered"); got != agg.Delivered {
		t.Errorf("net.delivered metric %d != stats %d", got, agg.Delivered)
	}
	if got := counter("net.drops"); got != agg.Drops {
		t.Errorf("net.drops metric %d != stats %d", got, agg.Drops)
	}
}
