// Package netsim models the local-area fabrics the NOW paper contrasts:
// the shared 10 Mb/s Ethernet of 1994 departmental LANs, and the
// emerging switched fabrics (ATM, FDDI, Myrinet-class MPP networks) whose
// bandwidth scales with the number of nodes.
//
// The model separates, as the paper insists one must, the three
// components of communication cost:
//
//   - processor overhead (o): charged by the protocol layers in
//     internal/proto, NOT here — overhead is CPU time and belongs to the
//     sending/receiving host;
//   - serialization/bandwidth (bytes/G): charged here, on the contended
//     medium (shared fabric) or per-node links (switched fabric);
//   - network latency (L): charged here, between end of transmission and
//     delivery.
//
// A switched fabric is cut-through (the paper: "fast, single-chip
// switches employing cut-through routing"): an uncontended packet is
// fully received at tx_end + latency. Receiver-link contention is
// modelled analytically with a per-destination busy-until horizon, so
// incast (the Column benchmark's failure mode) queues where it should.
// The drop decision (partition, link fault, background loss) is made
// BEFORE a packet reserves the destination link: a packet the fabric
// swallows never delays healthy traffic. Injected link delay is folded
// into the occupancy horizon, so delivery on a (src, dst) pair is FIFO
// even while the link's fault state churns.
//
// Accounting distinguishes offered load (packets that finished
// transmission) from delivered load (packets handed to a delivery
// handler); the difference is Drops. Self-sends bypass the wire and are
// counted separately in neither.
//
// The delivery hot path is map-free: per-node handler tables and
// per-node fault state are slice-indexed, and Packet structs can be
// recycled through the fabric's free list (NewPacket/FreePacket), so a
// 1,024-node collective sweep pays no hashing and little garbage.
//
// Fabric.Instrument attaches an internal/obs registry: offered/delivered
// packet and byte counters, drop counters, a per-message
// delivery-latency histogram, and sampled medium or per-link utilisation
// gauges (docs/OBSERVABILITY.md).
package netsim

import (
	"fmt"

	"github.com/nowproject/now/internal/sim"
)

// NodeID identifies a workstation on the fabric (dense, 0-based).
type NodeID int

// Packet is one network transmission. Bytes is the on-the-wire size
// including whatever headers the protocol layer added; Payload is the
// simulated content, opaque to the fabric. Port demultiplexes endpoints
// sharing one node (e.g. the per-job communication contexts of the
// coscheduling study); SrcPort lets the receiver address its reply.
type Packet struct {
	Src, Dst NodeID
	Port     int
	SrcPort  int
	Bytes    int
	Payload  any
	Sent     sim.Time // stamped by Send
	// pooled marks packets obtained from Fabric.NewPacket; FreePacket
	// recycles only these, so literals remain safe to pass everywhere.
	pooled bool
}

// Delivery receives packets at their arrival time. It runs in engine
// event context and must not block; protocol layers enqueue into a
// mailbox and return.
type Delivery func(pkt *Packet)

// Config describes a fabric.
type Config struct {
	// Name appears in diagnostics ("ethernet", "atm", "myrinet").
	Name string
	// Nodes is the number of attached workstations.
	Nodes int
	// BandwidthMbps is the link (switched) or medium (shared) bit rate
	// in megabits per second.
	BandwidthMbps float64
	// Latency is the network latency L: propagation plus switch routing
	// time for one traversal.
	Latency sim.Duration
	// Shared selects a single contended medium (Ethernet, FDDI ring)
	// instead of a per-node-link switched fabric.
	Shared bool
	// PerPacketWire is a fixed per-packet wire cost (preamble, cell
	// framing) added to the serialization time.
	PerPacketWire sim.Duration
	// LossProb is the probability a packet is silently dropped after
	// transmission, exercising the protocol layers' timeout/retry paths.
	LossProb float64
	// Topo selects the internal switch structure of a switched fabric
	// (topology.go): nil is the flat single-switch crossbar, where every
	// pair of nodes is one Latency apart and only destination links
	// contend. With a topology, packets walk its deterministic route and
	// charge Latency plus busy-until contention on every internal link.
	// Shared-medium fabrics take no topology.
	Topo Topology
}

// Stats aggregates fabric activity over a run. Offered counts packets
// that finished transmission whether or not they were then dropped;
// Delivered counts the subset actually handed to a delivery handler, so
// Offered - Delivered == Drops always holds. Self-sends bypass the wire
// and appear in neither.
type Stats struct {
	Offered        int64
	OfferedBytes   int64
	Delivered      int64
	DeliveredBytes int64
	Drops          int64
	SelfSends      int64
	// InjectedDrops is the subset of Drops caused by injected faults
	// (partitions and per-link loss windows) rather than the fabric's
	// configured background LossProb.
	InjectedDrops int64
	// CrossSent / CrossRecv count packets handed across partition
	// boundaries on a sharded fabric (see shard.go); both zero on an
	// unsharded fabric. Cross packets are also counted in Offered and,
	// if they survive the accept decision, Delivered — at the source.
	CrossSent int64
	CrossRecv int64
}

// Fabric is a simulated LAN. Create one with New, register per-node
// Delivery handlers, then Send from simulated processes.
type Fabric struct {
	eng      *sim.Engine
	cfg      Config
	medium   *sim.Resource   // shared mode: the one Ethernet segment
	txLinks  []*sim.Resource // switched mode: per-node transmit links
	rxFree   []sim.Time      // switched mode: per-node receive-link horizon
	topo     Topology        // nil: flat crossbar
	linkFree []sim.Time      // per internal-link busy-until horizon (topologies)
	ports    [][]Delivery    // per-node, port-indexed delivery handlers
	pool     []*Packet       // free list for NewPacket/FreePacket
	stats    Stats
	m        *fabricMetrics // nil unless Instrument attached a registry

	// Injected fault state (internal/faults drives these; all nil on a
	// healthy fabric, so the send path pays only nil checks). Rows are
	// allocated lazily per source node the first time a fault touches
	// it; lookups are two slice indexes, never a map.
	group     []int            // partition group per node; nil = unpartitioned
	lossRows  [][]float64      // [src][dst] injected loss probability
	delayRows [][]sim.Duration // [src][dst] injected extra latency

	// deliverFn is the bound deliverPacket method, created once so the
	// per-delivery AtArg schedule allocates no closure.
	deliverFn func(any)

	// cross is non-nil when this Fabric is one partition of a
	// ShardedFabric: sends to nodes owned by other partitions detour
	// through sendCross (shard.go) after the source-side costs are paid.
	cross *crossLink
}

// New builds a fabric on e. Nodes must be positive; bandwidth must be
// positive.
func New(e *sim.Engine, cfg Config) (*Fabric, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("netsim: %d nodes", cfg.Nodes)
	}
	if cfg.BandwidthMbps <= 0 {
		return nil, fmt.Errorf("netsim: bandwidth %v Mb/s", cfg.BandwidthMbps)
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		return nil, fmt.Errorf("netsim: loss probability %v", cfg.LossProb)
	}
	if cfg.Topo != nil && cfg.Shared {
		return nil, fmt.Errorf("netsim: shared-medium fabric %q cannot take topology %s", cfg.Name, cfg.Topo.Name())
	}
	f := &Fabric{
		eng:   e,
		cfg:   cfg,
		ports: make([][]Delivery, cfg.Nodes),
	}
	f.deliverFn = f.deliverPacket
	if t := cfg.Topo; t != nil {
		f.topo = t
		f.linkFree = make([]sim.Time, t.NumLinks())
	}
	if cfg.Shared {
		f.medium = sim.NewResource(e, cfg.Name+"/medium", 1)
	} else {
		f.txLinks = make([]*sim.Resource, cfg.Nodes)
		for i := range f.txLinks {
			f.txLinks[i] = sim.NewResource(e, fmt.Sprintf("%s/tx%d", cfg.Name, i), 1)
		}
		f.rxFree = make([]sim.Time, cfg.Nodes)
	}
	return f, nil
}

// Nodes returns the number of attached workstations.
func (f *Fabric) Nodes() int { return f.cfg.Nodes }

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// SetDelivery registers the handler for (node, port 0). Registering nil
// detaches it (packets to it are dropped).
func (f *Fabric) SetDelivery(node NodeID, fn Delivery) {
	f.SetDeliveryPort(node, 0, fn)
}

// SetDeliveryPort registers the handler for one (node, port) endpoint.
// Out-of-range nodes and negative ports are ignored, mirroring the old
// behaviour that packets to unknown endpoints simply vanish.
func (f *Fabric) SetDeliveryPort(node NodeID, port int, fn Delivery) {
	if node < 0 || int(node) >= f.cfg.Nodes || port < 0 {
		return
	}
	ps := f.ports[node]
	if port >= len(ps) {
		if fn == nil {
			return
		}
		grown := make([]Delivery, port+1)
		copy(grown, ps)
		ps, f.ports[node] = grown, grown
	}
	ps[port] = fn
}

// NewPacket returns a zeroed Packet from the fabric's free list. Pair
// it with FreePacket for single-shot packets (acknowledgements, replies)
// whose ownership ends at the receiver; packets built with literals are
// unaffected. The simulation is single-threaded, so a plain slice is a
// correct and deterministic pool.
func (f *Fabric) NewPacket() *Packet {
	if n := len(f.pool); n > 0 {
		pkt := f.pool[n-1]
		f.pool[n-1] = nil
		f.pool = f.pool[:n-1]
		return pkt
	}
	return &Packet{pooled: true}
}

// FreePacket recycles a packet obtained from NewPacket; it is a no-op
// for literal packets, so callers may free anything they have finished
// consuming. Freeing a pooled packet that something else still
// references is a caller bug.
func (f *Fabric) FreePacket(pkt *Packet) {
	if pkt == nil || !pkt.pooled {
		return
	}
	*pkt = Packet{pooled: true}
	f.pool = append(f.pool, pkt)
}

// SerializationTime returns the wire occupancy for a packet of n bytes.
func (f *Fabric) SerializationTime(n int) sim.Duration {
	return sim.PerByte(int64(n), sim.Bandwidth(f.cfg.BandwidthMbps)) + f.cfg.PerPacketWire
}

// Send transmits pkt, blocking p for the source-side wire occupancy
// (media acquisition on a shared fabric, link serialization on both).
// Delivery to the destination handler happens later in virtual time.
// Sending to self bypasses the wire entirely.
func (f *Fabric) Send(p *sim.Proc, pkt *Packet) {
	pkt.Sent = f.eng.Now()
	if pkt.Src == pkt.Dst {
		f.stats.SelfSends++
		if m := f.m; m != nil {
			m.selfSends.Inc()
		}
		f.deliverAt(f.eng.Now(), pkt)
		return
	}
	ser := f.SerializationTime(pkt.Bytes)
	if f.cfg.Shared {
		f.medium.Use(p, 1, ser)
		if !f.accept(pkt) {
			return
		}
		f.deliverAt(f.eng.Now()+f.cfg.Latency+f.injectedDelay(pkt), pkt)
		return
	}
	if f.cross != nil && f.txLinks[pkt.Src] == nil {
		panic(fmt.Sprintf("netsim: send from node %d on partition %d's fabric, which does not own it",
			pkt.Src, f.cross.part))
	}
	f.txLinks[pkt.Src].Use(p, 1, ser)
	// The drop decision comes BEFORE the destination-link reservation: a
	// packet swallowed by a partition, a lossy link, or background loss
	// never occupies the victim's output link, so a flood aimed across a
	// partition boundary cannot delay healthy traffic. The RNG draws
	// happen at the same point in the event schedule as before (after
	// the source-link park, synchronously), so seeded runs replay.
	if !f.accept(pkt) {
		return
	}
	if c := f.cross; c != nil && !c.pm.Local(pkt.Dst, c.part) {
		f.sendCross(pkt, ser)
		return
	}
	// Cut-through: the head of the packet reached the destination link
	// latency after it left; the tail arrives one serialization later.
	// Output-link contention delays us behind earlier arrivals, and any
	// injected link delay is folded into the occupancy window so a later
	// packet on a healing link cannot overtake an earlier one —
	// per-(src,dst) delivery stays FIFO under fault churn.
	//
	// Under a topology the same step repeats per internal link: the
	// head reaches each switch's output link Latency after the tail
	// left the previous one, queues behind that link's busy-until
	// horizon, and the tail follows one serialization later. The route
	// is deterministic per (src, dst) and every horizon is monotone, so
	// per-(src,dst) FIFO survives. With no topology the walk is empty
	// and this is exactly the crossbar formula.
	tail := f.eng.Now()
	hops := 1
	if t := f.topo; t != nil {
		var routeArr [32]int
		for _, li := range t.Route(pkt.Src, pkt.Dst, routeArr[:0]) {
			headAt := tail - ser + f.cfg.Latency
			if f.linkFree[li] > headAt {
				headAt = f.linkFree[li]
			}
			tail = headAt + ser
			f.linkFree[li] = tail
			hops++
		}
	}
	headAtRx := tail - ser + f.cfg.Latency
	outStart := headAtRx
	if f.rxFree[pkt.Dst] > outStart {
		outStart = f.rxFree[pkt.Dst]
	}
	done := outStart + ser + f.injectedDelay(pkt)
	f.rxFree[pkt.Dst] = done
	if m := f.m; m != nil && m.topoHops != nil {
		m.topoHops.Observe(int64(hops))
		// Queueing: how far contention pushed delivery past the
		// uncontended cut-through time (injected delay excluded).
		m.topoQueue.Observe(int64(outStart + ser - (f.eng.Now() + sim.Duration(hops)*f.cfg.Latency)))
	}
	f.deliverAt(done, pkt)
}

// Partition splits the fabric into groups of nodes: nodes listed in
// sets[i] join group i+1, unlisted nodes stay in group 0, and packets
// crossing a group boundary are dropped (counted in Stats.Drops,
// Stats.InjectedDrops and the net.drops/net.drops.injected counters).
// Self-sends bypass the wire and are never partitioned. A new call
// replaces the previous partition; Heal removes it.
func (f *Fabric) Partition(sets ...[]NodeID) {
	f.group = make([]int, f.cfg.Nodes)
	for i, set := range sets {
		for _, n := range set {
			if n >= 0 && int(n) < f.cfg.Nodes {
				f.group[n] = i + 1
			}
		}
	}
}

// Heal removes the current partition; all nodes can reach each other
// again (per-link faults set with SetLinkFault are unaffected).
func (f *Fabric) Heal() { f.group = nil }

// Partitioned reports whether a packet from a to b would be dropped by
// the current partition.
func (f *Fabric) Partitioned(a, b NodeID) bool {
	if f.group == nil || a == b {
		return false
	}
	if a < 0 || b < 0 || int(a) >= len(f.group) || int(b) >= len(f.group) {
		return false
	}
	return f.group[a] != f.group[b]
}

// faultRow returns rows[src], allocating lazily. rows must already be
// non-nil.
func faultRow[T any](rows [][]T, src NodeID, nodes int) []T {
	if rows[src] == nil {
		rows[src] = make([]T, nodes)
	}
	return rows[src]
}

// SetLinkFault degrades the (undirected) link between a and b: packets
// between them are dropped with probability loss and delivered delay
// later than normal. A second call replaces the previous fault on that
// link; ClearLinkFault heals it.
func (f *Fabric) SetLinkFault(a, b NodeID, loss float64, delay sim.Duration) {
	if a < 0 || b < 0 || int(a) >= f.cfg.Nodes || int(b) >= f.cfg.Nodes || a == b {
		return
	}
	if loss < 0 {
		loss = 0
	}
	if delay < 0 {
		delay = 0
	}
	if loss > 0 || f.lossRows != nil {
		if f.lossRows == nil {
			f.lossRows = make([][]float64, f.cfg.Nodes)
		}
		faultRow(f.lossRows, a, f.cfg.Nodes)[b] = loss
		faultRow(f.lossRows, b, f.cfg.Nodes)[a] = loss
	}
	if delay > 0 || f.delayRows != nil {
		if f.delayRows == nil {
			f.delayRows = make([][]sim.Duration, f.cfg.Nodes)
		}
		faultRow(f.delayRows, a, f.cfg.Nodes)[b] = delay
		faultRow(f.delayRows, b, f.cfg.Nodes)[a] = delay
	}
}

// ClearLinkFault removes injected loss and delay from the link between
// a and b.
func (f *Fabric) ClearLinkFault(a, b NodeID) {
	f.SetLinkFault(a, b, 0, 0)
}

// injectedDrop decides whether fault state swallows pkt: a partition
// boundary drops deterministically, a faulted link drops with its
// configured probability (drawn from the engine RNG, so seeded runs
// stay reproducible).
func (f *Fabric) injectedDrop(pkt *Packet) bool {
	if f.Partitioned(pkt.Src, pkt.Dst) {
		return true
	}
	if f.lossRows != nil {
		if row := f.lossRows[pkt.Src]; row != nil {
			if p := row[pkt.Dst]; p > 0 && f.eng.Rand().Float64() < p {
				return true
			}
		}
	}
	return false
}

// injectedDelay reports the extra delivery latency injected on pkt's
// link (zero on a healthy link).
func (f *Fabric) injectedDelay(pkt *Packet) sim.Duration {
	if f.delayRows == nil {
		return 0
	}
	row := f.delayRows[pkt.Src]
	if row == nil {
		return 0
	}
	return row[pkt.Dst]
}

// accept finalises a transmission's fate: it records the offered load,
// applies the drop decision (injected faults first, then background
// loss), and records delivered load for survivors. Dropped pooled
// packets are recycled — nothing downstream will ever see them.
func (f *Fabric) accept(pkt *Packet) bool {
	f.stats.Offered++
	f.stats.OfferedBytes += int64(pkt.Bytes)
	if m := f.m; m != nil {
		m.offered.Inc()
		m.offeredBytes.Add(int64(pkt.Bytes))
	}
	if f.injectedDrop(pkt) {
		f.stats.Drops++
		f.stats.InjectedDrops++
		if m := f.m; m != nil {
			m.drops.Inc()
			m.injDrops.Inc()
		}
		f.FreePacket(pkt)
		return false
	}
	if f.cfg.LossProb > 0 && f.eng.Rand().Float64() < f.cfg.LossProb {
		f.stats.Drops++
		if m := f.m; m != nil {
			m.drops.Inc()
		}
		f.FreePacket(pkt)
		return false
	}
	f.stats.Delivered++
	f.stats.DeliveredBytes += int64(pkt.Bytes)
	if m := f.m; m != nil {
		m.delivered.Inc()
		m.deliveredBytes.Add(int64(pkt.Bytes))
	}
	return true
}

// deliverAt schedules pkt's arrival. The packet rides in the pooled
// event as the argument of the fabric's one bound deliverPacket method,
// so the hot path schedules with zero allocations and zero map lookups.
func (f *Fabric) deliverAt(at sim.Time, pkt *Packet) {
	f.eng.AtArg(at, f.deliverFn, pkt)
}

func (f *Fabric) deliverPacket(v any) {
	pkt := v.(*Packet)
	if m := f.m; m != nil {
		m.latency.Observe(int64(f.eng.Now() - pkt.Sent))
	}
	var h Delivery
	if ps := f.ports[pkt.Dst]; pkt.Port >= 0 && pkt.Port < len(ps) {
		h = ps[pkt.Port]
	}
	if h != nil {
		h(pkt)
		return
	}
	// No handler at (dst, port): the packet vanishes; recycle it if it
	// came from the pool (a literal's sender may still hold it).
	f.FreePacket(pkt)
}

// Stats returns a snapshot of fabric counters.
func (f *Fabric) Stats() Stats { return f.stats }

// MediumUtilization reports utilisation of the shared medium (0 for
// switched fabrics, where per-link utilisation is the relevant figure).
func (f *Fabric) MediumUtilization() float64 {
	if f.medium == nil {
		return 0
	}
	return f.medium.Utilization()
}

// Topology returns the fabric's internal switch topology (nil for the
// flat crossbar).
func (f *Fabric) Topology() Topology { return f.topo }

// OccupyTx serialises bytes onto src's transmit link (or the shared
// medium), blocking p exactly as Send's source side does, and returns
// the serialization time. The in-network collective plane uses it to
// charge a rank's injection cost for control messages the switch
// fabric consumes (they never reach another NIC, so Send's addressing
// and accounting do not apply).
func (f *Fabric) OccupyTx(p *sim.Proc, src NodeID, bytes int) sim.Duration {
	ser := f.SerializationTime(bytes)
	if f.cfg.Shared {
		f.medium.Use(p, 1, ser)
		return ser
	}
	f.txLinks[src].Use(p, 1, ser)
	return ser
}

// ReserveRx folds one switch-injected packet into dst's receive-link
// busy-until horizon: the head arrives (uncontended) at headAtRx, queues
// behind earlier arrivals, and the tail follows ser later. It returns
// the delivery-complete time. The in-network collective plane uses it
// so down-path multicasts contend with data traffic at the NIC.
func (f *Fabric) ReserveRx(dst NodeID, headAtRx sim.Time, ser sim.Duration) sim.Time {
	outStart := headAtRx
	if f.rxFree[dst] > outStart {
		outStart = f.rxFree[dst]
	}
	done := outStart + ser
	f.rxFree[dst] = done
	return done
}

// TxLinkUtilization reports the time-averaged utilisation of one node's
// transmit link on a switched fabric (0 in shared mode), the per-link
// figure the scale studies record.
func (f *Fabric) TxLinkUtilization(node NodeID) float64 {
	if f.txLinks == nil || node < 0 || int(node) >= len(f.txLinks) || f.txLinks[node] == nil {
		return 0
	}
	return f.txLinks[node].Utilization()
}
