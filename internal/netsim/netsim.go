// Package netsim models the local-area fabrics the NOW paper contrasts:
// the shared 10 Mb/s Ethernet of 1994 departmental LANs, and the
// emerging switched fabrics (ATM, FDDI, Myrinet-class MPP networks) whose
// bandwidth scales with the number of nodes.
//
// The model separates, as the paper insists one must, the three
// components of communication cost:
//
//   - processor overhead (o): charged by the protocol layers in
//     internal/proto, NOT here — overhead is CPU time and belongs to the
//     sending/receiving host;
//   - serialization/bandwidth (bytes/G): charged here, on the contended
//     medium (shared fabric) or per-node links (switched fabric);
//   - network latency (L): charged here, between end of transmission and
//     delivery.
//
// A switched fabric is cut-through (the paper: "fast, single-chip
// switches employing cut-through routing"): an uncontended packet is
// fully received at tx_end + latency. Receiver-link contention is
// modelled analytically with a per-destination busy-until horizon, so
// incast (the Column benchmark's failure mode) queues where it should.
//
// Fabric.Instrument attaches an internal/obs registry: packet/byte/drop
// counters, a per-message delivery-latency histogram, and sampled
// medium or per-link utilisation gauges (docs/OBSERVABILITY.md).
package netsim

import (
	"fmt"

	"github.com/nowproject/now/internal/sim"
)

// NodeID identifies a workstation on the fabric (dense, 0-based).
type NodeID int

// Packet is one network transmission. Bytes is the on-the-wire size
// including whatever headers the protocol layer added; Payload is the
// simulated content, opaque to the fabric. Port demultiplexes endpoints
// sharing one node (e.g. the per-job communication contexts of the
// coscheduling study); SrcPort lets the receiver address its reply.
type Packet struct {
	Src, Dst NodeID
	Port     int
	SrcPort  int
	Bytes    int
	Payload  any
	Sent     sim.Time // stamped by Send
}

// Delivery receives packets at their arrival time. It runs in engine
// event context and must not block; protocol layers enqueue into a
// mailbox and return.
type Delivery func(pkt *Packet)

// Config describes a fabric.
type Config struct {
	// Name appears in diagnostics ("ethernet", "atm", "myrinet").
	Name string
	// Nodes is the number of attached workstations.
	Nodes int
	// BandwidthMbps is the link (switched) or medium (shared) bit rate
	// in megabits per second.
	BandwidthMbps float64
	// Latency is the network latency L: propagation plus switch routing
	// time for one traversal.
	Latency sim.Duration
	// Shared selects a single contended medium (Ethernet, FDDI ring)
	// instead of a per-node-link switched fabric.
	Shared bool
	// PerPacketWire is a fixed per-packet wire cost (preamble, cell
	// framing) added to the serialization time.
	PerPacketWire sim.Duration
	// LossProb is the probability a packet is silently dropped after
	// transmission, exercising the protocol layers' timeout/retry paths.
	LossProb float64
}

// Stats aggregates fabric activity over a run.
type Stats struct {
	Packets   int64
	Bytes     int64
	Drops     int64
	SelfSends int64
	// InjectedDrops is the subset of Drops caused by injected faults
	// (partitions and per-link loss windows) rather than the fabric's
	// configured background LossProb.
	InjectedDrops int64
}

// Fabric is a simulated LAN. Create one with New, register per-node
// Delivery handlers, then Send from simulated processes.
type Fabric struct {
	eng      *sim.Engine
	cfg      Config
	medium   *sim.Resource   // shared mode: the one Ethernet segment
	txLinks  []*sim.Resource // switched mode: per-node transmit links
	rxFree   []sim.Time      // switched mode: per-node receive-link horizon
	handlers map[portKey]Delivery
	stats    Stats
	m        *fabricMetrics // nil unless Instrument attached a registry

	// Injected fault state (internal/faults drives these; all nil/empty
	// on a healthy fabric, so the send path pays only nil checks).
	group     []int                    // partition group per node; nil = unpartitioned
	linkLoss  map[linkKey]float64      // per-link injected loss probability
	linkDelay map[linkKey]sim.Duration // per-link injected extra latency
}

// linkKey names an undirected node pair for link-fault state.
type linkKey struct {
	a, b NodeID // a < b
}

func mkLinkKey(x, y NodeID) linkKey {
	if x > y {
		x, y = y, x
	}
	return linkKey{a: x, b: y}
}

// portKey addresses one endpoint: a node and a port on it.
type portKey struct {
	node NodeID
	port int
}

// New builds a fabric on e. Nodes must be positive; bandwidth must be
// positive.
func New(e *sim.Engine, cfg Config) (*Fabric, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("netsim: %d nodes", cfg.Nodes)
	}
	if cfg.BandwidthMbps <= 0 {
		return nil, fmt.Errorf("netsim: bandwidth %v Mb/s", cfg.BandwidthMbps)
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		return nil, fmt.Errorf("netsim: loss probability %v", cfg.LossProb)
	}
	f := &Fabric{
		eng:      e,
		cfg:      cfg,
		handlers: make(map[portKey]Delivery),
	}
	if cfg.Shared {
		f.medium = sim.NewResource(e, cfg.Name+"/medium", 1)
	} else {
		f.txLinks = make([]*sim.Resource, cfg.Nodes)
		for i := range f.txLinks {
			f.txLinks[i] = sim.NewResource(e, fmt.Sprintf("%s/tx%d", cfg.Name, i), 1)
		}
		f.rxFree = make([]sim.Time, cfg.Nodes)
	}
	return f, nil
}

// Nodes returns the number of attached workstations.
func (f *Fabric) Nodes() int { return f.cfg.Nodes }

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// SetDelivery registers the handler for (node, port 0). Registering nil
// detaches it (packets to it are dropped).
func (f *Fabric) SetDelivery(node NodeID, fn Delivery) {
	f.SetDeliveryPort(node, 0, fn)
}

// SetDeliveryPort registers the handler for one (node, port) endpoint.
func (f *Fabric) SetDeliveryPort(node NodeID, port int, fn Delivery) {
	k := portKey{node: node, port: port}
	if fn == nil {
		delete(f.handlers, k)
		return
	}
	f.handlers[k] = fn
}

// SerializationTime returns the wire occupancy for a packet of n bytes.
func (f *Fabric) SerializationTime(n int) sim.Duration {
	return sim.PerByte(int64(n), sim.Bandwidth(f.cfg.BandwidthMbps)) + f.cfg.PerPacketWire
}

// Send transmits pkt, blocking p for the source-side wire occupancy
// (media acquisition on a shared fabric, link serialization on both).
// Delivery to the destination handler happens later in virtual time.
// Sending to self bypasses the wire entirely.
func (f *Fabric) Send(p *sim.Proc, pkt *Packet) {
	pkt.Sent = f.eng.Now()
	if pkt.Src == pkt.Dst {
		f.stats.SelfSends++
		if m := f.m; m != nil {
			m.selfSends.Inc()
		}
		f.deliverAt(f.eng.Now(), pkt)
		return
	}
	ser := f.SerializationTime(pkt.Bytes)
	if f.cfg.Shared {
		f.medium.Use(p, 1, ser)
		f.arrive(f.eng.Now()+f.cfg.Latency, pkt)
		return
	}
	f.txLinks[pkt.Src].Use(p, 1, ser)
	// Cut-through: the head of the packet reached the destination link
	// latency after it left; the tail arrives one serialization later.
	// Output-link contention delays us behind earlier arrivals.
	headAtRx := f.eng.Now() - ser + f.cfg.Latency
	outStart := headAtRx
	if f.rxFree[pkt.Dst] > outStart {
		outStart = f.rxFree[pkt.Dst]
	}
	done := outStart + ser
	f.rxFree[pkt.Dst] = done
	f.arrive(done, pkt)
}

// Partition splits the fabric into groups of nodes: nodes listed in
// sets[i] join group i+1, unlisted nodes stay in group 0, and packets
// crossing a group boundary are dropped (counted in Stats.Drops,
// Stats.InjectedDrops and the net.drops/net.drops.injected counters).
// Self-sends bypass the wire and are never partitioned. A new call
// replaces the previous partition; Heal removes it.
func (f *Fabric) Partition(sets ...[]NodeID) {
	f.group = make([]int, f.cfg.Nodes)
	for i, set := range sets {
		for _, n := range set {
			if n >= 0 && int(n) < f.cfg.Nodes {
				f.group[n] = i + 1
			}
		}
	}
}

// Heal removes the current partition; all nodes can reach each other
// again (per-link faults set with SetLinkFault are unaffected).
func (f *Fabric) Heal() { f.group = nil }

// Partitioned reports whether a packet from a to b would be dropped by
// the current partition.
func (f *Fabric) Partitioned(a, b NodeID) bool {
	if f.group == nil || a == b {
		return false
	}
	if a < 0 || b < 0 || int(a) >= len(f.group) || int(b) >= len(f.group) {
		return false
	}
	return f.group[a] != f.group[b]
}

// SetLinkFault degrades the (undirected) link between a and b: packets
// between them are dropped with probability loss and delivered delay
// later than normal. A second call replaces the previous fault on that
// link; ClearLinkFault heals it.
func (f *Fabric) SetLinkFault(a, b NodeID, loss float64, delay sim.Duration) {
	k := mkLinkKey(a, b)
	if loss > 0 {
		if f.linkLoss == nil {
			f.linkLoss = make(map[linkKey]float64)
		}
		f.linkLoss[k] = loss
	} else if f.linkLoss != nil {
		delete(f.linkLoss, k)
	}
	if delay > 0 {
		if f.linkDelay == nil {
			f.linkDelay = make(map[linkKey]sim.Duration)
		}
		f.linkDelay[k] = delay
	} else if f.linkDelay != nil {
		delete(f.linkDelay, k)
	}
}

// ClearLinkFault removes injected loss and delay from the link between
// a and b.
func (f *Fabric) ClearLinkFault(a, b NodeID) {
	k := mkLinkKey(a, b)
	delete(f.linkLoss, k)
	delete(f.linkDelay, k)
}

// injectedDrop decides whether fault state swallows pkt: a partition
// boundary drops deterministically, a faulted link drops with its
// configured probability (drawn from the engine RNG, so seeded runs
// stay reproducible).
func (f *Fabric) injectedDrop(pkt *Packet) bool {
	if f.Partitioned(pkt.Src, pkt.Dst) {
		return true
	}
	if f.linkLoss != nil {
		if p, ok := f.linkLoss[mkLinkKey(pkt.Src, pkt.Dst)]; ok && f.eng.Rand().Float64() < p {
			return true
		}
	}
	return false
}

// injectedDelay reports the extra delivery latency injected on pkt's
// link (zero on a healthy link).
func (f *Fabric) injectedDelay(pkt *Packet) sim.Duration {
	if f.linkDelay == nil {
		return 0
	}
	return f.linkDelay[mkLinkKey(pkt.Src, pkt.Dst)]
}

// arrive finalises a transmission: accounting, loss injection, delivery.
func (f *Fabric) arrive(at sim.Time, pkt *Packet) {
	f.stats.Packets++
	f.stats.Bytes += int64(pkt.Bytes)
	if m := f.m; m != nil {
		m.packets.Inc()
		m.bytes.Add(int64(pkt.Bytes))
	}
	if f.injectedDrop(pkt) {
		f.stats.Drops++
		f.stats.InjectedDrops++
		if m := f.m; m != nil {
			m.drops.Inc()
			m.injDrops.Inc()
		}
		return
	}
	if f.cfg.LossProb > 0 && f.eng.Rand().Float64() < f.cfg.LossProb {
		f.stats.Drops++
		if m := f.m; m != nil {
			m.drops.Inc()
		}
		return
	}
	f.deliverAt(at+f.injectedDelay(pkt), pkt)
}

func (f *Fabric) deliverAt(at sim.Time, pkt *Packet) {
	f.eng.At(at, func() {
		if m := f.m; m != nil {
			m.latency.Observe(int64(f.eng.Now() - pkt.Sent))
		}
		if h := f.handlers[portKey{node: pkt.Dst, port: pkt.Port}]; h != nil {
			h(pkt)
		}
	})
}

// Stats returns a snapshot of fabric counters.
func (f *Fabric) Stats() Stats { return f.stats }

// MediumUtilization reports utilisation of the shared medium (0 for
// switched fabrics, where per-link utilisation is the relevant figure).
func (f *Fabric) MediumUtilization() float64 {
	if f.medium == nil {
		return 0
	}
	return f.medium.Utilization()
}
