package netsim

import (
	"testing"
	"testing/quick"

	"github.com/nowproject/now/internal/sim"
)

func newTestFabric(t *testing.T, e *sim.Engine, cfg Config) *Fabric {
	t.Helper()
	f, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	if _, err := New(e, Config{Nodes: 0, BandwidthMbps: 10}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(e, Config{Nodes: 2, BandwidthMbps: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(e, Config{Nodes: 2, BandwidthMbps: 10, LossProb: 1.5}); err == nil {
		t.Error("bad loss probability accepted")
	}
}

func TestSwitchedDeliveryTime(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := Config{Name: "sw", Nodes: 4, BandwidthMbps: 155, Latency: 20 * sim.Microsecond}
	f := newTestFabric(t, e, cfg)
	var arrived sim.Time
	f.SetDelivery(1, func(pkt *Packet) { arrived = e.Now() })
	e.Spawn("tx", func(p *sim.Proc) {
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 8192})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 8 KB at 155 Mb/s ≈ 423 µs serialization + 20 µs latency.
	want := f.SerializationTime(8192) + cfg.Latency
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
	if arrived < 430*sim.Microsecond || arrived > 460*sim.Microsecond {
		t.Fatalf("8KB over ATM took %v, expected ≈443µs", arrived)
	}
}

func TestSharedMediumSerialisesSenders(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFabric(t, e, Ethernet10(4))
	var arrivals []sim.Time
	f.SetDelivery(3, func(pkt *Packet) { arrivals = append(arrivals, e.Now()) })
	for src := 0; src < 2; src++ {
		src := NodeID(src)
		e.Spawn("tx", func(p *sim.Proc) {
			f.Send(p, &Packet{Src: src, Dst: 3, Bytes: 8192})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	ser := f.SerializationTime(8192)
	// Second sender had to wait for the medium: arrivals one full
	// serialization apart.
	if gap := arrivals[1] - arrivals[0]; gap != ser {
		t.Fatalf("gap = %v, want %v", gap, ser)
	}
}

func TestSwitchedFabricScalesWithSenders(t *testing.T) {
	// The paper's core hardware claim: switched LANs let bandwidth scale
	// with the number of processors. N disjoint pairs finish in the time
	// of one transfer on a switched fabric, N transfers on a shared one.
	finishTime := func(cfg Config) sim.Time {
		e := sim.NewEngine(1)
		f, err := New(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var last sim.Time
		for i := 0; i < 4; i++ {
			f.SetDelivery(NodeID(i+4), func(pkt *Packet) {
				if e.Now() > last {
					last = e.Now()
				}
			})
			src := NodeID(i)
			dst := NodeID(i + 4)
			e.Spawn("tx", func(p *sim.Proc) {
				f.Send(p, &Packet{Src: src, Dst: dst, Bytes: 64 * 1024})
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	shared := finishTime(Config{Name: "sh", Nodes: 8, BandwidthMbps: 100, Latency: 10 * sim.Microsecond, Shared: true})
	switched := finishTime(Config{Name: "sw", Nodes: 8, BandwidthMbps: 100, Latency: 10 * sim.Microsecond})
	ratio := float64(shared) / float64(switched)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("shared/switched = %.2f, want ≈4 (4 disjoint pairs)", ratio)
	}
}

func TestReceiverLinkContentionQueuesIncast(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFabric(t, e, Config{Name: "sw", Nodes: 4, BandwidthMbps: 100, Latency: 10 * sim.Microsecond})
	var arrivals []sim.Time
	f.SetDelivery(3, func(pkt *Packet) { arrivals = append(arrivals, e.Now()) })
	for src := 0; src < 3; src++ {
		src := NodeID(src)
		e.Spawn("tx", func(p *sim.Proc) {
			f.Send(p, &Packet{Src: src, Dst: 3, Bytes: 10000})
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	ser := f.SerializationTime(10000)
	for i := 1; i < len(arrivals); i++ {
		if gap := arrivals[i] - arrivals[i-1]; gap < ser {
			t.Fatalf("incast arrivals %v closer than one serialization %v", arrivals, ser)
		}
	}
}

func TestSelfSendBypassesWire(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFabric(t, e, Ethernet10(2))
	var arrived sim.Time
	arrivedSet := false
	f.SetDelivery(0, func(pkt *Packet) { arrived, arrivedSet = e.Now(), true })
	e.Spawn("tx", func(p *sim.Proc) {
		p.Sleep(5 * sim.Microsecond)
		f.Send(p, &Packet{Src: 0, Dst: 0, Bytes: 1 << 20})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !arrivedSet || arrived != 5*sim.Microsecond {
		t.Fatalf("self-send arrived at %v (set=%v)", arrived, arrivedSet)
	}
	if f.Stats().SelfSends != 1 {
		t.Fatalf("stats = %+v", f.Stats())
	}
}

func TestLossInjectionDropsSome(t *testing.T) {
	e := sim.NewEngine(7)
	cfg := Config{Name: "lossy", Nodes: 2, BandwidthMbps: 100, Latency: sim.Microsecond, LossProb: 0.3}
	f := newTestFabric(t, e, cfg)
	delivered := 0
	f.SetDelivery(1, func(pkt *Packet) { delivered++ })
	e.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 100})
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Drops == 0 {
		t.Fatal("no drops with LossProb=0.3")
	}
	if delivered+int(st.Drops) != 1000 {
		t.Fatalf("delivered %d + drops %d != 1000", delivered, st.Drops)
	}
	frac := float64(st.Drops) / 1000
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("drop fraction = %v, want ≈0.3", frac)
	}
}

func TestStatsCountBytes(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFabric(t, e, ATM155(2))
	f.SetDelivery(1, func(pkt *Packet) {})
	e.Spawn("tx", func(p *sim.Proc) {
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 100})
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 200})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Offered != 2 || st.OfferedBytes != 300 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Delivered != 2 || st.DeliveredBytes != 300 {
		t.Fatalf("loss-free run must deliver everything offered: %+v", st)
	}
}

// TestPacketPoolRecycles: NewPacket/FreePacket reuse structs, literals
// are ignored, and a freed packet comes back zeroed.
func TestPacketPoolRecycles(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	f := newTestFabric(t, e, ATM155(2))
	p1 := f.NewPacket()
	p1.Src, p1.Dst, p1.Bytes, p1.Payload = 0, 1, 64, "x"
	f.FreePacket(p1)
	p2 := f.NewPacket()
	if p2 != p1 {
		t.Fatal("pool did not recycle the freed packet")
	}
	if p2.Bytes != 0 || p2.Payload != nil || p2.Src != 0 || p2.Dst != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", p2)
	}
	lit := &Packet{Src: 0, Dst: 1}
	f.FreePacket(lit) // must be a no-op
	if got := f.NewPacket(); got == lit {
		t.Fatal("literal packet entered the pool")
	}
	f.FreePacket(nil) // must not panic
}

func TestUnhandledDestinationDoesNotCrash(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFabric(t, e, ATM155(2))
	e.Spawn("tx", func(p *sim.Proc) {
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 64})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMediumUtilization(t *testing.T) {
	e := sim.NewEngine(1)
	f := newTestFabric(t, e, Ethernet10(2))
	f.SetDelivery(1, func(pkt *Packet) {})
	e.Spawn("tx", func(p *sim.Proc) {
		f.Send(p, &Packet{Src: 0, Dst: 1, Bytes: 8192})
		p.Sleep(f.SerializationTime(8192)) // idle as long as we were busy
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	u := f.MediumUtilization()
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %v, want ≈0.5", u)
	}
	// Switched fabric reports zero.
	e2 := sim.NewEngine(1)
	defer e2.Close()
	f2 := newTestFabric(t, e2, ATM155(2))
	if f2.MediumUtilization() != 0 {
		t.Fatal("switched fabric should report 0 medium utilization")
	}
}

func TestPresetShapes(t *testing.T) {
	if cfg := Ethernet10(8); !cfg.Shared || cfg.BandwidthMbps != 10 {
		t.Fatalf("Ethernet10 = %+v", cfg)
	}
	if cfg := ATM155(8); cfg.Shared || cfg.BandwidthMbps != 155 {
		t.Fatalf("ATM155 = %+v", cfg)
	}
	if cfg := FDDI100(8); !cfg.Shared {
		t.Fatalf("FDDI100 = %+v", cfg)
	}
	if cfg := Myrinet(8); cfg.Shared || cfg.BandwidthMbps < 600 {
		t.Fatalf("Myrinet = %+v", cfg)
	}
	if cfg := MPPNetwork(8); cfg.Latency != 4*sim.Microsecond {
		t.Fatalf("MPPNetwork = %+v", cfg)
	}
}

// Property: delivery time is monotone non-decreasing in packet size and
// never earlier than send time + latency.
func TestDeliveryTimeMonotoneProperty(t *testing.T) {
	f := func(sz uint16) bool {
		size := int(sz)%60000 + 1
		e := sim.NewEngine(1)
		fab, err := New(e, ATM155(2))
		if err != nil {
			return false
		}
		var arrived sim.Time
		fab.SetDelivery(1, func(pkt *Packet) { arrived = e.Now() })
		e.Spawn("tx", func(p *sim.Proc) {
			fab.Send(p, &Packet{Src: 0, Dst: 1, Bytes: size})
		})
		if err := e.Run(); err != nil {
			return false
		}
		minTime := ATM155(2).Latency
		return arrived >= minTime && arrived == fab.SerializationTime(size)+ATM155(2).Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
