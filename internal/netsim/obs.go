package netsim

import "github.com/nowproject/now/internal/obs"

// fabricMetrics holds the fabric's collector handles; nil on an
// unobserved fabric, so the send/accept paths pay a single branch.
type fabricMetrics struct {
	offered        *obs.Counter   // net.offered
	offeredBytes   *obs.Counter   // net.offered.bytes
	delivered      *obs.Counter   // net.delivered
	deliveredBytes *obs.Counter   // net.delivered.bytes
	drops          *obs.Counter   // net.drops
	injDrops       *obs.Counter   // net.drops.injected
	selfSends      *obs.Counter   // net.sends.self
	crossSent      *obs.Counter   // net.cross.sent
	crossRecv      *obs.Counter   // net.cross.recv
	latency        *obs.Histogram // net.am.latency.ns
	topoHops       *obs.Histogram // net.topo.hops (topology fabrics only)
	topoQueue      *obs.Histogram // net.topo.queue.ns (topology fabrics only)
}

// Instrument attaches metrics collectors to the fabric. Call once per
// registry (metric names are fixed, so a second fabric on the same
// registry would collide). A nil registry is a no-op.
//
// Fabric metrics (names per docs/OBSERVABILITY.md):
//
//	net.offered              packets that finished transmission (offered load)
//	net.offered.bytes        wire bytes offered (headers included)
//	net.delivered            packets handed to a delivery handler
//	net.delivered.bytes      wire bytes delivered (headers included)
//	net.drops                packets lost (background loss + injected faults);
//	                         net.offered - net.delivered == net.drops
//	net.drops.injected       subset of net.drops caused by injected
//	                         partitions and link faults (internal/faults)
//	net.sends.self           sends where src == dst (wire bypassed; counted
//	                         in neither offered nor delivered)
//	net.cross.sent           packets handed to another partition (registered
//	                         on sharded fabrics only; counted at the source)
//	net.cross.recv           packets injected from another partition
//	                         (sharded fabrics only)
//	net.topo.hops            switch traversals per delivered packet
//	                         (topology fabrics only; crossbar-equivalent
//	                         final hop included, so the flat fabric's 1)
//	net.topo.queue.ns        internal-link + rx queueing delay beyond the
//	                         uncontended cut-through time (topology
//	                         fabrics only)
//	net.am.latency.ns        send-to-delivery latency histogram
//	net.medium.util.ppm      shared-medium utilization, ppm (sampled)
//	net.links.tx.util.ppm.mean  mean tx-link utilization, ppm (sampled;
//	                         over locally owned links on a sharded fabric)
//	net.links.tx.util.ppm.max   max tx-link utilization, ppm (sampled)
func (f *Fabric) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	f.m = &fabricMetrics{
		offered:        r.Counter("net.offered"),
		offeredBytes:   r.Counter("net.offered.bytes"),
		delivered:      r.Counter("net.delivered"),
		deliveredBytes: r.Counter("net.delivered.bytes"),
		drops:          r.Counter("net.drops"),
		injDrops:       r.Counter("net.drops.injected"),
		selfSends:      r.Counter("net.sends.self"),
		latency:        r.Histogram("net.am.latency.ns", obs.DurationBuckets),
	}
	if f.cross != nil {
		// Partition fabrics only: a plain fabric's export must not grow
		// rows it can never increment (classic-run goldens stay stable).
		f.m.crossSent = r.Counter("net.cross.sent")
		f.m.crossRecv = r.Counter("net.cross.recv")
	}
	if f.topo != nil {
		// Topology fabrics only, for the same golden-stability reason:
		// the flat crossbar's export is unchanged by the topology seam.
		f.m.topoHops = r.Histogram("net.topo.hops", obs.DepthBuckets)
		f.m.topoQueue = r.Histogram("net.topo.queue.ns", obs.DurationBuckets)
	}
	if f.medium != nil {
		util := r.Gauge("net.medium.util.ppm")
		r.OnSample(func() { util.Set(obs.Ratio(f.medium.Utilization())) })
	}
	if len(f.txLinks) > 0 {
		mean := r.Gauge("net.links.tx.util.ppm.mean")
		max := r.Gauge("net.links.tx.util.ppm.max")
		r.OnSample(func() {
			var sum, top, n int64
			for _, l := range f.txLinks {
				if l == nil {
					// Sharded fabric: this partition does not own the node.
					continue
				}
				u := obs.Ratio(l.Utilization())
				sum += u
				if u > top {
					top = u
				}
				n++
			}
			if n > 0 {
				mean.Set(sum / n)
			}
			max.Set(top)
		})
	}
}
