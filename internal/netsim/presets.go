package netsim

import "github.com/nowproject/now/internal/sim"

// Presets for the network technologies the paper evaluates. The numbers
// are the paper's own coefficients wherever it states them; see
// EXPERIMENTS.md for the calibration notes.

// Ethernet10 is the 1994 departmental LAN: a single shared 10 Mb/s
// segment. Latency is propagation only — negligible next to the
// millisecond-scale serialization of data blocks.
func Ethernet10(nodes int) Config {
	return Config{
		Name:          "ethernet",
		Nodes:         nodes,
		BandwidthMbps: 10,
		Latency:       50 * sim.Microsecond,
		Shared:        true,
	}
}

// ATM155 is a switched 155 Mb/s ATM LAN. The paper: "network latency
// component varies for different switches from about 10 to 100 µs"; we
// take the midpoint of a well-configured switch.
func ATM155(nodes int) Config {
	return Config{
		Name:          "atm",
		Nodes:         nodes,
		BandwidthMbps: 155,
		Latency:       20 * sim.Microsecond,
		// One 53-byte cell carries 48 payload bytes; fold the 5-byte
		// header tax into a small fixed per-packet cost plus the ~10%
		// rate derating already implied by BandwidthMbps being the line
		// rate. A single serialization delay of one ATM cell ≈ 2.7 µs.
		PerPacketWire: 3 * sim.Microsecond,
	}
}

// FDDI100 is the 100 Mb/s FDDI ring of the HP Medusa prototype. The ring
// is a shared medium; token rotation shows up as latency.
func FDDI100(nodes int) Config {
	return Config{
		Name:          "fddi",
		Nodes:         nodes,
		BandwidthMbps: 100,
		Latency:       8 * sim.Microsecond, // paper: "network and adapter latency adds 8 µs"
		Shared:        true,
	}
}

// Myrinet is the retargeted-MPP-network candidate for the final NOW
// demonstration system: switched, 640 Mb/s class, sub-microsecond
// per-hop routing; we charge a conservative single-switch traversal.
func Myrinet(nodes int) Config {
	return Config{
		Name:          "myrinet",
		Nodes:         nodes,
		BandwidthMbps: 640,
		Latency:       5 * sim.Microsecond,
	}
}

// MPPNetwork models the CM-5 class dedicated interconnect: the paper
// cites network latency under 4 µs across 1,024 processors.
func MPPNetwork(nodes int) Config {
	return Config{
		Name:          "mpp",
		Nodes:         nodes,
		BandwidthMbps: 160,
		Latency:       4 * sim.Microsecond,
	}
}
