// Sharded fabrics: one switched Fabric per topology partition, each
// bound to one partition engine of a sim.ShardedEngine, with
// cross-partition packets handed off through the sharded driver's
// deterministic mailboxes.
//
// The cost model is split at the wire: the SOURCE partition charges
// everything that happens on the sender's side of the switch — transmit
// link occupancy, the accept decision (partition faults, injected and
// background loss, offered/delivered accounting) and all of its RNG
// draws — so those stay in the source engine's deterministic event
// stream. The DESTINATION partition charges receiver-link contention:
// the handed-off packet carries its head-arrival time and serialization,
// and the destination folds it into its local rx-busy horizon exactly
// like a local packet. The handoff latency is the fabric's wire latency
// L, which is also the sharded engine's conservative lookahead window —
// a packet sent at t is injected at t+L at the earliest, so the window
// invariant "messages sent in window k arrive after window k" holds by
// construction.
//
// The packet is VALUE-copied at the handoff. The sender may retain and
// even rewrite its *Packet (the AM layer stamps retransmissions into the
// same request packet), so sharing the pointer across engines would be a
// data race; the destination materialises the copy from its own pool.
package netsim

import (
	"errors"
	"fmt"

	"github.com/nowproject/now/internal/sim"
)

// ErrUnsupportedSharding is the sentinel wrapped by every "this
// configuration cannot run under a ShardedEngine" rejection — shared
// media and topology-bearing fabrics here, zero-lookahead WANs in
// internal/federation. Callers branch with errors.Is to fall back to a
// single-engine run instead of string-matching the message.
var ErrUnsupportedSharding = errors.New("unsupported sharding")

// PartitionMap assigns every node to one partition. It is part of the
// workload's deterministic identity: the same map must be used at every
// worker count.
type PartitionMap struct {
	part  []int
	parts int
}

// SplitEven partitions nodes into parts contiguous blocks (block i gets
// the nodes [i*nodes/parts, (i+1)*nodes/parts)).
func SplitEven(nodes, parts int) PartitionMap {
	if parts <= 0 {
		parts = 1
	}
	if parts > nodes {
		parts = nodes
	}
	pm := PartitionMap{part: make([]int, nodes), parts: parts}
	for i := 0; i < nodes; i++ {
		pm.part[i] = i * parts / nodes
	}
	return pm
}

// Parts returns the number of partitions.
func (pm PartitionMap) Parts() int { return pm.parts }

// NumNodes returns the number of mapped nodes.
func (pm PartitionMap) NumNodes() int { return len(pm.part) }

// Part returns the partition owning node n.
func (pm PartitionMap) Part(n NodeID) int { return pm.part[n] }

// Local reports whether node n belongs to partition p.
func (pm PartitionMap) Local(n NodeID, p int) bool { return pm.part[n] == p }

// CrossPacket is the handoff record for one cross-partition packet.
type CrossPacket struct {
	HeadAtRx sim.Time     // when the packet's head reaches the rx link (uncontended)
	Ser      sim.Duration // serialization time (tail follows head by this)
	Delay    sim.Duration // injected link delay, applied after rx contention
	Pkt      Packet       // by value: the source keeps its own copy
}

// crossLink is the per-partition-fabric hook into the sharded driver.
type crossLink struct {
	se   *sim.ShardedEngine
	pm   PartitionMap
	part int
}

// ShardedFabric is a switched fabric cut into per-partition Fabrics.
// Register deliveries and send on the partition fabrics (Part); the
// cross-partition path is transparent to protocol layers.
type ShardedFabric struct {
	se    *sim.ShardedEngine
	pm    PartitionMap
	parts []*Fabric
}

// NewSharded builds one Fabric per partition of pm on the matching
// partition engines of se. Only switched fabrics shard — a shared medium
// is a single global resource with zero lookahead, the exact thing the
// paper's switched fabrics exist to replace — and the wire latency must
// be at least the engine's lookahead window or the handoff could miss
// its delivery window.
func NewSharded(se *sim.ShardedEngine, cfg Config, pm PartitionMap) (*ShardedFabric, error) {
	if cfg.Shared {
		return nil, fmt.Errorf("netsim: shared-medium fabric %q: %w", cfg.Name, ErrUnsupportedSharding)
	}
	if cfg.Topo != nil {
		// Internal links would be shared mutable state across partition
		// engines; routing them through the handoff protocol is future
		// work (DESIGN.md §13). Topology studies run single-engine.
		return nil, fmt.Errorf("netsim: topology %s: %w", cfg.Topo.Name(), ErrUnsupportedSharding)
	}
	if pm.NumNodes() != cfg.Nodes {
		return nil, fmt.Errorf("netsim: partition map covers %d nodes, fabric has %d", pm.NumNodes(), cfg.Nodes)
	}
	if pm.Parts() != se.Parts() {
		return nil, fmt.Errorf("netsim: partition map has %d parts, engine has %d", pm.Parts(), se.Parts())
	}
	if cfg.Latency < se.Window() {
		return nil, fmt.Errorf("netsim: latency %v below lookahead window %v", cfg.Latency, se.Window())
	}
	sf := &ShardedFabric{se: se, pm: pm, parts: make([]*Fabric, pm.Parts())}
	for p := range sf.parts {
		f, err := newPart(se, cfg, pm, p)
		if err != nil {
			return nil, err
		}
		sf.parts[p] = f
		se.OnDeliver(p, f.injectCross)
	}
	return sf, nil
}

// newPart builds partition p's fabric slice: full-size node-indexed
// tables, but tx links exist only for local nodes (a remote node never
// transmits here) and the rx horizon is only ever consulted for local
// destinations.
func newPart(se *sim.ShardedEngine, cfg Config, pm PartitionMap, p int) (*Fabric, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("netsim: %d nodes", cfg.Nodes)
	}
	if cfg.BandwidthMbps <= 0 {
		return nil, fmt.Errorf("netsim: bandwidth %v Mb/s", cfg.BandwidthMbps)
	}
	if cfg.LossProb < 0 || cfg.LossProb >= 1 {
		return nil, fmt.Errorf("netsim: loss probability %v", cfg.LossProb)
	}
	e := se.Engine(p)
	f := &Fabric{
		eng:   e,
		cfg:   cfg,
		ports: make([][]Delivery, cfg.Nodes),
		cross: &crossLink{se: se, pm: pm, part: p},
	}
	f.deliverFn = f.deliverPacket
	f.txLinks = make([]*sim.Resource, cfg.Nodes)
	for i := range f.txLinks {
		if pm.Local(NodeID(i), p) {
			f.txLinks[i] = sim.NewResource(e, fmt.Sprintf("%s/p%d/tx%d", cfg.Name, p, i), 1)
		}
	}
	f.rxFree = make([]sim.Time, cfg.Nodes)
	return f, nil
}

// Part returns partition p's fabric. Protocol layers for nodes in p bind
// to it exactly as they would to an unsharded fabric.
func (sf *ShardedFabric) Part(p int) *Fabric { return sf.parts[p] }

// Map returns the partition map.
func (sf *ShardedFabric) Map() PartitionMap { return sf.pm }

// Nodes returns the total node count across partitions.
func (sf *ShardedFabric) Nodes() int { return sf.pm.NumNodes() }

// Stats sums the per-partition fabric counters. Call only while the
// sharded engine is quiescent (before Run or after it returns).
func (sf *ShardedFabric) Stats() Stats {
	var t Stats
	for _, f := range sf.parts {
		s := f.Stats()
		t.Offered += s.Offered
		t.OfferedBytes += s.OfferedBytes
		t.Delivered += s.Delivered
		t.DeliveredBytes += s.DeliveredBytes
		t.Drops += s.Drops
		t.SelfSends += s.SelfSends
		t.InjectedDrops += s.InjectedDrops
		t.CrossSent += s.CrossSent
		t.CrossRecv += s.CrossRecv
	}
	return t
}

// sendCross finishes a transmission whose destination lives on another
// partition: the source side (tx link, accept, accounting, RNG) has
// already run; hand the survivor to the owner of the destination node.
// Called with the source engine mid-event, so se.Send's lookahead check
// sees the true send time.
func (f *Fabric) sendCross(pkt *Packet, ser sim.Duration) {
	c := f.cross
	now := f.eng.Now()
	cp := &CrossPacket{
		HeadAtRx: now - ser + f.cfg.Latency,
		Ser:      ser,
		Delay:    f.injectedDelay(pkt),
		Pkt:      *pkt,
	}
	f.stats.CrossSent++
	if m := f.m; m != nil {
		m.crossSent.Inc()
	}
	// Ordering key: nominal uncontended arrival. Receiver contention is
	// resolved deterministically on the destination side.
	c.se.Send(c.part, c.pm.Part(pkt.Dst), cp.HeadAtRx+ser+cp.Delay, cp)
	// The source's packet ownership ends here; the destination builds
	// its own copy. Pooled packets go back to the source pool.
	f.FreePacket(pkt)
}

// injectCross materialises a handed-off packet on the destination
// partition: reserve the local rx link from the carried head-arrival
// time and schedule delivery. Runs as the sharded engine's OnDeliver
// callback — destination engine quiescent, messages already in
// (At, Src, Seq) order.
func (f *Fabric) injectCross(m sim.ShardMsg) {
	cp := m.Data.(*CrossPacket)
	pkt := f.NewPacket()
	pooled := pkt.pooled
	*pkt = cp.Pkt
	pkt.pooled = pooled
	f.stats.CrossRecv++
	if mm := f.m; mm != nil {
		mm.crossRecv.Inc()
	}
	outStart := cp.HeadAtRx
	if f.rxFree[pkt.Dst] > outStart {
		outStart = f.rxFree[pkt.Dst]
	}
	done := outStart + cp.Ser + cp.Delay
	f.rxFree[pkt.Dst] = done
	f.deliverAt(done, pkt)
}
