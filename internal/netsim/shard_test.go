package netsim_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// runShardedAM drives AM request/reply traffic (with its retry timers,
// ack machinery and pooled packets) across a sharded Myrinet and returns
// per-node completion times plus the summed fabric stats. Roughly half
// the destinations land on a remote partition, so the cross-shard
// handoff, the rx-horizon reservation on the destination side, and the
// packet value-copy all sit on the hot path.
func runShardedAM(t *testing.T, nodes, parts, workers, rounds int, seed int64) ([]sim.Time, netsim.Stats) {
	t.Helper()
	fcfg := netsim.Myrinet(nodes)
	se := sim.NewShardedEngine(sim.ShardedConfig{
		Parts: parts, Workers: workers, Seed: seed, Window: fcfg.Latency,
	})
	defer se.Close()
	pm := netsim.SplitEven(nodes, parts)
	sf, err := netsim.NewSharded(se, fcfg, pm)
	if err != nil {
		t.Fatal(err)
	}
	acfg := am.Config{HeaderBytes: 8, Window: 4}
	eps := make([]*am.Endpoint, nodes)
	for i := 0; i < nodes; i++ {
		p := pm.Part(netsim.NodeID(i))
		e := se.Engine(p)
		eps[i] = am.NewEndpoint(e, node.New(e, node.DefaultConfig(netsim.NodeID(i))), sf.Part(p), acfg)
		eps[i].Register(0x10, func(p *sim.Proc, m am.Msg) (any, int) {
			return m.Arg, 16
		})
	}
	done := make([]sim.Time, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		p := pm.Part(netsim.NodeID(i))
		e := se.Engine(p)
		e.Spawn(fmt.Sprintf("rank-%d", i), func(pr *sim.Proc) {
			for r := 0; r < rounds; r++ {
				// Alternate near (mostly intra-partition) and far
				// (mostly cross-partition) destinations.
				var dst int
				if r%2 == 0 {
					dst = (i + 1) % nodes
				} else {
					dst = (i + nodes/2 + r) % nodes
				}
				pr.Sleep(sim.Duration(e.Rand().Intn(3)) * sim.Microsecond)
				if _, err := eps[i].Call(pr, netsim.NodeID(dst), 0x10, r, 256); err != nil {
					pr.Fail(fmt.Errorf("rank %d round %d: %w", i, r, err))
				}
			}
			done[i] = pr.Now()
		})
	}
	errc := make(chan error, 1)
	go func() { errc <- se.Run(sim.MaxTime) }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("sharded AM run deadlocked")
	}
	return done, sf.Stats()
}

// TestShardedFabricAMDeterminism: full protocol traffic over the sharded
// fabric must complete identically at every worker count, with every
// cross-partition packet accounted for and nothing dropped.
func TestShardedFabricAMDeterminism(t *testing.T) {
	const nodes, parts, rounds = 32, 4, 5
	baseDone, baseStats := runShardedAM(t, nodes, parts, 1, rounds, 11)
	if baseStats.CrossSent == 0 {
		t.Fatal("workload produced no cross-partition traffic")
	}
	if baseStats.CrossSent != baseStats.CrossRecv {
		t.Fatalf("cross-partition packets lost in handoff: sent=%d recv=%d",
			baseStats.CrossSent, baseStats.CrossRecv)
	}
	if baseStats.Drops != 0 {
		t.Fatalf("healthy fabric dropped %d packets", baseStats.Drops)
	}
	if baseStats.Offered != baseStats.Delivered {
		t.Fatalf("offered %d != delivered %d on a lossless fabric", baseStats.Offered, baseStats.Delivered)
	}
	for _, workers := range []int{2, 4} {
		doneW, statsW := runShardedAM(t, nodes, parts, workers, rounds, 11)
		if !reflect.DeepEqual(doneW, baseDone) {
			t.Errorf("workers=%d: per-rank completion times diverge from workers=1", workers)
		}
		if statsW != baseStats {
			t.Errorf("workers=%d: fabric stats diverge:\n  %+v\n  %+v", workers, statsW, baseStats)
		}
	}
}

// TestShardedFabricGuards pins the construction-time invariants.
func TestShardedFabricGuards(t *testing.T) {
	se := sim.NewShardedEngine(sim.ShardedConfig{Parts: 2, Seed: 1, Window: 5 * sim.Microsecond})
	defer se.Close()
	pm := netsim.SplitEven(8, 2)
	if _, err := netsim.NewSharded(se, netsim.Ethernet10(8), pm); err == nil {
		t.Error("sharding a shared-medium fabric should fail")
	}
	fast := netsim.Myrinet(8)
	fast.Latency = 1 * sim.Microsecond // below the 5µs lookahead window
	if _, err := netsim.NewSharded(se, fast, pm); err == nil {
		t.Error("latency below the lookahead window should fail")
	}
	if _, err := netsim.NewSharded(se, netsim.Myrinet(8), netsim.SplitEven(4, 2)); err == nil {
		t.Error("node-count mismatch should fail")
	}
	if _, err := netsim.NewSharded(se, netsim.Myrinet(8), netsim.SplitEven(8, 4)); err == nil {
		t.Error("partition-count mismatch should fail")
	}
}

// TestErrUnsupportedSharding pins the typed rejection: shared media and
// topology-bearing fabrics must wrap the sentinel so callers (the
// scenario runner, the federation) can branch on errors.Is instead of
// string-matching, while plain parameter mistakes must NOT carry it.
func TestErrUnsupportedSharding(t *testing.T) {
	se := sim.NewShardedEngine(sim.ShardedConfig{Parts: 2, Seed: 1, Window: 5 * sim.Microsecond})
	defer se.Close()
	pm := netsim.SplitEven(8, 2)
	_, err := netsim.NewSharded(se, netsim.Ethernet10(8), pm)
	if !errors.Is(err, netsim.ErrUnsupportedSharding) {
		t.Errorf("shared-medium rejection %v does not wrap ErrUnsupportedSharding", err)
	}
	topo := netsim.Myrinet(8)
	ft, err := netsim.NewFatTree(8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo.Topo = ft
	_, err = netsim.NewSharded(se, topo, pm)
	if !errors.Is(err, netsim.ErrUnsupportedSharding) {
		t.Errorf("topology rejection %v does not wrap ErrUnsupportedSharding", err)
	}
	_, err = netsim.NewSharded(se, netsim.Myrinet(8), netsim.SplitEven(4, 2))
	if errors.Is(err, netsim.ErrUnsupportedSharding) {
		t.Errorf("node-count mismatch %v should not wrap ErrUnsupportedSharding", err)
	}
}

// TestSplitEven pins the contiguous-block partition map.
func TestSplitEven(t *testing.T) {
	pm := netsim.SplitEven(10, 4)
	if pm.Parts() != 4 || pm.NumNodes() != 10 {
		t.Fatalf("got %d parts over %d nodes", pm.Parts(), pm.NumNodes())
	}
	prev := 0
	counts := make([]int, 4)
	for i := 0; i < 10; i++ {
		p := pm.Part(netsim.NodeID(i))
		if p < prev {
			t.Fatalf("partition map not contiguous at node %d", i)
		}
		prev = p
		counts[p]++
	}
	for p, c := range counts {
		if c < 2 || c > 3 {
			t.Errorf("partition %d has %d nodes; want 2 or 3", p, c)
		}
	}
	// More parts than nodes clamps.
	if got := netsim.SplitEven(2, 8).Parts(); got != 2 {
		t.Errorf("SplitEven(2, 8).Parts() = %d, want 2", got)
	}
}
