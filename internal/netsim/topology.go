// Topologies: the internal switch structure of a switched fabric.
//
// The default Fabric is a flat crossbar — one ideal switch, every pair
// of nodes one traversal apart, contention only at the destination
// link. That is the right first-order model for the paper's single-
// switch building block, but the Cluster Computing White Paper (and
// every fabric the NOW lineage actually deployed) routes through a
// *structured* interconnect: multi-stage fat-trees with configurable
// over-subscription, or low-dimension tori with dimension-order
// routing. A Topology plugs that structure into the Fabric's cut-
// through model:
//
//   - Route returns the deterministic sequence of internal directed
//     links a packet crosses between its source and destination NIC;
//   - each internal link is a busy-until horizon, exactly like the
//     destination receive link, so tree up-links and torus ring links
//     contend and queue;
//   - every traversal (each internal link, plus the final hop onto the
//     destination link) charges the fabric's per-hop Latency.
//
// With a nil Topology the walk is empty and the Fabric reduces —
// bit-for-bit, RNG draw for RNG draw — to the original crossbar.
//
// Topologies also expose the switch hierarchy itself (CombineTree) so
// the in-network collective plane (internal/proto/collective, SHARP-
// style switch combining) can combine and multicast at the same
// switches the data path routes through.
package netsim

import (
	"fmt"
	"math"
)

// Topology describes the internal switch structure of a switched
// fabric. Implementations must be deterministic: Route for a given
// (src, dst) always returns the same link sequence, because delivery
// order (and therefore every downstream event) derives from it.
type Topology interface {
	// Name labels the topology in diagnostics and reports.
	Name() string
	// NumLinks is the number of internal directed links; the Fabric
	// keeps one busy-until horizon per link.
	NumLinks() int
	// Route appends the internal directed link ids a packet from src to
	// dst traverses, in order. The source NIC's transmit link and the
	// final hop onto dst's receive link are NOT included — the Fabric
	// models those itself, exactly as it does for the crossbar.
	Route(src, dst NodeID, buf []int) []int
}

// CombineTree is the switch hierarchy a topology exposes for in-network
// combining and multicast: one entry per switch, rooted, with every
// host attached to exactly one switch. The flat crossbar is a single
// switch with every host attached.
type CombineTree struct {
	// Parent is each switch's parent switch, -1 at the root.
	Parent []int
	// SwitchOf is each node's ingress/egress switch.
	SwitchOf []int
}

// Depth returns the number of switch-to-switch edges from the deepest
// host-bearing switch to the root.
func (t CombineTree) Depth() int {
	depth := make([]int, len(t.Parent))
	var walk func(s int) int
	walk = func(s int) int {
		if t.Parent[s] < 0 {
			return 0
		}
		if depth[s] == 0 {
			depth[s] = walk(t.Parent[s]) + 1
		}
		return depth[s]
	}
	max := 0
	for _, s := range t.SwitchOf {
		if d := walk(s); d > max {
			max = d
		}
	}
	return max
}

// combiner is implemented by topologies that expose their switch
// hierarchy for in-network collectives.
type combiner interface {
	CombineTree() CombineTree
}

// CombineTreeOf returns the switch hierarchy of a topology, or the
// single-switch star of the flat crossbar when topo is nil (or does not
// expose one).
func CombineTreeOf(topo Topology, nodes int) CombineTree {
	if c, ok := topo.(combiner); ok && topo != nil {
		return c.CombineTree()
	}
	sw := make([]int, nodes)
	return CombineTree{Parent: []int{-1}, SwitchOf: sw}
}

// TopoByName builds a topology from its scenario/CLI name: "crossbar"
// (or "") returns nil — the flat default — "fattree" an 8-ary
// 1:1-provisioned fat-tree, "torus" a 2D torus.
func TopoByName(name string, nodes int) (Topology, error) {
	switch name {
	case "", "crossbar":
		return nil, nil
	case "fattree":
		return NewFatTree(nodes, 8, 1)
	case "torus":
		return NewTorus(nodes)
	}
	return nil, fmt.Errorf("netsim: unknown topology %q (want crossbar, fattree or torus)", name)
}

// fatTree is a k-ary multi-stage switch tree: leaf switches attach k
// hosts each and every group of k switches shares a parent, up to a
// single root. Each non-root switch has u parallel up-links to its
// parent (and u matching down-links), with u = max(1, k/oversub):
// oversub 1 is full bisection provisioning, oversub k the maximally
// thin tree. Up-links are picked per destination (ECMP-style static
// hashing), so distinct flows spread while one flow stays FIFO.
type fatTree struct {
	hosts   int
	k       int // switch arity: hosts per leaf, children per inner switch
	uplinks int // parallel links from each non-root switch to its parent
	oversub int

	parent   []int // per switch, -1 at the root
	upBase   []int // first up-link id (this switch → parent), -1 at the root
	downBase []int // first down-link id (parent → this switch), -1 at the root
	numLinks int
}

// NewFatTree builds a k-ary fat-tree over nodes hosts. oversub ≥ 1
// thins the up-links: each switch gets max(1, k/oversub) links toward
// its parent instead of k.
func NewFatTree(nodes, k, oversub int) (Topology, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("netsim: fat-tree over %d nodes", nodes)
	}
	if k < 2 {
		return nil, fmt.Errorf("netsim: fat-tree arity %d (want ≥ 2)", k)
	}
	if oversub < 1 {
		return nil, fmt.Errorf("netsim: fat-tree over-subscription %d (want ≥ 1)", oversub)
	}
	t := &fatTree{hosts: nodes, k: k, oversub: oversub, uplinks: k / oversub}
	if t.uplinks < 1 {
		t.uplinks = 1
	}
	// Build levels bottom-up: ceil(nodes/k) leaves, then every k
	// switches share a parent until one root remains. Switch ids are
	// assigned level by level, leaves first.
	leaves := (nodes + k - 1) / k
	level := make([]int, leaves)
	next := 0
	for i := range level {
		level[i] = next
		next++
	}
	t.parent = make([]int, 0, 2*leaves)
	for range level {
		t.parent = append(t.parent, -1)
	}
	for len(level) > 1 {
		up := make([]int, 0, (len(level)+k-1)/k)
		for i := 0; i < len(level); i += k {
			p := next
			next++
			t.parent = append(t.parent, -1)
			up = append(up, p)
			for j := i; j < i+k && j < len(level); j++ {
				t.parent[level[j]] = p
			}
		}
		level = up
	}
	t.upBase = make([]int, len(t.parent))
	t.downBase = make([]int, len(t.parent))
	for s := range t.parent {
		if t.parent[s] < 0 {
			t.upBase[s], t.downBase[s] = -1, -1
			continue
		}
		t.upBase[s] = t.numLinks
		t.numLinks += t.uplinks
		t.downBase[s] = t.numLinks
		t.numLinks += t.uplinks
	}
	return t, nil
}

func (t *fatTree) Name() string {
	return fmt.Sprintf("fattree(k=%d,over=%d)", t.k, t.oversub)
}

func (t *fatTree) NumLinks() int { return t.numLinks }

// leafOf returns the leaf switch host h attaches to.
func (t *fatTree) leafOf(h NodeID) int { return int(h) / t.k }

// Route climbs from the source leaf to the lowest common ancestor and
// descends to the destination leaf. All leaves sit at the same depth,
// so the climb is symmetric. Up-links hash on the destination and
// down-links on the source, spreading distinct flows while keeping any
// one (src, dst) pair on a fixed path.
func (t *fatTree) Route(src, dst NodeID, buf []int) []int {
	s, d := t.leafOf(src), t.leafOf(dst)
	if s == d {
		return buf
	}
	var downArr [16]int
	down := downArr[:0]
	for s != d {
		buf = append(buf, t.upBase[s]+int(dst)%t.uplinks)
		s = t.parent[s]
		down = append(down, t.downBase[d]+int(src)%t.uplinks)
		d = t.parent[d]
	}
	for i := len(down) - 1; i >= 0; i-- {
		buf = append(buf, down[i])
	}
	return buf
}

// CombineTree exposes the switch tree itself: in-network collectives
// combine at the same switches the data path routes through.
func (t *fatTree) CombineTree() CombineTree {
	sw := make([]int, t.hosts)
	for h := range sw {
		sw[h] = t.leafOf(NodeID(h))
	}
	return CombineTree{Parent: append([]int(nil), t.parent...), SwitchOf: sw}
}

// torus is a W×H 2D torus: one router per grid position, four directed
// links per router (+x, −x, +y, −y), dimension-order routing taking the
// shorter wrap direction in x first, then y (ties break toward the
// positive direction). Hosts attach one per router in row-major order;
// when nodes < W*H the spare routers still switch transit traffic.
type torus struct {
	hosts, w, h int
}

// NewTorus builds a near-square 2D torus over nodes hosts.
func NewTorus(nodes int) (Topology, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("netsim: torus over %d nodes", nodes)
	}
	w := int(math.Ceil(math.Sqrt(float64(nodes))))
	if w < 2 {
		w = 2
	}
	h := (nodes + w - 1) / w
	if h < 2 {
		h = 2
	}
	return &torus{hosts: nodes, w: w, h: h}, nil
}

func (t *torus) Name() string  { return fmt.Sprintf("torus(%dx%d)", t.w, t.h) }
func (t *torus) NumLinks() int { return 4 * t.w * t.h }

// Directed link directions out of a router.
const (
	torusXPos = 0
	torusXNeg = 1
	torusYPos = 2
	torusYNeg = 3
)

func (t *torus) link(x, y, dir int) int { return 4*(y*t.w+x) + dir }

// step returns the per-dimension step count and direction for the
// shorter wrap between from and to over size (ties positive).
func torusStep(from, to, size int) (steps, dir int) {
	fwd := ((to-from)%size + size) % size
	if fwd == 0 {
		return 0, 1
	}
	if 2*fwd <= size {
		return fwd, 1
	}
	return size - fwd, -1
}

// Route walks x first then y, appending the departing link of every
// router on the way; the last link lands at dst's router, and the
// Fabric's final hop carries the packet onto dst's receive link.
func (t *torus) Route(src, dst NodeID, buf []int) []int {
	x, y := int(src)%t.w, int(src)/t.w
	xd, yd := int(dst)%t.w, int(dst)/t.w
	steps, dir := torusStep(x, xd, t.w)
	for i := 0; i < steps; i++ {
		if dir > 0 {
			buf = append(buf, t.link(x, y, torusXPos))
			x = (x + 1) % t.w
		} else {
			buf = append(buf, t.link(x, y, torusXNeg))
			x = (x - 1 + t.w) % t.w
		}
	}
	steps, dir = torusStep(y, yd, t.h)
	for i := 0; i < steps; i++ {
		if dir > 0 {
			buf = append(buf, t.link(x, y, torusYPos))
			y = (y + 1) % t.h
		} else {
			buf = append(buf, t.link(x, y, torusYNeg))
			y = (y - 1 + t.h) % t.h
		}
	}
	return buf
}

// CombineTree embeds a spanning tree in the torus, rooted at node 0's
// router: each router's parent is its dimension-order next hop toward
// the root, so the combine path follows the same links a packet to
// node 0 would.
func (t *torus) CombineTree() CombineTree {
	parent := make([]int, t.w*t.h)
	for p := range parent {
		x, y := p%t.w, p/t.w
		if x == 0 && y == 0 {
			parent[p] = -1
			continue
		}
		if steps, dir := torusStep(x, 0, t.w); steps > 0 {
			parent[p] = y*t.w + ((x+dir)%t.w+t.w)%t.w
			continue
		}
		_, dir := torusStep(y, 0, t.h)
		parent[p] = (((y+dir)%t.h+t.h)%t.h)*t.w + x
	}
	sw := make([]int, t.hosts)
	for h := range sw {
		sw[h] = h // router p hosts node p, row-major
	}
	return CombineTree{Parent: parent, SwitchOf: sw}
}
