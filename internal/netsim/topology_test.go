package netsim

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// routeOf is a test helper: one route as a fresh slice.
func routeOf(t Topology, src, dst NodeID) []int {
	return t.Route(src, dst, nil)
}

// TestFatTreeRoutes pins the structural invariants of fat-tree routing:
// every link id in range, same-leaf pairs switch locally (no internal
// links), cross-leaf routes climb and descend symmetrically, and the
// route is deterministic.
func TestFatTreeRoutes(t *testing.T) {
	topo, err := NewFatTree(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ft := topo.(*fatTree)
	for src := NodeID(0); src < 64; src++ {
		for dst := NodeID(0); dst < 64; dst++ {
			r := routeOf(topo, src, dst)
			for _, li := range r {
				if li < 0 || li >= topo.NumLinks() {
					t.Fatalf("route %d→%d: link %d out of range [0,%d)", src, dst, li, topo.NumLinks())
				}
			}
			if ft.leafOf(src) == ft.leafOf(dst) {
				if len(r) != 0 {
					t.Fatalf("same-leaf route %d→%d has %d internal links", src, dst, len(r))
				}
			} else if len(r) == 0 || len(r)%2 != 0 {
				t.Fatalf("cross-leaf route %d→%d has %d links (want even > 0)", src, dst, len(r))
			}
			again := routeOf(topo, src, dst)
			for i := range r {
				if r[i] != again[i] {
					t.Fatalf("route %d→%d not deterministic", src, dst)
				}
			}
		}
	}
	// 64 hosts, arity 4: 16 leaves, 4 aggregates, 1 root = 21 switches;
	// 20 non-root switches × 4 up + 4 down links.
	if got, want := topo.NumLinks(), 20*8; got != want {
		t.Fatalf("NumLinks = %d, want %d", got, want)
	}
}

// TestFatTreeOversubscription pins that over-subscription thins the
// up-link pool: k/oversub parallel links instead of k.
func TestFatTreeOversubscription(t *testing.T) {
	full, _ := NewFatTree(64, 4, 1)
	thin, _ := NewFatTree(64, 4, 4)
	if full.NumLinks() <= thin.NumLinks() {
		t.Fatalf("oversub=4 fat-tree has %d links, full-bisection has %d", thin.NumLinks(), full.NumLinks())
	}
	if got, want := thin.NumLinks(), 20*2; got != want {
		t.Fatalf("thin NumLinks = %d, want %d", got, want)
	}
}

// TestTorusRoutes checks dimension-order routing: every route ends at
// the destination's router, takes the shorter wrap, and x moves before
// y.
func TestTorusRoutes(t *testing.T) {
	topo, err := NewTorus(16) // 4x4
	if err != nil {
		t.Fatal(err)
	}
	tr := topo.(*torus)
	if tr.w != 4 || tr.h != 4 {
		t.Fatalf("torus shape %dx%d, want 4x4", tr.w, tr.h)
	}
	for src := NodeID(0); src < 16; src++ {
		for dst := NodeID(0); dst < 16; dst++ {
			r := routeOf(topo, src, dst)
			// Replay the route and confirm it lands on dst's router.
			x, y := int(src)%4, int(src)/4
			for _, li := range r {
				if li < 0 || li >= topo.NumLinks() {
					t.Fatalf("route %d→%d: link %d out of range", src, dst, li)
				}
				pos, dir := li/4, li%4
				if pos != y*4+x {
					t.Fatalf("route %d→%d: link %d departs router %d, cursor at %d", src, dst, li, pos, y*4+x)
				}
				switch dir {
				case torusXPos:
					x = (x + 1) % 4
				case torusXNeg:
					x = (x + 3) % 4
				case torusYPos:
					y = (y + 1) % 4
				case torusYNeg:
					y = (y + 3) % 4
				}
			}
			if x != int(dst)%4 || y != int(dst)/4 {
				t.Fatalf("route %d→%d lands at (%d,%d)", src, dst, x, y)
			}
			// Shorter wrap: on a 4-ring no dimension needs more than 2 steps.
			if len(r) > 4 {
				t.Fatalf("route %d→%d has %d hops, want ≤ 4", src, dst, len(r))
			}
		}
	}
}

// TestCombineTrees pins the switch hierarchies the in-network
// collective plane builds on: crossbar = one switch, fat-tree = its own
// switch tree, torus = a DOR spanning tree rooted at node 0's router.
func TestCombineTrees(t *testing.T) {
	star := CombineTreeOf(nil, 8)
	if len(star.Parent) != 1 || star.Parent[0] != -1 || star.Depth() != 0 {
		t.Fatalf("crossbar combine tree = %+v", star)
	}
	ft, _ := NewFatTree(64, 4, 1)
	ftTree := CombineTreeOf(ft, 64)
	if got := ftTree.Depth(); got != 2 {
		t.Fatalf("fat-tree combine depth = %d, want 2 (leaf→agg→root)", got)
	}
	tor, _ := NewTorus(16)
	tt := CombineTreeOf(tor, 16)
	roots := 0
	for s, p := range tt.Parent {
		if p < 0 {
			roots++
			continue
		}
		// Every chain must terminate at the root without cycles.
		seen := 0
		for q := s; q >= 0; q = tt.Parent[q] {
			if seen++; seen > len(tt.Parent) {
				t.Fatalf("combine-tree cycle through switch %d", s)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("torus combine tree has %d roots", roots)
	}
	if got := tt.Depth(); got != 4 {
		t.Fatalf("4x4 torus combine depth = %d, want 4 (2 x-steps + 2 y-steps)", got)
	}
}

// TestTopologyLatencyAndContention runs real sends through a fat-tree
// fabric: a cross-leaf packet pays more hops than a same-leaf one, and
// two flows forced through one thin up-link queue behind each other.
func TestTopologyLatencyAndContention(t *testing.T) {
	deliverAtTime := func(topoName string, topo Topology, src, dst NodeID) sim.Duration {
		e := sim.NewEngine(1)
		defer e.Close()
		fab, err := New(e, Config{Name: topoName, Nodes: 16, BandwidthMbps: 640, Latency: 5 * sim.Microsecond, Topo: topo})
		if err != nil {
			t.Fatal(err)
		}
		var got sim.Time
		fab.SetDelivery(dst, func(pkt *Packet) { got = e.Now() })
		e.Spawn("tx", func(p *sim.Proc) {
			fab.Send(p, &Packet{Src: src, Dst: dst, Bytes: 256})
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.Duration(got)
	}
	ft, _ := NewFatTree(16, 4, 1)
	local := deliverAtTime("ft", ft, 0, 1)   // same leaf: 1 traversal
	remote := deliverAtTime("ft", ft, 0, 15) // leaf→root→leaf: 2 internal links
	flat := deliverAtTime("flat", nil, 0, 15)
	if local != flat {
		t.Fatalf("same-leaf fat-tree delivery %v != crossbar %v", local, flat)
	}
	if want := flat + 2*5*sim.Microsecond; remote != want {
		t.Fatalf("cross-tree delivery %v, want %v (2 extra 5µs traversals)", remote, want)
	}

	// Contention: with one up-link per leaf (oversub=k), two packets
	// from the same leaf to far leaves serialise on that up-link.
	thin, _ := NewFatTree(16, 4, 4)
	e := sim.NewEngine(1)
	defer e.Close()
	fab, err := New(e, Config{Name: "thin", Nodes: 16, BandwidthMbps: 640, Latency: 5 * sim.Microsecond, Topo: thin})
	if err != nil {
		t.Fatal(err)
	}
	var first, second sim.Time
	fab.SetDelivery(14, func(pkt *Packet) { first = e.Now() })
	fab.SetDelivery(15, func(pkt *Packet) { second = e.Now() })
	e.Spawn("tx0", func(p *sim.Proc) { fab.Send(p, &Packet{Src: 0, Dst: 14, Bytes: 4096}) })
	e.Spawn("tx1", func(p *sim.Proc) { fab.Send(p, &Packet{Src: 1, Dst: 15, Bytes: 4096}) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ser := fab.SerializationTime(4096)
	if second < first+ser {
		t.Fatalf("thin up-link did not serialise flows: first %v, second %v, ser %v", first, second, ser)
	}
}

// TestTopoByName pins the name → topology mapping the scenario DSL and
// CLIs use.
func TestTopoByName(t *testing.T) {
	for _, name := range []string{"", "crossbar"} {
		topo, err := TopoByName(name, 64)
		if err != nil || topo != nil {
			t.Fatalf("TopoByName(%q) = %v, %v; want nil, nil", name, topo, err)
		}
	}
	for _, name := range []string{"fattree", "torus"} {
		topo, err := TopoByName(name, 64)
		if err != nil || topo == nil {
			t.Fatalf("TopoByName(%q) = %v, %v", name, topo, err)
		}
	}
	if _, err := TopoByName("hypercube", 64); err == nil {
		t.Fatal("unknown topology name must error")
	}
}

// BenchmarkTorusRoute measures the per-packet routing cost on a
// 1,024-node torus — the topology walk every Send pays (bench.sh
// records it in BENCH_sim.json).
func BenchmarkTorusRoute(b *testing.B) {
	topo, err := NewTorus(1024)
	if err != nil {
		b.Fatal(err)
	}
	var buf [64]int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := NodeID(i & 1023)
		dst := NodeID((i * 37) & 1023)
		_ = topo.Route(src, dst, buf[:0])
	}
}
