package node

import (
	"github.com/nowproject/now/internal/sim"
)

// CPU is a round-robin timeslice scheduler, modelling the local Unix
// scheduler of one workstation. Simulated activities call Compute to
// burn CPU time; concurrent requests share the processor a quantum at a
// time, which is exactly the behaviour that destroys fine-grain parallel
// programs under "local scheduling" in the paper's Figure 4.
//
// A gang scheduler (glunix) steers the CPU by installing a class filter:
// only tasks whose class passes the filter are eligible to run. This is
// how coscheduling slots are enforced without a second scheduler
// implementation.
type CPU struct {
	eng        *sim.Engine
	name       string
	quantum    sim.Duration
	ctxSwitch  sim.Duration
	queue      []*cpuTask
	current    *cpuTask
	preempted  bool
	filter     func(class string) bool
	dispatcher *sim.Proc
	work       *sim.Signal
	sys        *sim.Resource // interrupt-context work, not timesliced

	busy       sim.Duration
	sysBusy    sim.Duration
	switches   int64
	totalTasks int64
}

type cpuTask struct {
	class     string
	remaining sim.Duration
	done      *sim.Signal
	finished  bool
}

func newCPU(e *sim.Engine, name string, cfg Config) *CPU {
	c := &CPU{
		eng:       e,
		name:      name,
		quantum:   cfg.Quantum,
		ctxSwitch: cfg.ContextSwitch,
		work:      sim.NewSignal(e, name+"/work"),
		sys:       sim.NewResource(e, name+"/sys", 1),
	}
	c.dispatcher = e.Spawn(name+"/sched", c.dispatch)
	return c
}

// Compute burns d of CPU time for an unclassified task, returning when
// the task has accumulated d of processor time under contention.
func (c *CPU) Compute(p *sim.Proc, d sim.Duration) {
	c.ComputeAs(p, "", d)
}

// ComputeAs is Compute with a scheduling class (typically a parallel
// job's identity) consulted by the installed filter.
func (c *CPU) ComputeAs(p *sim.Proc, class string, d sim.Duration) {
	if d <= 0 {
		return
	}
	t := &cpuTask{class: class, remaining: d, done: sim.NewSignal(c.eng, c.name+"/task")}
	c.queue = append(c.queue, t)
	c.totalTasks++
	c.work.Broadcast()
	for !t.finished {
		t.done.Wait(p)
	}
}

// ComputeSystem burns d of CPU in interrupt context: kernel or
// user-level protocol processing that preempts timesliced work rather
// than queueing behind a 100 ms quantum. Concurrent system work
// serialises FIFO on the node. (The cycles stolen from the running
// timeslice are not re-charged to it; system work in this model is
// microseconds against quanta of milliseconds.)
func (c *CPU) ComputeSystem(p *sim.Proc, d sim.Duration) {
	if d <= 0 {
		return
	}
	c.sys.Use(p, 1, d)
	c.sysBusy += d
}

// SetFilter installs (or clears, with nil) the eligibility filter. The
// dispatcher re-evaluates eligibility at the next slice boundary; the
// caller may also Kick to preempt immediately.
func (c *CPU) SetFilter(f func(class string) bool) {
	c.filter = f
	c.work.Broadcast()
}

// Kick wakes the dispatcher, e.g. after a filter change while the CPU
// idles on ineligible work.
func (c *CPU) Kick() { c.work.Broadcast() }

// eligible applies the filter. The empty class is the system class
// (daemons, protocol processing) and is always schedulable, like kernel
// threads under a user-level gang scheduler.
func (c *CPU) eligible(t *cpuTask) bool {
	return t.class == "" || c.filter == nil || c.filter(t.class)
}

// pick removes and returns the first eligible task, preserving queue
// order for the rest.
func (c *CPU) pick() *cpuTask {
	for i, t := range c.queue {
		if c.eligible(t) {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return t
		}
	}
	return nil
}

func (c *CPU) dispatch(p *sim.Proc) {
	for {
		t := c.pick()
		if t == nil {
			c.work.Wait(p)
			continue
		}
		// A context switch is charged only when the previous occupant was
		// preempted mid-task (timeslice rotation between competing
		// processes). Back-to-back short tasks on an otherwise idle CPU —
		// user-level protocol processing — pay nothing, as they would
		// with polling-based Active Messages.
		if c.preempted && c.current != t && c.ctxSwitch > 0 {
			p.Sleep(c.ctxSwitch)
			c.switches++
		}
		c.preempted = false
		c.current = t
		c.runTask(p, t)
		if t.remaining <= 0 {
			t.finished = true
			t.done.Broadcast()
		}
	}
}

// runTask executes t until it completes or is preempted (at which point
// it is requeued). An uncontended task runs in one interruptible
// stretch — the simulation equivalent of "nothing to timeslice against"
// — so long computations cost O(1) events instead of O(length/quantum).
// A newly arriving competitor interrupts the stretch, the running task
// receives one quantum of grace (the slice a real scheduler would let
// it finish), and rotation resumes.
func (c *CPU) runTask(p *sim.Proc, t *cpuTask) {
	for t.remaining > 0 {
		if len(c.queue) > 0 || c.filter != nil {
			// Contended (or gang-filtered): classic quantum slice.
			slice := c.quantum
			if t.remaining < slice {
				slice = t.remaining
			}
			p.Sleep(slice)
			c.busy += slice
			t.remaining -= slice
			if t.remaining > 0 {
				c.preempted = true
				c.queue = append(c.queue, t)
			}
			return
		}
		start := c.eng.Now()
		signaled := c.work.WaitTimeout(p, t.remaining)
		elapsed := c.eng.Now() - start
		c.busy += elapsed
		t.remaining -= elapsed
		if !signaled || t.remaining <= 0 {
			return // ran to completion undisturbed
		}
		// Competition arrived mid-stretch: grant one quantum of grace,
		// then rotate.
		grace := c.quantum
		if t.remaining < grace {
			grace = t.remaining
		}
		p.Sleep(grace)
		c.busy += grace
		t.remaining -= grace
		if t.remaining > 0 {
			c.preempted = true
			c.queue = append(c.queue, t)
		}
		return
	}
}

// RunnableLen returns the number of queued (not running) tasks.
func (c *CPU) RunnableLen() int { return len(c.queue) }

// BusyTime returns the total CPU time consumed by tasks, including
// interrupt-context (system) work.
func (c *CPU) BusyTime() sim.Duration { return c.busy + c.sysBusy }

// SystemTime returns CPU time consumed in interrupt context only.
func (c *CPU) SystemTime() sim.Duration { return c.sysBusy }

// ContextSwitches returns the number of involuntary slice rotations
// that changed tasks.
func (c *CPU) ContextSwitches() int64 { return c.switches }

// TasksRun returns how many timesliced tasks were ever submitted.
func (c *CPU) TasksRun() int64 { return c.totalTasks }

// Utilization reports busy time over elapsed virtual time.
func (c *CPU) Utilization() float64 {
	now := c.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(c.busy+c.sysBusy) / float64(now)
}
