package node

import (
	"github.com/nowproject/now/internal/sim"
)

// Disk models the workstation's single spindle: one request at a time,
// each paying an average positioning cost (seek + rotation) unless it is
// sequential with the previous request, plus media transfer time.
type Disk struct {
	eng *sim.Engine
	cfg DiskConfig
	arm *sim.Resource

	reads, writes int64
	bytesRead     int64
	bytesWritten  int64
	lastEnd       int64 // byte offset following the last access, for sequentiality
}

func newDisk(e *sim.Engine, name string, cfg DiskConfig) *Disk {
	return &Disk{eng: e, cfg: cfg, arm: sim.NewResource(e, name, 1), lastEnd: -1}
}

// Read performs a random read of n bytes at offset, blocking p for
// positioning plus transfer (and queueing behind other requests).
func (d *Disk) Read(p *sim.Proc, offset int64, n int) {
	d.access(p, offset, n, false)
	d.reads++
	d.bytesRead += int64(n)
}

// Write performs a write of n bytes at offset.
func (d *Disk) Write(p *sim.Proc, offset int64, n int) {
	d.access(p, offset, n, false)
	d.writes++
	d.bytesWritten += int64(n)
}

// ReadSeq reads n bytes continuing wherever the arm is, paying transfer
// only if the previous access ended here — the streaming path used by
// the software RAID and parallel file system.
func (d *Disk) ReadSeq(p *sim.Proc, offset int64, n int) {
	d.access(p, offset, n, true)
	d.reads++
	d.bytesRead += int64(n)
}

// WriteSeq is the sequential-write analogue of ReadSeq (log-structured
// segment writes in xFS).
func (d *Disk) WriteSeq(p *sim.Proc, offset int64, n int) {
	d.access(p, offset, n, true)
	d.writes++
	d.bytesWritten += int64(n)
}

func (d *Disk) access(p *sim.Proc, offset int64, n int, seqHint bool) {
	cost := sim.PerByte(int64(n), d.cfg.BandwidthMBps*1e6)
	if !seqHint || offset != d.lastEnd {
		cost += d.cfg.AvgAccess
	}
	d.arm.Use(p, 1, cost)
	d.lastEnd = offset + int64(n)
}

// AccessTime returns the un-queued service time for a random access of
// n bytes — the building block of the analytic experiments.
func (d *Disk) AccessTime(n int) sim.Duration {
	return d.cfg.AvgAccess + sim.PerByte(int64(n), d.cfg.BandwidthMBps*1e6)
}

// Stats returns (reads, writes, bytesRead, bytesWritten).
func (d *Disk) Stats() (reads, writes, bytesRead, bytesWritten int64) {
	return d.reads, d.writes, d.bytesRead, d.bytesWritten
}

// Utilization reports the fraction of time the arm was busy.
func (d *Disk) Utilization() float64 { return d.arm.Utilization() }

// Config returns the disk's parameters.
func (d *Disk) Config() DiskConfig { return d.cfg }
