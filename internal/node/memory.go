package node

import (
	"github.com/nowproject/now/internal/lru"
)

// PageID names a virtual page globally: the high bits identify an
// address space (process/file), the low bits the page index within it.
type PageID struct {
	Space uint32
	Index uint32
}

// Memory models DRAM as a fixed pool of page frames under LRU
// replacement, with per-page dirty bits. It is purely a bookkeeping
// structure — the *time* to service a fault is charged by whoever
// services it (disk, network RAM, file cache).
type Memory struct {
	pageSize int
	frames   *lru.Cache[PageID, bool] // value: dirty

	hits, misses int64
	reserved     int // frames removed from the pool (e.g. saved for an interactive user)
}

// NewMemory builds a memory of size bytes with the given page size.
func NewMemory(size int64, pageSize int) *Memory {
	if pageSize <= 0 {
		pageSize = 4096
	}
	frames := int(size / int64(pageSize))
	if frames <= 0 {
		frames = 1
	}
	return &Memory{pageSize: pageSize, frames: lru.New[PageID, bool](frames)}
}

// PageSize returns the page size in bytes.
func (m *Memory) PageSize() int { return m.pageSize }

// Frames returns the current frame-pool capacity.
func (m *Memory) Frames() int { return m.frames.Capacity() }

// Resident returns the number of occupied frames.
func (m *Memory) Resident() int { return m.frames.Len() }

// Touch references page, returning fault=true when it was not resident.
// On a fault the page becomes resident (write sets the dirty bit) and,
// if a frame had to be reclaimed, the victim is returned so the caller
// can write it back when dirty.
func (m *Memory) Touch(page PageID, write bool) (fault bool, victim PageID, victimDirty bool, evicted bool) {
	if dirty, ok := m.frames.Get(page); ok {
		m.hits++
		if write && !dirty {
			m.frames.Put(page, true)
		}
		return false, victim, false, false
	}
	m.misses++
	vk, vd, ev := m.frames.Put(page, write)
	return true, vk, vd, ev
}

// Resident reports whether page currently occupies a frame (without
// touching recency).
func (m *Memory) IsResident(page PageID) bool { return m.frames.Contains(page) }

// Evict removes page, reporting whether it was resident and dirty.
func (m *Memory) Evict(page PageID) (wasResident, wasDirty bool) {
	d, ok := m.frames.Remove(page)
	return ok, ok && d
}

// Resize changes the frame pool (e.g. GLUnix reserving memory for the
// interactive user), returning pages evicted oldest-first.
func (m *Memory) Resize(frames int) []PageID {
	return m.frames.Resize(frames)
}

// FlushAll removes every resident page, returning the dirty ones —
// used when saving an idle machine's memory image before recruitment.
func (m *Memory) FlushAll() (dirty []PageID, all []PageID) {
	keys := m.frames.Keys()
	for _, k := range keys {
		d, _ := m.frames.Remove(k)
		all = append(all, k)
		if d {
			dirty = append(dirty, k)
		}
	}
	return dirty, all
}

// HitRate returns hits/(hits+misses) since creation.
func (m *Memory) HitRate() float64 {
	total := m.hits + m.misses
	if total == 0 {
		return 0
	}
	return float64(m.hits) / float64(total)
}

// Counters returns raw (hits, misses).
func (m *Memory) Counters() (hits, misses int64) { return m.hits, m.misses }
