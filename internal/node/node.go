// Package node models a 1994-class workstation: a CPU with a
// round-robin timeslice scheduler, DRAM organised as LRU page frames,
// and a single disk with seek/rotate/transfer costs. A NOW is a
// collection of these plus a netsim fabric; everything above (protocol
// stacks, GLUnix, xFS) charges its time to these resources.
package node

import (
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/sim"
)

// Config describes one workstation.
type Config struct {
	// ID is the node's address on the fabric.
	ID netsim.NodeID
	// MFLOPS is sustained floating-point rate, used to convert work in
	// flop into CPU time (the paper's machine comparisons are stated in
	// Mflops per node).
	MFLOPS float64
	// MIPS is sustained integer rate for instruction-counted work (the
	// SFI experiments); defaults to MFLOPS*2 when zero.
	MIPS float64
	// Quantum is the local scheduler's round-robin timeslice.
	Quantum sim.Duration
	// ContextSwitch is charged at every involuntary slice rotation.
	ContextSwitch sim.Duration
	// MemoryBytes is DRAM size; PageSize divides it into frames.
	MemoryBytes int64
	PageSize    int
	// Disk parameters.
	Disk DiskConfig
}

// DiskConfig describes the node's disk.
type DiskConfig struct {
	// AvgAccess is seek plus rotational delay for a random access.
	AvgAccess sim.Duration
	// BandwidthMBps is the media transfer rate in megabytes per second.
	BandwidthMBps float64
}

// DefaultConfig returns a mid-1994 desktop workstation: 50 MFLOPS-class
// CPU, 100 ms Unix timeslice, 64 MB DRAM, 4 KB pages, and a disk with
// ~12 ms random access and 2 MB/s media rate (the paper's per-node disk
// figure). With these constants an 8 KB random read costs ≈14.8 ms —
// Table 2's disk term — because the file system pays seek plus rotation
// on the index and data halves of a cold miss.
func DefaultConfig(id netsim.NodeID) Config {
	return Config{
		ID:            id,
		MFLOPS:        50,
		MIPS:          100,
		Quantum:       100 * sim.Millisecond,
		ContextSwitch: 100 * sim.Microsecond,
		MemoryBytes:   64 << 20,
		PageSize:      4096,
		Disk: DiskConfig{
			AvgAccess:     12 * sim.Millisecond,
			BandwidthMBps: 2.9,
		},
	}
}

// Node is a simulated workstation.
type Node struct {
	cfg  Config
	eng  *sim.Engine
	CPU  *CPU
	Disk *Disk
	Mem  *Memory
}

// New builds a node on the engine. Invalid configs are normalised
// (non-positive rates get defaults) rather than rejected: a node is an
// internal building block and callers construct configs from presets.
func New(e *sim.Engine, cfg Config) *Node {
	if cfg.MFLOPS <= 0 {
		cfg.MFLOPS = 50
	}
	if cfg.MIPS <= 0 {
		cfg.MIPS = cfg.MFLOPS * 2
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 100 * sim.Millisecond
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.MemoryBytes <= 0 {
		cfg.MemoryBytes = 64 << 20
	}
	if cfg.Disk.AvgAccess <= 0 {
		cfg.Disk.AvgAccess = 12 * sim.Millisecond
	}
	if cfg.Disk.BandwidthMBps <= 0 {
		cfg.Disk.BandwidthMBps = 2.9
	}
	n := &Node{cfg: cfg, eng: e}
	n.CPU = newCPU(e, fmt.Sprintf("node%d/cpu", cfg.ID), cfg)
	n.Disk = newDisk(e, fmt.Sprintf("node%d/disk", cfg.ID), cfg.Disk)
	n.Mem = NewMemory(cfg.MemoryBytes, cfg.PageSize)
	return n
}

// ID returns the node's fabric address.
func (n *Node) ID() netsim.NodeID { return n.cfg.ID }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// FlopTime converts floating-point work into CPU time at this node's
// sustained rate.
func (n *Node) FlopTime(flop float64) sim.Duration {
	return sim.Time(flop / (n.cfg.MFLOPS * 1e6) * float64(sim.Second))
}

// InstrTime converts an instruction count into CPU time.
func (n *Node) InstrTime(instr float64) sim.Duration {
	return sim.Time(instr / (n.cfg.MIPS * 1e6) * float64(sim.Second))
}
