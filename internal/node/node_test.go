package node

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
)

func TestDefaultConfigDiskMatchesTable2(t *testing.T) {
	// Table 2's disk term: ≈14.8 ms for an 8 KB access.
	e := sim.NewEngine(1)
	defer e.Close()
	n := New(e, DefaultConfig(0))
	got := n.Disk.AccessTime(8192)
	if got < 14500*sim.Microsecond || got > 15100*sim.Microsecond {
		t.Fatalf("8KB disk access = %v, want ≈14.8ms", got)
	}
}

func TestFlopAndInstrTime(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	cfg := DefaultConfig(0)
	cfg.MFLOPS = 50
	cfg.MIPS = 100
	n := New(e, cfg)
	if got := n.FlopTime(50e6); got != sim.Second {
		t.Fatalf("50 Mflop at 50 MFLOPS = %v, want 1s", got)
	}
	if got := n.InstrTime(100e6); got != sim.Second {
		t.Fatalf("100M instr at 100 MIPS = %v, want 1s", got)
	}
}

func TestConfigNormalisation(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	n := New(e, Config{ID: 3})
	cfg := n.Config()
	if cfg.MFLOPS <= 0 || cfg.Quantum <= 0 || cfg.PageSize <= 0 || cfg.Disk.BandwidthMBps <= 0 {
		t.Fatalf("config not normalised: %+v", cfg)
	}
	if n.ID() != 3 {
		t.Fatalf("ID = %d", n.ID())
	}
}

func TestCPUSingleTask(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(0)
	cfg.ContextSwitch = 0
	n := New(e, cfg)
	var done sim.Time
	e.Spawn("task", func(p *sim.Proc) {
		n.CPU.Compute(p, 250*sim.Millisecond)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 250*sim.Millisecond {
		t.Fatalf("done at %v, want 250ms", done)
	}
}

func TestCPUTimeslicesFairly(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(0)
	cfg.Quantum = 10 * sim.Millisecond
	cfg.ContextSwitch = 0
	n := New(e, cfg)
	var aDone, bDone sim.Time
	e.Spawn("a", func(p *sim.Proc) {
		n.CPU.Compute(p, 50*sim.Millisecond)
		aDone = p.Now()
	})
	e.Spawn("b", func(p *sim.Proc) {
		n.CPU.Compute(p, 50*sim.Millisecond)
		bDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Interleaved 10ms slices: both finish near 100ms, a one slice early.
	if aDone != 90*sim.Millisecond || bDone != 100*sim.Millisecond {
		t.Fatalf("aDone=%v bDone=%v, want 90ms/100ms", aDone, bDone)
	}
}

func TestCPUContextSwitchCost(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(0)
	cfg.Quantum = 10 * sim.Millisecond
	cfg.ContextSwitch = 1 * sim.Millisecond
	n := New(e, cfg)
	var last sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn("t", func(p *sim.Proc) {
			n.CPU.Compute(p, 20*sim.Millisecond)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.CPU.ContextSwitches() == 0 {
		t.Fatal("no context switches recorded")
	}
	if last <= 40*sim.Millisecond {
		t.Fatalf("finished at %v despite switch cost", last)
	}
}

func TestCPUFilterBlocksClass(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(0)
	cfg.Quantum = 10 * sim.Millisecond
	cfg.ContextSwitch = 0
	n := New(e, cfg)
	n.CPU.SetFilter(func(class string) bool { return class == "jobA" })
	var aDone, bDone sim.Time
	e.Spawn("a", func(p *sim.Proc) {
		n.CPU.ComputeAs(p, "jobA", 30*sim.Millisecond)
		aDone = p.Now()
	})
	e.Spawn("b", func(p *sim.Proc) {
		n.CPU.ComputeAs(p, "jobB", 30*sim.Millisecond)
		bDone = p.Now()
	})
	e.Spawn("ctl", func(p *sim.Proc) {
		p.Sleep(100 * sim.Millisecond)
		n.CPU.SetFilter(nil) // release jobB
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if aDone != 30*sim.Millisecond {
		t.Fatalf("jobA done at %v, want 30ms (exclusive CPU)", aDone)
	}
	if bDone < 100*sim.Millisecond {
		t.Fatalf("jobB done at %v, should have waited for filter release", bDone)
	}
}

func TestCPUUtilizationAndBusy(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig(0)
	cfg.ContextSwitch = 0
	n := New(e, cfg)
	e.Spawn("t", func(p *sim.Proc) {
		n.CPU.Compute(p, 30*sim.Millisecond)
		p.Sleep(70 * sim.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.CPU.BusyTime() != 30*sim.Millisecond {
		t.Fatalf("busy = %v", n.CPU.BusyTime())
	}
	if u := n.CPU.Utilization(); u < 0.29 || u > 0.31 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestCPUZeroComputeReturnsImmediately(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, DefaultConfig(0))
	ran := false
	e.Spawn("t", func(p *sim.Proc) {
		n.CPU.Compute(p, 0)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("zero compute blocked")
	}
}

func TestDiskSequentialSkipsSeek(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, DefaultConfig(0))
	var t1, t2 sim.Duration
	e.Spawn("io", func(p *sim.Proc) {
		start := p.Now()
		n.Disk.Read(p, 0, 8192) // random: pays seek
		t1 = p.Now() - start
		start = p.Now()
		n.Disk.ReadSeq(p, 8192, 8192) // sequential continuation
		t2 = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if t2 >= t1 {
		t.Fatalf("sequential %v not faster than random %v", t2, t1)
	}
	if t2 > 4*sim.Millisecond {
		t.Fatalf("sequential 8KB = %v, want pure transfer ≈2.8ms", t2)
	}
}

func TestDiskNonContiguousSeqPaysSeek(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, DefaultConfig(0))
	var dur sim.Duration
	e.Spawn("io", func(p *sim.Proc) {
		n.Disk.Read(p, 0, 4096)
		start := p.Now()
		n.Disk.ReadSeq(p, 1<<30, 4096) // jumped: seek anyway
		dur = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if dur < 12*sim.Millisecond {
		t.Fatalf("non-contiguous seq read took %v, should pay positioning", dur)
	}
}

func TestDiskQueueing(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, DefaultConfig(0))
	var finish []sim.Time
	for i := 0; i < 2; i++ {
		e.Spawn("io", func(p *sim.Proc) {
			n.Disk.Read(p, 0, 8192)
			finish = append(finish, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	one := n.Disk.AccessTime(8192)
	if finish[0] != one || finish[1] != 2*one {
		t.Fatalf("finish = %v, want %v and %v", finish, one, 2*one)
	}
}

func TestDiskStats(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, DefaultConfig(0))
	e.Spawn("io", func(p *sim.Proc) {
		n.Disk.Read(p, 0, 100)
		n.Disk.Write(p, 200, 50)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	r, w, br, bw := n.Disk.Stats()
	if r != 1 || w != 1 || br != 100 || bw != 50 {
		t.Fatalf("stats = %d %d %d %d", r, w, br, bw)
	}
}

func TestMemoryTouchFaultsAndLRU(t *testing.T) {
	m := NewMemory(4*4096, 4096) // 4 frames
	for i := uint32(0); i < 4; i++ {
		fault, _, _, ev := m.Touch(PageID{Space: 1, Index: i}, false)
		if !fault || ev {
			t.Fatalf("initial touch %d: fault=%v ev=%v", i, fault, ev)
		}
	}
	// Re-touch page 0 (hit), then fault page 4: victim must be page 1.
	if fault, _, _, _ := m.Touch(PageID{1, 0}, false); fault {
		t.Fatal("resident page faulted")
	}
	fault, victim, _, ev := m.Touch(PageID{1, 4}, false)
	if !fault || !ev || victim != (PageID{1, 1}) {
		t.Fatalf("fault=%v ev=%v victim=%v", fault, ev, victim)
	}
}

func TestMemoryDirtyTracking(t *testing.T) {
	m := NewMemory(1*4096, 4096) // 1 frame
	m.Touch(PageID{1, 0}, true)  // dirty
	_, victim, victimDirty, ev := m.Touch(PageID{1, 1}, false)
	if !ev || victim != (PageID{1, 0}) || !victimDirty {
		t.Fatalf("victim=%v dirty=%v ev=%v", victim, victimDirty, ev)
	}
}

func TestMemoryWriteHitSetsDirty(t *testing.T) {
	m := NewMemory(2*4096, 4096)
	m.Touch(PageID{1, 0}, false) // clean
	m.Touch(PageID{1, 0}, true)  // write hit marks dirty
	m.Touch(PageID{1, 1}, false)
	_, victim, victimDirty, _ := m.Touch(PageID{1, 2}, false)
	if victim != (PageID{1, 0}) || !victimDirty {
		t.Fatalf("victim=%v dirty=%v, want page0 dirty", victim, victimDirty)
	}
}

func TestMemoryResizeEvicts(t *testing.T) {
	m := NewMemory(4*4096, 4096)
	for i := uint32(0); i < 4; i++ {
		m.Touch(PageID{1, i}, false)
	}
	evicted := m.Resize(2)
	if len(evicted) != 2 {
		t.Fatalf("evicted %v", evicted)
	}
	if m.Resident() != 2 || m.Frames() != 2 {
		t.Fatalf("resident=%d frames=%d", m.Resident(), m.Frames())
	}
}

func TestMemoryFlushAll(t *testing.T) {
	m := NewMemory(4*4096, 4096)
	m.Touch(PageID{1, 0}, true)
	m.Touch(PageID{1, 1}, false)
	dirty, all := m.FlushAll()
	if len(all) != 2 || len(dirty) != 1 || dirty[0] != (PageID{1, 0}) {
		t.Fatalf("dirty=%v all=%v", dirty, all)
	}
	if m.Resident() != 0 {
		t.Fatal("pages remain after flush")
	}
}

func TestMemoryHitRate(t *testing.T) {
	m := NewMemory(4*4096, 4096)
	m.Touch(PageID{1, 0}, false) // miss
	m.Touch(PageID{1, 0}, false) // hit
	if hr := m.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v", hr)
	}
	h, mi := m.Counters()
	if h != 1 || mi != 1 {
		t.Fatalf("counters = %d,%d", h, mi)
	}
}

func TestCPUTaskAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	n := New(e, DefaultConfig(0))
	e.Spawn("t", func(p *sim.Proc) {
		n.CPU.Compute(p, sim.Millisecond)
		n.CPU.ComputeAs(p, "x", sim.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.CPU.TasksRun() != 2 {
		t.Fatalf("tasks = %d", n.CPU.TasksRun())
	}
	// System-context work is accounted separately from timesliced tasks.
	e2 := sim.NewEngine(1)
	n2 := New(e2, DefaultConfig(0))
	e2.Spawn("s", func(p *sim.Proc) { n2.CPU.ComputeSystem(p, sim.Millisecond) })
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if n2.CPU.TasksRun() != 0 || n2.CPU.SystemTime() != sim.Millisecond {
		t.Fatalf("tasks=%d sys=%v", n2.CPU.TasksRun(), n2.CPU.SystemTime())
	}
}
