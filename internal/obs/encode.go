package obs

import (
	"encoding/json"
	"io"
	"os"
)

// MarshalStable is the repository's one stable-ordering JSON encoder:
// two-space indented, map keys sorted (encoding/json's guarantee),
// trailing newline. Every machine-readable artifact
// — nowsim/nowbench -metrics and -trace, nowbench -json, benchjson's
// trajectory file — goes through here, so diffs between runs are
// meaningful line diffs.
func MarshalStable(v any) ([]byte, error) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// WriteStable encodes v with MarshalStable onto w.
func WriteStable(w io.Writer, v any) error {
	buf, err := MarshalStable(v)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// WriteFileStable encodes v with MarshalStable into path.
func WriteFileStable(path string, v any) error {
	buf, err := MarshalStable(v)
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}
