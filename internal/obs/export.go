package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Metric is one exported metric: a counter or gauge value, or a
// histogram with its fixed buckets. The JSON field set is stable;
// exports sort by name, so two runs of a deterministic scenario produce
// byte-identical output.
type Metric struct {
	Name string `json:"name"`
	Type string `json:"type"` // "counter" | "gauge" | "histogram"
	// Value is the counter/gauge value; for histograms it is the
	// observation count.
	Value int64 `json:"value"`
	// Sum is the histogram observation sum (duration metrics: total
	// virtual ns).
	Sum int64 `json:"sum,omitempty"`
	// Max is the largest observation of a histogram (omitted while
	// empty). Quantile clamps its bucket-bound estimates to it.
	Max int64 `json:"max,omitempty"`
	// Buckets are cumulative-free per-bucket counts; Le is the bucket's
	// inclusive upper bound, with the final bucket's Le = -1 standing
	// for +Inf. Zero buckets are kept: the layout is part of the
	// contract.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one histogram bucket.
type Bucket struct {
	Le int64 `json:"le"` // inclusive upper bound; -1 = +Inf
	N  int64 `json:"n"`
}

// Quantile reports the q-th percentile (0 < q ≤ 100) of a histogram
// metric as the upper bound of the bucket holding that rank — the
// standard fixed-bucket estimate, deterministic because the layouts
// are — clamped to the largest value actually observed: a bucket bound
// is an estimate, Max is a fact, and an estimate above the true
// maximum (or MaxInt64 from the +Inf bucket) would fail p-quantile
// assertions no observation justifies. ok is false when the metric is
// not a histogram, has no observations, or q is out of range; scenario
// assertions surface that as "unknown" rather than pass/fail
// (docs/SCENARIOS.md).
func (m Metric) Quantile(q float64) (v int64, ok bool) {
	if m.Type != "histogram" || m.Value <= 0 || q <= 0 || q > 100 {
		return 0, false
	}
	// rank = ⌈q% of n⌉, so p100 is the last observation's bucket.
	rank := int64(math.Ceil(q / 100 * float64(m.Value)))
	var seen int64
	for _, b := range m.Buckets {
		seen += b.N
		if seen >= rank {
			if b.Le < 0 || b.Le > m.Max {
				return m.Max, true
			}
			return b.Le, true
		}
	}
	return m.Max, true
}

// Snapshot runs the OnSample hooks, then returns every metric sorted by
// name.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	for _, fn := range r.samplers {
		fn()
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, c := range r.counters {
		out = append(out, Metric{Name: c.name, Type: "counter", Value: c.v})
	}
	for _, g := range r.gauges {
		out = append(out, Metric{Name: g.name, Type: "gauge", Value: g.v})
	}
	for _, h := range r.hists {
		m := Metric{Name: h.name, Type: "histogram", Value: h.n, Sum: h.sum,
			Max: h.Max(), Buckets: make([]Bucket, len(h.counts))}
		for i, n := range h.counts {
			le := int64(-1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			m.Buckets[i] = Bucket{Le: le, N: n}
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// metricsDoc is the exported JSON shape of a metrics file.
type metricsDoc struct {
	Format  string   `json:"format"`
	Metrics []Metric `json:"metrics"`
}

// traceDoc is the exported JSON shape of a trace file.
type traceDoc struct {
	Format string `json:"format"`
	Spans  []Span `json:"spans"`
}

// WriteMetricsJSON writes the registry's metrics as stable-ordered,
// indented JSON. Byte-identical across runs of the same deterministic
// scenario.
func (r *Registry) WriteMetricsJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = []Metric{} // encode as [], not null
	}
	return WriteStable(w, metricsDoc{Format: "now-metrics/1", Metrics: snap})
}

// WriteTraceJSON writes the recorded spans as stable-ordered JSON.
func (r *Registry) WriteTraceJSON(w io.Writer) error {
	spans := r.Spans()
	if spans == nil {
		spans = []Span{}
	}
	return WriteStable(w, traceDoc{Format: "now-trace/1", Spans: spans})
}

// WriteMetricsCSV writes "name,type,value,sum" rows sorted by name —
// the spreadsheet-side view of the same snapshot. Histogram buckets are
// flattened to name[le] rows.
func (r *Registry) WriteMetricsCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("name,type,value,sum\n")
	for _, m := range r.Snapshot() {
		fmt.Fprintf(&b, "%s,%s,%d,%d\n", m.Name, m.Type, m.Value, m.Sum)
		for _, bk := range m.Buckets {
			le := "inf"
			if bk.Le >= 0 {
				le = fmt.Sprint(bk.Le)
			}
			fmt.Fprintf(&b, "%s[%s],bucket,%d,0\n", m.Name, le, bk.N)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
