package obs

// Histogram is a fixed-layout histogram of int64 observations (virtual
// durations in ns, sizes in bytes, depths). The bucket layout is fixed
// at registration and shared across runs, which is what makes exported
// output byte-stable: two runs of the same scenario fill the same
// buckets, and a changed code path moves counts between buckets rather
// than reshaping the output.
//
// Observe is a binary search over a small bounds slice plus three
// increments — no allocation, no map.
type Histogram struct {
	name   string
	bounds []int64 // ascending upper bounds; counts has one extra +Inf slot
	counts []int64
	n      int64
	sum    int64
	max    int64 // largest observation; meaningful only when n > 0
}

// Histogram creates and registers a histogram with the given ascending
// upper bounds (use one of the standard layouts below unless the metric
// truly needs its own). Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.register(name)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must ascend: " + name)
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.hists = append(r.hists, h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; the tail slot catches
	// overflow.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.counts[lo]++
	h.n++
	h.sum += v
}

// Max reports the largest observation (0 on a nil or empty handle).
// Quantile estimates clamp to it: a bucket upper bound is an estimate,
// the maximum is a fact.
func (h *Histogram) Max() int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.max
}

// Count reports the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum reports the sum of observations (0 on a nil handle).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean reports sum/count using the same integer division every caller
// would write, so reports derived from a histogram match reports
// derived from the raw samples.
func (h *Histogram) Mean() int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / h.n
}

// Standard bucket layouts. Fixed and shared: determinism rule #2 in
// docs/OBSERVABILITY.md. All duration layouts are in virtual
// nanoseconds.
var (
	// DurationBuckets spans the simulation's dynamic range — from the
	// ~1 µs Active Message regime through multi-minute job responses —
	// in a 1-2-5 decade series. 26 buckets plus overflow.
	DurationBuckets = []int64{
		1_000, 2_000, 5_000, // 1-5 µs: the AM overhead regime
		10_000, 20_000, 50_000, // 10-50 µs: switch latency, small RPCs
		100_000, 200_000, 500_000, // 0.1-0.5 ms: kernel-stack messages
		1_000_000, 2_000_000, 5_000_000, // 1-5 ms: disk-class service
		10_000_000, 20_000_000, 50_000_000, // 10-50 ms: degraded I/O
		100_000_000, 200_000_000, 500_000_000, // 0.1-0.5 s: bulk transfer
		1e9, 2e9, 5e9, // 1-5 s: image save/restore
		10e9, 30e9, 60e9, // 10-60 s: short jobs
		300e9, 3600e9, // 5 min, 1 h: long jobs
	}

	// DepthBuckets is a power-of-two series for queue depths and
	// outstanding-operation counts.
	DepthBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384}

	// SizeBuckets is a power-of-four byte series from 64 B to 64 MB —
	// message and transfer sizes.
	SizeBuckets = []int64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216, 67108864}
)
