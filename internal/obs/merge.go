package obs

import (
	"fmt"
	"sort"
)

// Merged combines several registries into one stable-ordered snapshot
// registry — the export path for sharded runs, where each partition
// accumulates metrics into its own registry (single-threaded, like the
// engine that feeds it) and the merged view must be independent of how
// many workers executed the partitions.
//
// Merge rules, by metric kind:
//
//   - counters sum;
//   - histograms with the same name must share a bucket layout (all the
//     standard layouts are package constants, so they do) and merge by
//     element-wise addition;
//   - gauges sum, EXCEPT names ending in ".max" and the engine clock
//     "sim.time.now.ns", which take the maximum — a high-water mark or
//     a clock summed across partitions would be meaningless;
//   - spans concatenate and stable-sort by start time (ties keep source
//     order), with IDs renumbered and parent links remapped so the
//     merged trace satisfies the same id = position+1 invariant as a
//     native one.
//
// A name that appears in only some sources merges with the identity for
// its rule, so heterogeneous registries (e.g. one coordinator registry
// plus N partition registries) merge cleanly.
//
// Merged snapshots every source first (running its samplers), so it
// must only be called while the simulation feeding the sources is
// quiescent. The result is a value copy: later activity in the sources
// does not flow through, and the merged registry's spans are read-only.
func Merged(srcs ...*Registry) *Registry {
	dst := NewRegistry()
	for _, src := range srcs {
		if src != nil {
			src.Snapshot() // run samplers so mirrored values are current
		}
	}
	type histAcc struct {
		bounds      []int64
		counts      []int64
		n, sum, max int64
	}
	var (
		counterOrder, gaugeOrder, histOrder []string
		counters                            = map[string]int64{}
		gauges                              = map[string]int64{}
		gaugeSeen                           = map[string]bool{}
		hists                               = map[string]*histAcc{}
	)
	for _, src := range srcs {
		if src == nil {
			continue
		}
		for _, c := range src.counters {
			if _, ok := counters[c.name]; !ok {
				counterOrder = append(counterOrder, c.name)
			}
			counters[c.name] += c.v
		}
		for _, g := range src.gauges {
			if !gaugeSeen[g.name] {
				gaugeSeen[g.name] = true
				gaugeOrder = append(gaugeOrder, g.name)
				gauges[g.name] = g.v
				continue
			}
			if mergeGaugeMax(g.name) {
				if g.v > gauges[g.name] {
					gauges[g.name] = g.v
				}
			} else {
				gauges[g.name] += g.v
			}
		}
		for _, h := range src.hists {
			acc := hists[h.name]
			if acc == nil {
				acc = &histAcc{bounds: h.bounds, counts: make([]int64, len(h.counts))}
				hists[h.name] = acc
				histOrder = append(histOrder, h.name)
			}
			if len(acc.counts) != len(h.counts) {
				panic(fmt.Sprintf("obs: merging histogram %q with mismatched bucket layouts", h.name))
			}
			for i, c := range h.counts {
				acc.counts[i] += c
			}
			if h.n > 0 && (acc.n == 0 || h.max > acc.max) {
				acc.max = h.max
			}
			acc.n += h.n
			acc.sum += h.sum
		}
	}
	for _, name := range counterOrder {
		dst.Counter(name).Add(counters[name])
	}
	for _, name := range gaugeOrder {
		dst.Gauge(name).Set(gauges[name])
	}
	for _, name := range histOrder {
		acc := hists[name]
		h := dst.Histogram(name, acc.bounds)
		copy(h.counts, acc.counts)
		h.n, h.sum, h.max = acc.n, acc.sum, acc.max
	}
	mergeSpans(dst, srcs)
	return dst
}

// mergeGaugeMax reports whether a gauge merges by maximum rather than
// sum: high-water marks and the virtual clock.
func mergeGaugeMax(name string) bool {
	if name == "sim.time.now.ns" {
		return true
	}
	const suf = ".max"
	return len(name) >= len(suf) && name[len(name)-len(suf):] == suf
}

// mergeSpans interleaves every source's spans by start time and rebuilds
// the id = position+1 invariant, remapping parent links.
func mergeSpans(dst *Registry, srcs []*Registry) {
	type tagged struct {
		Span
		old SpanID // globally offset original id
	}
	var all []tagged
	offset := SpanID(0)
	for _, src := range srcs {
		if src == nil {
			continue
		}
		for _, s := range src.spans {
			t := tagged{Span: s, old: s.ID + offset}
			if t.Parent > 0 {
				t.Parent += offset
			}
			all = append(all, t)
		}
		offset += SpanID(len(src.spans))
	}
	if len(all) == 0 {
		return
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	remap := make(map[SpanID]SpanID, len(all))
	for i := range all {
		remap[all[i].old] = SpanID(i + 1)
	}
	dst.spans = make([]Span, len(all))
	for i := range all {
		s := all[i].Span
		s.ID = SpanID(i + 1)
		if s.Parent > 0 {
			s.Parent = remap[s.Parent]
		}
		dst.spans[i] = s
	}
}
