package obs

import (
	"reflect"
	"testing"
)

func TestMergedCountersGaugesHists(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x.total").Add(3)
	b.Counter("x.total").Add(4)
	a.Counter("only.a").Add(7)

	a.Gauge("q.depth").Set(5)
	b.Gauge("q.depth").Set(6)
	a.Gauge("q.depth.max").Set(9)
	b.Gauge("q.depth.max").Set(12)
	a.Gauge("sim.time.now.ns").Set(100)
	b.Gauge("sim.time.now.ns").Set(80)

	ha := a.Histogram("lat.ns", DurationBuckets)
	hb := b.Histogram("lat.ns", DurationBuckets)
	ha.Observe(10)
	ha.Observe(2_000_000)
	hb.Observe(10)

	m := Merged(a, b)
	if v, _ := m.CounterValue("x.total"); v != 7 {
		t.Errorf("x.total = %d, want 7 (summed)", v)
	}
	if v, _ := m.CounterValue("only.a"); v != 7 {
		t.Errorf("only.a = %d, want 7 (identity merge)", v)
	}
	if v, _ := m.GaugeValue("q.depth"); v != 11 {
		t.Errorf("q.depth = %d, want 11 (summed)", v)
	}
	if v, _ := m.GaugeValue("q.depth.max"); v != 12 {
		t.Errorf("q.depth.max = %d, want 12 (max)", v)
	}
	if v, _ := m.GaugeValue("sim.time.now.ns"); v != 100 {
		t.Errorf("sim.time.now.ns = %d, want 100 (max)", v)
	}
	if n, sum, ok := m.HistogramStats("lat.ns"); !ok || n != 3 || sum != 2_000_020 {
		t.Errorf("lat.ns stats = (%d, %d, %v), want (3, 2000020, true)", n, sum, ok)
	}
}

func TestMergedOrderIndependentExport(t *testing.T) {
	build := func(vals [2]int64) [2]*Registry {
		var rs [2]*Registry
		for i := range rs {
			rs[i] = NewRegistry()
			rs[i].Counter("c").Add(vals[i])
			rs[i].Gauge("g.max").Set(vals[i])
		}
		return rs
	}
	rs := build([2]int64{1, 2})
	snapA := Merged(rs[0], rs[1]).Snapshot()
	rs = build([2]int64{1, 2})
	snapB := Merged(rs[1], rs[0]).Snapshot()
	if !reflect.DeepEqual(snapA, snapB) {
		t.Errorf("merge is source-order dependent:\n%v\n%v", snapA, snapB)
	}
}

func TestMergedSpans(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	var now Time
	a.SetClock(func() Time { return now })
	b.SetClock(func() Time { return now })

	now = 10
	ra := a.StartSpan("a-root", 0)
	now = 30
	ca := a.StartChild("a-child", 0, ra)
	a.EndSpan(ca)
	now = 20
	rb := b.StartSpan("b-root", 1)
	b.EndSpan(rb)
	now = 40
	a.EndSpan(ra)

	m := Merged(a, b)
	spans := m.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Interleaved by start time: a-root(10), b-root(20), a-child(30).
	wantNames := []string{"a-root", "b-root", "a-child"}
	for i, s := range spans {
		if s.Name != wantNames[i] {
			t.Errorf("span %d = %q, want %q", i, s.Name, wantNames[i])
		}
		if s.ID != SpanID(i+1) {
			t.Errorf("span %d id = %d, want %d", i, s.ID, i+1)
		}
	}
	// Parent of a-child must follow a-root to its new id (1).
	if spans[2].Parent != spans[0].ID {
		t.Errorf("a-child parent = %d, want %d", spans[2].Parent, spans[0].ID)
	}
	if spans[1].Parent != 0 {
		t.Errorf("b-root parent = %d, want 0", spans[1].Parent)
	}
}

func TestMergedHistogramLayoutMismatchPanics(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("h", []int64{1, 2})
	b.Histogram("h", []int64{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Error("mismatched layouts should panic")
		}
	}()
	Merged(a, b)
}
