// Package obs is the deterministic, virtual-time observability layer:
// a metrics registry (counters, gauges, fixed-layout histograms) and a
// span tracer, shared by every NOW subsystem. It is the uniform way to
// observe a running simulation — the paper's argument is built on
// measured numbers (10 µs Active Message overheads, coscheduling skew,
// cooperative-cache hit rates), and this package is where those numbers
// come from in our reproduction.
//
// Two properties shape the design:
//
//   - Determinism. All times are *virtual* (the sim engine's clock, in
//     nanoseconds); histograms use fixed bucket layouts; exports are
//     stable-ordered. Two runs of the same seeded scenario therefore
//     emit byte-identical metrics JSON. Nothing in this package reads
//     the wall clock.
//
//   - A near-zero disabled path. A nil *Registry is the disabled state:
//     every constructor on it returns a nil handle, and every method on
//     a nil handle is an inlineable no-op. Instrumented hot paths guard
//     with a single pointer test and perform no map lookups and no
//     allocations per event, so the scheduler's ns-level wins survive.
//
// Handles are created once, at subsystem construction (preallocated
// label sets via CounterVec/GaugeVec); recording is a plain field
// increment. Sampled values (utilisations, queue depths read at export
// time) are registered with OnSample. See docs/OBSERVABILITY.md for the
// naming conventions and the instrumentation guide.
package obs

import (
	"fmt"
	"sort"
)

// Time is a point (or span) of virtual time in nanoseconds. It is the
// unit of sim.Time without the import: obs sits below internal/sim so
// the engine itself can be instrumented.
type Time = int64

// Counter is a monotonically increasing int64 metric. The zero handle
// (nil) is a no-op, which is how disabled instrumentation costs ~0.
type Counter struct {
	name string
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (negative n is a caller bug; it is not checked on the hot
// path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value reports the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous int64 metric: a level, a depth, a
// utilisation in parts-per-million. Dimensionless ratios are stored
// scaled (see Ratio) so that exports stay integer and byte-stable.
type Gauge struct {
	name string
	v    int64
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add moves the level by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v += d
	}
}

// SetMax raises the gauge to v if v is larger — the high-water-mark
// pattern used for queue depths.
func (g *Gauge) SetMax(v int64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value reports the current level (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Ratio scales a dimensionless fraction to parts-per-million for gauge
// storage: integer, deterministic, precise enough for any report.
func Ratio(f float64) int64 { return int64(f*1e6 + 0.5) }

// CounterVec is a preallocated set of counters over a fixed label set —
// one counter per label, addressed by index. There is no per-event map
// lookup anywhere: the index is the caller's own dense id (a node id, a
// policy ordinal).
type CounterVec struct {
	cs []*Counter
}

// At returns the i'th counter (nil — a no-op — when the vec is nil or i
// is out of range).
func (v *CounterVec) At(i int) *Counter {
	if v == nil || i < 0 || i >= len(v.cs) {
		return nil
	}
	return v.cs[i]
}

// GaugeVec is the gauge analogue of CounterVec.
type GaugeVec struct {
	gs []*Gauge
}

// At returns the i'th gauge (nil when the vec is nil or i out of range).
func (v *GaugeVec) At(i int) *Gauge {
	if v == nil || i < 0 || i >= len(v.gs) {
		return nil
	}
	return v.gs[i]
}

// Registry holds a run's collectors. A nil *Registry is the disabled
// observability layer: all constructors return nil handles and all
// recording is a no-op. Like the engine it observes, a Registry is not
// safe for concurrent use from multiple OS threads; the simulation's
// serialisation (one runnable process at a time) is what makes plain
// increments sound.
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	names    map[string]bool
	samplers []func()
	clock    func() Time
	spans    []Span
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// SetClock installs the virtual-time source used to stamp spans. The
// engine's Observe method calls this; install exactly one clock.
func (r *Registry) SetClock(fn func() Time) {
	if r != nil {
		r.clock = fn
	}
}

// now reads the clock (0 before SetClock, so pre-wiring spans are still
// harmless).
func (r *Registry) now() Time {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

// register reserves a metric name, panicking on duplicates: two
// subsystems claiming one name is a wiring bug better caught at
// construction than merged silently at export.
func (r *Registry) register(name string) {
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.names[name] = true
}

// Counter creates and registers a counter (nil on a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.register(name)
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Gauge creates and registers a gauge (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.register(name)
	g := &Gauge{name: name}
	r.gauges = append(r.gauges, g)
	return g
}

// CounterVec creates one counter per label, named name{label}. Labels
// are fixed at construction — the preallocated-label-set rule.
func (r *Registry) CounterVec(name string, labels []string) *CounterVec {
	if r == nil {
		return nil
	}
	v := &CounterVec{cs: make([]*Counter, len(labels))}
	for i, l := range labels {
		v.cs[i] = r.Counter(name + "{" + l + "}")
	}
	return v
}

// GaugeVec creates one gauge per label, named name{label}.
func (r *Registry) GaugeVec(name string, labels []string) *GaugeVec {
	if r == nil {
		return nil
	}
	v := &GaugeVec{gs: make([]*Gauge, len(labels))}
	for i, l := range labels {
		v.gs[i] = r.Gauge(name + "{" + l + "}")
	}
	return v
}

// OnSample registers fn to run (in registration order) at the start of
// every Snapshot — the place to copy sampled values (utilisations,
// queue depths, mirrored subsystem tallies) into gauges. Hooks must be
// deterministic functions of simulation state.
func (r *Registry) OnSample(fn func()) {
	if r != nil {
		r.samplers = append(r.samplers, fn)
	}
}

// CounterValue looks a counter up by name at reporting time — the
// experiment harness's read path. Not for hot paths.
func (r *Registry) CounterValue(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	for _, c := range r.counters {
		if c.name == name {
			return c.v, true
		}
	}
	return 0, false
}

// GaugeValue looks a gauge up by name at reporting time.
func (r *Registry) GaugeValue(name string) (int64, bool) {
	if r == nil {
		return 0, false
	}
	for _, g := range r.gauges {
		if g.name == name {
			return g.v, true
		}
	}
	return 0, false
}

// HistogramStats looks a histogram up by name and reports its
// observation count and sum — enough for means at reporting time.
func (r *Registry) HistogramStats(name string) (n, sum int64, ok bool) {
	if r == nil {
		return 0, 0, false
	}
	for _, h := range r.hists {
		if h.name == name {
			return h.n, h.sum, true
		}
	}
	return 0, 0, false
}

// MetricNames returns every registered metric name, sorted — the
// documentation and golden tests walk this.
func (r *Registry) MetricNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.names))
	for n := range r.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
