package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", DurationBuckets)
	cv := r.CounterVec("v", []string{"a", "b"})
	gv := r.GaugeVec("w", []string{"a"})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	g.SetMax(9)
	h.Observe(100)
	cv.At(0).Inc()
	cv.At(99).Inc()
	gv.At(0).Set(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("nil handles recorded something")
	}
	id := r.StartSpan("s", 0)
	if id != 0 {
		t.Fatalf("nil registry span id = %d", id)
	}
	r.Annotate(id, "note")
	r.EndSpan(id)
	if r.Snapshot() != nil || r.Spans() != nil || r.MetricNames() != nil {
		t.Fatal("nil registry exported something")
	}
	r.OnSample(func() { t.Fatal("sampler ran on nil registry") })
}

func TestNilHandleRecordingAllocatesNothing(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.SetMax(2)
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("disabled handles allocated %.1f allocs/op", allocs)
	}
}

func TestEnabledRecordingAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DepthBuckets)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.SetMax(7)
		h.Observe(9)
	})
	if allocs != 0 {
		t.Fatalf("enabled recording allocated %.1f allocs/op", allocs)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup")
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000, 7000} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d metrics", len(snap))
	}
	m := snap[0]
	if m.Type != "histogram" || m.Value != 6 || m.Sum != 1+10+11+100+5000+7000 {
		t.Fatalf("bad histogram metric %+v", m)
	}
	want := []Bucket{{Le: 10, N: 2}, {Le: 100, N: 2}, {Le: 1000, N: 0}, {Le: -1, N: 2}}
	if len(m.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(m.Buckets), len(want))
	}
	for i, b := range m.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if h.Mean() != m.Sum/6 {
		t.Fatalf("mean %d", h.Mean())
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z.last").Add(3)
		r.Gauge("a.first").Set(1)
		r.Histogram("m.mid", DepthBuckets).Observe(5)
		r.CounterVec("vec", []string{"n0", "n1"}).At(1).Inc()
		r.OnSample(func() { /* deterministic no-op */ })
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteMetricsJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteMetricsJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two identical registries exported different bytes")
	}
	snap := build().Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
}

func TestOnSampleRunsBeforeSnapshot(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("sampled")
	level := int64(0)
	r.OnSample(func() { g.Set(level) })
	level = 42
	snap := r.Snapshot()
	if snap[0].Value != 42 {
		t.Fatalf("sampler did not run: %+v", snap[0])
	}
}

func TestSpans(t *testing.T) {
	r := NewRegistry()
	var now Time
	r.SetClock(func() Time { return now })
	now = 10
	root := r.StartSpan("migrate", 3)
	now = 20
	child := r.StartChild("transfer", 3, root)
	r.Annotate(child, "32 MB image")
	now = 30
	r.EndSpan(child)
	now = 40
	r.EndSpan(root)
	r.EndSpan(root) // idempotent
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].Name != "migrate" || spans[0].Start != 10 || spans[0].End != 40 || spans[0].Node != 3 {
		t.Fatalf("bad root %+v", spans[0])
	}
	if spans[1].Parent != root || spans[1].Start != 20 || spans[1].End != 30 {
		t.Fatalf("bad child %+v", spans[1])
	}
	if len(spans[1].Notes) != 1 || spans[1].Notes[0].T != 20 || spans[1].Notes[0].Text != "32 MB image" {
		t.Fatalf("bad notes %+v", spans[1].Notes)
	}
	var buf bytes.Buffer
	if err := r.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"now-trace/1"`) {
		t.Fatalf("trace header missing:\n%s", buf.String())
	}
}

func TestCSVExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Histogram("h", []int64{10}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"name,type,value,sum\n", "c,counter,7,0\n", "h,histogram,1,3\n", "h[10],bucket,1,0\n", "h[inf],bucket,0,0\n"} {
		if !strings.Contains(got, want) {
			t.Fatalf("CSV missing %q:\n%s", want, got)
		}
	}
}

func TestMarshalStable(t *testing.T) {
	b1, err := MarshalStable(map[string]int{"b": 2, "a": 1})
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := MarshalStable(map[string]int{"a": 1, "b": 2})
	if !bytes.Equal(b1, b2) {
		t.Fatal("map key order leaked into encoding")
	}
	if b1[len(b1)-1] != '\n' {
		t.Fatal("no trailing newline")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(0.5) != 500_000 {
		t.Fatalf("Ratio(0.5) = %d", Ratio(0.5))
	}
	if Ratio(0) != 0 {
		t.Fatalf("Ratio(0) = %d", Ratio(0))
	}
}
