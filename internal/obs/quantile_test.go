package obs

import "testing"

// TestQuantile pins the fixed-bucket percentile estimate scenario
// assertions rely on (expect m p95 <= ... — docs/SCENARIOS.md).
func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.lat", DepthBuckets) // bounds 1,2,4,8,...
	// 10 observations: 9 land in the ≤1 bucket, 1 in the ≤8 bucket.
	for i := 0; i < 9; i++ {
		h.Observe(1)
	}
	h.Observe(7)
	m := findMetric(t, r, "q.lat")

	cases := []struct {
		q    float64
		want int64
	}{
		{50, 1},  // rank 5 of 10 → first bucket
		{90, 1},  // rank 9 → still the first bucket
		{95, 7},  // rank 10 → the straggler's bucket, clamped to the true max
		{100, 7}, // p100 is the last observation — 7, not its bucket bound 8
	}
	for _, tc := range cases {
		got, ok := m.Quantile(tc.q)
		if !ok || got != tc.want {
			t.Fatalf("p%g = %d (ok=%v), want %d", tc.q, got, ok, tc.want)
		}
	}
}

// TestQuantileUnknowns pins every not-ok case — wrong type, empty
// histogram, out-of-range q — and that the +Inf overflow bucket
// reports the observed maximum rather than MaxInt64.
func TestQuantileUnknowns(t *testing.T) {
	r := NewRegistry()
	r.Counter("q.count").Add(5)
	empty := r.Histogram("q.empty", DepthBuckets)
	_ = empty
	over := r.Histogram("q.over", DepthBuckets)
	over.Observe(1 << 30) // past the last bound: +Inf bucket

	if _, ok := findMetric(t, r, "q.count").Quantile(50); ok {
		t.Fatal("quantile of a counter must not be ok")
	}
	if _, ok := findMetric(t, r, "q.empty").Quantile(50); ok {
		t.Fatal("quantile of an empty histogram must not be ok")
	}
	m := findMetric(t, r, "q.over")
	for _, q := range []float64{0, -1, 101} {
		if _, ok := m.Quantile(q); ok {
			t.Fatalf("p%g must not be ok", q)
		}
	}
	got, ok := m.Quantile(50)
	if !ok || got != 1<<30 {
		t.Fatalf("overflow-bucket quantile = %d (ok=%v), want the observed max %d", got, ok, int64(1<<30))
	}
}

// TestQuantileClampsToObservedMax is the regression for the boundary
// bug: a quantile whose rank lands in a partially-filled bucket used to
// report the bucket's upper bound even when that exceeds the largest
// value ever observed — "p100 = 8" for a histogram whose only
// observation is 7, and MaxInt64 for anything in the overflow bucket.
// A fixed-bucket estimate may be coarse, but it must never exceed the
// true maximum.
func TestQuantileClampsToObservedMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.clamp", DepthBuckets) // bounds 1,2,4,8,...
	h.Observe(7)                              // lands in the ≤8 bucket
	m := findMetric(t, r, "q.clamp")
	for _, q := range []float64{50, 100} {
		got, ok := m.Quantile(q)
		if !ok || got != 7 {
			t.Fatalf("p%g = %d (ok=%v), want the true max 7", q, got, ok)
		}
	}

	over := r.Histogram("q.clamp.over", DepthBuckets)
	over.Observe(1 << 30) // overflow bucket
	mo := findMetric(t, r, "q.clamp.over")
	got, ok := mo.Quantile(100)
	if !ok || got != 1<<30 {
		t.Fatalf("overflow p100 = %d (ok=%v), want the true max %d", got, ok, int64(1<<30))
	}

	// Values below a bucket bound but above the observed max in that
	// bucket: 3 lands in ≤4; p100 must say 3.
	low := r.Histogram("q.clamp.low", DepthBuckets)
	low.Observe(1)
	low.Observe(3)
	ml := findMetric(t, r, "q.clamp.low")
	if got, ok := ml.Quantile(100); !ok || got != 3 {
		t.Fatalf("p100 = %d (ok=%v), want 3", got, ok)
	}
}

func findMetric(t *testing.T, r *Registry, name string) Metric {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return Metric{}
}
