package obs

import (
	"math"
	"testing"
)

// TestQuantile pins the fixed-bucket percentile estimate scenario
// assertions rely on (expect m p95 <= ... — docs/SCENARIOS.md).
func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q.lat", DepthBuckets) // bounds 1,2,4,8,...
	// 10 observations: 9 land in the ≤1 bucket, 1 in the ≤8 bucket.
	for i := 0; i < 9; i++ {
		h.Observe(1)
	}
	h.Observe(7)
	m := findMetric(t, r, "q.lat")

	cases := []struct {
		q    float64
		want int64
	}{
		{50, 1},  // rank 5 of 10 → first bucket
		{90, 1},  // rank 9 → still the first bucket
		{95, 8},  // rank 10 → the straggler's bucket
		{100, 8}, // p100 is the last observation
	}
	for _, tc := range cases {
		got, ok := m.Quantile(tc.q)
		if !ok || got != tc.want {
			t.Fatalf("p%g = %d (ok=%v), want %d", tc.q, got, ok, tc.want)
		}
	}
}

// TestQuantileUnknowns pins every not-ok case: wrong type, empty
// histogram, out-of-range q, and the +Inf overflow bucket.
func TestQuantileUnknowns(t *testing.T) {
	r := NewRegistry()
	r.Counter("q.count").Add(5)
	empty := r.Histogram("q.empty", DepthBuckets)
	_ = empty
	over := r.Histogram("q.over", DepthBuckets)
	over.Observe(1 << 30) // past the last bound: +Inf bucket

	if _, ok := findMetric(t, r, "q.count").Quantile(50); ok {
		t.Fatal("quantile of a counter must not be ok")
	}
	if _, ok := findMetric(t, r, "q.empty").Quantile(50); ok {
		t.Fatal("quantile of an empty histogram must not be ok")
	}
	m := findMetric(t, r, "q.over")
	for _, q := range []float64{0, -1, 101} {
		if _, ok := m.Quantile(q); ok {
			t.Fatalf("p%g must not be ok", q)
		}
	}
	got, ok := m.Quantile(50)
	if !ok || got != math.MaxInt64 {
		t.Fatalf("overflow-bucket quantile = %d (ok=%v), want MaxInt64", got, ok)
	}
}

func findMetric(t *testing.T, r *Registry, name string) Metric {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return Metric{}
}
