package obs

// Span tracing keyed to virtual time. A span is one named interval of
// simulated activity — a migration, an ownership transfer, a RAID
// rebuild — attributed to a node, optionally linked to a parent span,
// and annotated with timestamped notes. Span records accumulate in the
// registry in start order; because virtual time is deterministic, the
// exported trace of a seeded run is byte-stable.
//
// Spans are for the control-plane events a human debugs with (tens to
// thousands per run), not for per-event engine activity — counters and
// histograms cover the hot path.

// SpanID names one span in its registry. Zero is the invalid id: every
// operation on it (and every start on a nil registry, which returns it)
// is a no-op, so call sites need no enabled-check.
type SpanID int32

// Note is one timestamped annotation on a span.
type Note struct {
	T    Time   `json:"t"`
	Text string `json:"text"`
}

// Span is the exported record. End is 0 while the span is open (or was
// never finished — visible in the trace, deliberately).
type Span struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	Node   int    `json:"node"`
	Start  Time   `json:"start"`
	End    Time   `json:"end"`
	Notes  []Note `json:"notes,omitempty"`
}

// StartSpan opens a span named name attributed to node (use -1 for
// cluster-wide activity). It returns 0 on a nil registry.
func (r *Registry) StartSpan(name string, node int) SpanID {
	return r.StartChild(name, node, 0)
}

// StartChild opens a span linked to a parent span (0 for none).
func (r *Registry) StartChild(name string, node int, parent SpanID) SpanID {
	if r == nil {
		return 0
	}
	id := SpanID(len(r.spans) + 1)
	r.spans = append(r.spans, Span{
		ID:     id,
		Parent: parent,
		Name:   name,
		Node:   node,
		Start:  r.now(),
	})
	return id
}

// Annotate attaches a timestamped note to an open (or closed) span.
func (r *Registry) Annotate(id SpanID, text string) {
	if r == nil || id <= 0 || int(id) > len(r.spans) {
		return
	}
	s := &r.spans[id-1]
	s.Notes = append(s.Notes, Note{T: r.now(), Text: text})
}

// EndSpan closes a span at the current virtual time. Ending twice keeps
// the first end time.
func (r *Registry) EndSpan(id SpanID) {
	if r == nil || id <= 0 || int(id) > len(r.spans) {
		return
	}
	s := &r.spans[id-1]
	if s.End == 0 {
		s.End = r.now()
	}
}

// Spans returns the recorded spans in start order. The slice is the
// registry's own storage — callers must not mutate it.
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// SpansSince returns the spans started after the span with id after
// (0 for all) — the incremental form a streaming consumer polls with
// the last id it has seen. The slice aliases registry storage.
func (r *Registry) SpansSince(after SpanID) []Span {
	if r == nil || int(after) >= len(r.spans) {
		return nil
	}
	if after < 0 {
		after = 0
	}
	return r.spans[after:]
}
