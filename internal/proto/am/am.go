// Package am implements Active Messages, the lean communication layer
// at the heart of the NOW prototype (von Eicken et al., and Martin's
// HPAM port to HP workstations over Medusa FDDI).
//
// The design follows the paper's definitions exactly: *overhead* is CPU
// time spent by the processor preparing to send or receive (charged to
// the node's CPU, where it contends with everything else running there),
// while *latency* and serialization live in the fabric. An active
// message names a handler on the destination; the handler runs when the
// receiving endpoint's dispatcher drains it and may return a reply,
// which doubles as the acknowledgement.
//
// Reliability is the paper's "message loss as an infrequent case":
// per-destination sequence numbers, sender-side timeout and retry, and
// receiver-side duplicate suppression with cached replies, so a retried
// non-idempotent request is answered from the cache instead of
// re-executed. Receive buffering is finite; arrivals beyond the buffer
// are dropped and recovered by retry — the exact failure mode that makes
// the Column benchmark collapse without coscheduling (Figure 4).
package am

import (
	"errors"
	"fmt"
	"sort"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/sim"
)

// HandlerID names a registered handler on an endpoint.
type HandlerID int

// Msg is what a handler receives.
type Msg struct {
	// Src is the requesting node.
	Src netsim.NodeID
	// Arg is the request argument (simulated payload, by reference).
	Arg any
	// Bytes is the payload size carried on the wire.
	Bytes int
}

// Handler processes a request and returns the reply value and its
// payload size in bytes (0 for a bare acknowledgement). Handlers run in
// the endpoint's dispatcher process and may perform further blocking
// simulation operations (disk I/O, nested calls on *other* endpoints).
type Handler func(p *sim.Proc, m Msg) (reply any, replyBytes int)

// ErrTimeout is returned when a message exhausted its retries without an
// acknowledgement (destination crashed or detached).
var ErrTimeout = errors.New("am: request timed out")

// Config sets the endpoint's cost and reliability parameters.
type Config struct {
	// SendOverhead is the CPU time charged at the sender per message.
	SendOverhead sim.Duration
	// RecvOverhead is the CPU time charged at the receiver per message.
	RecvOverhead sim.Duration
	// SendPerByte and RecvPerByte charge copy costs proportional to the
	// payload — zero for true user-level Active Messages (data moves by
	// DMA from user buffers), nonzero for the kernel-stack baselines
	// (package kstack) built on this same endpoint machinery, where
	// every byte crosses the kernel once or twice.
	SendPerByte sim.Duration
	RecvPerByte sim.Duration
	// HeaderBytes is added to every packet on the wire.
	HeaderBytes int
	// BufferSlots bounds the receive queue; excess arrivals are dropped.
	BufferSlots int
	// RetryTimeout is how long a sender waits before retransmitting.
	RetryTimeout sim.Duration
	// MaxRetries bounds retransmissions before ErrTimeout.
	MaxRetries int
	// CompletionTimeout bounds how long an acknowledged request may wait
	// for its reply. Retransmission stops once the destination's
	// transport ack arrives (the handler may legitimately take a long
	// time — a disk read, a rebuild); if the reply still has not arrived
	// after this deadline the destination is presumed to have crashed
	// mid-request. Zero means 10 s of virtual time.
	CompletionTimeout sim.Duration
	// Window bounds outstanding asynchronous sends per destination.
	Window int
	// Class is the CPU scheduling class charged for protocol processing
	// ("" = system class, always schedulable).
	Class string
	// Port is the endpoint's address on its node; distinct subsystems or
	// jobs sharing a node use distinct ports. Port 0 is the default.
	Port int
}

// DefaultConfig is the NOW target: user-level network access with a
// handful of microseconds of overhead per side, aiming at the paper's
// 10 µs user-to-user goal on a Myrinet-class fabric.
func DefaultConfig() Config {
	return Config{
		SendOverhead: 3 * sim.Microsecond,
		RecvOverhead: 3 * sim.Microsecond,
		HeaderBytes:  32,
		BufferSlots:  64,
		RetryTimeout: 1 * sim.Millisecond,
		MaxRetries:   10,
		Window:       16,
	}
}

// HPAMConfig reproduces Martin's HPAM prototype on Medusa FDDI: 8 µs of
// processor overhead per side including timeout and retry support.
func HPAMConfig() Config {
	cfg := DefaultConfig()
	cfg.SendOverhead = 8 * sim.Microsecond
	cfg.RecvOverhead = 8 * sim.Microsecond
	return cfg
}

// CM5Config reproduces the CM-5 figures the paper cites: roughly 50
// cycles ≈ 1.7 µs of overhead for sending and handling a small message.
func CM5Config() Config {
	cfg := DefaultConfig()
	cfg.SendOverhead = 1700 * sim.Nanosecond
	cfg.RecvOverhead = 1700 * sim.Nanosecond
	return cfg
}

type pktKind uint8

const (
	kindRequest pktKind = iota + 1
	kindReply
	// kindAck is the transport-level receipt: it stops the sender's
	// retransmission timer without completing the call.
	kindAck
)

// wire is the fabric payload for an AM packet.
type wire struct {
	kind    pktKind
	seq     uint64
	handler HandlerID
	arg     any
	bytes   int
	// ackedBelow lets the receiver prune its duplicate-suppression
	// cache: the sender has seen acknowledgements for all seq < this.
	ackedBelow uint64
}

type pending struct {
	pkt      *netsim.Packet
	seq      uint64
	dst      netsim.NodeID
	retries  int
	timer    sim.Timer
	done     *sim.Signal // nil for asynchronous sends
	reply    any
	failed   bool
	finished bool
	acked    bool
	async    bool
}

// Stats counts endpoint activity.
type Stats struct {
	Sent       int64 // requests transmitted (excluding retries)
	Retries    int64
	Replies    int64 // replies transmitted
	Handled    int64 // handler executions (deduplicated)
	Duplicates int64 // suppressed duplicate requests
	Overflows  int64 // arrivals dropped for lack of buffer slots
	Failures   int64 // sends abandoned after MaxRetries
}

// Endpoint is one node's attachment to the Active Message layer.
type Endpoint struct {
	cfg      Config
	eng      *sim.Engine
	node     *node.Node
	fab      *netsim.Fabric
	id       netsim.NodeID
	handlers map[HandlerID]Handler

	tx *sim.Mailbox[*netsim.Packet]
	rq *sim.Mailbox[*netsim.Packet]

	lowestUnack map[netsim.NodeID]uint64
	pend        map[uint64]*pending // keyed by seq (seqs are endpoint-global)
	// outstanding counts asynchronous sends only: synchronous Calls are
	// bounded by their callers blocking, and including them in the
	// window would deadlock a handler that Flushes while its own
	// request's reply is pending.
	outstanding map[netsim.NodeID]int
	windowSig   *sim.Signal

	// seen caches processed request seqs per source with their replies,
	// pruned by the cumulative ackedBelow the source advertises.
	seen map[netsim.NodeID]map[uint64]cachedReply

	stats    Stats
	detached bool
	seq      uint64
}

type cachedReply struct {
	val   any
	bytes int
	// inProgress marks a request whose handler is still executing in a
	// worker process; duplicates arriving meanwhile are dropped (the
	// sender's retry will find the cached reply once it lands).
	inProgress bool
}

// NewEndpoint attaches node n to the fabric with the given config and
// starts its transmit and dispatch processes.
func NewEndpoint(e *sim.Engine, n *node.Node, fab *netsim.Fabric, cfg Config) *Endpoint {
	if cfg.BufferSlots <= 0 {
		cfg.BufferSlots = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = sim.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 10
	}
	if cfg.CompletionTimeout <= 0 {
		cfg.CompletionTimeout = 10 * sim.Second
	}
	ep := &Endpoint{
		cfg:         cfg,
		eng:         e,
		node:        n,
		fab:         fab,
		id:          n.ID(),
		handlers:    make(map[HandlerID]Handler),
		tx:          sim.NewMailbox[*netsim.Packet](e, fmt.Sprintf("am%d/tx", n.ID())),
		rq:          sim.NewMailbox[*netsim.Packet](e, fmt.Sprintf("am%d/rq", n.ID())),
		lowestUnack: make(map[netsim.NodeID]uint64),
		pend:        make(map[uint64]*pending),
		outstanding: make(map[netsim.NodeID]int),
		windowSig:   sim.NewSignal(e, fmt.Sprintf("am%d/window", n.ID())),
		seen:        make(map[netsim.NodeID]map[uint64]cachedReply),
	}
	fab.SetDeliveryPort(ep.id, cfg.Port, ep.deliver)
	e.Spawn(fmt.Sprintf("am%d/txproc", n.ID()), ep.txLoop)
	e.Spawn(fmt.Sprintf("am%d/dispatch", n.ID()), ep.dispatch)
	return ep
}

// Node returns the endpoint's host.
func (ep *Endpoint) Node() *node.Node { return ep.node }

// ID returns the endpoint's fabric address.
func (ep *Endpoint) ID() netsim.NodeID { return ep.id }

// Config returns the endpoint's configuration.
func (ep *Endpoint) Config() Config { return ep.cfg }

// Fabric returns the fabric the endpoint is bound to. Protocol layers
// that bypass the AM reliability machinery (the in-network collective
// plane) use it to reach the topology and charge link occupancy with
// the endpoint's cost model.
func (ep *Endpoint) Fabric() *netsim.Fabric { return ep.fab }

// ChargeSend charges the per-message sender CPU cost (o + bytes*G_cpu)
// without queueing a packet. Used by layers that model their own wire
// path but keep the endpoint's LogP overhead accounting.
func (ep *Endpoint) ChargeSend(p *sim.Proc, payloadBytes int) {
	ep.chargeCPU(p, ep.cfg.SendOverhead+sim.Duration(payloadBytes)*ep.cfg.SendPerByte)
}

// ChargeRecv is ChargeSend's receive-side counterpart.
func (ep *Endpoint) ChargeRecv(p *sim.Proc, payloadBytes int) {
	ep.chargeCPU(p, ep.cfg.RecvOverhead+sim.Duration(payloadBytes)*ep.cfg.RecvPerByte)
}

// Register installs h for id. Re-registering replaces the handler.
func (ep *Endpoint) Register(id HandlerID, h Handler) {
	ep.handlers[id] = h
}

// Detach disconnects the endpoint (simulating a crashed node): incoming
// packets vanish, nothing is transmitted, and every outstanding send
// fails immediately — callers blocked in Call or Flush unwedge with
// errors instead of waiting on a wire that no longer exists. Peers
// observe ErrTimeout.
func (ep *Endpoint) Detach() {
	ep.detached = true
	ep.fab.SetDeliveryPort(ep.id, ep.cfg.Port, nil)
	pending := make([]*pending, 0, len(ep.pend))
	for _, pd := range ep.pend {
		pending = append(pending, pd)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].seq < pending[j].seq })
	for _, pd := range pending {
		ep.complete(pd, nil, true)
	}
}

// Reattach reconnects a detached endpoint — a crashed node rebooting
// and rejoining the fabric. Delivery resumes and new sends transmit
// again. State that died with the node stays dead: pending sends were
// already failed by Detach, and the sequence counter continues from
// where it left off, so peers' duplicate-suppression caches remain
// correct across the outage.
func (ep *Endpoint) Reattach() {
	if !ep.detached {
		return
	}
	ep.detached = false
	ep.fab.SetDeliveryPort(ep.id, ep.cfg.Port, ep.deliver)
}

// Detached reports whether the endpoint is currently detached.
func (ep *Endpoint) Detached() bool { return ep.detached }

// Stats returns a snapshot of counters.
func (ep *Endpoint) Stats() Stats { return ep.stats }

// Call sends a request to handler h on dst carrying arg/payloadBytes and
// blocks until the reply arrives, retrying on loss. It returns the
// handler's reply value.
func (ep *Endpoint) Call(p *sim.Proc, dst netsim.NodeID, h HandlerID, arg any, payloadBytes int) (any, error) {
	pd := ep.post(p, dst, h, arg, payloadBytes, false)
	for !pd.finished {
		pd.done.Wait(p)
	}
	if pd.failed {
		return nil, fmt.Errorf("am: call to node %d handler %d: %w", dst, h, ErrTimeout)
	}
	return pd.reply, nil
}

// Send is a reliable one-way message: it blocks until the destination
// acknowledges (the handler's nil reply). Use SendAsync for pipelined
// streams.
func (ep *Endpoint) Send(p *sim.Proc, dst netsim.NodeID, h HandlerID, arg any, payloadBytes int) error {
	_, err := ep.Call(p, dst, h, arg, payloadBytes)
	return err
}

// SendAsync posts a one-way message and returns once it is accepted into
// the per-destination window, blocking only when Window sends are
// already outstanding to dst. Losses are retried in the background;
// permanently failed sends are counted in Stats().Failures.
func (ep *Endpoint) SendAsync(p *sim.Proc, dst netsim.NodeID, h HandlerID, arg any, payloadBytes int) {
	for ep.outstanding[dst] >= ep.cfg.Window {
		ep.windowSig.Wait(p)
	}
	ep.post(p, dst, h, arg, payloadBytes, true)
}

// Flush blocks until every asynchronous send to every destination has
// been acknowledged or abandoned.
func (ep *Endpoint) Flush(p *sim.Proc) {
	for {
		total := 0
		for _, n := range ep.outstanding {
			total += n
		}
		if total == 0 {
			return
		}
		ep.windowSig.Wait(p)
	}
}

// post charges send overhead, registers the pending entry, and hands the
// packet to the transmit process.
func (ep *Endpoint) post(p *sim.Proc, dst netsim.NodeID, h HandlerID, arg any, payloadBytes int, async bool) *pending {
	if ep.detached {
		// A crashed host cannot send: fail synchronously.
		pd := &pending{seq: 0, dst: dst, async: async, finished: true, failed: true}
		if !async {
			pd.done = sim.NewSignal(ep.eng, "am/dead")
		}
		ep.stats.Failures++
		return pd
	}
	ep.chargeCPU(p, ep.cfg.SendOverhead+sim.Duration(payloadBytes)*ep.cfg.SendPerByte)
	ep.seq++
	seq := ep.seq
	w := &wire{
		kind:       kindRequest,
		seq:        seq,
		handler:    h,
		arg:        arg,
		bytes:      payloadBytes,
		ackedBelow: ep.lowestUnack[dst],
	}
	pkt := &netsim.Packet{
		Src:     ep.id,
		SrcPort: ep.cfg.Port,
		Dst:     dst,
		Port:    ep.cfg.Port,
		Bytes:   payloadBytes + ep.cfg.HeaderBytes,
		Payload: w,
	}
	pd := &pending{pkt: pkt, seq: seq, dst: dst, async: async}
	if !async {
		pd.done = sim.NewSignal(ep.eng, "am/call")
	}
	ep.pend[seq] = pd
	if async {
		ep.outstanding[dst]++
	}
	ep.updateLowestUnack(dst)
	ep.stats.Sent++
	ep.tx.Put(pkt)
	pd.timer = ep.eng.After(ep.timeoutFor(pkt), func() { ep.onTimeout(pd) })
	return pd
}

func (ep *Endpoint) onTimeout(pd *pending) {
	if pd.finished {
		return
	}
	if ep.detached {
		ep.complete(pd, nil, true)
		return
	}
	if pd.acked {
		// Acknowledged but unanswered within the completion window: the
		// reply may have been lost, or the destination crashed. Fall back
		// to probing — a duplicate request is re-acked while the handler
		// runs and re-answered from the reply cache once it finishes, so
		// a live destination always converges. Only a dead one exhausts
		// the retry budget (acks reset it, see onAck).
		pd.acked = false
	}
	if pd.retries >= ep.cfg.MaxRetries {
		ep.complete(pd, nil, true)
		return
	}
	pd.retries++
	ep.stats.Retries++
	ep.tx.Put(pd.pkt)
	// Exponential backoff: under congestion (incast at the receiver's
	// link) the first timeout estimate is wrong by the backlog's depth;
	// doubling keeps retransmissions from feeding the collapse they are
	// reacting to.
	backoff := uint(pd.retries)
	if backoff > 6 {
		backoff = 6
	}
	pd.timer = ep.eng.After(ep.timeoutFor(pd.pkt)<<backoff, func() { ep.onTimeout(pd) })
}

// onAck switches a pending send from retransmission mode to the (much
// longer) completion deadline.
func (ep *Endpoint) onAck(seq uint64) {
	pd, ok := ep.pend[seq]
	if !ok || pd.finished || pd.acked {
		return
	}
	pd.acked = true
	pd.retries = 0 // a live destination refreshes the retry budget
	pd.timer.Stop()
	pd.timer = ep.eng.After(ep.cfg.CompletionTimeout, func() { ep.onTimeout(pd) })
}

// timeoutFor sizes the retransmission timer to the message: the base
// timeout plus enough round-trip serialization slack that a large bulk
// transfer (or one queued behind a full window of them) is not declared
// lost while it is still streaming onto the wire.
func (ep *Endpoint) timeoutFor(pkt *netsim.Packet) sim.Duration {
	ser := ep.fab.SerializationTime(pkt.Bytes)
	return ep.cfg.RetryTimeout + 2*ser*sim.Duration(ep.cfg.Window+1)
}

// complete finishes a pending send: failure or reply.
func (ep *Endpoint) complete(pd *pending, reply any, failed bool) {
	if pd.finished {
		return
	}
	pd.finished = true
	pd.reply = reply
	pd.failed = failed
	pd.timer.Stop()
	delete(ep.pend, pd.seq)
	if pd.async {
		ep.outstanding[pd.dst]--
	}
	ep.updateLowestUnack(pd.dst)
	if failed {
		ep.stats.Failures++
	}
	if pd.done != nil {
		pd.done.Broadcast()
	}
	ep.windowSig.Broadcast()
}

// updateLowestUnack recomputes the cumulative-ack horizon for dst.
func (ep *Endpoint) updateLowestUnack(dst netsim.NodeID) {
	low := ep.seq + 1
	found := false
	for _, pd := range ep.pend {
		if pd.dst == dst && pd.seq < low {
			low = pd.seq
			found = true
		}
	}
	if !found {
		low = ep.seq + 1
	}
	ep.lowestUnack[dst] = low
}

// chargeCPU accounts protocol processing time. System endpoints (empty
// Class) run in interrupt context — they must not queue behind a guest
// job's timeslice, or acks stall and retransmission storms follow.
// Job-classed endpoints model user-level libraries polled by the
// application: their processing competes under the local scheduler,
// which is exactly the Figure 4 effect.
func (ep *Endpoint) chargeCPU(p *sim.Proc, d sim.Duration) {
	if ep.cfg.Class == "" {
		ep.node.CPU.ComputeSystem(p, d)
		return
	}
	ep.node.CPU.ComputeAs(p, ep.cfg.Class, d)
}

// txLoop drains the transmit queue onto the fabric, serialising packets
// on the node's link like a NIC DMA engine.
func (ep *Endpoint) txLoop(p *sim.Proc) {
	for {
		pkt := ep.tx.Get(p)
		if ep.detached {
			ep.fab.FreePacket(pkt) // recycles pooled acks/replies; no-op on requests
			continue
		}
		ep.fab.Send(p, pkt)
	}
}

// deliver runs at packet arrival (fabric event context): bound buffering
// then hand to the dispatcher.
func (ep *Endpoint) deliver(pkt *netsim.Packet) {
	if ep.detached {
		ep.fab.FreePacket(pkt)
		return
	}
	if ep.rq.Len() >= ep.cfg.BufferSlots {
		ep.stats.Overflows++
		ep.fab.FreePacket(pkt)
		return
	}
	ep.rq.Put(pkt)
}

// dispatch drains arrivals: charges receive overhead, deduplicates, runs
// handlers, and transmits replies.
func (ep *Endpoint) dispatch(p *sim.Proc) {
	for {
		pkt := ep.rq.Get(p)
		w, ok := pkt.Payload.(*wire)
		if !ok {
			ep.fab.FreePacket(pkt)
			continue
		}
		ep.chargeCPU(p, ep.cfg.RecvOverhead+sim.Duration(w.bytes)*ep.cfg.RecvPerByte)
		switch w.kind {
		case kindRequest:
			// Transport receipt first: the sender stops retransmitting
			// while the handler (possibly a long disk operation) runs.
			// Acks are single-shot (a retried request generates a fresh
			// one), so the packet comes from the fabric pool and the
			// receiving dispatcher recycles it.
			ack := ep.fab.NewPacket()
			ack.Src = ep.id
			ack.SrcPort = ep.cfg.Port
			ack.Dst = pkt.Src
			ack.Port = pkt.SrcPort
			ack.Bytes = ep.cfg.HeaderBytes
			ack.Payload = &wire{kind: kindAck, seq: w.seq}
			ep.tx.Put(ack)
			// Request packets are never pooled: the sender retains them
			// for retransmission, so there is nothing to recycle here.
			ep.handleRequest(p, pkt, w)
		case kindReply:
			if pd, ok := ep.pend[w.seq]; ok {
				ep.complete(pd, w.arg, false)
			}
			// Unknown seq: a duplicate reply for a call that already
			// completed — drop it.
			ep.fab.FreePacket(pkt)
		case kindAck:
			ep.onAck(w.seq)
			ep.fab.FreePacket(pkt)
		}
	}
}

// handleRequest deduplicates and launches the handler. Handlers run in
// their own worker process so they may block — nested calls, disk I/O —
// without stalling this endpoint's dispatcher (which must keep matching
// replies for exactly that kind of nested call).
func (ep *Endpoint) handleRequest(p *sim.Proc, pkt *netsim.Packet, w *wire) {
	src := pkt.Src
	cache := ep.seen[src]
	if cache == nil {
		cache = make(map[uint64]cachedReply)
		ep.seen[src] = cache
	}
	// Prune entries the sender has confirmed.
	for seq := range cache {
		if seq < w.ackedBelow {
			delete(cache, seq)
		}
	}
	if cached, dup := cache[w.seq]; dup {
		ep.stats.Duplicates++
		if !cached.inProgress {
			ep.sendReply(p, src, pkt.SrcPort, w.seq, cached.val, cached.bytes)
		}
		return
	}
	cache[w.seq] = cachedReply{inProgress: true}
	h := ep.handlers[w.handler]
	seq := w.seq
	arg := w.arg
	bytes := w.bytes
	srcPort := pkt.SrcPort
	ep.eng.Spawn(fmt.Sprintf("am%d/h%d", ep.id, w.handler), func(wp *sim.Proc) {
		var reply any
		replyBytes := 0
		if h != nil {
			reply, replyBytes = h(wp, Msg{Src: src, Arg: arg, Bytes: bytes})
		}
		ep.stats.Handled++
		ep.seen[src][seq] = cachedReply{val: reply, bytes: replyBytes}
		ep.sendReply(wp, src, srcPort, seq, reply, replyBytes)
	})
}

func (ep *Endpoint) sendReply(p *sim.Proc, dst netsim.NodeID, srcPort int, seq uint64, val any, bytes int) {
	ep.chargeCPU(p, ep.cfg.SendOverhead+sim.Duration(bytes)*ep.cfg.SendPerByte)
	ep.stats.Replies++
	// Replies, like acks, are single-shot: a duplicate request is
	// answered with a fresh packet from the cache, so this one can come
	// from the pool and be recycled by the receiving dispatcher.
	pkt := ep.fab.NewPacket()
	pkt.Src = ep.id
	pkt.SrcPort = ep.cfg.Port
	pkt.Dst = dst
	pkt.Port = srcPort
	pkt.Bytes = bytes + ep.cfg.HeaderBytes
	pkt.Payload = &wire{kind: kindReply, seq: seq, arg: val, bytes: bytes}
	ep.tx.Put(pkt)
}
