package am

import (
	"errors"
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/sim"
)

// testNet builds n nodes with AM endpoints on the given fabric config.
func testNet(t *testing.T, e *sim.Engine, n int, fcfg netsim.Config, acfg Config) (*netsim.Fabric, []*Endpoint) {
	t.Helper()
	fab, err := netsim.New(e, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		nd := node.New(e, node.DefaultConfig(netsim.NodeID(i)))
		eps[i] = NewEndpoint(e, nd, fab, acfg)
	}
	return fab, eps
}

const (
	hEcho HandlerID = iota + 1
	hCount
	hNested
)

func TestCallRoundTrip(t *testing.T) {
	e := sim.NewEngine(1)
	_, eps := testNet(t, e, 2, netsim.Myrinet(2), DefaultConfig())
	eps[1].Register(hEcho, func(p *sim.Proc, m Msg) (any, int) {
		return m.Arg.(int) * 2, 8
	})
	var got any
	var err error
	e.Spawn("caller", func(p *sim.Proc) {
		got, err = eps[0].Call(p, 1, hEcho, 21, 8)
		e.Stop()
	})
	if runErr := e.Run(); !errors.Is(runErr, sim.ErrStopped) {
		t.Fatal(runErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v", got)
	}
}

func TestSmallMessageMeetsNOWTarget(t *testing.T) {
	// The paper's goal: user-to-user small message in ≈10 µs. One-way
	// time = send overhead + wire + latency + recv overhead.
	e := sim.NewEngine(1)
	_, eps := testNet(t, e, 2, netsim.Myrinet(2), DefaultConfig())
	var oneWay sim.Duration
	eps[1].Register(hEcho, func(p *sim.Proc, m Msg) (any, int) {
		oneWay = p.Now() - m.Arg.(sim.Time)
		return nil, 0
	})
	e.Spawn("caller", func(p *sim.Proc) {
		_, _ = eps[0].Call(p, 1, hEcho, p.Now(), 16)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	// One-way includes handler-side recv overhead charged before the
	// handler runs: 3+wire(48B)+5+3 ≈ 11.6µs.
	if oneWay <= 0 || oneWay > 15*sim.Microsecond {
		t.Fatalf("one-way small message = %v, want ≈10µs", oneWay)
	}
}

func TestRetryRecoversFromLoss(t *testing.T) {
	e := sim.NewEngine(3)
	fcfg := netsim.Myrinet(2)
	fcfg.LossProb = 0.25
	_, eps := testNet(t, e, 2, fcfg, DefaultConfig())
	handled := 0
	eps[1].Register(hCount, func(p *sim.Proc, m Msg) (any, int) {
		handled++
		return handled, 4
	})
	ok := 0
	e.Spawn("caller", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if _, err := eps[0].Call(p, 1, hCount, i, 4); err == nil {
				ok++
			}
		}
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	if ok != 200 {
		t.Fatalf("ok = %d/200 with 25%% loss", ok)
	}
	if eps[0].Stats().Retries == 0 {
		t.Fatal("no retries recorded despite loss")
	}
	// Exactly-once: handler ran once per distinct request.
	if handled != 200 {
		t.Fatalf("handler executed %d times, want 200 (dedup failed)", handled)
	}
}

func TestDuplicateSuppressionReusesCachedReply(t *testing.T) {
	// Force duplicate delivery: drop only replies is hard to arrange via
	// random loss, so use heavy loss and verify handler executions equal
	// successful distinct requests while duplicates were seen.
	e := sim.NewEngine(11)
	fcfg := netsim.Myrinet(2)
	fcfg.LossProb = 0.4
	_, eps := testNet(t, e, 2, fcfg, DefaultConfig())
	executions := 0
	eps[1].Register(hCount, func(p *sim.Proc, m Msg) (any, int) {
		executions++
		return executions, 4
	})
	e.Spawn("caller", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			_, _ = eps[0].Call(p, 1, hCount, i, 4)
		}
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	st := eps[1].Stats()
	if st.Duplicates == 0 {
		t.Skip("randomness produced no duplicates; seed-dependent")
	}
	if executions != int(st.Handled) {
		t.Fatalf("executions %d != handled %d", executions, st.Handled)
	}
	if executions > 300 {
		t.Fatalf("handler executed %d times for 300 requests", executions)
	}
}

func TestCallToDetachedNodeTimesOut(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.RetryTimeout = 100 * sim.Microsecond
	cfg.MaxRetries = 3
	_, eps := testNet(t, e, 2, netsim.Myrinet(2), cfg)
	eps[1].Detach()
	var err error
	e.Spawn("caller", func(p *sim.Proc) {
		_, err = eps[0].Call(p, 1, hEcho, 1, 4)
		e.Stop()
	})
	if runErr := e.Run(); !errors.Is(runErr, sim.ErrStopped) {
		t.Fatal(runErr)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if eps[0].Stats().Failures != 1 {
		t.Fatalf("failures = %d", eps[0].Stats().Failures)
	}
}

func TestSendAsyncWindowLimitsOutstanding(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.Window = 4
	_, eps := testNet(t, e, 2, netsim.Myrinet(2), cfg)
	received := 0
	eps[1].Register(hCount, func(p *sim.Proc, m Msg) (any, int) {
		// Slow receiver: each message costs real CPU, so processing
		// serialises on the node and backpressure builds.
		eps[1].Node().CPU.Compute(p, 50*sim.Microsecond)
		received++
		return nil, 0
	})
	var postedAll sim.Time
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			eps[0].SendAsync(p, 1, hCount, i, 16)
		}
		postedAll = p.Now()
		eps[0].Flush(p)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	if received != 12 {
		t.Fatalf("received = %d", received)
	}
	// With window 4 and a 50µs/msg receiver, posting 12 must have
	// blocked: postedAll well beyond 12 bare send overheads (36µs).
	if postedAll < 300*sim.Microsecond {
		t.Fatalf("postedAll = %v; window did not apply backpressure", postedAll)
	}
}

func TestBufferOverflowDropsAndRetryRecovers(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.BufferSlots = 2
	cfg.Window = 32
	cfg.RecvOverhead = 20 * sim.Microsecond // slow protocol processing: arrivals outpace the drain
	cfg.RetryTimeout = 200 * sim.Microsecond
	cfg.MaxRetries = 50
	_, eps := testNet(t, e, 2, netsim.Myrinet(2), cfg)
	received := 0
	eps[1].Register(hCount, func(p *sim.Proc, m Msg) (any, int) {
		eps[1].Node().CPU.Compute(p, 30*sim.Microsecond) // slow drain
		received++
		return nil, 0
	})
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			eps[0].SendAsync(p, 1, hCount, i, 16)
		}
		eps[0].Flush(p)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	if received != 20 {
		t.Fatalf("received = %d", received)
	}
	if eps[1].Stats().Overflows == 0 {
		t.Fatal("expected receive-buffer overflows with 2 slots")
	}
}

func TestNestedCallFromHandler(t *testing.T) {
	// A handler on node 1 calls node 2 before replying — the pattern the
	// cooperative cache and xFS manager use constantly.
	e := sim.NewEngine(1)
	_, eps := testNet(t, e, 3, netsim.Myrinet(3), DefaultConfig())
	eps[2].Register(hEcho, func(p *sim.Proc, m Msg) (any, int) {
		return m.Arg.(int) + 100, 4
	})
	eps[1].Register(hNested, func(p *sim.Proc, m Msg) (any, int) {
		v, err := eps[1].Call(p, 2, hEcho, m.Arg, 4)
		if err != nil {
			return nil, 0
		}
		return v.(int) + 1, 4
	})
	var got any
	e.Spawn("caller", func(p *sim.Proc) {
		got, _ = eps[0].Call(p, 1, hNested, 5, 4)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	if got != 106 {
		t.Fatalf("got %v, want 106", got)
	}
}

func TestUnregisteredHandlerActsAsAck(t *testing.T) {
	e := sim.NewEngine(1)
	_, eps := testNet(t, e, 2, netsim.Myrinet(2), DefaultConfig())
	var err error
	e.Spawn("caller", func(p *sim.Proc) {
		err = eps[0].Send(p, 1, HandlerID(99), nil, 4)
		e.Stop()
	})
	if runErr := e.Run(); !errors.Is(runErr, sim.ErrStopped) {
		t.Fatal(runErr)
	}
	if err != nil {
		t.Fatalf("send to unregistered handler: %v", err)
	}
}

func TestOverheadChargedToCPU(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := HPAMConfig()
	_, eps := testNet(t, e, 2, netsim.FDDI100(2), cfg)
	eps[1].Register(hEcho, func(p *sim.Proc, m Msg) (any, int) { return nil, 0 })
	e.Spawn("caller", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			_, _ = eps[0].Call(p, 1, hEcho, i, 16)
		}
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	// Sender CPU: 10 requests × 8µs send + 10 replies received × 8µs recv.
	sendCPU := eps[0].Node().CPU.BusyTime()
	if sendCPU < 160*sim.Microsecond {
		t.Fatalf("sender CPU busy = %v, want ≥160µs", sendCPU)
	}
	// Receiver CPU: 10 × (8µs recv + 8µs reply send).
	recvCPU := eps[1].Node().CPU.BusyTime()
	if recvCPU < 160*sim.Microsecond {
		t.Fatalf("receiver CPU busy = %v, want ≥160µs", recvCPU)
	}
}

func TestConfigNormalisation(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	fab, err := netsim.New(e, netsim.Myrinet(1))
	if err != nil {
		t.Fatal(err)
	}
	nd := node.New(e, node.DefaultConfig(0))
	ep := NewEndpoint(e, nd, fab, Config{})
	cfg := ep.Config()
	if cfg.BufferSlots <= 0 || cfg.Window <= 0 || cfg.RetryTimeout <= 0 || cfg.MaxRetries <= 0 {
		t.Fatalf("config not normalised: %+v", cfg)
	}
	if ep.ID() != 0 {
		t.Fatalf("ID = %d", ep.ID())
	}
}

func TestPresetConfigs(t *testing.T) {
	if c := HPAMConfig(); c.SendOverhead != 8*sim.Microsecond {
		t.Fatalf("HPAM = %+v", c)
	}
	if c := CM5Config(); c.RecvOverhead != 1700*sim.Nanosecond {
		t.Fatalf("CM5 = %+v", c)
	}
	if c := DefaultConfig(); c.SendOverhead != 3*sim.Microsecond {
		t.Fatalf("Default = %+v", c)
	}
}
