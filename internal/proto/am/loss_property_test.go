package am

import (
	"errors"
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/sim"
)

func newTestNode(e *sim.Engine, id netsim.NodeID) *node.Node {
	return node.New(e, node.DefaultConfig(id))
}

// TestExactlyOnceUnderLossProperty: across seeds and loss rates, every
// Call eventually succeeds, the handler runs exactly once per distinct
// request, and replies match — the reliability contract the rest of the
// system is built on.
func TestExactlyOnceUnderLossProperty(t *testing.T) {
	for _, loss := range []float64{0.05, 0.2, 0.4} {
		for seed := int64(1); seed <= 4; seed++ {
			loss, seed := loss, seed
			t.Run("", func(t *testing.T) {
				e := sim.NewEngine(seed)
				fcfg := netsim.Myrinet(2)
				fcfg.LossProb = loss
				fab, err := netsim.New(e, fcfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.MaxRetries = 30
				a := NewEndpoint(e, newTestNode(e, 0), fab, cfg)
				b := NewEndpoint(e, newTestNode(e, 1), fab, cfg)
				executions := map[int]int{}
				b.Register(hEcho, func(p *sim.Proc, m Msg) (any, int) {
					i := m.Arg.(int)
					executions[i]++
					return i * 3, 8
				})
				const calls = 150
				ok := 0
				e.Spawn("caller", func(p *sim.Proc) {
					for i := 0; i < calls; i++ {
						got, err := a.Call(p, 1, hEcho, i, 16)
						if err == nil {
							if got != i*3 {
								t.Errorf("call %d: got %v", i, got)
							}
							ok++
						}
					}
					e.Stop()
				})
				if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
					t.Fatal(err)
				}
				if ok != calls {
					t.Fatalf("loss=%.2f seed=%d: %d/%d calls succeeded", loss, seed, ok, calls)
				}
				for i, n := range executions {
					if n != 1 {
						t.Fatalf("request %d executed %d times", i, n)
					}
				}
				if len(executions) != calls {
					t.Fatalf("%d distinct executions for %d calls", len(executions), calls)
				}
			})
		}
	}
}

// TestDetachFailsOutstandingSends: a crashed endpoint must fail its
// pending traffic promptly so orchestration layers unwedge.
func TestDetachFailsOutstandingSends(t *testing.T) {
	e := sim.NewEngine(1)
	fab, err := netsim.New(e, netsim.ATM155(2))
	if err != nil {
		t.Fatal(err)
	}
	a := NewEndpoint(e, newTestNode(e, 0), fab, DefaultConfig())
	NewEndpoint(e, newTestNode(e, 1), fab, DefaultConfig())
	var flushDone sim.Time
	e.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			a.SendAsync(p, 1, hEcho, i, 64<<10)
		}
		a.Flush(p)
		flushDone = p.Now()
		e.Stop()
	})
	e.At(2*sim.Millisecond, func() { a.Detach() })
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	if flushDone == 0 {
		t.Fatal("Flush never returned after Detach")
	}
	if flushDone > 10*sim.Millisecond {
		t.Fatalf("Flush unwedged only at %v", flushDone)
	}
	if a.Stats().Failures == 0 {
		t.Fatal("no failures recorded for the dead endpoint")
	}
	// Sends after detach fail synchronously.
	e2 := sim.NewEngine(1)
	fab2, _ := netsim.New(e2, netsim.ATM155(2))
	c := NewEndpoint(e2, newTestNode(e2, 0), fab2, DefaultConfig())
	NewEndpoint(e2, newTestNode(e2, 1), fab2, DefaultConfig())
	c.Detach()
	var postErr error
	e2.Spawn("s", func(p *sim.Proc) {
		postErr = c.Send(p, 1, hEcho, 1, 8)
		e2.Stop()
	})
	if err := e2.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	if postErr == nil {
		t.Fatal("send from detached endpoint succeeded")
	}
}
