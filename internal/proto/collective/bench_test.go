package collective

import (
	"testing"

	"github.com/nowproject/now/internal/sim"
)

// benchComm runs b.N rounds of op on n ranks and reports virtual
// microseconds per operation alongside the wall-clock figures.
func benchComm(b *testing.B, n int, op func(c *Comm, p *sim.Proc, rank int) error) {
	e := sim.NewEngine(1)
	defer e.Close()
	_, _, c := rig(b, e, n, DefaultConfig())
	rounds := b.N
	var procErr error
	var virtEnd sim.Time // last rank's completion, not engine drain time
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < rounds; i++ {
				if err := op(c, p, r); err != nil {
					procErr = err
					return
				}
			}
			if p.Now() > virtEnd {
				virtEnd = p.Now()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if procErr != nil {
		b.Fatal(procErr)
	}
	b.ReportMetric(float64(virtEnd)/float64(rounds)/1e3, "virt-µs/op")
}

// BenchmarkBarrier1024 is the scale-study headline: one barrier across
// 1,024 ranks, the configuration the ISSUE's acceptance gate names.
func BenchmarkBarrier1024(b *testing.B) {
	benchComm(b, 1024, func(c *Comm, p *sim.Proc, rank int) error {
		return c.Barrier(p, rank)
	})
}

// BenchmarkAllToAll128 exchanges 1 KiB blocks between all pairs of 128
// ranks — 16,256 messages per operation.
func BenchmarkAllToAll128(b *testing.B) {
	benchComm(b, 128, func(c *Comm, p *sim.Proc, rank int) error {
		return c.AllToAll(p, rank, 1024)
	})
}
