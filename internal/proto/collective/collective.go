// Package collective layers MPI-style collective operations — barrier,
// broadcast, reduce, all-to-all — over the Active Message endpoints.
// The Cluster Computing White Paper (Baker et al.) identifies this
// layer as what made NOW-class clusters usable for parallel programs;
// here it is the workload that drives the 32→1,024-node scale study
// (experiment SC1).
//
// Topology: ranks are arranged in an implicit k-ary tree in heap
// layout (parent of r is (r-1)/k, children are k·r+1 … k·r+k), so no
// topology state is exchanged and every rank computes its neighbours
// in O(1). Barrier, broadcast and reduce climb or descend this tree;
// all-to-all uses the classic shift schedule (round i: rank r sends to
// (r+i) mod n), which spreads load so no receiver sees more than one
// block per round.
//
// Correctness under the AM layer's retry machinery: requests can be
// retried and delivered in any order, so nothing here assumes FIFO.
// Barrier progress uses fungible credit counters (an arrive credit
// from a child for barrier n cannot be confused with one for n+1,
// because the parent consumes exactly one credit per child per
// barrier and a child cannot enter barrier n+1 before its parent
// released barrier n). Broadcast, reduce and all-to-all tag every
// message with the caller's per-operation epoch and buffer early
// arrivals in per-epoch accumulators.
package collective

import (
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// Config parameterises a communicator.
type Config struct {
	// Arity is the tree fan-out k for barrier/broadcast/reduce.
	// Default 4: on a switched fabric the gather at each parent
	// serialises on its receive link, so moderate fan-out beats both a
	// binary tree (deeper) and a star (incast at the root).
	Arity int
	// Base is the first of the five consecutive AM handler IDs the
	// communicator registers on every endpoint. Default 0x40, clear of
	// the single-digit IDs the experiments use.
	Base am.HandlerID
	// ElemBytes is the wire size of one reduce element. Default 8.
	ElemBytes int
}

// DefaultConfig returns the default communicator parameters.
func DefaultConfig() Config {
	return Config{Arity: 4, Base: 0x40, ElemBytes: 8}
}

// Handler ID offsets from Config.Base.
const (
	hArrive  = 0 // barrier: child→parent arrive credit
	hRelease = 1 // barrier: parent→child release credit
	hBcast   = 2 // broadcast: parent→child value
	hReduce  = 3 // reduce: child→parent partial sum
	hA2A     = 4 // all-to-all: one block
	handlers = 5
)

// bcastMsg carries a broadcast value down the tree.
type bcastMsg struct {
	epoch uint64
	val   any
	bytes int
}

// redMsg carries a subtree's partial sum up the tree.
type redMsg struct {
	epoch uint64
	sum   int64
}

// a2aMsg tags an all-to-all block with its sender's epoch.
type a2aMsg struct {
	epoch uint64
}

// redAcc accumulates one reduce epoch at one rank.
type redAcc struct {
	sum int64
	n   int
}

// rankState is the per-rank collective state touched by handlers and
// by the rank's own operation calls.
type rankState struct {
	arrived  int // barrier credits received from children (fungible)
	released int // barrier credits received from the parent
	barSig   *sim.Signal

	bcastEpoch uint64
	bcast      map[uint64]bcastMsg // early/buffered broadcast values
	bcastSig   *sim.Signal

	redEpoch uint64
	red      map[uint64]*redAcc
	redSig   *sim.Signal

	a2aEpoch uint64
	a2aGot   map[uint64]int // blocks received per epoch
	a2aSig   *sim.Signal
}

// Comm is a communicator binding one AM endpoint per rank. Rank i is
// eps[i]; rank 0 is the root of every tree-shaped operation.
//
// A Comm may be one partition's fragment of a cluster-wide communicator
// (NewPart): it knows every rank's fabric address, but holds endpoints
// and rank state only for the ranks its partition owns. The tree
// arithmetic is identical in every fragment — it depends only on the
// total rank count — and the AM layer routes parent/child messages
// across partitions transparently, so the collective algorithms are
// unchanged.
type Comm struct {
	cfg    Config
	eng    *sim.Engine
	n      int             // total ranks, across all partitions
	nodeOf []netsim.NodeID // rank → fabric address, for all ranks
	eps    []*am.Endpoint  // nil for ranks owned by other partitions
	st     []*rankState    // nil for ranks owned by other partitions
	m      *metrics        // nil unless Instrument attached a registry
}

// New builds a communicator over eps (rank i = eps[i]) and registers
// its handlers on every endpoint. At least two ranks are required.
func New(e *sim.Engine, eps []*am.Endpoint, cfg Config) (*Comm, error) {
	nodeOf := make([]netsim.NodeID, len(eps))
	for i, ep := range eps {
		if ep == nil {
			return nil, fmt.Errorf("collective: rank %d has no endpoint", i)
		}
		nodeOf[i] = ep.ID()
	}
	return NewPart(e, eps, nodeOf, cfg)
}

// NewPart builds one partition's fragment of a cluster-wide
// communicator. nodeOf maps every rank (0..n-1, across all partitions)
// to its fabric address; eps holds the same ranks, with nil for every
// rank another partition owns. Handlers and rank state are created only
// for local ranks, on this partition's engine, and operations
// (Barrier, Broadcast, ...) may only be invoked for local ranks — the
// processes of remote ranks live on other engines and call into their
// own fragments.
func NewPart(e *sim.Engine, eps []*am.Endpoint, nodeOf []netsim.NodeID, cfg Config) (*Comm, error) {
	if len(eps) != len(nodeOf) {
		return nil, fmt.Errorf("collective: %d endpoints for %d ranks", len(eps), len(nodeOf))
	}
	if len(nodeOf) < 2 {
		return nil, fmt.Errorf("collective: %d ranks", len(nodeOf))
	}
	if cfg.Arity <= 0 {
		cfg.Arity = 4
	}
	if cfg.Base == 0 {
		cfg.Base = 0x40
	}
	if cfg.ElemBytes <= 0 {
		cfg.ElemBytes = 8
	}
	c := &Comm{cfg: cfg, eng: e, n: len(nodeOf), nodeOf: nodeOf, eps: eps, st: make([]*rankState, len(eps))}
	for i := range c.st {
		if eps[i] == nil {
			continue
		}
		c.st[i] = &rankState{
			barSig:   sim.NewSignal(e, fmt.Sprintf("coll%d/bar", i)),
			bcast:    make(map[uint64]bcastMsg),
			bcastSig: sim.NewSignal(e, fmt.Sprintf("coll%d/bcast", i)),
			red:      make(map[uint64]*redAcc),
			redSig:   sim.NewSignal(e, fmt.Sprintf("coll%d/red", i)),
			a2aGot:   make(map[uint64]int),
			a2aSig:   sim.NewSignal(e, fmt.Sprintf("coll%d/a2a", i)),
		}
	}
	for i, ep := range eps {
		if ep == nil {
			continue
		}
		st := c.st[i]
		ep.Register(cfg.Base+hArrive, func(p *sim.Proc, m am.Msg) (any, int) {
			st.arrived++
			st.barSig.Broadcast()
			return nil, 0
		})
		ep.Register(cfg.Base+hRelease, func(p *sim.Proc, m am.Msg) (any, int) {
			st.released++
			st.barSig.Broadcast()
			return nil, 0
		})
		ep.Register(cfg.Base+hBcast, func(p *sim.Proc, m am.Msg) (any, int) {
			msg := m.Arg.(bcastMsg)
			st.bcast[msg.epoch] = msg
			st.bcastSig.Broadcast()
			return nil, 0
		})
		ep.Register(cfg.Base+hReduce, func(p *sim.Proc, m am.Msg) (any, int) {
			msg := m.Arg.(redMsg)
			acc := st.red[msg.epoch]
			if acc == nil {
				acc = &redAcc{}
				st.red[msg.epoch] = acc
			}
			acc.sum += msg.sum
			acc.n++
			st.redSig.Broadcast()
			return nil, 0
		})
		ep.Register(cfg.Base+hA2A, func(p *sim.Proc, m am.Msg) (any, int) {
			st.a2aGot[m.Arg.(a2aMsg).epoch]++
			st.a2aSig.Broadcast()
			return nil, 0
		})
	}
	return c, nil
}

// Size returns the number of ranks (across all partitions).
func (c *Comm) Size() int { return c.n }

// parent returns rank r's tree parent (heap layout).
func (c *Comm) parent(r int) int { return (r - 1) / c.cfg.Arity }

// children appends rank r's tree children to dst.
func (c *Comm) children(r int, dst []int) []int {
	first := c.cfg.Arity*r + 1
	for ch := first; ch < first+c.cfg.Arity && ch < c.n; ch++ {
		dst = append(dst, ch)
	}
	return dst
}

// childCount returns the number of tree children of rank r.
func (c *Comm) childCount(r int) int {
	first := c.cfg.Arity*r + 1
	if first >= c.n {
		return 0
	}
	n := c.n - first
	if n > c.cfg.Arity {
		n = c.cfg.Arity
	}
	return n
}

// node maps a rank to its fabric address (works for remote ranks too —
// this is how fragments send to parents and children they do not own).
func (c *Comm) node(r int) netsim.NodeID { return c.nodeOf[r] }

// Depth returns the tree depth (edges from the deepest rank to the
// root) — the d in the LogP-style latency predictions.
func (c *Comm) Depth() int {
	d := 0
	for r := c.n - 1; r != 0; r = c.parent(r) {
		d++
	}
	return d
}

// Barrier blocks the calling rank until every rank has entered the
// barrier. Gather: each rank waits for one arrive credit per child,
// then sends its own credit to its parent. Release: the root, having
// seen the whole tree arrive, sends release credits down; each rank
// forwards to its children as soon as its own release lands. Credits
// are fungible counters, so AM retries and reordering cannot confuse
// consecutive barriers (see the package comment).
func (c *Comm) Barrier(p *sim.Proc, rank int) error {
	start := c.eng.Now()
	st := c.st[rank]
	ep := c.eps[rank]
	nc := c.childCount(rank)
	for st.arrived < nc {
		st.barSig.Wait(p)
	}
	st.arrived -= nc
	if rank != 0 {
		if err := ep.Send(p, c.node(c.parent(rank)), c.cfg.Base+hArrive, nil, 0); err != nil {
			return err
		}
		for st.released < 1 {
			st.barSig.Wait(p)
		}
		st.released--
	}
	var buf [16]int
	for _, ch := range c.children(rank, buf[:0]) {
		if err := ep.Send(p, c.node(ch), c.cfg.Base+hRelease, nil, 0); err != nil {
			return err
		}
	}
	if m := c.m; m != nil {
		m.barriers.Inc()
		m.barrierNs.Observe(int64(c.eng.Now() - start))
	}
	return nil
}

// Broadcast distributes rank 0's value to every rank; every rank
// returns the value. bytes is the payload size charged on the wire
// (only rank 0's value and bytes are used). Values flow down the tree
// tagged with the per-rank broadcast epoch, so a fast subtree one
// operation ahead cannot corrupt a slow one.
func (c *Comm) Broadcast(p *sim.Proc, rank int, val any, bytes int) (any, error) {
	start := c.eng.Now()
	st := c.st[rank]
	epoch := st.bcastEpoch
	st.bcastEpoch++
	if rank != 0 {
		for {
			if msg, ok := st.bcast[epoch]; ok {
				delete(st.bcast, epoch)
				val, bytes = msg.val, msg.bytes
				break
			}
			st.bcastSig.Wait(p)
		}
	}
	ep := c.eps[rank]
	var buf [16]int
	for _, ch := range c.children(rank, buf[:0]) {
		if err := ep.Send(p, c.node(ch), c.cfg.Base+hBcast, bcastMsg{epoch: epoch, val: val, bytes: bytes}, bytes); err != nil {
			return nil, err
		}
	}
	if m := c.m; m != nil {
		m.broadcasts.Inc()
		m.broadcastNs.Observe(int64(c.eng.Now() - start))
	}
	return val, nil
}

// Reduce sums every rank's contribution up the tree. Rank 0 returns
// (total, true); other ranks return (0, false) once their subtree's
// partial sum has been accepted by their parent.
func (c *Comm) Reduce(p *sim.Proc, rank int, v int64) (int64, bool, error) {
	start := c.eng.Now()
	st := c.st[rank]
	epoch := st.redEpoch
	st.redEpoch++
	nc := c.childCount(rank)
	acc := st.red[epoch]
	if acc == nil {
		acc = &redAcc{}
		st.red[epoch] = acc
	}
	acc.sum += v
	for acc.n < nc {
		st.redSig.Wait(p)
	}
	delete(st.red, epoch)
	if m := c.m; m != nil {
		defer func() {
			m.reduces.Inc()
			m.reduceNs.Observe(int64(c.eng.Now() - start))
		}()
	}
	if rank == 0 {
		return acc.sum, true, nil
	}
	err := c.eps[rank].Send(p, c.node(c.parent(rank)), c.cfg.Base+hReduce, redMsg{epoch: epoch, sum: acc.sum}, c.cfg.ElemBytes)
	return 0, false, err
}

// AllReduce is Reduce followed by Broadcast of the total: every rank
// returns the global sum.
func (c *Comm) AllReduce(p *sim.Proc, rank int, v int64) (int64, error) {
	total, _, err := c.Reduce(p, rank, v)
	if err != nil {
		return 0, err
	}
	out, err := c.Broadcast(p, rank, total, c.cfg.ElemBytes)
	if err != nil {
		return 0, err
	}
	return out.(int64), nil
}

// AllToAll exchanges one block of blockBytes between every pair of
// ranks using the pairwise-exchange shift schedule: in round i the
// caller sends to (rank+i) mod n, so each round forms a perfect
// permutation and no receive link sees more than one block per round.
// Each round's send blocks until acknowledged — that per-round
// backpressure is what keeps the schedule in lockstep: posting all
// n-1 blocks asynchronously lets fast ranks race ahead and pile tens
// of concurrent senders onto one receiver, overflowing its finite AM
// buffer and paying the loss-recovery timeout. The call returns when
// the caller's blocks are all acknowledged and its n-1 inbound blocks
// for this epoch have arrived.
func (c *Comm) AllToAll(p *sim.Proc, rank int, blockBytes int) error {
	start := c.eng.Now()
	st := c.st[rank]
	ep := c.eps[rank]
	n := c.n
	epoch := st.a2aEpoch
	st.a2aEpoch++
	msg := a2aMsg{epoch: epoch}
	for i := 1; i < n; i++ {
		if err := ep.Send(p, c.node((rank+i)%n), c.cfg.Base+hA2A, msg, blockBytes); err != nil {
			// Bail before waiting on inbound blocks: the exchange is
			// already broken, and blocks that will never come must not
			// hang the caller.
			return fmt.Errorf("collective: all-to-all rank %d round %d: %w", rank, i, err)
		}
	}
	for st.a2aGot[epoch] < n-1 {
		st.a2aSig.Wait(p)
	}
	delete(st.a2aGot, epoch)
	if m := c.m; m != nil {
		m.allToAlls.Inc()
		m.allToAllNs.Observe(int64(c.eng.Now() - start))
	}
	return nil
}
