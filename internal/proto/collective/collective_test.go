package collective

import (
	"bytes"
	"errors"
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// rig builds n nodes with AM endpoints on a Myrinet fabric and a
// communicator over them.
func rig(t testing.TB, e *sim.Engine, n int, ccfg Config) (*netsim.Fabric, []*am.Endpoint, *Comm) {
	t.Helper()
	fab, err := netsim.New(e, netsim.Myrinet(n))
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*am.Endpoint, n)
	for i := 0; i < n; i++ {
		nd := node.New(e, node.DefaultConfig(netsim.NodeID(i)))
		eps[i] = am.NewEndpoint(e, nd, fab, am.DefaultConfig())
	}
	c, err := New(e, eps, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return fab, eps, c
}

func TestBarrierSynchronises(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	_, _, c := rig(t, e, 10, Config{Arity: 3})
	enter := make([]sim.Time, 10)
	exit := make([]sim.Time, 10)
	var procErr error
	for r := 0; r < 10; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			// Stagger entry so the barrier actually has to hold early
			// arrivals back.
			p.Sleep(sim.Duration(r) * 100 * sim.Microsecond)
			enter[r] = p.Now()
			if err := c.Barrier(p, r); err != nil {
				procErr = err
			}
			exit[r] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
	var lastEnter, firstExit sim.Time
	firstExit = sim.MaxTime
	for r := 0; r < 10; r++ {
		if enter[r] > lastEnter {
			lastEnter = enter[r]
		}
		if exit[r] < firstExit {
			firstExit = exit[r]
		}
	}
	if firstExit < lastEnter {
		t.Fatalf("a rank left the barrier at %v before the last rank entered at %v", firstExit, lastEnter)
	}
}

func TestBroadcastDeliversRootValue(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	_, _, c := rig(t, e, 9, Config{Arity: 2})
	const rounds = 3
	got := make([][]any, 9)
	var procErr error
	for r := 0; r < 9; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < rounds; i++ {
				v, err := c.Broadcast(p, r, 100+i, 8)
				if err != nil {
					procErr = err
					return
				}
				got[r] = append(got[r], v)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
	for r := 0; r < 9; r++ {
		if len(got[r]) != rounds {
			t.Fatalf("rank %d finished %d/%d broadcasts", r, len(got[r]), rounds)
		}
		for i, v := range got[r] {
			if v != 100+i {
				t.Fatalf("rank %d round %d got %v, want %d", r, i, v, 100+i)
			}
		}
	}
}

func TestReduceSumsContributions(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	const n = 13
	_, _, c := rig(t, e, n, DefaultConfig())
	const rounds = 3
	var totals []int64
	var procErr error
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < rounds; i++ {
				total, root, err := c.Reduce(p, r, int64(r+1))
				if err != nil {
					procErr = err
					return
				}
				if root {
					totals = append(totals, total)
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
	if len(totals) != rounds {
		t.Fatalf("root saw %d totals, want %d", len(totals), rounds)
	}
	for i, total := range totals {
		if total != n*(n+1)/2 {
			t.Fatalf("round %d total = %d, want %d", i, total, n*(n+1)/2)
		}
	}
}

func TestAllReduceGivesEveryRankTheTotal(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	const n = 7
	_, _, c := rig(t, e, n, DefaultConfig())
	got := make([]int64, n)
	var procErr error
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			v, err := c.AllReduce(p, r, int64(1<<r))
			if err != nil {
				procErr = err
				return
			}
			got[r] = v
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
	for r, v := range got {
		if v != (1<<n)-1 {
			t.Fatalf("rank %d got %d, want %d", r, v, (1<<n)-1)
		}
	}
}

func TestAllToAllExchangesEveryPair(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	const n = 8
	_, eps, c := rig(t, e, n, DefaultConfig())
	doneRounds := make([]int, n)
	var procErr error
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < 2; i++ {
				if err := c.AllToAll(p, r, 1024); err != nil {
					procErr = err
					return
				}
				doneRounds[r]++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
	for r, d := range doneRounds {
		if d != 2 {
			t.Fatalf("rank %d completed %d/2 exchanges", r, d)
		}
	}
	for r, ep := range eps {
		if f := ep.Stats().Failures; f != 0 {
			t.Fatalf("rank %d: %d failures", r, f)
		}
	}
}

func TestAllToAllFailsWhenPeerUnreachable(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	const n = 4
	fab, _, c := rig(t, e, n, DefaultConfig())
	fab.Partition([]netsim.NodeID{3}) // rank 3 unreachable
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			errs[r] = c.AllToAll(p, r, 256)
		})
	}
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) && err != nil {
		t.Fatal(err)
	}
	// Rank 0 cannot reach rank 3; its exchange must report failed
	// sends rather than hang (the engine drains because every rank
	// either errors out or parks forever and the run hits quiescence...
	// which it cannot while retries pend — so bound the run).
	if errs[0] == nil {
		t.Fatal("rank 0 exchange succeeded across a partition")
	}
}

// collectiveScenario runs a fixed workload (barriers, broadcasts,
// reduces, one all-to-all) on n ranks and returns the byte-stable
// metrics export.
func collectiveScenario(t testing.TB, n int) []byte {
	e := sim.NewEngine(42)
	defer e.Close()
	reg := obs.NewRegistry()
	e.Observe(reg)
	fab, eps, c := func() (*netsim.Fabric, []*am.Endpoint, *Comm) {
		fab, err := netsim.New(e, netsim.Myrinet(n))
		if err != nil {
			t.Fatal(err)
		}
		eps := make([]*am.Endpoint, n)
		for i := 0; i < n; i++ {
			nd := node.New(e, node.DefaultConfig(netsim.NodeID(i)))
			eps[i] = am.NewEndpoint(e, nd, fab, am.DefaultConfig())
		}
		c, err := New(e, eps, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return fab, eps, c
	}()
	fab.Instrument(reg)
	c.Instrument(reg)
	_ = eps
	var procErr error
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				if err := c.Barrier(p, r); err != nil {
					procErr = err
					return
				}
			}
			if _, err := c.AllReduce(p, r, int64(r)); err != nil {
				procErr = err
				return
			}
			if err := c.AllToAll(p, r, 512); err != nil {
				procErr = err
				return
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
	var buf bytes.Buffer
	if err := reg.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterminismGolden32 and ...128 are the collective goldens: the
// same seed must give a byte-identical metrics export, so any hidden
// map-order or wall-clock dependence in the collective layer (or the
// fabric under it) shows up as a diff.
func TestDeterminismGolden32(t *testing.T) {
	a := collectiveScenario(t, 32)
	b := collectiveScenario(t, 32)
	if !bytes.Equal(a, b) {
		t.Fatal("32-rank collective run is not byte-deterministic")
	}
}

func TestDeterminismGolden128(t *testing.T) {
	a := collectiveScenario(t, 128)
	b := collectiveScenario(t, 128)
	if !bytes.Equal(a, b) {
		t.Fatal("128-rank collective run is not byte-deterministic")
	}
}

// TestBarrier1024NoOverflows is the AM-level scale gate: a 1,024-node
// barrier must complete with zero receive-buffer overflows under the
// default window — the k-ary gather bounds each node's in-flight
// arrivals to its child count plus protocol acks, far below
// BufferSlots.
func TestBarrier1024NoOverflows(t *testing.T) {
	if testing.Short() {
		t.Skip("1,024-node barrier in -short mode")
	}
	e := sim.NewEngine(7)
	defer e.Close()
	const n = 1024
	_, eps, c := rig(t, e, n, DefaultConfig())
	var procErr error
	done := 0
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < 2; i++ {
				if err := c.Barrier(p, r); err != nil {
					procErr = err
					return
				}
			}
			done++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
	if done != n {
		t.Fatalf("%d/%d ranks finished", done, n)
	}
	for r, ep := range eps {
		if o := ep.Stats().Overflows; o != 0 {
			t.Fatalf("rank %d overflowed %d arrivals", r, o)
		}
	}
}

func TestTreeDepthAndPredictions(t *testing.T) {
	if d := TreeDepth(1024, 4); d != 5 {
		t.Fatalf("depth(1024, 4) = %d, want 5", d)
	}
	if d := TreeDepth(2, 4); d != 1 {
		t.Fatalf("depth(2, 4) = %d, want 1", d)
	}
	acfg := am.DefaultConfig()
	fcfg := netsim.Myrinet(64)
	if PredictBarrier(acfg, fcfg, 64, 4) <= 0 {
		t.Fatal("barrier prediction not positive")
	}
	if PredictAllToAll(acfg, fcfg, 64, 1024) <= PredictAllToAll(acfg, fcfg, 32, 1024) {
		t.Fatal("all-to-all prediction does not grow with n")
	}
}
