package collective

import (
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// TestEpochIsolationUnderRetryChurn is the regression for the issue's
// suspicion that consecutive collectives on the same Comm could bleed
// into each other when AM-level retries reorder delivery: a reduce
// contribution from round i retransmitted late must never land in
// round i+1's accumulator, and a stale broadcast payload must never
// satisfy a later round's wait.
//
// Audit conclusion (the suspicion does NOT reproduce, and this test
// pins why): the AM layer delivers per-(src,dst) in FIFO order using
// endpoint-global, never-reused sequence numbers, so a retransmitted
// duplicate is filtered by the receiver's per-source cursor rather
// than re-executing its handler; and every collective message carries
// the round's epoch tag, so even across distinct source pairs a late
// arrival keys into its own round's state. Under heavy seeded loss
// (15%, enough that every run here observes hundreds of retries) each
// round's reduce total and broadcast value stay exact.
func TestEpochIsolationUnderRetryChurn(t *testing.T) {
	const (
		n      = 8
		rounds = 20
	)
	e := sim.NewEngine(7) // fixed seed: deterministic drop pattern
	defer e.Close()
	cfg := netsim.Myrinet(n)
	cfg.LossProb = 0.15
	fab, err := netsim.New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*am.Endpoint, n)
	for i := 0; i < n; i++ {
		nd := node.New(e, node.DefaultConfig(netsim.NodeID(i)))
		eps[i] = am.NewEndpoint(e, nd, fab, am.DefaultConfig())
	}
	c, err := New(e, eps, Config{Arity: 2})
	if err != nil {
		t.Fatal(err)
	}

	sums := make([][]int64, n)
	vals := make([][]any, n)
	var procErr error
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < rounds; i++ {
				// Stagger entries differently each round so fast ranks
				// are already deep into round i+1's sends while slow
				// ranks' round-i retransmissions are still in flight.
				p.Sleep(sim.Duration((r*31+i*17)%97) * 10 * sim.Microsecond)
				// Per-round, per-rank contribution: sums must match
				// exactly or a contribution crossed rounds.
				sum, err := c.AllReduce(p, r, int64(1000*i+r))
				if err != nil {
					procErr = err
					return
				}
				sums[r] = append(sums[r], sum)
				v, err := c.Broadcast(p, r, 5000+i, 64)
				if err != nil {
					procErr = err
					return
				}
				vals[r] = append(vals[r], v)
				if err := c.Barrier(p, r); err != nil {
					procErr = err
					return
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}

	for i := 0; i < rounds; i++ {
		want := int64(0)
		for r := 0; r < n; r++ {
			want += int64(1000*i + r)
		}
		for r := 0; r < n; r++ {
			if got := sums[r][i]; got != want {
				t.Fatalf("round %d rank %d: AllReduce = %d, want %d (cross-round contamination)", i, r, got, want)
			}
			if got := vals[r][i]; got != 5000+i {
				t.Fatalf("round %d rank %d: Broadcast = %v, want %d (stale payload)", i, r, got, 5000+i)
			}
		}
	}

	// The test only exercises the claim if loss actually forced
	// retransmissions; with LossProb=0.15 over 8 ranks × 20 rounds the
	// count is in the hundreds for any seed.
	var retries int64
	for _, ep := range eps {
		retries += ep.Stats().Retries
	}
	if retries == 0 {
		t.Fatal("no AM retries observed — the churn this regression depends on did not happen")
	}
	t.Logf("retries under churn: %d", retries)
}
