// In-network collectives: barrier, broadcast and reduce executed by the
// fabric's switches instead of by a software tree of endpoint-to-
// endpoint messages.
//
// The software tree (Comm.Barrier and friends) pays the full AM stack
// at every tree level: send overhead, wire, receive overhead, dispatch
// — times two for the gather and release waves. Switch-resident
// combining (SHARP-style, and the NOW lineage's "put the barrier in
// the switch" argument) collapses that: each rank injects ONE control
// message at its ingress switch, switches combine partial results on
// the up-path of the topology's CombineTree, and the root multicasts
// the result down, fanning out at every switch. Host CPUs pay exactly
// one send overhead and one receive overhead per operation regardless
// of cluster size; the remaining cost is switch-hop latency, which
// grows with the PHYSICAL tree depth, not with log_k(n) software-tree
// depth times the full AM round-trip.
//
// Cost model (documented modeling choice): the combine plane is a
// reliable dedicated channel inside the switches — combine/multicast
// hops pay serialization + wire latency per switch-to-switch edge but
// do not contend with data-plane traffic on internal links, and no
// loss is applied to them. The host edges DO touch the shared NIC
// links: injection occupies the rank's transmit link, and the final
// multicast hop reserves the rank's receive link, so a rank busy
// receiving bulk data delays its own barrier release exactly as a real
// NIC would.
//
// Epoch safety: every operation is tagged with the calling rank's
// per-operation epoch counter. All ranks execute the same collective
// sequence, so epoch tags agree across ranks, and switches accumulate
// per-(operation, epoch) — a fast subtree injecting epoch k+1 while a
// slow subtree is still combining epoch k lands in a different
// accumulator. The combine plane itself never retries or reorders; the
// AM layer's retry machinery is not involved.
package collective

import (
	"fmt"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// InNetConfig parameterises the in-network plane.
type InNetConfig struct {
	// CtrlBytes is the wire size of one combine-plane control message
	// (barrier credits, reduce partials, multicast headers). Default 16.
	CtrlBytes int
}

// swState is one switch's combine-plane state.
type swState struct {
	parent   int   // parent switch, -1 at the root
	kids     []int // participant-bearing child switches, ascending
	hosts    []int // ranks attached here, ascending
	expected int   // contributions per combine: len(kids) + len(hosts)

	bar map[uint64]int     // barrier: contributions seen, per epoch
	red map[uint64]*redAcc // reduce: partial sum + contributions, per epoch
}

// inState is one rank's in-network operation state.
type inState struct {
	barEpoch   uint64
	bcastEpoch uint64
	redEpoch   uint64
	barGot     map[uint64]bool
	bcastGot   map[uint64]bcastMsg
	redGot     map[uint64]int64
	sig        *sim.Signal
}

// innetMetrics holds the plane's collector handles; nil when not
// instrumented.
type innetMetrics struct {
	ops      *obs.Counter   // collective.innet.ops
	combines *obs.Counter   // collective.innet.combines
	opNs     *obs.Histogram // collective.innet.op.ns
}

// InNet executes collectives inside the fabric switches of a Comm's
// topology. Build one per communicator; operations mirror the Comm's
// (same epochs-per-rank discipline), so a program can run the same
// sequence through either plane and compare.
type InNet struct {
	c    *Comm
	eng  *sim.Engine
	fab  *netsim.Fabric
	ctrl int
	lat  sim.Duration

	sw       []*swState
	swOfRank []int // rank → ingress/egress switch
	rs       []*inState
	barView  map[int]map[uint64]int // per-switch barrier maps, combineUp's view
	reg      *obs.Registry
	m        *innetMetrics
}

// NewInNet builds the in-network plane over c's fabric topology. Every
// rank must be local (the combine plane shares switch state, so it runs
// single-engine — sharded fabrics reject topologies for the same
// reason). The flat crossbar degenerates to a single combining switch:
// one injection, one combine, one multicast.
func NewInNet(c *Comm, cfg InNetConfig) (*InNet, error) {
	if cfg.CtrlBytes <= 0 {
		cfg.CtrlBytes = 16
	}
	maxNode := netsim.NodeID(0)
	for r := 0; r < c.n; r++ {
		if c.eps[r] == nil {
			return nil, fmt.Errorf("collective: in-network plane needs every rank local; rank %d is remote", r)
		}
		if c.nodeOf[r] > maxNode {
			maxNode = c.nodeOf[r]
		}
	}
	fab := c.eps[0].Fabric()
	tree := netsim.CombineTreeOf(fab.Topology(), int(maxNode)+1)
	x := &InNet{
		c:    c,
		eng:  c.eng,
		fab:  fab,
		ctrl: cfg.CtrlBytes,
		lat:  fab.Config().Latency,
		sw:   make([]*swState, len(tree.Parent)),
		rs:   make([]*inState, c.n),

		swOfRank: make([]int, c.n),
	}
	for s := range x.sw {
		x.sw[s] = &swState{
			parent: tree.Parent[s],
			bar:    make(map[uint64]int),
			red:    make(map[uint64]*redAcc),
		}
	}
	for r := 0; r < c.n; r++ {
		s := tree.SwitchOf[c.nodeOf[r]]
		x.swOfRank[r] = s
		x.sw[s].hosts = append(x.sw[s].hosts, r)
		x.rs[r] = &inState{
			barGot:   make(map[uint64]bool),
			bcastGot: make(map[uint64]bcastMsg),
			redGot:   make(map[uint64]int64),
			sig:      sim.NewSignal(c.eng, fmt.Sprintf("innet%d", r)),
		}
	}
	// Participant-bearing switches only: a switch whose subtree holds no
	// ranks never combines and never multicasts. Mark host-bearing
	// switches and propagate toward the root, then wire child lists.
	active := make([]bool, len(x.sw))
	for s, st := range x.sw {
		if len(st.hosts) == 0 {
			continue
		}
		for q := s; q >= 0 && !active[q]; q = x.sw[q].parent {
			active[q] = true
		}
	}
	for s, st := range x.sw {
		if !active[s] || st.parent < 0 {
			continue
		}
		p := x.sw[st.parent]
		p.kids = append(p.kids, s)
	}
	for s, st := range x.sw {
		if active[s] {
			st.expected = len(st.kids) + len(st.hosts)
			if st.parent >= 0 && !active[st.parent] {
				return nil, fmt.Errorf("collective: combine tree inconsistent at switch %d", s)
			}
		}
	}
	return x, nil
}

// Instrument attaches metrics collectors and the span recorder. Call
// once per registry; a nil registry is a no-op.
//
// Metrics (names per docs/OBSERVABILITY.md):
//
//	collective.innet.ops       in-network operation completions (per rank)
//	collective.innet.combines  switch combine events (one per switch per
//	                           operation that saw all contributions)
//	collective.innet.op.ns     per-rank in-network operation latency
//
// Each operation also records one "innet.combine" span (node -1) from
// the root switch's combine to the last host delivery of the multicast.
func (x *InNet) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	x.reg = r
	x.m = &innetMetrics{
		ops:      r.Counter("collective.innet.ops"),
		combines: r.Counter("collective.innet.combines"),
		opNs:     r.Histogram("collective.innet.op.ns", obs.DurationBuckets),
	}
}

// swOf returns rank r's ingress/egress switch.
func (x *InNet) swOf(r int) int { return x.swOfRank[r] }

// hop is the switch-to-switch edge cost for a bytes-sized message.
func (x *InNet) hop(bytes int) sim.Duration {
	return x.fab.SerializationTime(bytes) + x.lat
}

// release tracks one multicast wave so its span can close at the last
// host delivery.
type release struct {
	span    obs.SpanID
	pending int
}

func (x *InNet) endRelease(rel *release) {
	rel.pending--
	if rel.pending == 0 {
		x.reg.EndSpan(rel.span)
	}
}

// inject charges the calling rank's side of an operation — send CPU
// overhead and transmit-link occupancy — and schedules the arrival of
// its contribution at the ingress switch.
func (x *InNet) inject(p *sim.Proc, rank, bytes int, arrive func(sw int)) {
	ep := x.c.eps[rank]
	ep.ChargeSend(p, bytes)
	x.fab.OccupyTx(p, x.c.node(rank), x.ctrl+bytes)
	sw := x.swOf(rank)
	x.eng.At(x.eng.Now()+x.lat, func() { arrive(sw) })
}

// combineUp runs one contribution into switch sw's per-epoch counter;
// when the switch has heard from its whole subtree it forwards one
// message up (or, at the root, starts the down wave via atRoot).
// Runs in event context.
func (x *InNet) combineUp(sw int, epoch uint64, counts map[int]map[uint64]int, bytes int, atRoot func(root int)) {
	s := x.sw[sw]
	c := counts[sw]
	if c == nil {
		c = make(map[uint64]int)
		counts[sw] = c
	}
	c[epoch]++
	if c[epoch] < s.expected {
		return
	}
	delete(c, epoch)
	if x.m != nil {
		x.m.combines.Inc()
	}
	if s.parent >= 0 {
		x.eng.At(x.eng.Now()+x.hop(x.ctrl+bytes), func() {
			x.combineUp(s.parent, epoch, counts, bytes, atRoot)
		})
		return
	}
	atRoot(sw)
}

// multicast fans the result out from switch sw: child switches hear it
// one hop later, and every attached rank's receive link is reserved for
// the final edge — that is where the combine plane meets the data
// plane. deliver runs at each rank's delivery time, in event context.
func (x *InNet) multicast(sw int, bytes int, rel *release, deliver func(rank int)) {
	s := x.sw[sw]
	now := x.eng.Now()
	for _, kid := range s.kids {
		k := kid
		x.eng.At(now+x.hop(x.ctrl+bytes), func() { x.multicast(k, bytes, rel, deliver) })
	}
	ser := x.fab.SerializationTime(x.ctrl + bytes)
	for _, h := range s.hosts {
		r := h
		done := x.fab.ReserveRx(x.c.node(r), now+x.lat, ser)
		x.eng.At(done, func() {
			deliver(r)
			x.endRelease(rel)
		})
	}
}

// startRelease opens the multicast-wave span at the root combine.
func (x *InNet) startRelease(op string) *release {
	rel := &release{pending: x.c.n}
	if x.reg != nil {
		rel.span = x.reg.StartSpan("innet.combine."+op, -1)
	}
	return rel
}

// finish records one rank's operation completion.
func (x *InNet) finish(start sim.Time) {
	if x.m != nil {
		x.m.ops.Inc()
		x.m.opNs.Observe(int64(x.eng.Now() - start))
	}
}

// barCounts adapts the per-switch barrier maps to combineUp's shape.
func (x *InNet) barCounts() map[int]map[uint64]int {
	// The maps live on the switches; expose them through one view built
	// at first use per InNet (not per call) to avoid allocation churn.
	if x.barView == nil {
		x.barView = make(map[int]map[uint64]int, len(x.sw))
		for s, st := range x.sw {
			x.barView[s] = st.bar
		}
	}
	return x.barView
}

// Barrier blocks the calling rank until every rank has entered the
// barrier, combining arrival credits at the switches and multicasting
// the release. One injected message and one received message per rank,
// total, regardless of cluster size.
func (x *InNet) Barrier(p *sim.Proc, rank int) error {
	start := x.eng.Now()
	st := x.rs[rank]
	epoch := st.barEpoch
	st.barEpoch++
	x.inject(p, rank, 0, func(sw int) {
		x.combineUp(sw, epoch, x.barCounts(), 0, func(root int) {
			rel := x.startRelease("barrier")
			x.multicast(root, 0, rel, func(r int) {
				rs := x.rs[r]
				rs.barGot[epoch] = true
				rs.sig.Broadcast()
			})
		})
	})
	for !st.barGot[epoch] {
		st.sig.Wait(p)
	}
	delete(st.barGot, epoch)
	x.c.eps[rank].ChargeRecv(p, 0)
	x.finish(start)
	return nil
}

// Broadcast distributes rank 0's value to every rank through the
// switch tree: the value climbs from rank 0's ingress switch to the
// root, then multicasts down. Every rank (rank 0 included) receives
// its copy off its own switch.
func (x *InNet) Broadcast(p *sim.Proc, rank int, val any, bytes int) (any, error) {
	start := x.eng.Now()
	st := x.rs[rank]
	epoch := st.bcastEpoch
	st.bcastEpoch++
	if rank == 0 {
		x.inject(p, rank, bytes, func(sw int) {
			x.climb(sw, bytes, func(root int) {
				rel := x.startRelease("broadcast")
				x.multicast(root, bytes, rel, func(r int) {
					rs := x.rs[r]
					rs.bcastGot[epoch] = bcastMsg{epoch: epoch, val: val, bytes: bytes}
					rs.sig.Broadcast()
				})
			})
		})
	}
	var got bcastMsg
	for {
		if msg, ok := st.bcastGot[epoch]; ok {
			delete(st.bcastGot, epoch)
			got = msg
			break
		}
		st.sig.Wait(p)
	}
	x.c.eps[rank].ChargeRecv(p, got.bytes)
	x.finish(start)
	return got.val, nil
}

// climb forwards a message from switch sw to the root without
// combining (broadcast's up-path: a single source, nothing to merge).
func (x *InNet) climb(sw int, bytes int, atRoot func(root int)) {
	s := x.sw[sw]
	if s.parent < 0 {
		atRoot(sw)
		return
	}
	x.eng.At(x.eng.Now()+x.hop(x.ctrl+bytes), func() { x.climb(s.parent, bytes, atRoot) })
}

// Reduce sums every rank's contribution at the switches. Rank 0
// returns (total, true) once the root's result has been delivered down
// its egress path; other ranks return (0, false) as soon as their
// contribution is on the wire, mirroring the software tree's
// semantics.
func (x *InNet) Reduce(p *sim.Proc, rank int, v int64) (int64, bool, error) {
	start := x.eng.Now()
	st := x.rs[rank]
	epoch := st.redEpoch
	st.redEpoch++
	x.inject(p, rank, x.c.cfg.ElemBytes, func(sw int) {
		x.reduceUp(sw, epoch, v, func(root int, total int64) {
			x.unicastDown(root, x.swOf(0), total, epoch)
		})
	})
	if rank != 0 {
		x.finish(start)
		return 0, false, nil
	}
	for {
		if total, ok := st.redGot[epoch]; ok {
			delete(st.redGot, epoch)
			x.c.eps[rank].ChargeRecv(p, x.c.cfg.ElemBytes)
			x.finish(start)
			return total, true, nil
		}
		st.sig.Wait(p)
	}
}

// AllReduce is the in-network plane's flagship: reduce up, multicast
// the total down, every rank gets the global sum with one injection
// and one delivery.
func (x *InNet) AllReduce(p *sim.Proc, rank int, v int64) (int64, error) {
	start := x.eng.Now()
	st := x.rs[rank]
	epoch := st.redEpoch
	st.redEpoch++
	x.inject(p, rank, x.c.cfg.ElemBytes, func(sw int) {
		x.reduceUp(sw, epoch, v, func(root int, total int64) {
			rel := x.startRelease("allreduce")
			x.multicast(root, x.c.cfg.ElemBytes, rel, func(r int) {
				rs := x.rs[r]
				rs.redGot[epoch] = total
				rs.sig.Broadcast()
			})
		})
	})
	for {
		if total, ok := st.redGot[epoch]; ok {
			delete(st.redGot, epoch)
			x.c.eps[rank].ChargeRecv(p, x.c.cfg.ElemBytes)
			x.finish(start)
			return total, nil
		}
		st.sig.Wait(p)
	}
}

// reduceUp accumulates one partial into switch sw for one epoch and
// forwards the subtree total when complete. Event context.
func (x *InNet) reduceUp(sw int, epoch uint64, v int64, atRoot func(root int, total int64)) {
	s := x.sw[sw]
	acc := s.red[epoch]
	if acc == nil {
		acc = &redAcc{}
		s.red[epoch] = acc
	}
	acc.sum += v
	acc.n++
	if acc.n < s.expected {
		return
	}
	total := acc.sum
	delete(s.red, epoch)
	if x.m != nil {
		x.m.combines.Inc()
	}
	if s.parent >= 0 {
		x.eng.At(x.eng.Now()+x.hop(x.ctrl+x.c.cfg.ElemBytes), func() {
			x.reduceUp(s.parent, epoch, total, atRoot)
		})
		return
	}
	atRoot(sw, total)
}

// unicastDown carries the reduce total from the root to rank 0's
// switch along the tree path, then reserves rank 0's receive link.
func (x *InNet) unicastDown(sw, dstSw int, total int64, epoch uint64) {
	if sw != dstSw {
		// Descend one level toward dstSw: find the kid on dstSw's
		// ancestor chain (the chain is short — physical tree depth).
		next := dstSw
		for x.sw[next].parent != sw {
			next = x.sw[next].parent
		}
		x.eng.At(x.eng.Now()+x.hop(x.ctrl+x.c.cfg.ElemBytes), func() {
			x.unicastDown(next, dstSw, total, epoch)
		})
		return
	}
	ser := x.fab.SerializationTime(x.ctrl + x.c.cfg.ElemBytes)
	done := x.fab.ReserveRx(x.c.node(0), x.eng.Now()+x.lat, ser)
	x.eng.At(done, func() {
		rs := x.rs[0]
		rs.redGot[epoch] = total
		rs.sig.Broadcast()
	})
}

// PredictInNetBarrier estimates the in-network barrier on a combine
// tree of physical depth d: one host injection (send overhead +
// serialization + latency), d combine hops up, d multicast hops down,
// one host delivery (latency + serialization + receive overhead). The
// contrast with PredictBarrier is the point: the software tree pays
// the full AM round-trip per LOGICAL tree level, twice.
func PredictInNetBarrier(amCfg am.Config, fabCfg netsim.Config, depth, ctrlBytes int) sim.Duration {
	if ctrlBytes <= 0 {
		ctrlBytes = 16
	}
	ser := serTime(fabCfg, ctrlBytes)
	edge := ser + fabCfg.Latency
	return amCfg.SendOverhead + ser + fabCfg.Latency + // inject
		2*sim.Duration(depth)*edge + // up + down switch hops
		fabCfg.Latency + ser + amCfg.RecvOverhead // final delivery
}
