package collective

import (
	"fmt"
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// rigTopo is rig over a Myrinet fabric with a switch topology plugged
// in, plus the in-network plane.
func rigTopo(t testing.TB, e *sim.Engine, n int, topoName string, ccfg Config) (*netsim.Fabric, *Comm, *InNet) {
	t.Helper()
	cfg := netsim.Myrinet(n)
	topo, err := netsim.TopoByName(topoName, n)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topo = topo
	fab, err := netsim.New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*am.Endpoint, n)
	for i := 0; i < n; i++ {
		nd := node.New(e, node.DefaultConfig(netsim.NodeID(i)))
		eps[i] = am.NewEndpoint(e, nd, fab, am.DefaultConfig())
	}
	c, err := New(e, eps, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	x, err := NewInNet(c, InNetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return fab, c, x
}

// TestInNetBarrierSynchronises checks the synchronisation property on
// all three topologies: no rank leaves before the last rank enters,
// across repeated barriers (epoch turnover included).
func TestInNetBarrierSynchronises(t *testing.T) {
	for _, topo := range []string{"crossbar", "fattree", "torus"} {
		t.Run(topo, func(t *testing.T) {
			e := sim.NewEngine(1)
			defer e.Close()
			const n, rounds = 18, 3
			_, _, x := rigTopo(t, e, n, topo, DefaultConfig())
			enter := make([][]sim.Time, rounds)
			exit := make([][]sim.Time, rounds)
			for i := range enter {
				enter[i] = make([]sim.Time, n)
				exit[i] = make([]sim.Time, n)
			}
			var procErr error
			for r := 0; r < n; r++ {
				r := r
				e.Spawn("rank", func(p *sim.Proc) {
					for i := 0; i < rounds; i++ {
						// Stagger entry differently per round.
						p.Sleep(sim.Duration((r*7+i*13)%n) * 50 * sim.Microsecond)
						enter[i][r] = p.Now()
						if err := x.Barrier(p, r); err != nil {
							procErr = err
							return
						}
						exit[i][r] = p.Now()
					}
				})
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if procErr != nil {
				t.Fatal(procErr)
			}
			for i := 0; i < rounds; i++ {
				var lastEnter, firstExit sim.Time
				firstExit = sim.MaxTime
				for r := 0; r < n; r++ {
					if enter[i][r] > lastEnter {
						lastEnter = enter[i][r]
					}
					if exit[i][r] < firstExit {
						firstExit = exit[i][r]
					}
				}
				if firstExit < lastEnter {
					t.Fatalf("round %d: a rank left at %v before the last entered at %v", i, firstExit, lastEnter)
				}
			}
		})
	}
}

// TestInNetValuesAcrossTopologies checks broadcast, reduce and
// all-reduce payload correctness through the switch combine plane.
func TestInNetValuesAcrossTopologies(t *testing.T) {
	for _, topo := range []string{"crossbar", "fattree", "torus"} {
		t.Run(topo, func(t *testing.T) {
			e := sim.NewEngine(1)
			defer e.Close()
			const n, rounds = 12, 4
			_, _, x := rigTopo(t, e, n, topo, DefaultConfig())
			var procErr error
			fail := func(format string, args ...any) {
				if procErr == nil {
					procErr = fmt.Errorf(format, args...)
				}
			}
			for r := 0; r < n; r++ {
				r := r
				e.Spawn("rank", func(p *sim.Proc) {
					for i := 0; i < rounds; i++ {
						bv, err := x.Broadcast(p, r, 1000+i, 64)
						if err != nil {
							fail("bcast: %v", err)
							return
						}
						if bv.(int) != 1000+i {
							fail("rank %d round %d: broadcast %v", r, i, bv)
							return
						}
						want := int64(0)
						for q := 0; q < n; q++ {
							want += int64(q*10 + i)
						}
						total, root, err := x.Reduce(p, r, int64(r*10+i))
						if err != nil {
							fail("reduce: %v", err)
							return
						}
						if r == 0 && (!root || total != want) {
							fail("round %d: reduce total %d (root=%v), want %d", i, total, root, want)
							return
						}
						all, err := x.AllReduce(p, r, int64(r+i))
						if err != nil {
							fail("allreduce: %v", err)
							return
						}
						wantAll := int64(n*(n-1)/2 + n*i)
						if all != wantAll {
							fail("rank %d round %d: allreduce %d, want %d", r, i, all, wantAll)
							return
						}
					}
				})
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if procErr != nil {
				t.Fatal(procErr)
			}
		})
	}
}

// TestInNetEpochSkew drives a fast subtree several operations ahead of
// a deliberately slowed one: per-(op, epoch) switch accumulators must
// keep the overlapping operations separate. Rank n-1 (a leaf in its
// own subtree on the fat-tree) sleeps before every operation, so the
// rest of the cluster's injections for epochs k+1, k+2 … pile into the
// switches while epoch k is still incomplete.
func TestInNetEpochSkew(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	const n, rounds = 16, 6
	_, _, x := rigTopo(t, e, n, "fattree", DefaultConfig())
	var procErr error
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < rounds; i++ {
				if r == n-1 {
					// Hold the slow subtree back long enough that every
					// other rank has already injected the next epoch.
					p.Sleep(5 * sim.Millisecond)
				}
				total, err := x.AllReduce(p, r, int64(100*i+r))
				if err != nil {
					procErr = err
					return
				}
				want := int64(100*i*n + n*(n-1)/2)
				if total != want {
					procErr = fmt.Errorf("rank %d epoch %d: allreduce %d, want %d", r, i, total, want)
					return
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
}

// TestInNetMetricsAndSpans pins the instrumented surface: per-rank op
// completions, at least one switch combine per op, and one
// innet.combine span per multicast wave, closed at the last delivery.
func TestInNetMetricsAndSpans(t *testing.T) {
	e := sim.NewEngine(1)
	defer e.Close()
	const n = 8
	r := obs.NewRegistry()
	e.Observe(r)
	_, _, x := rigTopo(t, e, n, "fattree", DefaultConfig())
	x.Instrument(r)
	var procErr error
	for rank := 0; rank < n; rank++ {
		rank := rank
		e.Spawn("rank", func(p *sim.Proc) {
			if err := x.Barrier(p, rank); err != nil {
				procErr = err
				return
			}
			if _, err := x.AllReduce(p, rank, 1); err != nil {
				procErr = err
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if procErr != nil {
		t.Fatal(procErr)
	}
	snap := r.Snapshot()
	byName := map[string]obs.Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	if got := byName["collective.innet.ops"].Value; got != 2*n {
		t.Fatalf("collective.innet.ops = %d, want %d", got, 2*n)
	}
	if got := byName["collective.innet.combines"].Value; got < 2 {
		t.Fatalf("collective.innet.combines = %d, want ≥ 2", got)
	}
	spans := r.Spans()
	open := 0
	names := map[string]int{}
	for _, s := range spans {
		names[s.Name]++
		if s.End == 0 {
			open++
		}
	}
	if names["innet.combine.barrier"] != 1 || names["innet.combine.allreduce"] != 1 {
		t.Fatalf("combine spans = %v", names)
	}
	if open != 0 {
		t.Fatalf("%d combine spans left open", open)
	}
}

// BenchmarkFatTreeBarrier1024 is the in-network counterpart of
// BenchmarkBarrier1024: one switch-combined barrier across 1,024 ranks
// on an 8-ary fat-tree (bench.sh records it in BENCH_sim.json).
func BenchmarkFatTreeBarrier1024(b *testing.B) {
	e := sim.NewEngine(1)
	defer e.Close()
	const n = 1024
	_, _, x := rigTopo(b, e, n, "fattree", DefaultConfig())
	rounds := b.N
	var procErr error
	var virtEnd sim.Time
	for r := 0; r < n; r++ {
		r := r
		e.Spawn("rank", func(p *sim.Proc) {
			for i := 0; i < rounds; i++ {
				if err := x.Barrier(p, r); err != nil {
					procErr = err
					return
				}
			}
			if p.Now() > virtEnd {
				virtEnd = p.Now()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if procErr != nil {
		b.Fatal(procErr)
	}
	b.ReportMetric(float64(virtEnd)/float64(rounds)/1e3, "virt-µs/op")
}
