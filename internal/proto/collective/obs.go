package collective

import "github.com/nowproject/now/internal/obs"

// metrics holds the communicator's collector handles; nil on an
// unobserved communicator, so operations pay a single branch.
type metrics struct {
	barriers    *obs.Counter   // collective.barriers
	broadcasts  *obs.Counter   // collective.broadcasts
	reduces     *obs.Counter   // collective.reduces
	allToAlls   *obs.Counter   // collective.alltoalls
	barrierNs   *obs.Histogram // collective.barrier.ns
	broadcastNs *obs.Histogram // collective.broadcast.ns
	reduceNs    *obs.Histogram // collective.reduce.ns
	allToAllNs  *obs.Histogram // collective.alltoall.ns
}

// Instrument attaches metrics collectors to the communicator. Counters
// count per-rank operation completions (one barrier on n ranks adds
// n), and histograms record each rank's own operation latency — the
// root of a barrier finishes before the leaves, and the spread is the
// interesting signal. Call once per registry; a nil registry is a
// no-op.
//
// Metrics (names per docs/OBSERVABILITY.md):
//
//	collective.barriers       barrier completions (per rank)
//	collective.broadcasts     broadcast completions (per rank)
//	collective.reduces        reduce completions (per rank)
//	collective.alltoalls      all-to-all completions (per rank)
//	collective.barrier.ns     per-rank barrier latency histogram
//	collective.broadcast.ns   per-rank broadcast latency histogram
//	collective.reduce.ns      per-rank reduce latency histogram
//	collective.alltoall.ns    per-rank all-to-all latency histogram
func (c *Comm) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	c.m = &metrics{
		barriers:    r.Counter("collective.barriers"),
		broadcasts:  r.Counter("collective.broadcasts"),
		reduces:     r.Counter("collective.reduces"),
		allToAlls:   r.Counter("collective.alltoalls"),
		barrierNs:   r.Histogram("collective.barrier.ns", obs.DurationBuckets),
		broadcastNs: r.Histogram("collective.broadcast.ns", obs.DurationBuckets),
		reduceNs:    r.Histogram("collective.reduce.ns", obs.DurationBuckets),
		allToAllNs:  r.Histogram("collective.alltoall.ns", obs.DurationBuckets),
	}
}
