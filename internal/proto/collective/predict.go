package collective

import (
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// LogP-style analytic predictions for the scale study (experiment
// SC1). The model is the classic four-parameter one the NOW papers
// reason with: per-message send/receive overhead o, network latency L,
// and a per-byte serialization gap from the link bandwidth. The point
// of the predictions is not to match the simulator exactly — the
// simulator charges CPU contention, window acks and switch occupancy
// the closed form ignores — but to expose the scaling *shape*: barrier
// latency growing with tree depth (log_k n) and all-to-all growing
// linearly in n.

// serTime returns the wire occupancy for bytes on a fabric with cfg,
// mirroring Fabric.SerializationTime without needing a live fabric.
func serTime(cfg netsim.Config, bytes int) sim.Duration {
	return sim.PerByte(int64(bytes), sim.Bandwidth(cfg.BandwidthMbps)) + cfg.PerPacketWire
}

// TreeDepth returns the depth of the heap-layout k-ary tree on n
// ranks: the number of edges from the deepest rank to the root.
func TreeDepth(n, arity int) int {
	if arity <= 0 {
		arity = 4
	}
	d := 0
	for r := n - 1; r > 0; r = (r - 1) / arity {
		d++
	}
	return d
}

// PredictBarrier estimates barrier latency on n ranks: the gather wave
// and the release wave each cross the tree's depth, and every hop pays
// send overhead, header serialization, latency and receive overhead.
func PredictBarrier(amCfg am.Config, fabCfg netsim.Config, n, arity int) sim.Duration {
	d := sim.Duration(TreeDepth(n, arity))
	hop := amCfg.SendOverhead + serTime(fabCfg, amCfg.HeaderBytes) + fabCfg.Latency + amCfg.RecvOverhead
	return 2 * d * hop
}

// PredictAllToAll estimates the pairwise-exchange on n ranks: each of
// the n-1 rounds sends one block and blocks for its acknowledgement,
// so a round costs a full request (send overhead, block serialization,
// latency, receive overhead) plus the header-sized reply coming back.
func PredictAllToAll(amCfg am.Config, fabCfg netsim.Config, n, blockBytes int) sim.Duration {
	req := amCfg.SendOverhead + serTime(fabCfg, blockBytes+amCfg.HeaderBytes) + fabCfg.Latency + amCfg.RecvOverhead
	rep := amCfg.SendOverhead + serTime(fabCfg, amCfg.HeaderBytes) + fabCfg.Latency + amCfg.RecvOverhead
	return sim.Duration(n-1) * (req + rep)
}
