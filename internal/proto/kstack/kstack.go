// Package kstack provides the kernel-protocol-stack baselines the paper
// measures Active Messages against: standard TCP/IP through sockets,
// single-copy TCP, and sockets layered over AM. All are expressed as
// cost configurations for the am.Endpoint machinery — the difference
// between a 1994 kernel stack and user-level AM is *where the cycles
// go* (per-message kernel crossings and per-byte copies), not the
// request/reply structure, so one reliable endpoint implementation
// serves both with different coefficients.
//
// Calibration targets, all from the paper's "Low-overhead
// communication" section:
//
//   - SS-10 + Ethernet + TCP: 456 µs overhead-plus-latency per small
//     message, 9 Mb/s peak bandwidth;
//   - SS-10 + Synoptics ATM + TCP: 626 µs overhead-plus-latency,
//     78 Mb/s peak (bandwidth up 8×, small-message time *worse*);
//   - HP 735 + FDDI: half-power message size 1,350 B for standard TCP,
//     760 B for single-copy TCP, ≈175 B for Active Messages; sockets
//     over AM achieve a ≈25 µs one-way time, ≈10× faster than TCP on
//     identical hardware.
package kstack

import (
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

// TCPEthernet models the measured SparcStation-10 TCP/IP path over
// 10 Mb/s Ethernet: ≈180 µs of kernel time per message per side plus
// two data copies. Small-message overhead+latency ≈456 µs; streaming
// peak ≈9 Mb/s (wire-limited).
func TCPEthernet() am.Config {
	return am.Config{
		SendOverhead: 180 * sim.Microsecond,
		RecvOverhead: 180 * sim.Microsecond,
		SendPerByte:  50 * sim.Nanosecond,
		RecvPerByte:  50 * sim.Nanosecond,
		HeaderBytes:  58, // Ethernet + IP + TCP framing
		BufferSlots:  256,
		RetryTimeout: 200 * sim.Millisecond, // 1994 TCP coarse timers
		MaxRetries:   12,
		Window:       8,
	}
}

// TCPATM models the same hosts on a first-generation 155 Mb/s ATM LAN:
// more bandwidth, but an *even more* expensive driver path (cell
// segmentation and reassembly in software) — the paper's point that
// bandwidth upgrades alone buy little.
func TCPATM() am.Config {
	cfg := TCPEthernet()
	cfg.SendOverhead = 290 * sim.Microsecond
	cfg.RecvOverhead = 290 * sim.Microsecond
	cfg.SendPerByte = 25 * sim.Nanosecond
	cfg.RecvPerByte = 26 * sim.Nanosecond
	cfg.HeaderBytes = 65 // TCP/IP plus AAL5 framing
	return cfg
}

// TCPFDDI is the standard-TCP path on the HP 735/Medusa hardware used
// for the half-power comparison: ≈115 µs kernel time per side and two
// copies, giving a ≈1,350-byte half-power point.
func TCPFDDI() am.Config {
	cfg := TCPEthernet()
	cfg.SendOverhead = 115 * sim.Microsecond
	cfg.RecvOverhead = 115 * sim.Microsecond
	cfg.SendPerByte = 50 * sim.Nanosecond
	cfg.RecvPerByte = 50 * sim.Nanosecond
	return cfg
}

// SingleCopyTCPFDDI removes one of the two data copies and trims the
// per-message path, moving the half-power point to ≈760 bytes.
func SingleCopyTCPFDDI() am.Config {
	cfg := TCPFDDI()
	cfg.SendOverhead = 50 * sim.Microsecond
	cfg.RecvOverhead = 50 * sim.Microsecond
	cfg.SendPerByte = 25 * sim.Nanosecond
	cfg.RecvPerByte = 25 * sim.Nanosecond
	return cfg
}

// SocketsOverAM layers a conventional sockets interface on an Active
// Messages base: the paper measures a one-way message time of ≈25 µs
// this way — nearly an order of magnitude better than TCP on the same
// hardware. The socket veneer costs a small fixed amount per side.
func SocketsOverAM(base am.Config) am.Config {
	base.SendOverhead += 1 * sim.Microsecond
	base.RecvOverhead += 1 * sim.Microsecond
	return base
}

// PVMEthernet approximates PVM (Parallel Virtual Machine) message
// passing over Ethernet sockets — Table 4's baseline NOW configuration.
// PVM adds routing through its daemon and extra copies on top of TCP.
func PVMEthernet() am.Config {
	cfg := TCPEthernet()
	cfg.SendOverhead = 300 * sim.Microsecond
	cfg.RecvOverhead = 300 * sim.Microsecond
	cfg.SendPerByte = 80 * sim.Nanosecond
	cfg.RecvPerByte = 80 * sim.Nanosecond
	return cfg
}
