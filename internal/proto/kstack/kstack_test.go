package kstack

import (
	"errors"
	"testing"

	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/node"
	"github.com/nowproject/now/internal/proto/am"
	"github.com/nowproject/now/internal/sim"
)

const hSink am.HandlerID = 1

// oneWay measures the time from posting a message to its handler
// starting, for a given payload size, stack config and fabric.
func oneWay(t *testing.T, fcfg netsim.Config, scfg am.Config, bytes int) sim.Duration {
	t.Helper()
	e := sim.NewEngine(1)
	fab, err := netsim.New(e, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	a := am.NewEndpoint(e, node.New(e, node.DefaultConfig(0)), fab, scfg)
	b := am.NewEndpoint(e, node.New(e, node.DefaultConfig(1)), fab, scfg)
	var got sim.Duration
	b.Register(hSink, func(p *sim.Proc, m am.Msg) (any, int) {
		got = p.Now() - m.Arg.(sim.Time)
		return nil, 0
	})
	e.Spawn("tx", func(p *sim.Proc) {
		_ = a.Send(p, 1, hSink, p.Now(), bytes)
		e.Stop()
	})
	if err := e.Run(); !errors.Is(err, sim.ErrStopped) {
		t.Fatal(err)
	}
	return got
}

func TestTCPEthernetSmallMessageTime(t *testing.T) {
	// Paper: 456 µs overhead + latency for a single small message.
	got := oneWay(t, netsim.Ethernet10(2), TCPEthernet(), 64)
	if got < 400*sim.Microsecond || got > 520*sim.Microsecond {
		t.Fatalf("TCP/Ethernet small message = %v, want ≈456µs", got)
	}
}

func TestTCPATMSmallMessageSlowerDespiteBandwidth(t *testing.T) {
	// The paper's punchline: ATM raises bandwidth 8× but the
	// small-message time *increases* (456 µs → 626 µs).
	eth := oneWay(t, netsim.Ethernet10(2), TCPEthernet(), 64)
	atm := oneWay(t, netsim.ATM155(2), TCPATM(), 64)
	if atm <= eth {
		t.Fatalf("ATM small message %v should be slower than Ethernet %v", atm, eth)
	}
	if atm < 560*sim.Microsecond || atm > 700*sim.Microsecond {
		t.Fatalf("TCP/ATM small message = %v, want ≈626µs", atm)
	}
}

// throughput measures single-transfer bandwidth in MB/s for n bytes.
func throughput(t *testing.T, fcfg netsim.Config, scfg am.Config, n int) float64 {
	d := oneWay(t, fcfg, scfg, n)
	if d <= 0 {
		t.Fatalf("non-positive transfer time for %d bytes", n)
	}
	return float64(n) / d.Seconds() / 1e6
}

func TestTCPEthernetPeakBandwidth(t *testing.T) {
	// Paper: 9 Mb/s through TCP on 10 Mb/s Ethernet.
	mbps := throughput(t, netsim.Ethernet10(2), TCPEthernet(), 512*1024) * 8
	if mbps < 7.5 || mbps > 10 {
		t.Fatalf("TCP/Ethernet peak = %.1f Mb/s, want ≈9", mbps)
	}
}

func TestTCPATMPeakBandwidth(t *testing.T) {
	// Paper: 78 Mb/s through TCP on 155 Mb/s ATM (software-limited).
	mbps := throughput(t, netsim.ATM155(2), TCPATM(), 512*1024) * 8
	if mbps < 60 || mbps > 90 {
		t.Fatalf("TCP/ATM peak = %.1f Mb/s, want ≈78", mbps)
	}
}

// halfPower finds the payload size at which single-transfer bandwidth
// reaches half its large-message value.
func halfPower(t *testing.T, fcfg netsim.Config, scfg am.Config) int {
	t.Helper()
	peak := throughput(t, fcfg, scfg, 1<<20)
	lo, hi := 1, 1<<20
	for lo < hi {
		mid := (lo + hi) / 2
		if throughput(t, fcfg, scfg, mid) < peak/2 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func TestHalfPowerPointOrdering(t *testing.T) {
	// Paper (HP 735 / FDDI): AM reaches half of peak at ≈175 B, vs 760 B
	// for single-copy TCP and 1,350 B for standard TCP. We require the
	// ordering and rough magnitudes.
	fddi := netsim.FDDI100(2)
	amN := halfPower(t, fddi, am.HPAMConfig())
	scN := halfPower(t, fddi, SingleCopyTCPFDDI())
	tcpN := halfPower(t, fddi, TCPFDDI())
	if !(amN < scN && scN < tcpN) {
		t.Fatalf("half-power ordering violated: AM=%d 1-copy=%d TCP=%d", amN, scN, tcpN)
	}
	if amN > 500 {
		t.Fatalf("AM half-power = %d B, want a few hundred bytes", amN)
	}
	if tcpN < 900 || tcpN > 2500 {
		t.Fatalf("TCP half-power = %d B, want ≈1350", tcpN)
	}
	if scN < 450 || scN > 1200 {
		t.Fatalf("single-copy half-power = %d B, want ≈760", scN)
	}
}

func TestSocketsOverAMAnOrderFasterThanTCP(t *testing.T) {
	fddi := netsim.FDDI100(2)
	sock := oneWay(t, fddi, SocketsOverAM(am.HPAMConfig()), 64)
	tcp := oneWay(t, fddi, TCPFDDI(), 64)
	if sock < 20*sim.Microsecond || sock > 35*sim.Microsecond {
		t.Fatalf("sockets-over-AM one-way = %v, want ≈25µs", sock)
	}
	if ratio := float64(tcp) / float64(sock); ratio < 6 {
		t.Fatalf("TCP/sockets-over-AM ratio = %.1f, want ≈10×", ratio)
	}
}

func TestPVMCostsExceedTCP(t *testing.T) {
	pvm := PVMEthernet()
	tcp := TCPEthernet()
	if pvm.SendOverhead <= tcp.SendOverhead || pvm.SendPerByte <= tcp.SendPerByte {
		t.Fatal("PVM should cost more than raw TCP")
	}
}
