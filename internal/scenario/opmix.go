package scenario

import (
	"fmt"
	"math/rand"

	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/xfs"
)

// opMix drives the PAPER.md NFS workload against an xFS fleet: a
// population of client streams, each alternating exponential think time
// with one file operation. The draw per op follows the departmental
// trace shape — MetaFrac of operations are small metadata lookups (a
// cached read of a hot file's first block; the paper measured 95% of
// NFS messages under 200 bytes), the rest split evenly between data
// reads and write-through data writes.
//
// Intensity follows the scenario's load curve: "load <f>" scales the
// mean think time by 1/f, so a series of load events replays a diurnal
// demand shape over one population. Every stream's randomness comes
// from its own seeded source, so the op sequence is independent of
// engine interleaving and the run stays byte-deterministic.
type opMix struct {
	s   *Scenario
	e   *sim.Engine
	sys *xfs.System
	// blockBytes is the installation's block size (writes must cover a
	// full block).
	blockBytes int

	// loadPPM is the current intensity in parts-per-million (load 1.0 =
	// 1e6). Engine events mutate it; streams read it at each think draw.
	loadPPM int64

	nextStream int // global stream id across opmix events

	ops, meta, data, errors *obs.Counter
	latency                 *obs.Histogram
	sm                      *scenarioMetrics
}

// Op-mix defaults; a scenario overrides them per opmix event.
const (
	defaultThink  = 5 * sim.Second
	defaultFiles  = 64
	defaultBlocks = 16
)

// newOpMix prepares the workload driver. Metrics register immediately
// so the export layout does not depend on whether an opmix event fires
// before the first checkpoint.
func newOpMix(s *Scenario, e *sim.Engine, sys *xfs.System, blockBytes int, sm *scenarioMetrics) *opMix {
	m := &opMix{s: s, e: e, sys: sys, blockBytes: blockBytes, loadPPM: 1_000_000, sm: sm}
	if s.Fleet.XFS == nil {
		return m // no storage: opmix events are rejected by Validate
	}
	r := sm.reg
	m.ops = r.Counter("scenario.opmix.ops")
	m.meta = r.Counter("scenario.opmix.meta")
	m.data = r.Counter("scenario.opmix.data")
	m.errors = r.Counter("scenario.opmix.errors")
	m.latency = r.Histogram("scenario.opmix.latency.ns", obs.DurationBuckets)
	sm.loadPPM.Set(m.loadPPM)
	return m
}

// setLoad applies a "load <f>" event.
func (m *opMix) setLoad(f float64) {
	m.loadPPM = int64(f * 1_000_000)
	if m.loadPPM < 1 {
		m.loadPPM = 1
	}
	m.sm.loadPPM.Set(m.loadPPM)
}

// start spawns the event's client streams. Each stream gets a private
// RNG keyed by its global id, a home client chosen round-robin across
// the installation's nodes, and its own slice of the file namespace for
// data ops; metadata ops share one hot directory of files so the
// manager and cache-consistency paths see real sharing.
func (m *opMix) start(ev Event) {
	think := ev.Think
	if think <= 0 {
		think = defaultThink
	}
	files := ev.Files
	if files <= 0 {
		files = defaultFiles
	}
	blocks := ev.Blocks
	if blocks <= 0 {
		blocks = defaultBlocks
	}
	horizon := sim.Time(m.s.Horizon)
	for i := 0; i < ev.Clients; i++ {
		stream := m.nextStream
		m.nextStream++
		rng := rand.New(rand.NewSource(m.s.Seed*1_000_003 + int64(stream)))
		client := m.sys.Client(stream % m.sys.Nodes())
		// Hot shared files occupy ids [1, files]; each stream's private
		// data file sits above them.
		privFile := xfs.FileID(files + 1 + stream)
		m.e.Spawn(fmt.Sprintf("opmix/%d", stream), func(p *sim.Proc) {
			buf := make([]byte, m.blockBytes)
			for {
				wait := sim.Duration(rng.ExpFloat64() * float64(think) * 1_000_000 / float64(m.loadPPM))
				p.Sleep(wait)
				if p.Now() >= horizon {
					return
				}
				start := p.Now()
				var err error
				isMeta := rng.Float64() < ev.MetaFrac
				switch {
				case isMeta:
					// Metadata lookup: re-read the first block of a hot
					// shared file — cache-resident except after a writer
					// invalidates it.
					_, err = client.Read(p, xfs.FileID(1+rng.Intn(files)), 0)
				case rng.Intn(2) == 0:
					_, err = client.Read(p, privFile, uint32(rng.Intn(blocks)))
				default:
					// NFS-style write-through: the write is not durable
					// until the sync completes, so the op's latency covers
					// both.
					blk := uint32(rng.Intn(blocks))
					if err = client.Write(p, privFile, blk, buf); err == nil {
						err = client.Sync(p)
					}
				}
				if p.Now() >= horizon {
					return // op straddled the end of the run: not counted
				}
				if err != nil {
					// Ops during fault windows may fail; the stream retries
					// with fresh think time rather than dying.
					m.errors.Inc()
					continue
				}
				m.ops.Inc()
				if isMeta {
					m.meta.Inc()
				} else {
					m.data.Inc()
				}
				m.latency.Observe(int64(p.Now() - start))
			}
		})
	}
}

// tallies reports the counters for the run summary.
func (m *opMix) tallies() (ops, meta, data, errors int64) {
	return m.ops.Value(), m.meta.Value(), m.data.Value(), m.errors.Value()
}
