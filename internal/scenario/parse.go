package scenario

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/nowproject/now/internal/faults"
	"github.com/nowproject/now/internal/sim"
)

// Scenario-file grammar (one directive per line; '#' starts a comment):
//
//	scenario <name>
//	seed <int>
//	horizon <dur>
//	fleet ws <n> [policy=<migrate|restart|ignore>] [heartbeat=<dur>] [fabric=<preset>] [topo=<crossbar|fattree|torus>]
//	fleet xfs <nodes> [spares=<n>] [managers=<n>] [cache=<blocks>] [block=<bytes>] [pipelined]
//	fleet shards <parts> [rounds=<n>] [barriers=<n>]
//	fleet cluster <name> [ws=<n>] [xfs=<n>]  # one federation member (repeat; needs wan)
//	wan lat=<dur> bw=<mbps>                  # the links between fleet cluster members
//	at <t> <fault line>                      # any docs/FAULTS.md grammar line
//	at <t> faults <path>                     # plan file, times offset by <t>
//	at <t> jobs <count> nodes=<n> work=<dur> [every=<dur>] [grain=<dur>] [cluster=<name>]
//	at <t> opmix <clients> [meta=<frac>] [think=<dur>] [files=<n>] [blocks=<n>]
//	at <t> load <factor>
//	at <t> flashcrowd <users> [for <dur>]
//	at <t> diurnal [days=<n>]
//	at <t> cordon <ws>                       # control plane: unschedulable
//	at <t> uncordon <ws>
//	at <t> drain <ws>                        # cordon + migrate guest away
//	at <t> remediate on|off                  # self-healing loop switch
//	at <t> spill on|off                      # federated spill-over switch
//	expect <metric> [p<q>] <op> <value> at <time|end>
//	expect span <name> count|p<q> <op> <value> at <time|end>
//
// Times and durations use Go syntax ("90s", "2h"); <op> is one of ==,
// !=, <=, >=, <, >. Scenario.String emits this grammar, so scenario
// files round-trip. The full reference is docs/SCENARIOS.md.

// ParseFile reads a scenario file and validates it. The scenario's Dir
// is set to the file's directory, so fault-plan references resolve
// relative to the scenario.
func ParseFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	s.Dir = filepath.Dir(path)
	return s, nil
}

// ParseFileAll reads a scenario file and collects EVERY parse and
// validation problem instead of stopping at the first — the `nowsim
// check` form. The returned scenario is whatever could be salvaged;
// it is runnable only when the problem list is empty.
func ParseFileAll(path string) (*Scenario, []Problem) {
	f, err := os.Open(path)
	if err != nil {
		return nil, []Problem{{Err: fmt.Errorf("scenario: %w", err)}}
	}
	defer f.Close()
	s, probs := ParseAll(f)
	s.Dir = filepath.Dir(path)
	return s, probs
}

// ParseAll reads a scenario and collects every parse and validation
// problem, each anchored to its 1-based source line (0 for scenario-
// wide problems like a missing fleet). Unlike Parse it keeps going
// past bad lines, so one check run reports everything wrong at once.
func ParseAll(r io.Reader) (*Scenario, []Problem) {
	s := &Scenario{}
	var probs []Problem
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := s.parseLine(fields, lineNo); err != nil {
			probs = append(probs, Problem{Line: lineNo, Err: fmt.Errorf("line %d: %w", lineNo, err)})
		}
	}
	if err := sc.Err(); err != nil {
		probs = append(probs, Problem{Err: err})
	}
	s.normalize()
	probs = append(probs, s.Problems()...)
	return s, probs
}

// Parse reads a scenario in file syntax and validates it. Errors carry
// the 1-based source line ("line 7: ...").
func Parse(r io.Reader) (*Scenario, error) {
	s := &Scenario{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := s.parseLine(fields, lineNo); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	s.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseLine dispatches one non-empty directive line.
func (s *Scenario) parseLine(fields []string, lineNo int) error {
	switch fields[0] {
	case "scenario":
		if len(fields) != 2 {
			return fmt.Errorf("scenario wants one name")
		}
		if s.Name != "" {
			return fmt.Errorf("duplicate 'scenario' line")
		}
		s.Name = fields[1]
	case "seed":
		if len(fields) != 2 {
			return fmt.Errorf("seed wants one integer")
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", fields[1])
		}
		s.Seed = v
	case "horizon":
		if len(fields) != 2 {
			return fmt.Errorf("horizon wants one duration")
		}
		d, err := parseDur(fields[1])
		if err != nil {
			return fmt.Errorf("bad horizon %q: %w", fields[1], err)
		}
		s.Horizon = d
	case "fleet":
		if len(fields) < 3 {
			return fmt.Errorf("fleet wants a kind and a size (fleet ws 32)")
		}
		return s.parseFleet(fields[1], fields[2], fields[3:])
	case "wan":
		if s.Fleet.WAN != nil {
			return fmt.Errorf("duplicate 'wan' line")
		}
		w := &WANFleet{}
		for _, o := range fields[1:] {
			k, v, ok := strings.Cut(o, "=")
			if !ok {
				return fmt.Errorf("wan: bad option %q (want lat=<dur> bw=<mbps>)", o)
			}
			switch k {
			case "lat":
				d, err := parseDur(v)
				if err != nil {
					return fmt.Errorf("wan: bad lat %q: %w", v, err)
				}
				w.Latency = d
			case "bw":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return fmt.Errorf("wan: bad bw %q", v)
				}
				w.BandwidthMbps = f
			default:
				return fmt.Errorf("wan: unknown option %q", k)
			}
		}
		if w.Latency == 0 || w.BandwidthMbps == 0 {
			return fmt.Errorf("wan wants both lat=<dur> and bw=<mbps>")
		}
		s.Fleet.WAN = w
	case "at":
		if len(fields) < 3 {
			return fmt.Errorf("at wants a time and an event")
		}
		ev, err := parseEvent(fields)
		if err != nil {
			return err
		}
		ev.Line = lineNo
		s.Events = append(s.Events, ev)
	case "expect":
		ex, err := parseExpect(fields[1:])
		if err != nil {
			return err
		}
		ex.Line = lineNo
		s.Expects = append(s.Expects, ex)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}

// parseFleet reads one fleet declaration ("ws", "xfs", "shards" or
// "cluster"; for "cluster" the size position holds the member's name).
func (s *Scenario) parseFleet(kind, size string, opts []string) error {
	if kind == "cluster" {
		c := ClusterFleet{Name: size}
		if _, err := strconv.Atoi(size); err == nil || size == "" {
			return fmt.Errorf("fleet cluster: wants a name, not %q", size)
		}
		for _, o := range opts {
			k, v, ok := strings.Cut(o, "=")
			if !ok {
				return fmt.Errorf("fleet cluster %s: bad option %q (want ws=<n> or xfs=<n>)", c.Name, o)
			}
			iv, err := strconv.Atoi(v)
			if err != nil || iv < 1 {
				return fmt.Errorf("fleet cluster %s: bad %q", c.Name, o)
			}
			switch k {
			case "ws":
				c.WS = iv
			case "xfs":
				c.XFS = iv
			default:
				return fmt.Errorf("fleet cluster %s: unknown option %q", c.Name, k)
			}
		}
		s.Fleet.Clusters = append(s.Fleet.Clusters, c)
		return nil
	}
	n, err := strconv.Atoi(size)
	if err != nil || n < 1 {
		return fmt.Errorf("fleet %s: bad size %q", kind, size)
	}
	switch kind {
	case "ws":
		if s.Fleet.WS != 0 {
			return fmt.Errorf("duplicate 'fleet ws' line")
		}
		s.Fleet.WS = n
		for _, o := range opts {
			k, v, ok := strings.Cut(o, "=")
			if !ok {
				return fmt.Errorf("fleet ws: bad option %q (want key=value)", o)
			}
			switch k {
			case "policy":
				s.Fleet.Policy = v
			case "heartbeat":
				d, err := parseDur(v)
				if err != nil {
					return fmt.Errorf("fleet ws: bad heartbeat %q: %w", v, err)
				}
				s.Fleet.Heartbeat = d
			case "fabric":
				s.Fleet.FabricName = v
			case "topo":
				s.Fleet.Topo = v
			default:
				return fmt.Errorf("fleet ws: unknown option %q", k)
			}
		}
	case "xfs":
		if s.Fleet.XFS != nil {
			return fmt.Errorf("duplicate 'fleet xfs' line")
		}
		x := &XFSFleet{Nodes: n}
		for _, o := range opts {
			if o == "pipelined" {
				x.Pipelined = true
				continue
			}
			k, v, ok := strings.Cut(o, "=")
			if !ok {
				return fmt.Errorf("fleet xfs: bad option %q (want key=value or pipelined)", o)
			}
			iv, err := strconv.Atoi(v)
			if err != nil || iv < 0 {
				return fmt.Errorf("fleet xfs: bad %q", o)
			}
			switch k {
			case "spares":
				x.Spares = iv
			case "managers":
				x.Managers = iv
			case "cache":
				x.CacheBlocks = iv
			case "block":
				x.BlockBytes = iv
			default:
				return fmt.Errorf("fleet xfs: unknown option %q", k)
			}
		}
		s.Fleet.XFS = x
	case "shards":
		if s.Fleet.Shards != nil {
			return fmt.Errorf("duplicate 'fleet shards' line")
		}
		sh := &ShardFleet{Parts: n}
		for _, o := range opts {
			k, v, ok := strings.Cut(o, "=")
			if !ok {
				return fmt.Errorf("fleet shards: bad option %q (want key=value)", o)
			}
			iv, err := strconv.Atoi(v)
			if err != nil || iv < 1 {
				return fmt.Errorf("fleet shards: bad %q", o)
			}
			switch k {
			case "rounds":
				sh.Rounds = iv
			case "barriers":
				sh.Barriers = iv
			default:
				return fmt.Errorf("fleet shards: unknown option %q", k)
			}
		}
		s.Fleet.Shards = sh
	default:
		return fmt.Errorf("unknown fleet kind %q (want ws, xfs, shards or cluster)", kind)
	}
	return nil
}

// faultKinds recognizes a fault-grammar keyword in event position.
var faultKinds = map[string]bool{
	"crash": true, "recover": true, "partition": true, "heal": true,
	"link": true, "linkclear": true, "diskfail": true, "rebuild": true,
	"mgrkill": true,
}

// parseEvent reads one "at <t> ..." line (fields includes the leading
// "at").
func parseEvent(fields []string) (Event, error) {
	at, err := parseDur(fields[1])
	if err != nil {
		return Event{}, fmt.Errorf("bad time %q: %w", fields[1], err)
	}
	ev := Event{At: sim.Time(at)}
	kind := fields[2]
	args := fields[3:]

	if faultKinds[kind] {
		// Delegate the whole line (minus "at") to the fault grammar; the
		// fault's At and the event's At are the same token.
		f, err := faults.ParseFaultLine(fields[1:])
		if err != nil {
			return Event{}, err
		}
		ev.Kind, ev.Fault = EvFault, f
		return ev, nil
	}

	switch kind {
	case "faults":
		if len(args) != 1 {
			return Event{}, fmt.Errorf("faults wants one plan-file path")
		}
		ev.Kind, ev.Path = EvFaultPlan, args[0]
	case "jobs":
		if len(args) < 1 {
			return Event{}, fmt.Errorf("jobs wants a count")
		}
		ev.Count, err = strconv.Atoi(args[0])
		if err != nil {
			return Event{}, fmt.Errorf("jobs: bad count %q", args[0])
		}
		for _, o := range args[1:] {
			k, v, ok := strings.Cut(o, "=")
			if !ok {
				return Event{}, fmt.Errorf("jobs: bad option %q (want key=value)", o)
			}
			switch k {
			case "nodes":
				ev.Nodes, err = strconv.Atoi(v)
			case "work":
				ev.Work, err = parseDur(v)
			case "every":
				ev.Every, err = parseDur(v)
			case "grain":
				ev.Grain, err = parseDur(v)
			case "cluster":
				ev.Cluster = v
			default:
				return Event{}, fmt.Errorf("jobs: unknown option %q", k)
			}
			if err != nil {
				return Event{}, fmt.Errorf("jobs: bad %q: %w", o, err)
			}
		}
		ev.Kind = EvJobs
	case "opmix":
		if len(args) < 1 {
			return Event{}, fmt.Errorf("opmix wants a client count")
		}
		ev.Clients, err = strconv.Atoi(args[0])
		if err != nil {
			return Event{}, fmt.Errorf("opmix: bad client count %q", args[0])
		}
		for _, o := range args[1:] {
			k, v, ok := strings.Cut(o, "=")
			if !ok {
				return Event{}, fmt.Errorf("opmix: bad option %q (want key=value)", o)
			}
			switch k {
			case "meta":
				ev.MetaFrac, err = strconv.ParseFloat(v, 64)
			case "think":
				ev.Think, err = parseDur(v)
			case "files":
				ev.Files, err = strconv.Atoi(v)
			case "blocks":
				ev.Blocks, err = strconv.Atoi(v)
			default:
				return Event{}, fmt.Errorf("opmix: unknown option %q", k)
			}
			if err != nil {
				return Event{}, fmt.Errorf("opmix: bad %q: %w", o, err)
			}
		}
		ev.Kind = EvOpMix
	case "load":
		if len(args) != 1 {
			return Event{}, fmt.Errorf("load wants one factor")
		}
		ev.Load, err = strconv.ParseFloat(args[0], 64)
		if err != nil {
			return Event{}, fmt.Errorf("load: bad factor %q", args[0])
		}
		ev.Kind = EvLoad
	case "flashcrowd":
		if len(args) < 1 {
			return Event{}, fmt.Errorf("flashcrowd wants a user count")
		}
		ev.Users, err = strconv.Atoi(args[0])
		if err != nil {
			return Event{}, fmt.Errorf("flashcrowd: bad user count %q", args[0])
		}
		switch {
		case len(args) == 1:
		case len(args) == 3 && args[1] == "for":
			ev.For, err = parseDur(args[2])
			if err != nil {
				return Event{}, fmt.Errorf("flashcrowd: bad window %q: %w", args[2], err)
			}
		default:
			return Event{}, fmt.Errorf("flashcrowd wants <users> [for <dur>]")
		}
		ev.Kind = EvFlashCrowd
	case "diurnal":
		for _, o := range args {
			k, v, ok := strings.Cut(o, "=")
			if !ok || k != "days" {
				return Event{}, fmt.Errorf("diurnal: unknown option %q (want days=<n>)", o)
			}
			ev.Days, err = strconv.Atoi(v)
			if err != nil || ev.Days < 1 {
				return Event{}, fmt.Errorf("diurnal: bad %q", o)
			}
		}
		ev.Kind = EvDiurnal
	case "cordon", "uncordon", "drain":
		if len(args) != 1 {
			return Event{}, fmt.Errorf("%s wants one workstation id", kind)
		}
		ev.Node, err = strconv.Atoi(args[0])
		if err != nil {
			return Event{}, fmt.Errorf("%s: bad workstation %q", kind, args[0])
		}
		switch kind {
		case "cordon":
			ev.Kind = EvCordon
		case "uncordon":
			ev.Kind = EvUncordon
		case "drain":
			ev.Kind = EvDrain
		}
	case "remediate":
		if len(args) != 1 || (args[0] != "on" && args[0] != "off") {
			return Event{}, fmt.Errorf("remediate wants 'on' or 'off'")
		}
		ev.Kind, ev.On = EvRemediate, args[0] == "on"
	case "spill":
		if len(args) != 1 || (args[0] != "on" && args[0] != "off") {
			return Event{}, fmt.Errorf("spill wants 'on' or 'off'")
		}
		ev.Kind, ev.On = EvSpill, args[0] == "on"
	default:
		return Event{}, fmt.Errorf("unknown event %q", kind)
	}
	return ev, nil
}

// parseExpect reads one assertion ("expect" already stripped):
// <metric> [p<q>] <op> <value> at <time|end>, or the span-trace form
// span <name> count|p<q> <op> <value> at <time|end>.
func parseExpect(args []string) (Expect, error) {
	var ex Expect
	if len(args) > 0 && args[0] == "span" {
		if len(args) < 6 {
			return Expect{}, fmt.Errorf("expect span wants '<name> count|p<q> <op> <value> at <time|end>'")
		}
		ex.Span, ex.Metric = true, args[1]
		switch sel := args[2]; {
		case sel == "count":
			// Quantile stays 0: the count form.
		case strings.HasPrefix(sel, "p"):
			q, err := strconv.ParseFloat(sel[1:], 64)
			if err != nil {
				return Expect{}, fmt.Errorf("bad span quantile %q (want count, p50, p95, ...)", sel)
			}
			ex.Quantile = q
		default:
			return Expect{}, fmt.Errorf("expect span wants 'count' or a quantile, got %q", sel)
		}
		return finishExpect(ex, args[3:])
	}
	if len(args) < 5 {
		return Expect{}, fmt.Errorf("expect wants '<metric> [p<q>] <op> <value> at <time|end>'")
	}
	ex.Metric = args[0]
	rest := args[1:]
	if strings.HasPrefix(rest[0], "p") {
		if _, err := ParseCmpOp(rest[0]); err != nil {
			q, err := strconv.ParseFloat(rest[0][1:], 64)
			if err != nil {
				return Expect{}, fmt.Errorf("bad quantile %q (want p50, p95, p99.9, ...)", rest[0])
			}
			ex.Quantile = q
			rest = rest[1:]
		}
	}
	return finishExpect(ex, rest)
}

// finishExpect reads the shared assertion tail: <op> <value> at
// <time|end>.
func finishExpect(ex Expect, rest []string) (Expect, error) {
	if len(rest) != 4 || rest[2] != "at" {
		return Expect{}, fmt.Errorf("expect wants '<metric> [p<q>] <op> <value> at <time|end>'")
	}
	op, err := ParseCmpOp(rest[0])
	if err != nil {
		return Expect{}, err
	}
	ex.Op = op
	if d, derr := parseDur(rest[1]); derr == nil && !isPlainInt(rest[1]) {
		ex.Value, ex.IsDur = int64(d), true
	} else {
		v, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			return Expect{}, fmt.Errorf("bad value %q (want an integer or a duration)", rest[1])
		}
		ex.Value = v
	}
	if rest[3] == "end" {
		ex.AtEnd = true
	} else {
		at, err := parseDur(rest[3])
		if err != nil {
			return Expect{}, fmt.Errorf("bad checkpoint %q (want a duration or 'end'): %w", rest[3], err)
		}
		ex.At = sim.Time(at)
	}
	return ex, nil
}

// isPlainInt distinguishes "120" (a count) from "120s" (a duration);
// time.ParseDuration accepts bare "0" but scenario files write counts
// far more often, so an undecorated integer is always a count.
func isPlainInt(s string) bool {
	_, err := strconv.ParseInt(s, 10, 64)
	return err == nil
}

// parseDur reads a Go-syntax duration into virtual time.
func parseDur(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return sim.Duration(d.Nanoseconds()), nil
}
