package scenario

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strings"

	"github.com/nowproject/now/internal/controlplane"
	"github.com/nowproject/now/internal/experiments"
	"github.com/nowproject/now/internal/faults"
	"github.com/nowproject/now/internal/federation"
	"github.com/nowproject/now/internal/glunix"
	"github.com/nowproject/now/internal/netsim"
	"github.com/nowproject/now/internal/obs"
	"github.com/nowproject/now/internal/sim"
	"github.com/nowproject/now/internal/trace"
	"github.com/nowproject/now/internal/xfs"
)

// Options are execution knobs that are not part of a scenario's
// identity: nothing here may change a deterministic output.
type Options struct {
	// Workers is the sharded-engine worker count (sharded fleets only;
	// 0 = one worker per core). Reports exclude it by construction.
	Workers int
}

// Outcome classifies one checked assertion.
type Outcome int

const (
	// Pass: the metric existed and the comparison held.
	Pass Outcome = iota + 1
	// Fail: the metric existed and the comparison did not hold.
	Fail
	// Unknown: the assertion could not be evaluated — no such metric,
	// or a quantile asked of something that is not a populated
	// histogram. Unknown is a gate failure too: a typo'd metric name
	// must not pass silently.
	Unknown
)

// String names the outcome as printed in reports.
func (o Outcome) String() string {
	switch o {
	case Pass:
		return "PASS"
	case Fail:
		return "FAIL"
	case Unknown:
		return "UNKNOWN"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// Check is one evaluated assertion.
type Check struct {
	Expect  Expect
	Outcome Outcome
	// Got is the observed value (Pass/Fail only).
	Got int64
	// Detail explains an Unknown outcome.
	Detail string
}

// Result is one scenario run's outcome: every evaluated check plus the
// workload summaries the report prints. Registry holds the run's full
// metric set for export; for sharded fleets it is the merged
// per-partition view.
type Result struct {
	S *Scenario
	// Checks in report order: timed checkpoints first, then end.
	Checks              []Check
	Pass, Fail, Unknown int
	Registry            *obs.Registry

	// Classic-fleet summaries (zero when absent).
	JobsCompleted, JobsTotal int
	MeanResponse             sim.Duration
	Ops, MetaOps, DataOps    int64
	OpErrors                 int64
	FaultsApplied, FaultsTot int
	ClusterNet, XFSNet       *netsim.Stats

	// Sharded-fleet summary (nil for classic fleets). Wall-clock fields
	// are never reported.
	Sharded *experiments.ShardedTrafficResult

	// Federated summary (nil unless the fleet declares clusters).
	Federated *FedSummary
}

// FedSummary reports a federated run: per-member job tallies plus the
// WAN and spill-over totals from the merged registry.
type FedSummary struct {
	Clusters []FedClusterSummary
	Spilled  int64 // jobs shipped across the WAN (fed.spill.jobs)
	WANSent  int64 // WAN messages sent (wan.sent)
	WANDrops int64 // WAN messages lost (wan.drops)
	LeaseOps int64 // federated lease grants (fed.lease.grants)
}

// FedClusterSummary is one member cluster's share of a federated run.
type FedClusterSummary struct {
	Name          string
	JobsCompleted int64
	SpillReceived int64
}

// Ok reports whether the run is green: every assertion passed. Unknown
// counts as failure (see Outcome).
func (r *Result) Ok() bool { return r.Fail == 0 && r.Unknown == 0 }

// Run executes the scenario and evaluates its assertions. The returned
// error covers build/run problems only; assertion failures are data
// (Result.Ok), so a caller can still export metrics and print the
// report.
func Run(s *Scenario, opts Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Fleet.Shards != nil {
		return runSharded(s, opts)
	}
	if len(s.Fleet.Clusters) > 0 {
		return runFederated(s, opts)
	}
	return runClassic(s)
}

// runFederated executes a 'fleet cluster' scenario: build the
// federation (one partition per member), pre-schedule every script
// event on its target cluster's engine, run to the horizon, and
// evaluate the end checkpoint on the merged registry. Worker count is
// an Options knob; the report is byte-identical at any value.
func runFederated(s *Scenario, opts Options) (*Result, error) {
	members := make([]federation.ClusterConfig, len(s.Fleet.Clusters))
	index := map[string]int{}
	for i, c := range s.Fleet.Clusters {
		members[i] = federation.ClusterConfig{Name: c.Name, Workstations: c.WS, XFSNodes: c.XFS}
		index[c.Name] = i
	}
	f, err := federation.New(federation.Config{
		Clusters: members,
		WAN: federation.WANConfig{
			Latency:       s.Fleet.WAN.Latency,
			BandwidthMbps: s.Fleet.WAN.BandwidthMbps,
		},
		// The placer is always cost-aware; 'spill on'/'spill off' events
		// arm and disarm it (disarmed at t=0 unless the script says).
		Spill:   federation.SpillConfig{Policy: federation.SpillCostAware},
		Seed:    s.Seed,
		Workers: opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	defer f.Close()

	// Pre-schedule the script. Job IDs follow script order, like the
	// classic runner's expandJobs; every event runs on the engine of the
	// cluster it addresses, so no partition reads another's state.
	jobID := 0
	for _, ev := range s.Events {
		ev := ev
		switch ev.Kind {
		case EvJobs:
			target := index[ev.Cluster]
			grain := ev.Grain
			if grain <= 0 {
				grain = 5 * sim.Second
			}
			for i := 0; i < ev.Count; i++ {
				arrive := ev.At + sim.Time(i)*sim.Time(ev.Every)
				if arrive > sim.Time(s.Horizon) {
					break
				}
				spec := federation.JobSpec{ID: jobID, NProcs: ev.Nodes, Work: ev.Work, Grain: grain}
				jobID++
				f.Cluster(target).Engine().At(arrive, func() { f.Submit(target, spec) })
			}
		case EvSpill:
			for i := 0; i < f.Clusters(); i++ {
				i := i
				f.Cluster(i).Engine().At(ev.At, func() { f.SetSpill(i, ev.On) })
			}
		}
	}
	jobsTotal := jobID

	if err := f.Run(sim.Time(s.Horizon)); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}

	reg := f.Merged()
	res := &Result{S: s, Registry: reg, JobsTotal: jobsTotal}
	fs := &FedSummary{}
	for i, c := range s.Fleet.Clusters {
		cs := FedClusterSummary{Name: c.Name}
		if gl := f.Cluster(i).GL; gl != nil {
			cs.JobsCompleted = gl.Master.Stats().JobsCompleted
			res.JobsCompleted += int(cs.JobsCompleted)
			cs.SpillReceived, _ = f.Registry(i).CounterValue("fed.spill.received")
		}
		fs.Clusters = append(fs.Clusters, cs)
	}
	fs.Spilled, _ = reg.CounterValue("fed.spill.jobs")
	fs.WANSent, _ = reg.CounterValue("wan.sent")
	fs.WANDrops, _ = reg.CounterValue("wan.drops")
	fs.LeaseOps, _ = reg.CounterValue("fed.lease.grants")
	res.Federated = fs

	sm := newScenarioMetrics(reg)
	for range s.Events {
		sm.events.Inc()
	}
	evalEndChecks(s, reg, sm, res)
	sortChecks(res)
	return res, nil
}

// runClassic executes a ws/xfs scenario on one engine: build the
// fleets, schedule the event script, schedule the checkpoints last (so
// same-instant events are visible to them), run to the horizon, then
// evaluate the end checkpoint.
func runClassic(s *Scenario) (*Result, error) {
	e := sim.NewEngine(s.Seed)
	defer e.Close()
	reg := obs.NewRegistry()
	e.Observe(reg)
	res := &Result{S: s, Registry: reg}
	sm := newScenarioMetrics(reg)
	horizon := sim.Time(s.Horizon)

	// Storage fleet. Its fabric's net.* metrics go to the shared
	// registry only when no cluster will claim those names.
	var sys *xfs.System
	blockBytes := 0
	if x := s.Fleet.XFS; x != nil {
		xcfg := xfs.DefaultConfig(x.Nodes)
		if x.Pipelined {
			xcfg = xfs.PipelinedConfig(x.Nodes)
		}
		xcfg.SpareNodes = x.Spares
		if x.Managers > 0 {
			xcfg.Managers = x.Managers
		}
		if x.CacheBlocks > 0 {
			xcfg.ClientCacheBlocks = x.CacheBlocks
		}
		if x.BlockBytes > 0 {
			xcfg.BlockBytes = x.BlockBytes
		}
		var err error
		sys, err = xfs.New(e, xcfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		sys.Instrument(reg)
		if s.Fleet.WS == 0 {
			sys.Fabric().Instrument(reg)
		}
		blockBytes = xcfg.BlockBytes
	}

	// Assemble the full fault plan up front: explicit fault events plus
	// referenced plan files, offset to their event time.
	var faultList []faults.Fault
	for _, ev := range s.Events {
		switch ev.Kind {
		case EvFault:
			faultList = append(faultList, ev.Fault)
		case EvFaultPlan:
			path := ev.Path
			if !filepath.IsAbs(path) && s.Dir != "" {
				path = filepath.Join(s.Dir, path)
			}
			p, err := faults.ParseFile(path)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: %s: %w", s.Name, at(ev), err)
			}
			for _, f := range p.Faults {
				f.At += ev.At
				faultList = append(faultList, f)
			}
		}
	}
	plan := faults.Scripted(s.Name, faultList...)
	res.FaultsTot = len(plan.Faults)

	// Workload scheduling shared by both fleet shapes. The op mix and
	// load curve only need the engine; the cluster-side events
	// (flash crowds, the injector's cluster target) attach in wire once
	// the cluster exists.
	mix := newOpMix(s, e, sys, blockBytes, sm)
	for _, ev := range s.Events {
		ev := ev
		switch ev.Kind {
		case EvOpMix:
			e.At(ev.At, func() { sm.events.Inc(); mix.start(ev) })
		case EvLoad:
			e.At(ev.At, func() { sm.events.Inc(); mix.setLoad(ev.Load) })
		}
	}

	// Control verbs route through the control plane; it (and the
	// remediator, for `remediate`) is built only when the script asks,
	// so operator-free scenarios register no cp.* metrics.
	hasControl, hasRemediate := false, false
	for _, ev := range s.Events {
		switch ev.Kind {
		case EvCordon, EvUncordon, EvDrain:
			hasControl = true
		case EvRemediate:
			hasControl, hasRemediate = true, true
		}
	}

	var inj *faults.Injector
	var cluster *glunix.Cluster
	wire := func(c *glunix.Cluster) {
		cluster = c
		// One XFSTarget shared by the plan injector and the control
		// plane, so live rebuilds and plan rebuilds draw the same spare
		// pool.
		var tgt *faults.XFSTarget
		var tgts []faults.Target
		if c != nil {
			tgts = append(tgts, faults.ClusterTarget{C: c})
		}
		if sys != nil {
			tgt = faults.NewXFSTarget(sys)
			tgts = append(tgts, tgt)
		}
		if len(plan.Faults) > 0 || hasControl {
			inj = faults.NewInjector(e, faults.Combine(tgts...), plan, reg)
			inj.Schedule()
		}
		if c == nil {
			return
		}
		for _, ev := range s.Events {
			ev := ev
			switch ev.Kind {
			case EvFlashCrowd:
				e.At(ev.At, func() { sm.events.Inc(); flashCrowd(c, ev) })
			case EvDiurnal:
				e.At(ev.At, func() { sm.events.Inc() })
				scheduleDiurnal(s, e, c, ev, horizon)
			}
		}
		if !hasControl {
			return
		}
		cp, err := controlplane.New(controlplane.Config{
			Engine:    e,
			Cluster:   c,
			XFS:       sys,
			XFSTarget: tgt,
			Injector:  inj,
			Registry:  reg,
		})
		if err != nil {
			e.Fail(err)
			return
		}
		var rem *controlplane.Remediator
		if hasRemediate {
			rem = controlplane.NewRemediator(cp, controlplane.DefaultRemediationPolicy())
			rem.Start() // disabled until a `remediate on` event flips it
		}
		for _, ev := range s.Events {
			ev := ev
			switch ev.Kind {
			case EvCordon:
				e.At(ev.At, func() { sm.events.Inc(); cp.Cordon(ev.Node) }) //nolint:errcheck // validated against the fleet
			case EvUncordon:
				e.At(ev.At, func() { sm.events.Inc(); cp.Uncordon(ev.Node) }) //nolint:errcheck
			case EvDrain:
				e.At(ev.At, func() { sm.events.Inc(); cp.DrainAsync(ev.Node) }) //nolint:errcheck
			case EvRemediate:
				e.At(ev.At, func() { sm.events.Inc(); rem.SetEnabled(ev.On) })
			}
		}
	}

	// The cluster side reuses the mixed-workload harness; a pure-storage
	// scenario runs the engine directly.
	if s.Fleet.WS > 0 {
		gcfg := glunix.DefaultConfig(s.Fleet.WS)
		gcfg.Seed = s.Seed
		gcfg.Obs = reg
		switch s.Fleet.Policy {
		case "restart":
			gcfg.Policy = glunix.RestartOnReturn
		case "ignore":
			gcfg.Policy = glunix.IgnoreUser
		}
		if s.Fleet.Heartbeat > 0 {
			gcfg.HeartbeatInterval = s.Fleet.Heartbeat
		}
		switch s.Fleet.FabricName {
		case "ethernet10":
			gcfg.Fabric = netsim.Ethernet10
		case "fddi100":
			gcfg.Fabric = netsim.FDDI100
		case "myrinet":
			gcfg.Fabric = netsim.Myrinet
		}
		if topoName := s.Fleet.Topo; topoName != "" {
			// Problems() already validated the name and ruled out shared
			// presets; "crossbar" resolves to a nil Topology, leaving the
			// config bit-identical to the flat default.
			base := gcfg.Fabric
			gcfg.Fabric = func(nodes int) netsim.Config {
				c := base(nodes)
				c.Topo, _ = netsim.TopoByName(topoName, nodes)
				return c
			}
		}
		jobs := expandJobs(s, horizon)
		res.JobsTotal = len(jobs)
		scheduleChecks(s, e, reg, sm, res)
		mres, err := glunix.RunMixedWith(e, gcfg, nil, jobs, horizon, wire)
		if err != nil && !errors.Is(err, sim.ErrStopped) {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		res.JobsCompleted = mres.JobsCompleted
		res.JobsTotal = mres.JobsTotal
		res.MeanResponse = mres.MeanResponse
	} else {
		scheduleChecks(s, e, reg, sm, res)
		wire(nil)
		if err := e.RunUntil(horizon); err != nil && !errors.Is(err, sim.ErrStopped) {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}

	if inj != nil {
		res.FaultsApplied = inj.Applied()
	}
	res.Ops, res.MetaOps, res.DataOps, res.OpErrors = mix.tallies()
	if cluster != nil {
		st := cluster.Fab.Stats()
		res.ClusterNet = &st
	}
	if sys != nil {
		st := sys.Fabric().Stats()
		res.XFSNet = &st
	}
	evalEndChecks(s, reg, sm, res)
	sortChecks(res)
	return res, nil
}

// runSharded executes a sharded fleet through the partitioned cluster
// workload and evaluates the end checkpoint on the merged registry.
func runSharded(s *Scenario, opts Options) (*Result, error) {
	sh := s.Fleet.Shards
	tc := experiments.DefaultShardedTrafficConfig(s.Fleet.WS, opts.Workers, s.Seed)
	tc.Parts = sh.Parts
	if sh.Rounds > 0 {
		tc.Rounds = sh.Rounds
	}
	if sh.Barriers > 0 {
		tc.Barriers = sh.Barriers
	}
	tres, reg, err := experiments.ShardedTraffic(tc)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	res := &Result{S: s, Registry: reg, Sharded: &tres}
	sm := newScenarioMetrics(reg)
	evalEndChecks(s, reg, sm, res)
	sortChecks(res)
	return res, nil
}

// scenarioMetrics are the runner's own scenario.* instruments
// (docs/OBSERVABILITY.md).
type scenarioMetrics struct {
	events      *obs.Counter
	checkpoints *obs.Counter
	pass        *obs.Counter
	fail        *obs.Counter
	unknown     *obs.Counter
	loadPPM     *obs.Gauge
	reg         *obs.Registry
}

func newScenarioMetrics(r *obs.Registry) *scenarioMetrics {
	return &scenarioMetrics{
		events:      r.Counter("scenario.events"),
		checkpoints: r.Counter("scenario.checkpoints"),
		pass:        r.Counter("scenario.asserts.pass"),
		fail:        r.Counter("scenario.asserts.fail"),
		unknown:     r.Counter("scenario.asserts.unknown"),
		loadPPM:     r.Gauge("scenario.load.ppm"),
		reg:         r,
	}
}

// expandJobs turns EvJobs events into the trace the mixed harness
// submits. IDs are assigned in script order; arrivals past the horizon
// are dropped (they could never run).
func expandJobs(s *Scenario, horizon sim.Time) []trace.ParallelJob {
	var jobs []trace.ParallelJob
	id := 0
	for _, ev := range s.Events {
		if ev.Kind != EvJobs {
			continue
		}
		grain := ev.Grain
		if grain <= 0 {
			grain = 5 * sim.Second
		}
		for i := 0; i < ev.Count; i++ {
			arrive := ev.At + sim.Time(i)*sim.Time(ev.Every)
			if arrive > horizon {
				break
			}
			jobs = append(jobs, trace.ParallelJob{
				ID: id, Arrive: arrive, Nodes: ev.Nodes, Work: ev.Work, CommGrain: grain,
			})
			id++
		}
	}
	return jobs
}

// flashCrowd turns users 1..n active immediately and, for a windowed
// crowd, idle again at the window's end.
func flashCrowd(c *glunix.Cluster, ev Event) {
	n := ev.Users
	if n > len(c.Daemons)-1 {
		n = len(c.Daemons) - 1
	}
	for ws := 1; ws <= n; ws++ {
		c.Daemons[ws].SetUserActive(true)
	}
	if ev.For > 0 {
		c.Eng.At(sim.Time(ev.For)+c.Eng.Now(), func() {
			for ws := 1; ws <= n; ws++ {
				c.Daemons[ws].SetUserActive(false)
			}
		})
	}
}

// scheduleDiurnal generates the interactive-activity trace and feeds it
// to the daemons, offset to the event's start time.
func scheduleDiurnal(s *Scenario, e *sim.Engine, c *glunix.Cluster, ev Event, horizon sim.Time) {
	days := ev.Days
	if days <= 0 {
		days = int((horizon-ev.At)/sim.Time(24*sim.Hour)) + 1
	}
	acfg := trace.DefaultActivityConfig(s.Fleet.WS, days)
	acfg.Seed = s.Seed
	tr := trace.GenerateActivity(acfg)
	for _, aev := range tr.Events {
		aev := aev
		t := ev.At + aev.T
		if t > horizon || aev.WS+1 >= len(c.Daemons) {
			continue
		}
		e.At(t, func() { c.Daemons[aev.WS+1].SetUserActive(aev.Active) })
	}
}

// scheduleChecks registers the timed checkpoints. Called after every
// event is scheduled, so a checkpoint sees the effects of same-instant
// events (engine events at one instant run in registration order).
func scheduleChecks(s *Scenario, e *sim.Engine, reg *obs.Registry, sm *scenarioMetrics, res *Result) {
	byTime := map[sim.Time][]Expect{}
	var times []sim.Time
	for _, ex := range s.Expects {
		if ex.AtEnd {
			continue
		}
		if _, seen := byTime[ex.At]; !seen {
			times = append(times, ex.At)
		}
		byTime[ex.At] = append(byTime[ex.At], ex)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		t := t
		e.At(t, func() {
			sm.checkpoints.Inc()
			sp := reg.StartSpan("scenario.checkpoint", -1)
			snap := snapshotMap(reg)
			spans := reg.Spans()
			for _, ex := range byTime[t] {
				record(res, sm, evalExpect(snap, spans, ex))
			}
			reg.EndSpan(sp)
		})
	}
}

// evalEndChecks evaluates the "at end" checkpoint on the final
// registry state.
func evalEndChecks(s *Scenario, reg *obs.Registry, sm *scenarioMetrics, res *Result) {
	var end []Expect
	for _, ex := range s.Expects {
		if ex.AtEnd {
			end = append(end, ex)
		}
	}
	if len(end) == 0 {
		return
	}
	sm.checkpoints.Inc()
	snap := snapshotMap(reg)
	spans := reg.Spans()
	for _, ex := range end {
		record(res, sm, evalExpect(snap, spans, ex))
	}
}

// record files one check under the result and the assert counters.
func record(res *Result, sm *scenarioMetrics, c Check) {
	res.Checks = append(res.Checks, c)
	switch c.Outcome {
	case Pass:
		res.Pass++
		sm.pass.Inc()
	case Fail:
		res.Fail++
		sm.fail.Inc()
	case Unknown:
		res.Unknown++
		sm.unknown.Inc()
	}
}

// snapshotMap indexes a registry snapshot by metric name.
func snapshotMap(reg *obs.Registry) map[string]obs.Metric {
	snap := reg.Snapshot()
	m := make(map[string]obs.Metric, len(snap))
	for _, mt := range snap {
		m[mt.Name] = mt
	}
	return m
}

// evalExpect evaluates one assertion against a snapshot (and, for the
// span form, the span trace as of the checkpoint). A quantile of a
// metric that is not a populated histogram, or any assertion on a
// metric the run never registered, is Unknown.
func evalExpect(snap map[string]obs.Metric, spans []obs.Span, ex Expect) Check {
	if ex.Span {
		return evalSpanExpect(spans, ex)
	}
	c := Check{Expect: ex}
	m, ok := snap[ex.Metric]
	if !ok {
		c.Outcome, c.Detail = Unknown, "no such metric"
		return c
	}
	got := m.Value
	if ex.Quantile > 0 {
		q, ok := m.Quantile(ex.Quantile)
		if !ok {
			c.Outcome = Unknown
			if m.Type != "histogram" {
				c.Detail = fmt.Sprintf("p%s of a %s", formatFrac(ex.Quantile), m.Type)
			} else {
				c.Detail = "histogram has no observations"
			}
			return c
		}
		got = q
	}
	c.Got = got
	if ex.Op.Eval(got, ex.Value) {
		c.Outcome = Pass
	} else {
		c.Outcome = Fail
	}
	return c
}

// evalSpanExpect evaluates one span-trace assertion. The count form is
// always evaluable — a span that never started is a genuine count of
// zero, so `expect span x count == 0` passes on a quiet run. The
// quantile form ranks the closed spans' durations (ceil-rank, like the
// histogram quantiles); no closed spans means Unknown, the same way an
// empty histogram does.
func evalSpanExpect(spans []obs.Span, ex Expect) Check {
	c := Check{Expect: ex}
	var count int64
	var durs []int64
	for _, sp := range spans {
		if sp.Name != ex.Metric {
			continue
		}
		count++
		if sp.End > 0 {
			durs = append(durs, int64(sp.End-sp.Start))
		}
	}
	if ex.Quantile == 0 {
		c.Got = count
		if ex.Op.Eval(count, ex.Value) {
			c.Outcome = Pass
		} else {
			c.Outcome = Fail
		}
		return c
	}
	if len(durs) == 0 {
		c.Outcome = Unknown
		if count == 0 {
			c.Detail = "no spans with this name"
		} else {
			c.Detail = "no closed spans"
		}
		return c
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	rank := int(math.Ceil(ex.Quantile / 100 * float64(len(durs))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(durs) {
		rank = len(durs)
	}
	c.Got = durs[rank-1]
	if ex.Op.Eval(c.Got, ex.Value) {
		c.Outcome = Pass
	} else {
		c.Outcome = Fail
	}
	return c
}

// sortChecks puts the result's checks in report order: timed
// checkpoints by time, then end, matching Scenario normalization.
func sortChecks(res *Result) {
	sort.SliceStable(res.Checks, func(i, j int) bool {
		a, b := res.Checks[i].Expect, res.Checks[j].Expect
		if a.AtEnd != b.AtEnd {
			return !a.AtEnd
		}
		return a.At < b.At
	})
}

// Report renders the run for humans and for the golden gate: every
// line is a pure function of the scenario, so the bytes are identical
// run to run and (sharded) across worker counts. No wall-clock figure
// appears anywhere.
func (r *Result) Report() string {
	var b strings.Builder
	s := r.S
	fmt.Fprintf(&b, "scenario %s (seed %d", s.Name, s.Seed)
	if s.Horizon > 0 {
		fmt.Fprintf(&b, ", horizon %s", s.Horizon)
	}
	b.WriteString(")\n")
	if s.Fleet.WS > 0 && s.Fleet.Shards == nil {
		policy := s.Fleet.Policy
		if policy == "" {
			policy = "migrate"
		}
		fabric := s.Fleet.FabricName
		if fabric == "" {
			fabric = "atm155"
		}
		fmt.Fprintf(&b, "fleet: %d workstations, policy %s, fabric %s\n", s.Fleet.WS, policy, fabric)
	}
	if x := s.Fleet.XFS; x != nil {
		fmt.Fprintf(&b, "fleet: xfs %d nodes (%d spares, %d managers)", x.Nodes, x.Spares, x.Managers)
		if x.Pipelined {
			b.WriteString(", pipelined")
		}
		b.WriteByte('\n')
	}
	if sh := s.Fleet.Shards; sh != nil {
		fmt.Fprintf(&b, "fleet: %d nodes sharded into %d partitions\n", s.Fleet.WS, sh.Parts)
	}
	if fs := r.Federated; fs != nil {
		w := s.Fleet.WAN
		fmt.Fprintf(&b, "fleet: federation of %d clusters, wan lat %s bw %s Mb/s\n",
			len(fs.Clusters), w.Latency, formatFrac(w.BandwidthMbps))
		for i, cs := range fs.Clusters {
			cf := s.Fleet.Clusters[i]
			fmt.Fprintf(&b, "  cluster %s:", cs.Name)
			if cf.WS > 0 {
				fmt.Fprintf(&b, " %d ws,", cf.WS)
			}
			if cf.XFS > 0 {
				fmt.Fprintf(&b, " %d xfs,", cf.XFS)
			}
			fmt.Fprintf(&b, " jobs %d (%d spilled in)\n", cs.JobsCompleted, cs.SpillReceived)
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(&b, "events: %d scheduled\n", len(s.Events))
	}
	if r.FaultsTot > 0 {
		fmt.Fprintf(&b, "faults: %d/%d applied\n", r.FaultsApplied, r.FaultsTot)
	}
	if r.JobsTotal > 0 && r.Federated == nil {
		fmt.Fprintf(&b, "jobs: %d/%d completed, mean response %s\n",
			r.JobsCompleted, r.JobsTotal, r.MeanResponse)
	} else if r.JobsTotal > 0 {
		fmt.Fprintf(&b, "jobs: %d/%d completed\n", r.JobsCompleted, r.JobsTotal)
	}
	if r.Ops > 0 {
		fmt.Fprintf(&b, "opmix: %d ops (%d metadata, %d data, %d errors)\n",
			r.Ops, r.MetaOps, r.DataOps, r.OpErrors)
	}
	netLine := func(label string, st *netsim.Stats) {
		fmt.Fprintf(&b, "net %s: offered %d, delivered %d, drops %d (%d injected)\n",
			label, st.Offered, st.Delivered, st.Drops, st.InjectedDrops)
	}
	if r.ClusterNet != nil && r.XFSNet != nil {
		netLine("cluster", r.ClusterNet)
		netLine("xfs", r.XFSNet)
	} else if r.ClusterNet != nil {
		netLine("cluster", r.ClusterNet)
	} else if r.XFSNet != nil {
		netLine("xfs", r.XFSNet)
	}
	if sh := r.Sharded; sh != nil {
		fmt.Fprintf(&b, "sharded: makespan %.1fus, barrier %.1fus, %d events, %d cross packets, %d overflows, %d drops\n",
			sh.MakespanUs, sh.BarrierUs, sh.Events, sh.CrossSent, sh.Overflows, sh.Drops)
	}
	if fs := r.Federated; fs != nil {
		fmt.Fprintf(&b, "federation: %d jobs spilled, %d lease grants, wan sent %d, drops %d\n",
			fs.Spilled, fs.LeaseOps, fs.WANSent, fs.WANDrops)
	}
	if len(r.Checks) > 0 {
		b.WriteString("checks:\n")
		for _, c := range r.Checks {
			fmt.Fprintf(&b, "  %-7s %s", c.Outcome, c.Expect.String())
			switch c.Outcome {
			case Unknown:
				fmt.Fprintf(&b, " [%s]", c.Detail)
			default:
				fmt.Fprintf(&b, " [got %s]", formatGot(c))
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "asserts: %d passed, %d failed, %d unknown\n", r.Pass, r.Fail, r.Unknown)
	if r.Ok() {
		b.WriteString("result: PASS\n")
	} else {
		b.WriteString("result: FAIL\n")
	}
	return b.String()
}

// formatGot prints an observed value in the expectation's unit.
func formatGot(c Check) string {
	if c.Got == math.MaxInt64 {
		return "+Inf"
	}
	if c.Expect.IsDur {
		return sim.Duration(c.Got).String()
	}
	return fmt.Sprint(c.Got)
}
