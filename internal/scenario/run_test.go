package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScenario is a fast cluster story: a crash window, a job batch,
// and assertions spanning all three outcomes.
const tinyScenario = `scenario tiny
seed 3
horizon 600s
fleet ws 4
at 10s jobs 2 nodes=2 work=60s every=5s
at 120s crash 3 for 60s
expect faults.injected == 0 at 60s
expect faults.injected >= 1 at 300s
expect glunix.restarts >= 0 at end
expect no.such.metric == 0 at end
expect faults.injected == 99 at end
`

func mustParse(t *testing.T, in string) *Scenario {
	t.Helper()
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunOutcomes drives the tiny scenario end to end and checks each
// assertion lands in the right bucket: timed checks see the state at
// their instant, a typo'd metric is Unknown (not a silent pass), and a
// wrong expectation fails.
func TestRunOutcomes(t *testing.T) {
	res, err := Run(mustParse(t, tinyScenario), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checks) != 5 {
		t.Fatalf("got %d checks: %+v", len(res.Checks), res.Checks)
	}
	wantOutcome := func(i int, o Outcome) {
		t.Helper()
		if res.Checks[i].Outcome != o {
			t.Fatalf("check %d (%s): got %s want %s [%s]",
				i, res.Checks[i].Expect.String(), res.Checks[i].Outcome, o, res.Checks[i].Detail)
		}
	}
	wantOutcome(0, Pass) // before the crash: 0 faults injected
	wantOutcome(1, Pass) // after: at least 1
	wantOutcome(2, Pass)
	wantOutcome(3, Unknown)
	wantOutcome(4, Fail)
	if res.Pass != 3 || res.Fail != 1 || res.Unknown != 1 {
		t.Fatalf("tally %d/%d/%d", res.Pass, res.Fail, res.Unknown)
	}
	if res.Ok() {
		t.Fatal("a failing run must not be Ok")
	}
	if res.JobsTotal != 2 {
		t.Fatalf("jobs total %d", res.JobsTotal)
	}
	if res.FaultsApplied < 1 || res.FaultsTot != 1 {
		t.Fatalf("faults %d/%d", res.FaultsApplied, res.FaultsTot)
	}
	// The registry carries the scenario.* counters for export.
	if v, ok := res.Registry.CounterValue("scenario.asserts.unknown"); !ok || v != 1 {
		t.Fatalf("scenario.asserts.unknown = %d, %v", v, ok)
	}
	if v, ok := res.Registry.CounterValue("scenario.checkpoints"); !ok || v != 3 {
		t.Fatalf("scenario.checkpoints = %d, %v", v, ok)
	}
}

// TestRunDeterminism runs the same scenario twice: report and metrics
// export must be byte-identical — the property verify.sh golden-gates.
func TestRunDeterminism(t *testing.T) {
	run := func() (string, []byte) {
		res, err := Run(mustParse(t, tinyScenario), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Registry.WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res.Report(), buf.Bytes()
	}
	r1, m1 := run()
	r2, m2 := run()
	if r1 != r2 {
		t.Fatalf("reports differ:\n--- 1 ---\n%s--- 2 ---\n%s", r1, r2)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics exports differ")
	}
}

// TestRunOpMix drives the NFS-style op mix on a small xFS-only fleet:
// the metadata fraction must dominate as declared, the latency
// histogram must populate (so p-quantile assertions have data), and a
// load event must not break determinism.
func TestRunOpMix(t *testing.T) {
	in := `scenario mix
seed 11
horizon 120s
fleet xfs 4
at 0s opmix 6 meta=0.9 think=1s files=8 blocks=4
at 60s load 2
expect scenario.opmix.ops > 50 at end
expect scenario.opmix.latency.ns p95 <= 1s at end
expect net.drops.injected == 0 at end
`
	res, err := Run(mustParse(t, in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("op-mix run not green:\n%s", res.Report())
	}
	if res.MetaOps <= res.DataOps {
		t.Fatalf("meta=%d data=%d: metadata ops should dominate at meta=0.9", res.MetaOps, res.DataOps)
	}
	if res.XFSNet == nil || res.XFSNet.Delivered == 0 {
		t.Fatal("xfs fabric saw no traffic")
	}
}

// TestRunControlVerbs drives the operator verbs end to end: a cordon
// an operator placed, a drain (with its cp.drain span), a remediator
// toggled on mid-run that rebuilds an unscripted disk failure, and the
// span assertions — both the count and the duration-quantile form —
// evaluating against the trace.
func TestRunControlVerbs(t *testing.T) {
	in := `scenario ops
seed 1
horizon 600s
fleet ws 6
fleet xfs 6 spares=1 managers=2 cache=8
at 0s remediate on
at 10s jobs 2 nodes=2 work=60s every=5s
at 30s cordon 5
at 60s drain 4
at 120s diskfail 1
at 400s uncordon 5
expect cp.cordons == 1 at end
expect cp.drains == 1 at end
expect cp.uncordons == 1 at end
expect remediate.rebuilds == 1 at end
expect span cp.drain count == 1 at end
expect span cp.drain p100 <= 10m at end
expect span no.such.span p50 <= 1s at end
expect span no.such.span count == 0 at end
`
	res, err := Run(mustParse(t, in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Checks {
		switch {
		case c.Expect.Span && c.Expect.Metric == "no.such.span" && c.Expect.Quantile > 0:
			if c.Outcome != Unknown {
				t.Fatalf("quantile of a missing span = %s, want UNKNOWN", c.Outcome)
			}
		default:
			if c.Outcome != Pass {
				t.Fatalf("check %q = %s (got %d) [%s]", c.Expect.String(), c.Outcome, c.Got, c.Detail)
			}
		}
	}
	if res.Pass != 7 || res.Unknown != 1 || res.Fail != 0 {
		t.Fatalf("tally %d/%d/%d", res.Pass, res.Fail, res.Unknown)
	}
}

// TestRunSharded checks the sharded path: end assertions evaluate on
// the merged registry, and the report is identical across worker
// counts (Workers is execution, not identity).
func TestRunSharded(t *testing.T) {
	in := `scenario shardy
seed 5
fleet ws 16
fleet shards 4 rounds=2 barriers=2
expect net.drops == 0 at end
expect net.cross.sent > 0 at end
`
	s := mustParse(t, in)
	run := func(workers int) string {
		res, err := Run(s, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Sharded == nil {
			t.Fatal("no sharded result")
		}
		return res.Report()
	}
	r1 := run(1)
	r4 := run(4)
	if r1 != r4 {
		t.Fatalf("report depends on worker count:\n--- w1 ---\n%s--- w4 ---\n%s", r1, r4)
	}
}

// TestRunTopologyFleet runs the tiny story on a fat-tree Myrinet
// fabric: the topo= option must thread through to the fabric (the
// net.topo.* histograms only exist on topology fabrics) and keep the
// run deterministic.
func TestRunTopologyFleet(t *testing.T) {
	in := strings.Replace(tinyScenario, "fleet ws 4", "fleet ws 4 fabric=myrinet topo=fattree", 1)
	run := func() (string, []byte) {
		res, err := Run(mustParse(t, in), Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Registry.WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res.Report(), buf.Bytes()
	}
	r1, m1 := run()
	r2, m2 := run()
	if r1 != r2 {
		t.Fatalf("reports differ:\n--- 1 ---\n%s--- 2 ---\n%s", r1, r2)
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics exports differ")
	}
	if !bytes.Contains(m1, []byte(`"net.topo.hops"`)) {
		t.Fatal("topology fleet did not register net.topo.hops")
	}
	// The same story on the flat default must NOT grow topology rows —
	// that is what keeps pre-topology goldens byte-identical.
	flat, err := Run(mustParse(t, tinyScenario), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fb bytes.Buffer
	if err := flat.Registry.WriteMetricsJSON(&fb); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(fb.Bytes(), []byte(`"net.topo.hops"`)) {
		t.Fatal("flat fleet registered net.topo.hops")
	}
}

// fedRunScenario is a small two-building federation: the annex takes a
// burst of gangs it cannot hold, spills on, and the library absorbs
// part of the backlog over the WAN.
const fedRunScenario = `scenario fed-run
seed 9
horizon 90s
fleet cluster library ws=8
fleet cluster annex ws=4
wan lat=10ms bw=100
at 0s spill on
at 1s jobs 4 nodes=4 work=15s every=1s grain=1s cluster=annex
expect fed.spill.jobs >= 1 at end
expect wan.sent > 0 at end
expect scenario.events == 2 at end
`

// TestRunFederated drives a federated scenario end to end: the spill
// assertions must pass, the summary must tally per-member jobs, and —
// the property verify.sh golden-gates — report and metrics export must
// be byte-identical at any worker count.
func TestRunFederated(t *testing.T) {
	run := func(workers int) (*Result, string, []byte) {
		res, err := Run(mustParse(t, fedRunScenario), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Registry.WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res, res.Report(), buf.Bytes()
	}
	res, r1, m1 := run(1)
	if !res.Ok() {
		t.Fatalf("federated run not green:\n%s", r1)
	}
	if res.Federated == nil || len(res.Federated.Clusters) != 2 {
		t.Fatalf("missing federated summary: %+v", res.Federated)
	}
	if res.Federated.Spilled < 1 {
		t.Fatalf("no jobs spilled:\n%s", r1)
	}
	if res.JobsTotal != 4 || res.JobsCompleted != 4 {
		t.Fatalf("jobs %d/%d, want 4/4:\n%s", res.JobsCompleted, res.JobsTotal, r1)
	}
	lib := res.Federated.Clusters[0]
	if lib.Name != "library" || lib.SpillReceived != res.Federated.Spilled {
		t.Fatalf("library should have received every spill: %+v", res.Federated)
	}
	for _, workers := range []int{2, 4} {
		_, r, m := run(workers)
		if r != r1 {
			t.Fatalf("report differs at %d workers:\n--- 1 ---\n%s--- %d ---\n%s", workers, r1, workers, r)
		}
		if !bytes.Equal(m, m1) {
			t.Fatalf("metrics export differs at %d workers", workers)
		}
	}
}
