// Package scenario is the declarative scenario engine: cluster stories
// as checked-in text files instead of hand-coded Go experiments. A
// scenario declares a fleet (a GLUnix cluster, an xFS installation, or
// a sharded multicore run), a timed event script (job arrivals, fault
// lines and fault-plan references, flash crowds, diurnal idleness, an
// NFS-style op-mix workload with a diurnal load curve), and assertions
// checked against the observability registry at named checkpoints.
//
// The DSL is a compact line grammar in the style of the fault-plan
// grammar (docs/FAULTS.md): one directive per line, '#' comments,
// Go-syntax durations. Parse reads it; Scenario.String prints it back
// canonically, and parse∘print is the identity (TestParsePrintIdentity)
// — a scenario file is a deterministic input the same way a fault plan
// is. The full grammar, every event kind, every assertion form and the
// runner's exit codes are documented in docs/SCENARIOS.md.
//
// Run executes a scenario on a fresh engine seeded from the file. All
// workload randomness derives from that seed through private RNG
// streams, every event is an ordinary engine event, and assertions read
// deterministic registry snapshots — so a scenario's report and metric
// exports are byte-identical run to run, and (for sharded fleets)
// across worker counts. scripts/verify.sh golden-gates the shipped
// scenarios under examples/scenarios/ on exactly that property.
//
// Architecture (DESIGN.md §11): parse → schedule → assert. The parser
// produces a normalized Scenario (events sorted by time, expectations
// by checkpoint); the runner translates it into engine events against
// live subsystems built from the fleet declaration; checkpoints are
// themselves engine events that snapshot the registry and record
// pass/fail/unknown outcomes as scenario.* metrics.
package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/nowproject/now/internal/faults"
	"github.com/nowproject/now/internal/sim"
)

// Scenario is one parsed scenario file: a fleet, an event script, and
// the expectations to check. Build one with Parse/ParseFile or in code;
// Validate reports structural problems either way.
type Scenario struct {
	// Name labels the scenario in reports and spans.
	Name string
	// Seed drives the engine and every derived RNG stream.
	Seed int64
	// Horizon is the length of the run in virtual time. Sharded fleets
	// run their workload to completion instead and ignore it.
	Horizon sim.Duration
	// Fleet declares what to build.
	Fleet Fleet
	// Events is the timed script, sorted by At (ties keep file order).
	Events []Event
	// Expects are the assertions, sorted by checkpoint.
	Expects []Expect
	// Dir is the directory fault-plan references resolve against.
	// ParseFile sets it to the scenario file's directory; it is not part
	// of the printed form.
	Dir string
}

// Fleet declares the systems a scenario runs against. At least one of
// WS, XFS or Shards must be set; Shards additionally requires WS (the
// node count) and excludes everything else.
type Fleet struct {
	// WS is the GLUnix cluster size (0 = no cluster). Node 0 is the
	// master; workstations are 1..WS, as everywhere in the repo.
	WS int
	// Policy is the user-return policy: "migrate" (default), "restart"
	// or "ignore".
	Policy string
	// Heartbeat overrides the GLUnix heartbeat interval (0 = default).
	Heartbeat sim.Duration
	// FabricName picks the cluster fabric preset: "ethernet10",
	// "atm155" (default), "fddi100" or "myrinet".
	FabricName string
	// Topo plugs a switch topology into a switched fabric: "crossbar"
	// (the flat default), "fattree" or "torus". Shared-medium presets
	// (ethernet10, fddi100) take no topology, and sharded fleets run
	// flat (netsim rejects sharding a topology).
	Topo string
	// XFS declares a serverless file system sharing the engine.
	XFS *XFSFleet
	// Shards switches the scenario to the sharded multicore engine.
	Shards *ShardFleet
	// Clusters switches the scenario to a wide-area federation (NOW of
	// NOWs, DESIGN.md §14): one cluster stack per entry, each on its own
	// partition of a sharded engine. Exclusive with WS/XFS/Shards.
	Clusters []ClusterFleet
	// WAN shapes the wide-area links between the federation's clusters.
	// Requires Clusters.
	WAN *WANFleet
}

// ClusterFleet declares one member cluster of a federated scenario:
// its GLUnix size and/or its xFS installation.
type ClusterFleet struct {
	// Name identifies the cluster in events ("jobs ... cluster=soda").
	Name string
	// WS is the GLUnix cluster size (0 = no global layer).
	WS int
	// XFS is the xFS node count (0 = no storage; the cluster still
	// reaches remote files through the federated cache tier).
	XFS int
}

// WANFleet shapes the federation's wide-area links: symmetric one-way
// latency and per-direction bandwidth.
type WANFleet struct {
	Latency       sim.Duration
	BandwidthMbps float64
}

// XFSFleet shapes the storage side of a fleet.
type XFSFleet struct {
	// Nodes participate in the installation (each runs a client and a
	// storage server).
	Nodes int
	// Spares are hot spares at the end of the id range (rebuild targets).
	Spares int
	// Managers is the manager-set size (0 = xfs default, nodes/4).
	Managers int
	// CacheBlocks bounds each client cache (0 = xfs default).
	CacheBlocks int
	// BlockBytes is the file block size (0 = xfs default).
	BlockBytes int
	// Pipelined turns on the batched data path (DESIGN.md §9).
	Pipelined bool
}

// ShardFleet runs the partitioned cluster workload of DESIGN.md §10 on
// the sharded engine. Parts is workload identity; the worker count is
// an execution-only Options knob and never appears in the file.
type ShardFleet struct {
	Parts int
	// Rounds and Barriers shape the per-rank workload (0 = defaults: 4
	// each, the nowsim -shards shape).
	Rounds   int
	Barriers int
}

// EventKind classifies a scripted event.
type EventKind int

const (
	// EvFault is one fault-grammar line (crash, partition, link,
	// diskfail, rebuild, mgrkill, ... — docs/FAULTS.md).
	EvFault EventKind = iota + 1
	// EvFaultPlan references a fault-plan file; its times are offset by
	// the event time.
	EvFaultPlan
	// EvJobs submits a batch of parallel jobs to the GLUnix master.
	EvJobs
	// EvOpMix starts the NFS-style op-mix client population on the xFS
	// fleet.
	EvOpMix
	// EvLoad sets the op-mix load factor (the diurnal curve is a series
	// of load events).
	EvLoad
	// EvFlashCrowd turns a burst of interactive users active on the
	// cluster for a window.
	EvFlashCrowd
	// EvDiurnal feeds the generated diurnal interactive-activity trace
	// into the cluster's daemons.
	EvDiurnal
	// EvCordon marks a workstation unschedulable via the control plane.
	EvCordon
	// EvUncordon clears a cordon (or a completed drain).
	EvUncordon
	// EvDrain evacuates a workstation: cordon, then migrate its guest
	// away (controlplane.DrainAsync — the drain lands asynchronously).
	EvDrain
	// EvRemediate toggles the self-healing remediation loop on or off.
	EvRemediate
	// EvSpill toggles federated job spill-over on or off (every member
	// cluster's placer flips together).
	EvSpill
)

// Event is one line of the timed script. Which fields matter depends on
// Kind; zero values mean "runner default" and are omitted when printed.
type Event struct {
	// At is the event time.
	At sim.Time
	// Kind selects the event class.
	Kind EventKind
	// Line is the source line the event was parsed from (0 for events
	// built in code). Not part of the printed form.
	Line int

	// Fault is the embedded fault (EvFault); Fault.At mirrors At.
	Fault faults.Fault
	// Path is the referenced plan file (EvFaultPlan). No whitespace.
	Path string
	// Count, Nodes, Work, Every, Grain shape a jobs batch (EvJobs).
	Count int
	Nodes int
	Work  sim.Duration
	Every sim.Duration
	Grain sim.Duration
	// Clients, MetaFrac, Think, Files, Blocks shape the op mix (EvOpMix).
	Clients  int
	MetaFrac float64
	Think    sim.Duration
	Files    int
	Blocks   int
	// Load is the op-mix intensity multiplier (EvLoad).
	Load float64
	// Users is the flash-crowd size (EvFlashCrowd).
	Users int
	// For is the flash-crowd window (0 = until the trace says otherwise).
	For sim.Duration
	// Days sizes the diurnal activity trace (EvDiurnal; 0 = enough to
	// cover the horizon).
	Days int
	// Node is the workstation a control verb addresses (EvCordon,
	// EvUncordon, EvDrain).
	Node int
	// On is the switch position (EvRemediate, EvSpill).
	On bool
	// Cluster targets a federated member by name (EvJobs in federated
	// scenarios).
	Cluster string
}

// CmpOp is an assertion comparison operator.
type CmpOp int

const (
	OpEQ CmpOp = iota + 1
	OpNE
	OpLE
	OpGE
	OpLT
	OpGT
)

var opNames = [...]string{OpEQ: "==", OpNE: "!=", OpLE: "<=", OpGE: ">=", OpLT: "<", OpGT: ">"}

// String renders the operator as written in scenario files.
func (o CmpOp) String() string {
	if o >= 1 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ParseCmpOp reads an operator token.
func ParseCmpOp(s string) (CmpOp, error) {
	for o, n := range opNames {
		if n == s {
			return CmpOp(o), nil
		}
	}
	return 0, fmt.Errorf("unknown comparison %q (want ==, !=, <=, >=, <, >)", s)
}

// Eval applies the comparison.
func (o CmpOp) Eval(got, want int64) bool {
	switch o {
	case OpEQ:
		return got == want
	case OpNE:
		return got != want
	case OpLE:
		return got <= want
	case OpGE:
		return got >= want
	case OpLT:
		return got < want
	case OpGT:
		return got > want
	}
	return false
}

// Expect is one assertion: compare a metric (counter or gauge value,
// histogram observation count, or histogram quantile when Quantile is
// set) against Value at a checkpoint — a virtual time, or the end of
// the run. The span form (Span set) asserts over the registry's span
// trace instead: how many spans named Metric were recorded ("count"),
// or a percentile of the closed spans' durations ("p95").
type Expect struct {
	// Metric is the registry name (docs/OBSERVABILITY.md) — a span name
	// when Span is set.
	Metric string
	// Span switches the assertion to the span trace: Quantile zero is
	// the "count" form (spans recorded with this name), nonzero a
	// duration percentile over the closed spans.
	Span bool
	// Quantile, when nonzero, asserts the p-th percentile of a histogram
	// (the "p95" form); zero asserts the metric's value.
	Quantile float64
	// Op compares observed against Value.
	Op CmpOp
	// Value is the expectation, in the metric's unit (durations in ns).
	Value int64
	// IsDur records that Value was written as a duration, so printing
	// round-trips the unit.
	IsDur bool
	// AtEnd checks after the run completes; otherwise At is the
	// checkpoint time.
	AtEnd bool
	At    sim.Time
	// Line is the source line (0 for expects built in code).
	Line int
}

// fabricPresets names the netsim presets a fleet line may pick.
var fabricPresets = []string{"ethernet10", "atm155", "fddi100", "myrinet"}

// sharedPresets are the shared-medium subset: no switch structure to
// plug a topology into.
var sharedPresets = []string{"ethernet10", "fddi100"}

// topoNames names the switch topologies a fleet line may pick
// (netsim.TopoByName).
var topoNames = []string{"crossbar", "fattree", "torus"}

// policies names the GLUnix user-return policies.
var policies = []string{"migrate", "restart", "ignore"}

// normalize stable-sorts events by time and expects by checkpoint, the
// canonical order String prints. Like faults.Plan, a scenario's
// identity is its normalized form.
func (s *Scenario) normalize() {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	sort.SliceStable(s.Expects, func(i, j int) bool {
		a, b := s.Expects[i], s.Expects[j]
		if a.AtEnd != b.AtEnd {
			return !a.AtEnd // timed checkpoints before end
		}
		return a.At < b.At
	})
}

// String renders the scenario in canonical file syntax. Parsing the
// result yields an equal scenario (modulo source-line numbers and Dir):
// parse∘print is the identity.
func (s *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s\n", s.Name)
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	if s.Horizon > 0 {
		fmt.Fprintf(&b, "horizon %s\n", s.Horizon)
	}
	if s.Fleet.WS > 0 {
		fmt.Fprintf(&b, "fleet ws %d", s.Fleet.WS)
		if s.Fleet.Policy != "" {
			fmt.Fprintf(&b, " policy=%s", s.Fleet.Policy)
		}
		if s.Fleet.Heartbeat > 0 {
			fmt.Fprintf(&b, " heartbeat=%s", s.Fleet.Heartbeat)
		}
		if s.Fleet.FabricName != "" {
			fmt.Fprintf(&b, " fabric=%s", s.Fleet.FabricName)
		}
		if s.Fleet.Topo != "" {
			fmt.Fprintf(&b, " topo=%s", s.Fleet.Topo)
		}
		b.WriteByte('\n')
	}
	if x := s.Fleet.XFS; x != nil {
		fmt.Fprintf(&b, "fleet xfs %d", x.Nodes)
		if x.Spares > 0 {
			fmt.Fprintf(&b, " spares=%d", x.Spares)
		}
		if x.Managers > 0 {
			fmt.Fprintf(&b, " managers=%d", x.Managers)
		}
		if x.CacheBlocks > 0 {
			fmt.Fprintf(&b, " cache=%d", x.CacheBlocks)
		}
		if x.BlockBytes > 0 {
			fmt.Fprintf(&b, " block=%d", x.BlockBytes)
		}
		if x.Pipelined {
			b.WriteString(" pipelined")
		}
		b.WriteByte('\n')
	}
	if sh := s.Fleet.Shards; sh != nil {
		fmt.Fprintf(&b, "fleet shards %d", sh.Parts)
		if sh.Rounds > 0 {
			fmt.Fprintf(&b, " rounds=%d", sh.Rounds)
		}
		if sh.Barriers > 0 {
			fmt.Fprintf(&b, " barriers=%d", sh.Barriers)
		}
		b.WriteByte('\n')
	}
	for _, c := range s.Fleet.Clusters {
		fmt.Fprintf(&b, "fleet cluster %s", c.Name)
		if c.WS > 0 {
			fmt.Fprintf(&b, " ws=%d", c.WS)
		}
		if c.XFS > 0 {
			fmt.Fprintf(&b, " xfs=%d", c.XFS)
		}
		b.WriteByte('\n')
	}
	if w := s.Fleet.WAN; w != nil {
		fmt.Fprintf(&b, "wan lat=%s bw=%s\n", w.Latency, formatFrac(w.BandwidthMbps))
	}
	for _, ev := range s.Events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	for _, ex := range s.Expects {
		b.WriteString(ex.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the event as a scenario line.
func (ev Event) String() string {
	var b strings.Builder
	switch ev.Kind {
	case EvFault:
		// Fault.String already leads with the time in plan-file syntax.
		fmt.Fprintf(&b, "at %s", ev.Fault.String())
		return b.String()
	}
	fmt.Fprintf(&b, "at %s ", sim.Duration(ev.At))
	switch ev.Kind {
	case EvFaultPlan:
		fmt.Fprintf(&b, "faults %s", ev.Path)
	case EvJobs:
		fmt.Fprintf(&b, "jobs %d nodes=%d work=%s", ev.Count, ev.Nodes, ev.Work)
		if ev.Every > 0 {
			fmt.Fprintf(&b, " every=%s", ev.Every)
		}
		if ev.Grain > 0 {
			fmt.Fprintf(&b, " grain=%s", ev.Grain)
		}
		if ev.Cluster != "" {
			fmt.Fprintf(&b, " cluster=%s", ev.Cluster)
		}
	case EvOpMix:
		fmt.Fprintf(&b, "opmix %d", ev.Clients)
		if ev.MetaFrac > 0 {
			fmt.Fprintf(&b, " meta=%s", formatFrac(ev.MetaFrac))
		}
		if ev.Think > 0 {
			fmt.Fprintf(&b, " think=%s", ev.Think)
		}
		if ev.Files > 0 {
			fmt.Fprintf(&b, " files=%d", ev.Files)
		}
		if ev.Blocks > 0 {
			fmt.Fprintf(&b, " blocks=%d", ev.Blocks)
		}
	case EvLoad:
		fmt.Fprintf(&b, "load %s", formatFrac(ev.Load))
	case EvFlashCrowd:
		fmt.Fprintf(&b, "flashcrowd %d", ev.Users)
		if ev.For > 0 {
			fmt.Fprintf(&b, " for %s", ev.For)
		}
	case EvDiurnal:
		b.WriteString("diurnal")
		if ev.Days > 0 {
			fmt.Fprintf(&b, " days=%d", ev.Days)
		}
	case EvCordon:
		fmt.Fprintf(&b, "cordon %d", ev.Node)
	case EvUncordon:
		fmt.Fprintf(&b, "uncordon %d", ev.Node)
	case EvDrain:
		fmt.Fprintf(&b, "drain %d", ev.Node)
	case EvRemediate:
		if ev.On {
			b.WriteString("remediate on")
		} else {
			b.WriteString("remediate off")
		}
	case EvSpill:
		if ev.On {
			b.WriteString("spill on")
		} else {
			b.WriteString("spill off")
		}
	default:
		fmt.Fprintf(&b, "event(%d)", int(ev.Kind))
	}
	return b.String()
}

// String renders the assertion as a scenario line.
func (ex Expect) String() string {
	var b strings.Builder
	if ex.Span {
		fmt.Fprintf(&b, "expect span %s", ex.Metric)
		if ex.Quantile == 0 {
			b.WriteString(" count")
		}
	} else {
		fmt.Fprintf(&b, "expect %s", ex.Metric)
	}
	if ex.Quantile > 0 {
		fmt.Fprintf(&b, " p%s", formatFrac(ex.Quantile))
	}
	fmt.Fprintf(&b, " %s ", ex.Op)
	if ex.IsDur {
		fmt.Fprintf(&b, "%s", sim.Duration(ex.Value))
	} else {
		fmt.Fprintf(&b, "%d", ex.Value)
	}
	if ex.AtEnd {
		b.WriteString(" at end")
	} else {
		fmt.Fprintf(&b, " at %s", sim.Duration(ex.At))
	}
	return b.String()
}

// formatFrac prints a fraction the way scenario files write them:
// shortest decimal form ("0.95", "1.5", "99").
func formatFrac(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Problem is one parse or validation finding: the source line it came
// from (0 when none applies) and a self-describing error. ParseAll and
// Scenario.Problems collect every Problem in a file instead of
// stopping at the first, so `nowsim check` can report them all.
type Problem struct {
	Line int
	Err  error
}

// Validate reports the first structural problem: a missing fleet, an
// event addressed at a fleet the scenario does not declare, a
// checkpoint past the horizon, a sharded fleet mixed with scripted
// events. Parse validates automatically; code-built scenarios should
// call it before Run (Run calls it again regardless). Problems returns
// the full list instead of just the first.
func (s *Scenario) Validate() error {
	if ps := s.Problems(); len(ps) > 0 {
		return ps[0].Err
	}
	return nil
}

// Problems reports every structural problem Validate checks for, in
// declaration order (header lines first, then events, then expects).
// An empty result means the scenario is runnable.
func (s *Scenario) Problems() []Problem {
	var ps []Problem
	add := func(line int, format string, a ...any) {
		ps = append(ps, Problem{Line: line, Err: fmt.Errorf(format, a...)})
	}
	if s.Name == "" {
		add(0, "scenario: missing 'scenario <name>' line")
	}
	fl := s.Fleet
	if fl.WS == 0 && fl.XFS == nil && fl.Shards == nil && len(fl.Clusters) == 0 {
		add(0, "scenario %s: no fleet declared (want 'fleet ws', 'fleet xfs', 'fleet shards' or 'fleet cluster')", s.Name)
	}
	if len(fl.Clusters) > 0 {
		return append(ps, s.federatedProblems()...)
	}
	if fl.WAN != nil {
		add(0, "scenario %s: 'wan' needs 'fleet cluster' members", s.Name)
	}
	if fl.WS < 0 {
		add(0, "scenario %s: fleet ws %d", s.Name, fl.WS)
	}
	if fl.Policy != "" && !contains(policies, fl.Policy) {
		add(0, "scenario %s: unknown policy %q (want migrate, restart or ignore)", s.Name, fl.Policy)
	}
	if fl.FabricName != "" && !contains(fabricPresets, fl.FabricName) {
		add(0, "scenario %s: unknown fabric %q (want %s)", s.Name, fl.FabricName, strings.Join(fabricPresets, ", "))
	}
	if fl.Topo != "" {
		if !contains(topoNames, fl.Topo) {
			add(0, "scenario %s: unknown topo %q (want %s)", s.Name, fl.Topo, strings.Join(topoNames, ", "))
		}
		if contains(sharedPresets, fl.FabricName) {
			add(0, "scenario %s: topo=%s needs a switched fabric, %s is a shared medium", s.Name, fl.Topo, fl.FabricName)
		}
		if fl.Topo != "crossbar" && fl.Shards != nil {
			add(0, "scenario %s: topo=%s cannot combine with fleet shards (topologies run single-engine)", s.Name, fl.Topo)
		}
	}
	if x := fl.XFS; x != nil {
		if x.Nodes-x.Spares < 3 {
			add(0, "scenario %s: fleet xfs %d spares=%d leaves fewer than 3 stripe members", s.Name, x.Nodes, x.Spares)
		}
	}
	if sh := fl.Shards; sh != nil {
		if fl.WS < 2 {
			add(0, "scenario %s: fleet shards needs 'fleet ws <nodes>' with at least 2 nodes", s.Name)
		}
		if fl.XFS != nil {
			add(0, "scenario %s: fleet shards cannot combine with fleet xfs", s.Name)
		}
		if sh.Parts < 1 || sh.Parts > fl.WS {
			add(0, "scenario %s: fleet shards %d with %d nodes", s.Name, sh.Parts, fl.WS)
		}
		for _, ev := range s.Events {
			add(ev.Line, "scenario %s: %s: sharded scenarios take no events", s.Name, at(ev))
		}
		for _, ex := range s.Expects {
			if !ex.AtEnd {
				add(ex.Line, "scenario %s: %s: sharded scenarios support 'at end' checkpoints only", s.Name, atx(ex))
			}
		}
		return ps
	}
	if s.Horizon <= 0 {
		add(0, "scenario %s: missing 'horizon <duration>' line", s.Name)
	}
	for _, ev := range s.Events {
		if s.Horizon > 0 && ev.At > sim.Time(s.Horizon) {
			add(ev.Line, "scenario %s: %s: event at %s is past the horizon %s", s.Name, at(ev), sim.Duration(ev.At), s.Horizon)
		}
		if err := s.validateEvent(ev); err != nil {
			add(ev.Line, "scenario %s: %s: %v", s.Name, at(ev), err)
		}
	}
	for _, ex := range s.Expects {
		if !ex.AtEnd && s.Horizon > 0 && ex.At > sim.Time(s.Horizon) {
			add(ex.Line, "scenario %s: %s: checkpoint %s is past the horizon %s (use 'at end')", s.Name, atx(ex), sim.Duration(ex.At), s.Horizon)
		}
		if ex.Quantile < 0 || ex.Quantile > 100 {
			add(ex.Line, "scenario %s: %s: quantile p%s out of (0,100]", s.Name, atx(ex), formatFrac(ex.Quantile))
		}
	}
	return ps
}

// federatedProblems validates a 'fleet cluster' scenario: the member
// list, the WAN, and the restricted event/assert surface (jobs with a
// cluster= target, spill toggles, 'at end' checkpoints).
func (s *Scenario) federatedProblems() []Problem {
	var ps []Problem
	add := func(line int, format string, a ...any) {
		ps = append(ps, Problem{Line: line, Err: fmt.Errorf(format, a...)})
	}
	fl := s.Fleet
	if fl.WS != 0 || fl.XFS != nil || fl.Shards != nil {
		add(0, "scenario %s: fleet cluster cannot combine with fleet ws/xfs/shards (members declare their own)", s.Name)
	}
	if len(fl.Clusters) < 2 {
		add(0, "scenario %s: a federation needs at least 2 'fleet cluster' members", s.Name)
	}
	names := map[string]ClusterFleet{}
	for _, c := range fl.Clusters {
		if _, dup := names[c.Name]; dup {
			add(0, "scenario %s: duplicate cluster %q", s.Name, c.Name)
		}
		names[c.Name] = c
		if c.WS == 0 && c.XFS == 0 {
			add(0, "scenario %s: cluster %s declares neither ws= nor xfs=", s.Name, c.Name)
		}
	}
	if w := fl.WAN; w == nil {
		add(0, "scenario %s: federated scenarios need a 'wan lat=<dur> bw=<mbps>' line", s.Name)
	} else {
		if w.Latency <= 0 {
			add(0, "scenario %s: wan lat must be positive (the sharded window needs a minimum link latency)", s.Name)
		}
		if w.BandwidthMbps <= 0 {
			add(0, "scenario %s: wan bw must be positive", s.Name)
		}
	}
	if s.Horizon <= 0 {
		add(0, "scenario %s: missing 'horizon <duration>' line", s.Name)
	}
	for _, ev := range s.Events {
		switch ev.Kind {
		case EvJobs:
			if ev.Count < 1 || ev.Nodes < 1 || ev.Work <= 0 {
				add(ev.Line, "scenario %s: %s: jobs wants a positive count, nodes= and work=", s.Name, at(ev))
				continue
			}
			if ev.Cluster == "" {
				add(ev.Line, "scenario %s: %s: federated jobs want a cluster=<name> target", s.Name, at(ev))
				continue
			}
			c, ok := names[ev.Cluster]
			if !ok {
				add(ev.Line, "scenario %s: %s: unknown cluster %q", s.Name, at(ev), ev.Cluster)
			} else if c.WS == 0 {
				add(ev.Line, "scenario %s: %s: cluster %s has no workstations to run jobs", s.Name, at(ev), ev.Cluster)
			} else if ev.Nodes > c.WS {
				add(ev.Line, "scenario %s: %s: jobs nodes=%d exceeds cluster %s's %d workstations (spill ships whole gangs, it does not split them)", s.Name, at(ev), ev.Nodes, ev.Cluster, c.WS)
			}
		case EvSpill:
			// Always valid in a federation.
		default:
			add(ev.Line, "scenario %s: %s: federated scenarios support jobs and spill events only", s.Name, at(ev))
		}
		if s.Horizon > 0 && ev.At > sim.Time(s.Horizon) {
			add(ev.Line, "scenario %s: %s: event at %s is past the horizon %s", s.Name, at(ev), sim.Duration(ev.At), s.Horizon)
		}
	}
	for _, ex := range s.Expects {
		if !ex.AtEnd {
			add(ex.Line, "scenario %s: %s: federated scenarios support 'at end' checkpoints only", s.Name, atx(ex))
		}
	}
	return ps
}

// validateEvent checks one event against the declared fleet.
func (s *Scenario) validateEvent(ev Event) error {
	needWS := func(what string) error {
		if s.Fleet.WS == 0 {
			return fmt.Errorf("%s needs a 'fleet ws' cluster", what)
		}
		return nil
	}
	needXFS := func(what string) error {
		if s.Fleet.XFS == nil {
			return fmt.Errorf("%s needs a 'fleet xfs' installation", what)
		}
		return nil
	}
	switch ev.Kind {
	case EvFault:
		switch ev.Fault.Kind {
		case faults.Crash, faults.Recover, faults.Partition, faults.Heal, faults.Link, faults.LinkClear:
			return needWS(ev.Fault.Kind.String())
		case faults.DiskFail, faults.Rebuild, faults.MgrKill:
			return needXFS(ev.Fault.Kind.String())
		}
	case EvFaultPlan:
		if s.Fleet.WS == 0 && s.Fleet.XFS == nil {
			return fmt.Errorf("faults needs a fleet to inject into")
		}
	case EvJobs:
		if err := needWS("jobs"); err != nil {
			return err
		}
		if ev.Count < 1 || ev.Nodes < 1 || ev.Work <= 0 {
			return fmt.Errorf("jobs wants a positive count, nodes= and work=")
		}
		if ev.Nodes > s.Fleet.WS {
			return fmt.Errorf("jobs nodes=%d exceeds the %d-workstation fleet", ev.Nodes, s.Fleet.WS)
		}
		if ev.Cluster != "" {
			return fmt.Errorf("jobs cluster=%s needs 'fleet cluster' members", ev.Cluster)
		}
	case EvOpMix:
		if err := needXFS("opmix"); err != nil {
			return err
		}
		if ev.Clients < 1 {
			return fmt.Errorf("opmix wants a positive client count")
		}
		if ev.MetaFrac < 0 || ev.MetaFrac > 1 {
			return fmt.Errorf("opmix meta=%s out of [0,1]", formatFrac(ev.MetaFrac))
		}
	case EvLoad:
		if ev.Load <= 0 {
			return fmt.Errorf("load wants a positive factor")
		}
	case EvFlashCrowd:
		if err := needWS("flashcrowd"); err != nil {
			return err
		}
		if ev.Users < 1 {
			return fmt.Errorf("flashcrowd wants a positive user count")
		}
	case EvDiurnal:
		return needWS("diurnal")
	case EvCordon, EvUncordon, EvDrain:
		verb := map[EventKind]string{EvCordon: "cordon", EvUncordon: "uncordon", EvDrain: "drain"}[ev.Kind]
		if err := needWS(verb); err != nil {
			return err
		}
		if ev.Node < 1 || ev.Node > s.Fleet.WS {
			return fmt.Errorf("%s %d outside workstations 1..%d", verb, ev.Node, s.Fleet.WS)
		}
	case EvRemediate:
		return needWS("remediate")
	case EvSpill:
		return fmt.Errorf("spill needs 'fleet cluster' members")
	default:
		return fmt.Errorf("unknown event kind %d", int(ev.Kind))
	}
	return nil
}

// at names an event for error messages, preferring its source line.
func at(ev Event) string {
	if ev.Line > 0 {
		return fmt.Sprintf("line %d", ev.Line)
	}
	return fmt.Sprintf("event %q", ev.String())
}

// atx names an expect for error messages.
func atx(ex Expect) string {
	if ex.Line > 0 {
		return fmt.Sprintf("line %d", ex.Line)
	}
	return fmt.Sprintf("expect %q", ex.String())
}

func contains(set []string, s string) bool {
	for _, v := range set {
		if v == s {
			return true
		}
	}
	return false
}
