package scenario

import (
	"strings"
	"testing"

	"github.com/nowproject/now/internal/faults"
	"github.com/nowproject/now/internal/sim"
)

// sampleScenario exercises every directive and event kind the grammar
// knows, in canonical form (sorted events, sorted expects).
const sampleScenario = `scenario kitchen-sink
seed 7
horizon 7200s
fleet ws 16 policy=restart heartbeat=2s fabric=myrinet topo=fattree
fleet xfs 10 spares=2 managers=2 cache=32 block=4096 pipelined
at 0s diurnal days=1
at 0s remediate on
at 60s opmix 8 meta=0.95 think=2s files=16 blocks=8
at 120s jobs 3 nodes=4 work=300s every=60s grain=10s
at 300s cordon 7
at 420s drain 9
at 600s partition 3,4 for 120s
at 900s load 1.5
at 1200s crash 5 for 300s
at 1500s diskfail 2
at 1800s flashcrowd 6 for 600s
at 2100s rebuild 2
at 2700s mgrkill 0
at 3000s uncordon 7
at 3300s remediate off
expect glunix.ws.idle >= 0 at 300s
expect faults.injected >= 2 at 1800s
expect net.drops.injected != 0 at end
expect scenario.opmix.latency.ns p95 <= 50ms at end
expect scenario.opmix.ops > 0 at end
expect span cp.drain count >= 1 at end
expect span remediate.rebuild p95 <= 60s at end
`

// TestParsePrintIdentity is the grammar's core contract: parsing the
// canonical form and printing it back is the identity, and a second
// round trip is a fixed point.
func TestParsePrintIdentity(t *testing.T) {
	s, err := Parse(strings.NewReader(sampleScenario))
	if err != nil {
		t.Fatal(err)
	}
	got := s.String()
	if got != sampleScenario {
		t.Fatalf("parse∘print not identity:\n--- want ---\n%s--- got ---\n%s", sampleScenario, got)
	}
	s2, err := Parse(strings.NewReader(got))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if s2.String() != got {
		t.Fatal("print is not a fixed point")
	}
}

// TestParseNormalizes checks that out-of-order events and expects print
// in canonical (time-sorted) order.
func TestParseNormalizes(t *testing.T) {
	in := `scenario ooo
seed 1
horizon 100s
fleet ws 4
at 50s crash 2
at 10s crash 1
expect faults.injected == 2 at end
expect faults.injected == 1 at 20s
`
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	if strings.Index(out, "crash 1") > strings.Index(out, "crash 2") {
		t.Fatalf("events not sorted by time:\n%s", out)
	}
	if strings.Index(out, "at 20s") > strings.Index(out, "at end") {
		t.Fatalf("timed expects must precede end expects:\n%s", out)
	}
}

// TestParseFaultEvent checks the fault grammar embeds unchanged: the
// event's fault carries the same At as the event.
func TestParseFaultEvent(t *testing.T) {
	in := `scenario f
seed 1
horizon 1h
fleet ws 8
at 600s partition 3,4 for 120s
`
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 1 {
		t.Fatalf("got %d events", len(s.Events))
	}
	ev := s.Events[0]
	if ev.Kind != EvFault || ev.Fault.Kind != faults.Partition {
		t.Fatalf("wrong event: %+v", ev)
	}
	if ev.Fault.At != ev.At || ev.At != sim.Time(600*sim.Second) {
		t.Fatalf("event/fault time mismatch: %v vs %v", ev.At, ev.Fault.At)
	}
	if ev.Fault.For != 120*sim.Second || len(ev.Fault.Set) != 2 {
		t.Fatalf("fault args lost: %+v", ev.Fault)
	}
}

// TestParseErrorsCarryLineNumbers pins the error positions a scenario
// author sees.
func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"bad directive", "scenario x\nbogus 1\n", "line 2: unknown directive"},
		{"bad seed", "scenario x\nseed many\n", "line 2: bad seed"},
		{"bad event", "scenario x\nseed 1\nat 5s explode 3\n", `line 3: unknown event "explode"`},
		{"bad fault", "scenario x\nat 5s crash five\n", "line 2: crash: bad node"},
		{"bad expect op", "scenario x\nexpect m.n ~= 3 at end\n", "line 2: unknown comparison"},
		{"bad expect value", "scenario x\nexpect m.n == lots at end\n", `line 2: bad value "lots"`},
		{"bad checkpoint", "scenario x\nexpect m.n == 3 at noon\n", `line 2: bad checkpoint "noon"`},
		{"bad quantile", "scenario x\nexpect m.n pXX <= 3 at end\n", "line 2: bad quantile"},
		{"bad fleet", "scenario x\nfleet carrier 3\n", `line 2: unknown fleet kind "carrier"`},
		{"bad jobs option", "scenario x\nseed 1\nat 0s jobs 3 speed=9\n", `line 3: jobs: unknown option "speed"`},
		{"bad cordon node", "scenario x\nseed 1\nat 0s cordon many\n", `line 3: cordon: bad workstation "many"`},
		{"drain wants one ws", "scenario x\nseed 1\nat 0s drain 1 2\n", "line 3: drain wants one workstation"},
		{"bad remediate arg", "scenario x\nseed 1\nat 0s remediate maybe\n", "line 3: remediate wants 'on' or 'off'"},
		{"bad span selector", "scenario x\nexpect span cp.drain mean >= 1 at end\n", "line 2: expect span wants 'count' or a quantile"},
		{"bad span quantile", "scenario x\nexpect span cp.drain pXX >= 1 at end\n", "line 2: bad span quantile"},
	}
	for _, tc := range cases {
		_, err := Parse(strings.NewReader(tc.in))
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q missing %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestValidateRejections pins the structural checks: events addressed
// at fleets the scenario does not declare, checkpoints past the
// horizon, sharded scenarios with scripts.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"no fleet", "scenario x\nseed 1\nhorizon 1h\n", "no fleet declared"},
		{"no horizon", "scenario x\nseed 1\nfleet ws 4\n", "missing 'horizon"},
		{"no name", "seed 1\nhorizon 1h\nfleet ws 4\n", "missing 'scenario"},
		{"crash without ws", "scenario x\nhorizon 1h\nfleet xfs 4\nat 5s crash 2\n", "needs a 'fleet ws'"},
		{"opmix without xfs", "scenario x\nhorizon 1h\nfleet ws 4\nat 5s opmix 10\n", "needs a 'fleet xfs'"},
		{"diskfail without xfs", "scenario x\nhorizon 1h\nfleet ws 4\nat 5s diskfail 1\n", "needs a 'fleet xfs'"},
		{"event past horizon", "scenario x\nhorizon 1h\nfleet ws 4\nat 2h crash 2\n", "past the horizon"},
		{"expect past horizon", "scenario x\nhorizon 1h\nfleet ws 4\nexpect m == 0 at 2h\n", "past the horizon"},
		{"jobs too wide", "scenario x\nhorizon 1h\nfleet ws 4\nat 0s jobs 1 nodes=9 work=60s\n", "exceeds the 4-workstation fleet"},
		{"xfs too small", "scenario x\nhorizon 1h\nfleet xfs 4 spares=2\n", "fewer than 3 stripe members"},
		{"shards without ws", "scenario x\nfleet shards 4\n", "needs 'fleet ws"},
		{"shards with xfs", "scenario x\nfleet ws 8\nfleet xfs 4\nfleet shards 4\n", "cannot combine"},
		{"shards with events", "scenario x\nfleet ws 8\nfleet shards 4\nat 0s crash 2\n", "no events"},
		{"shards timed expect", "scenario x\nfleet ws 8\nfleet shards 4\nexpect m == 0 at 5s\n", "'at end' checkpoints only"},
		{"cordon without ws", "scenario x\nhorizon 1h\nfleet xfs 4\nat 5s cordon 2\n", "needs a 'fleet ws'"},
		{"cordon out of range", "scenario x\nhorizon 1h\nfleet ws 4\nat 5s cordon 9\n", "outside workstations 1..4"},
		{"drain master", "scenario x\nhorizon 1h\nfleet ws 4\nat 5s drain 0\n", "outside workstations 1..4"},
		{"remediate without ws", "scenario x\nhorizon 1h\nfleet xfs 4\nat 5s remediate on\n", "needs a 'fleet ws'"},
		{"unknown topo", "scenario x\nhorizon 1h\nfleet ws 4 topo=hypercube\n", "unknown topo"},
		{"topo on shared medium", "scenario x\nhorizon 1h\nfleet ws 4 fabric=ethernet10 topo=torus\n", "shared medium"},
		{"topo with shards", "scenario x\nfleet ws 8 topo=fattree\nfleet shards 4\n", "cannot combine with fleet shards"},
	}
	for _, tc := range cases {
		_, err := Parse(strings.NewReader(tc.in))
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q missing %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestParseAllCollectsEverything is the `nowsim check` contract: a file
// with several independent mistakes reports all of them in one pass,
// each anchored to its source line, instead of stopping at the first.
func TestParseAllCollectsEverything(t *testing.T) {
	in := `scenario broken
seed nope
horizon 600s
fleet ws 4
at 5s explode 1
at 10s cordon 9
at 2h crash 2
expect m.n ~= 3 at end
`
	_, probs := ParseAll(strings.NewReader(in))
	if len(probs) != 5 {
		t.Fatalf("got %d problems, want 5: %v", len(probs), probs)
	}
	wants := []struct {
		line int
		sub  string
	}{
		{2, "bad seed"},
		{5, `unknown event "explode"`},
		{8, "unknown comparison"},
		{6, "outside workstations 1..4"}, // validation problems follow parse problems
		{7, "past the horizon"},
	}
	for i, w := range wants {
		p := probs[i]
		if p.Line != w.line || !strings.Contains(p.Err.Error(), w.sub) {
			t.Fatalf("problem %d = line %d %q, want line %d containing %q",
				i, p.Line, p.Err, w.line, w.sub)
		}
	}
	// Parse (the strict form) reports only the first.
	if _, err := Parse(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "bad seed") {
		t.Fatalf("Parse first error = %v", err)
	}
}

// TestExpectValueForms checks both value syntaxes: a bare integer and a
// Go duration (stored in ns, printed back as written).
func TestExpectValueForms(t *testing.T) {
	in := `scenario v
seed 1
fleet ws 8
fleet shards 2
expect a.count == 120 at end
expect a.latency p99 <= 120ms at end
`
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Expects[0].Value != 120 || s.Expects[0].IsDur {
		t.Fatalf("bare integer misparsed: %+v", s.Expects[0])
	}
	if s.Expects[1].Value != int64(120*sim.Millisecond) || !s.Expects[1].IsDur {
		t.Fatalf("duration misparsed: %+v", s.Expects[1])
	}
	if s.Expects[1].Quantile != 99 {
		t.Fatalf("quantile misparsed: %+v", s.Expects[1])
	}
	if got := s.String(); !strings.Contains(got, "== 120 at end") || !strings.Contains(got, "<= 120ms at end") {
		t.Fatalf("value forms do not round-trip:\n%s", got)
	}
}

// TestCmpOps pins every operator's semantics.
func TestCmpOps(t *testing.T) {
	cases := []struct {
		op         CmpOp
		got, want  int64
		wantResult bool
	}{
		{OpEQ, 3, 3, true}, {OpEQ, 3, 4, false},
		{OpNE, 3, 4, true}, {OpNE, 3, 3, false},
		{OpLE, 3, 3, true}, {OpLE, 4, 3, false},
		{OpGE, 3, 3, true}, {OpGE, 2, 3, false},
		{OpLT, 2, 3, true}, {OpLT, 3, 3, false},
		{OpGT, 4, 3, true}, {OpGT, 3, 3, false},
	}
	for _, tc := range cases {
		if tc.op.Eval(tc.got, tc.want) != tc.wantResult {
			t.Fatalf("%d %s %d != %v", tc.got, tc.op, tc.want, tc.wantResult)
		}
	}
}

// fedScenario is a canonical federated story: two member clusters, a
// WAN, a spill toggle, and jobs addressed at a member.
const fedScenario = `scenario fed-sample
seed 42
horizon 120s
fleet cluster library ws=8 xfs=6
fleet cluster annex ws=4
wan lat=20ms bw=100
at 0s spill on
at 1s jobs 4 nodes=4 work=20s every=1s grain=1s cluster=annex
at 60s spill off
expect fed.spill.jobs >= 0 at end
expect wan.sent > 0 at end
`

// TestParsePrintIdentityFederated extends the grammar's round-trip
// contract to the federated directives: fleet cluster, wan, spill, and
// the jobs cluster= target.
func TestParsePrintIdentityFederated(t *testing.T) {
	s, err := Parse(strings.NewReader(fedScenario))
	if err != nil {
		t.Fatal(err)
	}
	got := s.String()
	if got != fedScenario {
		t.Fatalf("parse∘print not identity:\n--- want ---\n%s--- got ---\n%s", fedScenario, got)
	}
	if len(s.Fleet.Clusters) != 2 || s.Fleet.Clusters[0].Name != "library" ||
		s.Fleet.Clusters[0].WS != 8 || s.Fleet.Clusters[0].XFS != 6 {
		t.Fatalf("clusters misparsed: %+v", s.Fleet.Clusters)
	}
	if s.Fleet.WAN == nil || s.Fleet.WAN.Latency != 20*sim.Millisecond || s.Fleet.WAN.BandwidthMbps != 100 {
		t.Fatalf("wan misparsed: %+v", s.Fleet.WAN)
	}
	if s.Events[0].Kind != EvSpill || !s.Events[0].On {
		t.Fatalf("spill on misparsed: %+v", s.Events[0])
	}
	if s.Events[1].Cluster != "annex" {
		t.Fatalf("jobs cluster= misparsed: %+v", s.Events[1])
	}
}

// TestFederatedValidation pins the federated structural checks: member
// list shape, the mandatory WAN, the restricted event surface, and the
// end-only checkpoint rule.
func TestFederatedValidation(t *testing.T) {
	head := "scenario f\nseed 1\nhorizon 60s\nfleet cluster a ws=4\nfleet cluster b ws=4\nwan lat=10ms bw=100\n"
	cases := []struct {
		name, in, wantSub string
	}{
		{"one member", "scenario f\nhorizon 60s\nfleet cluster a ws=4\nwan lat=10ms bw=100\n", "at least 2 'fleet cluster' members"},
		{"no wan", "scenario f\nhorizon 60s\nfleet cluster a ws=4\nfleet cluster b ws=4\n", "need a 'wan"},
		{"wan without clusters", "scenario f\nhorizon 60s\nfleet ws 4\nwan lat=10ms bw=100\n", "'wan' needs 'fleet cluster' members"},
		{"zero lat", "scenario f\nhorizon 60s\nfleet cluster a ws=4\nfleet cluster b ws=4\nwan lat=0s bw=100\n", "wan wants both lat="},
		{"mix with ws", "scenario f\nhorizon 60s\nfleet ws 4\nfleet cluster a ws=4\nfleet cluster b ws=4\nwan lat=10ms bw=100\n", "cannot combine"},
		{"duplicate member", "scenario f\nhorizon 60s\nfleet cluster a ws=4\nfleet cluster a ws=4\nwan lat=10ms bw=100\n", `duplicate cluster "a"`},
		{"empty member", "scenario f\nhorizon 60s\nfleet cluster a\nfleet cluster b ws=4\nwan lat=10ms bw=100\n", "neither ws= nor xfs="},
		{"jobs without cluster", head + "at 0s jobs 1 nodes=2 work=10s\n", "want a cluster=<name> target"},
		{"jobs unknown cluster", head + "at 0s jobs 1 nodes=2 work=10s cluster=c\n", `unknown cluster "c"`},
		{"jobs too wide", head + "at 0s jobs 1 nodes=9 work=10s cluster=a\n", "exceeds cluster a's 4 workstations"},
		{"crash in federation", head + "at 0s crash 2\n", "jobs and spill events only"},
		{"timed expect", head + "expect wan.sent > 0 at 5s\n", "'at end' checkpoints only"},
		{"spill outside federation", "scenario f\nhorizon 60s\nfleet ws 4\nat 0s spill on\n", "spill needs 'fleet cluster' members"},
		{"jobs cluster outside federation", "scenario f\nhorizon 60s\nfleet ws 4\nat 0s jobs 1 nodes=2 work=10s cluster=a\n", "needs 'fleet cluster' members"},
	}
	for _, tc := range cases {
		_, err := Parse(strings.NewReader(tc.in))
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q missing %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestFederatedParseErrors pins the federated parse-time messages and
// their line anchors.
func TestFederatedParseErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"cluster wants name", "scenario x\nfleet cluster 4\n", "line 2"},
		{"bad cluster option", "scenario x\nfleet cluster a speed=9\n", "line 2"},
		{"wan wants lat", "scenario x\nwan bw=100\n", "line 2: wan wants both lat="},
		{"wan wants bw", "scenario x\nwan lat=10ms\n", "line 2: wan wants both lat="},
		{"duplicate wan", "scenario x\nwan lat=10ms bw=1\nwan lat=10ms bw=1\n", "line 3: duplicate 'wan' line"},
		{"bad spill arg", "scenario x\nseed 1\nat 0s spill maybe\n", "line 3: spill wants 'on' or 'off'"},
	}
	for _, tc := range cases {
		_, err := Parse(strings.NewReader(tc.in))
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q missing %q", tc.name, err, tc.wantSub)
		}
	}
}
