package sfi

// Benchmark kernels, hand-compiled for the virtual ISA. Register
// conventions: r1–r12 general purpose, r13/r14 scratch, r15 reserved
// for the sandbox. Data addresses live in the caller-supplied segment.
//
// The kernels span the store-density spectrum: VecSum almost never
// stores (pure reduction), MatMul stores once per output element,
// MemCopy stores every iteration, ListBuild is pointer-writing. The
// paper's 3–7% figure is for optimized sandboxing on ordinary compiled
// code, whose dynamic store density sits in the few-percent range —
// MatMul and VecSum territory.

// Kernel is a named benchmark program generator: given the data
// segment base it returns the program.
type Kernel struct {
	Name string
	Gen  func(dataBase int64) Program
}

// Kernels returns the benchmark suite.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "vecsum", Gen: VecSum},
		{Name: "matmul", Gen: MatMul},
		{Name: "stencil", Gen: Stencil},
		{Name: "memcopy", Gen: MemCopy},
		{Name: "listbuild", Gen: ListBuild},
	}
}

// VecSum sums a 512-element vector into a register and stores the
// result once. Dynamic store density ≈ 0%.
func VecSum(base int64) Program {
	const n = 512
	return Program{
		{Op: OpAddi, Rd: 1, Rs: 0, Imm: base},     // r1 = &v[0]
		{Op: OpAddi, Rd: 2, Rs: 0, Imm: base + n}, // r2 = end
		{Op: OpAddi, Rd: 3, Rs: 0, Imm: 0},        // r3 = sum
		// loop:
		{Op: OpLoad, Rd: 4, Rs: 1, Imm: 0},   // 3: r4 = *r1
		{Op: OpAdd, Rd: 3, Rs: 3, Rt: 4},     //    sum += r4
		{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1},   //    r1++
		{Op: OpBlt, Rs: 1, Rt: 2, Imm: 3},    //    while r1 < end
		{Op: OpStore, Rd: 2, Rs: 3, Imm: 16}, // out[end+16] = sum
		{Op: OpHalt},
	}
}

// MatMul multiplies two 12×12 matrices: the inner loop is
// load-load-mul-add; one store per output element. Dynamic store
// density ≈ 1%.
func MatMul(base int64) Program {
	const n = 12
	a, b, c := base, base+n*n, base+2*n*n
	// Registers: r1=i, r2=j, r3=k, r4=acc, r5..r8 scratch, r9=n.
	return Program{
		{Op: OpAddi, Rd: 9, Rs: 0, Imm: n}, // r9 = n
		{Op: OpAddi, Rd: 1, Rs: 0, Imm: 0}, // i = 0
		// iloop (2):
		{Op: OpAddi, Rd: 2, Rs: 0, Imm: 0}, // j = 0
		// jloop (3):
		{Op: OpAddi, Rd: 3, Rs: 0, Imm: 0}, // k = 0
		{Op: OpAddi, Rd: 4, Rs: 0, Imm: 0}, // acc = 0
		// kloop (5):
		{Op: OpMul, Rd: 5, Rs: 1, Rt: 9},       // 5: r5 = i*n
		{Op: OpAdd, Rd: 5, Rs: 5, Rt: 3},       //    r5 = i*n+k
		{Op: OpAddi, Rd: 5, Rs: 5, Imm: a},     //    &a[i][k]
		{Op: OpLoad, Rd: 6, Rs: 5, Imm: 0},     //    r6 = a[i][k]
		{Op: OpMul, Rd: 7, Rs: 3, Rt: 9},       //    r7 = k*n
		{Op: OpAdd, Rd: 7, Rs: 7, Rt: 2},       //    r7 = k*n+j
		{Op: OpAddi, Rd: 7, Rs: 7, Imm: b - a}, //    adjust to b
		{Op: OpAddi, Rd: 7, Rs: 7, Imm: a},     //    &b[k][j]
		{Op: OpLoad, Rd: 8, Rs: 7, Imm: 0},     //    r8 = b[k][j]
		{Op: OpMul, Rd: 6, Rs: 6, Rt: 8},       //    r6 *= r8
		{Op: OpAdd, Rd: 4, Rs: 4, Rt: 6},       //    acc += r6
		{Op: OpAddi, Rd: 3, Rs: 3, Imm: 1},     //    k++
		{Op: OpBlt, Rs: 3, Rt: 9, Imm: 5},      //    while k < n
		{Op: OpMul, Rd: 5, Rs: 1, Rt: 9},       // r5 = i*n
		{Op: OpAdd, Rd: 5, Rs: 5, Rt: 2},       // r5 = i*n+j
		{Op: OpAddi, Rd: 5, Rs: 5, Imm: c},     // &c[i][j]
		{Op: OpStore, Rd: 5, Rs: 4, Imm: 0},    // c[i][j] = acc
		{Op: OpAddi, Rd: 2, Rs: 2, Imm: 1},     // j++
		{Op: OpBlt, Rs: 2, Rt: 9, Imm: 3},      // while j < n
		{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1},     // i++
		{Op: OpBlt, Rs: 1, Rt: 9, Imm: 2},      // while i < n
		{Op: OpHalt},
	}
}

// Stencil applies a 3-point smoothing pass over a 512-element vector:
// three loads and a dozen arithmetic operations per stored point — the
// ≈5% dynamic store density of ordinary compiled numeric code, where
// the paper's 3–7% sandboxing overhead lives.
func Stencil(base int64) Program {
	const n = 512
	src, dst := base, base+n+2
	return Program{
		{Op: OpAddi, Rd: 1, Rs: 0, Imm: 1},     // i = 1
		{Op: OpAddi, Rd: 2, Rs: 0, Imm: n - 1}, // end
		// loop (2):
		{Op: OpAddi, Rd: 3, Rs: 1, Imm: src - 1}, // 2: &v[i-1]
		{Op: OpLoad, Rd: 4, Rs: 3, Imm: 0},       //    a = v[i-1]
		{Op: OpLoad, Rd: 5, Rs: 3, Imm: 1},       //    b = v[i]
		{Op: OpLoad, Rd: 6, Rs: 3, Imm: 2},       //    c = v[i+1]
		{Op: OpAdd, Rd: 7, Rs: 4, Rt: 6},         //    a+c
		{Op: OpAdd, Rd: 8, Rs: 5, Rt: 5},         //    2b
		{Op: OpAdd, Rd: 8, Rs: 8, Rt: 8},         //    4b... weighting
		{Op: OpAdd, Rd: 7, Rs: 7, Rt: 8},         //    a+4b+c
		{Op: OpMul, Rd: 9, Rs: 7, Rt: 7},         //    nonlinearity
		{Op: OpAdd, Rd: 7, Rs: 7, Rt: 9},         //
		{Op: OpAddi, Rd: 9, Rs: 7, Imm: 3},       //
		{Op: OpSub, Rd: 7, Rs: 9, Rt: 8},         //
		{Op: OpAdd, Rd: 7, Rs: 7, Rt: 5},         //
		{Op: OpAddi, Rd: 10, Rs: 1, Imm: dst},    //    &out[i]
		{Op: OpStore, Rd: 10, Rs: 7, Imm: 0},     //    out[i] = r7
		{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1},       //    i++
		{Op: OpBlt, Rs: 1, Rt: 2, Imm: 2},        //    while i < n-1
		{Op: OpHalt},
	}
}

// MemCopy copies 512 words: one store per 4 instructions — the
// store-dense worst case (≈25% density).
func MemCopy(base int64) Program {
	const n = 512
	src, dst := base, base+n
	return Program{
		{Op: OpAddi, Rd: 1, Rs: 0, Imm: src},     // r1 = src
		{Op: OpAddi, Rd: 2, Rs: 0, Imm: dst},     // r2 = dst
		{Op: OpAddi, Rd: 3, Rs: 0, Imm: src + n}, // r3 = src end
		// loop (3):
		{Op: OpLoad, Rd: 4, Rs: 1, Imm: 0},  // 3: r4 = *src
		{Op: OpStore, Rd: 2, Rs: 4, Imm: 0}, //    *dst = r4
		{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1},
		{Op: OpAddi, Rd: 2, Rs: 2, Imm: 1},
		{Op: OpBlt, Rs: 1, Rt: 3, Imm: 3},
		{Op: OpHalt},
	}
}

// ListBuild writes a 256-node linked list (next pointers), then walks
// it — pointer-intensive systems code, store density ≈ 8%.
func ListBuild(base int64) Program {
	const n = 256
	return Program{
		{Op: OpAddi, Rd: 1, Rs: 0, Imm: 0}, // i = 0
		{Op: OpAddi, Rd: 2, Rs: 0, Imm: n}, // r2 = n
		// build loop (2): node i at base+2i: {value, next}
		{Op: OpAdd, Rd: 3, Rs: 1, Rt: 1},      // 2: r3 = 2i
		{Op: OpAddi, Rd: 3, Rs: 3, Imm: base}, //    &node[i]
		{Op: OpStore, Rd: 3, Rs: 1, Imm: 0},   //    value = i
		{Op: OpAddi, Rd: 4, Rs: 3, Imm: 2},    //    r4 = &node[i+1]
		{Op: OpStore, Rd: 3, Rs: 4, Imm: 1},   //    next = r4
		{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1},    //    i++
		{Op: OpBlt, Rs: 1, Rt: 2, Imm: 2},     //    while i < n
		// walk: sum values via next pointers (stop after n hops)
		{Op: OpAddi, Rd: 5, Rs: 0, Imm: base}, // r5 = head
		{Op: OpAddi, Rd: 6, Rs: 0, Imm: 0},    // sum = 0
		{Op: OpAddi, Rd: 1, Rs: 0, Imm: 0},    // i = 0
		{Op: OpLoad, Rd: 7, Rs: 5, Imm: 0},    // 12: r7 = value
		{Op: OpAdd, Rd: 6, Rs: 6, Rt: 7},      //     sum += value
		{Op: OpLoad, Rd: 5, Rs: 5, Imm: 1},    //     r5 = next
		{Op: OpAddi, Rd: 1, Rs: 1, Imm: 1},    //     i++
		{Op: OpBlt, Rs: 1, Rt: 2, Imm: 12},    //     while i < n
		{Op: OpStore, Rd: 3, Rs: 6, Imm: 0},   // store sum in last node
		{Op: OpHalt},
	}
}
