package sfi

import "fmt"

// Mode selects the sandboxing rewriter.
type Mode int

const (
	// Naive emits the explicit address-sandboxing sequence before every
	// store and indirect branch: materialise the effective address, mask
	// it into the segment, rebase it (3 extra instructions per store).
	Naive Mode = iota + 1
	// Optimized models the paper's measured configuration: a dedicated
	// sandbox register plus guard zones collapse the check to a single
	// instruction per store and per indirect branch, and the 3–7%
	// overhead the paper quotes.
	Optimized
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Naive:
		return "naive"
	case Optimized:
		return "optimized"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Segment is the fault domain: a power-of-two-sized window of memory
// the rewritten code cannot escape.
type Segment struct {
	Base int64 // must be aligned to Size
	Size int64 // power of two
}

// Valid reports whether the segment is well-formed.
func (s Segment) Valid() bool {
	return s.Size > 0 && s.Size&(s.Size-1) == 0 && s.Base%s.Size == 0 && s.Base >= 0
}

// Contains reports whether addr falls inside the segment.
func (s Segment) Contains(addr int64) bool {
	return addr >= s.Base && addr < s.Base+s.Size
}

func (s Segment) mask() int64 { return s.Size - 1 }

// packSandboxImm packs mask and base for OpSandbox.
func (s Segment) packSandboxImm() int64 {
	return (s.Base << 32) | s.mask()
}

// Rewrite sandboxes prog so that every store and indirect branch is
// confined to seg. Branch targets are remapped to the rewritten layout.
// The input program must not use SandboxReg.
func Rewrite(prog Program, seg Segment, mode Mode) (Program, error) {
	if !seg.Valid() {
		return nil, fmt.Errorf("sfi: invalid segment %+v", seg)
	}
	for i, in := range prog {
		if usesReg(in, SandboxReg) {
			return nil, fmt.Errorf("sfi: instruction %d uses the reserved sandbox register", i)
		}
	}
	// First pass: compute the new index of every original instruction.
	newIndex := make([]int64, len(prog)+1)
	idx := int64(0)
	for i, in := range prog {
		newIndex[i] = idx
		idx += int64(1 + extraFor(in, mode))
	}
	newIndex[len(prog)] = idx

	out := make(Program, 0, idx)
	for _, in := range prog {
		switch {
		case in.Op == OpStore:
			// Effective address = Rd + Imm; sandbox it into SandboxReg
			// and store relative to that.
			if mode == Naive {
				out = append(out,
					Instr{Op: OpAddi, Rd: SandboxReg, Rs: in.Rd, Imm: in.Imm},
					Instr{Op: OpAnd, Rd: SandboxReg, Rs: SandboxReg, Imm: seg.mask()},
					Instr{Op: OpOr, Rd: SandboxReg, Rs: SandboxReg, Imm: seg.Base},
				)
			} else {
				// The optimized sequence folds offset handling into the
				// guard zone and uses the packed single instruction.
				out = append(out,
					Instr{Op: OpSandbox, Rd: SandboxReg, Rs: in.Rd, Imm: seg.packSandboxImm()},
				)
			}
			st := Instr{Op: OpStore, Rd: SandboxReg, Rs: in.Rs}
			if mode == Optimized {
				// Guard zones admit small constant offsets unchecked.
				st.Imm = in.Imm & seg.mask()
			}
			out = append(out, st)
		case in.Op == OpJr:
			// Sandbox the branch target the same way (control cannot
			// escape the segment's code region; in this virtual ISA we
			// confine it to the program bounds via the same masking).
			if mode == Naive {
				out = append(out,
					Instr{Op: OpAnd, Rd: SandboxReg, Rs: in.Rs, Imm: seg.mask()},
					Instr{Op: OpOr, Rd: SandboxReg, Rs: SandboxReg, Imm: 0},
				)
			} else {
				out = append(out,
					Instr{Op: OpSandbox, Rd: SandboxReg, Rs: in.Rs, Imm: seg.mask()},
				)
			}
			out = append(out, Instr{Op: OpJr, Rs: SandboxReg})
		case in.Op == OpJmp || in.Op == OpBeq || in.Op == OpBlt:
			// Remap direct branch targets to the rewritten layout.
			ni := in
			if in.Imm >= 0 && in.Imm <= int64(len(prog)) {
				ni.Imm = newIndex[in.Imm]
			}
			out = append(out, ni)
		default:
			out = append(out, in)
		}
	}
	return out, nil
}

// extraFor returns the number of inserted instructions for one original
// instruction under the given mode.
func extraFor(in Instr, mode Mode) int {
	switch in.Op {
	case OpStore:
		if mode == Naive {
			return 3
		}
		return 1
	case OpJr:
		if mode == Naive {
			return 2
		}
		return 1
	default:
		return 0
	}
}

func usesReg(in Instr, r uint8) bool {
	return in.Rd == r || in.Rs == r || in.Rt == r
}

// Overhead runs prog raw and sandboxed and returns the dynamic
// instruction-count overhead ((sandboxed/raw) - 1) plus both stats.
func Overhead(prog Program, memSize int64, seg Segment, mode Mode, maxSteps int64) (float64, Stats, Stats, error) {
	memRaw := make([]int64, memSize)
	raw, err := Run(prog, memRaw, maxSteps)
	if err != nil {
		return 0, raw, Stats{}, fmt.Errorf("sfi: raw run: %w", err)
	}
	sand, err := Rewrite(prog, seg, mode)
	if err != nil {
		return 0, raw, Stats{}, err
	}
	memSand := make([]int64, memSize)
	sb, err := Run(sand, memSand, maxSteps*4)
	if err != nil {
		return 0, raw, sb, fmt.Errorf("sfi: sandboxed run: %w", err)
	}
	if raw.Executed == 0 {
		return 0, raw, sb, fmt.Errorf("sfi: empty execution")
	}
	return float64(sb.Executed)/float64(raw.Executed) - 1, raw, sb, nil
}
