// Package sfi implements software fault isolation (Wahbe et al., SOSP
// '93), the key technology GLUnix uses to insert a protected virtual
// operating-system layer into unmodified applications at user level:
// "modifying the application object code to insert a check before every
// store and indirect branch instruction", with an overhead of 3–7% after
// aggressive optimization.
//
// The package defines a small virtual RISC ISA, an interpreter that
// counts dynamically executed instructions, and two sandboxing
// rewriters: Naive (the full address-sandboxing sequence before every
// store and indirect branch) and Optimized (the paper's configuration,
// where a dedicated sandbox register and guard zones reduce the check to
// a single instruction). Overhead is *measured* by executing the
// rewritten programs, not assumed.
package sfi

import (
	"errors"
	"fmt"
)

// Op is a virtual instruction opcode.
type Op uint8

// The instruction set: a minimal load/store RISC.
const (
	OpHalt  Op = iota
	OpAdd      // Rd = Rs + Rt
	OpSub      // Rd = Rs - Rt
	OpMul      // Rd = Rs * Rt
	OpAddi     // Rd = Rs + Imm
	OpAnd      // Rd = Rs & Imm
	OpOr       // Rd = Rs | Imm
	OpLoad     // Rd = mem[Rs + Imm]
	OpStore    // mem[Rd + Imm] = Rs
	OpJmp      // pc = Imm
	OpBeq      // if Rs == Rt: pc = Imm
	OpBlt      // if Rs < Rt: pc = Imm
	OpJr       // pc = Rs (indirect branch)
	// OpSandbox models the optimized single-instruction check: one
	// dedicated-register mask-and-rebase of an address (the Naive
	// rewriter emits the explicit And/Or pair instead).
	OpSandbox // Rd = (Rs & Imm_low32) | Imm_high32  [packed masks]
)

// NumRegs is the register file size. Register 15 is reserved as the
// sandbox scratch register by the rewriters (compilers must not use it,
// mirroring the dedicated-register requirement of the real system).
const NumRegs = 16

// SandboxReg is the dedicated scratch register.
const SandboxReg = 15

// Instr is one instruction.
type Instr struct {
	Op     Op
	Rd, Rs uint8
	Rt     uint8
	Imm    int64
}

// Program is a sequence of instructions; execution begins at 0 and ends
// at OpHalt.
type Program []Instr

// Stats reports one execution.
type Stats struct {
	Executed int64 // dynamic instruction count
	Stores   int64
	Loads    int64
	Branches int64
}

// ErrNoHalt is returned when execution exceeds the step budget.
var ErrNoHalt = errors.New("sfi: step budget exhausted")

// ErrBadAccess is returned for out-of-range memory references in an
// *unsandboxed* program (a sandboxed program cannot reach out of range).
var ErrBadAccess = errors.New("sfi: memory access out of range")

// Run interprets prog against mem, at most maxSteps instructions.
func Run(prog Program, mem []int64, maxSteps int64) (Stats, error) {
	var regs [NumRegs]int64
	var st Stats
	pc := int64(0)
	for steps := int64(0); ; steps++ {
		if steps >= maxSteps {
			return st, ErrNoHalt
		}
		if pc < 0 || pc >= int64(len(prog)) {
			return st, fmt.Errorf("sfi: pc %d out of program", pc)
		}
		in := prog[pc]
		st.Executed++
		pc++
		switch in.Op {
		case OpHalt:
			return st, nil
		case OpAdd:
			regs[in.Rd] = regs[in.Rs] + regs[in.Rt]
		case OpSub:
			regs[in.Rd] = regs[in.Rs] - regs[in.Rt]
		case OpMul:
			regs[in.Rd] = regs[in.Rs] * regs[in.Rt]
		case OpAddi:
			regs[in.Rd] = regs[in.Rs] + in.Imm
		case OpAnd:
			regs[in.Rd] = regs[in.Rs] & in.Imm
		case OpOr:
			regs[in.Rd] = regs[in.Rs] | in.Imm
		case OpSandbox:
			mask := in.Imm & 0xFFFFFFFF
			base := (in.Imm >> 32) & 0xFFFFFFFF
			regs[in.Rd] = (regs[in.Rs] & mask) | base
		case OpLoad:
			addr := regs[in.Rs] + in.Imm
			if addr < 0 || addr >= int64(len(mem)) {
				return st, fmt.Errorf("%w: load at %d", ErrBadAccess, addr)
			}
			regs[in.Rd] = mem[addr]
			st.Loads++
		case OpStore:
			addr := regs[in.Rd] + in.Imm
			if addr < 0 || addr >= int64(len(mem)) {
				return st, fmt.Errorf("%w: store at %d", ErrBadAccess, addr)
			}
			mem[addr] = regs[in.Rs]
			st.Stores++
		case OpJmp:
			pc = in.Imm
			st.Branches++
		case OpBeq:
			if regs[in.Rs] == regs[in.Rt] {
				pc = in.Imm
			}
			st.Branches++
		case OpBlt:
			if regs[in.Rs] < regs[in.Rt] {
				pc = in.Imm
			}
			st.Branches++
		case OpJr:
			pc = regs[in.Rs]
			st.Branches++
		default:
			return st, fmt.Errorf("sfi: bad opcode %d at %d", in.Op, pc-1)
		}
		// r0 is hardwired to zero, RISC style.
		regs[0] = 0
	}
}
