package sfi

import (
	"errors"
	"testing"
	"testing/quick"
)

const (
	segBase = 4096
	segSize = 4096
	memSize = 3 * segSize // segment plus guard space above
)

func testSeg() Segment { return Segment{Base: segBase, Size: segSize} }

func TestVecSumComputesCorrectSum(t *testing.T) {
	mem := make([]int64, memSize)
	for i := int64(0); i < 512; i++ {
		mem[segBase+i] = i
	}
	_, err := Run(VecSum(segBase), mem, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(511 * 512 / 2)
	if got := mem[segBase+512+16]; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestMemCopyCopies(t *testing.T) {
	mem := make([]int64, memSize)
	for i := int64(0); i < 512; i++ {
		mem[segBase+i] = i * 3
	}
	if _, err := Run(MemCopy(segBase), mem, 1e7); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 512; i++ {
		if mem[segBase+512+i] != i*3 {
			t.Fatalf("dst[%d] = %d", i, mem[segBase+512+i])
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	const n = 12
	mem := make([]int64, memSize)
	// a = arbitrary, b = identity ⇒ c == a.
	for i := int64(0); i < n*n; i++ {
		mem[segBase+i] = i + 1
	}
	for i := int64(0); i < n; i++ {
		mem[segBase+n*n+i*n+i] = 1
	}
	if _, err := Run(MatMul(segBase), mem, 1e7); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n*n; i++ {
		if mem[segBase+2*n*n+i] != mem[segBase+i] {
			t.Fatalf("c[%d] = %d, want %d", i, mem[segBase+2*n*n+i], mem[segBase+i])
		}
	}
}

func TestRunStepBudget(t *testing.T) {
	loop := Program{{Op: OpJmp, Imm: 0}}
	if _, err := Run(loop, nil, 1000); !errors.Is(err, ErrNoHalt) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunCountsOps(t *testing.T) {
	mem := make([]int64, memSize)
	st, err := Run(MemCopy(segBase), mem, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stores != 512 || st.Loads != 512 {
		t.Fatalf("stores=%d loads=%d", st.Stores, st.Loads)
	}
	if st.Executed < 512*5 {
		t.Fatalf("executed = %d", st.Executed)
	}
}

func TestSandboxedProgramsComputeSameResults(t *testing.T) {
	for _, k := range Kernels() {
		for _, mode := range []Mode{Naive, Optimized} {
			prog := k.Gen(segBase)
			raw := make([]int64, memSize)
			sandboxed := make([]int64, memSize)
			if _, err := Run(prog, raw, 1e7); err != nil {
				t.Fatalf("%s raw: %v", k.Name, err)
			}
			rp, err := Rewrite(prog, testSeg(), mode)
			if err != nil {
				t.Fatalf("%s rewrite(%v): %v", k.Name, mode, err)
			}
			if _, err := Run(rp, sandboxed, 4e7); err != nil {
				t.Fatalf("%s sandboxed(%v): %v", k.Name, mode, err)
			}
			for i := range raw {
				if raw[i] != sandboxed[i] {
					t.Fatalf("%s (%v): memory differs at %d: %d vs %d",
						k.Name, mode, i, raw[i], sandboxed[i])
				}
			}
		}
	}
}

func TestSandboxConfinesHostileStores(t *testing.T) {
	// A program that stores far outside the segment.
	hostile := Program{
		{Op: OpAddi, Rd: 1, Rs: 0, Imm: 9000}, // outside [4096, 8192)
		{Op: OpAddi, Rd: 2, Rs: 0, Imm: 666},
		{Op: OpStore, Rd: 1, Rs: 2, Imm: 0},
		{Op: OpHalt},
	}
	for _, mode := range []Mode{Naive, Optimized} {
		rp, err := Rewrite(hostile, testSeg(), mode)
		if err != nil {
			t.Fatal(err)
		}
		mem := make([]int64, memSize)
		if _, err := Run(rp, mem, 1000); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if mem[9000] == 666 {
			t.Fatalf("%v: hostile store escaped the segment", mode)
		}
		// The store was redirected inside the segment.
		found := false
		for i := segBase; i < segBase+segSize; i++ {
			if mem[i] == 666 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v: redirected store vanished", mode)
		}
	}
}

func TestSandboxConfinesIndirectBranches(t *testing.T) {
	// jr to a huge target must be masked into range instead of escaping.
	prog := Program{
		{Op: OpAddi, Rd: 1, Rs: 0, Imm: 1 << 40},
		{Op: OpJr, Rs: 1},
		{Op: OpHalt},
	}
	rp, err := Rewrite(prog, Segment{Base: 0, Size: 4096}, Naive)
	if err != nil {
		t.Fatal(err)
	}
	// Masked target = 0 → infinite-ish loop; budget exhaustion proves it
	// stayed in bounds rather than erroring with pc out of program.
	_, err = Run(rp, make([]int64, memSize), 10000)
	if !errors.Is(err, ErrNoHalt) {
		t.Fatalf("err = %v, want step-budget exhaustion (confined loop)", err)
	}
}

func TestRewriteRejectsReservedRegister(t *testing.T) {
	prog := Program{{Op: OpAddi, Rd: SandboxReg, Rs: 0, Imm: 1}, {Op: OpHalt}}
	if _, err := Rewrite(prog, testSeg(), Naive); err == nil {
		t.Fatal("program using r15 accepted")
	}
}

func TestRewriteRejectsBadSegment(t *testing.T) {
	if _, err := Rewrite(Program{{Op: OpHalt}}, Segment{Base: 100, Size: 300}, Naive); err == nil {
		t.Fatal("unaligned/non-power-of-two segment accepted")
	}
}

func TestOptimizedOverheadInPaperRange(t *testing.T) {
	// The paper: 3–7% on ordinary code with aggressive optimization.
	// Stencil is the representative numeric kernel; the register-heavy
	// reductions (matmul, vecsum) come in under the band.
	for _, k := range Kernels() {
		switch k.Name {
		case "stencil":
			ov, _, _, err := Overhead(k.Gen(segBase), memSize, testSeg(), Optimized, 1e7)
			if err != nil {
				t.Fatal(err)
			}
			if ov < 0.03 || ov > 0.07 {
				t.Errorf("stencil optimized overhead = %.1f%%, want 3-7%%", ov*100)
			}
		case "matmul", "vecsum":
			ov, _, _, err := Overhead(k.Gen(segBase), memSize, testSeg(), Optimized, 1e7)
			if err != nil {
				t.Fatal(err)
			}
			if ov < 0 || ov > 0.07 {
				t.Errorf("%s optimized overhead = %.1f%%, want ≤7%%", k.Name, ov*100)
			}
		}
	}
}

func TestNaiveOverheadExceedsOptimized(t *testing.T) {
	for _, k := range Kernels() {
		naive, _, _, err := Overhead(k.Gen(segBase), memSize, testSeg(), Naive, 1e7)
		if err != nil {
			t.Fatal(err)
		}
		opt, _, _, err := Overhead(k.Gen(segBase), memSize, testSeg(), Optimized, 1e7)
		if err != nil {
			t.Fatal(err)
		}
		if naive <= opt {
			t.Errorf("%s: naive %.1f%% not above optimized %.1f%%", k.Name, naive*100, opt*100)
		}
	}
}

func TestMemCopyIsTheStoreDenseWorstCase(t *testing.T) {
	worst, _, _, err := Overhead(MemCopy(segBase), memSize, testSeg(), Optimized, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	typical, _, _, err := Overhead(MatMul(segBase), memSize, testSeg(), Optimized, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if worst <= typical {
		t.Fatalf("memcopy %.1f%% should exceed matmul %.1f%%", worst*100, typical*100)
	}
}

func TestModeString(t *testing.T) {
	if Naive.String() != "naive" || Optimized.String() != "optimized" || Mode(9).String() == "" {
		t.Fatal("mode names wrong")
	}
}

// Property: sandboxed stores never write outside the segment, for
// arbitrary (bounded) store addresses.
func TestSandboxNeverEscapesProperty(t *testing.T) {
	seg := testSeg()
	f := func(addr uint16, val int16) bool {
		prog := Program{
			{Op: OpAddi, Rd: 1, Rs: 0, Imm: int64(addr)},
			{Op: OpAddi, Rd: 2, Rs: 0, Imm: int64(val) | 1}, // nonzero
			{Op: OpStore, Rd: 1, Rs: 2, Imm: 0},
			{Op: OpHalt},
		}
		for _, mode := range []Mode{Naive, Optimized} {
			rp, err := Rewrite(prog, seg, mode)
			if err != nil {
				return false
			}
			mem := make([]int64, memSize)
			if _, err := Run(rp, mem, 1000); err != nil {
				return false
			}
			for i := range mem {
				if mem[i] != 0 && !seg.Contains(int64(i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
