package sim

import "testing"

// BenchmarkEventThroughput measures raw engine event dispatch — the
// floor under every experiment's wall-clock cost.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	defer e.Close()
	for i := 0; i < b.N; i++ {
		e.After(Microsecond, func() {})
		if e.Pending() > 10000 {
			if err := e.RunUntil(MaxTime); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.RunUntil(MaxTime); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSwitch measures the park/resume goroutine handshake.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine(1)
	n := b.N
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures the contended-resource path.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	n := b.N
	for w := 0; w < 4; w++ {
		e.Spawn("worker", func(p *Proc) {
			for i := 0; i < n/4; i++ {
				r.Use(p, 1, Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
