package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEventThroughput measures raw engine event dispatch — the
// floor under every experiment's wall-clock cost.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	defer e.Close()
	for i := 0; i < b.N; i++ {
		e.After(Microsecond, func() {})
		if e.Pending() > 10000 {
			if err := e.RunUntil(MaxTime); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.RunUntil(MaxTime); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardedThroughput measures the sharded engine end to end on
// a pure-sim workload: 8 fixed partitions (part of the workload's
// identity, so results stay comparable) run by 1, 4 or 8 workers. Each
// partition forwards a message chain to its neighbour once per
// lookahead window, dispatching a burst of local events per hop. The
// /shards=N sub-benchmark names carry the worker count; benchjson
// parses them into a "shards" metric for BENCH_sim.json.
func BenchmarkShardedThroughput(b *testing.B) {
	const (
		parts = 8
		local = 16 // local events dispatched per cross-partition hop
	)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", workers), func(b *testing.B) {
			se := NewShardedEngine(ShardedConfig{
				Parts: parts, Workers: workers, Seed: 1, Window: Microsecond,
			})
			defer se.Close()
			hops := b.N / (parts * (local + 2))
			if hops < 1 {
				hops = 1
			}
			for p := 0; p < parts; p++ {
				p := p
				eng := se.Engine(p)
				hop := func(rem int) {
					for i := 0; i < local; i++ {
						eng.After(Duration(i)*100*Nanosecond, func() {})
					}
					if rem > 0 {
						se.Send(p, (p+1)%parts, eng.Now()+se.Window(), rem-1)
					}
				}
				se.OnDeliver(p, func(m ShardMsg) {
					rem := m.Data.(int)
					eng.At(m.At, func() { hop(rem) })
				})
				eng.At(Time(Microsecond), func() { hop(hops) })
			}
			b.ResetTimer()
			if err := se.Run(MaxTime); err != nil {
				b.Fatal(err)
			}
			var events int64
			for _, pp := range se.Stats().PerPart {
				events += int64(pp.Events)
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkProcSwitch measures the park/resume goroutine handshake.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine(1)
	n := b.N
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkYieldStorm measures the same-time run queue: a pack of procs
// yielding at one instant, the engine's O(1) fast path.
func BenchmarkYieldStorm(b *testing.B) {
	e := NewEngine(1)
	const procs = 8
	n := b.N / procs
	for w := 0; w < procs; w++ {
		e.Spawn("yielder", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerCancelChurn measures schedule-then-cancel traffic — the
// retransmission-timer pattern every protocol layer generates. With the
// event pool this settles to zero allocations.
func BenchmarkTimerCancelChurn(b *testing.B) {
	e := NewEngine(1)
	defer e.Close()
	for i := 0; i < b.N; i++ {
		tm := e.After(Millisecond, func() {})
		tm.Stop()
		if i%1024 == 0 {
			// Drain the cancelled husks so the queue stays small.
			if err := e.RunUntil(e.Now() + 2*Millisecond); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMailboxPingPong measures a blocking request/reply cycle
// between two procs — the RPC skeleton under every protocol model. Each
// iteration is two Put/Get pairs and two direct goroutine handoffs.
func BenchmarkMailboxPingPong(b *testing.B) {
	e := NewEngine(1)
	req := NewMailbox[int](e, "req")
	rsp := NewMailbox[int](e, "rsp")
	n := b.N
	e.Spawn("server", func(p *Proc) {
		for i := 0; i < n; i++ {
			v := req.Get(p)
			rsp.Put(v + 1)
		}
	})
	e.Spawn("client", func(p *Proc) {
		for i := 0; i < n; i++ {
			req.Put(i)
			if got := rsp.Get(p); got != i+1 {
				b.Errorf("got %d, want %d", got, i+1)
				return
			}
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures the contended-resource path.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	n := b.N
	for w := 0; w < 4; w++ {
		e.Spawn("worker", func(p *Proc) {
			for i := 0; i < n/4; i++ {
				r.Use(p, 1, Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
