package sim

import "testing"

// BenchmarkEventThroughput measures raw engine event dispatch — the
// floor under every experiment's wall-clock cost.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	defer e.Close()
	for i := 0; i < b.N; i++ {
		e.After(Microsecond, func() {})
		if e.Pending() > 10000 {
			if err := e.RunUntil(MaxTime); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.RunUntil(MaxTime); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSwitch measures the park/resume goroutine handshake.
func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine(1)
	n := b.N
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkYieldStorm measures the same-time run queue: a pack of procs
// yielding at one instant, the engine's O(1) fast path.
func BenchmarkYieldStorm(b *testing.B) {
	e := NewEngine(1)
	const procs = 8
	n := b.N / procs
	for w := 0; w < procs; w++ {
		e.Spawn("yielder", func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTimerCancelChurn measures schedule-then-cancel traffic — the
// retransmission-timer pattern every protocol layer generates. With the
// event pool this settles to zero allocations.
func BenchmarkTimerCancelChurn(b *testing.B) {
	e := NewEngine(1)
	defer e.Close()
	for i := 0; i < b.N; i++ {
		tm := e.After(Millisecond, func() {})
		tm.Stop()
		if i%1024 == 0 {
			// Drain the cancelled husks so the queue stays small.
			if err := e.RunUntil(e.Now() + 2*Millisecond); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMailboxPingPong measures a blocking request/reply cycle
// between two procs — the RPC skeleton under every protocol model. Each
// iteration is two Put/Get pairs and two direct goroutine handoffs.
func BenchmarkMailboxPingPong(b *testing.B) {
	e := NewEngine(1)
	req := NewMailbox[int](e, "req")
	rsp := NewMailbox[int](e, "rsp")
	n := b.N
	e.Spawn("server", func(p *Proc) {
		for i := 0; i < n; i++ {
			v := req.Get(p)
			rsp.Put(v + 1)
		}
	})
	e.Spawn("client", func(p *Proc) {
		for i := 0; i < n; i++ {
			req.Put(i)
			if got := rsp.Get(p); got != i+1 {
				b.Errorf("got %d, want %d", got, i+1)
				return
			}
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceContention measures the contended-resource path.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEngine(1)
	r := NewResource(e, "r", 1)
	n := b.N
	for w := 0; w < 4; w++ {
		e.Spawn("worker", func(p *Proc) {
			for i := 0; i < n/4; i++ {
				r.Use(p, 1, Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
