package sim

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"
	"time"
)

// scheduleHash drives a workload that exercises every scheduling path —
// timers, cancellations, same-time run queue, heap, mailbox grants and
// timeouts, resource contention, signal broadcast — and folds the full
// (time, pid, tag) dispatch trace into a hash. Identical seeds must give
// identical schedules; this is the engine's determinism contract stated
// as a regression test.
func scheduleHash(t *testing.T, seed int64) uint64 {
	t.Helper()
	e := NewEngine(seed)
	h := fnv.New64a()
	mark := func(p *Proc, tag string) {
		fmt.Fprintf(h, "%d|%d|%s;", int64(p.Now()), p.ID(), tag)
	}
	mbox := NewMailbox[int](e, "m")
	res := NewResource(e, "r", 2)
	sig := NewSignal(e, "s")
	for i := 0; i < 8; i++ {
		e.Spawn("worker", func(p *Proc) {
			for j := 0; j < 20; j++ {
				d := Duration(e.Rand().Intn(50)) * Microsecond
				p.Sleep(d)
				mark(p, "slept")
				res.Use(p, 1+e.Rand().Intn(2), Duration(e.Rand().Intn(10))*Microsecond)
				mark(p, "used")
				if e.Rand().Intn(3) == 0 {
					p.Yield()
					mark(p, "yielded")
				}
				if v, ok := mbox.GetTimeout(p, 5*Microsecond); ok {
					mark(p, fmt.Sprintf("got%d", v))
				} else {
					mark(p, "timeout")
				}
			}
		})
	}
	e.Spawn("producer", func(p *Proc) {
		for j := 0; j < 60; j++ {
			p.Sleep(Duration(e.Rand().Intn(30)) * Microsecond)
			mbox.Put(j)
			if j%10 == 0 {
				sig.Broadcast()
			}
		}
	})
	e.Spawn("waiter", func(p *Proc) {
		for j := 0; j < 5; j++ {
			if sig.WaitTimeout(p, 200*Microsecond) {
				mark(p, "signalled")
			} else {
				mark(p, "sig-timeout")
			}
		}
	})
	// Timer churn: schedule-and-cancel alongside the real workload so
	// cancelled pool events interleave with live ones.
	var cancelled Timer
	for i := 0; i < 50; i++ {
		tm := e.At(Duration(e.Rand().Intn(1000))*Microsecond, func() {})
		if i%2 == 0 {
			tm.Stop()
			cancelled = tm
		}
	}
	_ = cancelled
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(h, "end@%d", int64(e.Now()))
	return h.Sum64()
}

func TestScheduleHashDeterministic(t *testing.T) {
	a := scheduleHash(t, 42)
	b := scheduleHash(t, 42)
	if a != b {
		t.Fatalf("same seed produced different schedules: %x vs %x", a, b)
	}
	if c := scheduleHash(t, 43); c == a {
		t.Fatal("different seeds produced identical schedule (suspicious)")
	}
}

// TestTimerABAAfterRecycle pins the generation-counter contract: a Timer
// whose event has fired and been recycled for a new scheduling must go
// permanently inert — Stop must not cancel the struct's new occupant.
func TestTimerABAAfterRecycle(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	fired1, fired2 := false, false
	t1 := e.At(10*Microsecond, func() { fired1 = true })
	if err := e.RunUntil(20 * Microsecond); err != nil {
		t.Fatal(err)
	}
	if !fired1 {
		t.Fatal("first event did not fire")
	}
	// The pool guarantees the freed struct is reused for the very next
	// scheduling on this engine.
	t2 := e.At(30*Microsecond, func() { fired2 = true })
	if t1.ev != t2.ev {
		t.Fatalf("expected pool to recycle the event struct (got %p vs %p)", t1.ev, t2.ev)
	}
	if t1.Active() {
		t.Fatal("stale Timer reports Active after its event was recycled")
	}
	if t1.Stop() {
		t.Fatal("stale Timer.Stop reported success")
	}
	if !t2.Active() {
		t.Fatal("stale Stop cancelled the new occupant (ABA)")
	}
	if err := e.RunUntil(MaxTime); err != nil {
		t.Fatal(err)
	}
	if !fired2 {
		t.Fatal("recycled event did not fire")
	}
}

// TestSameTimeFIFOMixed checks (at, seq) FIFO order across the two
// queues: an event sitting in the heap for time T (scheduled early, low
// seq) must run before same-time events added to the run queue at T, and
// Yield/After(0)/At(now) must interleave in scheduling order.
func TestSameTimeFIFOMixed(t *testing.T) {
	e := NewEngine(1)
	const T = 100 * Microsecond
	var order []string
	log := func(s string) func() { return func() { order = append(order, s) } }
	e.At(T, log("heap-1")) // seq 0: dispatched first at T
	e.At(T, func() {
		order = append(order, "heap-2")
		// Now at T: these go to the run queue, behind heap-3 (lower seq).
		e.After(0, log("runq-1"))
		e.At(e.Now(), log("runq-2"))
	})
	e.At(T, log("heap-3")) // seq 2: still beats the runq events on seq
	e.Spawn("yielder", func(p *Proc) {
		p.SleepUntil(T)
		order = append(order, "proc-a")
		p.Yield()
		order = append(order, "proc-b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The proc's SleepUntil wake (scheduled at t=0, seq 4) fires after
	// heap-3; its Yield then queues behind runq-1/runq-2.
	want := "[heap-1 heap-2 heap-3 proc-a runq-1 runq-2 proc-b]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// TestYieldStormFIFO floods the same-time ring (forcing it to grow) and
// checks strict FIFO across many procs at one instant.
func TestYieldStormFIFO(t *testing.T) {
	e := NewEngine(1)
	const procs, rounds = 100, 5
	turn := 0
	for i := 0; i < procs; i++ {
		i := i
		e.Spawn("y", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				want := r*procs + i
				if turn != want {
					t.Errorf("proc %d round %d ran at turn %d, want %d", i, r, turn, want)
				}
				turn++
				p.Yield()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if turn != procs*rounds {
		t.Fatalf("turn = %d, want %d", turn, procs*rounds)
	}
}

// TestStopReleasesCancelledClosure verifies Timer.Stop drops the event's
// closure immediately, not when the cancelled event is finally popped:
// the captured allocation must become collectable while the event is
// still queued.
func TestStopReleasesCancelledClosure(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	collected := make(chan struct{})
	tm := func() Timer {
		big := make([]byte, 1<<20)
		runtime.SetFinalizer(&big[0], func(*byte) { close(collected) })
		return e.At(Hour, func() { _ = big })
	}()
	// Keep a far-future anchor so the queue (and the cancelled event) stays live.
	e.At(2*Hour, func() {})
	if !tm.Stop() {
		t.Fatal("Stop failed")
	}
	for i := 0; i < 100; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-time.After(time.Millisecond):
		}
	}
	t.Fatal("cancelled closure still retained after Stop (fn not dropped)")
}

// TestScheduleAfterClosePanics pins the loud-failure contract: events
// scheduled on a closed engine would never run, so At and Spawn must
// panic instead of silently queueing.
func TestScheduleAfterClosePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on closed engine did not panic", name)
			}
		}()
		f()
	}
	e := NewEngine(1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	mustPanic("At", func() { e.At(Microsecond, func() {}) })
	mustPanic("After", func() { e.After(Microsecond, func() {}) })
	mustPanic("Spawn", func() { e.Spawn("late", func(p *Proc) {}) })
	mustPanic("SpawnAt", func() { e.SpawnAt(Microsecond, "late", func(p *Proc) {}) })
}

// TestCloseTeardownAscendingPIDs: teardown order is part of the
// determinism contract and must be ascending pid regardless of spawn
// pattern.
func TestCloseTeardownAscendingPIDs(t *testing.T) {
	e := NewEngine(1)
	var killed []int
	sig := NewSignal(e, "never")
	// Spawn in shuffled start-time order so map iteration alone would
	// not produce ascending ids.
	for _, d := range []Duration{5, 1, 9, 3, 7, 2, 8, 4, 6, 0} {
		e.SpawnAt(d*Microsecond, fmt.Sprintf("p%d", d), func(p *Proc) {
			defer func() { killed = append(killed, p.ID()) }()
			sig.Wait(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(killed) != 10 {
		t.Fatalf("killed %d procs, want 10", len(killed))
	}
	for i := 1; i < len(killed); i++ {
		if killed[i] <= killed[i-1] {
			t.Fatalf("teardown order not ascending: %v", killed)
		}
	}
}

// TestGrantVsTimeoutSameInstant: a grant and a timeout landing at the
// same virtual time must resolve deterministically — whichever event has
// the lower sequence number wins, and the loser is fully cancelled (no
// double wake, no lost or duplicated item).
func TestGrantVsTimeoutSameInstant(t *testing.T) {
	// Grant wins: the Put event is scheduled before the receiver's
	// timeout timer, so at the shared instant it has the lower seq; the
	// grant cancels the timer.
	e := NewEngine(1)
	m := NewMailbox[int](e, "m")
	var got []string
	e.At(10*Microsecond, func() { m.Put(7) })
	e.Spawn("recv", func(p *Proc) {
		if v, ok := m.GetTimeout(p, 10*Microsecond); ok {
			got = append(got, fmt.Sprintf("val%d", v))
		} else {
			got = append(got, "timeout")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[val7]" {
		t.Fatalf("grant-first: got = %v", got)
	}

	// Timeout wins: the sender's wake (and thus its Put) carries a
	// higher seq than the timeout timer, so the receiver times out first
	// and the item stays in the mailbox.
	e = NewEngine(1)
	m = NewMailbox[int](e, "m")
	got = nil
	e.Spawn("recv", func(p *Proc) {
		if _, ok := m.GetTimeout(p, 10*Microsecond); !ok {
			got = append(got, "timeout")
		}
		p.Sleep(5 * Microsecond)
		if v, ok := m.TryGet(); ok {
			got = append(got, fmt.Sprintf("left%d", v))
		}
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		m.Put(9)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[timeout left9]" {
		t.Fatalf("timeout-first: got = %v", got)
	}
}
