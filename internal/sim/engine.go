package sim

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrStopped is returned by Run when the simulation was halted by an
// explicit call to Stop before the event queue drained.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is a deterministic discrete-event simulator. It owns the
// virtual clock, the event queue, and the set of live processes. An
// Engine is not safe for concurrent use from multiple OS threads; all
// interaction happens either before Run or from within simulated
// processes and event callbacks, which the engine serialises.
type Engine struct {
	now     Time
	heap    eventHeap
	seq     uint64
	rng     *rand.Rand
	parked  chan struct{}
	procs   map[*Proc]struct{}
	nextPID int
	stopped bool
	failure error
	running bool
	closed  bool
}

// NewEngine returns an engine with its clock at zero and a deterministic
// random source seeded with seed. Two engines created with the same seed
// and driven by the same program produce identical schedules.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. Subsystems must
// draw randomness only from here (never the global rand) so that a seed
// fully determines a run.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at virtual time t and returns a cancellable
// Timer. Scheduling in the past is a caller bug; the engine clamps it to
// "now" to keep the clock monotonic.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.heap.push(ev)
	return Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts the simulation after the currently executing event
// completes. Run will return ErrStopped.
func (e *Engine) Stop() { e.stopped = true }

// Fail halts the simulation and causes Run to return err. Processes use
// it (via Proc.Fail) to abort a run on invariant violations.
func (e *Engine) Fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.stopped = true
}

// Run executes events until the queue drains or Stop/Fail is called,
// then tears down all remaining processes. It returns the first failure,
// ErrStopped on an explicit stop, or nil when the queue drained.
func (e *Engine) Run() error {
	err := e.RunUntil(MaxTime)
	e.Close()
	return err
}

// RunUntil executes events whose time is at most limit. The clock never
// advances past limit; events scheduled later stay queued, and parked
// processes stay parked, so the caller may continue the run with another
// RunUntil. Callers that do not continue must call Close to release the
// process goroutines. It returns the first failure, ErrStopped on an
// explicit stop, or nil otherwise.
func (e *Engine) RunUntil(limit Time) error {
	if e.running {
		return errors.New("sim: RunUntil called reentrantly")
	}
	if e.closed {
		return errors.New("sim: engine already closed")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && e.heap.len() > 0 {
		if e.heap.peek().at > limit {
			if limit > e.now && limit < MaxTime {
				e.now = limit
			}
			break
		}
		ev := e.heap.pop()
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
	}
	if e.failure != nil {
		return e.failure
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// Close terminates every still-parked process so that no goroutines
// outlive the simulation. It is idempotent. After Close the engine can
// no longer run.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for len(e.procs) > 0 {
		var victim *Proc
		// Kill in ascending pid order: teardown order is observable via
		// process cleanup hooks, and determinism everywhere is cheap.
		for p := range e.procs {
			if victim == nil || p.id < victim.id {
				victim = p
			}
		}
		victim.kill()
	}
}

// Pending reports the number of events still queued, including cancelled
// ones not yet popped. Intended for tests and diagnostics.
func (e *Engine) Pending() int { return e.heap.len() }

// invariant records a failure when cond is false; used by primitives to
// catch API misuse (double release, negative acquire) loudly.
func (e *Engine) invariant(cond bool, format string, args ...any) {
	if !cond {
		e.Fail(fmt.Errorf("sim: invariant violated: "+format, args...))
	}
}
