package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// ErrStopped is returned by Run when the simulation was halted by an
// explicit call to Stop before the event queue drained.
var ErrStopped = errors.New("sim: engine stopped")

// Engine is a deterministic discrete-event simulator. It owns the
// virtual clock, the event queue, and the set of live processes. An
// Engine is not safe for concurrent use from multiple OS threads; all
// interaction happens either before Run or from within simulated
// processes and event callbacks, which the engine serialises.
//
// Scheduling is split across two structures: events due exactly now go
// to a FIFO ring (runq) drained in O(1), and future events go to a
// 4-ary min-heap keyed by (at, seq). Fired events are recycled through
// a free list, so steady-state scheduling does not allocate. The
// dispatch loop itself is not pinned to one goroutine: it migrates with
// a driver token between the RunUntil caller and process goroutines
// (see Proc), which is what keeps process switches down to at most one
// channel handoff.
type Engine struct {
	now     Time
	limit   Time
	heap    eventHeap
	runq    eventRing
	free    []*event
	seq     uint64
	rng     *rand.Rand
	parked  chan struct{}
	done    chan struct{}
	procs   map[*Proc]struct{}
	nextPID int
	stopped bool
	failure error
	running bool
	closed  bool
	closing bool
	// stat lives at the tail so the 64-byte tally block does not push
	// the loop-read control fields (stopped, limit, queues) onto extra
	// cache lines; the hot fields above keep their pre-obs layout.
	stat engineStats // always-on tallies; Observe mirrors them out
}

// NewEngine returns an engine with its clock at zero and a deterministic
// random source seeded with seed. Two engines created with the same seed
// and driven by the same program produce identical schedules.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}),
		done:   make(chan struct{}),
		procs:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. Subsystems must
// draw randomness only from here (never the global rand) so that a seed
// fully determines a run.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// schedule is the single entry point onto the event queues. Exactly one
// of fn/p is set: fn for callback events, p for direct process wakes.
// Scheduling in the past is a caller bug; the engine clamps it to "now"
// to keep the clock monotonic.
func (e *Engine) schedule(t Time, fn func(), p *Proc) *event {
	if e.closed {
		// Deferred process cleanup running inside Close may legitimately
		// fire signals or release resources; those wakes target processes
		// that are themselves being torn down, so they are dropped. Any
		// scheduling after Close has returned is a caller bug: the event
		// would sit in the queue forever, so fail loudly instead.
		if e.closing {
			return nil
		}
		panic("sim: event scheduled on closed engine (after Close/Run returned)")
	}
	if t < e.now {
		t = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq, ev.fn, ev.proc = t, e.seq, fn, p
	ev.afn, ev.arg = nil, nil
	ev.cancelled, ev.timeout = false, false
	e.seq++
	if t == e.now {
		e.runq.push(ev)
		if n := int64(e.runq.n); n > e.stat.runqMax {
			e.stat.runqMax = n
		}
	} else {
		e.heap.push(ev)
		if n := int64(len(e.heap.items)); n > e.stat.heapMax {
			e.stat.heapMax = n
		}
	}
	return ev
}

// recycle returns a popped event to the free list. Bumping gen first
// invalidates every Timer handle that still points at the struct.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.proc = nil
	ev.index = posPopped
	e.free = append(e.free, ev)
}

// At schedules fn to run at virtual time t and returns a cancellable
// Timer.
func (e *Engine) At(t Time, fn func()) Timer {
	ev := e.schedule(t, fn, nil)
	if ev == nil {
		return Timer{}
	}
	return Timer{ev: ev, gen: ev.gen}
}

// AtArg schedules fn(arg) to run at virtual time t. Unlike At it needs
// no closure: fn is typically a long-lived bound method shared by every
// call and arg rides inside the pooled event, so steady-state
// scheduling allocates nothing when arg is pointer-shaped.
func (e *Engine) AtArg(t Time, fn func(any), arg any) Timer {
	ev := e.schedule(t, nil, nil)
	if ev == nil {
		return Timer{}
	}
	ev.afn = fn
	ev.arg = arg
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// wakeProcAt schedules a direct wake of p at time t: the fast path under
// Sleep/Yield and every grant in Mailbox/Resource/Signal. It allocates
// nothing in steady state — no closure, and the event comes from the
// pool.
func (e *Engine) wakeProcAt(t Time, p *Proc) {
	e.schedule(t, nil, p)
}

// procTimeoutAfter schedules a wake of p carrying the timeout flag d
// from now, returning the Timer that a grant path cancels. The woken
// process removes itself from whatever wait queue it is on — the waiter
// record is on its stack, so no closure is needed.
func (e *Engine) procTimeoutAfter(d Duration, p *Proc) Timer {
	if d < 0 {
		d = 0
	}
	ev := e.schedule(e.now+d, nil, p)
	if ev == nil {
		return Timer{}
	}
	ev.timeout = true
	return Timer{ev: ev, gen: ev.gen}
}

// Stop halts the simulation after the currently executing event
// completes. Run will return ErrStopped.
func (e *Engine) Stop() { e.stopped = true }

// Fail halts the simulation and causes Run to return err. Processes use
// it (via Proc.Fail) to abort a run on invariant violations.
func (e *Engine) Fail(err error) {
	if e.failure == nil {
		e.failure = err
	}
	e.stopped = true
}

// dispatchResult says how a dispatch loop invocation ended.
type dispatchResult int

const (
	// dispatchWoken: the next event was self's own wake; self keeps the
	// driver token and continues running. No goroutine switch happened.
	dispatchWoken dispatchResult = iota
	// dispatchHandoff: the driver token was handed to another process;
	// the caller must park (or may exit).
	dispatchHandoff
	// dispatchDone: the run terminated (queue drained, horizon reached,
	// or Stop/Fail); whoever holds this result must signal e.done if it
	// is not the RunUntil caller itself.
	dispatchDone
)

// dispatch runs the event loop on behalf of the current goroutine until
// the run terminates, the token moves to another process, or — when
// self is non-nil — self's own wake event fires. It is the core of the
// engine; every goroutine holding the driver token executes it.
func (e *Engine) dispatch(self *Proc) (wake, dispatchResult) {
	for !e.stopped {
		var ev *event
		if e.runq.n > 0 && e.now <= e.limit {
			// Same-time events dispatch FIFO, but an event scheduled
			// earlier (lower seq) for exactly this time may still sit in
			// the heap; (at, seq) order decides.
			ev = e.runq.peek()
			if len(e.heap.items) > 0 {
				if h := e.heap.items[0]; h.at == e.now && h.seq < ev.seq {
					ev = e.heap.pop()
				} else {
					e.runq.pop()
				}
			} else {
				e.runq.pop()
			}
		} else if len(e.heap.items) > 0 {
			h := e.heap.items[0]
			if h.at > e.limit {
				if e.limit > e.now && e.limit < MaxTime {
					e.now = e.limit
				}
				return wake{}, dispatchDone
			}
			ev = e.heap.pop()
			e.now = ev.at
		} else {
			return wake{}, dispatchDone
		}
		if ev.cancelled {
			e.stat.cancelled++
			e.recycle(ev)
			continue
		}
		if q := ev.proc; q != nil {
			tok := wake{timeout: ev.timeout, drive: true}
			e.recycle(ev)
			if q == self {
				return tok, dispatchWoken
			}
			e.stat.switches++
			q.resume <- tok
			return wake{}, dispatchHandoff
		}
		if afn := ev.afn; afn != nil {
			arg := ev.arg
			e.recycle(ev)
			e.stat.callbacks++
			afn(arg)
			continue
		}
		fn := ev.fn
		e.recycle(ev)
		e.stat.callbacks++
		fn()
	}
	return wake{}, dispatchDone
}

// Run executes events until the queue drains or Stop/Fail is called,
// then tears down all remaining processes. It returns the first failure,
// ErrStopped on an explicit stop, or nil when the queue drained.
func (e *Engine) Run() error {
	err := e.RunUntil(MaxTime)
	e.Close()
	return err
}

// RunUntil executes events whose time is at most limit. The clock never
// advances past limit; events scheduled later stay queued, and parked
// processes stay parked, so the caller may continue the run with another
// RunUntil. Callers that do not continue must call Close to release the
// process goroutines. It returns the first failure, ErrStopped on an
// explicit stop, or nil otherwise.
func (e *Engine) RunUntil(limit Time) error {
	if e.running {
		return errors.New("sim: RunUntil called reentrantly")
	}
	if e.closed {
		return errors.New("sim: engine already closed")
	}
	e.running = true
	defer func() { e.running = false }()
	e.limit = limit
	if _, res := e.dispatch(nil); res == dispatchHandoff {
		// The driver token is loose in the process graph; wait for
		// whichever goroutine reaches the end of the run to report in.
		<-e.done
	}
	if e.failure != nil {
		return e.failure
	}
	if e.stopped {
		return ErrStopped
	}
	return nil
}

// Close terminates every still-parked process so that no goroutines
// outlive the simulation. It is idempotent. After Close the engine can
// no longer run, and scheduling new work panics.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.closing = true
	defer func() { e.closing = false }()
	// Kill in ascending pid order: teardown order is observable via
	// process cleanup hooks, and determinism everywhere is cheap. One
	// sorted snapshot replaces the old per-victim min scan (which was
	// quadratic in the number of parked processes).
	victims := make([]*Proc, 0, len(e.procs))
	for p := range e.procs {
		victims = append(victims, p)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, p := range victims {
		p.kill()
	}
}

// Pending reports the number of events still queued, including cancelled
// ones not yet popped. Intended for tests and diagnostics.
func (e *Engine) Pending() int { return e.heap.len() + e.runq.len() }

// NextLive reports the time of the earliest non-cancelled event still
// queued, or MaxTime when only cancelled events (or nothing) remain.
// Cancelled events found at the queue heads are reaped eagerly — exactly
// the bookkeeping the dispatch loop would do on pop — so a caller polling
// NextLive between RunUntil horizons does not scan them again. The
// sharded driver uses this for idle detection: cancelled protocol timers
// (AM retransmit/completion guards) otherwise keep Pending non-zero long
// after the last real event, which would force a windowed run to crawl
// through millions of empty lookahead windows.
func (e *Engine) NextLive() Time {
	for e.runq.n > 0 && e.runq.peek().cancelled {
		e.stat.cancelled++
		e.recycle(e.runq.pop())
	}
	for len(e.heap.items) > 0 && e.heap.items[0].cancelled {
		e.stat.cancelled++
		e.recycle(e.heap.pop())
	}
	if e.runq.n > 0 {
		// Same-time FIFO work is due at the current instant.
		return e.now
	}
	if len(e.heap.items) > 0 {
		return e.heap.items[0].at
	}
	return MaxTime
}

// invariant records a failure when cond is false; used by primitives to
// catch API misuse (double release, negative acquire) loudly.
func (e *Engine) invariant(cond bool, format string, args ...any) {
	if !cond {
		e.Fail(fmt.Errorf("sim: invariant violated: "+format, args...))
	}
}
