package sim

import (
	"errors"
	"fmt"
	"testing"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30*Microsecond, func() { order = append(order, 3) })
	e.At(10*Microsecond, func() { order = append(order, 1) })
	e.At(20*Microsecond, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Fatalf("order = %v", order)
	}
}

func TestSameTimeEventsRunFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Microsecond, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, v, i, order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(42*Millisecond, func() { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 42*Millisecond {
		t.Fatalf("event saw t=%v, want 42ms", at)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(10*Microsecond, func() {
		e.After(5*Microsecond, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 15*Microsecond {
		t.Fatalf("nested After fired at %v, want 15µs", at)
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.At(10*Microsecond, func() {
		e.At(3*Microsecond, func() { at = e.Now() }) // in the past
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10*Microsecond {
		t.Fatalf("past event fired at %v, want clamp to 10µs", at)
	}
}

func TestTimerStopCancelsEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(10*Microsecond, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report success")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(10*Microsecond, func() { e.Stop() })
	e.At(20*Microsecond, func() { ran = true })
	err := e.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ran {
		t.Fatal("event after Stop ran")
	}
	if e.Now() != 10*Microsecond {
		t.Fatalf("clock = %v, want 10µs", e.Now())
	}
}

func TestFailPropagatesError(t *testing.T) {
	e := NewEngine(1)
	boom := errors.New("boom")
	e.At(1*Microsecond, func() { e.Fail(boom) })
	if err := e.Run(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestRunUntilHonorsHorizon(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.At(10*Microsecond, func() { fired = append(fired, e.Now()) })
	e.At(30*Microsecond, func() { fired = append(fired, e.Now()) })
	if err := e.RunUntil(20 * Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 10*Microsecond {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 20*Microsecond {
		t.Fatalf("clock = %v, want horizon 20µs", e.Now())
	}
	// Continue the run past the horizon.
	if err := e.RunUntil(40 * Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != 30*Microsecond {
		t.Fatalf("after continue, fired = %v", fired)
	}
	e.Close()
}

func TestDeterministicWithSameSeed(t *testing.T) {
	trace := func(seed int64) string {
		e := NewEngine(seed)
		out := ""
		for i := 0; i < 20; i++ {
			i := i
			d := Duration(e.Rand().Intn(100)) * Microsecond
			e.After(d, func() { out += fmt.Sprintf("%d@%v;", i, e.Now()) })
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(42), trace(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if c := trace(43); c == a {
		t.Fatal("different seeds produced identical schedule (suspicious)")
	}
}

func TestRandIsSeeded(t *testing.T) {
	a := NewEngine(7).Rand().Int63()
	b := NewEngine(7).Rand().Int63()
	if a != b {
		t.Fatal("engine RNG not deterministic")
	}
}

func TestPendingCountsQueuedEvents(t *testing.T) {
	e := NewEngine(1)
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{456 * Nanosecond, "456ns"},
		{456 * Microsecond, "456µs"},
		{2800 * Microsecond, "2.8ms"},
		{4 * Second, "4s"},
		{-3 * Millisecond, "-3ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestPerByteAndBandwidth(t *testing.T) {
	// 8 KB at 10 Mb/s ≈ 6.55 ms — the paper's Ethernet transfer term.
	got := PerByte(8192, Bandwidth(10))
	if got < 6500*Microsecond || got > 6600*Microsecond {
		t.Fatalf("8KB@10Mb/s = %v, want ≈6.55ms", got)
	}
	if PerByte(0, Bandwidth(10)) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
	if PerByte(100, 0) != 0 {
		t.Fatal("zero bandwidth models an infinitely fast path")
	}
}

func TestScaleRounds(t *testing.T) {
	if Scale(10, 0.25) != 3 { // 2.5 rounds to 3
		t.Fatalf("Scale(10, .25) = %d", Scale(10, 0.25))
	}
}
