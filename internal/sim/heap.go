package sim

// Sentinel values for event.index encoding where an event currently
// lives. Non-negative means "at this position in the time-ordered heap".
const (
	posPopped = -1 // popped, free, or recycled
	posRunq   = -2 // queued in the engine's same-time run queue
)

// event is a scheduled callback. Events are ordered by (at, seq): the
// sequence number breaks ties deterministically in FIFO order of
// scheduling, which is what makes runs reproducible.
//
// Events are pooled: the engine recycles popped events through a free
// list, and gen counts how many lifetimes the struct has been through so
// that stale Timer handles (see below) can detect recycling.
type event struct {
	at        Time
	seq       uint64
	gen       uint64
	fn        func()
	afn       func(any) // arg-carrying callback: fn and afn are mutually exclusive
	arg       any       // payload for afn; rides in the pooled event, no closure
	proc      *Proc     // typed wake fast path: resume proc directly, no closure
	timeout   bool      // wake carries the timeout flag (deadline fired)
	cancelled bool
	index     int
}

// Timer is a handle to a scheduled event that can be cancelled before it
// fires. The zero value is not useful; Timers are produced by the
// engine's scheduling methods.
//
// A Timer pins (event, generation): once the event fires or is recycled
// for a later scheduling, the generation moves on and the handle goes
// permanently inert, so holding a Timer across pool recycling is safe
// (no ABA — Stop can never cancel the struct's next occupant).
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the timer. It reports whether the cancellation happened
// before the event fired. Stopping an already-fired or already-stopped
// timer is a no-op returning false.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.cancelled {
		return false
	}
	ev.cancelled = true
	// Drop the payload now rather than when the cancelled event is
	// eventually popped, so the closure (and everything it captures)
	// is not retained for the remaining queue lifetime of the event.
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.proc = nil
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled
}

// eventHeap is a 4-ary min-heap of events keyed by (at, seq). It is
// hand-rolled rather than using container/heap to avoid interface boxing
// on the engine's hottest path, and 4-ary rather than binary because the
// shallower tree halves the levels touched per sift — fewer dependent
// cache misses per push/pop on large queues.
type eventHeap struct {
	items []*event
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) push(ev *event) {
	ev.index = len(h.items)
	h.items = append(h.items, ev)
	h.up(ev.index)
}

func (h *eventHeap) pop() *event {
	n := len(h.items)
	top := h.items[0]
	last := h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if n > 1 {
		h.items[0] = last
		last.index = 0
		h.down(0)
	}
	top.index = posPopped
	return top
}

func (h *eventHeap) peek() *event { return h.items[0] }

func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// up sifts the hole at i towards the root, writing the moved element
// once at its final slot instead of swapping at every level.
func (h *eventHeap) up(i int) {
	items := h.items
	ev := items[i]
	for i > 0 {
		pi := (i - 1) / 4
		p := items[pi]
		if !less(ev, p) {
			break
		}
		items[i] = p
		p.index = i
		i = pi
	}
	items[i] = ev
	ev.index = i
}

func (h *eventHeap) down(i int) {
	items := h.items
	n := len(items)
	ev := items[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		end := first + 4
		if end > n {
			end = n
		}
		best, bestEv := first, items[first]
		for c := first + 1; c < end; c++ {
			if less(items[c], bestEv) {
				best, bestEv = c, items[c]
			}
		}
		if !less(bestEv, ev) {
			break
		}
		items[i] = bestEv
		bestEv.index = i
		i = best
	}
	items[i] = ev
	ev.index = i
}
